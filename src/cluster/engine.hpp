// The cluster monitoring engine: N nodes over the rfd::rt event queue and
// network, each composing per-peer timeout detectors under a pluggable
// dissemination topology, driven by a scripted fault scenario.
//
// This is the paper's thesis at production scale: every node runs
// <>P-grade detectors that are always allowed to be wrong, and the
// engine measures what the resulting *cluster* delivers - detection
// latency percentiles across all (observer, victim) pairs, false
// suspicions, per-node message load, and how long the live membership
// takes to converge on the true crashed set after each disruption.
// Runs are a pure function of (config, seed).
#pragma once

#include <atomic>
#include <cstdint>

#include "cluster/metrics.hpp"
#include "cluster/scenario.hpp"
#include "cluster/topology.hpp"
#include "obs/config.hpp"
#include "runtime/detectors.hpp"
#include "runtime/network.hpp"

namespace rfd::cluster {

struct ClusterConfig {
  /// Initially active nodes, ids 0..n-1.
  int n = 64;
  /// Id space; ids n..max_nodes-1 start inactive and may join via the
  /// scenario. 0 = n.
  int max_nodes = 0;
  TopologyParams topology;
  rt::DetectorParams detector;
  rt::NetworkParams network;
  double heartbeat_interval_ms = 100.0;
  /// Suspicion transitions and cluster agreement are sampled on this
  /// grid (bounds the latency resolution of the report).
  double check_interval_ms = 100.0;
  /// Silence tolerated for known-but-never-heard peers (see node.hpp).
  double bootstrap_grace_ms = 1500.0;
  /// Piggyback retransmissions per counter advance (see node.hpp).
  int hot_transmissions = 4;
  double duration_ms = 30'000.0;
  Scenario scenario;
  /// Worker shards the node set is partitioned across (1 = run entirely
  /// on the calling thread). Runs are bit-for-bit identical - metrics
  /// and traces - for every shard count; shards only changes wall-clock.
  /// Values beyond the node count are clamped. See engine.cpp for the
  /// barrier protocol and the determinism argument.
  int shards = 1;
  /// Conservative-DES lookahead: the maximum number of check windows the
  /// shards may advance between message exchanges when no buffered or
  /// possible future delivery can land earlier (computed from the
  /// buffered application barriers plus the network's minimum possible
  /// delay under the scenario's slow factors). Local evaluation still
  /// happens at every check tick, so metrics and trace bytes are
  /// unchanged for any value; <= 1 disables coalescing. Clamped to the
  /// delivery ring size (256). See engine.cpp for the safety argument.
  int lookahead_windows = 8;
  /// Spin budget of the inter-shard barriers before parking in a futex
  /// wait: -1 = executor default (hardware-aware), 0 = park immediately
  /// (condvar-style cost floor, measured by bench_e13_shard's E13b
  /// section), larger = spin longer. Scheduling only; never affects
  /// results.
  int barrier_spin = -1;
  /// Observability: trace sink, snapshot cadence, phase profiling. The
  /// defaults keep everything off; a disabled trace costs the hot path
  /// one predictable branch per instrumentation point.
  obs::Config obs;
  /// Optional graceful-stop flag (e.g. wired to a SIGINT handler). When
  /// it reads true at an exchange tick, every shard exits its epoch loop
  /// at that tick and the run finalizes normally: metrics aggregate, the
  /// trace ring drains and the end-of-run footer is written, covering
  /// exactly the rounds that executed. nullptr = run to duration_ms.
  const std::atomic<bool>* stop = nullptr;
};

/// Runs one seeded cluster experiment and aggregates cluster QoS.
ClusterReport run_cluster(const ClusterConfig& config, std::uint64_t seed);

}  // namespace rfd::cluster
