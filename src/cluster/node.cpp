#include "cluster/node.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bytes.hpp"

namespace rfd::cluster {

ClusterNode::ClusterNode(NodeId id, int max_nodes, NodeParams params)
    : id_(id), max_nodes_(max_nodes), params_(params),
      counters_(static_cast<std::size_t>(max_nodes), 0),
      hot_(static_cast<std::size_t>(max_nodes)),
      eval_tick_(static_cast<std::size_t>(max_nodes), -1),
      records_(static_cast<std::size_t>(max_nodes)),
      digest_cursor_(static_cast<int>(id) % max_nodes) {
  RFD_REQUIRE(id >= 0 && id < max_nodes);
  RFD_REQUIRE(params_.bootstrap_grace_ms > 0.0);
  // 0 would re-queue a peer on every observe() without any topology ever
  // draining it - unbounded hot-queue growth; the count is stored as one
  // dense byte per peer, hence the upper bound.
  RFD_REQUIRE(params_.hot_transmissions >= 1 &&
              params_.hot_transmissions <= 127);
  if (params_.detector.kind == rt::DetectorKind::kFixed) {
    fixed_timeout_ms_ = params_.detector.fixed.timeout_ms;
    RFD_REQUIRE(fixed_timeout_ms_ > 0.0);
  }
}

void ClusterNode::reset_peers(double now,
                              const std::vector<NodeId>& contacts) {
  std::fill(counters_.begin(), counters_.end(), 0);
  std::fill(hot_.begin(), hot_.end(), PeerHot{});
  std::fill(eval_tick_.begin(), eval_tick_.end(), std::int64_t{-1});
  for (PeerRecord& r : records_) {
    r = PeerRecord{};
  }
  hot_queue_.clear();
  hot_head_ = 0;
  known_count_ = 0;
  ++membership_version_;
  for (NodeId contact : contacts) {
    learn_peer(contact, now);
  }
}

void ClusterNode::save_state(std::vector<std::uint8_t>& out) const {
  ByteWriter w(out);
  w.i32(id_);
  w.i32(max_nodes_);
  w.i64(membership_version_);
  w.u8(active_ ? 1 : 0);
  w.i64(own_counter_);
  w.i32(digest_cursor_);
  w.i32(known_count_);
  for (std::int32_t c : counters_) w.i32(c);
  for (const PeerHot& h : hot_) {
    w.f64(h.last_heartbeat);
    w.u8(h.flags);
    w.u8(static_cast<std::uint8_t>(h.hot_remaining));
  }
  for (std::int64_t t : eval_tick_) w.i64(t);
  std::vector<double> detector_state;
  for (const PeerRecord& r : records_) {
    w.f64(r.known_since);
    w.f64(r.suspect_since);
    w.u8(r.detector != nullptr ? 1 : 0);
    if (r.detector != nullptr) {
      detector_state.clear();
      r.detector->save_state(detector_state);
      w.u32(static_cast<std::uint32_t>(detector_state.size()));
      for (double x : detector_state) w.f64(x);
    }
  }
  // Only the live [hot_head_, size()) region of the hot queue matters;
  // the restored queue starts compacted at head 0.
  w.u32(static_cast<std::uint32_t>(hot_queue_.size() - hot_head_));
  for (std::size_t i = hot_head_; i < hot_queue_.size(); ++i) {
    w.i32(hot_queue_[i]);
  }
}

bool ClusterNode::restore_state(const std::uint8_t* data, std::size_t size,
                                std::size_t& consumed) {
  ByteReader r(data, size);
  const std::int32_t id = r.i32();
  const std::int32_t max_nodes = r.i32();
  if (!r.ok() || id != id_ || max_nodes != max_nodes_) return false;
  membership_version_ = r.i64();
  active_ = r.u8() != 0;
  own_counter_ = r.i64();
  digest_cursor_ = r.i32();
  known_count_ = r.i32();
  for (std::int32_t& c : counters_) c = r.i32();
  for (PeerHot& h : hot_) {
    h.last_heartbeat = r.f64();
    h.flags = r.u8();
    h.hot_remaining = static_cast<std::int8_t>(r.u8());
  }
  for (std::int64_t& t : eval_tick_) t = r.i64();
  std::vector<double> detector_state;
  for (PeerRecord& rec : records_) {
    rec.known_since = r.f64();
    rec.suspect_since = r.f64();
    const bool has_detector = r.u8() != 0;
    if (!has_detector) {
      rec.detector.reset();
      continue;
    }
    const std::uint32_t count = r.u32();
    if (!r.ok() || count > (1u << 20)) return false;
    detector_state.resize(count);
    for (double& x : detector_state) x = r.f64();
    if (!r.ok()) return false;
    rec.detector = rt::make_detector(params_.detector);
    const double* cursor = detector_state.data();
    const double* end = cursor + detector_state.size();
    if (!rec.detector->restore_state(cursor, end) || cursor != end) {
      return false;
    }
  }
  const std::uint32_t queued = r.u32();
  if (!r.ok() || queued > static_cast<std::uint32_t>(max_nodes_)) {
    return false;
  }
  hot_queue_.resize(queued);
  for (NodeId& peer : hot_queue_) {
    peer = r.i32();
    if (peer < 0 || peer >= max_nodes_) return false;
  }
  hot_head_ = 0;
  if (!r.ok()) return false;
  if (digest_cursor_ < 0 || digest_cursor_ >= max_nodes_ ||
      known_count_ < 0 || known_count_ > max_nodes_) {
    return false;
  }
  consumed = size - r.remaining();
  return true;
}

}  // namespace rfd::cluster
