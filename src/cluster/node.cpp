#include "cluster/node.hpp"

#include "common/assert.hpp"

namespace rfd::cluster {

ClusterNode::ClusterNode(NodeId id, int max_nodes, NodeParams params)
    : id_(id), max_nodes_(max_nodes), params_(params),
      peers_(static_cast<std::size_t>(max_nodes)),
      digest_cursor_(static_cast<int>(id) % max_nodes) {
  RFD_REQUIRE(id >= 0 && id < max_nodes);
  RFD_REQUIRE(params_.bootstrap_grace_ms > 0.0);
  // 0 would re-queue a peer on every observe() without any topology ever
  // draining it - unbounded hot-queue growth.
  RFD_REQUIRE(params_.hot_transmissions >= 1);
}

void ClusterNode::learn_peer(NodeId peer, double now) {
  if (peer == id_ || peer < 0 || peer >= max_nodes_) return;
  PeerRecord& r = peers_[static_cast<std::size_t>(peer)];
  if (r.known) return;
  r.known = true;
  r.known_since = now;
  ++known_count_;
}

bool ClusterNode::observe(NodeId peer, std::int64_t counter, double now) {
  if (peer == id_ || peer < 0 || peer >= max_nodes_) return false;
  learn_peer(peer, now);
  PeerRecord& r = peers_[static_cast<std::size_t>(peer)];
  // A zero counter carries membership information (handled by learn_peer)
  // but no liveness evidence; a stale counter carries neither.
  if (counter <= 0 || counter <= r.counter) return false;
  if (r.detector == nullptr && r.counter == 0) {
    // First-ever counter for this peer: it proves membership, not
    // liveness - a gossiped value can be arbitrarily stale (e.g. the
    // final counter of a long-dead node still circulating in digests,
    // arriving at a freshly reset or joined observer). Record it as the
    // high-water mark and keep forwarding it (dissemination is how the
    // cluster bootstraps), but do not feed the detector: only an advance
    // beyond this mark is heartbeat evidence. A live peer advances
    // within one interval, so trust costs one round of warm-up; a dead
    // one never advances and falls to the bootstrap grace window.
    r.counter = counter;
    if (r.hot_remaining <= 0) hot_queue_.push_back(peer);
    r.hot_remaining = params_.hot_transmissions;
    return false;
  }
  r.counter = counter;
  if (r.detector == nullptr) {
    r.detector = rt::make_detector(params_.detector);
  }
  r.detector->on_heartbeat(now);
  if (r.hot_remaining <= 0) hot_queue_.push_back(peer);
  r.hot_remaining = params_.hot_transmissions;
  return true;
}

bool ClusterNode::suspects(NodeId peer, double now) const {
  if (peer == id_ || peer < 0 || peer >= max_nodes_) return false;
  const PeerRecord& r = peers_[static_cast<std::size_t>(peer)];
  if (!r.known) return false;
  if (r.detector == nullptr) {
    // Known but never heard: allow the bootstrap grace window, measured
    // from when this node learned the peer exists.
    return now - r.known_since > params_.bootstrap_grace_ms;
  }
  return r.detector->suspects(now);
}

bool ClusterNode::knows(NodeId peer) const {
  if (peer < 0 || peer >= max_nodes_) return false;
  if (peer == id_) return true;
  return peers_[static_cast<std::size_t>(peer)].known;
}

bool ClusterNode::believes_alive(NodeId peer) const {
  if (peer == id_) return true;
  if (peer < 0 || peer >= max_nodes_) return false;
  const PeerRecord& r = peers_[static_cast<std::size_t>(peer)];
  return r.known && !r.suspected;
}

void ClusterNode::reset_peers(double now,
                              const std::vector<NodeId>& contacts) {
  for (PeerRecord& r : peers_) {
    r = PeerRecord{};
  }
  hot_queue_.clear();
  known_count_ = 0;
  for (NodeId contact : contacts) {
    learn_peer(contact, now);
  }
}

}  // namespace rfd::cluster
