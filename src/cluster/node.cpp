#include "cluster/node.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rfd::cluster {

ClusterNode::ClusterNode(NodeId id, int max_nodes, NodeParams params)
    : id_(id), max_nodes_(max_nodes), params_(params),
      counters_(static_cast<std::size_t>(max_nodes), 0),
      hot_(static_cast<std::size_t>(max_nodes)),
      eval_tick_(static_cast<std::size_t>(max_nodes), -1),
      records_(static_cast<std::size_t>(max_nodes)),
      digest_cursor_(static_cast<int>(id) % max_nodes) {
  RFD_REQUIRE(id >= 0 && id < max_nodes);
  RFD_REQUIRE(params_.bootstrap_grace_ms > 0.0);
  // 0 would re-queue a peer on every observe() without any topology ever
  // draining it - unbounded hot-queue growth; the count is stored as one
  // dense byte per peer, hence the upper bound.
  RFD_REQUIRE(params_.hot_transmissions >= 1 &&
              params_.hot_transmissions <= 127);
  if (params_.detector.kind == rt::DetectorKind::kFixed) {
    fixed_timeout_ms_ = params_.detector.fixed.timeout_ms;
    RFD_REQUIRE(fixed_timeout_ms_ > 0.0);
  }
}

void ClusterNode::reset_peers(double now,
                              const std::vector<NodeId>& contacts) {
  std::fill(counters_.begin(), counters_.end(), 0);
  std::fill(hot_.begin(), hot_.end(), PeerHot{});
  std::fill(eval_tick_.begin(), eval_tick_.end(), std::int64_t{-1});
  for (PeerRecord& r : records_) {
    r = PeerRecord{};
  }
  hot_queue_.clear();
  hot_head_ = 0;
  known_count_ = 0;
  ++membership_version_;
  for (NodeId contact : contacts) {
    learn_peer(contact, now);
  }
}

}  // namespace rfd::cluster
