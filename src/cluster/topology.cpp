#include "cluster/topology.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace rfd::cluster {
namespace {

/// Counters worth forwarding: a zero counter carries no liveness evidence.
/// Reads the node's dense flags byte - this filter runs once per digest
/// slot scanned, the hottest loop in the topology layer.
bool has_freshness(const ClusterNode& node, NodeId peer) {
  return node.has_freshness(peer);
}

class AllToAllTopology final : public Topology {
 public:
  std::string name() const override { return "all-to-all"; }

  void targets(ClusterNode& node, Rng& /*rng*/,
               std::vector<NodeId>& out) override {
    for (NodeId j = 0; j < node.max_nodes(); ++j) {
      if (j != node.id() && node.knows(j)) out.push_back(j);
    }
  }

  void digest(ClusterNode& /*node*/, NodeId /*target*/,
              std::vector<NodeId>& /*out*/) override {
    // Every peer is monitored directly; piggybacking adds nothing.
  }
};

class RingTopology final : public Topology {
 public:
  explicit RingTopology(const TopologyParams& params) : params_(params) {}

  std::string name() const override {
    return "ring(k=" + std::to_string(params_.ring_successors) + ")";
  }

  void targets(ClusterNode& node, Rng& /*rng*/,
               std::vector<NodeId>& out) override {
    // The k nearest live-believed successors in cyclic id order, so the
    // ring routes around members it considers dead. Falls back to known
    // successors when everyone looks dead (e.g. right after a restart).
    pick_successors(node, out, /*require_alive=*/true);
    if (out.empty()) pick_successors(node, out, /*require_alive=*/false);
    // Always heartbeat the immediate known successor too, suspected or
    // not: a healed partition can only re-merge through a node willing to
    // talk across the old cut.
    const int n = node.max_nodes();
    for (int step = 1; step < n; ++step) {
      const NodeId j = static_cast<NodeId>(
          (static_cast<int>(node.id()) + step) % n);
      if (!node.knows(j)) continue;
      if (std::find(out.begin(), out.end(), j) == out.end()) {
        out.push_back(j);
      }
      break;
    }
  }

  void digest(ClusterNode& node, NodeId /*target*/,
              std::vector<NodeId>& out) override {
    node.select_digest(
        params_.digest_size,
        [&](NodeId j) { return has_freshness(node, j); }, out);
  }

 private:
  void pick_successors(ClusterNode& node, std::vector<NodeId>& out,
                       bool require_alive) const {
    const int n = node.max_nodes();
    for (int step = 1;
         step < n && static_cast<int>(out.size()) < params_.ring_successors;
         ++step) {
      const NodeId j = static_cast<NodeId>(
          (static_cast<int>(node.id()) + step) % n);
      if (!node.knows(j)) continue;
      if (require_alive && !node.believes_alive(j)) continue;
      out.push_back(j);
    }
  }

  TopologyParams params_;
};

class GossipTopology final : public Topology {
 public:
  GossipTopology(const TopologyParams& params, int max_nodes)
      : params_(params), cache_(static_cast<std::size_t>(max_nodes)) {}

  std::string name() const override {
    return "gossip(f=" + std::to_string(params_.gossip_fanout) + ")";
  }

  void targets(ClusterNode& node, Rng& rng,
               std::vector<NodeId>& out) override {
    // The alive/doubtful candidate lists only change when the node's
    // membership view does (a learn, a suspicion flip, a reset), which is
    // rare next to the per-round pump; cache them keyed on the node's
    // membership version instead of rescanning all peers every call.
    const TargetCache& cache = refreshed(node);
    const std::vector<NodeId>* candidates = &cache.alive;
    // When everyone looks dead, sample from the doubtful instead - and
    // the resurrect extra below then has nothing left to draw from
    // (mirrors the pre-cache list swap, RNG draw for RNG draw).
    const bool doubt_available =
        !candidates->empty() && !cache.doubtful.empty();
    if (candidates->empty()) candidates = &cache.doubtful;
    const int fanout = params_.gossip_fanout;
    const std::int64_t count =
        static_cast<std::int64_t>(candidates->size());
    if (count <= fanout) {
      out.insert(out.end(), candidates->begin(), candidates->end());
    } else {
      sample_without_replacement(*candidates, fanout, rng, out);
    }
    // Occasionally poke a peer believed dead: the only way a false
    // suspicion (e.g. the far side of a healed partition) can ever be
    // refuted is by re-establishing contact.
    if (doubt_available && rng.chance(params_.gossip_resurrect_prob)) {
      out.push_back(cache.doubtful[static_cast<std::size_t>(rng.below(
          static_cast<std::int64_t>(cache.doubtful.size())))]);
    }
  }

  void digest(ClusterNode& node, NodeId /*target*/,
              std::vector<NodeId>& out) override {
    node.select_digest(
        params_.digest_size,
        [&](NodeId j) { return has_freshness(node, j); }, out);
  }

 private:
  struct TargetCache {
    std::int64_t version = -1;
    std::vector<NodeId> alive;
    std::vector<NodeId> doubtful;
  };

  const TargetCache& refreshed(const ClusterNode& node) {
    TargetCache& cache = cache_[static_cast<std::size_t>(node.id())];
    if (cache.version != node.membership_version()) {
      cache.alive.clear();
      cache.doubtful.clear();
      for (NodeId j = 0; j < node.max_nodes(); ++j) {
        if (j == node.id() || !node.knows(j)) continue;
        if (node.believes_alive(j)) {
          cache.alive.push_back(j);
        } else {
          cache.doubtful.push_back(j);
        }
      }
      cache.version = node.membership_version();
    }
    return cache;
  }

  /// Partial Fisher-Yates over `pool` without mutating it: draws the
  /// same rng.below sequence and emits the same ids as shuffling the
  /// first `fanout` slots of a scratch copy, but tracks the (at most
  /// `fanout`) displaced values in a small overlay instead of copying
  /// the whole pool per call. Slot i is never read again once emitted
  /// (later draws index >= i+1), so only the j-side displacement is
  /// recorded.
  void sample_without_replacement(const std::vector<NodeId>& pool,
                                  int fanout, Rng& rng,
                                  std::vector<NodeId>& out) {
    overlay_.clear();
    const std::int64_t count = static_cast<std::int64_t>(pool.size());
    auto value_at = [&](std::int64_t idx) {
      for (const Displaced& d : overlay_) {
        if (d.idx == idx) return d.val;
      }
      return pool[static_cast<std::size_t>(idx)];
    };
    auto displace = [&](std::int64_t idx, NodeId val) {
      for (Displaced& d : overlay_) {
        if (d.idx == idx) {
          d.val = val;
          return;
        }
      }
      overlay_.push_back({idx, val});
    };
    for (int i = 0; i < fanout; ++i) {
      const std::int64_t j = i + rng.below(count - i);
      const NodeId taken = value_at(j);
      displace(j, value_at(i));
      out.push_back(taken);
    }
  }

  struct Displaced {
    std::int64_t idx;
    NodeId val;
  };

  TopologyParams params_;
  std::vector<TargetCache> cache_;
  std::vector<Displaced> overlay_;
};

class HierarchicalTopology final : public Topology {
 public:
  HierarchicalTopology(const TopologyParams& params, int max_nodes)
      : params_(params), max_nodes_(max_nodes),
        acting_(static_cast<std::size_t>(max_nodes), -1) {
    cluster_size_ = params.cluster_size > 0
                        ? params.cluster_size
                        : static_cast<int>(std::ceil(std::sqrt(
                              static_cast<double>(max_nodes))));
    cluster_size_ = std::max(cluster_size_, 2);
  }

  std::string name() const override {
    return "hierarchical(c=" + std::to_string(cluster_size_) + ")";
  }

  void targets(ClusterNode& node, Rng& /*rng*/,
               std::vector<NodeId>& out) override {
    const int own = cluster_of(node.id());
    // Intra-cluster: all-to-all with known cluster-mates.
    for (NodeId j = cluster_lo(own); j < cluster_hi(own); ++j) {
      if (j != node.id() && node.knows(j)) out.push_back(j);
    }
    // Inter-cluster: the two lowest own-cluster members this node
    // believes alive act as leaders (a primary alone would leave every
    // foreign observer blind to this cluster for a full takeover window
    // whenever the primary crashes), each contacting its best guess of
    // every other cluster's two leaders.
    const bool leads = acts_as_leader(node, own);
    note_leader(node.id(), own, leads);
    if (!leads) return;
    const int clusters = (max_nodes_ + cluster_size_ - 1) / cluster_size_;
    for (int g = 0; g < clusters; ++g) {
      if (g == own) continue;
      append_presumed_leaders(node, g, out);
    }
  }

  void digest(ClusterNode& node, NodeId target,
              std::vector<NodeId>& out) override {
    const int own = cluster_of(node.id());
    if (cluster_of(target) == own) {
      // Inside the cluster everyone is monitored directly; the payload
      // budget goes to foreign counters so members converge on crashes
      // in other clusters without ever talking to them.
      node.select_digest(
          params_.digest_size,
          [&](NodeId j) {
            return cluster_of(j) != own && has_freshness(node, j);
          },
          out);
    } else {
      // Leader-to-leader: summarize the sender's own cluster.
      node.select_digest(
          params_.digest_size,
          [&](NodeId j) {
            return cluster_of(j) == own && has_freshness(node, j);
          },
          out);
    }
  }

 private:
  int cluster_of(NodeId j) const { return static_cast<int>(j) / cluster_size_; }
  NodeId cluster_lo(int g) const {
    return static_cast<NodeId>(g * cluster_size_);
  }
  NodeId cluster_hi(int g) const {
    return static_cast<NodeId>(
        std::min((g + 1) * cluster_size_, max_nodes_));
  }

  static constexpr int kLeadersPerCluster = 2;

  /// Emits a "leader" trace record when a node's acting-leader status
  /// flips (leader changes are exactly the events a two-level fabric's
  /// operator wants on a timeline). The initial "not a leader" state is
  /// not newsworthy.
  void note_leader(NodeId id, int cluster, bool acting) {
    if (trace_ == nullptr) return;
    std::int8_t& prev = acting_[static_cast<std::size_t>(id)];
    const std::int8_t current = acting ? 1 : 0;
    if (prev == current) return;
    const bool newsworthy = acting || prev == 1;
    prev = current;
    if (!newsworthy) return;
    obs::Record r;
    r.type = obs::RecordType::kLeader;
    r.t = clock_ != nullptr ? clock_->now() : 0.0;
    r.a = id;
    r.b = cluster;
    r.c = current;
    trace_->emit(r);
  }

  bool acts_as_leader(const ClusterNode& node, int g) const {
    int rank = 0;
    for (NodeId j = cluster_lo(g); j < cluster_hi(g); ++j) {
      if (j == node.id()) return true;
      if (node.believes_alive(j) && ++rank >= kLeadersPerCluster) {
        return false;
      }
    }
    return false;
  }

  void append_presumed_leaders(const ClusterNode& node, int g,
                               std::vector<NodeId>& out) const {
    int found = 0;
    for (NodeId j = cluster_lo(g); j < cluster_hi(g); ++j) {
      if (node.knows(j) && node.believes_alive(j)) {
        out.push_back(j);
        if (++found >= kLeadersPerCluster) return;
      }
    }
    if (found > 0) return;
    // Everyone there looks dead; poke the lowest known member anyway so
    // a healed partition can re-establish contact.
    for (NodeId j = cluster_lo(g); j < cluster_hi(g); ++j) {
      if (node.knows(j)) {
        out.push_back(j);
        return;
      }
    }
  }

  TopologyParams params_;
  int max_nodes_;
  int cluster_size_;
  /// Last traced acting-leader status per node (-1 = never evaluated).
  std::vector<std::int8_t> acting_;
};

}  // namespace

std::unique_ptr<Topology> make_topology(const TopologyParams& params,
                                        int max_nodes) {
  RFD_REQUIRE(max_nodes >= 2);
  switch (params.kind) {
    case TopologyKind::kAllToAll:
      return std::make_unique<AllToAllTopology>();
    case TopologyKind::kRing:
      RFD_REQUIRE(params.ring_successors >= 1);
      return std::make_unique<RingTopology>(params);
    case TopologyKind::kGossip:
      RFD_REQUIRE(params.gossip_fanout >= 1);
      return std::make_unique<GossipTopology>(params, max_nodes);
    case TopologyKind::kHierarchical:
      return std::make_unique<HierarchicalTopology>(params, max_nodes);
  }
  RFD_UNREACHABLE("unknown topology kind");
}

std::string topology_kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kAllToAll:
      return "all-to-all";
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kGossip:
      return "gossip";
    case TopologyKind::kHierarchical:
      return "hierarchical";
  }
  return "?";
}

}  // namespace rfd::cluster
