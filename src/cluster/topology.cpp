#include "cluster/topology.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace rfd::cluster {
namespace {

/// Counters worth forwarding: a zero counter carries no liveness evidence.
bool has_freshness(const ClusterNode& node, NodeId peer) {
  return node.record(peer).counter > 0;
}

class AllToAllTopology final : public Topology {
 public:
  std::string name() const override { return "all-to-all"; }

  void targets(ClusterNode& node, Rng& /*rng*/,
               std::vector<NodeId>& out) override {
    for (NodeId j = 0; j < node.max_nodes(); ++j) {
      if (j != node.id() && node.knows(j)) out.push_back(j);
    }
  }

  void digest(ClusterNode& /*node*/, NodeId /*target*/,
              std::vector<NodeId>& /*out*/) override {
    // Every peer is monitored directly; piggybacking adds nothing.
  }
};

class RingTopology final : public Topology {
 public:
  explicit RingTopology(const TopologyParams& params) : params_(params) {}

  std::string name() const override {
    return "ring(k=" + std::to_string(params_.ring_successors) + ")";
  }

  void targets(ClusterNode& node, Rng& /*rng*/,
               std::vector<NodeId>& out) override {
    // The k nearest live-believed successors in cyclic id order, so the
    // ring routes around members it considers dead. Falls back to known
    // successors when everyone looks dead (e.g. right after a restart).
    pick_successors(node, out, /*require_alive=*/true);
    if (out.empty()) pick_successors(node, out, /*require_alive=*/false);
    // Always heartbeat the immediate known successor too, suspected or
    // not: a healed partition can only re-merge through a node willing to
    // talk across the old cut.
    const int n = node.max_nodes();
    for (int step = 1; step < n; ++step) {
      const NodeId j = static_cast<NodeId>(
          (static_cast<int>(node.id()) + step) % n);
      if (!node.knows(j)) continue;
      if (std::find(out.begin(), out.end(), j) == out.end()) {
        out.push_back(j);
      }
      break;
    }
  }

  void digest(ClusterNode& node, NodeId /*target*/,
              std::vector<NodeId>& out) override {
    node.select_digest(
        params_.digest_size,
        [&](NodeId j) { return has_freshness(node, j); }, out);
  }

 private:
  void pick_successors(ClusterNode& node, std::vector<NodeId>& out,
                       bool require_alive) const {
    const int n = node.max_nodes();
    for (int step = 1;
         step < n && static_cast<int>(out.size()) < params_.ring_successors;
         ++step) {
      const NodeId j = static_cast<NodeId>(
          (static_cast<int>(node.id()) + step) % n);
      if (!node.knows(j)) continue;
      if (require_alive && !node.believes_alive(j)) continue;
      out.push_back(j);
    }
  }

  TopologyParams params_;
};

class GossipTopology final : public Topology {
 public:
  explicit GossipTopology(const TopologyParams& params) : params_(params) {}

  std::string name() const override {
    return "gossip(f=" + std::to_string(params_.gossip_fanout) + ")";
  }

  void targets(ClusterNode& node, Rng& rng,
               std::vector<NodeId>& out) override {
    scratch_.clear();
    doubtful_.clear();
    for (NodeId j = 0; j < node.max_nodes(); ++j) {
      if (j == node.id() || !node.knows(j)) continue;
      if (node.believes_alive(j)) {
        scratch_.push_back(j);
      } else {
        doubtful_.push_back(j);
      }
    }
    if (scratch_.empty()) std::swap(scratch_, doubtful_);
    const int fanout = params_.gossip_fanout;
    const int count = static_cast<int>(scratch_.size());
    if (count <= fanout) {
      out.insert(out.end(), scratch_.begin(), scratch_.end());
    } else {
      // Partial Fisher-Yates: the first `fanout` slots become a uniform
      // sample without replacement.
      for (int i = 0; i < fanout; ++i) {
        const std::int64_t j = i + rng.below(count - i);
        std::swap(scratch_[static_cast<std::size_t>(i)],
                  scratch_[static_cast<std::size_t>(j)]);
        out.push_back(scratch_[static_cast<std::size_t>(i)]);
      }
    }
    // Occasionally poke a peer believed dead: the only way a false
    // suspicion (e.g. the far side of a healed partition) can ever be
    // refuted is by re-establishing contact.
    if (!doubtful_.empty() && rng.chance(params_.gossip_resurrect_prob)) {
      out.push_back(doubtful_[static_cast<std::size_t>(
          rng.below(static_cast<std::int64_t>(doubtful_.size())))]);
    }
  }

  void digest(ClusterNode& node, NodeId /*target*/,
              std::vector<NodeId>& out) override {
    node.select_digest(
        params_.digest_size,
        [&](NodeId j) { return has_freshness(node, j); }, out);
  }

 private:
  TopologyParams params_;
  std::vector<NodeId> scratch_;
  std::vector<NodeId> doubtful_;
};

class HierarchicalTopology final : public Topology {
 public:
  HierarchicalTopology(const TopologyParams& params, int max_nodes)
      : params_(params), max_nodes_(max_nodes) {
    cluster_size_ = params.cluster_size > 0
                        ? params.cluster_size
                        : static_cast<int>(std::ceil(std::sqrt(
                              static_cast<double>(max_nodes))));
    cluster_size_ = std::max(cluster_size_, 2);
  }

  std::string name() const override {
    return "hierarchical(c=" + std::to_string(cluster_size_) + ")";
  }

  void targets(ClusterNode& node, Rng& /*rng*/,
               std::vector<NodeId>& out) override {
    const int own = cluster_of(node.id());
    // Intra-cluster: all-to-all with known cluster-mates.
    for (NodeId j = cluster_lo(own); j < cluster_hi(own); ++j) {
      if (j != node.id() && node.knows(j)) out.push_back(j);
    }
    // Inter-cluster: the two lowest own-cluster members this node
    // believes alive act as leaders (a primary alone would leave every
    // foreign observer blind to this cluster for a full takeover window
    // whenever the primary crashes), each contacting its best guess of
    // every other cluster's two leaders.
    if (!acts_as_leader(node, own)) return;
    const int clusters = (max_nodes_ + cluster_size_ - 1) / cluster_size_;
    for (int g = 0; g < clusters; ++g) {
      if (g == own) continue;
      append_presumed_leaders(node, g, out);
    }
  }

  void digest(ClusterNode& node, NodeId target,
              std::vector<NodeId>& out) override {
    const int own = cluster_of(node.id());
    if (cluster_of(target) == own) {
      // Inside the cluster everyone is monitored directly; the payload
      // budget goes to foreign counters so members converge on crashes
      // in other clusters without ever talking to them.
      node.select_digest(
          params_.digest_size,
          [&](NodeId j) {
            return cluster_of(j) != own && has_freshness(node, j);
          },
          out);
    } else {
      // Leader-to-leader: summarize the sender's own cluster.
      node.select_digest(
          params_.digest_size,
          [&](NodeId j) {
            return cluster_of(j) == own && has_freshness(node, j);
          },
          out);
    }
  }

 private:
  int cluster_of(NodeId j) const { return static_cast<int>(j) / cluster_size_; }
  NodeId cluster_lo(int g) const {
    return static_cast<NodeId>(g * cluster_size_);
  }
  NodeId cluster_hi(int g) const {
    return static_cast<NodeId>(
        std::min((g + 1) * cluster_size_, max_nodes_));
  }

  static constexpr int kLeadersPerCluster = 2;

  bool acts_as_leader(const ClusterNode& node, int g) const {
    int rank = 0;
    for (NodeId j = cluster_lo(g); j < cluster_hi(g); ++j) {
      if (j == node.id()) return true;
      if (node.believes_alive(j) && ++rank >= kLeadersPerCluster) {
        return false;
      }
    }
    return false;
  }

  void append_presumed_leaders(const ClusterNode& node, int g,
                               std::vector<NodeId>& out) const {
    int found = 0;
    for (NodeId j = cluster_lo(g); j < cluster_hi(g); ++j) {
      if (node.knows(j) && node.believes_alive(j)) {
        out.push_back(j);
        if (++found >= kLeadersPerCluster) return;
      }
    }
    if (found > 0) return;
    // Everyone there looks dead; poke the lowest known member anyway so
    // a healed partition can re-establish contact.
    for (NodeId j = cluster_lo(g); j < cluster_hi(g); ++j) {
      if (node.knows(j)) {
        out.push_back(j);
        return;
      }
    }
  }

  TopologyParams params_;
  int max_nodes_;
  int cluster_size_;
};

}  // namespace

std::unique_ptr<Topology> make_topology(const TopologyParams& params,
                                        int max_nodes) {
  RFD_REQUIRE(max_nodes >= 2);
  switch (params.kind) {
    case TopologyKind::kAllToAll:
      return std::make_unique<AllToAllTopology>();
    case TopologyKind::kRing:
      RFD_REQUIRE(params.ring_successors >= 1);
      return std::make_unique<RingTopology>(params);
    case TopologyKind::kGossip:
      RFD_REQUIRE(params.gossip_fanout >= 1);
      return std::make_unique<GossipTopology>(params);
    case TopologyKind::kHierarchical:
      return std::make_unique<HierarchicalTopology>(params, max_nodes);
  }
  RFD_UNREACHABLE("unknown topology kind");
}

std::string topology_kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kAllToAll:
      return "all-to-all";
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kGossip:
      return "gossip";
    case TopologyKind::kHierarchical:
      return "hierarchical";
  }
  return "?";
}

}  // namespace rfd::cluster
