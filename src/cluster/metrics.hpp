// Cluster-level QoS aggregation: what the whole monitoring fabric
// delivers, as opposed to the single monitor/peer QoS of runtime/qos.hpp
// (experiment E9). The report makes dissemination topologies directly
// comparable: detection latency percentiles across every (observer,
// victim) pair, false-suspicion counts, per-node message load, and
// convergence time - how long after a disruption until every live node
// agrees on the true crashed set.
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.hpp"

namespace rfd::cluster {

struct ClusterReport {
  int n = 0;          // initial active nodes (rates are normalized by this)
  int max_nodes = 0;  // id space (>= n when the scenario includes joins)
  std::string topology;
  std::string detector;
  double duration_ms = 0.0;

  // Message complexity.
  std::int64_t messages_sent = 0;
  std::int64_t messages_dropped = 0;
  std::int64_t partition_dropped = 0;
  /// Piggybacked (id, counter) entries beyond the senders' own - the
  /// bandwidth the topology spends on transitive dissemination.
  std::int64_t digest_entries_sent = 0;
  double messages_per_node_per_s = 0.0;
  double entries_per_node_per_s = 0.0;

  // Simulation-core throughput inputs (filled by the engine; the E12
  // bench divides events by wall-clock to get events/sec).
  std::int64_t events_executed = 0;
  std::int64_t peak_event_queue = 0;

  // Detection quality. One latency sample per (live observer, crashed
  // victim) pair, measured crash -> start of the suspicion that still
  // stands at the end of the run; quantized to the check interval.
  Summary detection_latency_ms;
  std::int64_t missed_detections = 0;
  /// Suspicion transitions against peers that were alive at that moment.
  std::int64_t false_suspicions = 0;
  double false_suspicions_per_node_per_min = 0.0;

  // Agreement. A disruption is a crash/recover/leave, or a heal/storm-end
  // that found the cluster disagreeing; convergence is the time from the
  // disruption until every live node's suspect set matches the true
  // crashed set (ignorance of never-met nodes does not count against).
  Summary convergence_ms;
  std::int64_t disruptions = 0;
  /// Disruptions superseded or still unconverged at the end of the run.
  std::int64_t unconverged_disruptions = 0;
  bool final_agreement = false;

  /// One-line human summary for demos and logs.
  std::string summary() const;
};

/// Fills the per-node rate fields from the raw counters.
void finalize_rates(ClusterReport& report);

}  // namespace rfd::cluster
