// Cluster-level QoS aggregation: what the whole monitoring fabric
// delivers, as opposed to the single monitor/peer QoS of runtime/qos.hpp
// (experiment E9). The report makes dissemination topologies directly
// comparable: detection latency percentiles across every (observer,
// victim) pair, false-suspicion counts, per-node message load, and
// convergence time - how long after a disruption until every live node
// agrees on the true crashed set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/profile.hpp"
#include "obs/registry.hpp"

namespace rfd::cluster {

/// Metric names the engine registers in its obs::Registry - the
/// registry is the backing store for the aggregation below, and these
/// names are what snapshot records carry in the trace stream.
namespace metric {
inline constexpr const char* kDigestEntries = "cluster.digest_entries_sent";
inline constexpr const char* kPayloadBytes = "cluster.digest_payload_bytes";
inline constexpr const char* kSuspicionRaises = "cluster.suspicion_raises";
inline constexpr const char* kSuspicionClears = "cluster.suspicion_clears";
inline constexpr const char* kFalseSuspicions = "cluster.false_suspicions";
inline constexpr const char* kDisruptions = "cluster.disruptions";
inline constexpr const char* kMissedDetections = "cluster.missed_detections";
inline constexpr const char* kDetectionMs = "cluster.detection_ms";
inline constexpr const char* kConvergenceMs = "cluster.convergence_ms";
// Gauges refreshed at snapshot time.
inline constexpr const char* kDisagreeingPairs = "cluster.disagreeing_pairs";
inline constexpr const char* kNetSent = "net.sent";
inline constexpr const char* kNetDropped = "net.dropped";
inline constexpr const char* kNetPartitionDropped = "net.partition_dropped";
inline constexpr const char* kQueueSize = "queue.size";
inline constexpr const char* kQueueExecuted = "queue.executed";
inline constexpr const char* kMaxHotQueue = "node.max_hot_queue";
}  // namespace metric

struct ClusterReport {
  int n = 0;          // initial active nodes (rates are normalized by this)
  int max_nodes = 0;  // id space (>= n when the scenario includes joins)
  std::string topology;
  std::string detector;
  double duration_ms = 0.0;

  // Message complexity.
  std::int64_t messages_sent = 0;
  std::int64_t messages_dropped = 0;
  std::int64_t partition_dropped = 0;
  /// Piggybacked (id, counter) entries beyond the senders' own - the
  /// bandwidth the topology spends on transitive dissemination.
  std::int64_t digest_entries_sent = 0;
  /// Encoded payload bytes of every surviving message (the delta-
  /// compressed wire size; see cluster/digest_codec.hpp).
  std::int64_t digest_payload_bytes = 0;
  double messages_per_node_per_s = 0.0;
  double entries_per_node_per_s = 0.0;
  double payload_bytes_per_node_per_s = 0.0;

  // Simulation-core throughput inputs (filled by the engine; the E12
  // bench divides events by wall-clock to get events/sec).
  std::int64_t events_executed = 0;
  std::int64_t peak_event_queue = 0;

  // Detection quality. One latency sample per (live observer, crashed
  // victim) pair, measured crash -> start of the suspicion that still
  // stands at the end of the run; quantized to the check interval.
  Summary detection_latency_ms;
  std::int64_t missed_detections = 0;
  /// Suspicion transitions against peers that were alive at that moment.
  std::int64_t false_suspicions = 0;
  double false_suspicions_per_node_per_min = 0.0;

  // Agreement. A disruption is a crash/recover/leave, or a heal/storm-end
  // that found the cluster disagreeing; convergence is the time from the
  // disruption until every live node's suspect set matches the true
  // crashed set (ignorance of never-met nodes does not count against).
  Summary convergence_ms;
  std::int64_t disruptions = 0;
  /// Disruptions superseded or still unconverged at the end of the run.
  std::int64_t unconverged_disruptions = 0;
  bool final_agreement = false;

  /// Suspicion transitions (raise/clear) over the whole run, regardless
  /// of whether the victim was actually down.
  std::int64_t suspicion_raises = 0;
  std::int64_t suspicion_clears = 0;

  // Observability (empty when tracing/profiling is off).
  std::int64_t trace_records = 0;
  std::int64_t trace_dropped = 0;
  /// Phase-timer rollups (observe / digest / dispatch / route) when
  /// profiling was enabled.
  std::vector<obs::PhaseStat> profile;

  /// One-line human summary for demos and logs.
  std::string summary() const;
};

/// Fills the per-node rate fields from the raw counters.
void finalize_rates(ClusterReport& report);

/// Copies the engine's registry-backed aggregation into the report.
/// The registry is the store of record during the run; the report is the
/// flat snapshot benches and demos serialize.
void fill_report_from_registry(ClusterReport& report,
                               const obs::Registry& registry);

}  // namespace rfd::cluster
