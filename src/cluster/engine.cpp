#include "cluster/engine.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "runtime/event_queue.hpp"

namespace rfd::cluster {
namespace {

using Entry = std::pair<NodeId, std::int64_t>;

class ClusterEngine {
 public:
  ClusterEngine(const ClusterConfig& config, std::uint64_t seed)
      : config_(config),
        max_nodes_(config.max_nodes > 0 ? config.max_nodes : config.n),
        network_(queue_, mix_seed(seed, 0xc1e5), config.network),
        topology_(make_topology(config.topology, max_nodes_)) {
    RFD_REQUIRE(config_.n >= 2);
    RFD_REQUIRE(max_nodes_ >= config_.n);
    RFD_REQUIRE(config_.heartbeat_interval_ms > 0.0);
    RFD_REQUIRE(config_.check_interval_ms > 0.0);

    NodeParams node_params;
    node_params.detector = config_.detector;
    node_params.bootstrap_grace_ms = config_.bootstrap_grace_ms;
    node_params.hot_transmissions = config_.hot_transmissions;
    nodes_.reserve(static_cast<std::size_t>(max_nodes_));
    const Rng base(mix_seed(seed, 0x0dde));
    for (NodeId i = 0; i < max_nodes_; ++i) {
      nodes_.emplace_back(i, max_nodes_, node_params);
      rngs_.push_back(base.split(static_cast<std::uint64_t>(i)));
    }

    ever_active_.assign(static_cast<std::size_t>(max_nodes_), false);
    truth_active_.assign(static_cast<std::size_t>(max_nodes_), false);
    down_since_.assign(static_cast<std::size_t>(max_nodes_), -1.0);
    for (NodeId i = 0; i < config_.n; ++i) {
      ever_active_[static_cast<std::size_t>(i)] = true;
      truth_active_[static_cast<std::size_t>(i)] = true;
    }
    for (NodeId i = config_.n; i < max_nodes_; ++i) {
      nodes_[static_cast<std::size_t>(i)].set_active(false);
    }
    // The initial membership list is configuration, not discovery.
    for (NodeId i = 0; i < config_.n; ++i) {
      for (NodeId j = 0; j < config_.n; ++j) {
        if (i != j) nodes_[static_cast<std::size_t>(i)].learn_peer(j, 0.0);
      }
    }

    report_.n = config_.n;
    report_.max_nodes = max_nodes_;
    report_.topology = topology_->name();
    report_.detector = rt::detector_kind_name(config_.detector.kind);
    report_.duration_ms = config_.duration_ms;
  }

  ClusterReport run() {
    for (const FaultEvent& event : config_.scenario.sorted()) {
      queue_.schedule(event.at_ms, [this, event] { apply(event); });
    }
    for (NodeId i = 0; i < max_nodes_; ++i) {
      // Desynchronized heartbeat phases, as in any real deployment.
      const double phase =
          rngs_[static_cast<std::size_t>(i)].uniform01() *
          config_.heartbeat_interval_ms;
      queue_.schedule(phase, [this, i] { pump(i); });
    }
    queue_.schedule(config_.check_interval_ms, [this] { check(); });
    queue_.run_until(config_.duration_ms);
    finalize();
    return std::move(report_);
  }

 private:
  void pump(NodeId i) {
    ClusterNode& node = nodes_[static_cast<std::size_t>(i)];
    if (node.active()) {
      node.advance_own_counter();
      targets_scratch_.clear();
      topology_->targets(node, rngs_[static_cast<std::size_t>(i)],
                         targets_scratch_);
      for (NodeId target : targets_scratch_) {
        digest_scratch_.clear();
        topology_->digest(node, target, digest_scratch_);
        std::vector<Entry> entries;
        entries.reserve(digest_scratch_.size() + 1);
        entries.emplace_back(i, node.own_counter());
        for (NodeId j : digest_scratch_) {
          entries.emplace_back(j, node.record(j).counter);
        }
        report_.digest_entries_sent +=
            static_cast<std::int64_t>(digest_scratch_.size());
        network_.send(i, target,
                      [this, target, entries = std::move(entries)] {
                        receive(target, entries);
                      });
      }
    }
    queue_.schedule_in(config_.heartbeat_interval_ms, [this, i] { pump(i); });
  }

  void receive(NodeId to, const std::vector<Entry>& entries) {
    ClusterNode& node = nodes_[static_cast<std::size_t>(to)];
    if (!node.active()) return;
    const double now = queue_.now();
    for (const Entry& entry : entries) {
      node.observe(entry.first, entry.second, now);
    }
  }

  void check() {
    const double now = queue_.now();
    bool all_agree = true;
    for (NodeId i = 0; i < max_nodes_; ++i) {
      ClusterNode& node = nodes_[static_cast<std::size_t>(i)];
      if (!node.active()) continue;
      for (NodeId j = 0; j < max_nodes_; ++j) {
        if (j == i) continue;
        PeerRecord& r = node.mutable_record(j);
        const bool truly_down = ever_active_[static_cast<std::size_t>(j)] &&
                                !truth_active_[static_cast<std::size_t>(j)];
        if (!r.known) {
          // Ignorance of a node it never met is consistent either way.
          continue;
        }
        const bool suspected = node.suspects(j, now);
        if (suspected != r.suspected) {
          r.suspected = suspected;
          r.suspect_since = suspected ? now : -1.0;
          if (suspected && !truly_down) ++report_.false_suspicions;
        }
        if (suspected != truly_down) all_agree = false;
      }
    }
    if (all_agree && agreed_version_ < truth_version_) {
      report_.convergence_ms.add(now - truth_change_time_);
      agreed_version_ = truth_version_;
    }
    last_agreement_ = all_agree;
    queue_.schedule_in(config_.check_interval_ms, [this] { check(); });
  }

  std::vector<NodeId> active_contacts() const {
    std::vector<NodeId> contacts;
    for (NodeId j = 0; j < max_nodes_; ++j) {
      if (truth_active_[static_cast<std::size_t>(j)]) contacts.push_back(j);
    }
    return contacts;
  }

  void bump_truth(double now) {
    // A batch of same-instant faults (e.g. a rack failing) is one
    // disruption to converge from, not many.
    if (truth_version_ > 0 && truth_change_time_ == now) return;
    ++truth_version_;
    truth_change_time_ = now;
    ++report_.disruptions;
  }

  void apply(const FaultEvent& event) {
    const double now = queue_.now();
    switch (event.kind) {
      case FaultKind::kCrash:
      case FaultKind::kLeave: {
        const NodeId j = event.node;
        RFD_REQUIRE(j >= 0 && j < max_nodes_);
        if (!truth_active_[static_cast<std::size_t>(j)]) return;
        truth_active_[static_cast<std::size_t>(j)] = false;
        down_since_[static_cast<std::size_t>(j)] = now;
        nodes_[static_cast<std::size_t>(j)].set_active(false);
        bump_truth(now);
        break;
      }
      case FaultKind::kRecover: {
        const NodeId j = event.node;
        RFD_REQUIRE(j >= 0 && j < max_nodes_);
        if (!ever_active_[static_cast<std::size_t>(j)] ||
            truth_active_[static_cast<std::size_t>(j)]) {
          return;
        }
        truth_active_[static_cast<std::size_t>(j)] = true;
        down_since_[static_cast<std::size_t>(j)] = -1.0;
        ClusterNode& node = nodes_[static_cast<std::size_t>(j)];
        // A restarted process lost its peer memory; it rejoins from the
        // current membership the way a provisioning system would seed it.
        node.reset_peers(now, active_contacts());
        node.set_active(true);
        bump_truth(now);
        break;
      }
      case FaultKind::kJoin: {
        const NodeId j = event.node;
        RFD_REQUIRE(j >= 0 && j < max_nodes_);
        if (ever_active_[static_cast<std::size_t>(j)]) return;
        ever_active_[static_cast<std::size_t>(j)] = true;
        truth_active_[static_cast<std::size_t>(j)] = true;
        ClusterNode& node = nodes_[static_cast<std::size_t>(j)];
        node.reset_peers(now, active_contacts());
        node.set_active(true);
        // The join itself does not change the true crashed set, so it is
        // not a disruption to converge from.
        break;
      }
      case FaultKind::kPartition:
        network_.set_partition(event.groups);
        break;
      case FaultKind::kHeal:
        network_.clear_partition();
        // Re-convergence is only measurable if the partition actually
        // drove the cluster into disagreement.
        if (!last_agreement_) bump_truth(now);
        break;
      case FaultKind::kStormStart:
        network_.set_storm(event.extra_delay_ms, event.delay_prob);
        break;
      case FaultKind::kStormEnd:
        network_.clear_storm();
        if (!last_agreement_) bump_truth(now);
        break;
    }
  }

  void finalize() {
    for (NodeId j = 0; j < max_nodes_; ++j) {
      const bool truly_down = ever_active_[static_cast<std::size_t>(j)] &&
                              !truth_active_[static_cast<std::size_t>(j)];
      if (!truly_down || down_since_[static_cast<std::size_t>(j)] < 0.0) {
        continue;
      }
      const double down_at = down_since_[static_cast<std::size_t>(j)];
      for (NodeId i = 0; i < max_nodes_; ++i) {
        if (i == j || !truth_active_[static_cast<std::size_t>(i)]) continue;
        const PeerRecord& r =
            nodes_[static_cast<std::size_t>(i)].record(j);
        if (!r.known) continue;  // never met the victim; not a miss
        if (r.suspected) {
          // A suspicion already standing at crash time detects "instantly"
          // from the abstraction's point of view.
          report_.detection_latency_ms.add(
              std::max(0.0, r.suspect_since - down_at));
        } else {
          ++report_.missed_detections;
        }
      }
    }
    report_.messages_sent = network_.sent();
    report_.messages_dropped = network_.dropped();
    report_.partition_dropped = network_.partition_dropped();
    report_.unconverged_disruptions =
        report_.disruptions - report_.convergence_ms.count();
    report_.final_agreement = last_agreement_;
    finalize_rates(report_);
  }

  ClusterConfig config_;
  int max_nodes_;
  rt::EventQueue queue_;
  rt::Network network_;
  std::unique_ptr<Topology> topology_;
  std::vector<ClusterNode> nodes_;
  std::vector<Rng> rngs_;

  // Ground truth, maintained by the scenario interpreter.
  std::vector<bool> ever_active_;
  std::vector<bool> truth_active_;
  std::vector<double> down_since_;
  std::int64_t truth_version_ = 0;
  std::int64_t agreed_version_ = 0;
  double truth_change_time_ = 0.0;
  bool last_agreement_ = true;

  ClusterReport report_;
  std::vector<NodeId> targets_scratch_;
  std::vector<NodeId> digest_scratch_;
};

}  // namespace

ClusterReport run_cluster(const ClusterConfig& config, std::uint64_t seed) {
  ClusterEngine engine(config, seed);
  return engine.run();
}

}  // namespace rfd::cluster
