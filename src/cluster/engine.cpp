#include "cluster/engine.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "obs/profile.hpp"
#include "obs/record.hpp"
#include "obs/registry.hpp"
#include "obs/trace_writer.hpp"
#include "runtime/event_queue.hpp"

namespace rfd::cluster {
namespace {

// Digest payload entry. Counters ride as 32 bits - ClusterNode bounds
// its own counter accordingly - halving payload buffer traffic.
using Entry = std::pair<NodeId, std::int32_t>;

// Suspicion tracking is incremental: instead of rescanning all
// n*(n-1) (observer, victim) pairs every check interval, each known pair
// keeps one expiry deadline on a wheel keyed by check-tick index
// (PeerRecord::eval_tick + the tick -> pairs buckets below). A pair is
// touched only when its deadline tick arrives or a counter advance moves
// its deadline, so the per-tick cost is O(advances + expiries) instead of
// O(n^2). Verdicts are still sampled with the same suspects(now) calls at
// the same check-tick times as the old full scan - suspicion is monotone
// between heartbeats, so a pair's verdict can only change at a counter
// advance (which re-arms it) or past its deadline (where it is armed) -
// which keeps every reported metric bit-for-bit identical on a fixed
// seed. Cluster-wide agreement is a disagreeing-pair counter maintained
// on every cached-verdict flip and ground-truth change, replacing the
// full-scan reduction.
class ClusterEngine {
 public:
  ClusterEngine(const ClusterConfig& config, std::uint64_t seed)
      : config_(config),
        max_nodes_(config.max_nodes > 0 ? config.max_nodes : config.n),
        network_(queue_, mix_seed(seed, 0xc1e5), config.network),
        topology_(make_topology(config.topology, max_nodes_)) {
    RFD_REQUIRE(config_.n >= 2);
    RFD_REQUIRE(max_nodes_ >= config_.n);
    RFD_REQUIRE(config_.heartbeat_interval_ms > 0.0);
    RFD_REQUIRE(config_.check_interval_ms > 0.0);
    seed_ = seed;

    // The registry is the backing store for everything the report
    // aggregates; registration order here fixes the field order of the
    // snapshot records in the trace.
    c_digest_entries_ = &registry_.counter(metric::kDigestEntries);
    c_raises_ = &registry_.counter(metric::kSuspicionRaises);
    c_clears_ = &registry_.counter(metric::kSuspicionClears);
    c_false_ = &registry_.counter(metric::kFalseSuspicions);
    c_disruptions_ = &registry_.counter(metric::kDisruptions);
    c_missed_ = &registry_.counter(metric::kMissedDetections);
    h_detect_ = &registry_.histogram(metric::kDetectionMs);
    h_convergence_ = &registry_.histogram(metric::kConvergenceMs);
    g_disagreeing_ = &registry_.gauge(metric::kDisagreeingPairs);
    g_net_sent_ = &registry_.gauge(metric::kNetSent);
    g_net_dropped_ = &registry_.gauge(metric::kNetDropped);
    g_net_partition_ = &registry_.gauge(metric::kNetPartitionDropped);
    g_queue_size_ = &registry_.gauge(metric::kQueueSize);
    g_queue_executed_ = &registry_.gauge(metric::kQueueExecuted);
    g_hot_queue_ = &registry_.gauge(metric::kMaxHotQueue);

    if (config_.obs.trace_enabled()) {
      trace_storage_ = std::make_unique<obs::TraceWriter>(config_.obs);
      if (trace_storage_->ok()) {
        trace_ = trace_storage_.get();
        network_.set_trace(trace_);
        topology_->set_trace(trace_, &queue_);
      }
    }
    if (obs::kEnabled && config_.obs.profile) {
      profiler_ =
          std::make_unique<obs::Profiler>(config_.obs.profile_sample_shift);
      queue_.set_profiler(profiler_.get());
      network_.set_profiler(profiler_.get());
    }

    NodeParams node_params;
    node_params.detector = config_.detector;
    node_params.bootstrap_grace_ms = config_.bootstrap_grace_ms;
    node_params.hot_transmissions = config_.hot_transmissions;
    nodes_.reserve(static_cast<std::size_t>(max_nodes_));
    const Rng base(mix_seed(seed, 0x0dde));
    for (NodeId i = 0; i < max_nodes_; ++i) {
      nodes_.emplace_back(i, max_nodes_, node_params);
      rngs_.push_back(base.split(static_cast<std::uint64_t>(i)));
    }

    ever_active_.assign(static_cast<std::size_t>(max_nodes_), false);
    truth_active_.assign(static_cast<std::size_t>(max_nodes_), false);
    down_since_.assign(static_cast<std::size_t>(max_nodes_), -1.0);
    for (NodeId i = 0; i < config_.n; ++i) {
      ever_active_[static_cast<std::size_t>(i)] = true;
      truth_active_[static_cast<std::size_t>(i)] = true;
    }
    for (NodeId i = config_.n; i < max_nodes_; ++i) {
      nodes_[static_cast<std::size_t>(i)].set_active(false);
    }
    // The initial membership list is configuration, not discovery.
    for (NodeId i = 0; i < config_.n; ++i) {
      for (NodeId j = 0; j < config_.n; ++j) {
        if (i == j) continue;
        nodes_[static_cast<std::size_t>(i)].learn_peer(j, 0.0);
        on_learned(i, j);
      }
    }

    report_.n = config_.n;
    report_.max_nodes = max_nodes_;
    report_.topology = topology_->name();
    report_.detector = rt::detector_kind_name(config_.detector.kind);
    report_.duration_ms = config_.duration_ms;
  }

  ClusterReport run() {
    if (trace_ != nullptr) {
      trace_->write_line(
          obs::JsonLine{}
              .str("type", "run")
              .integer("v", 1)
              .num("t", 0.0)
              .integer("n", config_.n)
              .integer("max_nodes", max_nodes_)
              .str("topology", report_.topology)
              .str("detector", report_.detector)
              .integer("seed", static_cast<std::int64_t>(seed_))
              .num("duration_ms", config_.duration_ms)
              .num("heartbeat_ms", config_.heartbeat_interval_ms)
              .num("check_ms", config_.check_interval_ms)
              .finish());
    }
    for (const FaultEvent& event : config_.scenario.sorted()) {
      queue_.schedule(event.at_ms, [this, event] { apply(event); });
    }
    for (NodeId i = 0; i < max_nodes_; ++i) {
      // Desynchronized heartbeat phases, as in any real deployment.
      const double phase =
          rngs_[static_cast<std::size_t>(i)].uniform01() *
          config_.heartbeat_interval_ms;
      queue_.schedule(phase, [this, i] { pump(i); });
    }
    queue_.schedule(config_.check_interval_ms, [this] { check(); });
    queue_.run_until(config_.duration_ms);
    finalize();
    return std::move(report_);
  }

 private:
  bool truly_down(NodeId j) const {
    return ever_active_[static_cast<std::size_t>(j)] &&
           !truth_active_[static_cast<std::size_t>(j)];
  }

  std::vector<Entry> take_entries() {
    if (entry_pool_.empty()) return {};
    std::vector<Entry> buffer = std::move(entry_pool_.back());
    entry_pool_.pop_back();
    return buffer;
  }

  std::uint64_t pair_key(NodeId i, NodeId j) const {
    return static_cast<std::uint64_t>(i) *
               static_cast<std::uint64_t>(max_nodes_) +
           static_cast<std::uint64_t>(j);
  }

  /// Arms pair (i, j) for evaluation at check tick `tick` (clamped to the
  /// next tick). Earliest arming wins; superseded bucket entries are
  /// skipped via the eval_tick mismatch when their tick comes up.
  void arm_pair(NodeId i, NodeId j, std::int64_t tick) {
    tick = std::max(tick, check_tick_ + 1);
    ClusterNode& node = nodes_[static_cast<std::size_t>(i)];
    const std::int64_t current = node.eval_tick(j);
    if (current >= 0 && current <= tick) return;
    node.set_eval_tick(j, tick);
    eval_buckets_[tick].push_back(pair_key(i, j));
  }

  /// Check tick at which deadline `at` could first flip a verdict. One
  /// tick early on purpose: arming early costs one extra suspects()
  /// query, arming late would miss the tick the full scan would have
  /// caught.
  std::int64_t deadline_tick(double at) const {
    return static_cast<std::int64_t>(
               std::floor(at / config_.check_interval_ms)) -
           1;
  }

  void arm_deadline(NodeId i, NodeId j) {
    const double deadline =
        nodes_[static_cast<std::size_t>(i)].suspect_deadline(j);
    if (!std::isfinite(deadline)) return;
    arm_pair(i, j, deadline_tick(deadline));
  }

  /// Bookkeeping when observer `i` first learns that `j` exists: the
  /// fresh record is unsuspected, and the pair expires at the end of the
  /// bootstrap grace window unless a counter advance arrives first.
  void on_learned(NodeId i, NodeId j) {
    if (nodes_[static_cast<std::size_t>(i)].active() && truly_down(j)) {
      ++disagreeing_pairs_;
    }
    arm_deadline(i, j);
  }

  /// Adds (sign=+1) or removes (sign=-1) observer row `i`'s known pairs
  /// from the disagreement count, when the row enters or leaves the set
  /// of live observers.
  void count_row(NodeId i, int sign) {
    const ClusterNode& node = nodes_[static_cast<std::size_t>(i)];
    for (NodeId j = 0; j < max_nodes_; ++j) {
      if (j == i || !node.knows(j)) continue;
      if (node.is_suspected(j) != truly_down(j)) disagreeing_pairs_ += sign;
    }
  }

  /// Re-scores column `j` after truly_down(j) flipped; call with the
  /// truth arrays already updated. Only live observer rows count.
  void rescore_column(NodeId j) {
    const bool down = truly_down(j);
    for (NodeId i = 0; i < max_nodes_; ++i) {
      const ClusterNode& node = nodes_[static_cast<std::size_t>(i)];
      if (i == j || !node.active() || !node.knows(j)) continue;
      disagreeing_pairs_ += (node.is_suspected(j) != down) ? 1 : 0;
      disagreeing_pairs_ -= (node.is_suspected(j) != !down) ? 1 : 0;
    }
  }

  void pump(NodeId i) {
    ClusterNode& node = nodes_[static_cast<std::size_t>(i)];
    if (node.active()) {
      node.advance_own_counter();
      targets_scratch_.clear();
      topology_->targets(node, rngs_[static_cast<std::size_t>(i)],
                         targets_scratch_);
      for (NodeId target : targets_scratch_) {
        digest_scratch_.clear();
        {
          obs::ScopedPhase phase(profiler_.get(), obs::Phase::kDigest);
          topology_->digest(node, target, digest_scratch_);
        }
        c_digest_entries_->add(
            static_cast<std::int64_t>(digest_scratch_.size()));
        if (trace_ != nullptr) {
          obs::Record r;
          r.type = obs::RecordType::kHbSend;
          r.t = queue_.now();
          r.a = i;
          r.b = target;
          r.c = static_cast<std::int64_t>(digest_scratch_.size()) + 1;
          trace_->emit(r);
        }
        // Draw the drop verdict before materializing anything: a lost or
        // partitioned message must cost neither an entries vector nor an
        // event. The digest above still runs unconditionally - selection
        // rotates hot-queue state, and a real sender pays that work (and
        // the bandwidth) whether or not the packet survives.
        const std::optional<double> delay = network_.route(i, target);
        if (!delay) continue;
        std::vector<Entry> entries = take_entries();
        const std::size_t digest_size = digest_scratch_.size();
        entries.reserve(digest_size + 1);
        entries.emplace_back(i,
                             static_cast<std::int32_t>(node.own_counter()));
        for (std::size_t k = 0; k < digest_size; ++k) {
          if (k + 8 < digest_size) {
            node.prefetch_peer(digest_scratch_[k + 8]);
          }
          const NodeId j = digest_scratch_[k];
          entries.emplace_back(j, node.counter(j));
        }
        // The buffer rides in the closure and returns to the pool after
        // delivery, so steady state allocates nothing per message.
        queue_.schedule_in(
            *delay, [this, target, entries = std::move(entries)]() mutable {
              receive(target, entries);
              entries.clear();
              entry_pool_.push_back(std::move(entries));
            });
      }
    }
    queue_.schedule_in(config_.heartbeat_interval_ms, [this, i] { pump(i); });
  }

  void receive(NodeId to, const std::vector<Entry>& entries) {
    ClusterNode& node = nodes_[static_cast<std::size_t>(to)];
    if (!node.active()) return;
    const double now = queue_.now();
    const bool monotone = node.deadline_monotone();
    const std::size_t count = entries.size();
    std::int64_t advanced = 0;
    {
      obs::ScopedPhase phase(profiler_.get(), obs::Phase::kObserve);
      for (std::size_t k = 0; k < count; ++k) {
        // The upcoming entries' peer slots are random indices; hint them a
        // few iterations ahead so observe() doesn't stall on the load.
        if (k + 8 < count) node.prefetch_peer(entries[k + 8].first);
        const Entry& entry = entries[k];
        const NodeId peer = entry.first;
        const ObserveResult result = node.observe(peer, entry.second, now);
        if (result.newly_known) on_learned(to, peer);
        if (result.advanced) {
          ++advanced;
          // The advance is this pair's heartbeat: its deadline moved. A
          // suspected pair must be re-judged at the very next tick (the
          // advance is its refutation); an unsuspected pair gets its
          // deadline re-registered - unless the detector's deadline is
          // monotone and the pair is already armed, where re-arming is
          // provably a no-op (arm_pair keeps the earliest tick and the new
          // deadline can only be later), so the re-query is skipped. A
          // freshly started detector always re-arms: its deadline family
          // changed from the grace window, which monotonicity says nothing
          // about.
          if (node.is_suspected(peer)) {
            arm_pair(to, peer, check_tick_ + 1);
          } else if (!monotone || result.started_detector ||
                     !node.armed(peer)) {
            arm_deadline(to, peer);
          }
        }
      }
    }
    if (trace_ != nullptr) {
      obs::Record r;
      r.type = obs::RecordType::kHbRecv;
      r.t = now;
      r.a = to;
      r.b = entries.empty() ? -1 : entries.front().first;
      r.c = static_cast<std::int64_t>(count);
      r.x = static_cast<double>(advanced);
      trace_->emit(r);
    }
  }

  void evaluate_pair(std::uint64_t key, double now) {
    const NodeId i = static_cast<NodeId>(
        key / static_cast<std::uint64_t>(max_nodes_));
    const NodeId j = static_cast<NodeId>(
        key % static_cast<std::uint64_t>(max_nodes_));
    ClusterNode& node = nodes_[static_cast<std::size_t>(i)];
    if (node.eval_tick(j) != check_tick_) return;  // superseded arming
    node.set_eval_tick(j, -1);
    // A crashed observer's cached state is frozen until it resets; a
    // wiped record re-arms when the peer is re-learned.
    if (!node.active() || !node.knows(j)) return;
    const bool down = truly_down(j);
    const bool was_suspected = node.is_suspected(j);
    const bool suspected = node.suspects(j, now);
    if (suspected != was_suspected) {
      disagreeing_pairs_ += (suspected != down) ? 1 : 0;
      disagreeing_pairs_ -= (was_suspected != down) ? 1 : 0;
      node.set_suspected(j, suspected, suspected ? now : -1.0);
      if (suspected) {
        c_raises_->add(1);
        if (!down) c_false_->add(1);
      } else {
        c_clears_->add(1);
      }
      if (trace_ != nullptr) {
        obs::Record r;
        r.type =
            suspected ? obs::RecordType::kSuspect : obs::RecordType::kClear;
        r.t = now;
        r.a = i;
        r.b = j;
        r.c = down ? 1 : 0;
        trace_->emit(r);
      }
    }
    // Unsuspected pairs always hold a future deadline; suspected pairs
    // sleep until a counter advance refutes them.
    if (!suspected) arm_deadline(i, j);
  }

  void check() {
    const double now = queue_.now();
    ++check_tick_;
    const auto it = eval_buckets_.find(check_tick_);
    if (it != eval_buckets_.end()) {
      bucket_scratch_.swap(it->second);
      eval_buckets_.erase(it);
      for (const std::uint64_t key : bucket_scratch_) {
        evaluate_pair(key, now);
      }
      bucket_scratch_.clear();
    }
    const bool all_agree = disagreeing_pairs_ == 0;
    if (all_agree && agreed_version_ < truth_version_) {
      h_convergence_->add(now - truth_change_time_);
      agreed_version_ = truth_version_;
    }
    last_agreement_ = all_agree;
    // Snapshots piggyback on the check tick instead of scheduling their
    // own events, so enabling them cannot perturb the simulation.
    if (trace_ != nullptr && config_.obs.snapshot_every_ticks > 0 &&
        check_tick_ % config_.obs.snapshot_every_ticks == 0) {
      snapshot(now);
    }
    queue_.schedule_in(config_.check_interval_ms, [this] { check(); });
  }

  void snapshot(double now) {
    g_disagreeing_->set(static_cast<double>(disagreeing_pairs_));
    g_net_sent_->set(static_cast<double>(network_.sent()));
    g_net_dropped_->set(static_cast<double>(network_.dropped()));
    g_net_partition_->set(static_cast<double>(network_.partition_dropped()));
    g_queue_size_->set(static_cast<double>(queue_.size()));
    g_queue_executed_->set(static_cast<double>(queue_.executed()));
    std::size_t max_hot = 0;
    for (const ClusterNode& node : nodes_) {
      if (node.active()) max_hot = std::max(max_hot, node.hot_queue_depth());
    }
    g_hot_queue_->set(static_cast<double>(max_hot));
    registry_.snapshot(*trace_, now, check_tick_);
  }

  std::vector<NodeId> active_contacts() const {
    std::vector<NodeId> contacts;
    for (NodeId j = 0; j < max_nodes_; ++j) {
      if (truth_active_[static_cast<std::size_t>(j)]) contacts.push_back(j);
    }
    return contacts;
  }

  void bump_truth(double now) {
    // A batch of same-instant faults (e.g. a rack failing) is one
    // disruption to converge from, not many.
    if (truth_version_ > 0 && truth_change_time_ == now) return;
    ++truth_version_;
    truth_change_time_ = now;
    c_disruptions_->add(1);
  }

  /// Rejoins node `x` with a wiped peer table seeded from `contacts`,
  /// re-arming the grace deadline of every seeded pair. The caller
  /// activates the row and counts it afterwards.
  void reseed_peers(NodeId x, double now,
                    const std::vector<NodeId>& contacts) {
    nodes_[static_cast<std::size_t>(x)].reset_peers(now, contacts);
    for (NodeId contact : contacts) {
      if (contact != x) arm_deadline(x, contact);
    }
  }

  /// Emits the fault record for `event`. Called only once the event is
  /// known to take effect (no-op crashes of already-dead nodes etc. leave
  /// no record), so the trace's fault stream is exactly the ground-truth
  /// transition sequence - the invariant the offline replay relies on.
  void trace_fault(const FaultEvent& event, double now) {
    if (trace_ != nullptr) trace_->emit(fault_record(event, now));
  }

  void apply(const FaultEvent& event) {
    const double now = queue_.now();
    switch (event.kind) {
      case FaultKind::kCrash:
      case FaultKind::kLeave: {
        const NodeId j = event.node;
        RFD_REQUIRE(j >= 0 && j < max_nodes_);
        if (!truth_active_[static_cast<std::size_t>(j)]) return;
        trace_fault(event, now);
        count_row(j, -1);  // the dead row leaves the agreement set
        truth_active_[static_cast<std::size_t>(j)] = false;
        down_since_[static_cast<std::size_t>(j)] = now;
        nodes_[static_cast<std::size_t>(j)].set_active(false);
        rescore_column(j);
        bump_truth(now);
        break;
      }
      case FaultKind::kRecover: {
        const NodeId j = event.node;
        RFD_REQUIRE(j >= 0 && j < max_nodes_);
        if (!ever_active_[static_cast<std::size_t>(j)] ||
            truth_active_[static_cast<std::size_t>(j)]) {
          return;
        }
        trace_fault(event, now);
        truth_active_[static_cast<std::size_t>(j)] = true;
        down_since_[static_cast<std::size_t>(j)] = -1.0;
        rescore_column(j);
        ClusterNode& node = nodes_[static_cast<std::size_t>(j)];
        // A restarted process lost its peer memory; it rejoins from the
        // current membership the way a provisioning system would seed it.
        reseed_peers(j, now, active_contacts());
        node.set_active(true);
        count_row(j, +1);
        bump_truth(now);
        break;
      }
      case FaultKind::kJoin: {
        const NodeId j = event.node;
        RFD_REQUIRE(j >= 0 && j < max_nodes_);
        if (ever_active_[static_cast<std::size_t>(j)]) return;
        trace_fault(event, now);
        ever_active_[static_cast<std::size_t>(j)] = true;
        truth_active_[static_cast<std::size_t>(j)] = true;
        ClusterNode& node = nodes_[static_cast<std::size_t>(j)];
        reseed_peers(j, now, active_contacts());
        node.set_active(true);
        count_row(j, +1);
        // The join itself does not change the true crashed set, so it is
        // not a disruption to converge from.
        break;
      }
      case FaultKind::kPartition:
        trace_fault(event, now);
        network_.set_partition(event.groups);
        break;
      case FaultKind::kHeal:
        trace_fault(event, now);
        network_.clear_partition();
        // Re-convergence is only measurable if the partition actually
        // drove the cluster into disagreement.
        if (!last_agreement_) bump_truth(now);
        break;
      case FaultKind::kStormStart:
        trace_fault(event, now);
        network_.set_storm(event.extra_delay_ms, event.delay_prob);
        break;
      case FaultKind::kStormEnd:
        trace_fault(event, now);
        network_.clear_storm();
        if (!last_agreement_) bump_truth(now);
        break;
    }
  }

  void finalize() {
    for (NodeId j = 0; j < max_nodes_; ++j) {
      const bool down = truly_down(j);
      if (!down || down_since_[static_cast<std::size_t>(j)] < 0.0) {
        continue;
      }
      const double down_at = down_since_[static_cast<std::size_t>(j)];
      for (NodeId i = 0; i < max_nodes_; ++i) {
        if (i == j || !truth_active_[static_cast<std::size_t>(i)]) continue;
        const ClusterNode& node = nodes_[static_cast<std::size_t>(i)];
        if (!node.knows(j)) continue;  // never met the victim; not a miss
        if (node.is_suspected(j)) {
          // A suspicion already standing at crash time detects "instantly"
          // from the abstraction's point of view.
          h_detect_->add(
              std::max(0.0, node.record(j).suspect_since - down_at));
        } else {
          c_missed_->add(1);
        }
      }
    }
    fill_report_from_registry(report_, registry_);
    report_.events_executed = queue_.executed();
    report_.peak_event_queue = static_cast<std::int64_t>(queue_.peak_size());
    report_.messages_sent = network_.sent();
    report_.messages_dropped = network_.dropped();
    report_.partition_dropped = network_.partition_dropped();
    report_.unconverged_disruptions =
        report_.disruptions - report_.convergence_ms.count();
    report_.final_agreement = last_agreement_;
    finalize_rates(report_);
    if (profiler_ != nullptr) report_.profile = profiler_->stats();
    if (trace_ != nullptr) {
      for (const obs::PhaseStat& stat : report_.profile) {
        trace_->write_line(obs::JsonLine{}
                               .str("type", "profile")
                               .str("phase", stat.phase)
                               .integer("calls", stat.calls)
                               .integer("sampled", stat.sampled)
                               .num("est_ms", stat.est_ms)
                               .finish());
      }
      trace_->write_line(
          obs::JsonLine{}
              .str("type", "end")
              .num("t", config_.duration_ms)
              .integer("events_executed", report_.events_executed)
              .integer("messages_sent", report_.messages_sent)
              .integer("detections", report_.detection_latency_ms.count())
              .integer("false_suspicions", report_.false_suspicions)
              .boolean("final_agreement", report_.final_agreement)
              .finish());
      trace_->close();
      report_.trace_records = trace_->written_records();
      report_.trace_dropped = trace_->dropped();
    }
  }

  ClusterConfig config_;
  int max_nodes_;
  rt::EventQueue queue_;
  rt::Network network_;
  std::unique_ptr<Topology> topology_;
  std::vector<ClusterNode> nodes_;
  std::vector<Rng> rngs_;

  // Ground truth, maintained by the scenario interpreter.
  std::vector<bool> ever_active_;
  std::vector<bool> truth_active_;
  std::vector<double> down_since_;
  std::int64_t truth_version_ = 0;
  std::int64_t agreed_version_ = 0;
  double truth_change_time_ = 0.0;
  bool last_agreement_ = true;

  // Incremental suspicion state: deadline wheel over check ticks plus the
  // maintained count of (live observer, known victim) pairs whose cached
  // verdict contradicts the ground truth.
  std::unordered_map<std::int64_t, std::vector<std::uint64_t>> eval_buckets_;
  std::int64_t check_tick_ = 0;
  std::int64_t disagreeing_pairs_ = 0;

  // Observability. The registry always exists (it is the aggregation
  // store); trace and profiler exist only when configured. Handles are
  // cached once so hot-path updates are one pointer add.
  std::uint64_t seed_ = 0;
  obs::Registry registry_;
  std::unique_ptr<obs::TraceWriter> trace_storage_;
  obs::TraceWriter* trace_ = nullptr;
  std::unique_ptr<obs::Profiler> profiler_;
  obs::Counter* c_digest_entries_ = nullptr;
  obs::Counter* c_raises_ = nullptr;
  obs::Counter* c_clears_ = nullptr;
  obs::Counter* c_false_ = nullptr;
  obs::Counter* c_disruptions_ = nullptr;
  obs::Counter* c_missed_ = nullptr;
  obs::Histo* h_detect_ = nullptr;
  obs::Histo* h_convergence_ = nullptr;
  obs::Gauge* g_disagreeing_ = nullptr;
  obs::Gauge* g_net_sent_ = nullptr;
  obs::Gauge* g_net_dropped_ = nullptr;
  obs::Gauge* g_net_partition_ = nullptr;
  obs::Gauge* g_queue_size_ = nullptr;
  obs::Gauge* g_queue_executed_ = nullptr;
  obs::Gauge* g_hot_queue_ = nullptr;

  ClusterReport report_;
  std::vector<NodeId> targets_scratch_;
  std::vector<NodeId> digest_scratch_;
  std::vector<std::uint64_t> bucket_scratch_;
  /// Recycled digest-payload buffers (see pump).
  std::vector<std::vector<Entry>> entry_pool_;
};

}  // namespace

ClusterReport run_cluster(const ClusterConfig& config, std::uint64_t seed) {
  ClusterEngine engine(config, seed);
  return engine.run();
}

}  // namespace rfd::cluster
