#include "cluster/engine.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/digest_codec.hpp"
#include "common/assert.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "obs/profile.hpp"
#include "obs/record.hpp"
#include "obs/registry.hpp"
#include "obs/trace_writer.hpp"
#include "runtime/event_queue.hpp"
#include "runtime/shard_executor.hpp"

namespace rfd::cluster {
namespace {

// ---------------------------------------------------------------------------
// Sharded conservative core.
//
// The node id space is partitioned into contiguous blocks, one per shard.
// Each shard owns an EventQueue (heartbeat pump timers for its nodes), a
// Network instance, a Topology instance, and per-shard replicas of the
// scenario ground truth. Time advances in *epochs* of one or more check
// windows: every worker runs the whole loop itself (the engine dispatches
// each shard exactly once per run), advancing its local events window by
// window, then meeting the other shards at a spin barrier to exchange the
// messages produced since the last exchange, apply them, and evaluate the
// exchange tick; the per-shard-reducible coordinator inputs (disagreeing
// pairs, pending-event counts, lookahead bounds) flow up a binomial tree
// and shard 0 runs the serial coordinator step (agreement, convergence,
// snapshots) before a second barrier releases the next epoch. Staged
// trace records are double-buffered to a dedicated merger thread, so
// shards enter epoch e+1 while epoch e's records are being merged and
// formatted.
//
// Lookahead (conservative-DES): deliveries apply at barrier_index(at) -
// the first check tick strictly after arrival - so when no *buffered*
// message's barrier falls within the next L windows and no message *yet
// to be sent* can arrive that early either (earliest next queue event
// plus the minimum possible network delay under the scenario's slow
// factors; storms and pre-GST chaos only add delay), the shards run L
// windows between exchanges instead of one. Every check tick is still
// evaluated locally and every skipped tick's coordinator inputs are
// recorded per shard and replayed serially by shard 0 with the identical
// additive time accumulation, so metrics and trace bytes are unchanged
// by the setting (the lookahead-invariance tests pin this; the
// empty-bucket asserts at every skipped tick make a violated bound loud,
// not silent).
//
// Messages are never delivered inside the window they were sent in:
// every message - same-shard or cross-shard alike - is buffered and
// applied at the first barrier T_b > arrival time, with the receiver
// observing it at its true arrival timestamp. Applying them in one
// sorted drain (by receiver, then arrival time, then sender, then the
// sender's send sequence) is also what fixes the PR-5 observe() hot
// spot: each receiver's per-peer arrays are walked once per round
// instead of being re-fetched per message in arrival order.
//
// Determinism argument - why every shard count produces bit-identical
// metrics and traces on a fixed seed:
//   1. All randomness is per-node streams: each node's pump draws
//      (phase, topology targets) from its own Rng, and the network draws
//      loss/delay from a per-source stream, so the values a node sees
//      depend only on its own history, which is fixed by the protocol
//      below regardless of where the node lives.
//   2. Within a window, nodes interact with nothing but their own state:
//      deliveries are deferred to the barrier, scenario faults are
//      applied at identical times by every shard against its own truth
//      replica (each shard mutating only the nodes it owns), and shared
//      counters are integer sums accumulated per shard.
//   3. Barrier exchange is merge-order deterministic: deliveries apply
//      in (receiver, arrival, sender, send-seq) order and suspicion
//      evaluations drain a per-tick wheel whose per-shard content is the
//      shard's subsequence of the shards=1 sequence, so every per-pair
//      outcome matches.
//   4. Trace bytes: records are staged per shard and merged once per
//      epoch under a total order on (t, type rank, a, b) - any remaining
//      tie is between records of one shard, whose relative order is
//      itself shard-invariant - then formatted by the single TraceWriter
//      in merged order. Epoch batching cannot reorder anything: window
//      k+1 only emits records with t strictly above window k's, so the
//      sorted concatenation of per-epoch batches equals the globally
//      sorted stream no matter how ticks group into epochs (which is why
//      lookahead and shard count both leave the bytes untouched).
//      Floating-point reductions (detection latency,
//      convergence) happen only on the coordinator in a fixed global
//      order, never as a shard-order-dependent sum.
//
// Relative to the pre-sharding engine the *semantics* changed in exactly
// one way: a message is now observed at the barrier after its arrival
// instead of mid-window, so gossip learned early in a window no longer
// piggybacks on sends later in the same window. Detection/convergence
// quality is the same to within one check interval (the report's
// resolution floor); runs remain a pure function of (config, seed).
// ---------------------------------------------------------------------------

/// In-flight heartbeat message, buffered between barriers.
struct Message {
  double at = 0.0;  // arrival time; the receiver observes entries at this t
  NodeId from = -1;
  NodeId to = -1;
  /// Per-source send sequence: the shard-invariant tiebreak for two
  /// messages from one sender arriving at the same instant.
  std::uint32_t seq = 0;
  /// Delta-compressed digest (see cluster/digest_codec.hpp).
  std::vector<std::uint8_t> payload;
};

/// Per-shard staging buffer for trace records; the coordinator merges
/// all shards' buffers into the TraceWriter once per round.
struct BufferSink final : obs::RecordSink {
  void emit(const obs::Record& r) override { records.push_back(r); }
  std::vector<obs::Record> records;
};

/// Suspicion-deadline wheel over check ticks: a ring for the near future
/// (detector timeouts span a handful of ticks) with a far-map fallback,
/// replacing the old per-tick unordered_map buckets. push() is an
/// amortized O(1) vector append into the tick's slot.
class EvalWheel {
 public:
  void push(std::int64_t current_tick, std::int64_t tick,
            std::uint64_t key) {
    // Slot reuse is safe up to a full revolution: tick <= current + kSlots
    // lands in a slot that cannot be drained again before `tick`.
    if (tick - current_tick <= kSlots) {
      ring_[static_cast<std::size_t>(tick & (kSlots - 1))].push_back(key);
    } else {
      far_[tick].push_back(key);
    }
  }

  void drain(std::int64_t tick, std::vector<std::uint64_t>& out) {
    out.swap(ring_[static_cast<std::size_t>(tick & (kSlots - 1))]);
    const auto it = far_.find(tick);
    if (it != far_.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
      far_.erase(it);
    }
  }

 private:
  static constexpr std::int64_t kSlots = 512;  // power of two
  std::array<std::vector<std::uint64_t>, kSlots> ring_;
  std::map<std::int64_t, std::vector<std::uint64_t>> far_;
};

/// Coordinator-side record of one fault a shard found effective; shard 0
/// stages these so the coordinator can do the cluster-global bookkeeping
/// (disruption counting, convergence timing, detection baselines) at the
/// next barrier.
struct FaultNote {
  std::size_t index = 0;  // into the sorted fault list
  double at = 0.0;
};

struct ShardState {
  int index = 0;
  NodeId lo = 0;  // owned node range [lo, hi)
  NodeId hi = 0;

  rt::EventQueue queue;
  std::unique_ptr<rt::Network> network;
  std::unique_ptr<Topology> topology;
  BufferSink sink;
  obs::RecordSink* trace = nullptr;  // &sink when tracing, else null
  std::unique_ptr<obs::Profiler> profiler;
  std::vector<BufferedLogLine> log_buf;

  // Ground-truth replicas (every shard applies every fault to its own
  // copy, so window-time reads never cross shards).
  std::vector<char> ever_active;
  std::vector<char> truth_active;
  std::int64_t disagreeing = 0;

  std::int64_t check_tick = 0;
  std::size_t fault_cursor = 0;
  EvalWheel wheel;

  // Message plumbing: per-destination-shard outboxes filled during the
  // window, and delivery buckets keyed by barrier index (ring + far map).
  std::vector<std::uint32_t> send_seq;
  std::vector<std::vector<Message>> outbox;
  std::vector<std::vector<Message>> buckets;
  std::map<std::int64_t, std::vector<Message>> far_buckets;
  std::int64_t pending_msgs = 0;
  std::int64_t delivered_msgs = 0;
  std::vector<std::vector<std::uint8_t>> payload_pool;

  // Shard-local counter accumulators; summed into the registry by the
  // coordinator (integer sums are order-insensitive).
  std::int64_t c_digest_entries = 0;
  std::int64_t c_payload_bytes = 0;
  std::int64_t c_raises = 0;
  std::int64_t c_clears = 0;
  std::int64_t c_false = 0;

  std::vector<NodeId> targets_scratch;
  std::vector<NodeId> digest_scratch;
  std::vector<std::uint64_t> wheel_scratch;
  /// Scratch bitmap over node ids for sort_ids(); all-zero between calls.
  std::vector<std::uint64_t> id_bits;

  // Shard 0 only: effective faults awaiting coordinator bookkeeping.
  std::vector<FaultNote> fault_notes;

  // Double-buffered hand-off to the trace-merger thread: at the end of
  // epoch e the shard swaps its staged records/logs into parity slot
  // e & 1 (after the merger finished epoch e - 2, which used the same
  // slot) and keeps simulating while the merger sorts and formats.
  std::array<std::vector<obs::Record>, 2> staged_records;
  std::array<std::vector<BufferedLogLine>, 2> staged_logs;
};

/// Per-shard tree-reduction slot: the shard fills the payload after its
/// exchange, publishes by storing the epoch number (release), and parent
/// shards in the binomial tree fold children in (acquire). Padded so two
/// shards' slots never share a cache line.
struct alignas(64) SyncSlot {
  std::atomic<std::int64_t> epoch{0};
  /// Per check tick of the epoch: the shard's disagreeing-pair count and
  /// local pending-event count (queue + buffered messages) after that
  /// tick's evaluation - everything the coordinator replay needs.
  std::vector<std::int64_t> tick_disagree;
  std::vector<std::int64_t> tick_pending;
  /// Lookahead inputs: earliest buffered delivery barrier (INT64_MAX if
  /// none) and a lower bound on the next local queue event's time.
  std::int64_t min_barrier = std::numeric_limits<std::int64_t>::max();
  double next_send_at = std::numeric_limits<double>::infinity();
};

/// Total order for the per-round trace merge: records sort by time, then
/// a fixed per-type rank, then the (a, b) ids. Any remaining tie is
/// between records staged by one shard in a shard-invariant relative
/// order, which stable_sort preserves.
int record_rank(obs::RecordType type) {
  switch (type) {
    case obs::RecordType::kFault:
      return 0;
    case obs::RecordType::kLeader:
      return 1;
    case obs::RecordType::kHbSend:
      return 2;
    case obs::RecordType::kDrop:
      return 3;
    case obs::RecordType::kHbRecv:
      return 4;
    case obs::RecordType::kSuspect:
      return 5;
    case obs::RecordType::kClear:
      return 6;
    default:
      return 7;
  }
}

bool record_before(const obs::Record& lhs, const obs::Record& rhs) {
  if (lhs.t != rhs.t) return lhs.t < rhs.t;
  const int lr = record_rank(lhs.type);
  const int rr = record_rank(rhs.type);
  if (lr != rr) return lr < rr;
  if (lhs.a != rhs.a) return lhs.a < rhs.a;
  return lhs.b < rhs.b;
}

class ClusterEngine {
 public:
  ClusterEngine(const ClusterConfig& config, std::uint64_t seed)
      : config_(config),
        max_nodes_(config.max_nodes > 0 ? config.max_nodes : config.n),
        check_ms_(config.check_interval_ms),
        faults_(config.scenario.sorted()) {
    RFD_REQUIRE(config_.n >= 2);
    RFD_REQUIRE(max_nodes_ >= config_.n);
    {
      // Reject malformed timelines before any state exists: an unmatched
      // storm_off or link_up would silently corrupt the per-shard network
      // replicas mid-run (the builders sort, this rejects).
      const std::string scenario_error = config_.scenario.validate();
      RFD_REQUIRE_MSG(scenario_error.empty(), scenario_error.c_str());
    }
    RFD_REQUIRE(config_.heartbeat_interval_ms > 0.0);
    RFD_REQUIRE(config_.check_interval_ms > 0.0);
    RFD_REQUIRE(config_.shards >= 1);
    seed_ = seed;
    shard_count_ = std::min(config_.shards, max_nodes_);

    // The registry is the backing store for everything the report
    // aggregates; registration order here fixes the field order of the
    // snapshot records in the trace.
    c_digest_entries_ = &registry_.counter(metric::kDigestEntries);
    c_payload_bytes_ = &registry_.counter(metric::kPayloadBytes);
    c_raises_ = &registry_.counter(metric::kSuspicionRaises);
    c_clears_ = &registry_.counter(metric::kSuspicionClears);
    c_false_ = &registry_.counter(metric::kFalseSuspicions);
    c_disruptions_ = &registry_.counter(metric::kDisruptions);
    c_missed_ = &registry_.counter(metric::kMissedDetections);
    h_detect_ = &registry_.histogram(metric::kDetectionMs);
    h_convergence_ = &registry_.histogram(metric::kConvergenceMs);
    g_disagreeing_ = &registry_.gauge(metric::kDisagreeingPairs);
    g_net_sent_ = &registry_.gauge(metric::kNetSent);
    g_net_dropped_ = &registry_.gauge(metric::kNetDropped);
    g_net_partition_ = &registry_.gauge(metric::kNetPartitionDropped);
    g_queue_size_ = &registry_.gauge(metric::kQueueSize);
    g_queue_executed_ = &registry_.gauge(metric::kQueueExecuted);
    g_hot_queue_ = &registry_.gauge(metric::kMaxHotQueue);

    if (config_.obs.trace_enabled()) {
      trace_storage_ = std::make_unique<obs::TraceWriter>(config_.obs);
      if (trace_storage_->ok()) trace_ = trace_storage_.get();
    }
    const bool profile = obs::kEnabled && config_.obs.profile;

    // Shards own contiguous node blocks; sizes differ by at most one.
    owner_.assign(static_cast<std::size_t>(max_nodes_), 0);
    shards_.reserve(static_cast<std::size_t>(shard_count_));
    const int base = max_nodes_ / shard_count_;
    const int extra = max_nodes_ % shard_count_;
    NodeId lo = 0;
    for (int s = 0; s < shard_count_; ++s) {
      auto shard = std::make_unique<ShardState>();
      shard->index = s;
      shard->lo = lo;
      shard->hi = lo + base + (s < extra ? 1 : 0);
      lo = shard->hi;
      shard->network = std::make_unique<rt::Network>(
          shard->queue, mix_seed(seed, 0xc1e5), config_.network);
      shard->topology = make_topology(config_.topology, max_nodes_);
      if (trace_ != nullptr) {
        shard->trace = &shard->sink;
        shard->network->set_trace(shard->trace);
      }
      shard->topology->set_trace(shard->trace, &shard->queue);
      if (profile) {
        shard->profiler =
            std::make_unique<obs::Profiler>(config_.obs.profile_sample_shift);
        shard->queue.set_profiler(shard->profiler.get());
        shard->network->set_profiler(shard->profiler.get());
      }
      shard->ever_active.assign(static_cast<std::size_t>(max_nodes_), 0);
      shard->truth_active.assign(static_cast<std::size_t>(max_nodes_), 0);
      shard->send_seq.assign(static_cast<std::size_t>(max_nodes_), 0);
      shard->outbox.resize(static_cast<std::size_t>(shard_count_));
      shard->buckets.resize(kBucketSlots);
      shard->id_bits.assign(static_cast<std::size_t>(max_nodes_ + 63) / 64,
                            0);
      for (NodeId j = shard->lo; j < shard->hi; ++j) {
        owner_[static_cast<std::size_t>(j)] = s;
      }
      shards_.push_back(std::move(shard));
    }
    RFD_REQUIRE(lo == max_nodes_);
    executor_ = std::make_unique<rt::ShardExecutor>(shard_count_);
    if (config_.barrier_spin >= 0) {
      executor_->set_spin_iterations(config_.barrier_spin);
    }
    sync_ = std::make_unique<SyncSlot[]>(
        static_cast<std::size_t>(shard_count_));
    // The ring-slot emptiness argument for coalesced ticks needs spans
    // shorter than one ring revolution.
    lookahead_cap_ = std::clamp(config_.lookahead_windows, 1,
                                static_cast<int>(kBucketSlots));
    // Minimum possible network delay over the whole run: the sampled
    // delay is (min_delay + positive jitter + non-negative extras) *
    // factor, and only scenario slow factors can scale it below
    // min_delay, so the floor over their minimum is a sound per-message
    // lower bound for the lookahead plan.
    double factor_floor = 1.0;
    for (const FaultEvent& fault : faults_) {
      if (fault.kind == FaultKind::kSlowStart) {
        factor_floor = std::min(factor_floor, std::max(0.0, fault.factor));
      }
    }
    min_net_delay_ms_ =
        std::max(0.0, config_.network.min_delay_ms) * factor_floor;

    NodeParams node_params;
    node_params.detector = config_.detector;
    node_params.bootstrap_grace_ms = config_.bootstrap_grace_ms;
    node_params.hot_transmissions = config_.hot_transmissions;
    nodes_.reserve(static_cast<std::size_t>(max_nodes_));
    const Rng base_rng(mix_seed(seed, 0x0dde));
    for (NodeId i = 0; i < max_nodes_; ++i) {
      nodes_.emplace_back(i, max_nodes_, node_params);
      rngs_.push_back(base_rng.split(static_cast<std::uint64_t>(i)));
    }

    down_since_.assign(static_cast<std::size_t>(max_nodes_), -1.0);
    lying_.assign(static_cast<std::size_t>(max_nodes_), 0);
    lie_delta_.assign(static_cast<std::size_t>(max_nodes_), 0.0);
    lie_value_.assign(static_cast<std::size_t>(max_nodes_), 0.0);
    for (auto& shard : shards_) {
      for (NodeId i = 0; i < config_.n; ++i) {
        shard->ever_active[static_cast<std::size_t>(i)] = 1;
        shard->truth_active[static_cast<std::size_t>(i)] = 1;
      }
    }
    for (NodeId i = config_.n; i < max_nodes_; ++i) {
      nodes_[static_cast<std::size_t>(i)].set_active(false);
    }
    // The initial membership list is configuration, not discovery.
    for (NodeId i = 0; i < config_.n; ++i) {
      ShardState& shard = *shards_[static_cast<std::size_t>(
          owner_[static_cast<std::size_t>(i)])];
      for (NodeId j = 0; j < config_.n; ++j) {
        if (i == j) continue;
        nodes_[static_cast<std::size_t>(i)].learn_peer(j, 0.0);
        on_learned(shard, i, j);
      }
    }

    report_.n = config_.n;
    report_.max_nodes = max_nodes_;
    report_.topology = shards_.front()->topology->name();
    report_.detector = rt::detector_kind_name(config_.detector.kind);
    report_.duration_ms = config_.duration_ms;
  }

  ClusterReport run() {
    if (trace_ != nullptr) {
      trace_->write_line(
          obs::JsonLine{}
              .str("type", "run")
              .integer("v", 1)
              .num("t", 0.0)
              .integer("n", config_.n)
              .integer("max_nodes", max_nodes_)
              .str("topology", report_.topology)
              .str("detector", report_.detector)
              .integer("seed", static_cast<std::int64_t>(seed_))
              .num("duration_ms", config_.duration_ms)
              .num("heartbeat_ms", config_.heartbeat_interval_ms)
              .num("check_ms", config_.check_interval_ms)
              .finish());
    }
    for (NodeId i = 0; i < max_nodes_; ++i) {
      // Desynchronized heartbeat phases, as in any real deployment. The
      // phase draws happen here in global id order, so every node's Rng
      // stream starts identically for every shard count.
      const double phase =
          rngs_[static_cast<std::size_t>(i)].uniform01() *
          config_.heartbeat_interval_ms;
      ShardState* shard = shards_[static_cast<std::size_t>(
                                      owner_[static_cast<std::size_t>(i)])]
                              .get();
      shard->queue.schedule(phase, [this, shard, i] { pump(*shard, i); });
    }

    // Fix the round count of the check grid up front, replicating the
    // exact additive accumulation (T += check) the loop below performs,
    // so the final plan and the workers' clocks agree bit-for-bit with
    // the old self-rescheduling check timer.
    rounds_total_ = 0;
    {
      double t = 0.0;
      for (;;) {
        const double next = t + check_ms_;
        if (next > config_.duration_ms) break;
        t = next;
        ++rounds_total_;
      }
    }
    // The first epoch is always a single window (there are no lookahead
    // inputs yet); shard 0 publishes every later plan.
    plan_hi_ = std::min<std::int64_t>(1, rounds_total_);
    use_merger_ = trace_ != nullptr && shard_count_ > 1;
    if (use_merger_) {
      merger_ = std::thread([this] { merger_main(); });
    }
    try {
      // One dispatch per run: the workers own the whole epoch loop and
      // synchronize among themselves at the executor's spin barrier.
      executor_->run([this](int s) { shard_loop(s); });
    } catch (...) {
      stop_merger();
      throw;
    }
    stop_merger();
    if (merger_error_ != nullptr) std::rethrow_exception(merger_error_);
    rounds_done_ = rounds_total_;
    finalize();
    return std::move(report_);
  }

 private:
  static constexpr std::int64_t kBucketSlots = 256;  // power of two

  /// The worker-resident epoch loop; every shard runs this once per
  /// simulation (shard 0 on the calling thread). plan_hi_ names the
  /// current epoch's exchange tick; shard 0 publishes the next plan in
  /// coordinator_step(), between the reduction tree and the release
  /// barrier, so the barrier's release/acquire pairing is what carries
  /// it to the peers. Any `return` on a false arrive_and_wait() is the
  /// abort path: a peer threw, the executor rethrows after the join.
  void shard_loop(int s) {
    ShardState& shard = *shards_[static_cast<std::size_t>(s)];
    const ScopedThreadLogBuffer log_scope(&shard.log_buf);
    rt::SpinBarrier& barrier = executor_->barrier();
    const bool multi = shard_count_ > 1;
    obs::Profiler* const prof = shard.profiler.get();
    SyncSlot& slot = sync_[static_cast<std::size_t>(s)];

    double T = 0.0;
    std::int64_t k_done = 0;
    std::int64_t epoch = 0;
    for (;;) {
      const std::int64_t k_hi = plan_hi_;
      if (k_hi <= k_done) break;
      const std::int64_t k_lo = k_done + 1;
      ++epoch;
      const std::size_t span = static_cast<std::size_t>(k_hi - k_lo + 1);
      slot.tick_disagree.assign(span, 0);
      slot.tick_pending.assign(span, 0);
      for (std::int64_t k = k_lo; k < k_hi; ++k) {
        T += check_ms_;
        run_window(shard, T, k);
        // A coalesced (exchange-free) tick is legal only because the
        // lookahead bound proved nothing can land at it; these asserts
        // make a violated bound loud, not silently nondeterministic.
        RFD_REQUIRE(
            shard.buckets[static_cast<std::size_t>(k & (kBucketSlots - 1))]
                .empty());
        RFD_REQUIRE(shard.far_buckets.find(k) == shard.far_buckets.end());
        evaluate_tick(shard, k, T);
        record_tick(shard, slot, k - k_lo);
      }
      T += check_ms_;
      run_window(shard, T, k_hi);
      if (multi) {
        const obs::ScopedPhase sync(prof, obs::Phase::kSync, true);
        if (!barrier.arrive_and_wait()) return;
      }
      deliver_and_evaluate(shard, k_hi, T);
      record_tick(shard, slot, static_cast<std::int64_t>(span) - 1);
      if (lookahead_cap_ > 1) {
        slot.min_barrier = min_buffered_barrier(shard, k_hi);
        slot.next_send_at = shard.queue.next_event_at_bound();
      }
      if (use_merger_) {
        // Hand this epoch's records and log lines to the merger via the
        // parity slot the merger last used two epochs ago.
        const obs::ScopedPhase sync(prof, obs::Phase::kSync, true);
        wait_merged(epoch - 2);
        shard.staged_records[static_cast<std::size_t>(epoch & 1)].swap(
            shard.sink.records);
        shard.staged_logs[static_cast<std::size_t>(epoch & 1)].swap(
            shard.log_buf);
      }
      if (multi) {
        {
          const obs::ScopedPhase sync(prof, obs::Phase::kSync, true);
          if (!reduce_combine(s, epoch, barrier)) return;
        }
        if (s == 0) coordinator_step(epoch, k_lo, k_hi);
        const obs::ScopedPhase sync(prof, obs::Phase::kSync, true);
        if (!barrier.arrive_and_wait()) return;
      } else {
        coordinator_step(epoch, k_lo, k_hi);
      }
      k_done = k_hi;
    }
    if (!stopped_early_ && T < config_.duration_ms) {
      // Grid-misaligned tail: run the remaining pumps (and any faults)
      // up to the duration. No check tick lands here - same as the old
      // engine - and deliveries arriving past the last tick can no
      // longer influence any metric, so they stay buffered. A stopped
      // run skips the tail: simulating up to the full horizon is
      // exactly what the stop flag asked to avoid.
      run_window(shard, config_.duration_ms, k_done + 1);
      if (multi) {
        const obs::ScopedPhase sync(prof, obs::Phase::kSync, true);
        if (!barrier.arrive_and_wait()) return;
      }
    }
    // Peers do nothing after their final barrier, so shard 0 may read
    // every shard's staging buffers here without further handshaking.
    if (s == 0) drain_trailing(epoch);
  }

  /// Records tick `i`'s coordinator inputs: this shard's disagreeing
  /// count and local pending-event population after the tick's
  /// evaluation.
  void record_tick(const ShardState& shard, SyncSlot& slot,
                   std::int64_t i) const {
    slot.tick_disagree[static_cast<std::size_t>(i)] = shard.disagreeing;
    slot.tick_pending[static_cast<std::size_t>(i)] =
        static_cast<std::int64_t>(shard.queue.size()) + shard.pending_msgs;
  }

  /// Earliest buffered delivery barrier still pending on this shard
  /// after the exchange at tick `k` (INT64_MAX if none). Ring slots are
  /// keyed mod kBucketSlots, but an occupied slot j windows ahead can
  /// only mean barrier k + j: entries are filed with b - round <
  /// kBucketSlots and every b <= k was already drained.
  std::int64_t min_buffered_barrier(const ShardState& shard,
                                    std::int64_t k) const {
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (std::int64_t j = 1; j < kBucketSlots; ++j) {
      if (!shard
               .buckets[static_cast<std::size_t>((k + j) &
                                                 (kBucketSlots - 1))]
               .empty()) {
        best = k + j;
        break;
      }
    }
    if (!shard.far_buckets.empty()) {
      best = std::min(best, shard.far_buckets.begin()->first);
    }
    return best;
  }

  /// Parks until the merger finished epoch `target` (<= 0: trivially
  /// done). Deadlock-free even on the abort path: the merger is
  /// independent of the worker barrier, only ever waits for epochs
  /// already staged, and always advances merged_epoch_ (even when
  /// capturing an error).
  void wait_merged(std::int64_t target) {
    std::int64_t cur = merged_epoch_.load(std::memory_order_acquire);
    while (cur < target) {
      merged_epoch_.wait(cur, std::memory_order_acquire);
      cur = merged_epoch_.load(std::memory_order_acquire);
    }
  }

  /// Binomial-tree fold of the sync slots: shard s folds child s + d for
  /// d = 1, 2, 4, ... while (s & d) == 0, then publishes its own slot.
  /// The child waits are bounded spin/yield - never a park - so a peer's
  /// abort() can always drain us out (a thrown shard never publishes).
  bool reduce_combine(int s, std::int64_t epoch, rt::SpinBarrier& barrier) {
    SyncSlot& slot = sync_[static_cast<std::size_t>(s)];
    for (int d = 1; d < shard_count_; d <<= 1) {
      if ((s & d) != 0) break;
      const int child = s + d;
      if (child >= shard_count_) continue;
      SyncSlot& cs = sync_[static_cast<std::size_t>(child)];
      std::uint32_t spins = 0;
      while (cs.epoch.load(std::memory_order_acquire) < epoch) {
        if (barrier.aborted()) return false;
        rt::cpu_relax();
        if ((++spins & 1023u) == 0) std::this_thread::yield();
      }
      const std::size_t span = slot.tick_disagree.size();
      for (std::size_t i = 0; i < span; ++i) {
        slot.tick_disagree[i] += cs.tick_disagree[i];
        slot.tick_pending[i] += cs.tick_pending[i];
      }
      slot.min_barrier = std::min(slot.min_barrier, cs.min_barrier);
      slot.next_send_at = std::min(slot.next_send_at, cs.next_send_at);
    }
    if (s != 0) slot.epoch.store(epoch, std::memory_order_release);
    return true;
  }

  /// Chooses the exchange tick after `k_prev`: one window by default, up
  /// to lookahead_cap_ when the reduced bounds prove no delivery can
  /// land strictly inside the span. safe = min(earliest buffered
  /// barrier, barrier of the earliest possible *future* arrival); any
  /// k_hi <= safe keeps every skipped tick delivery-free, since a
  /// message sent during the span leaves no earlier than the global
  /// next-event bound and travels at least min_net_delay_ms_. Snapshot
  /// cadences cap the plan so snapshot ticks stay exchange ticks.
  std::int64_t next_plan(std::int64_t k_prev) const {
    const std::int64_t k_lo = k_prev + 1;
    if (k_lo > rounds_total_) return k_prev;  // done: workers exit
    if (lookahead_cap_ <= 1) return k_lo;
    const SyncSlot& global = sync_[0];
    std::int64_t safe = global.min_barrier;
    if (std::isfinite(global.next_send_at)) {
      safe = std::min(
          safe, barrier_index(global.next_send_at + min_net_delay_ms_));
    }
    std::int64_t hi =
        std::clamp(safe, k_lo,
                   k_lo + static_cast<std::int64_t>(lookahead_cap_) - 1);
    hi = std::min(hi, rounds_total_);
    if (trace_ != nullptr && config_.obs.snapshot_every_ticks > 0) {
      const std::int64_t every = config_.obs.snapshot_every_ticks;
      hi = std::min(hi, (k_prev / every + 1) * every);
    }
    return hi;
  }

  bool owns(const ShardState& shard, NodeId j) const {
    return j >= shard.lo && j < shard.hi;
  }

  bool truly_down(const ShardState& shard, NodeId j) const {
    return shard.ever_active[static_cast<std::size_t>(j)] != 0 &&
           shard.truth_active[static_cast<std::size_t>(j)] == 0;
  }

  std::uint64_t pair_key(NodeId i, NodeId j) const {
    return static_cast<std::uint64_t>(i) *
               static_cast<std::uint64_t>(max_nodes_) +
           static_cast<std::uint64_t>(j);
  }

  /// First barrier at which a message arriving at `at` may be applied:
  /// the smallest b with T_b strictly after `at`. Strict, because at an
  /// exact grid time the old engine ran the check (lowest sequence
  /// number) before same-instant deliveries.
  std::int64_t barrier_index(double at) const {
    std::int64_t b = static_cast<std::int64_t>(at / check_ms_) + 1;
    while (static_cast<double>(b) * check_ms_ <= at) ++b;
    return b;
  }

  /// Arms pair (i, j) for evaluation at check tick `tick` (clamped to the
  /// next tick). Earliest arming wins; superseded wheel entries are
  /// skipped via the eval_tick mismatch when their tick comes up.
  void arm_pair(ShardState& shard, NodeId i, NodeId j, std::int64_t tick) {
    tick = std::max(tick, shard.check_tick + 1);
    ClusterNode& node = nodes_[static_cast<std::size_t>(i)];
    const std::int64_t current = node.eval_tick(j);
    if (current >= 0 && current <= tick) return;
    node.set_eval_tick(j, tick);
    shard.wheel.push(shard.check_tick, tick, pair_key(i, j));
  }

  /// Check tick at which deadline `at` could first flip a verdict. One
  /// tick early on purpose: arming early costs one extra suspects()
  /// query, arming late would miss the tick the full scan would have
  /// caught.
  std::int64_t deadline_tick(double at) const {
    return static_cast<std::int64_t>(std::floor(at / check_ms_)) - 1;
  }

  void arm_deadline(ShardState& shard, NodeId i, NodeId j) {
    const double deadline =
        nodes_[static_cast<std::size_t>(i)].suspect_deadline(j);
    if (!std::isfinite(deadline)) return;
    arm_pair(shard, i, j, deadline_tick(deadline));
  }

  /// Bookkeeping when observer `i` (owned by `shard`) first learns that
  /// `j` exists: the fresh record is unsuspected, and the pair expires at
  /// the end of the bootstrap grace window unless a counter advance
  /// arrives first.
  void on_learned(ShardState& shard, NodeId i, NodeId j) {
    if (nodes_[static_cast<std::size_t>(i)].active() &&
        truly_down(shard, j)) {
      ++shard.disagreeing;
    }
    arm_deadline(shard, i, j);
  }

  /// Adds (sign=+1) or removes (sign=-1) observer row `i`'s known pairs
  /// from the disagreement count, when the row enters or leaves the set
  /// of live observers. Called only on the shard owning `i`.
  void count_row(ShardState& shard, NodeId i, int sign) {
    const ClusterNode& node = nodes_[static_cast<std::size_t>(i)];
    for (NodeId j = 0; j < max_nodes_; ++j) {
      if (j == i || !node.knows(j)) continue;
      if (node.is_suspected(j) != truly_down(shard, j)) {
        shard.disagreeing += sign;
      }
    }
  }

  /// Re-scores column `j` after truly_down(j) flipped; call with the
  /// truth replicas already updated. Every shard rescoring its own
  /// observer rows covers the column exactly once.
  void rescore_column(ShardState& shard, NodeId j) {
    const bool down = truly_down(shard, j);
    for (NodeId i = shard.lo; i < shard.hi; ++i) {
      const ClusterNode& node = nodes_[static_cast<std::size_t>(i)];
      if (i == j || !node.active() || !node.knows(j)) continue;
      shard.disagreeing += (node.is_suspected(j) != down) ? 1 : 0;
      shard.disagreeing -= (node.is_suspected(j) != !down) ? 1 : 0;
    }
  }

  /// Sorts digest ids ascending in place for the codec. The selection is
  /// near-unique ids bounded by max_nodes_, so a bitmap insert + ordered
  /// bit walk beats a comparison sort per message; the rare duplicate (a
  /// hot-queue id also hit by the rotation cursor) falls back to
  /// std::sort. Either path yields the identical sorted multiset.
  void sort_ids(ShardState& shard, std::vector<NodeId>& ids) {
    auto& words = shard.id_bits;
    for (const NodeId id : ids) {
      const std::size_t w = static_cast<std::size_t>(id) >> 6;
      const std::uint64_t bit = std::uint64_t{1} << (id & 63);
      if ((words[w] & bit) != 0) {
        for (const NodeId x : ids) words[static_cast<std::size_t>(x) >> 6] = 0;
        std::sort(ids.begin(), ids.end());
        return;
      }
      words[w] |= bit;
    }
    std::size_t n = 0;
    for (std::size_t w = 0; w < words.size(); ++w) {
      std::uint64_t word = words[w];
      if (word == 0) continue;
      words[w] = 0;
      do {
        ids[n++] = static_cast<NodeId>(
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word)));
        word &= word - 1;
      } while (word != 0);
    }
  }

  std::vector<std::uint8_t> take_payload(ShardState& shard) {
    if (shard.payload_pool.empty()) return {};
    std::vector<std::uint8_t> buffer = std::move(shard.payload_pool.back());
    shard.payload_pool.pop_back();
    return buffer;
  }

  /// Files a message into the owning shard's delivery buckets. `round` is
  /// the barrier index currently being produced (window k files for
  /// buckets >= k; barrier-time collection files for >= the barrier's k).
  void file_message(ShardState& shard, std::int64_t round, Message&& m) {
    const std::int64_t b = barrier_index(m.at);
    RFD_REQUIRE(b >= round);
    ++shard.pending_msgs;
    if (b - round < kBucketSlots) {
      shard.buckets[static_cast<std::size_t>(b & (kBucketSlots - 1))]
          .push_back(std::move(m));
    } else {
      shard.far_buckets[b].push_back(std::move(m));
    }
  }

  void pump(ShardState& shard, NodeId i) {
    ClusterNode& node = nodes_[static_cast<std::size_t>(i)];
    if (node.active()) {
      node.advance_own_counter();
      std::uint32_t advertised =
          static_cast<std::uint32_t>(node.own_counter());
      if (lying_[static_cast<std::size_t>(i)] != 0) {
        // The lie moves by delta per heartbeat interval while the true
        // counter keeps its honest +1 underneath; clamping keeps the
        // advertisement a plausible wire value whatever the delta.
        double& v = lie_value_[static_cast<std::size_t>(i)];
        v = std::clamp(v + lie_delta_[static_cast<std::size_t>(i)], 1.0,
                       static_cast<double>(
                           std::numeric_limits<std::int32_t>::max()));
        advertised = static_cast<std::uint32_t>(v);
      }
      shard.targets_scratch.clear();
      shard.topology->targets(node, rngs_[static_cast<std::size_t>(i)],
                              shard.targets_scratch);
      const std::int64_t window_round = shard.check_tick + 1;
      for (NodeId target : shard.targets_scratch) {
        shard.digest_scratch.clear();
        {
          obs::ScopedPhase phase(shard.profiler.get(), obs::Phase::kDigest);
          shard.topology->digest(node, target, shard.digest_scratch);
        }
        shard.c_digest_entries +=
            static_cast<std::int64_t>(shard.digest_scratch.size());
        if (shard.trace != nullptr) {
          obs::Record r;
          r.type = obs::RecordType::kHbSend;
          r.t = shard.queue.now();
          r.a = i;
          r.b = target;
          r.c = static_cast<std::int64_t>(shard.digest_scratch.size()) + 1;
          shard.trace->emit(r);
        }
        // Draw the drop verdict before materializing anything: a lost or
        // partitioned message must cost neither a payload buffer nor a
        // bucket entry. The digest above still runs unconditionally -
        // selection rotates hot-queue state, and a real sender pays that
        // work (and the bandwidth) whether or not the packet survives.
        const std::optional<double> delay = shard.network->route(i, target);
        if (!delay) continue;
        Message m;
        m.at = shard.queue.now() + *delay;
        m.from = i;
        m.to = target;
        m.seq = shard.send_seq[static_cast<std::size_t>(i)]++;
        m.payload = take_payload(shard);
        sort_ids(shard, shard.digest_scratch);
        encode_digest(
            advertised,
            shard.digest_scratch,
            [&node](NodeId j) {
              return static_cast<std::uint32_t>(node.counter(j));
            },
            m.payload);
        shard.c_payload_bytes +=
            static_cast<std::int64_t>(m.payload.size());
        const int dst = owner_[static_cast<std::size_t>(target)];
        if (dst == shard.index) {
          file_message(shard, window_round, std::move(m));
        } else {
          shard.outbox[static_cast<std::size_t>(dst)].push_back(
              std::move(m));
        }
      }
    }
    ShardState* self = &shard;
    shard.queue.schedule_in(config_.heartbeat_interval_ms,
                            [this, self, i] { pump(*self, i); });
  }

  /// Phase A of a round: advance the shard's local events (pumps, with
  /// scenario faults spliced in at their exact times) to the barrier.
  void run_window(ShardState& shard, double t_end, std::int64_t round) {
    shard.check_tick = round - 1;
    while (shard.fault_cursor < faults_.size() &&
           faults_[shard.fault_cursor].at_ms <= t_end) {
      shard.queue.run_before(faults_[shard.fault_cursor].at_ms);
      apply_fault(shard, shard.fault_cursor);
      ++shard.fault_cursor;
    }
    shard.queue.run_until(t_end);
  }

  /// Phase B of a round, entered with every shard parked behind the
  /// window barrier: collect this shard's inbound messages, apply bucket
  /// k in deterministic merge order, then evaluate check tick k.
  void deliver_and_evaluate(ShardState& shard, std::int64_t k, double now) {
    for (auto& src : shards_) {
      auto& box = src->outbox[static_cast<std::size_t>(shard.index)];
      for (Message& m : box) file_message(shard, k, std::move(m));
      box.clear();
    }
    auto& bucket =
        shard.buckets[static_cast<std::size_t>(k & (kBucketSlots - 1))];
    if (const auto it = shard.far_buckets.find(k);
        it != shard.far_buckets.end()) {
      for (Message& m : it->second) bucket.push_back(std::move(m));
      shard.far_buckets.erase(it);
    }
    std::sort(bucket.begin(), bucket.end(),
              [](const Message& lhs, const Message& rhs) {
                if (lhs.to != rhs.to) return lhs.to < rhs.to;
                if (lhs.at != rhs.at) return lhs.at < rhs.at;
                if (lhs.from != rhs.from) return lhs.from < rhs.from;
                return lhs.seq < rhs.seq;
              });
    shard.check_tick = k - 1;  // deliveries run in tick k-1's context
    for (Message& m : bucket) deliver(shard, m);
    shard.pending_msgs -= static_cast<std::int64_t>(bucket.size());
    shard.delivered_msgs += static_cast<std::int64_t>(bucket.size());
    bucket.clear();

    evaluate_tick(shard, k, now);
  }

  /// Evaluates check tick k: drains the suspicion wheel's slot and
  /// re-judges every armed pair. Runs at every tick - coalesced ticks
  /// included - which is why lookahead never changes a verdict time.
  void evaluate_tick(ShardState& shard, std::int64_t k, double now) {
    shard.check_tick = k;
    shard.wheel_scratch.clear();
    shard.wheel.drain(k, shard.wheel_scratch);
    for (const std::uint64_t key : shard.wheel_scratch) {
      evaluate_pair(shard, key, now);
    }
  }

  void deliver(ShardState& shard, Message& m) {
    ClusterNode& node = nodes_[static_cast<std::size_t>(m.to)];
    if (!node.active()) {
      m.payload.clear();
      shard.payload_pool.push_back(std::move(m.payload));
      return;
    }
    const double now = m.at;
    const bool monotone = node.deadline_monotone();
    const NodeId to = m.to;
    std::int64_t advanced = 0;
    std::int64_t entry_count = 0;
    {
      // The varint stream is decoded straight into the observe walk - no
      // materialized entry list. After the leading sender entry, ids
      // arrive sorted ascending (the codec's delta stream), so the walk
      // touches the per-peer arrays in ascending order - the
      // cache-friendly drain that removed the PR-5 observe hot spot.
      obs::ScopedPhase phase(shard.profiler.get(), obs::Phase::kObserve);
      DigestReader reader(m.payload.data(), m.payload.size());
      const std::uint32_t own = reader.varint();
      const std::uint32_t count = reader.varint();
      entry_count = static_cast<std::int64_t>(count) + 1;
      NodeId peer = m.from;
      std::int32_t value = static_cast<std::int32_t>(own);
      NodeId id = 0;
      for (std::uint32_t e = 0;; ++e) {
        const ObserveResult result = node.observe(peer, value, now);
        if (result.newly_known) on_learned(shard, to, peer);
        if (result.advanced) {
          ++advanced;
          // The advance is this pair's heartbeat: its deadline moved. A
          // suspected pair must be re-judged at the very next tick (the
          // advance is its refutation); an unsuspected pair gets its
          // deadline re-registered - unless the detector's deadline is
          // monotone and the pair is already armed, where re-arming is
          // provably a no-op (arm_pair keeps the earliest tick and the
          // new deadline can only be later), so the re-query is skipped.
          // A freshly started detector always re-arms: its deadline
          // family changed from the grace window, which monotonicity
          // says nothing about.
          if (node.is_suspected(peer)) {
            arm_pair(shard, to, peer, shard.check_tick + 1);
          } else if (!monotone || result.started_detector ||
                     !node.armed(peer)) {
            arm_deadline(shard, to, peer);
          }
        }
        if (e == count) break;
        id += static_cast<NodeId>(reader.varint());
        peer = id;
        value = static_cast<std::int32_t>(reader.varint());
      }
    }
    m.payload.clear();
    shard.payload_pool.push_back(std::move(m.payload));
    if (shard.trace != nullptr) {
      obs::Record r;
      r.type = obs::RecordType::kHbRecv;
      r.t = now;
      r.a = to;
      r.b = m.from;
      r.c = entry_count;
      r.x = static_cast<double>(advanced);
      shard.trace->emit(r);
    }
  }

  void evaluate_pair(ShardState& shard, std::uint64_t key, double now) {
    const NodeId i = static_cast<NodeId>(
        key / static_cast<std::uint64_t>(max_nodes_));
    const NodeId j = static_cast<NodeId>(
        key % static_cast<std::uint64_t>(max_nodes_));
    ClusterNode& node = nodes_[static_cast<std::size_t>(i)];
    if (node.eval_tick(j) != shard.check_tick) return;  // superseded
    node.set_eval_tick(j, -1);
    // A crashed observer's cached state is frozen until it resets; a
    // wiped record re-arms when the peer is re-learned.
    if (!node.active() || !node.knows(j)) return;
    const bool down = truly_down(shard, j);
    const bool was_suspected = node.is_suspected(j);
    const bool suspected = node.suspects(j, now);
    if (suspected != was_suspected) {
      shard.disagreeing += (suspected != down) ? 1 : 0;
      shard.disagreeing -= (was_suspected != down) ? 1 : 0;
      node.set_suspected(j, suspected, suspected ? now : -1.0);
      if (suspected) {
        ++shard.c_raises;
        if (!down) ++shard.c_false;
      } else {
        ++shard.c_clears;
      }
      if (shard.trace != nullptr) {
        obs::Record r;
        r.type =
            suspected ? obs::RecordType::kSuspect : obs::RecordType::kClear;
        r.t = now;
        r.a = i;
        r.b = j;
        r.c = down ? 1 : 0;
        shard.trace->emit(r);
      }
    }
    // Unsuspected pairs always hold a future deadline; suspected pairs
    // sleep until a counter advance refutes them.
    if (!suspected) arm_deadline(shard, i, j);
  }

  std::vector<NodeId> active_contacts(const ShardState& shard) const {
    std::vector<NodeId> contacts;
    for (NodeId j = 0; j < max_nodes_; ++j) {
      if (shard.truth_active[static_cast<std::size_t>(j)] != 0) {
        contacts.push_back(j);
      }
    }
    return contacts;
  }

  /// Rejoins node `x` with a wiped peer table seeded from `contacts`,
  /// re-arming the grace deadline of every seeded pair. The caller
  /// activates the row and counts it afterwards. Owner shard only.
  void reseed_peers(ShardState& shard, NodeId x, double now,
                    const std::vector<NodeId>& contacts) {
    nodes_[static_cast<std::size_t>(x)].reset_peers(now, contacts);
    for (NodeId contact : contacts) {
      if (contact != x) arm_deadline(shard, x, contact);
    }
  }

  /// Stages the coordinator-side bookkeeping (and the trace record) for
  /// an effective fault. Only shard 0 stages, so each fault is recorded
  /// exactly once; effectiveness is decided identically by every shard
  /// from its truth replica. The trace's fault stream remains exactly
  /// the ground-truth transition sequence - the invariant the offline
  /// replay relies on.
  void note_fault(ShardState& shard, std::size_t index, double now) {
    if (shard.index != 0) return;
    if (shard.trace != nullptr) {
      shard.trace->emit(fault_record(faults_[index], now));
    }
    shard.fault_notes.push_back({index, now});
  }

  /// Applies the shard-local effects of one fault: truth replicas, owned
  /// node state, owned observer rows, and this shard's network instance.
  void apply_fault(ShardState& shard, std::size_t index) {
    const FaultEvent& event = faults_[index];
    const double now = shard.queue.now();
    switch (event.kind) {
      case FaultKind::kCrash:
      case FaultKind::kLeave: {
        const NodeId j = event.node;
        RFD_REQUIRE(j >= 0 && j < max_nodes_);
        if (shard.truth_active[static_cast<std::size_t>(j)] == 0) return;
        note_fault(shard, index, now);
        if (owns(shard, j)) {
          count_row(shard, j, -1);  // the dead row leaves the agreement set
        }
        shard.truth_active[static_cast<std::size_t>(j)] = 0;
        if (owns(shard, j)) {
          nodes_[static_cast<std::size_t>(j)].set_active(false);
        }
        rescore_column(shard, j);
        break;
      }
      case FaultKind::kRecover: {
        const NodeId j = event.node;
        RFD_REQUIRE(j >= 0 && j < max_nodes_);
        if (shard.ever_active[static_cast<std::size_t>(j)] == 0 ||
            shard.truth_active[static_cast<std::size_t>(j)] != 0) {
          return;
        }
        note_fault(shard, index, now);
        shard.truth_active[static_cast<std::size_t>(j)] = 1;
        rescore_column(shard, j);
        if (owns(shard, j)) {
          // A restarted process lost its peer memory; it rejoins from
          // the current membership the way a provisioning system would
          // seed it.
          reseed_peers(shard, j, now, active_contacts(shard));
          nodes_[static_cast<std::size_t>(j)].set_active(true);
          count_row(shard, j, +1);
        }
        break;
      }
      case FaultKind::kJoin: {
        const NodeId j = event.node;
        RFD_REQUIRE(j >= 0 && j < max_nodes_);
        if (shard.ever_active[static_cast<std::size_t>(j)] != 0) return;
        note_fault(shard, index, now);
        shard.ever_active[static_cast<std::size_t>(j)] = 1;
        shard.truth_active[static_cast<std::size_t>(j)] = 1;
        if (owns(shard, j)) {
          reseed_peers(shard, j, now, active_contacts(shard));
          nodes_[static_cast<std::size_t>(j)].set_active(true);
          count_row(shard, j, +1);
        }
        // The join itself does not change the true crashed set, so it is
        // not a disruption to converge from.
        break;
      }
      case FaultKind::kPartition:
        note_fault(shard, index, now);
        shard.network->set_partition(event.groups);
        break;
      case FaultKind::kHeal:
        note_fault(shard, index, now);
        shard.network->clear_partition();
        break;
      case FaultKind::kStormStart:
        note_fault(shard, index, now);
        shard.network->set_storm(event.extra_delay_ms, event.delay_prob);
        break;
      case FaultKind::kStormEnd:
        note_fault(shard, index, now);
        shard.network->clear_storm();
        break;
      case FaultKind::kLinkDown:
        note_fault(shard, index, now);
        shard.network->add_link_block(event.groups[0], event.groups[1]);
        break;
      case FaultKind::kLinkUp:
        note_fault(shard, index, now);
        shard.network->remove_link_block(event.groups[0], event.groups[1]);
        break;
      case FaultKind::kSlowStart:
        RFD_REQUIRE(event.node >= 0 && event.node < max_nodes_);
        note_fault(shard, index, now);
        shard.network->set_delay_factor(event.node, event.factor);
        break;
      case FaultKind::kSlowEnd:
        RFD_REQUIRE(event.node >= 0 && event.node < max_nodes_);
        note_fault(shard, index, now);
        shard.network->set_delay_factor(event.node, 1.0);
        break;
      case FaultKind::kLieStart: {
        const NodeId j = event.node;
        RFD_REQUIRE(j >= 0 && j < max_nodes_);
        note_fault(shard, index, now);
        if (owns(shard, j)) {
          lying_[static_cast<std::size_t>(j)] = 1;
          lie_delta_[static_cast<std::size_t>(j)] = event.factor;
          // The lie diverges from the current truth, so a jump and a
          // regress both start from the counter peers last believed.
          lie_value_[static_cast<std::size_t>(j)] = static_cast<double>(
              nodes_[static_cast<std::size_t>(j)].own_counter());
        }
        break;
      }
      case FaultKind::kLieEnd: {
        const NodeId j = event.node;
        RFD_REQUIRE(j >= 0 && j < max_nodes_);
        note_fault(shard, index, now);
        if (owns(shard, j)) lying_[static_cast<std::size_t>(j)] = 0;
        break;
      }
    }
  }

  /// Coordinator bookkeeping for one fault shard 0 found effective:
  /// ground-truth versioning, disruption counting, detection baselines.
  /// Applied in staged (chronological) order, before the agreement check
  /// of the tick whose window produced it - the old in-window ordering.
  void apply_fault_note(const FaultNote& note) {
    const FaultEvent& event = faults_[note.index];
    switch (event.kind) {
      case FaultKind::kCrash:
      case FaultKind::kLeave:
        down_since_[static_cast<std::size_t>(event.node)] = note.at;
        bump_truth(note.at);
        break;
      case FaultKind::kRecover:
        down_since_[static_cast<std::size_t>(event.node)] = -1.0;
        bump_truth(note.at);
        break;
      case FaultKind::kJoin:
      case FaultKind::kPartition:
      case FaultKind::kStormStart:
      case FaultKind::kLinkDown:
      case FaultKind::kSlowStart:
      case FaultKind::kLieStart:
        break;
      case FaultKind::kHeal:
      case FaultKind::kStormEnd:
      case FaultKind::kLinkUp:
      case FaultKind::kSlowEnd:
      case FaultKind::kLieEnd:
        // Re-convergence is only measurable if the episode actually
        // drove the cluster into disagreement.
        if (!last_agreement_) bump_truth(note.at);
        break;
    }
  }

  void bump_truth(double now) {
    // A batch of same-instant faults (e.g. a rack failing) is one
    // disruption to converge from, not many.
    if (truth_version_ > 0 && truth_change_time_ == now) return;
    ++truth_version_;
    truth_change_time_ = now;
    c_disruptions_->add(1);
  }

  /// The serial coordinator step (shard 0 only, peers quiesced between
  /// the reduction tree and the release barrier): replays every tick of
  /// the epoch in order from the reduced per-tick sums - scenario
  /// bookkeeping, cluster agreement, convergence, pending peak, each
  /// with the identical additive clock (coord_T_ += check per tick) the
  /// single-window engine used - then hands the epoch's trace to the
  /// merger, snapshots if due, and publishes the next plan.
  void coordinator_step(std::int64_t epoch, std::int64_t k_lo,
                        std::int64_t k_hi) {
    ShardState& shard0 = *shards_.front();
    const SyncSlot& global = sync_[0];
    std::size_t note_i = 0;
    std::int64_t disagreeing = 0;
    for (std::int64_t k = k_lo; k <= k_hi; ++k) {
      coord_T_ += check_ms_;
      const double now = coord_T_;
      while (note_i < shard0.fault_notes.size() &&
             shard0.fault_notes[note_i].at <= now) {
        apply_fault_note(shard0.fault_notes[note_i]);
        ++note_i;
      }
      while (coord_fault_cursor_ < faults_.size() &&
             faults_[coord_fault_cursor_].at_ms <= now) {
        ++coord_fault_cursor_;
      }
      disagreeing =
          global.tick_disagree[static_cast<std::size_t>(k - k_lo)];
      const bool all_agree = disagreeing == 0;
      if (all_agree && agreed_version_ < truth_version_) {
        h_convergence_->add(now - truth_change_time_);
        agreed_version_ = truth_version_;
      }
      last_agreement_ = all_agree;
      const std::int64_t pending =
          global.tick_pending[static_cast<std::size_t>(k - k_lo)] +
          static_cast<std::int64_t>(faults_.size() - coord_fault_cursor_);
      peak_logical_queue_ = std::max(peak_logical_queue_, pending);
    }
    RFD_REQUIRE(note_i == shard0.fault_notes.size());
    shard0.fault_notes.clear();
    if (use_merger_) {
      staged_epoch_.store(epoch, std::memory_order_release);
      merge_signal_.fetch_add(1, std::memory_order_release);
      merge_signal_.notify_all();
    } else {
      merge_inline();
    }
    // Snapshots piggyback on exchange barriers instead of scheduling
    // their own events, so enabling them cannot perturb the simulation;
    // next_plan caps spans at snapshot multiples, so every multiple is
    // an exchange tick. The TraceWriter is shared with the merger
    // thread, which therefore must drain this epoch first.
    if (trace_ != nullptr && config_.obs.snapshot_every_ticks > 0 &&
        k_hi % config_.obs.snapshot_every_ticks == 0) {
      if (use_merger_) {
        const obs::ScopedPhase sync(shard0.profiler.get(),
                                    obs::Phase::kSync, true);
        wait_merged(epoch);
      }
      snapshot(k_hi, coord_T_, disagreeing);
    }
    plan_hi_ = next_plan(k_hi);
    if (config_.stop != nullptr && plan_hi_ > k_hi &&
        config_.stop->load(std::memory_order_relaxed)) {
      // Graceful stop: truncate the plan at this exchange tick so every
      // shard exits its epoch loop together (the same release barrier
      // that publishes plan_hi_ publishes the truncation), and shrink
      // the round count so the report and rate normalization cover
      // exactly what ran. finalize() still executes: counters merge,
      // the trace drains and the footer is written.
      plan_hi_ = k_hi;
      rounds_total_ = k_hi;
      stopped_early_ = true;
    }
  }

  /// Shard 0, after every worker finished simulating: drain the merger,
  /// then merge whatever a grid-misaligned tail window staged.
  void drain_trailing(std::int64_t epochs) {
    if (use_merger_) wait_merged(epochs);
    merge_inline();
  }

  /// Dedicated trace-merger thread (spawned only when tracing with more
  /// than one shard): drains staged epochs in order while the shards
  /// simulate ahead, bounded to two in-flight epochs by the parity
  /// hand-off. Exceptions are captured - merged_epoch_ still advances,
  /// so no worker ever hangs on the flow-control wait - and rethrown by
  /// run() after the join.
  void merger_main() {
    std::int64_t done = 0;
    for (;;) {
      if (done < staged_epoch_.load(std::memory_order_acquire)) {
        ++done;
        try {
          if (merger_error_ == nullptr) merge_staged_epoch(done);
        } catch (...) {
          merger_error_ = std::current_exception();
        }
        if (merger_error_ != nullptr) {
          // Keep the parity hand-off flowing without doing work.
          for (const auto& shard : shards_) {
            shard->staged_records[static_cast<std::size_t>(done & 1)]
                .clear();
            shard->staged_logs[static_cast<std::size_t>(done & 1)].clear();
          }
        }
        merged_epoch_.store(done, std::memory_order_release);
        merged_epoch_.notify_all();
        continue;
      }
      if (merge_stop_.load(std::memory_order_acquire)) return;
      const std::int64_t sig =
          merge_signal_.load(std::memory_order_acquire);
      if (staged_epoch_.load(std::memory_order_acquire) > done ||
          merge_stop_.load(std::memory_order_acquire)) {
        continue;
      }
      merge_signal_.wait(sig, std::memory_order_acquire);
    }
  }

  /// Merges one staged epoch (both parity buffers' owners have long
  /// published it): concatenate, stable-sort under the deterministic
  /// total order, emit, then forward the buffered log lines.
  void merge_staged_epoch(std::int64_t e) {
    const std::size_t parity = static_cast<std::size_t>(e & 1);
    merge_scratch_.clear();
    for (const auto& shard : shards_) {
      auto& records = shard->staged_records[parity];
      merge_scratch_.insert(merge_scratch_.end(), records.begin(),
                            records.end());
      records.clear();
    }
    std::stable_sort(merge_scratch_.begin(), merge_scratch_.end(),
                     record_before);
    for (const obs::Record& r : merge_scratch_) trace_->emit(r);
    for (const auto& shard : shards_) {
      for (const BufferedLogLine& line :
           shard->staged_logs[parity]) {
        detail::log_line(line.level, line.line);
      }
      shard->staged_logs[parity].clear();
    }
  }

  void stop_merger() {
    if (!merger_.joinable()) return;
    merge_stop_.store(true, std::memory_order_release);
    merge_signal_.fetch_add(1, std::memory_order_release);
    merge_signal_.notify_all();
    merger_.join();
  }

  /// Logical pending-event count at an exchange barrier: local timers
  /// plus buffered messages and unapplied faults - the same population
  /// the old single queue held at snapshot time (the check chain itself
  /// is mid-execution there and uncounted). Shard-count-invariant by
  /// construction (each term is).
  std::int64_t logical_pending() const {
    std::int64_t pending = 0;
    for (const auto& shard : shards_) {
      pending += static_cast<std::int64_t>(shard->queue.size());
      pending += shard->pending_msgs;
    }
    pending += static_cast<std::int64_t>(faults_.size() -
                                         shards_.front()->fault_cursor);
    return pending;
  }

  /// Logical executed-event count: local events (pumps), applied
  /// messages, applied faults, and check rounds - the same population
  /// the old single-queue engine counted.
  std::int64_t logical_executed(std::int64_t rounds) const {
    std::int64_t executed = rounds;
    for (const auto& shard : shards_) {
      executed += shard->queue.executed();
      executed += shard->delivered_msgs;
    }
    executed += static_cast<std::int64_t>(shards_.front()->fault_cursor);
    return executed;
  }

  /// Folds the per-shard counter accumulators into the registry (integer
  /// sums in fixed shard order).
  void sync_counters() {
    std::int64_t digest = 0;
    std::int64_t payload = 0;
    std::int64_t raises = 0;
    std::int64_t clears = 0;
    std::int64_t false_s = 0;
    for (const auto& shard : shards_) {
      digest += shard->c_digest_entries;
      payload += shard->c_payload_bytes;
      raises += shard->c_raises;
      clears += shard->c_clears;
      false_s += shard->c_false;
    }
    c_digest_entries_->add(digest - c_digest_entries_->value());
    c_payload_bytes_->add(payload - c_payload_bytes_->value());
    c_raises_->add(raises - c_raises_->value());
    c_clears_->add(clears - c_clears_->value());
    c_false_->add(false_s - c_false_->value());
  }

  void snapshot(std::int64_t k, double now, std::int64_t disagreeing) {
    sync_counters();
    g_disagreeing_->set(static_cast<double>(disagreeing));
    std::int64_t sent = 0;
    std::int64_t dropped = 0;
    std::int64_t partition_dropped = 0;
    for (const auto& shard : shards_) {
      sent += shard->network->sent();
      dropped += shard->network->dropped();
      partition_dropped += shard->network->partition_dropped();
    }
    g_net_sent_->set(static_cast<double>(sent));
    g_net_dropped_->set(static_cast<double>(dropped));
    g_net_partition_->set(static_cast<double>(partition_dropped));
    g_queue_size_->set(static_cast<double>(logical_pending()));
    g_queue_executed_->set(static_cast<double>(logical_executed(k)));
    std::size_t max_hot = 0;
    for (const ClusterNode& node : nodes_) {
      if (node.active()) max_hot = std::max(max_hot, node.hot_queue_depth());
    }
    g_hot_queue_->set(static_cast<double>(max_hot));
    registry_.snapshot(*trace_, now, k);
  }

  /// Inline (caller-thread) merge of every shard's *live* staging
  /// buffers into the writer under the deterministic total order, then
  /// forwards buffered worker log lines (whole lines, shard order) to
  /// the process-wide sink. Used on the single-shard path (no merger
  /// thread) and for the tail window after the workers quiesce; the
  /// multi-shard steady state goes through merge_staged_epoch instead.
  void merge_inline() {
    if (trace_ != nullptr) {
      merge_scratch_.clear();
      for (const auto& shard : shards_) {
        merge_scratch_.insert(merge_scratch_.end(),
                              shard->sink.records.begin(),
                              shard->sink.records.end());
        shard->sink.records.clear();
      }
      std::stable_sort(merge_scratch_.begin(), merge_scratch_.end(),
                       record_before);
      for (const obs::Record& r : merge_scratch_) trace_->emit(r);
    }
    for (const auto& shard : shards_) {
      for (const BufferedLogLine& line : shard->log_buf) {
        detail::log_line(line.level, line.line);
      }
      shard->log_buf.clear();
    }
  }

  void finalize() {
    // Faults from a grid-misaligned tail window: no tick follows them,
    // so they replay here, in staged order.
    for (const FaultNote& note : shards_.front()->fault_notes) {
      apply_fault_note(note);
    }
    shards_.front()->fault_notes.clear();
    const ShardState& shard0 = *shards_.front();
    for (NodeId j = 0; j < max_nodes_; ++j) {
      const bool down = truly_down(shard0, j);
      if (!down || down_since_[static_cast<std::size_t>(j)] < 0.0) {
        continue;
      }
      const double down_at = down_since_[static_cast<std::size_t>(j)];
      for (NodeId i = 0; i < max_nodes_; ++i) {
        if (i == j ||
            shard0.truth_active[static_cast<std::size_t>(i)] == 0) {
          continue;
        }
        const ClusterNode& node = nodes_[static_cast<std::size_t>(i)];
        if (!node.knows(j)) continue;  // never met the victim; not a miss
        if (node.is_suspected(j)) {
          // A suspicion already standing at crash time detects
          // "instantly" from the abstraction's point of view.
          h_detect_->add(
              std::max(0.0, node.record(j).suspect_since - down_at));
        } else {
          c_missed_->add(1);
        }
      }
    }
    if (stopped_early_) {
      // Normalize rates over the time actually simulated, not the
      // horizon the stop cut short.
      report_.duration_ms = coord_T_;
    }
    sync_counters();
    fill_report_from_registry(report_, registry_);
    report_.events_executed = logical_executed(rounds_done_);
    report_.peak_event_queue = peak_logical_queue_;
    std::int64_t sent = 0;
    std::int64_t dropped = 0;
    std::int64_t partition_dropped = 0;
    for (const auto& shard : shards_) {
      sent += shard->network->sent();
      dropped += shard->network->dropped();
      partition_dropped += shard->network->partition_dropped();
    }
    report_.messages_sent = sent;
    report_.messages_dropped = dropped;
    report_.partition_dropped = partition_dropped;
    report_.unconverged_disruptions =
        report_.disruptions - report_.convergence_ms.count();
    report_.final_agreement = last_agreement_;
    finalize_rates(report_);
    report_.profile = merged_profile();
    if (trace_ != nullptr) {
      for (const obs::PhaseStat& stat : report_.profile) {
        trace_->write_line(obs::JsonLine{}
                               .str("type", "profile")
                               .str("phase", stat.phase)
                               .integer("calls", stat.calls)
                               .integer("sampled", stat.sampled)
                               .num("est_ms", stat.est_ms)
                               .finish());
      }
      trace_->write_line(
          obs::JsonLine{}
              .str("type", "end")
              .num("t", report_.duration_ms)
              .integer("events_executed", report_.events_executed)
              .integer("messages_sent", report_.messages_sent)
              .integer("detections", report_.detection_latency_ms.count())
              .integer("false_suspicions", report_.false_suspicions)
              .boolean("final_agreement", report_.final_agreement)
              .finish());
      trace_->close();
      report_.trace_records = trace_->written_records();
      report_.trace_dropped = trace_->dropped();
    }
  }

  /// Sums the per-shard phase-timer rollups (counts are exact sums;
  /// durations are sums of the per-shard scaled estimates).
  std::vector<obs::PhaseStat> merged_profile() const {
    std::vector<obs::PhaseStat> merged;
    for (const auto& shard : shards_) {
      if (shard->profiler == nullptr) continue;
      for (const obs::PhaseStat& stat : shard->profiler->stats()) {
        obs::PhaseStat* slot = nullptr;
        for (obs::PhaseStat& existing : merged) {
          if (existing.phase == stat.phase) {
            slot = &existing;
            break;
          }
        }
        if (slot == nullptr) {
          merged.push_back(stat);
        } else {
          slot->calls += stat.calls;
          slot->sampled += stat.sampled;
          slot->est_ms += stat.est_ms;
        }
      }
    }
    return merged;
  }

  ClusterConfig config_;
  int max_nodes_;
  double check_ms_;
  int shard_count_ = 1;
  std::vector<FaultEvent> faults_;
  std::vector<int> owner_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::unique_ptr<rt::ShardExecutor> executor_;
  std::vector<ClusterNode> nodes_;
  std::vector<Rng> rngs_;

  // Byzantine-ish lying nodes (kLieStart/kLieEnd): the advertised
  // counter diverges from own_counter() by lie_delta_ per heartbeat
  // interval while lying_[i] is set. Owner-shard-only writes, like the
  // node state itself, so shard determinism is preserved; when no lie is
  // active the pump path is bit-identical to the pre-lie engine.
  std::vector<char> lying_;
  std::vector<double> lie_delta_;
  std::vector<double> lie_value_;

  // Coordinator-side scenario bookkeeping (shard replicas carry the
  // window-time truth; these drive the report's QoS aggregation).
  std::vector<double> down_since_;
  std::int64_t truth_version_ = 0;
  std::int64_t agreed_version_ = 0;
  double truth_change_time_ = 0.0;
  bool last_agreement_ = true;
  std::int64_t rounds_done_ = 0;
  std::int64_t peak_logical_queue_ = 0;

  // Worker-resident loop state. plan_hi_ is plain: it is written by
  // shard 0 between the reduction tree and the release barrier and read
  // by the peers only after that barrier (whose release/acquire chain
  // orders it); everything else cross-thread goes through the atomics.
  std::int64_t rounds_total_ = 0;
  std::int64_t plan_hi_ = 0;
  /// Set by the coordinator when config_.stop truncated the plan;
  /// published to the workers by the same barrier as plan_hi_. The tail
  /// window and the report's duration normalization read it.
  bool stopped_early_ = false;
  int lookahead_cap_ = 1;
  double min_net_delay_ms_ = 0.0;
  std::unique_ptr<SyncSlot[]> sync_;
  // Coordinator replay cursors (only shard 0's serial step touches
  // them): the replayed clock - bit-identical to the workers' additive
  // accumulation - and the fault cursor mirroring the shards' own.
  double coord_T_ = 0.0;
  std::size_t coord_fault_cursor_ = 0;
  // Trace-merger thread plumbing. merge_signal_ exists because
  // atomic::wait needs a value that changes on every wake-worthy event
  // (staged_epoch_ alone can be re-stored before a waiter re-checks).
  bool use_merger_ = false;
  std::thread merger_;
  std::atomic<std::int64_t> staged_epoch_{0};
  std::atomic<std::int64_t> merged_epoch_{0};
  std::atomic<std::int64_t> merge_signal_{0};
  std::atomic<bool> merge_stop_{false};
  std::exception_ptr merger_error_;

  // Observability. The registry always exists (it is the aggregation
  // store); trace exists only when configured. Handles are cached once.
  std::uint64_t seed_ = 0;
  obs::Registry registry_;
  std::unique_ptr<obs::TraceWriter> trace_storage_;
  obs::TraceWriter* trace_ = nullptr;
  std::vector<obs::Record> merge_scratch_;
  obs::Counter* c_digest_entries_ = nullptr;
  obs::Counter* c_payload_bytes_ = nullptr;
  obs::Counter* c_raises_ = nullptr;
  obs::Counter* c_clears_ = nullptr;
  obs::Counter* c_false_ = nullptr;
  obs::Counter* c_disruptions_ = nullptr;
  obs::Counter* c_missed_ = nullptr;
  obs::Histo* h_detect_ = nullptr;
  obs::Histo* h_convergence_ = nullptr;
  obs::Gauge* g_disagreeing_ = nullptr;
  obs::Gauge* g_net_sent_ = nullptr;
  obs::Gauge* g_net_dropped_ = nullptr;
  obs::Gauge* g_net_partition_ = nullptr;
  obs::Gauge* g_queue_size_ = nullptr;
  obs::Gauge* g_queue_executed_ = nullptr;
  obs::Gauge* g_hot_queue_ = nullptr;

  ClusterReport report_;
};

}  // namespace

ClusterReport run_cluster(const ClusterConfig& config, std::uint64_t seed) {
  ClusterEngine engine(config, seed);
  return engine.run();
}

}  // namespace rfd::cluster
