// The scenario DSL: fault timelines as data.
//
// A scenario file is a line-oriented script - one statement per line,
// `#` comments - that expands into the engine's primitive FaultEvents.
// Making timelines loadable text turns them into a corpus: the checked-in
// scenarios/ library is both documentation of the fault classes the
// engine covers (one-way partitions, flapping links, correlated rack
// failures, slow-but-alive nodes, cascading overload - the regimes the
// Impact-FD and large-scale-detection papers in PAPERS.md stress) and the
// regression oracle for every future engine change, via the golden-trace
// conformance suite that pins a fixed-seed trace digest per file.
//
// Grammar (keyword, then key=value pairs in any order):
//
//   name "bad afternoon"            # optional, must precede faults
//   config n=48 max_nodes=52 duration=60000 cluster=8
//   budget max_false_per_node_min=0.5 max_detect_p99=2500
//                                   # optional QoS budget the run must
//                                   # meet (enforced by bench_e11 + CI)
//
//   crash      at=6000 node=17          # node= accepts sets: 1-3,9
//   recover    at=9000 node=17
//   join       at=1000 node=48
//   leave      at=2000 node=3
//   partition  at=8000 groups=0-23|24-47
//   heal       at=12000
//   link_down  at=5000 from=0-7 to=8-15     # one-way (asymmetric) cut
//   link_up    at=9000 from=0-7 to=8-15
//   slow       at=5000 node=3 factor=8      # slow-but-alive
//   slow_end   at=9000 node=3
//   lie        at=5000 node=3 delta=-2      # Byzantine-ish wrong counter:
//   lie_end    at=9000 node=3               # jumps (delta>1) or regresses
//   storm_on   at=5000 extra=800 prob=0.6
//   storm_off  at=9000
//
//   # compound statements (expand to the primitives above)
//   delay_storm from=10000 to=20000 extra=4000 prob=0.7
//   flap        from=10000 to=20000 period=1000 duty=0.5 a=0-7 b=8-15
//   rack        at=15000 group=2 size=8     # correlated rack failure
//   overload    from=10000 to=20000 steps=5 extra=3000 prob=0.8
//   churn       from=10000 to=20000 join=64-67 leave=0-3
//
// Node sets are comma-separated ids and lo-hi ranges (`0-3,7,9`). Times
// are milliseconds. `rack` crashes one group of the two-level topology's
// node blocks (size= overrides the context's cluster size) in a single
// instant - one correlated disruption. Parse errors carry exact
// line/column positions; cross-statement discipline (unmatched link_up,
// storm_off, overlapping partition groups) is attributed to the
// offending statement's line.
#pragma once

#include <string>
#include <string_view>

#include "cluster/scenario.hpp"

namespace rfd::cluster {

/// Expansion context a scenario file may rely on when it does not carry
/// its own `config` statement: node-id bound checks use `max_nodes`, and
/// `rack` statements without size= use `cluster_size` (0 = derive
/// ceil(sqrt(max_nodes)) like the hierarchical topology does).
struct DslContext {
  int max_nodes = 0;    // 0 = node references unchecked
  int cluster_size = 0;
};

/// A parsed scenario file: the expanded primitive timeline plus the
/// file's self-description (zero fields mean "caller decides").
struct ScenarioDoc {
  std::string name;
  int n = 0;
  int max_nodes = 0;
  int cluster_size = 0;
  double duration_ms = 0.0;
  /// Highest node id referenced by any statement; lets loaders size the
  /// id space when the file does not set max_nodes.
  NodeId max_node_ref = -1;
  /// Optional QoS budget from a `budget` header (< 0 = no bound): the
  /// run's false-suspicion rate and detection p99 must stay under these
  /// for the scenario to pass its bench/CI gate.
  double budget_max_false_per_node_min = -1.0;
  double budget_max_detect_p99_ms = -1.0;
  bool has_budget() const {
    return budget_max_false_per_node_min >= 0.0 ||
           budget_max_detect_p99_ms >= 0.0;
  }
  Scenario scenario;
};

struct DslError {
  int line = 0;  // 1-based; 0 = no error
  int col = 0;   // 1-based
  std::string message;

  std::string to_string() const;
};

/// Parses scenario DSL text into `out`. On failure returns false and
/// fills `err` with an exact line/column diagnostic; `out` is
/// unspecified. The expanded timeline is guaranteed to pass
/// Scenario::check().
bool parse_scenario(std::string_view text, const DslContext& ctx,
                    ScenarioDoc& out, DslError& err);

/// Reads and parses the scenario file at `path` (err.line = 0 with an
/// explanatory message when the file cannot be read).
bool load_scenario_file(const std::string& path, const DslContext& ctx,
                        ScenarioDoc& out, DslError& err);

/// Serializes a timeline as primitive DSL statements, one event per
/// line in event order; parse_scenario on the result reproduces the
/// event list (round-trip fixed point). `doc` metadata (name/config)
/// is emitted when present.
std::string serialize_scenario(const ScenarioDoc& doc);

}  // namespace rfd::cluster
