#include "cluster/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace rfd::cluster {
namespace {

void require_time(double at_ms) {
  RFD_REQUIRE_MSG(std::isfinite(at_ms) && at_ms >= 0.0,
                  "fault event time must be finite and >= 0");
}

/// Endpoint-set key for link pairing: sorted, deduplicated - the same
/// normalization Network::remove_link_block matches rules by.
std::vector<NodeId> normalized(const std::vector<NodeId>& ids) {
  std::vector<NodeId> out = ids;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

Scenario& Scenario::crash(double at_ms, NodeId node) {
  require_time(at_ms);
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kCrash;
  e.node = node;
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::recover(double at_ms, NodeId node) {
  require_time(at_ms);
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kRecover;
  e.node = node;
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::partition(double at_ms,
                              std::vector<std::vector<NodeId>> groups) {
  require_time(at_ms);
  RFD_REQUIRE(groups.size() >= 2);
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kPartition;
  e.groups = std::move(groups);
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::heal(double at_ms) {
  require_time(at_ms);
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kHeal;
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::join(double at_ms, NodeId node) {
  require_time(at_ms);
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kJoin;
  e.node = node;
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::leave(double at_ms, NodeId node) {
  require_time(at_ms);
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kLeave;
  e.node = node;
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::storm_on(double at_ms, double extra_delay_ms,
                             double delay_prob) {
  require_time(at_ms);
  RFD_REQUIRE(extra_delay_ms >= 0.0);
  RFD_REQUIRE(delay_prob >= 0.0 && delay_prob <= 1.0);
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kStormStart;
  e.extra_delay_ms = extra_delay_ms;
  e.delay_prob = delay_prob;
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::storm_off(double at_ms) {
  require_time(at_ms);
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kStormEnd;
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::delay_storm(double from_ms, double to_ms,
                                double extra_delay_ms, double delay_prob) {
  RFD_REQUIRE(to_ms > from_ms);
  // Window-pairing discipline (the storm state on the network is a single
  // scalar pair, so overlapping windows would silently corrupt each
  // other) is checked by validate() over the *sorted* timeline - the old
  // insertion-order check here broke down as soon as windows were
  // appended out of time order.
  return storm_on(from_ms, extra_delay_ms, delay_prob).storm_off(to_ms);
}

Scenario& Scenario::link_down(double at_ms, std::vector<NodeId> from,
                              std::vector<NodeId> to) {
  require_time(at_ms);
  RFD_REQUIRE(!from.empty() && !to.empty());
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kLinkDown;
  e.groups.push_back(std::move(from));
  e.groups.push_back(std::move(to));
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::link_up(double at_ms, std::vector<NodeId> from,
                            std::vector<NodeId> to) {
  require_time(at_ms);
  RFD_REQUIRE(!from.empty() && !to.empty());
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kLinkUp;
  e.groups.push_back(std::move(from));
  e.groups.push_back(std::move(to));
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::slow(double at_ms, NodeId node, double factor) {
  require_time(at_ms);
  RFD_REQUIRE(factor > 0.0);
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kSlowStart;
  e.node = node;
  e.factor = factor;
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::slow_end(double at_ms, NodeId node) {
  require_time(at_ms);
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kSlowEnd;
  e.node = node;
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::lie(double at_ms, NodeId node, double delta) {
  require_time(at_ms);
  RFD_REQUIRE_MSG(std::isfinite(delta), "lie delta must be finite");
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kLieStart;
  e.node = node;
  e.factor = delta;
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::lie_end(double at_ms, NodeId node) {
  require_time(at_ms);
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kLieEnd;
  e.node = node;
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::flapping_link(double from_ms, double to_ms,
                                  double period_ms, double duty,
                                  std::vector<NodeId> a,
                                  std::vector<NodeId> b) {
  require_time(from_ms);
  RFD_REQUIRE(to_ms > from_ms);
  RFD_REQUIRE(period_ms > 0.0);
  RFD_REQUIRE(duty >= 0.0 && duty <= 1.0);
  RFD_REQUIRE(!a.empty() && !b.empty());
  if (duty >= 1.0) return *this;  // never down
  // Each period is up for duty*period, then down (both directions) for
  // the rest; a window that would still be down at to_ms is cut short so
  // the flap leaves no block installed.
  for (double t = from_ms; t < to_ms; t += period_ms) {
    const double down_at = t + duty * period_ms;
    if (down_at >= to_ms) break;
    const double up_at = std::min(t + period_ms, to_ms);
    link_down(down_at, a, b);
    link_down(down_at, b, a);
    link_up(up_at, a, b);
    link_up(up_at, b, a);
  }
  return *this;
}

Scenario& Scenario::overload_ramp(double from_ms, double to_ms, int steps,
                                  double peak_extra_ms, double prob) {
  require_time(from_ms);
  RFD_REQUIRE(to_ms > from_ms);
  RFD_REQUIRE(steps >= 1);
  RFD_REQUIRE(peak_extra_ms >= 0.0);
  const double span = to_ms - from_ms;
  for (int i = 0; i < steps; ++i) {
    storm_on(from_ms + span * i / steps,
             peak_extra_ms * (i + 1) / steps, prob);
  }
  return storm_off(to_ms);
}

std::vector<FaultEvent> Scenario::sorted() const {
  std::vector<FaultEvent> out = events;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_ms < b.at_ms;
                   });
  return out;
}

std::optional<ScenarioIssue> Scenario::check() const {
  // Sort indices, not events, so a violation can name the offending
  // entry of `events` (the DSL parser maps that back to a source line).
  std::vector<std::size_t> order(events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return events[a].at_ms < events[b].at_ms;
                   });

  int open_storms = 0;
  std::vector<std::pair<std::vector<NodeId>, std::vector<NodeId>>> links;
  std::vector<NodeId> slowed;
  std::vector<NodeId> lying;
  for (const std::size_t index : order) {
    const FaultEvent& e = events[index];
    if (!std::isfinite(e.at_ms) || e.at_ms < 0.0) {
      return ScenarioIssue{index, "event time must be finite and >= 0"};
    }
    switch (e.kind) {
      case FaultKind::kPartition: {
        if (e.groups.size() < 2) {
          return ScenarioIssue{index, "partition needs >= 2 groups"};
        }
        std::vector<NodeId> all;
        for (const auto& group : e.groups) {
          if (group.empty()) {
            return ScenarioIssue{index, "partition group is empty"};
          }
          all.insert(all.end(), group.begin(), group.end());
        }
        std::sort(all.begin(), all.end());
        if (std::adjacent_find(all.begin(), all.end()) != all.end()) {
          return ScenarioIssue{
              index, "partition groups overlap (a node is in two groups)"};
        }
        break;
      }
      case FaultKind::kStormStart:
        // A start while a storm is open re-sets the parameters - the
        // overload ramp's escalation primitive - so any depth is legal.
        ++open_storms;
        break;
      case FaultKind::kStormEnd:
        if (open_storms == 0) {
          return ScenarioIssue{index, "storm_off without an open storm"};
        }
        open_storms = 0;  // clears the storm whatever the ramp depth
        break;
      case FaultKind::kLinkDown:
        links.emplace_back(normalized(e.groups[0]), normalized(e.groups[1]));
        break;
      case FaultKind::kLinkUp: {
        const auto key = std::make_pair(normalized(e.groups[0]),
                                        normalized(e.groups[1]));
        const auto it = std::find(links.begin(), links.end(), key);
        if (it == links.end()) {
          return ScenarioIssue{
              index, "link_up without a matching installed link_down"};
        }
        links.erase(it);
        break;
      }
      case FaultKind::kSlowStart:
        // Re-slowing an already-slow node re-sets the factor; legal.
        if (std::find(slowed.begin(), slowed.end(), e.node) ==
            slowed.end()) {
          slowed.push_back(e.node);
        }
        break;
      case FaultKind::kSlowEnd: {
        const auto it = std::find(slowed.begin(), slowed.end(), e.node);
        if (it == slowed.end()) {
          return ScenarioIssue{index,
                               "slow_end on a node that is not slowed"};
        }
        slowed.erase(it);
        break;
      }
      case FaultKind::kLieStart:
        // Re-lying re-sets the delta; legal, like slow re-slow.
        if (std::find(lying.begin(), lying.end(), e.node) == lying.end()) {
          lying.push_back(e.node);
        }
        break;
      case FaultKind::kLieEnd: {
        const auto it = std::find(lying.begin(), lying.end(), e.node);
        if (it == lying.end()) {
          return ScenarioIssue{index,
                               "lie_end on a node that is not lying"};
        }
        lying.erase(it);
        break;
      }
      case FaultKind::kCrash:
      case FaultKind::kRecover:
      case FaultKind::kJoin:
      case FaultKind::kLeave:
      case FaultKind::kHeal:
        break;
    }
  }
  return std::nullopt;
}

std::string Scenario::validate() const {
  const std::optional<ScenarioIssue> issue = check();
  if (!issue) return {};
  return "scenario event " + std::to_string(issue->event_index) + " (" +
         fault_kind_name(events[issue->event_index].kind) + " at " +
         std::to_string(events[issue->event_index].at_ms) +
         "ms): " + issue->message;
}

const char* fault_kind_cstr(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHeal:
      return "heal";
    case FaultKind::kJoin:
      return "join";
    case FaultKind::kLeave:
      return "leave";
    case FaultKind::kStormStart:
      return "storm-start";
    case FaultKind::kStormEnd:
      return "storm-end";
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kLinkUp:
      return "link-up";
    case FaultKind::kSlowStart:
      return "slow-start";
    case FaultKind::kSlowEnd:
      return "slow-end";
    case FaultKind::kLieStart:
      return "lie-start";
    case FaultKind::kLieEnd:
      return "lie-end";
  }
  return "?";
}

std::string fault_kind_name(FaultKind kind) { return fault_kind_cstr(kind); }

obs::Record fault_record(const FaultEvent& event, double t) {
  obs::Record r;
  r.type = obs::RecordType::kFault;
  r.t = t;
  r.s = fault_kind_cstr(event.kind);
  switch (event.kind) {
    case FaultKind::kCrash:
    case FaultKind::kRecover:
    case FaultKind::kJoin:
    case FaultKind::kLeave:
      r.a = event.node;
      break;
    case FaultKind::kPartition:
      r.c = static_cast<std::int64_t>(event.groups.size());
      break;
    case FaultKind::kStormStart:
      r.x = event.extra_delay_ms;
      r.y = event.delay_prob;
      break;
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
      // Representative endpoints (the first listed id of each side) plus
      // the blocked-pair population; enough to line faults up with the
      // reason-tagged "link" drop records that follow.
      r.a = event.groups[0].front();
      r.b = event.groups[1].front();
      r.c = static_cast<std::int64_t>(event.groups[0].size()) *
            static_cast<std::int64_t>(event.groups[1].size());
      break;
    case FaultKind::kSlowStart:
    case FaultKind::kLieStart:
      r.a = event.node;
      r.x = event.factor;
      break;
    case FaultKind::kSlowEnd:
    case FaultKind::kLieEnd:
      r.a = event.node;
      break;
    case FaultKind::kHeal:
    case FaultKind::kStormEnd:
      break;
  }
  return r;
}

Scenario multi_crash_scenario(int n, int crashes, double at_ms) {
  RFD_REQUIRE(crashes >= 0 && crashes < n);
  Scenario s;
  // Victims spread across the id space so hierarchical clusters and ring
  // neighbourhoods each lose at most a few members.
  for (int i = 0; i < crashes; ++i) {
    const NodeId victim =
        static_cast<NodeId>((static_cast<std::int64_t>(i) * n) / crashes +
                            n / (2 * crashes));
    s.crash(at_ms, victim);
  }
  return s;
}

}  // namespace rfd::cluster
