#include "cluster/scenario.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rfd::cluster {

Scenario& Scenario::crash(double at_ms, NodeId node) {
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kCrash;
  e.node = node;
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::recover(double at_ms, NodeId node) {
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kRecover;
  e.node = node;
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::partition(double at_ms,
                              std::vector<std::vector<NodeId>> groups) {
  RFD_REQUIRE(groups.size() >= 2);
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kPartition;
  e.groups = std::move(groups);
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::heal(double at_ms) {
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kHeal;
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::join(double at_ms, NodeId node) {
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kJoin;
  e.node = node;
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::leave(double at_ms, NodeId node) {
  FaultEvent e;
  e.at_ms = at_ms;
  e.kind = FaultKind::kLeave;
  e.node = node;
  events.push_back(std::move(e));
  return *this;
}

Scenario& Scenario::delay_storm(double from_ms, double to_ms,
                                double extra_delay_ms, double delay_prob) {
  RFD_REQUIRE(to_ms > from_ms);
  // Storm state on the network is a single scalar pair, so overlapping
  // windows would silently corrupt each other (the second start replaces
  // the first's params and the earlier end cancels the later storm).
  // delay_storm always appends a matched start/end pair, so existing
  // windows are recoverable by pairing in insertion order.
  double window_start = -1.0;
  for (const FaultEvent& e : events) {
    if (e.kind == FaultKind::kStormStart) {
      window_start = e.at_ms;
    } else if (e.kind == FaultKind::kStormEnd) {
      RFD_REQUIRE(to_ms <= window_start || e.at_ms <= from_ms);
      window_start = -1.0;
    }
  }
  FaultEvent start;
  start.at_ms = from_ms;
  start.kind = FaultKind::kStormStart;
  start.extra_delay_ms = extra_delay_ms;
  start.delay_prob = delay_prob;
  events.push_back(std::move(start));
  FaultEvent end;
  end.at_ms = to_ms;
  end.kind = FaultKind::kStormEnd;
  events.push_back(std::move(end));
  return *this;
}

std::vector<FaultEvent> Scenario::sorted() const {
  std::vector<FaultEvent> out = events;
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_ms < b.at_ms;
                   });
  return out;
}

const char* fault_kind_cstr(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHeal:
      return "heal";
    case FaultKind::kJoin:
      return "join";
    case FaultKind::kLeave:
      return "leave";
    case FaultKind::kStormStart:
      return "storm-start";
    case FaultKind::kStormEnd:
      return "storm-end";
  }
  return "?";
}

std::string fault_kind_name(FaultKind kind) { return fault_kind_cstr(kind); }

obs::Record fault_record(const FaultEvent& event, double t) {
  obs::Record r;
  r.type = obs::RecordType::kFault;
  r.t = t;
  r.s = fault_kind_cstr(event.kind);
  switch (event.kind) {
    case FaultKind::kCrash:
    case FaultKind::kRecover:
    case FaultKind::kJoin:
    case FaultKind::kLeave:
      r.a = event.node;
      break;
    case FaultKind::kPartition:
      r.c = static_cast<std::int64_t>(event.groups.size());
      break;
    case FaultKind::kStormStart:
      r.x = event.extra_delay_ms;
      r.y = event.delay_prob;
      break;
    case FaultKind::kHeal:
    case FaultKind::kStormEnd:
      break;
  }
  return r;
}

Scenario multi_crash_scenario(int n, int crashes, double at_ms) {
  RFD_REQUIRE(crashes >= 0 && crashes < n);
  Scenario s;
  // Victims spread across the id space so hierarchical clusters and ring
  // neighbourhoods each lose at most a few members.
  for (int i = 0; i < crashes; ++i) {
    const NodeId victim =
        static_cast<NodeId>((static_cast<std::int64_t>(i) * n) / crashes +
                            n / (2 * crashes));
    s.crash(at_ms, victim);
  }
  return s;
}

}  // namespace rfd::cluster
