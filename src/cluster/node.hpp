// One node of the cluster monitoring engine.
//
// The cluster layer disseminates *freshness*, not raw heartbeats: every
// node keeps a monotonically increasing heartbeat counter, bumps it once
// per heartbeat interval, and ships (id, counter) entries to peers chosen
// by the dissemination topology. A receiver treats any counter advance for
// peer j - whether it arrived directly from j or piggybacked through
// intermediaries - as a heartbeat for its per-peer detector (van Renesse's
// gossip-style failure detection, composed with the FixedTimeout /
// ChenAdaptive / PhiAccrual detectors of src/runtime).
//
// This unifies all four topologies behind one mechanism:
//   - direct heartbeats (all-to-all) advance only the sender's entry;
//   - ring / gossip / hierarchical messages piggyback bounded digests of
//     other counters, so liveness information spreads transitively;
//   - false suspicions self-heal: a fresh counter is its own refutation,
//     so no SWIM-style incarnation machinery is needed - exactly what
//     makes partition/heal scenarios converge.
//
// Layout is dictated by the two hot loops - the engine's receive loop
// (one observe() per digest entry, tens of millions per run at n=1024)
// and the topologies' per-round scans (target selection, digest
// rotation). Per-peer state is struct-of-arrays:
//   - counters_ (4 bytes/peer): the freshest heartbeat counter. A seen
//     counter > 0 implies the peer is known, so a stale entry - the
//     majority - is decided by this one load in a 4KB-per-node array
//     that stays cache-resident, touching nothing else;
//   - hot_ (one 16-byte PeerHot per peer): the known / suspected /
//     fresh / armed flag bits, the remaining piggyback budget, and the
//     last-heartbeat timestamp that is the inlined fixed-timeout
//     detector's entire state. The kFixed detector - the cluster
//     default and the only per-(observer, victim)-pair allocation at
//     scale - thus needs no heap object, no virtual dispatch, and no
//     extra cache line on an advance. The scan loops and digest
//     keep()-filters read only the flags byte of it. kChen/kPhi keep
//     their heap detector in the cold record;
//   - eval_tick_ (8 bytes/peer): the engine's suspicion-wheel slot;
//   - records_ (cold): known_since, suspect bookkeeping and the adaptive
//     detector instance - touched on state transitions, not per entry.
// The hot-path queries and observe() are defined inline here so the
// receive loop and the topology scans compile into flat array walks.
// Detector state is created lazily on the first counter advance (a node
// that has never been heard from is covered by the bootstrap grace
// window instead).
//
// Heartbeat counters are stored as 32 bits (advance_own_counter guards
// the bound): one counter per heartbeat interval means 2^31 intervals
// outlast any simulation by orders of magnitude, and the narrower word
// halves the hot array and the digest payload traffic.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "runtime/detectors.hpp"
#include "runtime/network.hpp"

namespace rfd::cluster {

using rt::NodeId;

/// Cold per-peer state: touched on membership / suspicion transitions and
/// by the engine's suspicion wheel, never per digest entry.
struct PeerRecord {
  double known_since = -1.0;
  /// Adaptive (kChen / kPhi) detector instance, created on the first
  /// evidence-bearing advance. Always null for kFixed - that detector
  /// lives in the peer's PeerHot::last_heartbeat slot.
  std::unique_ptr<rt::PeerDetector> detector;
  /// When the current suspicion started (engine bookkeeping; -1 = not
  /// suspected). Written through ClusterNode::set_suspected.
  double suspect_since = -1.0;
};

/// Dense per-peer hot state; see the file header.
struct PeerHot {
  double last_heartbeat = -1.0;  // inlined kFixed detector state
  std::uint8_t flags = 0;        // kKnown / kSuspected / kFresh / kArmed
  std::int8_t hot_remaining = 0; // piggyback budget (> 0 <=> queued)
};
static_assert(sizeof(PeerHot) == 16, "PeerHot must stay one 16-byte slot");

/// What one digest entry did to the receiver's state; lets the engine do
/// its wheel bookkeeping without re-querying the record.
struct ObserveResult {
  bool advanced = false;         // counter advanced: heartbeat evidence
  bool newly_known = false;      // first mention of this peer
  bool started_detector = false; // this advance began heartbeat tracking
};

struct NodeParams {
  rt::DetectorParams detector;
  /// Silence tolerated for a peer that is known (from the membership seed
  /// list or a digest mention) but has never produced a counter advance.
  double bootstrap_grace_ms = 1500.0;
  /// How many times a counter advance is piggybacked before the id falls
  /// out of the hot queue (SWIM's bounded rumor retransmission).
  int hot_transmissions = 4;
};

class ClusterNode {
 public:
  ClusterNode(NodeId id, int max_nodes, NodeParams params);

  NodeId id() const { return id_; }
  int max_nodes() const { return max_nodes_; }

  bool active() const { return active_; }
  void set_active(bool active) { active_ = active; }

  std::int64_t own_counter() const { return own_counter_; }
  void advance_own_counter() {
    // Counters are stored and shipped as 32 bits (see file header).
    RFD_REQUIRE_MSG(own_counter_ < std::numeric_limits<std::int32_t>::max(),
                    "heartbeat counter exceeds 32-bit digest range");
    ++own_counter_;
  }

  /// Marks `peer` as a known member; returns true if it was new
  /// (no-op and false for self / out-of-range / already known).
  bool learn_peer(NodeId peer, double now) {
    if (peer == id_ || peer < 0 || peer >= max_nodes_) return false;
    const std::size_t p = static_cast<std::size_t>(peer);
    if ((hot_[p].flags & kKnownFlag) != 0) return false;
    hot_[p].flags |= kKnownFlag;
    records_[p].known_since = now;
    ++known_count_;
    ++membership_version_;
    return true;
  }

  /// Processes one digest entry (peer, counter) received at `now`; feeds
  /// the peer's detector if the counter advanced.
  ObserveResult observe(NodeId peer, std::int64_t counter, double now) {
    ObserveResult result;
    if (peer == id_ || peer < 0 || peer >= max_nodes_) return result;
    const std::size_t p = static_cast<std::size_t>(peer);
    const std::int32_t seen = counters_[p];
    if (seen > 0) {
      // A seen counter implies the peer is already known, so a stale
      // entry - the receive loop's majority - is decided right here by
      // the one counters_ load. (A zero or stale counter carries no
      // liveness evidence; see below for zero's membership role.)
      if (counter <= seen) return result;
      counters_[p] = static_cast<std::int32_t>(counter);
      PeerHot& h = hot_[p];
      h.flags |= kFreshFlag;
      if (fixed_timeout_ms_ > 0.0) {
        result.started_detector = h.last_heartbeat < 0.0;
        h.last_heartbeat = now;
      } else {
        PeerRecord& r = records_[p];
        if (r.detector == nullptr) {
          r.detector = rt::make_detector(params_.detector);
          result.started_detector = true;
        }
        r.detector->on_heartbeat(now);
      }
      enqueue_hot(h, p);
      result.advanced = true;
      return result;
    }
    // Cold branch: no counter on file yet. A zero counter carries
    // membership information (handled by learn_peer) but no liveness
    // evidence.
    result.newly_known = learn_peer(peer, now);
    if (counter <= 0) return result;
    // First-ever counter for this peer: it proves membership, not
    // liveness - a gossiped value can be arbitrarily stale (e.g. the
    // final counter of a long-dead node still circulating in digests,
    // arriving at a freshly reset or joined observer). Record it as the
    // high-water mark and keep forwarding it (dissemination is how the
    // cluster bootstraps), but do not feed the detector: only an
    // advance beyond this mark is heartbeat evidence. A live peer
    // advances within one interval, so trust costs one round of
    // warm-up; a dead one never advances and falls to the bootstrap
    // grace window.
    counters_[p] = static_cast<std::int32_t>(counter);
    PeerHot& h = hot_[p];
    h.flags |= kFreshFlag;
    enqueue_hot(h, p);
    return result;
  }

  /// Current suspicion verdict for `peer` (self is never suspected,
  /// unknown peers are never suspected).
  bool suspects(NodeId peer, double now) const {
    if (peer == id_ || peer < 0 || peer >= max_nodes_) return false;
    const std::size_t p = static_cast<std::size_t>(peer);
    if ((hot_[p].flags & kKnownFlag) == 0) return false;
    if (fixed_timeout_ms_ > 0.0) {
      const double last = hot_[p].last_heartbeat;
      if (last < 0.0) return grace_expired(p, now);
      return now - last > fixed_timeout_ms_;
    }
    const PeerRecord& r = records_[p];
    if (r.detector == nullptr) return grace_expired(p, now);
    return r.detector->suspects(now);
  }

  /// Expiry deadline for `peer`: absent further counter advances,
  /// suspects(peer, t) holds exactly for t > deadline. +infinity for
  /// self/unknown peers (never suspected). Grace-covered peers expire at
  /// known_since + bootstrap_grace; heard peers defer to their detector.
  double suspect_deadline(NodeId peer) const {
    if (peer == id_ || peer < 0 || peer >= max_nodes_) {
      return std::numeric_limits<double>::infinity();
    }
    const std::size_t p = static_cast<std::size_t>(peer);
    if ((hot_[p].flags & kKnownFlag) == 0) {
      return std::numeric_limits<double>::infinity();
    }
    if (fixed_timeout_ms_ > 0.0) {
      const double last = hot_[p].last_heartbeat;
      if (last < 0.0) return grace_deadline(p);
      return last + fixed_timeout_ms_;
    }
    const PeerRecord& r = records_[p];
    if (r.detector == nullptr) return grace_deadline(p);
    return r.detector->suspect_deadline();
  }

  /// Whether the detector's expiry deadline can only move forward on a
  /// heartbeat. True for the inlined fixed-timeout detector; adaptive
  /// windows (kChen / kPhi) can tighten, so theirs can move backward.
  /// The engine uses this to skip re-arming already-armed pairs.
  bool deadline_monotone() const { return fixed_timeout_ms_ > 0.0; }

  /// Updates the cached suspicion verdict (engine wheel only).
  void set_suspected(NodeId peer, bool suspected, double since) {
    const std::size_t p = static_cast<std::size_t>(peer);
    records_[p].suspect_since = since;
    const std::uint8_t before = hot_[p].flags;
    if (suspected) {
      hot_[p].flags = before | kSuspectedFlag;
    } else {
      hot_[p].flags = before & static_cast<std::uint8_t>(~kSuspectedFlag);
    }
    if (hot_[p].flags != before) ++membership_version_;
  }

  /// Check-tick index at which the engine's suspicion wheel will next
  /// evaluate this pair (-1 = unarmed). Owned by the engine; lives here
  /// (dense, with the >= 0 state mirrored as the armed flag bit) so the
  /// wheel needs no side table of its own and the receive loop's skip
  /// test stays on the flags byte it already holds. See engine.cpp.
  std::int64_t eval_tick(NodeId peer) const {
    return eval_tick_[static_cast<std::size_t>(peer)];
  }
  void set_eval_tick(NodeId peer, std::int64_t tick) {
    const std::size_t p = static_cast<std::size_t>(peer);
    eval_tick_[p] = tick;
    if (tick >= 0) {
      hot_[p].flags |= kArmedFlag;
    } else {
      hot_[p].flags &= static_cast<std::uint8_t>(~kArmedFlag);
    }
  }

  bool knows(NodeId peer) const {
    if (peer < 0 || peer >= max_nodes_) return false;
    if (peer == id_) return true;
    return (hot_[static_cast<std::size_t>(peer)].flags & kKnownFlag) != 0;
  }

  /// Cached verdict from the engine's last evaluation of this pair.
  bool is_suspected(NodeId peer) const {
    return (hot_[static_cast<std::size_t>(peer)].flags & kSuspectedFlag) !=
           0;
  }

  bool armed(NodeId peer) const {
    return (hot_[static_cast<std::size_t>(peer)].flags & kArmedFlag) != 0;
  }

  /// known && !suspected-by-cached-state; self counts as alive. Used by
  /// topologies for target selection (don't waste fanout on the dead).
  bool believes_alive(NodeId peer) const {
    if (peer == id_) return true;
    if (peer < 0 || peer >= max_nodes_) return false;
    return (hot_[static_cast<std::size_t>(peer)].flags &
            (kKnownFlag | kSuspectedFlag)) == kKnownFlag;
  }

  /// Whether a non-zero counter has been seen for `peer` (worth
  /// forwarding in digests; zero counters carry no liveness evidence).
  bool has_freshness(NodeId peer) const {
    if (peer < 0 || peer >= max_nodes_) return false;
    return (hot_[static_cast<std::size_t>(peer)].flags & kFreshFlag) != 0;
  }

  /// Freshest heartbeat counter seen for `peer`.
  std::int32_t counter(NodeId peer) const {
    return counters_[static_cast<std::size_t>(peer)];
  }

  /// Bumped whenever the (known, suspected) membership view changes;
  /// topologies key their per-node target caches on it.
  std::int64_t membership_version() const { return membership_version_; }

  /// Hints the prefetcher at `peer`'s hot slot; the engine issues this a
  /// few digest entries ahead of observe() so the (random-index) slot is
  /// in cache when the entry is processed. Semantically a no-op.
  void prefetch_peer(NodeId peer) const {
    if (peer >= 0 && peer < max_nodes_) {
      __builtin_prefetch(&counters_[static_cast<std::size_t>(peer)], 1, 1);
      __builtin_prefetch(&hot_[static_cast<std::size_t>(peer)], 1, 1);
    }
  }

  /// Appends up to `budget` known peer ids (never self) to `out`.
  /// Recently advanced peers go first - forwarding fresh counters is what
  /// makes dissemination epidemic (SWIM piggybacks rumors the same way);
  /// each advance rides along at most `hot_transmissions` times. Leftover
  /// budget is filled from a rotating cursor over the whole membership,
  /// which keeps even quiet or stale entries circulating. `keep` filters
  /// candidates; filtered-out hot entries stay queued undecremented.
  template <typename Filter>
  void select_digest(int budget, Filter&& keep, std::vector<NodeId>& out) {
    if (budget <= 0 || known_count_ == 0) return;
    int appended = 0;
    // Hot pass: drain queued advances front-to-back. Entries that must
    // stay queued (kept with leftover budget, or filtered out by `keep`)
    // are collected in the reusable survivor scratch and written back
    // just below the scan point, which becomes the new queue head - the
    // scanned prefix is compacted in place without ever copying the
    // untouched tail down, so a send costs O(entries scanned), not
    // O(queue length). The emitted sequence and the resulting queue
    // content are identical to the old full-compaction pass.
    const std::size_t queued = hot_queue_.size();
    std::size_t read = hot_head_;
    hot_scratch_.clear();
    for (; read < queued && appended < budget; ++read) {
      const NodeId candidate = hot_queue_[read];
      PeerHot& h = hot_[static_cast<std::size_t>(candidate)];
      if (h.hot_remaining <= 0) continue;  // expired while queued
      if (keep(candidate)) {
        out.push_back(candidate);
        ++appended;
        --h.hot_remaining;
        if (h.hot_remaining <= 0) continue;  // drained: drop from queue
      }
      hot_scratch_.push_back(candidate);
    }
    hot_head_ = read - hot_scratch_.size();
    std::copy(hot_scratch_.begin(), hot_scratch_.end(),
              hot_queue_.begin() + static_cast<std::ptrdiff_t>(hot_head_));
    if (hot_head_ == hot_queue_.size()) {
      hot_queue_.clear();
      hot_head_ = 0;
    } else if (hot_head_ >= 1024 && hot_head_ * 2 >= hot_queue_.size()) {
      // Amortized: reclaim the dead prefix once it dominates the vector.
      hot_queue_.erase(hot_queue_.begin(),
                       hot_queue_.begin() +
                           static_cast<std::ptrdiff_t>(hot_head_));
      hot_head_ = 0;
    }
    // Rotation pass over the dense flags array (an id just taken from
    // the hot queue may repeat; the receiver treats the duplicate as a
    // no-op).
    for (int scanned = 0; scanned < max_nodes_ && appended < budget;
         ++scanned) {
      if (++digest_cursor_ >= max_nodes_) digest_cursor_ = 0;
      const NodeId candidate = static_cast<NodeId>(digest_cursor_);
      if (candidate == id_) continue;
      if ((hot_[static_cast<std::size_t>(candidate)].flags & kKnownFlag) ==
          0) {
        continue;
      }
      if (!keep(candidate)) continue;
      out.push_back(candidate);
      ++appended;
    }
  }

  /// Forgets all peer state (process restart loses its memory); re-seeds
  /// membership from `contacts`. The own counter survives because it is
  /// engine-side simulation state standing in for a persisted epoch.
  void reset_peers(double now, const std::vector<NodeId>& contacts);

  /// Checkpoint hooks: append this node's complete mutable state (own
  /// counter, per-peer counters/flags/timestamps, detector instances,
  /// hot-queue content) to `out` / restore it from a byte span. restore
  /// assumes a freshly constructed node with the same (id, max_nodes,
  /// params) - the checkpoint wrapper pins that with a config
  /// fingerprint - and returns false on a truncated or inconsistent
  /// payload, leaving the node unfit for use. A restored node continues
  /// exactly where the saved one stopped: same digests, same suspicion
  /// verdicts, same detector windows.
  void save_state(std::vector<std::uint8_t>& out) const;
  bool restore_state(const std::uint8_t* data, std::size_t size,
                     std::size_t& consumed);

  const PeerRecord& record(NodeId peer) const {
    return records_[static_cast<std::size_t>(peer)];
  }
  int known_count() const { return known_count_; }
  /// Current hot-queue occupancy (ids with undrained piggyback budget);
  /// snapshotted by the observability layer as a dissemination-backlog
  /// gauge.
  std::size_t hot_queue_depth() const {
    return hot_queue_.size() - hot_head_;
  }

 private:
  static constexpr std::uint8_t kKnownFlag = 1;
  static constexpr std::uint8_t kSuspectedFlag = 2;
  static constexpr std::uint8_t kFreshFlag = 4;
  static constexpr std::uint8_t kArmedFlag = 8;

  bool grace_expired(std::size_t p, double now) const {
    // Known but never heard: allow the bootstrap grace window, measured
    // from when this node learned the peer exists.
    return now - records_[p].known_since > params_.bootstrap_grace_ms;
  }
  double grace_deadline(std::size_t p) const {
    return records_[p].known_since + params_.bootstrap_grace_ms;
  }
  void enqueue_hot(PeerHot& h, std::size_t p) {
    if (h.hot_remaining <= 0) hot_queue_.push_back(static_cast<NodeId>(p));
    h.hot_remaining = static_cast<std::int8_t>(params_.hot_transmissions);
  }

  NodeId id_;
  int max_nodes_;
  NodeParams params_;
  /// The fixed-timeout fast path: > 0 iff params_.detector.kind ==
  /// kFixed, in which case each peer's PeerHot::last_heartbeat is its
  /// whole detector.
  double fixed_timeout_ms_ = -1.0;
  /// Dense per-peer hot state (see file header).
  std::vector<std::int32_t> counters_;
  std::vector<PeerHot> hot_;
  std::vector<std::int64_t> eval_tick_;
  std::vector<PeerRecord> records_;
  std::int64_t membership_version_ = 0;
  bool active_ = true;
  std::int64_t own_counter_ = 0;
  int digest_cursor_ = 0;
  int known_count_ = 0;
  /// Ids with recent counter advances, FIFO; deduplicated via
  /// PeerHot::hot_remaining (> 0 <=> queued), so its occupancy never
  /// exceeds max_nodes_. Live entries occupy [hot_head_, size());
  /// select_digest consumes from hot_head_ and writes bounded survivor
  /// runs back in place of the scanned prefix (see there).
  std::vector<NodeId> hot_queue_;
  std::size_t hot_head_ = 0;
  /// Reusable survivor scratch for select_digest (bounded by the entries
  /// scanned per call).
  std::vector<NodeId> hot_scratch_;
};

}  // namespace rfd::cluster
