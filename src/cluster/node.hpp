// One node of the cluster monitoring engine.
//
// The cluster layer disseminates *freshness*, not raw heartbeats: every
// node keeps a monotonically increasing heartbeat counter, bumps it once
// per heartbeat interval, and ships (id, counter) entries to peers chosen
// by the dissemination topology. A receiver treats any counter advance for
// peer j - whether it arrived directly from j or piggybacked through
// intermediaries - as a heartbeat for its per-peer PeerDetector instance
// (van Renesse's gossip-style failure detection, composed with the
// FixedTimeout / ChenAdaptive / PhiAccrual detectors of src/runtime).
//
// This unifies all four topologies behind one mechanism:
//   - direct heartbeats (all-to-all) advance only the sender's entry;
//   - ring / gossip / hierarchical messages piggyback bounded digests of
//     other counters, so liveness information spreads transitively;
//   - false suspicions self-heal: a fresh counter is its own refutation,
//     so no SWIM-style incarnation machinery is needed - exactly what
//     makes partition/heal scenarios converge.
//
// Per-peer state lives in a flat vector indexed by node id so runs with
// thousands of nodes stay cache-friendly; detector instances are created
// lazily on the first counter advance (a node that has never been heard
// from is covered by the bootstrap grace window instead).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/detectors.hpp"
#include "runtime/network.hpp"

namespace rfd::cluster {

using rt::NodeId;

struct PeerRecord {
  bool known = false;
  double known_since = -1.0;
  std::int64_t counter = 0;   // freshest heartbeat counter seen for the peer
  std::unique_ptr<rt::PeerDetector> detector;  // created on first advance
  // Cached suspicion state, maintained by the engine's check loop so
  // transitions (trust -> suspect and back) can be counted and timed.
  bool suspected = false;
  double suspect_since = -1.0;
  // Remaining piggyback transmissions while the peer sits in the hot
  // queue (> 0 <=> queued). See select_digest.
  int hot_remaining = 0;
};

struct NodeParams {
  rt::DetectorParams detector;
  /// Silence tolerated for a peer that is known (from the membership seed
  /// list or a digest mention) but has never produced a counter advance.
  double bootstrap_grace_ms = 1500.0;
  /// How many times a counter advance is piggybacked before the id falls
  /// out of the hot queue (SWIM's bounded rumor retransmission).
  int hot_transmissions = 4;
};

class ClusterNode {
 public:
  ClusterNode(NodeId id, int max_nodes, NodeParams params);

  NodeId id() const { return id_; }
  int max_nodes() const { return max_nodes_; }

  bool active() const { return active_; }
  void set_active(bool active) { active_ = active; }

  std::int64_t own_counter() const { return own_counter_; }
  void advance_own_counter() { ++own_counter_; }

  /// Marks `peer` as a known member (no-op if already known or self).
  void learn_peer(NodeId peer, double now);

  /// Processes one digest entry (peer, counter) received at `now`; feeds
  /// the peer's detector if the counter advanced. Returns true on advance.
  bool observe(NodeId peer, std::int64_t counter, double now);

  /// Current suspicion verdict for `peer` (self is never suspected,
  /// unknown peers are never suspected).
  bool suspects(NodeId peer, double now) const;

  bool knows(NodeId peer) const;
  /// known && !suspected-by-cached-state; self counts as alive. Used by
  /// topologies for target selection (don't waste fanout on the dead).
  bool believes_alive(NodeId peer) const;

  /// Appends up to `budget` known peer ids (never self) to `out`.
  /// Recently advanced peers go first - forwarding fresh counters is what
  /// makes dissemination epidemic (SWIM piggybacks rumors the same way);
  /// each advance rides along at most `hot_transmissions` times. Leftover
  /// budget is filled from a rotating cursor over the whole membership,
  /// which keeps even quiet or stale entries circulating. `keep` filters
  /// candidates; filtered-out hot entries stay queued undecremented.
  template <typename Filter>
  void select_digest(int budget, Filter&& keep, std::vector<NodeId>& out) {
    if (budget <= 0 || known_count_ == 0) return;
    int appended = 0;
    // Hot pass: drain queued advances front-to-back, compacting out the
    // entries whose transmission budget is exhausted.
    std::size_t write = 0;
    for (std::size_t read = 0; read < hot_queue_.size(); ++read) {
      const NodeId candidate = hot_queue_[read];
      PeerRecord& r = peers_[static_cast<std::size_t>(candidate)];
      if (r.hot_remaining <= 0) continue;  // expired while queued
      if (appended < budget && keep(candidate)) {
        out.push_back(candidate);
        ++appended;
        --r.hot_remaining;
        if (r.hot_remaining <= 0) continue;  // drained: drop from queue
      }
      hot_queue_[write++] = candidate;
    }
    hot_queue_.resize(write);
    // Rotation pass (an id just taken from the hot queue may repeat; the
    // receiver treats the duplicate as a no-op).
    for (int scanned = 0; scanned < max_nodes_ && appended < budget;
         ++scanned) {
      digest_cursor_ = (digest_cursor_ + 1) % max_nodes_;
      const NodeId candidate = static_cast<NodeId>(digest_cursor_);
      if (candidate == id_) continue;
      const PeerRecord& r = peers_[static_cast<std::size_t>(candidate)];
      if (!r.known) continue;
      if (!keep(candidate)) continue;
      out.push_back(candidate);
      ++appended;
    }
  }

  /// Forgets all peer state (process restart loses its memory); re-seeds
  /// membership from `contacts`. The own counter survives because it is
  /// engine-side simulation state standing in for a persisted epoch.
  void reset_peers(double now, const std::vector<NodeId>& contacts);

  const PeerRecord& record(NodeId peer) const {
    return peers_[static_cast<std::size_t>(peer)];
  }
  PeerRecord& mutable_record(NodeId peer) {
    return peers_[static_cast<std::size_t>(peer)];
  }
  int known_count() const { return known_count_; }

 private:
  NodeId id_;
  int max_nodes_;
  NodeParams params_;
  std::vector<PeerRecord> peers_;
  bool active_ = true;
  std::int64_t own_counter_ = 0;
  int digest_cursor_ = 0;
  int known_count_ = 0;
  /// Ids with recent counter advances, FIFO; deduplicated via
  /// PeerRecord::hot_remaining, so its length never exceeds max_nodes_.
  std::vector<NodeId> hot_queue_;
};

}  // namespace rfd::cluster
