// Wire codec for gossip digest payloads.
//
// A heartbeat message carries the sender's own counter plus up to
// digest_size piggybacked (peer id, counter) entries. Shipping those as
// raw (int32, int32) pairs makes payload bytes scale with both the
// digest size and - through the id values - log2(n); at n=10k a single
// digest is kilobytes. The codec instead sorts entries by id and
// delta-compresses the id stream (LEB128 varints of the gaps), so a
// digest that samples k of n ids costs ~log2(n/k) bits per id: with the
// bench's digest_size = n/8 the gaps average 8 and the id stream is one
// byte per entry regardless of n. Counters are plain varints (they are
// small for most of a run and bounded by one per heartbeat interval).
//
// Sorting by id is also what makes the receiver's observe() loop walk
// its per-peer arrays in ascending index order - the cache-friendly
// drain that removes the PR-5 observe hot spot - and it is lossless:
// duplicate ids (a hot-queue entry also hit by the rotation cursor) are
// kept as zero gaps, so the decoded entry count and multiset match the
// selection exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace rfd::cluster {

inline void put_varint(std::vector<std::uint8_t>& out, std::uint32_t v) {
  while (v >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>(v | 0x80u));
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Raw-cursor variant for the hot encode path: the caller guarantees at
/// least 5 writable bytes at `p`.
inline std::uint8_t* put_varint_raw(std::uint8_t* p, std::uint32_t v) {
  while (v >= 0x80u) {
    *p++ = static_cast<std::uint8_t>(v | 0x80u);
    v >>= 7;
  }
  *p++ = static_cast<std::uint8_t>(v);
  return p;
}

/// Sequential reader over an encoded payload; the caller bounds reads by
/// the encoded entry count, and the assert guards against truncation.
class DigestReader {
 public:
  DigestReader(const std::uint8_t* data, std::size_t size)
      : p_(data), end_(data + size) {}

  std::uint32_t varint() {
    std::uint32_t value = 0;
    int shift = 0;
    for (;;) {
      RFD_REQUIRE_MSG(p_ != end_, "truncated digest payload");
      const std::uint8_t byte = *p_++;
      value |= static_cast<std::uint32_t>(byte & 0x7fu)
               << static_cast<unsigned>(shift);
      if ((byte & 0x80u) == 0) return value;
      shift += 7;
    }
  }

  bool done() const { return p_ == end_; }

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

/// Encodes one message payload: the sender's counter, the entry count,
/// then (id gap, counter) pairs for `ids` (which must be sorted
/// ascending; duplicates allowed). `counter_of` maps an id to the
/// counter value to ship.
template <typename CounterOf>
void encode_digest(std::uint32_t own_counter,
                   const std::vector<std::int32_t>& ids,
                   CounterOf&& counter_of, std::vector<std::uint8_t>& out) {
  // Size for the 5-bytes-per-varint worst case up front, then write
  // through a raw cursor and trim: one bounds decision per message
  // instead of one per byte (this encode runs once per heartbeat sent
  // and dominated the send path when it grew by push_back).
  const std::size_t base = out.size();
  out.resize(base + 10 + ids.size() * 10);
  std::uint8_t* p = out.data() + base;
  p = put_varint_raw(p, own_counter);
  p = put_varint_raw(p, static_cast<std::uint32_t>(ids.size()));
  std::int32_t prev = 0;
  for (const std::int32_t id : ids) {
    p = put_varint_raw(p, static_cast<std::uint32_t>(id - prev));
    p = put_varint_raw(p, static_cast<std::uint32_t>(counter_of(id)));
    prev = id;
  }
  out.resize(static_cast<std::size_t>(p - out.data()));
}

}  // namespace rfd::cluster
