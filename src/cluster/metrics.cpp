#include "cluster/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace rfd::cluster {

void finalize_rates(ClusterReport& report) {
  const double node_seconds =
      static_cast<double>(report.n) * report.duration_ms / 1000.0;
  if (node_seconds <= 0.0) return;
  report.messages_per_node_per_s =
      static_cast<double>(report.messages_sent) / node_seconds;
  report.entries_per_node_per_s =
      static_cast<double>(report.digest_entries_sent) / node_seconds;
  report.payload_bytes_per_node_per_s =
      static_cast<double>(report.digest_payload_bytes) / node_seconds;
  report.false_suspicions_per_node_per_min =
      static_cast<double>(report.false_suspicions) / node_seconds * 60.0;
}

void fill_report_from_registry(ClusterReport& report,
                               const obs::Registry& registry) {
  const auto counter = [&registry](const char* name) -> std::int64_t {
    const obs::Counter* c = registry.find_counter(name);
    return c != nullptr ? c->value() : 0;
  };
  report.digest_entries_sent = counter(metric::kDigestEntries);
  report.digest_payload_bytes = counter(metric::kPayloadBytes);
  report.suspicion_raises = counter(metric::kSuspicionRaises);
  report.suspicion_clears = counter(metric::kSuspicionClears);
  report.false_suspicions = counter(metric::kFalseSuspicions);
  report.disruptions = counter(metric::kDisruptions);
  report.missed_detections = counter(metric::kMissedDetections);
  if (const obs::Histo* h = registry.find_histogram(metric::kDetectionMs)) {
    report.detection_latency_ms = h->summary();
  }
  if (const obs::Histo* h = registry.find_histogram(metric::kConvergenceMs)) {
    report.convergence_ms = h->summary();
  }
}

std::string ClusterReport::summary() const {
  char buf[512];
  const double p50 = detection_latency_ms.count() > 0
                         ? detection_latency_ms.percentile(0.5)
                         : std::nan("");
  const double p99 = detection_latency_ms.count() > 0
                         ? detection_latency_ms.percentile(0.99)
                         : std::nan("");
  std::snprintf(
      buf, sizeof(buf),
      "%s/%s n=%d: %.1f msgs/node/s, detect p50=%.0fms p99=%.0fms "
      "(missed %lld), false=%lld, converged %lld/%lld, agree=%s",
      topology.c_str(), detector.c_str(), n, messages_per_node_per_s,
      p50, p99, static_cast<long long>(missed_detections),
      static_cast<long long>(false_suspicions),
      static_cast<long long>(convergence_ms.count()),
      static_cast<long long>(disruptions), final_agreement ? "yes" : "no");
  return buf;
}

}  // namespace rfd::cluster
