// Scripted fault injection for the cluster engine.
//
// A Scenario is a time-ordered list of fault events replayed against the
// running cluster: crashes, crash-recoveries, network partitions and
// heals, churn (joins and silent leaves), and delay storms. Scenarios are
// plain data - the engine interprets them - so experiments are scriptable
// and bit-for-bit reproducible under a fixed seed.
//
// Builders return *this so scripts read like a timeline:
//
//   Scenario s;
//   s.partition(5'000, {{0,1,2,3},{4,5,6,7}})
//    .crash(8'000, 2)
//    .heal(12'000)
//    .delay_storm(20'000, 25'000, 300.0, 0.5);
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/record.hpp"
#include "runtime/network.hpp"

namespace rfd::cluster {

using rt::NodeId;

enum class FaultKind {
  kCrash,        // node stops sending and receiving (fail-stop)
  kRecover,      // crashed node restarts with empty peer memory
  kPartition,    // install component masks on the network
  kHeal,         // remove the partition
  kJoin,         // a fresh node id becomes active and contacts the cluster
  kLeave,        // node departs silently (indistinguishable from a crash)
  kStormStart,   // extra per-message delay with some probability
  kStormEnd,
};

struct FaultEvent {
  double at_ms = 0.0;
  FaultKind kind = FaultKind::kCrash;
  NodeId node = -1;                          // crash/recover/join/leave
  std::vector<std::vector<NodeId>> groups;   // partition
  double extra_delay_ms = 0.0;               // storm
  double delay_prob = 1.0;                   // storm
};

struct Scenario {
  std::vector<FaultEvent> events;

  Scenario& crash(double at_ms, NodeId node);
  Scenario& recover(double at_ms, NodeId node);
  Scenario& partition(double at_ms, std::vector<std::vector<NodeId>> groups);
  Scenario& heal(double at_ms);
  Scenario& join(double at_ms, NodeId node);
  Scenario& leave(double at_ms, NodeId node);
  Scenario& delay_storm(double from_ms, double to_ms, double extra_delay_ms,
                        double delay_prob);

  /// Events sorted by time (stable, so same-time events keep script order).
  std::vector<FaultEvent> sorted() const;
};

std::string fault_kind_name(FaultKind kind);
/// Static-lifetime kind name, safe to stash in a deferred-formatting
/// obs::Record.
const char* fault_kind_cstr(FaultKind kind);

/// Trace record for `event` as applied at sim time `t` (the schema's
/// "fault" record; see obs/record.hpp and the README record tables).
obs::Record fault_record(const FaultEvent& event, double t);

/// Canned scenario: crash `crashes` distinct nodes (spread over the id
/// space) at `at_ms`. Handy for the scaling bench.
Scenario multi_crash_scenario(int n, int crashes, double at_ms);

}  // namespace rfd::cluster
