// Scripted fault injection for the cluster engine.
//
// A Scenario is a time-ordered list of fault events replayed against the
// running cluster: crashes, crash-recoveries, network partitions and
// heals, churn (joins and silent leaves), delay storms, directed link
// blocks (asymmetric partitions, flapping links), and slow-but-alive
// nodes. Scenarios are plain data - the engine interprets them - so
// experiments are scriptable and bit-for-bit reproducible under a fixed
// seed. They can also be loaded from text files via the scenario DSL
// (see cluster/scenario_dsl.hpp and the scenarios/ library).
//
// Builders return *this so scripts read like a timeline:
//
//   Scenario s;
//   s.partition(5'000, {{0,1,2,3},{4,5,6,7}})
//    .crash(8'000, 2)
//    .heal(12'000)
//    .delay_storm(20'000, 25'000, 300.0, 0.5);
//
// Events may be appended in any order: the engine consumes the timeline
// through sorted(), which stable-sorts by time (same-time events keep
// script order). Cross-event discipline - storm and link pairing, group
// overlap - is checked by validate(), which the engine requires to pass
// before a run starts, so a malformed timeline fails loudly instead of
// silently corrupting network state.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/record.hpp"
#include "runtime/network.hpp"

namespace rfd::cluster {

using rt::NodeId;

enum class FaultKind {
  kCrash,        // node stops sending and receiving (fail-stop)
  kRecover,      // crashed node restarts with empty peer memory
  kPartition,    // install component masks on the network
  kHeal,         // remove the partition
  kJoin,         // a fresh node id becomes active and contacts the cluster
  kLeave,        // node departs silently (indistinguishable from a crash)
  kStormStart,   // extra per-message delay with some probability
  kStormEnd,
  kLinkDown,     // directed block: groups[0] -> groups[1] messages drop
  kLinkUp,       // remove the matching directed block
  kSlowStart,    // slow-but-alive: outbound delay multiplier on `node`
  kSlowEnd,      // restore the node's outbound delay to normal
  kLieStart,     // Byzantine-ish: node advertises a wrong counter that
                 // moves by `factor` per heartbeat interval (jump or
                 // regress instead of the honest +1)
  kLieEnd,       // node resumes advertising its true counter
};

struct FaultEvent {
  double at_ms = 0.0;
  FaultKind kind = FaultKind::kCrash;
  NodeId node = -1;                          // crash/recover/join/leave/slow
  std::vector<std::vector<NodeId>> groups;   // partition; link: {from, to}
  double extra_delay_ms = 0.0;               // storm
  double delay_prob = 1.0;                   // storm
  double factor = 1.0;                       // slow multiplier / lie delta

  bool operator==(const FaultEvent&) const = default;
};

/// A cross-event discipline violation found by Scenario::check(), with
/// the offending event's index into `events` so loaders (the DSL parser)
/// can attribute it to a source line.
struct ScenarioIssue {
  std::size_t event_index = 0;
  std::string message;
};

struct Scenario {
  std::vector<FaultEvent> events;

  Scenario& crash(double at_ms, NodeId node);
  Scenario& recover(double at_ms, NodeId node);
  Scenario& partition(double at_ms, std::vector<std::vector<NodeId>> groups);
  Scenario& heal(double at_ms);
  Scenario& join(double at_ms, NodeId node);
  Scenario& leave(double at_ms, NodeId node);
  Scenario& delay_storm(double from_ms, double to_ms, double extra_delay_ms,
                        double delay_prob);
  /// Raw storm primitives: storm_on sets (or re-sets, for ramps) the
  /// storm parameters, storm_off clears them. delay_storm is the paired
  /// convenience over these.
  Scenario& storm_on(double at_ms, double extra_delay_ms, double delay_prob);
  Scenario& storm_off(double at_ms);
  /// Directed link block from every node in `from` to every node in `to`
  /// (a one-way/asymmetric partition when used alone; install both
  /// directions for a symmetric cut that composes with other blocks).
  Scenario& link_down(double at_ms, std::vector<NodeId> from,
                      std::vector<NodeId> to);
  Scenario& link_up(double at_ms, std::vector<NodeId> from,
                    std::vector<NodeId> to);
  /// Slow-but-alive: multiply `node`'s outbound delays by `factor` (> 1
  /// models an overloaded-but-responsive process) until slow_end.
  Scenario& slow(double at_ms, NodeId node, double factor);
  Scenario& slow_end(double at_ms, NodeId node);
  /// Byzantine-ish wrong heartbeats: from at_ms the node keeps running
  /// but its *advertised* counter moves by `delta` per heartbeat interval
  /// instead of the honest +1 (delta > 1 jumps ahead, delta < 0
  /// regresses, delta == 0 freezes the advertisement). The true counter
  /// keeps advancing underneath, so after lie_end the node heals itself.
  Scenario& lie(double at_ms, NodeId node, double delta);
  Scenario& lie_end(double at_ms, NodeId node);

  /// Flapping link between sets `a` and `b`: over [from_ms, to_ms), each
  /// `period_ms` window is up for `duty` of the period then down (both
  /// directions) for the rest. Expands to link_down/link_up pairs.
  Scenario& flapping_link(double from_ms, double to_ms, double period_ms,
                          double duty, std::vector<NodeId> a,
                          std::vector<NodeId> b);

  /// Cascading overload: `steps` storm escalations over [from_ms, to_ms),
  /// ramping the extra delay linearly up to `peak_extra_ms` (each step
  /// re-sets the storm), then clearing at to_ms.
  Scenario& overload_ramp(double from_ms, double to_ms, int steps,
                          double peak_extra_ms, double prob);

  /// Events sorted by time (stable, so same-time events keep script order).
  std::vector<FaultEvent> sorted() const;

  /// Checks cross-event discipline over the sorted timeline: storm_off
  /// and link_up/slow_end must match an open storm/block/slowdown, and
  /// partition groups must be disjoint. Returns the first violation, or
  /// nullopt for a well-formed timeline.
  std::optional<ScenarioIssue> check() const;

  /// Human-readable check(): empty string when well-formed. The engine
  /// requires this to be empty before running.
  std::string validate() const;
};

std::string fault_kind_name(FaultKind kind);
/// Static-lifetime kind name, safe to stash in a deferred-formatting
/// obs::Record.
const char* fault_kind_cstr(FaultKind kind);

/// Trace record for `event` as applied at sim time `t` (the schema's
/// "fault" record; see obs/record.hpp and the README record tables).
obs::Record fault_record(const FaultEvent& event, double t);

/// Canned scenario: crash `crashes` distinct nodes (spread over the id
/// space) at `at_ms`. Handy for the scaling bench.
Scenario multi_crash_scenario(int n, int crashes, double at_ms);

}  // namespace rfd::cluster
