#include "cluster/scenario_dsl.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace rfd::cluster {
namespace {

// ---------------------------------------------------------------------------
// Line scanner: one statement per line, `#` comments, tokens separated by
// blanks. Every token remembers its 1-based column so diagnostics point
// at the exact spot.

struct KeyVal {
  std::string key;
  int key_col = 0;
  std::string value;
  int value_col = 0;
};

struct Statement {
  std::string keyword;
  int line = 0;
  int col = 0;
  std::vector<KeyVal> kvs;
  std::string str_arg;  // quoted positional argument (only `name` has one)
  bool has_str = false;
};

bool fail(DslError& err, int line, int col, std::string message) {
  err.line = line;
  err.col = col;
  err.message = std::move(message);
  return false;
}

/// Scans one source line into a statement; `out_empty` is true when the
/// line holds nothing but blanks/comments.
bool scan_line(std::string_view text, int line_no, Statement& out,
               bool& out_empty, DslError& err) {
  out = Statement{};
  out.line = line_no;
  out_empty = true;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    if (i >= text.size() || text[i] == '#') break;
    const int col = static_cast<int>(i) + 1;
    if (text[i] == '"') {
      const std::size_t close = text.find('"', i + 1);
      if (close == std::string_view::npos) {
        return fail(err, line_no, col, "unterminated string");
      }
      if (out.keyword.empty()) {
        return fail(err, line_no, col,
                    "a statement must start with a keyword");
      }
      if (out.has_str) {
        return fail(err, line_no, col, "unexpected second string argument");
      }
      out.str_arg.assign(text.substr(i + 1, close - i - 1));
      out.has_str = true;
      i = close + 1;
      continue;
    }
    std::size_t end = i;
    while (end < text.size() && text[end] != ' ' && text[end] != '\t' &&
           text[end] != '#') {
      ++end;
    }
    const std::string_view token = text.substr(i, end - i);
    const std::size_t eq = token.find('=');
    if (out.keyword.empty()) {
      if (eq != std::string_view::npos) {
        return fail(err, line_no, col,
                    "a statement must start with a keyword, not key=value");
      }
      out.keyword.assign(token);
      out.col = col;
      out_empty = false;
    } else {
      if (eq == std::string_view::npos || eq == 0) {
        return fail(err, line_no, col,
                    "expected key=value, got '" + std::string(token) + "'");
      }
      KeyVal kv;
      kv.key.assign(token.substr(0, eq));
      kv.key_col = col;
      kv.value.assign(token.substr(eq + 1));
      kv.value_col = col + static_cast<int>(eq) + 1;
      out.kvs.push_back(std::move(kv));
    }
    i = end;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Typed value parsers.

bool parse_number(const Statement& st, const KeyVal& kv, double& out,
                  DslError& err) {
  const char* begin = kv.value.c_str();
  char* end = nullptr;
  out = std::strtod(begin, &end);
  if (end == begin || *end != '\0' || !std::isfinite(out)) {
    return fail(err, st.line, kv.value_col,
                "'" + kv.value + "' is not a number");
  }
  return true;
}

bool parse_integer(const Statement& st, const KeyVal& kv, std::int64_t& out,
                   DslError& err) {
  const auto [ptr, ec] = std::from_chars(
      kv.value.data(), kv.value.data() + kv.value.size(), out);
  if (ec != std::errc{} || ptr != kv.value.data() + kv.value.size()) {
    return fail(err, st.line, kv.value_col,
                "'" + kv.value + "' is not an integer");
  }
  return true;
}

/// Node set: comma-separated ids and lo-hi ranges, e.g. `0-3,7,9`.
bool parse_set(const Statement& st, const KeyVal& kv, std::string_view text,
               int text_col, std::vector<NodeId>& out, DslError& err) {
  std::size_t pos = 0;
  if (text.empty()) return fail(err, st.line, text_col, "empty node set");
  while (pos < text.size()) {
    const int part_col = text_col + static_cast<int>(pos);
    std::size_t end = text.find(',', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view part = text.substr(pos, end - pos);
    const std::size_t dash = part.find('-');
    auto id_of = [&](std::string_view digits, int col,
                     NodeId& id) -> bool {
      int value = 0;
      const auto [ptr, ec] = std::from_chars(
          digits.data(), digits.data() + digits.size(), value);
      if (ec != std::errc{} || ptr != digits.data() + digits.size() ||
          value < 0) {
        return fail(err, st.line, col,
                    "'" + std::string(digits) + "' is not a node id");
      }
      id = static_cast<NodeId>(value);
      return true;
    };
    if (dash == std::string_view::npos) {
      NodeId id = 0;
      if (!id_of(part, part_col, id)) return false;
      out.push_back(id);
    } else {
      NodeId lo = 0;
      NodeId hi = 0;
      if (!id_of(part.substr(0, dash), part_col, lo)) return false;
      if (!id_of(part.substr(dash + 1),
                 part_col + static_cast<int>(dash) + 1, hi)) {
        return false;
      }
      if (hi < lo) {
        return fail(err, st.line, part_col,
                    "descending range '" + std::string(part) + "'");
      }
      for (NodeId id = lo; id <= hi; ++id) out.push_back(id);
    }
    pos = end + (end < text.size() ? 1 : 0);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Statement interpreter.

struct Parser {
  const DslContext& ctx;
  ScenarioDoc& doc;
  DslError& err;
  /// Source line of each emitted scenario event, index-aligned with
  /// doc.scenario.events; cross-event check() failures map back through
  /// this.
  std::vector<int> event_lines;
  bool saw_fault = false;

  /// Effective node-id bound for reference checks (0 = unchecked).
  int id_limit() const {
    if (doc.max_nodes > 0) return doc.max_nodes;
    return ctx.max_nodes;
  }

  int rack_size(std::int64_t explicit_size) const {
    if (explicit_size > 0) return static_cast<int>(explicit_size);
    if (doc.cluster_size > 0) return doc.cluster_size;
    if (ctx.cluster_size > 0) return ctx.cluster_size;
    const int limit = id_limit();
    if (limit > 0) {
      return std::max(
          2, static_cast<int>(std::ceil(std::sqrt(static_cast<double>(limit)))));
    }
    return 0;
  }

  void note_ids(const std::vector<NodeId>& ids) {
    for (const NodeId id : ids) {
      doc.max_node_ref = std::max(doc.max_node_ref, id);
    }
  }

  bool check_ids(const Statement& st, const KeyVal& kv,
                 const std::vector<NodeId>& ids) {
    note_ids(ids);
    const int limit = id_limit();
    if (limit <= 0) return true;
    for (const NodeId id : ids) {
      if (id >= limit) {
        return fail(err, st.line, kv.value_col,
                    "node " + std::to_string(id) + " is out of range (" +
                        "max_nodes is " + std::to_string(limit) + ")");
      }
    }
    return true;
  }

  /// Records the source line of every event the last builder calls
  /// appended.
  void mark_events(int line) {
    while (event_lines.size() < doc.scenario.events.size()) {
      event_lines.push_back(line);
    }
  }

  const KeyVal* find(const Statement& st, std::string_view key) const {
    for (const KeyVal& kv : st.kvs) {
      if (kv.key == key) return &kv;
    }
    return nullptr;
  }

  bool required(const Statement& st, std::string_view key,
                const KeyVal*& kv) {
    kv = find(st, key);
    if (kv == nullptr) {
      return fail(err, st.line, st.col,
                  st.keyword + " needs " + std::string(key) + "=");
    }
    return true;
  }

  bool known_keys(const Statement& st,
                  std::initializer_list<std::string_view> allowed) {
    for (const KeyVal& kv : st.kvs) {
      if (std::find(allowed.begin(), allowed.end(), kv.key) ==
          allowed.end()) {
        return fail(err, st.line, kv.key_col,
                    "unknown key '" + kv.key + "' for " + st.keyword);
      }
    }
    return true;
  }

  bool time_at(const Statement& st, std::string_view key, double& out) {
    const KeyVal* kv = nullptr;
    if (!required(st, key, kv)) return false;
    if (!parse_number(st, *kv, out, err)) return false;
    if (out < 0.0) {
      return fail(err, st.line, kv->value_col,
                  std::string(key) + " must be >= 0 ms");
    }
    return true;
  }

  bool window(const Statement& st, double& from, double& to) {
    if (!time_at(st, "from", from) || !time_at(st, "to", to)) return false;
    if (to <= from) {
      return fail(err, st.line, find(st, "to")->value_col,
                  "to must be greater than from");
    }
    return true;
  }

  bool probability(const Statement& st, std::string_view key, double fallback,
                   double& out) {
    const KeyVal* kv = find(st, key);
    if (kv == nullptr) {
      out = fallback;
      return true;
    }
    if (!parse_number(st, *kv, out, err)) return false;
    if (out < 0.0 || out > 1.0) {
      return fail(err, st.line, kv->value_col,
                  std::string(key) + " must be in [0, 1]");
    }
    return true;
  }

  bool node_set(const Statement& st, std::string_view key,
                std::vector<NodeId>& out) {
    const KeyVal* kv = nullptr;
    if (!required(st, key, kv)) return false;
    if (!parse_set(st, *kv, kv->value, kv->value_col, out, err)) {
      return false;
    }
    return check_ids(st, *kv, out);
  }

  bool header(const Statement& st) {
    if (st.keyword == "name") {
      if (!st.has_str) {
        return fail(err, st.line, st.col, "name needs a \"quoted\" string");
      }
      if (!known_keys(st, {})) return false;
      doc.name = st.str_arg;
      return true;
    }
    // config
    if (!known_keys(st, {"n", "max_nodes", "duration", "cluster"})) {
      return false;
    }
    std::int64_t value = 0;
    if (const KeyVal* kv = find(st, "n")) {
      if (!parse_integer(st, *kv, value, err)) return false;
      if (value < 2) {
        return fail(err, st.line, kv->value_col, "n must be >= 2");
      }
      doc.n = static_cast<int>(value);
    }
    if (const KeyVal* kv = find(st, "max_nodes")) {
      if (!parse_integer(st, *kv, value, err)) return false;
      if (value < 2 || (doc.n > 0 && value < doc.n)) {
        return fail(err, st.line, kv->value_col, "max_nodes must be >= n");
      }
      doc.max_nodes = static_cast<int>(value);
    }
    if (const KeyVal* kv = find(st, "cluster")) {
      if (!parse_integer(st, *kv, value, err)) return false;
      if (value < 2) {
        return fail(err, st.line, kv->value_col, "cluster must be >= 2");
      }
      doc.cluster_size = static_cast<int>(value);
    }
    if (const KeyVal* kv = find(st, "duration")) {
      double duration = 0.0;
      if (!parse_number(st, *kv, duration, err)) return false;
      if (duration <= 0.0) {
        return fail(err, st.line, kv->value_col, "duration must be > 0 ms");
      }
      doc.duration_ms = duration;
    }
    return true;
  }

  /// crash/recover/join/leave/slow_end: at= node=<set>.
  bool per_node(const Statement& st, Scenario& (Scenario::*builder)(double,
                                                                    NodeId)) {
    if (!known_keys(st, {"at", "node"})) return false;
    double at = 0.0;
    std::vector<NodeId> nodes;
    if (!time_at(st, "at", at) || !node_set(st, "node", nodes)) return false;
    for (const NodeId node : nodes) (doc.scenario.*builder)(at, node);
    mark_events(st.line);
    return true;
  }

  bool budget(const Statement& st) {
    if (!known_keys(st, {"max_false_per_node_min", "max_detect_p99"})) {
      return false;
    }
    if (st.kvs.empty()) {
      return fail(err, st.line, st.col,
                  "budget needs max_false_per_node_min= and/or "
                  "max_detect_p99=");
    }
    if (const KeyVal* kv = find(st, "max_false_per_node_min")) {
      double value = 0.0;
      if (!parse_number(st, *kv, value, err)) return false;
      if (value < 0.0) {
        return fail(err, st.line, kv->value_col,
                    "max_false_per_node_min must be >= 0");
      }
      doc.budget_max_false_per_node_min = value;
    }
    if (const KeyVal* kv = find(st, "max_detect_p99")) {
      double value = 0.0;
      if (!parse_number(st, *kv, value, err)) return false;
      if (value <= 0.0) {
        return fail(err, st.line, kv->value_col,
                    "max_detect_p99 must be > 0 ms");
      }
      doc.budget_max_detect_p99_ms = value;
    }
    return true;
  }

  bool statement(const Statement& st) {
    const std::string& kw = st.keyword;
    if (kw == "name" || kw == "config" || kw == "budget") {
      if (saw_fault) {
        return fail(err, st.line, st.col,
                    kw + " must precede all fault statements");
      }
      return kw == "budget" ? budget(st) : header(st);
    }
    saw_fault = true;
    if (kw == "crash") return per_node(st, &Scenario::crash);
    if (kw == "recover") return per_node(st, &Scenario::recover);
    if (kw == "join") return per_node(st, &Scenario::join);
    if (kw == "leave") return per_node(st, &Scenario::leave);
    if (kw == "slow_end") return per_node(st, &Scenario::slow_end);
    if (kw == "lie_end") return per_node(st, &Scenario::lie_end);
    if (kw == "heal") {
      if (!known_keys(st, {"at"})) return false;
      double at = 0.0;
      if (!time_at(st, "at", at)) return false;
      doc.scenario.heal(at);
      mark_events(st.line);
      return true;
    }
    if (kw == "partition") {
      if (!known_keys(st, {"at", "groups"})) return false;
      double at = 0.0;
      const KeyVal* kv = nullptr;
      if (!time_at(st, "at", at) || !required(st, "groups", kv)) {
        return false;
      }
      std::vector<std::vector<NodeId>> groups;
      std::string_view rest = kv->value;
      int col = kv->value_col;
      for (;;) {
        const std::size_t bar = rest.find('|');
        const std::string_view part = rest.substr(0, bar);
        groups.emplace_back();
        if (!parse_set(st, *kv, part, col, groups.back(), err)) return false;
        if (!check_ids(st, *kv, groups.back())) return false;
        if (bar == std::string_view::npos) break;
        rest = rest.substr(bar + 1);
        col += static_cast<int>(bar) + 1;
      }
      if (groups.size() < 2) {
        return fail(err, st.line, kv->value_col,
                    "partition needs >= 2 |-separated groups");
      }
      std::vector<NodeId> all;
      for (const auto& group : groups) {
        all.insert(all.end(), group.begin(), group.end());
      }
      std::sort(all.begin(), all.end());
      if (std::adjacent_find(all.begin(), all.end()) != all.end()) {
        return fail(err, st.line, kv->value_col,
                    "partition groups overlap (a node is in two groups)");
      }
      doc.scenario.partition(at, std::move(groups));
      mark_events(st.line);
      return true;
    }
    if (kw == "link_down" || kw == "link_up") {
      if (!known_keys(st, {"at", "from", "to"})) return false;
      double at = 0.0;
      std::vector<NodeId> from;
      std::vector<NodeId> to;
      if (!time_at(st, "at", at) || !node_set(st, "from", from) ||
          !node_set(st, "to", to)) {
        return false;
      }
      if (kw == "link_down") {
        doc.scenario.link_down(at, std::move(from), std::move(to));
      } else {
        doc.scenario.link_up(at, std::move(from), std::move(to));
      }
      mark_events(st.line);
      return true;
    }
    if (kw == "slow") {
      if (!known_keys(st, {"at", "node", "factor"})) return false;
      double at = 0.0;
      std::vector<NodeId> nodes;
      const KeyVal* kv = nullptr;
      double factor = 0.0;
      if (!time_at(st, "at", at) || !node_set(st, "node", nodes) ||
          !required(st, "factor", kv) ||
          !parse_number(st, *kv, factor, err)) {
        return false;
      }
      if (factor <= 0.0) {
        return fail(err, st.line, kv->value_col, "factor must be > 0");
      }
      for (const NodeId node : nodes) doc.scenario.slow(at, node, factor);
      mark_events(st.line);
      return true;
    }
    if (kw == "lie") {
      if (!known_keys(st, {"at", "node", "delta"})) return false;
      double at = 0.0;
      std::vector<NodeId> nodes;
      const KeyVal* kv = nullptr;
      double delta = 0.0;
      if (!time_at(st, "at", at) || !node_set(st, "node", nodes) ||
          !required(st, "delta", kv) ||
          !parse_number(st, *kv, delta, err)) {
        return false;
      }
      for (const NodeId node : nodes) doc.scenario.lie(at, node, delta);
      mark_events(st.line);
      return true;
    }
    if (kw == "storm_on") {
      if (!known_keys(st, {"at", "extra", "prob"})) return false;
      double at = 0.0;
      const KeyVal* kv = nullptr;
      double extra = 0.0;
      double prob = 1.0;
      if (!time_at(st, "at", at) || !required(st, "extra", kv) ||
          !parse_number(st, *kv, extra, err) ||
          !probability(st, "prob", 1.0, prob)) {
        return false;
      }
      if (extra < 0.0) {
        return fail(err, st.line, kv->value_col, "extra must be >= 0 ms");
      }
      doc.scenario.storm_on(at, extra, prob);
      mark_events(st.line);
      return true;
    }
    if (kw == "storm_off") {
      if (!known_keys(st, {"at"})) return false;
      double at = 0.0;
      if (!time_at(st, "at", at)) return false;
      doc.scenario.storm_off(at);
      mark_events(st.line);
      return true;
    }
    if (kw == "delay_storm") {
      if (!known_keys(st, {"from", "to", "extra", "prob"})) return false;
      double from = 0.0;
      double to = 0.0;
      const KeyVal* kv = nullptr;
      double extra = 0.0;
      double prob = 1.0;
      if (!window(st, from, to) || !required(st, "extra", kv) ||
          !parse_number(st, *kv, extra, err) ||
          !probability(st, "prob", 1.0, prob)) {
        return false;
      }
      if (extra < 0.0) {
        return fail(err, st.line, kv->value_col, "extra must be >= 0 ms");
      }
      doc.scenario.delay_storm(from, to, extra, prob);
      mark_events(st.line);
      return true;
    }
    if (kw == "flap") {
      if (!known_keys(st, {"from", "to", "period", "duty", "a", "b"})) {
        return false;
      }
      double from = 0.0;
      double to = 0.0;
      const KeyVal* kv = nullptr;
      double period = 0.0;
      double duty = 0.0;
      std::vector<NodeId> a;
      std::vector<NodeId> b;
      if (!window(st, from, to) || !required(st, "period", kv) ||
          !parse_number(st, *kv, period, err)) {
        return false;
      }
      if (period <= 0.0) {
        return fail(err, st.line, kv->value_col, "period must be > 0 ms");
      }
      if (!probability(st, "duty", 0.5, duty) || !node_set(st, "a", a) ||
          !node_set(st, "b", b)) {
        return false;
      }
      doc.scenario.flapping_link(from, to, period, duty, std::move(a),
                                 std::move(b));
      mark_events(st.line);
      return true;
    }
    if (kw == "rack") {
      if (!known_keys(st, {"at", "group", "size"})) return false;
      double at = 0.0;
      const KeyVal* kv = nullptr;
      std::int64_t group = 0;
      std::int64_t size = 0;
      if (!time_at(st, "at", at) || !required(st, "group", kv) ||
          !parse_integer(st, *kv, group, err)) {
        return false;
      }
      if (group < 0) {
        return fail(err, st.line, kv->value_col, "group must be >= 0");
      }
      if (const KeyVal* size_kv = find(st, "size")) {
        if (!parse_integer(st, *size_kv, size, err)) return false;
        if (size < 1) {
          return fail(err, st.line, size_kv->value_col, "size must be >= 1");
        }
      }
      const int rack = rack_size(size);
      if (rack <= 0) {
        return fail(err, st.line, st.col,
                    "rack needs size= (no cluster size in config/context)");
      }
      const int limit = id_limit();
      std::int64_t lo = group * rack;
      std::int64_t hi = lo + rack;
      if (limit > 0) hi = std::min<std::int64_t>(hi, limit);
      if (lo >= hi) {
        return fail(err, st.line, kv->value_col,
                    "rack group " + std::to_string(group) +
                        " is beyond max_nodes");
      }
      // One instant, many victims: the engine counts a same-time batch
      // as a single correlated disruption.
      std::vector<NodeId> victims;
      for (std::int64_t id = lo; id < hi; ++id) {
        victims.push_back(static_cast<NodeId>(id));
        doc.scenario.crash(at, static_cast<NodeId>(id));
      }
      note_ids(victims);
      mark_events(st.line);
      return true;
    }
    if (kw == "overload") {
      if (!known_keys(st, {"from", "to", "steps", "extra", "prob"})) {
        return false;
      }
      double from = 0.0;
      double to = 0.0;
      const KeyVal* steps_kv = nullptr;
      std::int64_t steps = 0;
      const KeyVal* extra_kv = nullptr;
      double extra = 0.0;
      double prob = 1.0;
      if (!window(st, from, to) || !required(st, "steps", steps_kv) ||
          !parse_integer(st, *steps_kv, steps, err) ||
          !required(st, "extra", extra_kv) ||
          !parse_number(st, *extra_kv, extra, err) ||
          !probability(st, "prob", 1.0, prob)) {
        return false;
      }
      if (steps < 1) {
        return fail(err, st.line, steps_kv->value_col, "steps must be >= 1");
      }
      if (extra < 0.0) {
        return fail(err, st.line, extra_kv->value_col,
                    "extra must be >= 0 ms");
      }
      doc.scenario.overload_ramp(from, to, static_cast<int>(steps), extra,
                                 prob);
      mark_events(st.line);
      return true;
    }
    if (kw == "churn") {
      if (!known_keys(st, {"from", "to", "join", "leave"})) return false;
      double from = 0.0;
      double to = 0.0;
      if (!window(st, from, to)) return false;
      std::vector<NodeId> joins;
      std::vector<NodeId> leaves;
      if (const KeyVal* kv = find(st, "join")) {
        if (!parse_set(st, *kv, kv->value, kv->value_col, joins, err) ||
            !check_ids(st, *kv, joins)) {
          return false;
        }
      }
      if (const KeyVal* kv = find(st, "leave")) {
        if (!parse_set(st, *kv, kv->value, kv->value_col, leaves, err) ||
            !check_ids(st, *kv, leaves)) {
          return false;
        }
      }
      if (joins.empty() && leaves.empty()) {
        return fail(err, st.line, st.col,
                    "churn needs join= and/or leave=");
      }
      // Joins on the grid, leaves offset by half a step, so the two
      // streams interleave instead of colliding.
      const double span = to - from;
      for (std::size_t i = 0; i < joins.size(); ++i) {
        doc.scenario.join(from + span * static_cast<double>(i) /
                                     static_cast<double>(joins.size()),
                          joins[i]);
      }
      for (std::size_t i = 0; i < leaves.size(); ++i) {
        doc.scenario.leave(from + span * (static_cast<double>(i) + 0.5) /
                                      static_cast<double>(leaves.size()),
                           leaves[i]);
      }
      mark_events(st.line);
      return true;
    }
    return fail(err, st.line, st.col, "unknown statement '" + kw + "'");
  }
};

}  // namespace

std::string DslError::to_string() const {
  if (line <= 0) return message;
  return "line " + std::to_string(line) + ", col " + std::to_string(col) +
         ": " + message;
}

bool parse_scenario(std::string_view text, const DslContext& ctx,
                    ScenarioDoc& out, DslError& err) {
  out = ScenarioDoc{};
  err = DslError{};
  Parser parser{ctx, out, err, {}, false};
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                      : nl - pos);
    ++line_no;
    Statement st;
    bool empty = true;
    if (!scan_line(line, line_no, st, empty, err)) return false;
    if (!empty && !parser.statement(st)) return false;
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  // Cross-statement discipline, attributed to the offending statement's
  // line (col 1: the violation is about the statement, not a token).
  if (const std::optional<ScenarioIssue> issue = out.scenario.check()) {
    const int line = issue->event_index < parser.event_lines.size()
                         ? parser.event_lines[issue->event_index]
                         : 0;
    return fail(err, line, 1, issue->message);
  }
  return true;
}

bool load_scenario_file(const std::string& path, const DslContext& ctx,
                        ScenarioDoc& out, DslError& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err = DslError{0, 0, "cannot read scenario file " + path};
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_scenario(ss.str(), ctx, out, err);
}

namespace {

void append_number(std::string& out, double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, ptr);
  (void)ec;
}

/// Canonical compact set: sorted, deduplicated, ranges collapsed.
void append_set(std::string& out, const std::vector<NodeId>& ids) {
  std::vector<NodeId> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j + 1 < sorted.size() && sorted[j + 1] == sorted[j] + 1) ++j;
    if (i > 0) out += ',';
    out += std::to_string(sorted[i]);
    if (j > i) {
      out += '-';
      out += std::to_string(sorted[j]);
    }
    i = j + 1;
  }
}

}  // namespace

std::string serialize_scenario(const ScenarioDoc& doc) {
  std::string out;
  if (!doc.name.empty()) {
    out += "name \"" + doc.name + "\"\n";
  }
  if (doc.n > 0 || doc.max_nodes > 0 || doc.duration_ms > 0.0 ||
      doc.cluster_size > 0) {
    out += "config";
    if (doc.n > 0) out += " n=" + std::to_string(doc.n);
    if (doc.max_nodes > 0) {
      out += " max_nodes=" + std::to_string(doc.max_nodes);
    }
    if (doc.duration_ms > 0.0) {
      out += " duration=";
      append_number(out, doc.duration_ms);
    }
    if (doc.cluster_size > 0) {
      out += " cluster=" + std::to_string(doc.cluster_size);
    }
    out += '\n';
  }
  if (doc.has_budget()) {
    out += "budget";
    if (doc.budget_max_false_per_node_min >= 0.0) {
      out += " max_false_per_node_min=";
      append_number(out, doc.budget_max_false_per_node_min);
    }
    if (doc.budget_max_detect_p99_ms >= 0.0) {
      out += " max_detect_p99=";
      append_number(out, doc.budget_max_detect_p99_ms);
    }
    out += '\n';
  }
  for (const FaultEvent& e : doc.scenario.events) {
    switch (e.kind) {
      case FaultKind::kCrash:
        out += "crash at=";
        break;
      case FaultKind::kRecover:
        out += "recover at=";
        break;
      case FaultKind::kJoin:
        out += "join at=";
        break;
      case FaultKind::kLeave:
        out += "leave at=";
        break;
      case FaultKind::kPartition:
        out += "partition at=";
        break;
      case FaultKind::kHeal:
        out += "heal at=";
        break;
      case FaultKind::kStormStart:
        out += "storm_on at=";
        break;
      case FaultKind::kStormEnd:
        out += "storm_off at=";
        break;
      case FaultKind::kLinkDown:
        out += "link_down at=";
        break;
      case FaultKind::kLinkUp:
        out += "link_up at=";
        break;
      case FaultKind::kSlowStart:
        out += "slow at=";
        break;
      case FaultKind::kSlowEnd:
        out += "slow_end at=";
        break;
      case FaultKind::kLieStart:
        out += "lie at=";
        break;
      case FaultKind::kLieEnd:
        out += "lie_end at=";
        break;
    }
    append_number(out, e.at_ms);
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRecover:
      case FaultKind::kJoin:
      case FaultKind::kLeave:
      case FaultKind::kSlowEnd:
      case FaultKind::kLieEnd:
        out += " node=" + std::to_string(e.node);
        break;
      case FaultKind::kSlowStart:
        out += " node=" + std::to_string(e.node) + " factor=";
        append_number(out, e.factor);
        break;
      case FaultKind::kLieStart:
        out += " node=" + std::to_string(e.node) + " delta=";
        append_number(out, e.factor);
        break;
      case FaultKind::kPartition:
        out += " groups=";
        for (std::size_t g = 0; g < e.groups.size(); ++g) {
          if (g > 0) out += '|';
          append_set(out, e.groups[g]);
        }
        break;
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
        out += " from=";
        append_set(out, e.groups[0]);
        out += " to=";
        append_set(out, e.groups[1]);
        break;
      case FaultKind::kStormStart:
        out += " extra=";
        append_number(out, e.extra_delay_ms);
        out += " prob=";
        append_number(out, e.delay_prob);
        break;
      case FaultKind::kHeal:
      case FaultKind::kStormEnd:
        break;
    }
    out += '\n';
  }
  return out;
}

}  // namespace rfd::cluster
