// Pluggable heartbeat dissemination topologies for the cluster engine.
//
// A topology answers two questions each heartbeat round, per node:
//   1. targets(): which peers receive a message from this node now;
//   2. digest(): which peers' counters get piggybacked on that message
//      (bounded by digest_size - piggyback bandwidth is the budget the
//      architectures below spend differently).
//
// The four architectures span the message-complexity spectrum the bench
// (E11) measures:
//
//   AllToAll      - every node heartbeats every known peer directly.
//                   O(n^2) messages per round, no piggybacking needed,
//                   fastest detection; the naive baseline.
//   Ring(k)       - each node heartbeats its k ring successors and relies
//                   on digest rotation to circulate far counters. O(n*k)
//                   messages; detection latency grows with n/k (the
//                   pipeline of forwarded counters drains slowly), which
//                   the bench makes visible.
//   Gossip(f)     - each node picks f random live-believed peers per
//                   round (SWIM/van-Renesse style). O(n*f) messages with
//                   O(log n) dissemination rounds; per-node load is flat
//                   in n - the sublinear architecture.
//   Hierarchical  - nodes grouped into clusters of ~sqrt(n) (VCube-ish
//                   clusters of clusters, flattened to two levels):
//                   all-to-all inside a cluster, and the acting cluster
//                   leader (lowest member it believes alive) exchanges
//                   cluster summaries with the other leaders. Members
//                   piggyback foreign counters to each other, so every
//                   node still converges on the full crashed set.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "common/rng.hpp"

namespace rfd::cluster {

enum class TopologyKind { kAllToAll, kRing, kGossip, kHierarchical };

struct TopologyParams {
  TopologyKind kind = TopologyKind::kGossip;
  int ring_successors = 3;  // Ring(k)
  int gossip_fanout = 3;    // Gossip(f)
  /// Per-round probability that a gossiping node additionally contacts
  /// one peer it believes dead. Real gossip fabrics do this so healed
  /// partitions re-merge (a suspected-but-alive peer can only be
  /// rediscovered by talking to it); the cost is a trickle of messages
  /// to genuinely dead nodes.
  double gossip_resurrect_prob = 0.25;
  /// Max piggybacked (id, counter) entries per message, beyond the
  /// sender's own entry.
  int digest_size = 32;
  /// Hierarchical cluster size; 0 = ceil(sqrt(max_nodes)).
  int cluster_size = 0;
};

class Topology {
 public:
  virtual ~Topology() = default;

  virtual std::string name() const = 0;

  /// Fills `out` with the peers `node` heartbeats this round.
  virtual void targets(ClusterNode& node, Rng& rng,
                       std::vector<NodeId>& out) = 0;

  /// Fills `out` with peer ids whose counters ride along on the message
  /// from `node` to `target` (the sender's own entry is implicit).
  virtual void digest(ClusterNode& node, NodeId target,
                      std::vector<NodeId>& out) = 0;

  /// Attaches the trace sink (and the sim clock that timestamps its
  /// records). Topologies with internal role state - the hierarchical
  /// fabric's acting leaders - emit "leader" records on role flips;
  /// stateless topologies ignore it.
  void set_trace(obs::RecordSink* trace, const rt::EventQueue* clock) {
    trace_ = trace;
    clock_ = clock;
  }

 protected:
  obs::RecordSink* trace_ = nullptr;
  const rt::EventQueue* clock_ = nullptr;
};

std::unique_ptr<Topology> make_topology(const TopologyParams& params,
                                        int max_nodes);
std::string topology_kind_name(TopologyKind kind);

}  // namespace rfd::cluster
