#include "algo/trb/trb.hpp"

#include "common/assert.hpp"

namespace rfd::algo {

TrbAutomaton::TrbAutomaton(ProcessId n, ProcessId sender, Value value,
                           InstanceId instance)
    : n_(n), sender_(sender), value_(value), instance_(instance) {
  RFD_REQUIRE(n >= 2);
  RFD_REQUIRE(sender >= 0 && sender < n);
  RFD_REQUIRE(value != kNoValue && value != kNilValue);
}

sim::SubInstanceContext TrbAutomaton::consensus_context(sim::Context& ctx) {
  auto on_decide = [this, &ctx](Value v) {
    if (delivered_) return;
    delivered_ = true;
    delivery_ = v;
    ctx.deliver(instance_, v);
  };
  // record=false: the embedded consensus decision surfaces as a TRB
  // delivery, not as a consensus decision of its own.
  return sim::SubInstanceContext(ctx, kConsensusTag, on_decide, nullptr,
                                 /*record=*/false);
}

void TrbAutomaton::propose(sim::Context& ctx, Value v) {
  if (consensus_ != nullptr) return;
  proposal_ = v;
  consensus_ = std::make_unique<CtStrongConsensus>(n_, v);
  {
    sim::SubInstanceContext sub = consensus_context(ctx);
    consensus_->on_start(sub);
  }
  // Replay consensus traffic that arrived before we had a proposal.
  for (const auto& msg : buffered_) {
    route_to_consensus(ctx, msg.src, msg.payload, msg.tags, msg.id);
  }
  buffered_.clear();
}

void TrbAutomaton::route_to_consensus(sim::Context& ctx, ProcessId src,
                                      const Bytes& payload,
                                      const ProcessSet& tags, MessageId id) {
  sim::SubInstanceContext sub = consensus_context(ctx);
  const sim::Incoming incoming{src, payload, tags, id};
  consensus_->on_step(sub, &incoming);
}

void TrbAutomaton::on_start(sim::Context& ctx) {
  if (ctx.self() == sender_) {
    Writer w;
    w.value(value_);
    ctx.broadcast(sim::frame(kValueTag, std::move(w).take()));
    propose(ctx, value_);
  } else if (ctx.fd().suspects.contains(sender_)) {
    propose(ctx, kNilValue);
  }
}

void TrbAutomaton::on_step(sim::Context& ctx, const sim::Incoming* m) {
  if (m != nullptr) {
    auto [tag, inner] = sim::unframe(m->payload);
    if (tag == kValueTag) {
      if (m->src == sender_ && consensus_ == nullptr) {
        Reader r(inner);
        propose(ctx, r.value());
      }
    } else if (tag == kConsensusTag) {
      if (consensus_ == nullptr) {
        buffered_.push_back({m->src, inner, m->alive_tags, m->id});
      } else {
        route_to_consensus(ctx, m->src, inner, m->alive_tags, m->id);
      }
    }
  }
  // Waiting processes re-check the detector on every step: a suspicion of
  // the sender turns into a nil proposal.
  if (consensus_ == nullptr && ctx.fd().suspects.contains(sender_)) {
    propose(ctx, kNilValue);
  }
  // Give the embedded consensus a chance to advance on lambda steps too
  // (its waits depend on the current suspect set).
  if (consensus_ != nullptr && m == nullptr) {
    sim::SubInstanceContext sub = consensus_context(ctx);
    consensus_->on_step(sub, nullptr);
  }
}

}  // namespace rfd::algo
