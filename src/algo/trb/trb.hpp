// Terminating reliable broadcast from a Perfect failure detector
// (Section 5, sufficient condition) - the crash-stop rephrasing of the
// Byzantine Generals problem.
//
// For instance (sender, *): the sender broadcasts its value; every process
// waits until it either receives the sender's value (then proposes it) or
// suspects the sender (then proposes nil), and feeds the proposal to an
// embedded uniform consensus (the S-based algorithm, which P implements).
// The consensus decision is delivered.
//
// With a realistic P detector a suspicion implies the sender really
// crashed, so nil is delivered only for genuinely faulty senders
// (integrity + validity); consensus supplies agreement and termination
// under unbounded crashes. Conversely the emulation half of Proposition
// 5.1 (reduction/trb_to_p) reads nil deliveries back as Perfect-grade
// suspicions.
#pragma once

#include <memory>
#include <vector>

#include "algo/consensus/ct_strong.hpp"
#include "sim/automaton.hpp"
#include "sim/composition.hpp"

namespace rfd::algo {

class TrbAutomaton final : public sim::Automaton {
 public:
  /// One broadcast instance. `sender` broadcasts `value`; deliveries are
  /// recorded under `instance`.
  TrbAutomaton(ProcessId n, ProcessId sender, Value value,
               InstanceId instance = 0);

  void on_start(sim::Context& ctx) override;
  void on_step(sim::Context& ctx, const sim::Incoming* m) override;

  bool delivered() const { return delivered_; }
  Value delivery() const { return delivery_; }
  /// What this process proposed to the embedded consensus (kNoValue until
  /// it proposed).
  Value proposal() const { return proposal_; }

 private:
  static constexpr InstanceId kValueTag = 0;
  static constexpr InstanceId kConsensusTag = 1;

  struct BufferedMsg {
    ProcessId src;
    Bytes payload;
    ProcessSet tags;
    MessageId id;
  };

  void propose(sim::Context& ctx, Value v);
  void route_to_consensus(sim::Context& ctx, ProcessId src,
                          const Bytes& payload, const ProcessSet& tags,
                          MessageId id);
  sim::SubInstanceContext consensus_context(sim::Context& ctx);

  ProcessId n_;
  ProcessId sender_;
  Value value_;
  InstanceId instance_;

  Value proposal_ = kNoValue;
  bool delivered_ = false;
  Value delivery_ = kNoValue;

  std::unique_ptr<CtStrongConsensus> consensus_;
  std::vector<BufferedMsg> buffered_;  // consensus traffic before proposing
};

}  // namespace rfd::algo
