#include "algo/broadcast/atomic_broadcast.hpp"

#include "common/assert.hpp"

namespace rfd::algo {

AtomicBroadcast::AtomicBroadcast(ProcessId n,
                                 std::vector<ScriptedBroadcast> script,
                                 InstanceId instance)
    : n_(n), script_(std::move(script)), instance_(instance) {
  RFD_REQUIRE(n >= 2);
}

sim::SubInstanceContext AtomicBroadcast::consensus_context(sim::Context& ctx) {
  // The hook only flags the decision; the instance turnover happens after
  // the consensus call returns (destroying an automaton from inside its
  // own on_step would be undefined behaviour).
  auto on_decide = [this](Value v) {
    decision_pending_ = true;
    decision_value_ = v;
  };
  return sim::SubInstanceContext(ctx, kFloodTag + 1 + next_k_, on_decide,
                                 nullptr, /*record=*/false);
}

void AtomicBroadcast::run_script(sim::Context& ctx) {
  for (const auto& entry : script_) {
    if (entry.at_local_step == local_steps_) {
      flood(ctx, ctx.self(), next_seq_++, entry.value);
    }
  }
}

void AtomicBroadcast::flood(sim::Context& ctx, ProcessId origin,
                            std::int64_t seq, Value v) {
  if (!seen_.emplace(origin, seq).second) return;
  Writer w;
  w.process(origin);
  w.varint(seq);
  w.value(v);
  ctx.broadcast(sim::frame(kFloodTag, std::move(w).take()));
  if (done_.count(v) == 0) {
    pending_.insert(v);
  }
}

void AtomicBroadcast::maybe_start_consensus(sim::Context& ctx) {
  if (consensus_ != nullptr || pending_.empty()) return;
  const Value proposal = *pending_.begin();
  consensus_ = std::make_unique<CtStrongConsensus>(n_, proposal);
  {
    sim::SubInstanceContext sub = consensus_context(ctx);
    consensus_->on_start(sub);
  }
  // Replay buffered traffic for this instance.
  const auto it = buffered_.find(next_k_);
  if (it != buffered_.end()) {
    const std::vector<BufferedMsg> msgs = std::move(it->second);
    buffered_.erase(it);
    for (const auto& msg : msgs) {
      if (decision_pending_) break;  // instance already finished
      route_to_consensus(ctx, msg);
    }
  }
}

void AtomicBroadcast::route_to_consensus(sim::Context& ctx,
                                         const BufferedMsg& msg) {
  sim::SubInstanceContext sub = consensus_context(ctx);
  const sim::Incoming incoming{msg.src, msg.payload, msg.tags, msg.id};
  consensus_->on_step(sub, &incoming);
}

void AtomicBroadcast::on_consensus_decision(sim::Context& ctx, Value v) {
  if (done_.insert(v).second) {
    delivered_.push_back(v);
    ctx.deliver(instance_, v);
  }
  pending_.erase(v);
  ++next_k_;
  consensus_.reset();
  // Stale buffers for finished instances are dead weight.
  for (auto it = buffered_.begin(); it != buffered_.end();) {
    it = it->first < next_k_ ? buffered_.erase(it) : ++it;
  }
}

void AtomicBroadcast::on_start(sim::Context& ctx) {
  local_steps_ = 0;
  run_script(ctx);
  maybe_start_consensus(ctx);
}

void AtomicBroadcast::on_step(sim::Context& ctx, const sim::Incoming* m) {
  ++local_steps_;
  run_script(ctx);

  if (m != nullptr) {
    auto [tag, inner] = sim::unframe(m->payload);
    if (tag == kFloodTag) {
      Reader r(inner);
      const ProcessId origin = r.process();
      const std::int64_t seq = r.varint();
      const Value v = r.value();
      flood(ctx, origin, seq, v);
    } else {
      const InstanceId k = tag - kFloodTag - 1;
      if (k == next_k_ && consensus_ != nullptr) {
        route_to_consensus(ctx, {m->src, inner, m->alive_tags, m->id});
      } else if (k >= next_k_) {
        buffered_[k].push_back({m->src, inner, m->alive_tags, m->id});
      }
      // k < next_k_: the instance already decided; drop.
    }
  } else if (consensus_ != nullptr) {
    // Lambda step: the embedded consensus re-checks its suspect-set waits.
    sim::SubInstanceContext sub = consensus_context(ctx);
    consensus_->on_step(sub, nullptr);
  }

  // Settle any decisions produced above; each turnover may unblock the
  // next instance, whose replay may decide again.
  while (decision_pending_) {
    decision_pending_ = false;
    on_consensus_decision(ctx, decision_value_);
    maybe_start_consensus(ctx);
  }
  maybe_start_consensus(ctx);
}

}  // namespace rfd::algo
