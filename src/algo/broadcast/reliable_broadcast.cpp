#include "algo/broadcast/reliable_broadcast.hpp"

#include "common/assert.hpp"

namespace rfd::algo {

ReliableBroadcast::ReliableBroadcast(ProcessId n,
                                     std::vector<ScriptedBroadcast> script,
                                     InstanceId instance)
    : n_(n), script_(std::move(script)), instance_(instance) {
  RFD_REQUIRE(n >= 2);
}

void ReliableBroadcast::run_script(sim::Context& ctx) {
  for (const auto& entry : script_) {
    if (entry.at_local_step == local_steps_) {
      handle(ctx, ctx.self(), next_seq_++, entry.value);
    }
  }
}

void ReliableBroadcast::handle(sim::Context& ctx, ProcessId origin,
                               std::int64_t seq, Value v) {
  if (!seen_.emplace(origin, seq).second) return;  // already diffused
  Writer w;
  w.process(origin);
  w.varint(seq);
  w.value(v);
  ctx.broadcast(std::move(w).take());
  delivered_.push_back(v);
  ctx.deliver(instance_, v);
}

void ReliableBroadcast::on_start(sim::Context& ctx) {
  local_steps_ = 0;
  run_script(ctx);
}

void ReliableBroadcast::on_step(sim::Context& ctx, const sim::Incoming* m) {
  ++local_steps_;
  run_script(ctx);
  if (m != nullptr) {
    Reader r(m->payload);
    const ProcessId origin = r.process();
    const std::int64_t seq = r.varint();
    const Value v = r.value();
    handle(ctx, origin, seq, v);
  }
}

}  // namespace rfd::algo
