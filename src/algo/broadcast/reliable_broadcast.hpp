// Reliable broadcast by flooding [after Hadzilacos & Toueg 94].
//
// The basic diffusion substrate: on the first receipt of a message the
// process relays it to everyone and delivers it. Guarantees: validity (a
// correct broadcaster's message is delivered by every correct process),
// agreement among correct processes, integrity (no duplication, no
// invention). It is deliberately NOT uniform - a process may deliver and
// crash before relaying - which the atomic broadcast layer compensates for
// by ordering deliveries through uniform consensus.
//
// Applications are modeled as scripted broadcasts: (local step index,
// value) pairs injected deterministically as the process takes steps.
#pragma once

#include <set>
#include <vector>

#include "sim/automaton.hpp"

namespace rfd::algo {

struct ScriptedBroadcast {
  std::int64_t at_local_step;  // 0 = during on_start
  Value value;
};

class ReliableBroadcast final : public sim::Automaton {
 public:
  ReliableBroadcast(ProcessId n, std::vector<ScriptedBroadcast> script,
                    InstanceId instance = 0);

  void on_start(sim::Context& ctx) override;
  void on_step(sim::Context& ctx, const sim::Incoming* m) override;

  /// Values delivered so far, in delivery order.
  const std::vector<Value>& delivered() const { return delivered_; }

 private:
  void run_script(sim::Context& ctx);
  void handle(sim::Context& ctx, ProcessId origin, std::int64_t seq, Value v);

  ProcessId n_;
  std::vector<ScriptedBroadcast> script_;
  InstanceId instance_;

  std::int64_t local_steps_ = 0;
  std::int64_t next_seq_ = 0;
  std::set<std::pair<ProcessId, std::int64_t>> seen_;
  std::vector<Value> delivered_;
};

}  // namespace rfd::algo
