// Atomic broadcast by reduction to consensus [CT96].
//
// The paper (Section 1.1) treats atomic broadcast as equivalent to
// consensus in systems with reliable channels; this is the constructive
// half of that equivalence, and the reason Proposition 4.3 transfers to
// atomic broadcast verbatim.
//
// Structure: messages are diffused with the reliable-broadcast flooder;
// delivery order is fixed by a sequence of uniform consensus instances
// (the S-based algorithm, so the construction inherits "works with P under
// unbounded crashes"). Instance k agrees on the k-th message to deliver:
// every process proposes the smallest undelivered pending value, and the
// decision is delivered by everyone in instance order, making the total
// order uniform.
//
// A process with nothing pending does not join instance k yet - the
// consensus just waits for it; flooding guarantees it catches up. The
// trade-off is simplicity over batching throughput, which is irrelevant
// for the experiments but keeps consensus values scalar.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "algo/broadcast/reliable_broadcast.hpp"
#include "algo/consensus/ct_strong.hpp"
#include "sim/automaton.hpp"
#include "sim/composition.hpp"

namespace rfd::algo {

class AtomicBroadcast final : public sim::Automaton {
 public:
  AtomicBroadcast(ProcessId n, std::vector<ScriptedBroadcast> script,
                  InstanceId instance = 0);

  void on_start(sim::Context& ctx) override;
  void on_step(sim::Context& ctx, const sim::Incoming* m) override;

  const std::vector<Value>& delivered() const { return delivered_; }
  InstanceId consensus_rounds() const { return next_k_; }

 private:
  static constexpr InstanceId kFloodTag = 0;
  // Consensus instance k uses tag kFloodTag + 1 + k.

  struct BufferedMsg {
    ProcessId src;
    Bytes payload;
    ProcessSet tags;
    MessageId id;
  };

  void run_script(sim::Context& ctx);
  void flood(sim::Context& ctx, ProcessId origin, std::int64_t seq, Value v);
  void maybe_start_consensus(sim::Context& ctx);
  void on_consensus_decision(sim::Context& ctx, Value v);
  sim::SubInstanceContext consensus_context(sim::Context& ctx);
  void route_to_consensus(sim::Context& ctx, const BufferedMsg& msg);

  ProcessId n_;
  std::vector<ScriptedBroadcast> script_;
  InstanceId instance_;

  std::int64_t local_steps_ = 0;
  std::int64_t next_seq_ = 0;
  std::set<std::pair<ProcessId, std::int64_t>> seen_;

  std::set<Value> pending_;    // flood-delivered, not yet ordered
  std::set<Value> done_;       // already delivered in order
  std::vector<Value> delivered_;

  InstanceId next_k_ = 0;      // next consensus instance to run
  std::unique_ptr<CtStrongConsensus> consensus_;  // instance next_k_
  bool decision_pending_ = false;
  Value decision_value_ = kNoValue;
  std::map<InstanceId, std::vector<BufferedMsg>> buffered_;
};

}  // namespace rfd::algo
