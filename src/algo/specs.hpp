// Problem specifications as trace predicates.
//
// Each agreement problem in the paper is a set of properties over runs;
// here they are executable checks over recorded traces. "Eventually"
// clauses are evaluated on the bounded window, so callers must run the
// simulation long enough for the algorithm under test to quiesce - the
// experiment harness picks horizons from the algorithm's own bounds.
#pragma once

#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace rfd::algo {

/// Consensus (Section 4): termination, agreement, validity - plus the
/// distinction the paper builds Section 6.2 on: *uniform* agreement (no
/// two processes decide differently, full stop) versus correct-restricted
/// agreement (only correct processes must agree).
struct ConsensusCheck {
  bool termination = true;          // every correct process decides
  bool uniform_agreement = true;    // no two decisions differ
  bool agreement = true;            // no two decisions by correct processes differ
  bool validity = true;             // decisions are proposed values
  bool integrity = true;            // nobody decides twice
  std::string detail;

  bool ok_uniform() const {
    return termination && uniform_agreement && validity && integrity;
  }
  bool ok_correct_restricted() const {
    return termination && agreement && validity && integrity;
  }
  std::string to_string() const;
};

ConsensusCheck check_consensus(const sim::Trace& trace, InstanceId instance,
                               const std::vector<Value>& proposals);

/// Terminating reliable broadcast (Section 5), instance (sender, *).
///   termination - every correct process delivers exactly one value;
///   agreement   - no two processes deliver different values;
///   validity    - a correct sender's value is delivered (never nil);
///   integrity   - a non-nil delivery is the sender's actual value.
struct TrbCheck {
  bool termination = true;
  bool agreement = true;
  bool validity = true;
  bool integrity = true;
  std::string detail;

  bool ok() const { return termination && agreement && validity && integrity; }
  std::string to_string() const;
};

TrbCheck check_trb(const sim::Trace& trace, InstanceId instance,
                   ProcessId sender, Value broadcast_value);

/// Atomic broadcast [CT96]: validity (correct broadcasters' messages are
/// delivered by all correct processes), agreement (correct processes
/// deliver the same messages), uniform total order (any two delivery
/// sequences are prefix-compatible), integrity (no duplicates or
/// inventions). Deliveries are read from the trace's instance
/// `abcast_instance`.
struct AbcastCheck {
  bool validity = true;
  bool agreement = true;
  bool total_order = true;
  bool integrity = true;
  std::string detail;

  bool ok() const { return validity && agreement && total_order && integrity; }
  std::string to_string() const;
};

AbcastCheck check_abcast(const sim::Trace& trace, InstanceId abcast_instance,
                         const std::vector<Value>& broadcast_by_correct,
                         const std::vector<Value>& broadcast_all);

}  // namespace rfd::algo
