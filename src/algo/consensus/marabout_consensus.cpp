#include "algo/consensus/marabout_consensus.hpp"

#include "common/assert.hpp"

namespace rfd::algo {

MaraboutConsensus::MaraboutConsensus(ProcessId n, Value proposal,
                                     InstanceId instance)
    : n_(n), proposal_(proposal), instance_(instance) {
  RFD_REQUIRE(n >= 2);
  RFD_REQUIRE(proposal != kNoValue);
}

void MaraboutConsensus::on_start(sim::Context& ctx) {
  // Select the smallest non-suspected process. With the Marabout this is
  // the smallest correct process, identically at every process and time.
  const ProcessSet& suspects = ctx.fd().suspects;
  leader_ = -1;
  for (ProcessId q = 0; q < n_; ++q) {
    if (!suspects.contains(q)) {
      leader_ = q;
      break;
    }
  }
  if (leader_ == -1) {
    // Every process is faulty; termination is vacuous, nothing to do.
    return;
  }
  if (leader_ == ctx.self()) {
    decided_ = true;
    decision_ = proposal_;
    ctx.decide(instance_, proposal_);
    Writer w;
    w.value(proposal_);
    ctx.broadcast(std::move(w).take());
  }
}

void MaraboutConsensus::on_step(sim::Context& ctx, const sim::Incoming* m) {
  if (decided_ || m == nullptr || leader_ == -1) return;
  if (m->src != leader_) return;
  Reader r(m->payload);
  decided_ = true;
  decision_ = r.value();
  ctx.decide(instance_, decision_);
}

}  // namespace rfd::algo
