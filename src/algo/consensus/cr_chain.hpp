// Correct-restricted (non-uniform) consensus from P< (Section 6.2, after
// the atomic-commitment algorithm of [Guerraoui 95]).
//
// P< offers strong accuracy plus *partial* completeness: p_j only ever
// learns about crashes of processes with smaller ids. The chain algorithm
// runs n id-ordered rounds. In round i, p_i broadcasts its current
// estimate and moves on; every p_j with j > i waits until it receives
// p_i's estimate (adopting it) or suspects p_i (P< can: j > i); processes
// with j < i skip the round - they could never reliably suspect p_i.
// After round n-1 everyone decides its estimate.
//
// Let c be the smallest correct process. Nobody ever suspects c (strong
// accuracy), so in round c every process with a larger id adopts c's
// estimate, and all later coordinators re-broadcast that same estimate:
// correct processes agree. But p_0 decides its own value after ZERO
// message exchanges - if it crashes right after deciding, the survivors
// may decide differently. Uniform agreement fails, correct-restricted
// agreement holds, and the decision of p_0 is spectacularly non-total:
// Lemma 4.1 does not extend to non-uniform consensus, which is exactly
// how the paper separates the two problems.
#pragma once

#include <map>

#include "sim/automaton.hpp"

namespace rfd::algo {

class CrChainConsensus final : public sim::Automaton {
 public:
  CrChainConsensus(ProcessId n, Value proposal, InstanceId instance = 0);

  void on_start(sim::Context& ctx) override;
  void on_step(sim::Context& ctx, const sim::Incoming* m) override;

  bool decided() const { return decided_; }
  Value decision() const { return decision_; }
  int round() const { return round_; }

 private:
  void try_advance(sim::Context& ctx);

  ProcessId n_;
  Value proposal_;
  InstanceId instance_;

  Value est_ = kNoValue;
  int round_ = 0;
  bool decided_ = false;
  Value decision_ = kNoValue;
  std::map<int, Value> round_values_;  // estimate received from p_round
};

}  // namespace rfd::algo
