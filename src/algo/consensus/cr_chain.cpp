#include "algo/consensus/cr_chain.hpp"

#include "common/assert.hpp"

namespace rfd::algo {

CrChainConsensus::CrChainConsensus(ProcessId n, Value proposal,
                                   InstanceId instance)
    : n_(n), proposal_(proposal), instance_(instance) {
  RFD_REQUIRE(n >= 2);
  RFD_REQUIRE(proposal != kNoValue);
}

void CrChainConsensus::on_start(sim::Context& ctx) {
  est_ = proposal_;
  round_ = 0;
  try_advance(ctx);
}

void CrChainConsensus::on_step(sim::Context& ctx, const sim::Incoming* m) {
  if (m != nullptr) {
    Reader r(m->payload);
    const int round = static_cast<int>(r.varint());
    const Value est = r.value();
    // Round-i estimates only ever come from p_i.
    if (m->src == static_cast<ProcessId>(round)) {
      round_values_.emplace(round, est);
    }
  }
  try_advance(ctx);
}

void CrChainConsensus::try_advance(sim::Context& ctx) {
  while (!decided_) {
    if (round_ >= static_cast<int>(n_)) {
      decided_ = true;
      decision_ = est_;
      ctx.decide(instance_, est_);
      return;
    }
    const auto coordinator = static_cast<ProcessId>(round_);
    if (ctx.self() == coordinator) {
      Writer w;
      w.varint(round_);
      w.value(est_);
      ctx.broadcast(std::move(w).take());
      ++round_;
      continue;
    }
    if (ctx.self() > coordinator) {
      const auto it = round_values_.find(round_);
      if (it != round_values_.end()) {
        est_ = it->second;
        ++round_;
        continue;
      }
      if (ctx.fd().suspects.contains(coordinator)) {
        ++round_;
        continue;
      }
      return;  // wait for the estimate or the suspicion
    }
    // self < coordinator: P< gives no completeness about larger ids;
    // waiting could block forever, so the round is skipped.
    ++round_;
  }
}

}  // namespace rfd::algo
