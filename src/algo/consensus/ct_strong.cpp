#include "algo/consensus/ct_strong.hpp"

#include "common/assert.hpp"

namespace rfd::algo {

CtStrongConsensus::CtStrongConsensus(ProcessId n, Value proposal,
                                     InstanceId instance)
    : n_(n),
      proposal_(proposal),
      instance_(instance),
      v_(static_cast<std::size_t>(n), kNoValue) {
  RFD_REQUIRE(n >= 2);
  RFD_REQUIRE(proposal != kNoValue);
}

Bytes CtStrongConsensus::encode_phase1(int round, const Learned& delta) const {
  Writer w;
  w.u8(kPhase1);
  w.varint(round);
  w.varint(static_cast<std::int64_t>(delta.size()));
  for (const auto& [pid, value] : delta) {
    w.process(pid);
    w.value(value);
  }
  return std::move(w).take();
}

Bytes CtStrongConsensus::encode_phase2() const {
  Writer w;
  w.u8(kPhase2);
  w.values(v_);
  return std::move(w).take();
}

void CtStrongConsensus::on_start(sim::Context& ctx) {
  v_[static_cast<std::size_t>(ctx.self())] = proposal_;
  round_ = 1;
  const Learned initial{{ctx.self(), proposal_}};
  ctx.broadcast(encode_phase1(1, initial));
  try_advance(ctx);
}

void CtStrongConsensus::on_step(sim::Context& ctx, const sim::Incoming* m) {
  if (m != nullptr) {
    Reader r(m->payload);
    const auto type = r.u8();
    if (type == kPhase1) {
      const int round = static_cast<int>(r.varint());
      const auto count = r.varint();
      Learned delta;
      delta.reserve(static_cast<std::size_t>(count));
      for (std::int64_t i = 0; i < count; ++i) {
        const ProcessId pid = r.process();
        const Value value = r.value();
        delta.emplace_back(pid, value);
      }
      ph1_[round].emplace(m->src, std::move(delta));
    } else if (type == kPhase2) {
      ph2_.emplace(m->src, r.values());
    } else {
      RFD_UNREACHABLE("unknown ct_strong message type");
    }
  }
  try_advance(ctx);
}

void CtStrongConsensus::try_advance(sim::Context& ctx) {
  if (decided_ || halted_) return;
  const ProcessSet& suspects = ctx.fd().suspects;
  bool progressed = true;
  while (progressed && !decided_) {
    progressed = false;
    if (!in_phase2_) {
      // Wait until, for every other q, we have q's round message or q is
      // suspected right now.
      auto& round_msgs = ph1_[round_];
      bool ready = true;
      for (ProcessId q = 0; q < n_ && ready; ++q) {
        if (q == ctx.self()) continue;
        if (round_msgs.count(q) == 0 && !suspects.contains(q)) ready = false;
      }
      if (!ready) return;

      // Merge everything learned this round; collect what is new to us.
      Learned newly;
      for (const auto& [sender, delta] : round_msgs) {
        for (const auto& [pid, value] : delta) {
          auto& slot = v_[static_cast<std::size_t>(pid)];
          if (slot == kNoValue) {
            slot = value;
            newly.emplace_back(pid, value);
          }
        }
      }
      ++round_;
      if (round_ <= static_cast<int>(n_) - 1) {
        ctx.broadcast(encode_phase1(round_, newly));
      } else {
        in_phase2_ = true;
        ph2_.emplace(ctx.self(), v_);
        ctx.broadcast(encode_phase2());
      }
      progressed = true;
    } else {
      bool ready = true;
      for (ProcessId q = 0; q < n_ && ready; ++q) {
        if (q == ctx.self()) continue;
        if (ph2_.count(q) == 0 && !suspects.contains(q)) ready = false;
      }
      if (!ready) return;

      // V := intersection of all received vectors (own included): keep a
      // component only if every received vector knows it.
      for (ProcessId i = 0; i < n_; ++i) {
        bool everywhere = true;
        for (const auto& [sender, vec] : ph2_) {
          if (vec[static_cast<std::size_t>(i)] == kNoValue) {
            everywhere = false;
            break;
          }
        }
        if (!everywhere) {
          v_[static_cast<std::size_t>(i)] = kNoValue;
        }
      }

      // Phase 3: decide the first non-bottom component. Weak accuracy
      // guarantees the intersection is non-empty (it contains V_c); with a
      // detector outside S the intersection can drain, in which case the
      // automaton halts undecided - a liveness failure the spec checkers
      // surface, rather than an abort.
      for (ProcessId i = 0; i < n_; ++i) {
        if (v_[static_cast<std::size_t>(i)] != kNoValue) {
          decided_ = true;
          decision_ = v_[static_cast<std::size_t>(i)];
          ctx.decide(instance_, decision_);
          break;
        }
      }
      if (!decided_) {
        halted_ = true;
        return;
      }
      progressed = true;
    }
  }
}

}  // namespace rfd::algo
