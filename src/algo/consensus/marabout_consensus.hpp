// Consensus from the Marabout detector (Section 6.1).
//
// The Marabout constantly outputs the run's faulty set, so every process
// deterministically elects the same leader - the smallest process that is
// not suspected, i.e. the smallest *correct* process - at its very first
// step. The leader decides its own value and broadcasts it; everyone else
// decides the leader's value on receipt. Because the leader is correct by
// construction (future knowledge!), the algorithm terminates under any
// number of crashes and never needs a single failure-information update.
//
// This is the paper's "obvious algorithm A" witnessing that the weakest-
// failure-detector results of Sections 4 and 5 genuinely depend on
// realism: M solves consensus with unbounded crashes yet provides nothing
// like P's information about the past.
#pragma once

#include "sim/automaton.hpp"

namespace rfd::algo {

class MaraboutConsensus final : public sim::Automaton {
 public:
  MaraboutConsensus(ProcessId n, Value proposal, InstanceId instance = 0);

  void on_start(sim::Context& ctx) override;
  void on_step(sim::Context& ctx, const sim::Incoming* m) override;

  bool decided() const { return decided_; }
  Value decision() const { return decision_; }
  ProcessId leader() const { return leader_; }

 private:
  ProcessId n_;
  Value proposal_;
  InstanceId instance_;

  ProcessId leader_ = -1;
  bool decided_ = false;
  Value decision_ = kNoValue;
};

}  // namespace rfd::algo
