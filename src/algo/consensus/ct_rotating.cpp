#include "algo/consensus/ct_rotating.hpp"

#include "common/assert.hpp"

namespace rfd::algo {

CtRotatingConsensus::CtRotatingConsensus(ProcessId n, Value proposal,
                                         InstanceId instance)
    : n_(n), proposal_(proposal), instance_(instance) {
  RFD_REQUIRE(n >= 2);
  RFD_REQUIRE(proposal != kNoValue);
}

void CtRotatingConsensus::record_estimate(int round, Value est, Tick ts) {
  Tally& tally = tallies_[round];
  ++tally.estimates;
  if (ts > tally.best_ts) {
    tally.best_ts = ts;
    tally.best_est = est;
  }
}

void CtRotatingConsensus::begin_round(sim::Context& ctx) {
  replied_this_round_ = false;
  const ProcessId coord = coordinator(round_);
  if (coord == ctx.self()) {
    record_estimate(round_, est_, ts_);
  } else {
    Writer w;
    w.u8(kEstimate);
    w.varint(round_);
    w.value(est_);
    w.tick(ts_);
    ctx.send(coord, std::move(w).take());
  }
}

void CtRotatingConsensus::decide_and_flood(sim::Context& ctx, Value v) {
  if (decided_) return;
  decided_ = true;
  decision_ = v;
  ctx.decide(instance_, v);
  Writer w;
  w.u8(kDecide);
  w.value(v);
  ctx.broadcast(std::move(w).take());
}

void CtRotatingConsensus::on_start(sim::Context& ctx) {
  est_ = proposal_;
  ts_ = 0;
  round_ = 0;
  begin_round(ctx);
  try_advance(ctx);
}

void CtRotatingConsensus::on_step(sim::Context& ctx, const sim::Incoming* m) {
  if (m != nullptr) {
    Reader r(m->payload);
    const auto type = r.u8();
    switch (type) {
      case kEstimate: {
        const int round = static_cast<int>(r.varint());
        const Value est = r.value();
        const Tick ts = r.tick();
        record_estimate(round, est, ts);
        break;
      }
      case kPropose: {
        const int round = static_cast<int>(r.varint());
        proposals_seen_.emplace(round, r.value());
        break;
      }
      case kAck: {
        ++tallies_[static_cast<int>(r.varint())].acks;
        break;
      }
      case kNack: {
        ++tallies_[static_cast<int>(r.varint())].nacks;
        break;
      }
      case kDecide: {
        decide_and_flood(ctx, r.value());
        break;
      }
      default:
        RFD_UNREACHABLE("unknown ct_rotating message type");
    }
  }
  try_advance(ctx);
}

void CtRotatingConsensus::try_advance(sim::Context& ctx) {
  if (decided_) return;
  bool progressed = true;
  while (progressed && !decided_) {
    progressed = false;
    const ProcessId coord = coordinator(round_);
    const bool is_coord = coord == ctx.self();

    // Coordinator phase 2: propose once a majority of estimates arrived.
    if (is_coord) {
      Tally& tally = tallies_[round_];
      if (!tally.proposed && tally.estimates >= majority()) {
        tally.proposed = true;
        tally.proposal_value = tally.best_est;
        Writer w;
        w.u8(kPropose);
        w.varint(round_);
        w.value(tally.proposal_value);
        ctx.broadcast(std::move(w).take());
        proposals_seen_.emplace(round_, tally.proposal_value);
        progressed = true;
      }
    }

    // Participant phase 3: adopt the proposal or suspect the coordinator.
    if (!replied_this_round_) {
      const auto it = proposals_seen_.find(round_);
      if (it != proposals_seen_.end()) {
        est_ = it->second;
        ts_ = round_ + 1;
        replied_this_round_ = true;
        if (is_coord) {
          ++tallies_[round_].acks;
        } else {
          Writer w;
          w.u8(kAck);
          w.varint(round_);
          ctx.send(coord, std::move(w).take());
        }
      } else if (!is_coord && ctx.fd().suspects.contains(coord)) {
        replied_this_round_ = true;
        Writer w;
        w.u8(kNack);
        w.varint(round_);
        ctx.send(coord, std::move(w).take());
      }
      if (replied_this_round_ && !is_coord) {
        // Participants move on right after replying.
        ++round_;
        begin_round(ctx);
        progressed = true;
        continue;
      }
    }

    // Coordinator phase 4: with a majority of replies, decide on a
    // majority of ACKs, otherwise move to the next round.
    if (is_coord) {
      Tally& tally = tallies_[round_];
      if (tally.proposed && !tally.replies_done &&
          tally.acks + tally.nacks >= majority()) {
        tally.replies_done = true;
        if (tally.acks >= majority()) {
          decide_and_flood(ctx, tally.proposal_value);
        } else {
          ++round_;
          begin_round(ctx);
        }
        progressed = true;
      }
    }
  }
}

}  // namespace rfd::algo
