// The Chandra-Toueg <>S-based rotating-coordinator consensus [CT96].
//
// This is the paper's foil (footnote 4): it solves consensus with the weak
// <>S detector but ONLY under a majority of correct processes, and it is
// NOT total - a decision can be reached after consulting just a majority,
// never having heard from the rest. With crashes unbounded it loses
// termination: a live coordinator can wait forever for a majority of
// estimates. Experiments E1/E2/E10 run it side by side with the S-based
// algorithm to show exactly the trade the paper's collapse result is
// about.
//
// Round r (r = 0, 1, ...), coordinator c = r mod n:
//   1. everyone sends (ESTIMATE, r, est, ts) to c;
//   2. c waits for a majority of estimates, adopts the one with the
//      largest timestamp and broadcasts (PROPOSE, r, est);
//   3. everyone waits for c's proposal or suspects c; they reply ACK
//      (adopting est with ts := r) or NACK and enter round r+1;
//   4. c waits for a majority of replies; on a majority of ACKs it decides
//      and floods (DECIDE, v); receivers decide and re-flood once.
#pragma once

#include <map>

#include "sim/automaton.hpp"

namespace rfd::algo {

class CtRotatingConsensus final : public sim::Automaton {
 public:
  CtRotatingConsensus(ProcessId n, Value proposal, InstanceId instance = 0);

  void on_start(sim::Context& ctx) override;
  void on_step(sim::Context& ctx, const sim::Incoming* m) override;

  bool decided() const { return decided_; }
  Value decision() const { return decision_; }
  int round() const { return round_; }

 private:
  static constexpr std::uint8_t kEstimate = 1;
  static constexpr std::uint8_t kPropose = 2;
  static constexpr std::uint8_t kAck = 3;
  static constexpr std::uint8_t kNack = 4;
  static constexpr std::uint8_t kDecide = 5;

  struct Tally {
    int estimates = 0;
    Value best_est = kNoValue;
    Tick best_ts = -1;
    bool proposed = false;
    /// The value actually proposed (frozen at propose time: best_est keeps
    /// tracking late estimate arrivals and must not leak into the decision).
    Value proposal_value = kNoValue;
    int acks = 0;
    int nacks = 0;
    bool replies_done = false;
  };

  ProcessId coordinator(int round) const {
    return static_cast<ProcessId>(round % n_);
  }
  int majority() const { return static_cast<int>(n_) / 2 + 1; }

  void begin_round(sim::Context& ctx);
  void try_advance(sim::Context& ctx);
  void decide_and_flood(sim::Context& ctx, Value v);
  void record_estimate(int round, Value est, Tick ts);

  ProcessId n_;
  Value proposal_;
  InstanceId instance_;

  Value est_ = kNoValue;
  Tick ts_ = 0;
  int round_ = 0;
  bool replied_this_round_ = false;
  bool decided_ = false;
  Value decision_ = kNoValue;

  std::map<int, Tally> tallies_;          // coordinator bookkeeping
  std::map<int, Value> proposals_seen_;   // PROPOSE per round
};

}  // namespace rfd::algo
