// The Chandra-Toueg S-based consensus algorithm [CT96, Figure 5-style],
// the "sufficient" half of Proposition 4.3: it solves (uniform) consensus
// with ANY Strong failure detector - in particular any Perfect one - no
// matter how many processes crash.
//
// Phase 1 runs n-1 asynchronous rounds. In round r every process
// broadcasts the values it newly learned in round r-1 and waits, for every
// other process q, until it has q's round-r message or its detector
// suspects q. Phase 2 exchanges the resulting vectors V_p and intersects
// the received ones. Phase 3 decides the first non-bottom component.
//
// Weak accuracy gives a correct process c that is never suspected; the
// classic relay argument shows every process finishing phase 2 holds
// exactly V_c, so all decisions (even by processes that crash right after
// deciding) are equal: agreement is uniform.
//
// With a *realistic* detector (suspected => crashed) the algorithm is
// total in the sense of Section 4.2: no decision happens before hearing,
// directly or transitively, from every process alive at decision time.
// With the clairvoyant S(cheat) detector it loses totality while remaining
// correct - the contrast experiment E2 is built on exactly that.
#pragma once

#include <map>
#include <vector>

#include "sim/automaton.hpp"

namespace rfd::algo {

class CtStrongConsensus final : public sim::Automaton {
 public:
  /// `n` processes; this replica proposes `proposal`. Decisions are
  /// recorded under `instance`.
  CtStrongConsensus(ProcessId n, Value proposal, InstanceId instance = 0);

  void on_start(sim::Context& ctx) override;
  void on_step(sim::Context& ctx, const sim::Incoming* m) override;

  bool decided() const { return decided_; }
  Value decision() const { return decision_; }
  /// Current phase-1 round (n says phase 1 finished), for diagnostics.
  int round() const { return round_; }

 private:
  static constexpr std::uint8_t kPhase1 = 1;
  static constexpr std::uint8_t kPhase2 = 2;

  using Learned = std::vector<std::pair<ProcessId, Value>>;

  Bytes encode_phase1(int round, const Learned& delta) const;
  Bytes encode_phase2() const;
  void try_advance(sim::Context& ctx);

  ProcessId n_;
  Value proposal_;
  InstanceId instance_;

  std::vector<Value> v_;  // V_p: component q holds q's proposal or kNoValue
  int round_ = 0;         // current phase-1 round, 1-based
  bool in_phase2_ = false;
  bool decided_ = false;
  bool halted_ = false;   // empty phase-2 intersection (detector not in S)
  Value decision_ = kNoValue;

  /// Round -> sender -> values newly learned by the sender that round.
  std::map<int, std::map<ProcessId, Learned>> ph1_;
  /// Phase-2 vectors received (own vector included on entry to phase 2).
  std::map<ProcessId, std::vector<Value>> ph2_;
};

}  // namespace rfd::algo
