#include "algo/specs.hpp"

#include <algorithm>
#include <map>

namespace rfd::algo {
namespace {

std::string pid(ProcessId p) { return "p" + std::to_string(p); }

}  // namespace

std::string ConsensusCheck::to_string() const {
  std::string out;
  auto flag = [&](bool b, const char* name) {
    out += std::string(name) + (b ? "+" : "-") + " ";
  };
  flag(termination, "term");
  flag(uniform_agreement, "u-agree");
  flag(agreement, "agree");
  flag(validity, "valid");
  flag(integrity, "integ");
  if (!detail.empty()) out += "(" + detail + ")";
  return out;
}

ConsensusCheck check_consensus(const sim::Trace& trace, InstanceId instance,
                               const std::vector<Value>& proposals) {
  ConsensusCheck check;
  const auto decisions = trace.decisions_of_instance(instance);
  const ProcessSet correct = trace.pattern().correct();

  // Integrity: at most one decision per process.
  std::map<ProcessId, Value> first_decision;
  for (const auto& d : decisions) {
    const auto [it, inserted] = first_decision.emplace(d.process, d.value);
    if (!inserted) {
      check.integrity = false;
      check.detail += pid(d.process) + " decided twice; ";
    }
  }

  // Termination: every correct process decided within the window.
  correct.for_each([&](ProcessId p) {
    if (first_decision.count(p) == 0) {
      check.termination = false;
      check.detail += pid(p) + " never decided; ";
    }
  });

  // Agreement: uniform (all deciders) and correct-restricted variants.
  Value uniform_value = kNoValue;
  for (const auto& [p, v] : first_decision) {
    if (uniform_value == kNoValue) {
      uniform_value = v;
    } else if (v != uniform_value) {
      check.uniform_agreement = false;
      check.detail += "uniform disagreement at " + pid(p) + "; ";
    }
  }
  Value correct_value = kNoValue;
  for (const auto& [p, v] : first_decision) {
    if (!correct.contains(p)) continue;
    if (correct_value == kNoValue) {
      correct_value = v;
    } else if (v != correct_value) {
      check.agreement = false;
      check.detail += "correct processes disagree at " + pid(p) + "; ";
    }
  }

  // Validity: decided values were proposed.
  for (const auto& [p, v] : first_decision) {
    if (std::find(proposals.begin(), proposals.end(), v) == proposals.end()) {
      check.validity = false;
      check.detail += pid(p) + " decided unproposed " + std::to_string(v) +
                      "; ";
    }
  }
  return check;
}

std::string TrbCheck::to_string() const {
  std::string out;
  auto flag = [&](bool b, const char* name) {
    out += std::string(name) + (b ? "+" : "-") + " ";
  };
  flag(termination, "term");
  flag(agreement, "agree");
  flag(validity, "valid");
  flag(integrity, "integ");
  if (!detail.empty()) out += "(" + detail + ")";
  return out;
}

TrbCheck check_trb(const sim::Trace& trace, InstanceId instance,
                   ProcessId sender, Value broadcast_value) {
  TrbCheck check;
  const auto deliveries = trace.deliveries_of_instance(instance);
  const ProcessSet correct = trace.pattern().correct();
  const bool sender_correct = correct.contains(sender);

  std::map<ProcessId, Value> first_delivery;
  for (const auto& d : deliveries) {
    const auto [it, inserted] = first_delivery.emplace(d.process, d.value);
    if (!inserted) {
      check.termination = false;  // "exactly once" violated
      check.detail += pid(d.process) + " delivered twice; ";
    }
  }

  correct.for_each([&](ProcessId p) {
    if (first_delivery.count(p) == 0) {
      check.termination = false;
      check.detail += pid(p) + " never delivered; ";
    }
  });

  Value common = kNoValue;
  for (const auto& [p, v] : first_delivery) {
    if (common == kNoValue) {
      common = v;
    } else if (v != common) {
      check.agreement = false;
      check.detail += "deliveries differ at " + pid(p) + "; ";
    }
  }

  for (const auto& [p, v] : first_delivery) {
    if (sender_correct && v == kNilValue) {
      check.validity = false;
      check.detail += pid(p) + " delivered nil for a correct sender; ";
    }
    if (v != kNilValue && v != broadcast_value) {
      check.integrity = false;
      check.detail += pid(p) + " delivered a value never broadcast; ";
    }
  }
  return check;
}

std::string AbcastCheck::to_string() const {
  std::string out;
  auto flag = [&](bool b, const char* name) {
    out += std::string(name) + (b ? "+" : "-") + " ";
  };
  flag(validity, "valid");
  flag(agreement, "agree");
  flag(total_order, "order");
  flag(integrity, "integ");
  if (!detail.empty()) out += "(" + detail + ")";
  return out;
}

AbcastCheck check_abcast(const sim::Trace& trace, InstanceId abcast_instance,
                         const std::vector<Value>& broadcast_by_correct,
                         const std::vector<Value>& broadcast_all) {
  AbcastCheck check;
  const ProcessSet correct = trace.pattern().correct();

  std::map<ProcessId, std::vector<Value>> sequences;
  for (const auto& d : trace.deliveries_of_instance(abcast_instance)) {
    sequences[d.process].push_back(d.value);
  }

  // Integrity: no duplicates, only broadcast values.
  for (const auto& [p, seq] : sequences) {
    std::vector<Value> sorted = seq;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      check.integrity = false;
      check.detail += pid(p) + " delivered a duplicate; ";
    }
    for (Value v : seq) {
      if (std::find(broadcast_all.begin(), broadcast_all.end(), v) ==
          broadcast_all.end()) {
        check.integrity = false;
        check.detail += pid(p) + " delivered unknown value; ";
      }
    }
  }

  // Validity: everything a correct process broadcast reaches every correct
  // process.
  correct.for_each([&](ProcessId p) {
    const auto& seq = sequences[p];
    for (Value v : broadcast_by_correct) {
      if (std::find(seq.begin(), seq.end(), v) == seq.end()) {
        check.validity = false;
        check.detail += pid(p) + " missing value " + std::to_string(v) + "; ";
      }
    }
  });

  // Agreement: all correct processes deliver the same sequence.
  std::vector<Value> reference;
  bool have_reference = false;
  correct.for_each([&](ProcessId p) {
    if (!have_reference) {
      reference = sequences[p];
      have_reference = true;
    } else if (sequences[p] != reference) {
      check.agreement = false;
      check.detail += pid(p) + " delivered a different sequence; ";
    }
  });

  // Uniform total order: every process's sequence (including processes
  // that later crashed) is a prefix of the longest sequence.
  const std::vector<Value>* longest = nullptr;
  for (const auto& [p, seq] : sequences) {
    if (longest == nullptr || seq.size() > longest->size()) {
      longest = &seq;
    }
  }
  if (longest != nullptr) {
    for (const auto& [p, seq] : sequences) {
      if (!std::equal(seq.begin(), seq.end(), longest->begin())) {
        check.total_order = false;
        check.detail += pid(p) + " delivery order incompatible; ";
      }
    }
  }
  return check;
}

}  // namespace rfd::algo
