#include "model/failure_pattern.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rfd::model {

FailurePattern::FailurePattern(ProcessId n)
    : crash_ticks_(static_cast<std::size_t>(n), kNever) {
  RFD_REQUIRE_MSG(n > 0, "a system needs at least one process");
}

FailurePattern::FailurePattern(ProcessId n, std::vector<Tick> crash_ticks)
    : crash_ticks_(std::move(crash_ticks)) {
  RFD_REQUIRE(static_cast<std::size_t>(n) == crash_ticks_.size());
  for (Tick t : crash_ticks_) {
    RFD_REQUIRE_MSG(t >= 0, "crash ticks are natural numbers");
  }
}

void FailurePattern::crash_at(ProcessId p, Tick t) {
  RFD_REQUIRE(p >= 0 && p < n());
  RFD_REQUIRE_MSG(t >= 0, "crash ticks are natural numbers");
  crash_ticks_[static_cast<std::size_t>(p)] = t;
}

Tick FailurePattern::crash_tick(ProcessId p) const {
  RFD_REQUIRE(p >= 0 && p < n());
  return crash_ticks_[static_cast<std::size_t>(p)];
}

ProcessSet FailurePattern::crashed_by(Tick t) const {
  ProcessSet out(n());
  for (ProcessId p = 0; p < n(); ++p) {
    if (crash_ticks_[static_cast<std::size_t>(p)] <= t) out.insert(p);
  }
  return out;
}

ProcessSet FailurePattern::alive_at(Tick t) const {
  return crashed_by(t).complement();
}

bool FailurePattern::is_alive_at(ProcessId p, Tick t) const {
  RFD_REQUIRE(p >= 0 && p < n());
  return crash_ticks_[static_cast<std::size_t>(p)] > t;
}

ProcessSet FailurePattern::correct() const {
  ProcessSet out(n());
  for (ProcessId p = 0; p < n(); ++p) {
    if (crash_ticks_[static_cast<std::size_t>(p)] == kNever) out.insert(p);
  }
  return out;
}

ProcessSet FailurePattern::faulty() const { return correct().complement(); }

bool FailurePattern::agrees_up_to(const FailurePattern& other, Tick t) const {
  if (n() != other.n()) return false;
  for (ProcessId p = 0; p < n(); ++p) {
    const Tick a = crash_ticks_[static_cast<std::size_t>(p)];
    const Tick b = other.crash_ticks_[static_cast<std::size_t>(p)];
    if (a == b) continue;
    // Crash ticks differ; the patterns still agree up to t iff both crashes
    // happen strictly after t.
    if (a <= t || b <= t) return false;
  }
  return true;
}

Tick FailurePattern::divergence_tick(const FailurePattern& other) const {
  RFD_REQUIRE(n() == other.n());
  Tick first = kNever;
  for (ProcessId p = 0; p < n(); ++p) {
    const Tick a = crash_ticks_[static_cast<std::size_t>(p)];
    const Tick b = other.crash_ticks_[static_cast<std::size_t>(p)];
    if (a != b) {
      first = std::min(first, std::min(a, b));
    }
  }
  return first;
}

std::string FailurePattern::to_string() const {
  std::string out = "F[";
  for (ProcessId p = 0; p < n(); ++p) {
    if (p != 0) out += " ";
    const Tick t = crash_ticks_[static_cast<std::size_t>(p)];
    out += "p" + std::to_string(p) + ":";
    out += (t == kNever) ? "ok" : ("t" + std::to_string(t));
  }
  out += "]";
  return out;
}

ProcessSet PastView::crashed_by(Tick t) const {
  RFD_REQUIRE_MSG(t <= now_,
                  "realistic oracle attempted to read a future crash set");
  return pattern_->crashed_by(t);
}

bool PastView::has_crashed_by(ProcessId p, Tick t) const {
  RFD_REQUIRE_MSG(t <= now_,
                  "realistic oracle attempted to read a future crash");
  return !pattern_->is_alive_at(p, t);
}

Tick PastView::crash_tick_if_past(ProcessId p) const {
  const Tick t = pattern_->crash_tick(p);
  return t <= now_ ? t : kNever;
}

}  // namespace rfd::model
