// Failure patterns (Section 2.1).
//
// A failure pattern is a function F from ticks to subsets of Omega, where
// F(t) is the set of processes that have crashed through time t. Crashes
// are permanent (crash-stop model), so F is fully described by one crash
// tick per process (kNever for correct processes); F(t) is monotone in t.
#pragma once

#include <string>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"

namespace rfd::model {

class FailurePattern {
 public:
  /// All-correct pattern over n processes.
  explicit FailurePattern(ProcessId n);

  /// Pattern with explicit per-process crash ticks (kNever = correct).
  FailurePattern(ProcessId n, std::vector<Tick> crash_ticks);

  ProcessId n() const { return static_cast<ProcessId>(crash_ticks_.size()); }

  /// Declares that p crashes at tick t (p performs no action at or after t).
  void crash_at(ProcessId p, Tick t);

  /// Crash tick of p, or kNever.
  Tick crash_tick(ProcessId p) const;

  /// F(t): processes that have crashed through time t.
  ProcessSet crashed_by(Tick t) const;

  /// Processes that have NOT crashed through time t.
  ProcessSet alive_at(Tick t) const;

  bool is_alive_at(ProcessId p, Tick t) const;

  /// correct(F): processes that never crash.
  ProcessSet correct() const;

  /// faulty(F) = Omega \ correct(F). This is future information: only
  /// non-realistic oracles may consult it (see pattern_view.hpp).
  ProcessSet faulty() const;

  ProcessId num_faulty() const { return faulty().count(); }

  /// True when the two patterns agree at every tick <= t, i.e.
  /// for all t1 <= t, F(t1) = F'(t1). This is the similarity notion used
  /// by the realism definition (Section 3.1).
  bool agrees_up_to(const FailurePattern& other, Tick t) const;

  /// Earliest tick at which this pattern and `other` differ, or kNever.
  Tick divergence_tick(const FailurePattern& other) const;

  bool operator==(const FailurePattern& other) const {
    return crash_ticks_ == other.crash_ticks_;
  }

  std::string to_string() const;

 private:
  std::vector<Tick> crash_ticks_;
};

/// View of a failure pattern restricted to ticks <= now: the only window a
/// *realistic* failure detector may look through (Section 3.1). Accessors
/// abort if asked about the future, so realism of the concrete oracles in
/// src/fd is enforced structurally, not just by tests.
class PastView {
 public:
  PastView(const FailurePattern& pattern, Tick now)
      : pattern_(&pattern), now_(now) {}

  Tick now() const { return now_; }
  ProcessId n() const { return pattern_->n(); }

  /// F(t) for t <= now only.
  ProcessSet crashed_by(Tick t) const;

  /// Whether p has crashed by `t` (t <= now only).
  bool has_crashed_by(ProcessId p, Tick t) const;

  /// Crash tick of p if it crashed at or before `now`, else kNever ("not
  /// crashed as far as anyone can tell yet").
  Tick crash_tick_if_past(ProcessId p) const;

 private:
  const FailurePattern* pattern_;
  Tick now_;
};

/// Unrestricted view, including the future (correct()/faulty() of the whole
/// run). Required by non-realistic oracles such as the Marabout (Section
/// 3.2.2); requesting this view is what marks an oracle non-realistic.
class FullView {
 public:
  explicit FullView(const FailurePattern& pattern) : pattern_(&pattern) {}

  const FailurePattern& pattern() const { return *pattern_; }
  ProcessSet faulty() const { return pattern_->faulty(); }
  ProcessSet correct() const { return pattern_->correct(); }

 private:
  const FailurePattern* pattern_;
};

}  // namespace rfd::model
