// Environments (Section 2.1): sets of failure patterns.
//
// The paper's environment is "all possible failure patterns" — crashes are
// unbounded. The theorems quantify over that environment, so experiments
// sweep over representative pattern families plus adversarially crafted
// patterns (e.g. "all processes but one crash right after the decision",
// the scenario behind Lemma 4.1 and Section 6.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "model/failure_pattern.hpp"

namespace rfd::model {

/// Named generators for single patterns.
FailurePattern all_correct(ProcessId n);
FailurePattern single_crash(ProcessId n, ProcessId p, Tick t);
/// Everyone except `survivor` crashes at tick t.
FailurePattern all_but_one_crash(ProcessId n, ProcessId survivor, Tick t);
/// Processes 0..k-1 crash at start, start+gap, start+2*gap, ...
FailurePattern cascade(ProcessId n, ProcessId k, Tick start, Tick gap);
/// Exactly `k` distinct processes (chosen by rng) crash at rng ticks in
/// [0, horizon).
FailurePattern random_crashes(ProcessId n, ProcessId k, Tick horizon,
                              Rng& rng);

/// A reproducible family of failure patterns for sweep experiments.
class PatternSweep {
 public:
  PatternSweep(ProcessId n, std::uint64_t seed);

  /// Adds one explicit pattern.
  PatternSweep& add(FailurePattern pattern);

  /// Adds the all-correct pattern.
  PatternSweep& with_all_correct();

  /// Adds every single-crash pattern at each tick in `ticks`.
  PatternSweep& with_single_crashes(const std::vector<Tick>& ticks);

  /// Adds `count` random patterns with between `min_crashes` and
  /// `max_crashes` crashes in [0, horizon). max_crashes may be n-1 or even
  /// n (no process correct is allowed by the model, though agreement specs
  /// then hold vacuously).
  PatternSweep& with_random(int count, ProcessId min_crashes,
                            ProcessId max_crashes, Tick horizon);

  /// Adds cascades of k = 1 .. max_crashes crashes.
  PatternSweep& with_cascades(ProcessId max_crashes, Tick start, Tick gap);

  /// Adds, for each process p, the pattern where everyone but p crashes at
  /// tick t (the unbounded-crash worst case driving the paper's results).
  PatternSweep& with_all_but_one(Tick t);

  const std::vector<FailurePattern>& patterns() const { return patterns_; }
  ProcessId n() const { return n_; }

 private:
  ProcessId n_;
  Rng rng_;
  std::vector<FailurePattern> patterns_;
};

}  // namespace rfd::model
