#include "model/environment.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rfd::model {

FailurePattern all_correct(ProcessId n) { return FailurePattern(n); }

FailurePattern single_crash(ProcessId n, ProcessId p, Tick t) {
  FailurePattern f(n);
  f.crash_at(p, t);
  return f;
}

FailurePattern all_but_one_crash(ProcessId n, ProcessId survivor, Tick t) {
  RFD_REQUIRE(survivor >= 0 && survivor < n);
  FailurePattern f(n);
  for (ProcessId p = 0; p < n; ++p) {
    if (p != survivor) f.crash_at(p, t);
  }
  return f;
}

FailurePattern cascade(ProcessId n, ProcessId k, Tick start, Tick gap) {
  RFD_REQUIRE(k >= 0 && k <= n);
  RFD_REQUIRE(start >= 0 && gap >= 0);
  FailurePattern f(n);
  for (ProcessId p = 0; p < k; ++p) {
    f.crash_at(p, start + gap * p);
  }
  return f;
}

FailurePattern random_crashes(ProcessId n, ProcessId k, Tick horizon,
                              Rng& rng) {
  RFD_REQUIRE(k >= 0 && k <= n);
  RFD_REQUIRE(horizon > 0);
  std::vector<ProcessId> ids(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p) ids[static_cast<std::size_t>(p)] = p;
  rng.shuffle(ids.data(), n);
  FailurePattern f(n);
  for (ProcessId i = 0; i < k; ++i) {
    f.crash_at(ids[static_cast<std::size_t>(i)], rng.below(horizon));
  }
  return f;
}

PatternSweep::PatternSweep(ProcessId n, std::uint64_t seed)
    : n_(n), rng_(seed) {}

PatternSweep& PatternSweep::add(FailurePattern pattern) {
  RFD_REQUIRE(pattern.n() == n_);
  patterns_.push_back(std::move(pattern));
  return *this;
}

PatternSweep& PatternSweep::with_all_correct() {
  return add(all_correct(n_));
}

PatternSweep& PatternSweep::with_single_crashes(const std::vector<Tick>& ticks) {
  for (ProcessId p = 0; p < n_; ++p) {
    for (Tick t : ticks) {
      add(single_crash(n_, p, t));
    }
  }
  return *this;
}

PatternSweep& PatternSweep::with_random(int count, ProcessId min_crashes,
                                        ProcessId max_crashes, Tick horizon) {
  RFD_REQUIRE(min_crashes >= 0 && min_crashes <= max_crashes &&
              max_crashes <= n_);
  for (int i = 0; i < count; ++i) {
    const auto k = static_cast<ProcessId>(rng_.range(min_crashes, max_crashes));
    add(random_crashes(n_, k, horizon, rng_));
  }
  return *this;
}

PatternSweep& PatternSweep::with_cascades(ProcessId max_crashes, Tick start,
                                          Tick gap) {
  for (ProcessId k = 1; k <= max_crashes; ++k) {
    add(cascade(n_, k, start, gap));
  }
  return *this;
}

PatternSweep& PatternSweep::with_all_but_one(Tick t) {
  for (ProcessId p = 0; p < n_; ++p) {
    add(all_but_one_crash(n_, p, t));
  }
  return *this;
}

}  // namespace rfd::model
