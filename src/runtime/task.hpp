// Move-only type-erased `void()` callable with small-buffer optimization.
//
// The event queue stores one of these per scheduled event. std::function
// was the old representation; it heap-allocates for any capture larger
// than (typically) two pointers, and at cluster scale every heartbeat,
// digest delivery and check tick paid that allocation. InlineTask keeps
// captures up to kInlineBytes in place - every closure the runtime and
// cluster layers schedule fits - and falls back to the heap only for
// oversized captures (e.g. a scripted fault event carrying partition
// groups), so the steady-state simulation loop allocates nothing per
// event. Dispatch is a single ops-table indirection, like libstdc++'s
// std::function but without the copyability machinery.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rfd::rt {

class InlineTask {
 public:
  /// Sized so the engine's largest steady-state closure (a digest
  /// delivery: this-pointer, target id, and a vector of entries) stays
  /// inline with room to spare.
  static constexpr std::size_t kInlineBytes = 48;

  InlineTask() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineTask> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineTask(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(fn));
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineTask(InlineTask&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  InlineTask& operator=(InlineTask&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;

  ~InlineTask() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs into `dst` from `src` and destroys the source
    /// (inline case) or steals the pointer (heap case).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*static_cast<Fn*>(s))(); },
      [](void* dst, void* src) {
        Fn* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) { static_cast<Fn*>(s)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**reinterpret_cast<Fn**>(s))(); },
      [](void* dst, void* src) {
        *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
      },
      [](void* s) { delete *reinterpret_cast<Fn**>(s); },
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace rfd::rt
