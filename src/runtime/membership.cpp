#include "runtime/membership.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace rfd::rt {
namespace {

struct View {
  std::int64_t id = 0;
  NodeId proposer = -1;
  std::set<NodeId> members;

  /// Adoption order: higher id wins; on ties the smaller proposer wins.
  bool newer_than(const View& other) const {
    if (id != other.id) return id > other.id;
    return proposer < other.proposer;
  }
};

struct Node {
  NodeId id = 0;
  double crash_at = -1.0;  // <= 0: never
  bool halted = false;     // learned of its exclusion and stopped
  View view;
  std::map<NodeId, std::unique_ptr<PeerDetector>> detectors;

  bool os_alive(double now) const {
    return crash_at <= 0.0 || now < crash_at;
  }
  bool active(double now) const { return os_alive(now) && !halted; }
};

std::string render_view(const View& v) {
  std::string out = "v" + std::to_string(v.id) + "{";
  bool first = true;
  for (NodeId m : v.members) {
    if (!first) out += ",";
    first = false;
    out += std::to_string(m);
  }
  return out + "}";
}

}  // namespace

MembershipResult run_membership_experiment(const MembershipConfig& config,
                                           std::uint64_t seed) {
  RFD_REQUIRE(config.n >= 2);
  EventQueue queue;
  Network network(queue, mix_seed(seed, 0x3e3b), config.network);

  std::vector<Node> nodes(static_cast<std::size_t>(config.n));
  std::set<NodeId> everyone;
  for (NodeId i = 0; i < config.n; ++i) everyone.insert(i);
  for (NodeId i = 0; i < config.n; ++i) {
    Node& node = nodes[static_cast<std::size_t>(i)];
    node.id = i;
    node.view.members = everyone;
    if (static_cast<std::size_t>(i) < config.crash_at_ms.size()) {
      node.crash_at = config.crash_at_ms[static_cast<std::size_t>(i)];
    }
  }

  MembershipResult result;
  // Victim -> time of the real crash, for exclusion latency; and the set
  // of exclusions pending accuracy audit.
  std::map<NodeId, double> crash_times;
  for (NodeId i = 0; i < config.n; ++i) {
    const Node& node = nodes[static_cast<std::size_t>(i)];
    if (node.crash_at > 0.0 && node.crash_at < config.duration_ms) {
      crash_times[i] = node.crash_at;
    }
  }
  std::set<NodeId> latency_recorded;
  std::set<NodeId> all_excluded;

  auto detector_for = [&](Node& node, NodeId peer) -> PeerDetector& {
    auto it = node.detectors.find(peer);
    if (it == node.detectors.end()) {
      it = node.detectors.emplace(peer, make_detector(config.detector)).first;
    }
    return *it->second;
  };

  auto install_view = [&](Node& node, const View& v) {
    if (!v.newer_than(node.view)) return;
    node.view = v;
    if (v.members.count(node.id) == 0 && !node.halted) {
      // Process-controlled crash: the exclusion becomes accurate.
      node.halted = true;
      ++result.self_terminations;
    }
  };

  // Heartbeat pumps.
  for (NodeId i = 0; i < config.n; ++i) {
    std::shared_ptr<std::function<void()>> pump =
        std::make_shared<std::function<void()>>();
    *pump = [&, i, pump] {
      Node& node = nodes[static_cast<std::size_t>(i)];
      const double now = queue.now();
      if (!node.active(now)) return;
      for (NodeId peer : node.view.members) {
        if (peer == i) continue;
        network.send(i, peer, [&, i, peer] {
          Node& dst = nodes[static_cast<std::size_t>(peer)];
          if (!dst.active(queue.now())) return;
          detector_for(dst, i).on_heartbeat(queue.now());
        });
      }
      queue.schedule_in(config.heartbeat_interval_ms, *pump);
    };
    queue.schedule(0.0, *pump);
  }

  // Coordinator check loops.
  for (NodeId i = 0; i < config.n; ++i) {
    std::shared_ptr<std::function<void()>> check =
        std::make_shared<std::function<void()>>();
    *check = [&, i, check] {
      Node& node = nodes[static_cast<std::size_t>(i)];
      const double now = queue.now();
      if (!node.active(now)) return;

      std::set<NodeId> suspected;
      for (NodeId peer : node.view.members) {
        if (peer == i) continue;
        if (detector_for(node, peer).suspects(now)) suspected.insert(peer);
      }
      // Acting coordinator: smallest member this node does not suspect
      // must be itself.
      NodeId acting = -1;
      for (NodeId m : node.view.members) {
        if (suspected.count(m) == 0) {
          acting = m;
          break;
        }
      }
      if (acting == i && !suspected.empty()) {
        View next;
        next.id = node.view.id + 1;
        next.proposer = i;
        next.members = node.view.members;
        for (NodeId s : suspected) {
          next.members.erase(s);
          ++result.exclusions;
          all_excluded.insert(s);
          const Node& victim = nodes[static_cast<std::size_t>(s)];
          if (victim.os_alive(now) && !victim.halted) {
            ++result.false_exclusions;
          }
          // Exclusion latency is only meaningful for exclusions that react
          // to the real crash; a victim sacrificed beforehand already
          // counted as a false exclusion above.
          const auto crash_it = crash_times.find(s);
          if (crash_it != crash_times.end() && now >= crash_it->second &&
              latency_recorded.insert(s).second) {
            result.exclusion_latency_ms.add(now - crash_it->second);
          }
        }
        const View installed = next;
        install_view(node, installed);
        for (NodeId peer = 0; peer < config.n; ++peer) {
          if (peer == i) continue;
          network.send(i, peer, [&, peer, installed] {
            Node& dst = nodes[static_cast<std::size_t>(peer)];
            if (!dst.os_alive(queue.now()) || dst.halted) return;
            install_view(dst, installed);
          });
        }
      }
      queue.schedule_in(config.check_interval_ms, *check);
    };
    queue.schedule(config.check_interval_ms, *check);
  }

  queue.run_until(config.duration_ms);

  // Convergence: all active nodes share one view containing exactly the
  // active nodes.
  const double end = config.duration_ms;
  std::set<NodeId> active;
  for (const Node& node : nodes) {
    if (node.active(end)) active.insert(node.id);
  }
  result.converged = !active.empty();
  const Node* reference = nullptr;
  for (const Node& node : nodes) {
    if (!node.active(end)) continue;
    if (reference == nullptr) {
      reference = &node;
      if (node.view.members != active) result.converged = false;
    } else if (node.view.id != reference->view.id ||
               node.view.members != reference->view.members) {
      result.converged = false;
    }
  }
  if (reference != nullptr) {
    result.final_view = render_view(reference->view);
  }

  // The emulation claim, audited on the *installed* abstraction: at the
  // end of the run, every process an active node's view excludes (its
  // emulated suspect list) is dead - really crashed, or halted after
  // learning of its exclusion. Proposals that lost the view race don't
  // count: they were never part of the abstraction's output.
  result.suspicions_accurate = true;
  for (const Node& node : nodes) {
    if (!node.active(end)) continue;
    for (NodeId s = 0; s < config.n; ++s) {
      if (node.view.members.count(s) > 0) continue;
      const Node& victim = nodes[static_cast<std::size_t>(s)];
      if (victim.os_alive(end) && !victim.halted) {
        result.suspicions_accurate = false;
      }
    }
  }
  return result;
}

}  // namespace rfd::rt
