// Fork-join driver and spin barrier for the sharded simulation core.
//
// A ShardExecutor owns a persistent pool of worker threads (one per shard
// beyond the first; shard 0 always runs on the calling thread). run()
// dispatches one callback per shard and joins them all — since the
// worker-resident round loop landed, the engine calls run() exactly once
// per simulation and the shards synchronize among themselves through the
// executor's SpinBarrier, so the mutex+condvar pool handoff is paid once
// per run instead of twice per check tick.
//
// SpinBarrier is a generation-counter barrier: arrivals spin briefly on
// the generation atomic (bounded by spin_iterations, with periodic
// yields so oversubscribed hosts make progress), then park in
// std::atomic::wait — futex-backed on Linux — until the last arriver
// bumps the generation and notifies. abort() releases every current and
// future waiter with a `false` return so a shard that threw can drain
// its peers out of the loop (the generation bump that publishes the
// abort is a release RMW sequenced after the aborted store, so any
// waiter that observes the new generation also observes aborted()).
//
// Memory model: arrive_and_wait() is a full barrier — every write a
// shard makes before arriving happens-before every read any shard makes
// after leaving (release fetch_add on arrival, acquire load of the
// generation on exit) — so phases may freely read data other shards
// wrote in the previous phase (mailboxes, outboxes) without further
// synchronization, exactly as the old per-phase mutex handoff provided.
//
// shards == 1 bypasses the pool entirely: run() is a direct call and
// arrive_and_wait() returns immediately, so the single-threaded path
// pays nothing for the machinery.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace rfd::rt {

/// Architecture pause hint for spin loops.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Non-owning reference to a `void(int shard)` callable. Replaces
/// std::function in the executor API: no allocation, no virtual call
/// beyond one indirect branch, and a stable identity the engine can
/// construct once per run. The referenced callable must outlive every
/// use of the FnRef (trivially true for run(), which finishes before
/// the caller's full-expression ends).
class FnRef {
 public:
  /// Empty reference; calling it is undefined. Used as the executor's
  /// idle job slot.
  FnRef() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, FnRef>>>
  FnRef(F&& f)  // NOLINT(google-explicit-constructor): by-design implicit
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, int shard) {
          (*static_cast<std::remove_reference_t<F>*>(obj))(shard);
        }) {}

  void operator()(int shard) const { call_(obj_, shard); }

 private:
  void* obj_ = nullptr;
  void (*call_)(void*, int) = nullptr;
};

/// Sense-free generation-counter barrier with bounded spin then futex
/// park. Reusable across any number of waits; reset() rearms it after
/// an abort.
class SpinBarrier {
 public:
  /// Default spin budget before parking. Chosen so a barrier whose
  /// peers arrive within a few microseconds never enters the kernel;
  /// hosts reporting <= 1 hardware thread get 0 (park immediately —
  /// spinning can only steal the cycles the other shard needs).
  static int default_spin_iterations();

  explicit SpinBarrier(int parties)
      : parties_(parties), spin_iterations_(default_spin_iterations()) {}

  int parties() const { return parties_; }

  /// 0 parks immediately (measures the condvar-style cost floor);
  /// larger values spin longer before the futex wait.
  void set_spin_iterations(int iterations) { spin_iterations_ = iterations; }
  int spin_iterations() const { return spin_iterations_; }

  /// Blocks until all parties arrive (or the barrier is aborted).
  /// Returns true on a normal release, false once aborted — callers
  /// must treat false as "unwind now", and must not arrive again until
  /// reset().
  bool arrive_and_wait() {
    if (parties_ == 1) return !aborted();
    const std::uint64_t gen = gen_.load(std::memory_order_acquire);
    if (aborted()) return false;
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      gen_.fetch_add(1, std::memory_order_acq_rel);
      gen_.notify_all();
      return !aborted();
    }
    int spins = spin_iterations_;
    while (gen_.load(std::memory_order_acquire) == gen) {
      if (spins > 0) {
        --spins;
        cpu_relax();
        // Periodic yield keeps oversubscribed hosts live-locked-free.
        if ((spins & 1023) == 0) std::this_thread::yield();
      } else {
        gen_.wait(gen, std::memory_order_acquire);
      }
    }
    return !aborted();
  }

  /// Releases every current and future waiter with a false return.
  /// Safe to call from any thread, including concurrently with arrivals.
  void abort() {
    aborted_.store(true, std::memory_order_release);
    // The generation bump both wakes parked waiters and publishes the
    // aborted store to spinners (acquire load of gen_ synchronizes with
    // this release RMW).
    gen_.fetch_add(1, std::memory_order_acq_rel);
    gen_.notify_all();
  }

  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Rearms after an abort. Callers must guarantee no thread is inside
  /// arrive_and_wait() (the executor resets between run() invocations).
  void reset() {
    aborted_.store(false, std::memory_order_relaxed);
    arrived_.store(0, std::memory_order_relaxed);
  }

 private:
  const int parties_;
  int spin_iterations_;
  alignas(64) std::atomic<std::uint64_t> gen_{0};
  alignas(64) std::atomic<int> arrived_{0};
  std::atomic<bool> aborted_{false};
};

class ShardExecutor {
 public:
  /// Spawns `shards - 1` workers (shard 0 is the caller's thread).
  explicit ShardExecutor(int shards);
  ~ShardExecutor();
  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  int shards() const { return shards_; }

  /// The barrier shard callbacks use to synchronize among themselves
  /// (parties == shards()). run() rearms it before each dispatch.
  SpinBarrier& barrier() { return barrier_; }

  /// Forwarded to the barrier; 0 = park immediately (condvar-style).
  void set_spin_iterations(int iterations) {
    barrier_.set_spin_iterations(iterations);
  }

  /// Invokes fn(s) for every shard 0..shards()-1 concurrently and
  /// returns once all invocations finished (a full join). If any
  /// shard's callback throws, the barrier is aborted — peers blocked in
  /// arrive_and_wait() see `false` and are expected to return — and the
  /// lowest-shard exception is rethrown here after the join. The pool
  /// and barrier remain usable for further run() calls.
  void run(FnRef fn);

  /// Legacy fork-join entry, now an alias for run(). Kept so callers
  /// that dispatch short phases (tests, ad-hoc tools) read naturally.
  void parallel(FnRef fn) { run(fn); }

 private:
  void worker(int shard);
  void run_shard(FnRef fn, int shard);

  const int shards_;
  SpinBarrier barrier_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  FnRef job_;
  bool has_job_ = false;
  std::uint64_t epoch_ = 0;
  int running_ = 0;
  bool stop_ = false;
  /// One slot per shard, written only by that shard's thread during an
  /// invocation and read by the caller after the join.
  std::vector<std::exception_ptr> errors_;
  std::vector<std::thread> threads_;
};

}  // namespace rfd::rt
