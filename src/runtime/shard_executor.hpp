// Fork-join driver for the sharded simulation core.
//
// A ShardExecutor owns a persistent pool of worker threads (one per shard
// beyond the first; shard 0 always runs on the calling thread) and runs
// one callback per shard with a full barrier per invocation. The cluster
// engine advances every shard's event queue to the next check-grid
// boundary in one parallel() call, exchanges cross-shard messages while
// the workers are parked, and applies them in the next call - the
// conservative synchronization protocol that keeps fixed-seed runs
// bit-for-bit identical for any shard count (see cluster/engine.cpp for
// the determinism argument).
//
// Memory model: the mutex handoff around each invocation sequences every
// write a shard makes in phase N before every read any shard makes in
// phase N+1, so phases may freely read data other shards wrote in the
// previous phase (mailboxes, outboxes) without further synchronization.
//
// shards == 1 bypasses the pool and all locking entirely: parallel() is
// a direct call, so the single-threaded path pays nothing for the
// machinery.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rfd::rt {

class ShardExecutor {
 public:
  /// Spawns `shards - 1` workers (shard 0 is the caller's thread).
  explicit ShardExecutor(int shards);
  ~ShardExecutor();
  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  int shards() const { return shards_; }

  /// Invokes fn(s) for every shard 0..shards()-1 concurrently and
  /// returns once all invocations finished (a full barrier). If any
  /// shard's callback throws, the lowest-shard exception is rethrown
  /// here after the barrier.
  void parallel(const std::function<void(int)>& fn);

 private:
  void worker(int shard);
  void run_shard(const std::function<void(int)>& fn, int shard);

  const int shards_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  int running_ = 0;
  bool stop_ = false;
  /// One slot per shard, written only by that shard's thread during an
  /// invocation and read by the caller after the barrier.
  std::vector<std::exception_ptr> errors_;
  std::vector<std::thread> threads_;
};

}  // namespace rfd::rt
