#include "runtime/shard_executor.hpp"

#include "common/assert.hpp"

namespace rfd::rt {

int SpinBarrier::default_spin_iterations() {
  // On a single-hardware-thread host spinning only delays the peer we
  // are waiting for; park immediately. Otherwise a few tens of
  // microseconds of spin covers the inter-shard arrival skew of one
  // check window without touching the kernel.
  static const int kDefault =
      std::thread::hardware_concurrency() <= 1 ? 0 : (1 << 14);
  return kDefault;
}

ShardExecutor::ShardExecutor(int shards)
    : shards_(shards),
      barrier_(shards),
      errors_(static_cast<std::size_t>(shards)) {
  RFD_REQUIRE(shards >= 1);
  threads_.reserve(static_cast<std::size_t>(shards - 1));
  for (int s = 1; s < shards; ++s) {
    threads_.emplace_back([this, s] { worker(s); });
  }
}

ShardExecutor::~ShardExecutor() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardExecutor::run_shard(FnRef fn, int shard) {
  try {
    fn(shard);
  } catch (...) {
    errors_[static_cast<std::size_t>(shard)] = std::current_exception();
    // Drain peers out of any barrier wait so the join below completes.
    barrier_.abort();
  }
}

void ShardExecutor::run(FnRef fn) {
  if (shards_ == 1) {
    // Single-shard fast path: no pool, no locks, exceptions propagate
    // directly. barrier() still "works" (parties == 1).
    fn(0);
    return;
  }
  barrier_.reset();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    job_ = fn;
    has_job_ = true;
    running_ = shards_ - 1;
    ++epoch_;
  }
  start_cv_.notify_all();
  run_shard(fn, 0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return running_ == 0; });
    has_job_ = false;
  }
  for (std::exception_ptr& error : errors_) {
    if (error != nullptr) {
      const std::exception_ptr first = error;
      for (std::exception_ptr& e : errors_) e = nullptr;
      barrier_.reset();
      std::rethrow_exception(first);
    }
  }
}

void ShardExecutor::worker(int shard) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    FnRef job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    run_shard(job, shard);
    bool last = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      last = --running_ == 0;
    }
    if (last) done_cv_.notify_one();
  }
}

}  // namespace rfd::rt
