#include "runtime/shard_executor.hpp"

#include "common/assert.hpp"

namespace rfd::rt {

ShardExecutor::ShardExecutor(int shards)
    : shards_(shards), errors_(static_cast<std::size_t>(shards)) {
  RFD_REQUIRE(shards >= 1);
  threads_.reserve(static_cast<std::size_t>(shards - 1));
  for (int s = 1; s < shards; ++s) {
    threads_.emplace_back([this, s] { worker(s); });
  }
}

ShardExecutor::~ShardExecutor() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardExecutor::run_shard(const std::function<void(int)>& fn, int shard) {
  try {
    fn(shard);
  } catch (...) {
    errors_[static_cast<std::size_t>(shard)] = std::current_exception();
  }
}

void ShardExecutor::parallel(const std::function<void(int)>& fn) {
  if (shards_ == 1) {
    // Single-shard fast path: no pool, no locks, exceptions propagate
    // directly.
    fn(0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    running_ = shards_ - 1;
    ++epoch_;
  }
  start_cv_.notify_all();
  run_shard(fn, 0);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return running_ == 0; });
    job_ = nullptr;
  }
  for (std::exception_ptr& error : errors_) {
    if (error != nullptr) {
      const std::exception_ptr first = error;
      for (std::exception_ptr& e : errors_) e = nullptr;
      std::rethrow_exception(first);
    }
  }
}

void ShardExecutor::worker(int shard) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    run_shard(*job, shard);
    bool last = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      last = --running_ == 0;
    }
    if (last) done_cv_.notify_one();
  }
}

}  // namespace rfd::rt
