// Continuous-time discrete-event core for the runtime layer.
//
// The abstract model of src/sim uses a logical tick per step; the runtime
// layer instead simulates wall-clock behaviour (heartbeat periods, network
// delays in milliseconds) to evaluate what real timeout-based detectors
// deliver. Events carry a deterministic tiebreak sequence number so runs
// are reproducible bit-for-bit.
//
// Throughput design (the hot path of every cluster-scale experiment):
//
//   * Events live in a slab with an intrusive free list. Each entry holds
//     a small-buffer-optimized InlineTask, so steady-state runs allocate
//     nothing per event - the old core paid one std::function heap
//     allocation per heartbeat, delivery and check tick.
//   * Near-future events (the overwhelming majority: periodic heartbeat
//     and check timers, millisecond network deliveries) are scheduled in
//     O(1) into a hierarchical timer wheel: kWheelLevels levels of
//     kWheelSlots slots, each level kWheelSlots times coarser than the
//     one below. Far-future events beyond the wheel range fall back to
//     the binary heap.
//   * Execution order is exactly (at, seq) - identical to the old pure
//     heap core. The wheel only controls *when* an event enters the
//     ready heap (any time before its slot's window becomes current),
//     never the order in which events run, so runs are bit-for-bit
//     reproducible across both representations.
//
// Cancelable timers: schedule_cancelable() returns a TimerId that can be
// canceled or rescheduled (deadline pushed forward or pulled back) in
// O(1); stale wheel/heap entries are skipped lazily via a per-slot
// generation counter. (The cluster engine quantizes detector deadlines
// onto its check grid with its own per-tick buckets - see
// cluster/engine.cpp - so this API is for timers that need exact,
// un-quantized deadlines.)
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "obs/profile.hpp"
#include "runtime/task.hpp"

namespace rfd::rt {

class EventQueue {
 public:
  using Action = InlineTask;

  /// Handle to a cancelable event. Value-semantic; becomes stale (and all
  /// operations on it no-ops) once the event fires or is canceled.
  struct TimerId {
    std::uint32_t slot = kNullIndex;
    std::uint32_t gen = 0;
    bool valid() const { return slot != kNullIndex; }
  };

  /// `tick_ms` is the wheel granularity: events less than
  /// kWheelSlots * tick_ms ahead of the collected horizon schedule into
  /// the finest level. The default suits millisecond-scale networks with
  /// 100ms-scale heartbeat periods.
  explicit EventQueue(double tick_ms = 1.0);

  /// Schedules `action` at absolute time `at`. Times in the past (e.g.
  /// a negative delay from float drift) are clamped to now(): the action
  /// runs at the current clock, after already-pending events at now(),
  /// never silently before it.
  void schedule(double at, Action action);

  /// Schedules `action` `delay` after now().
  void schedule_in(double delay, Action action) {
    schedule(now_ + delay, std::move(action));
  }

  /// Like schedule(), but returns a handle for cancel()/reschedule().
  TimerId schedule_cancelable(double at, Action action);

  /// Cancels a pending event. Returns false if the handle is stale (the
  /// event already fired, was canceled, or was superseded by reschedule).
  bool cancel(TimerId id);

  /// Moves a pending event to a new absolute time (clamped to now() like
  /// schedule), keeping its callback but assigning a fresh tiebreak
  /// sequence number. Returns the new handle, or an invalid TimerId if
  /// `id` is stale.
  TimerId reschedule(TimerId id, double at);

  /// Whether the handle still refers to a pending event.
  bool pending(TimerId id) const;

  double now() const { return now_; }

  /// Attaches the observability profiler: when non-null, task dispatch in
  /// run_until is timed as obs::Phase::kDispatch (sampled; see
  /// obs/profile.hpp). Null (the default) costs one predictable branch
  /// per event.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }

  /// Runs events in time order until the queue drains or the next event
  /// lies beyond `t_end`; the clock finishes at min(t_end, last event).
  void run_until(double t_end);

  /// Runs events with `at` strictly before `t`, then advances the clock
  /// to `t` (clamped to now()). The sharded cluster engine uses this to
  /// splice externally-driven actions (scenario faults) between the
  /// events that precede them and the events at exactly their timestamp,
  /// matching the old single-queue ordering where construction-time fault
  /// events carried the lowest tiebreak sequence numbers.
  void run_before(double t);

  std::int64_t executed() const { return executed_; }

  /// Conservative lower bound on the earliest pending event's time:
  /// guaranteed <= the true minimum `at`, >= now(), +infinity when the
  /// queue is empty. The heap top is exact (stale heads are skimmed);
  /// wheel levels contribute slot-start times without walking chains,
  /// so the cost is O(slots) probes, not O(events). The sharded cluster
  /// engine uses this for conservative-DES lookahead: how far can every
  /// shard run before anything new can possibly be sent.
  double next_event_at_bound();

  /// Events currently pending (canceled-but-uncollected entries excluded).
  std::size_t size() const { return size_; }
  /// High-water mark of pending events over the queue's lifetime.
  std::size_t peak_size() const { return peak_size_; }

 private:
  static constexpr std::uint32_t kNullIndex = 0xffffffffu;
  static constexpr int kWheelBits = 8;
  static constexpr int kWheelSlots = 1 << kWheelBits;  // 256
  static constexpr int kWheelLevels = 3;               // 256^3 ticks span

  struct Event {
    double at = 0.0;
    std::int64_t seq = 0;
    InlineTask task;
    std::uint32_t gen = 0;    // bumped on release; detects stale TimerIds
    std::uint32_t next = kNullIndex;  // wheel chain / free list link
    bool armed = false;       // false once canceled or released
  };

  /// Lightweight heap entry; the task stays in the slab.
  struct Ref {
    double at;
    std::int64_t seq;
    std::uint32_t idx;
    std::uint32_t gen;
    bool operator>(const Ref& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  void run(double t_end, bool exclusive);
  std::uint32_t allocate(double at, Action action);
  void release(std::uint32_t idx);
  /// Files a slab event into the wheel, or into the ready heap when it
  /// is already inside the collected horizon or beyond the wheel range.
  void place(std::uint32_t idx);
  /// Tick index whose window contains `at` (floor, guarded against the
  /// division rounding up across a tick boundary).
  std::int64_t tick_for(double at) const;
  /// Moves the level-0 slot at the collected horizon into the ready
  /// heap and advances the horizon one tick, cascading coarser levels
  /// at window boundaries.
  void collect_slot();
  void cascade(int level);

  std::vector<Event> slab_;
  std::uint32_t free_head_ = kNullIndex;
  std::priority_queue<Ref, std::vector<Ref>, std::greater<>> ready_;
  std::uint32_t wheel_[kWheelLevels][kWheelSlots];
  std::int64_t wheel_count_ = 0;  // events currently filed in the wheel
  /// All events with tick < collected_tick_ are in the ready heap; the
  /// wheel only holds ticks >= collected_tick_.
  std::int64_t collected_tick_ = 0;
  double tick_ms_;

  obs::Profiler* profiler_ = nullptr;
  double now_ = 0.0;
  std::int64_t next_seq_ = 0;
  std::int64_t executed_ = 0;
  std::size_t size_ = 0;
  std::size_t peak_size_ = 0;
};

}  // namespace rfd::rt
