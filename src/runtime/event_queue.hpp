// Continuous-time discrete-event core for the runtime layer.
//
// The abstract model of src/sim uses a logical tick per step; the runtime
// layer instead simulates wall-clock behaviour (heartbeat periods, network
// delays in milliseconds) to evaluate what real timeout-based detectors
// deliver. Events carry a deterministic tiebreak sequence number so runs
// are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace rfd::rt {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `at` (>= now()).
  void schedule(double at, Action action);

  /// Schedules `action` `delay` after now().
  void schedule_in(double delay, Action action) {
    schedule(now_ + delay, std::move(action));
  }

  double now() const { return now_; }

  /// Runs events in time order until the queue drains or the next event
  /// lies beyond `t_end`; the clock finishes at min(t_end, last event).
  void run_until(double t_end);

  std::int64_t executed() const { return executed_; }

 private:
  struct Entry {
    double at;
    std::int64_t seq;
    Action action;
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  double now_ = 0.0;
  std::int64_t next_seq_ = 0;
  std::int64_t executed_ = 0;
};

}  // namespace rfd::rt
