#include "runtime/network.hpp"

#include "common/assert.hpp"

namespace rfd::rt {

Network::Network(EventQueue& queue, std::uint64_t seed, NetworkParams params)
    : queue_(&queue), rng_(seed), params_(params) {
  RFD_REQUIRE(params.min_delay_ms >= 0.0);
  RFD_REQUIRE(params.loss_prob >= 0.0 && params.loss_prob < 1.0);
}

double Network::sample_delay() {
  double delay =
      params_.min_delay_ms + rng_.lognormal(params_.jitter_mu,
                                            params_.jitter_sigma);
  if (queue_->now() < params_.gst_ms &&
      rng_.chance(params_.pre_gst_chaos_prob)) {
    delay += params_.pre_gst_extra_ms;
  }
  return delay;
}

void Network::send(NodeId /*from*/, NodeId /*to*/,
                   std::function<void()> deliver) {
  ++sent_;
  if (rng_.chance(params_.loss_prob)) {
    ++dropped_;
    return;
  }
  queue_->schedule_in(sample_delay(), std::move(deliver));
}

}  // namespace rfd::rt
