#include "runtime/network.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rfd::rt {

Network::Network(EventQueue& queue, std::uint64_t seed, NetworkParams params)
    : queue_(&queue), seed_(seed), rng_(seed), params_(params) {
  RFD_REQUIRE(params.min_delay_ms >= 0.0);
  RFD_REQUIRE(params.loss_prob >= 0.0 && params.loss_prob < 1.0);
}

Rng& Network::src_rng(NodeId from) {
  if (from < 0) return rng_;
  const std::size_t index = static_cast<std::size_t>(from);
  while (src_rngs_.size() <= index) {
    // Deterministic per-source seeding: stream k depends only on the
    // network seed and k, never on creation order or traffic history.
    src_rngs_.emplace_back(mix_seed(
        seed_, 0x50c5'0000u + static_cast<std::uint64_t>(src_rngs_.size())));
  }
  return src_rngs_[index];
}

void Network::save_rng_state(
    std::vector<std::array<std::uint64_t, 5>>& out) const {
  out.clear();
  out.reserve(src_rngs_.size() + 1);
  out.push_back(rng_.save_state());
  for (const Rng& rng : src_rngs_) out.push_back(rng.save_state());
}

void Network::restore_rng_state(
    const std::vector<std::array<std::uint64_t, 5>>& streams) {
  RFD_REQUIRE_MSG(!streams.empty(),
                  "network RNG restore needs at least the legacy stream");
  rng_.restore_state(streams.front());
  src_rngs_.clear();
  src_rngs_.reserve(streams.size() - 1);
  for (std::size_t i = 1; i < streams.size(); ++i) {
    src_rngs_.emplace_back(0);
    src_rngs_.back().restore_state(streams[i]);
  }
}

void Network::save_accounting(std::int64_t& sent, std::int64_t& dropped,
                              std::int64_t& partition_dropped,
                              std::int64_t& link_dropped) const {
  sent = sent_;
  dropped = dropped_;
  partition_dropped = partition_dropped_;
  link_dropped = link_dropped_;
}

void Network::restore_accounting(std::int64_t sent, std::int64_t dropped,
                                 std::int64_t partition_dropped,
                                 std::int64_t link_dropped) {
  sent_ = sent;
  dropped_ = dropped;
  partition_dropped_ = partition_dropped;
  link_dropped_ = link_dropped;
}

double Network::sample_delay(Rng& rng) {
  double delay =
      params_.min_delay_ms + rng.lognormal(params_.jitter_mu,
                                           params_.jitter_sigma);
  if (queue_->now() < params_.gst_ms &&
      rng.chance(params_.pre_gst_chaos_prob)) {
    delay += params_.pre_gst_extra_ms;
  }
  if (storm_extra_ms_ > 0.0 && rng.chance(storm_prob_)) {
    delay += storm_extra_ms_;
  }
  return delay;
}

double Network::sample_delay() { return sample_delay(rng_); }

int Network::component_of(NodeId node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= component_.size()) {
    return 0;
  }
  const int c = component_[static_cast<std::size_t>(node)];
  return c < 0 ? 0 : c;
}

void Network::set_partition(const std::vector<std::vector<NodeId>>& groups) {
  RFD_REQUIRE(!groups.empty());
  component_.clear();
  NodeId max_node = -1;
  for (const auto& group : groups) {
    for (NodeId node : group) {
      RFD_REQUIRE(node >= 0);
      max_node = std::max(max_node, node);
    }
  }
  component_.assign(static_cast<std::size_t>(max_node + 1), -1);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (NodeId node : groups[g]) {
      component_[static_cast<std::size_t>(node)] = static_cast<int>(g);
    }
  }
}

void Network::clear_partition() { component_.clear(); }

bool Network::partitioned(NodeId a, NodeId b) const {
  if (component_.empty()) return false;
  return component_of(a) != component_of(b);
}

namespace {

std::vector<NodeId> sorted_unique(const std::vector<NodeId>& ids) {
  std::vector<NodeId> out = ids;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<char> mask_of(const std::vector<NodeId>& ids) {
  std::vector<char> mask;
  for (const NodeId id : ids) {
    if (static_cast<std::size_t>(id) >= mask.size()) {
      mask.resize(static_cast<std::size_t>(id) + 1, 0);
    }
    mask[static_cast<std::size_t>(id)] = 1;
  }
  return mask;
}

bool in_mask(const std::vector<char>& mask, NodeId node) {
  return node >= 0 && static_cast<std::size_t>(node) < mask.size() &&
         mask[static_cast<std::size_t>(node)] != 0;
}

}  // namespace

void Network::add_link_block(const std::vector<NodeId>& from,
                             const std::vector<NodeId>& to) {
  RFD_REQUIRE(!from.empty() && !to.empty());
  for (const NodeId node : from) RFD_REQUIRE(node >= 0);
  for (const NodeId node : to) RFD_REQUIRE(node >= 0);
  LinkRule rule;
  rule.from_ids = sorted_unique(from);
  rule.to_ids = sorted_unique(to);
  rule.from_mask = mask_of(rule.from_ids);
  rule.to_mask = mask_of(rule.to_ids);
  link_rules_.push_back(std::move(rule));
}

bool Network::remove_link_block(const std::vector<NodeId>& from,
                                const std::vector<NodeId>& to) {
  const std::vector<NodeId> from_ids = sorted_unique(from);
  const std::vector<NodeId> to_ids = sorted_unique(to);
  for (auto it = link_rules_.begin(); it != link_rules_.end(); ++it) {
    if (it->from_ids == from_ids && it->to_ids == to_ids) {
      link_rules_.erase(it);
      return true;
    }
  }
  return false;
}

bool Network::link_blocked(NodeId a, NodeId b) const {
  for (const LinkRule& rule : link_rules_) {
    if (in_mask(rule.from_mask, a) && in_mask(rule.to_mask, b)) return true;
  }
  return false;
}

void Network::set_delay_factor(NodeId node, double factor) {
  RFD_REQUIRE(node >= 0);
  RFD_REQUIRE(factor > 0.0);
  if (static_cast<std::size_t>(node) >= delay_factor_.size()) {
    if (factor == 1.0) return;
    delay_factor_.resize(static_cast<std::size_t>(node) + 1, 1.0);
  }
  delay_factor_[static_cast<std::size_t>(node)] = factor;
}

double Network::delay_factor(NodeId node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= delay_factor_.size()) {
    return 1.0;
  }
  return delay_factor_[static_cast<std::size_t>(node)];
}

void Network::set_storm(double extra_ms, double prob) {
  RFD_REQUIRE(extra_ms >= 0.0);
  storm_extra_ms_ = extra_ms;
  storm_prob_ = prob;
}

void Network::clear_storm() {
  storm_extra_ms_ = 0.0;
  storm_prob_ = 0.0;
}

void Network::trace_drop(NodeId from, NodeId to, const char* why) {
  obs::Record r;
  r.type = obs::RecordType::kDrop;
  r.t = queue_->now();
  r.a = from;
  r.b = to;
  r.s = why;
  trace_->emit(r);
}

std::optional<double> Network::route(NodeId from, NodeId to) {
  obs::ScopedPhase phase(profiler_, obs::Phase::kRoute);
  ++sent_;
  if (partitioned(from, to)) {
    ++dropped_;
    ++partition_dropped_;
    if (trace_ != nullptr) trace_drop(from, to, "partition");
    return std::nullopt;
  }
  // Directed blocks are checked before any RNG draw, so installing or
  // removing one never shifts a sender's random stream.
  if (!link_rules_.empty() && link_blocked(from, to)) {
    ++dropped_;
    ++link_dropped_;
    if (trace_ != nullptr) trace_drop(from, to, "link");
    return std::nullopt;
  }
  Rng& rng = src_rng(from);
  if (rng.chance(params_.loss_prob)) {
    ++dropped_;
    if (trace_ != nullptr) trace_drop(from, to, "loss");
    return std::nullopt;
  }
  const double delay = sample_delay(rng);
  const double factor = delay_factor(from);
  return factor == 1.0 ? delay : delay * factor;
}

void Network::send(NodeId from, NodeId to, EventQueue::Action deliver) {
  if (const std::optional<double> delay = route(from, to)) {
    queue_->schedule_in(*delay, std::move(deliver));
  }
}

}  // namespace rfd::rt
