#include "runtime/network.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rfd::rt {

Network::Network(EventQueue& queue, std::uint64_t seed, NetworkParams params)
    : queue_(&queue), seed_(seed), rng_(seed), params_(params) {
  RFD_REQUIRE(params.min_delay_ms >= 0.0);
  RFD_REQUIRE(params.loss_prob >= 0.0 && params.loss_prob < 1.0);
}

Rng& Network::src_rng(NodeId from) {
  if (from < 0) return rng_;
  const std::size_t index = static_cast<std::size_t>(from);
  while (src_rngs_.size() <= index) {
    // Deterministic per-source seeding: stream k depends only on the
    // network seed and k, never on creation order or traffic history.
    src_rngs_.emplace_back(mix_seed(
        seed_, 0x50c5'0000u + static_cast<std::uint64_t>(src_rngs_.size())));
  }
  return src_rngs_[index];
}

double Network::sample_delay(Rng& rng) {
  double delay =
      params_.min_delay_ms + rng.lognormal(params_.jitter_mu,
                                           params_.jitter_sigma);
  if (queue_->now() < params_.gst_ms &&
      rng.chance(params_.pre_gst_chaos_prob)) {
    delay += params_.pre_gst_extra_ms;
  }
  if (storm_extra_ms_ > 0.0 && rng.chance(storm_prob_)) {
    delay += storm_extra_ms_;
  }
  return delay;
}

double Network::sample_delay() { return sample_delay(rng_); }

int Network::component_of(NodeId node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= component_.size()) {
    return 0;
  }
  const int c = component_[static_cast<std::size_t>(node)];
  return c < 0 ? 0 : c;
}

void Network::set_partition(const std::vector<std::vector<NodeId>>& groups) {
  RFD_REQUIRE(!groups.empty());
  component_.clear();
  NodeId max_node = -1;
  for (const auto& group : groups) {
    for (NodeId node : group) {
      RFD_REQUIRE(node >= 0);
      max_node = std::max(max_node, node);
    }
  }
  component_.assign(static_cast<std::size_t>(max_node + 1), -1);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (NodeId node : groups[g]) {
      component_[static_cast<std::size_t>(node)] = static_cast<int>(g);
    }
  }
}

void Network::clear_partition() { component_.clear(); }

bool Network::partitioned(NodeId a, NodeId b) const {
  if (component_.empty()) return false;
  return component_of(a) != component_of(b);
}

void Network::set_storm(double extra_ms, double prob) {
  RFD_REQUIRE(extra_ms >= 0.0);
  storm_extra_ms_ = extra_ms;
  storm_prob_ = prob;
}

void Network::clear_storm() {
  storm_extra_ms_ = 0.0;
  storm_prob_ = 0.0;
}

void Network::trace_drop(NodeId from, NodeId to, const char* why) {
  obs::Record r;
  r.type = obs::RecordType::kDrop;
  r.t = queue_->now();
  r.a = from;
  r.b = to;
  r.s = why;
  trace_->emit(r);
}

std::optional<double> Network::route(NodeId from, NodeId to) {
  obs::ScopedPhase phase(profiler_, obs::Phase::kRoute);
  ++sent_;
  if (partitioned(from, to)) {
    ++dropped_;
    ++partition_dropped_;
    if (trace_ != nullptr) trace_drop(from, to, "partition");
    return std::nullopt;
  }
  Rng& rng = src_rng(from);
  if (rng.chance(params_.loss_prob)) {
    ++dropped_;
    if (trace_ != nullptr) trace_drop(from, to, "loss");
    return std::nullopt;
  }
  return sample_delay(rng);
}

void Network::send(NodeId from, NodeId to, EventQueue::Action deliver) {
  if (const std::optional<double> delay = route(from, to)) {
    queue_->schedule_in(*delay, std::move(deliver));
  }
}

}  // namespace rfd::rt
