#include "runtime/event_queue.hpp"

#include "common/assert.hpp"

namespace rfd::rt {

void EventQueue::schedule(double at, Action action) {
  RFD_REQUIRE_MSG(at >= now_, "cannot schedule into the past");
  queue_.push({at, next_seq_++, std::move(action)});
}

void EventQueue::run_until(double t_end) {
  while (!queue_.empty() && queue_.top().at <= t_end) {
    // Copy out before popping: the action may schedule more events.
    Entry entry{queue_.top().at, queue_.top().seq,
                std::move(const_cast<Entry&>(queue_.top()).action)};
    queue_.pop();
    now_ = entry.at;
    ++executed_;
    entry.action();
  }
  now_ = t_end;
}

}  // namespace rfd::rt
