#include "runtime/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace rfd::rt {

EventQueue::EventQueue(double tick_ms) : tick_ms_(tick_ms) {
  RFD_REQUIRE(tick_ms > 0.0);
  for (auto& level : wheel_) {
    std::fill(std::begin(level), std::end(level), kNullIndex);
  }
}

std::int64_t EventQueue::tick_for(double at) const {
  std::int64_t tick = static_cast<std::int64_t>(at / tick_ms_);
  // The division can round up across a tick boundary; an event filed one
  // tick high could then run after later-timed events from the next slot.
  // Filing low is always safe (it only enters the ready heap earlier).
  if (static_cast<double>(tick) * tick_ms_ > at) --tick;
  return tick;
}

std::uint32_t EventQueue::allocate(double at, Action action) {
  std::uint32_t idx;
  if (free_head_ != kNullIndex) {
    idx = free_head_;
    free_head_ = slab_[idx].next;
  } else {
    idx = static_cast<std::uint32_t>(slab_.size());
    RFD_REQUIRE_MSG(idx != kNullIndex, "event slab exhausted");
    slab_.emplace_back();
  }
  Event& e = slab_[idx];
  e.at = at;
  e.seq = next_seq_++;
  e.task = std::move(action);
  e.next = kNullIndex;
  e.armed = true;
  ++size_;
  peak_size_ = std::max(peak_size_, size_);
  return idx;
}

void EventQueue::release(std::uint32_t idx) {
  Event& e = slab_[idx];
  e.task.reset();
  e.armed = false;
  ++e.gen;  // invalidates outstanding TimerIds and stale heap refs
  e.next = free_head_;
  free_head_ = idx;
}

void EventQueue::place(std::uint32_t idx) {
  const Event& e = slab_[idx];
  const std::int64_t tick = tick_for(e.at);
  const std::int64_t delta = tick - collected_tick_;
  if (delta < 0) {
    // Already inside the collected horizon: straight to the ready heap.
    ready_.push({e.at, e.seq, idx, e.gen});
    return;
  }
  std::int64_t span = kWheelSlots;
  for (int level = 0; level < kWheelLevels; ++level, span <<= kWheelBits) {
    if (delta < span) {
      const int slot =
          static_cast<int>((tick >> (level * kWheelBits)) & (kWheelSlots - 1));
      slab_[idx].next = wheel_[level][slot];
      wheel_[level][slot] = idx;
      ++wheel_count_;
      return;
    }
  }
  // Beyond the wheel range (> ~77 hours at the default granularity):
  // far-future fallback to the heap. The horizon guard in run_until keeps
  // it from running before uncollected wheel events.
  ready_.push({e.at, e.seq, idx, e.gen});
}

void EventQueue::cascade(int level) {
  if (level >= kWheelLevels) return;  // deeper events live in the heap
  if ((collected_tick_ & ((std::int64_t{1} << ((level + 1) * kWheelBits)) -
                          1)) == 0) {
    cascade(level + 1);
  }
  const int slot = static_cast<int>(
      (collected_tick_ >> (level * kWheelBits)) & (kWheelSlots - 1));
  std::uint32_t idx = wheel_[level][slot];
  wheel_[level][slot] = kNullIndex;
  while (idx != kNullIndex) {
    const std::uint32_t next = slab_[idx].next;
    --wheel_count_;
    if (slab_[idx].armed) {
      place(idx);  // re-files into a finer level (or the ready heap)
    } else {
      release(idx);  // canceled while waiting: reclaim lazily
    }
    idx = next;
  }
}

void EventQueue::collect_slot() {
  if ((collected_tick_ & (kWheelSlots - 1)) == 0) cascade(1);
  const int slot = static_cast<int>(collected_tick_ & (kWheelSlots - 1));
  std::uint32_t idx = wheel_[0][slot];
  wheel_[0][slot] = kNullIndex;
  while (idx != kNullIndex) {
    const std::uint32_t next = slab_[idx].next;
    --wheel_count_;
    Event& e = slab_[idx];
    if (e.armed) {
      e.next = kNullIndex;
      ready_.push({e.at, e.seq, idx, e.gen});
    } else {
      release(idx);
    }
    idx = next;
  }
  ++collected_tick_;
}

void EventQueue::schedule(double at, Action action) {
  RFD_REQUIRE_MSG(std::isfinite(at), "event time must be finite");
  if (at < now_) at = now_;  // clamp: runs at the current clock, in order
  place(allocate(at, std::move(action)));
}

EventQueue::TimerId EventQueue::schedule_cancelable(double at, Action action) {
  RFD_REQUIRE_MSG(std::isfinite(at), "event time must be finite");
  if (at < now_) at = now_;
  const std::uint32_t idx = allocate(at, std::move(action));
  const TimerId id{idx, slab_[idx].gen};
  place(idx);
  return id;
}

bool EventQueue::pending(TimerId id) const {
  return id.slot != kNullIndex && id.slot < slab_.size() &&
         slab_[id.slot].gen == id.gen && slab_[id.slot].armed;
}

bool EventQueue::cancel(TimerId id) {
  if (!pending(id)) return false;
  Event& e = slab_[id.slot];
  e.armed = false;   // carrier (wheel chain or heap ref) reclaims lazily
  e.task.reset();
  --size_;
  return true;
}

EventQueue::TimerId EventQueue::reschedule(TimerId id, double at) {
  if (!pending(id)) return TimerId{};
  Event& e = slab_[id.slot];
  Action task = std::move(e.task);
  e.armed = false;
  --size_;
  return schedule_cancelable(at, std::move(task));
}

void EventQueue::run_until(double t_end) { run(t_end, /*exclusive=*/false); }

void EventQueue::run_before(double t) {
  if (t < now_) t = now_;  // never rewind the clock
  run(t, /*exclusive=*/true);
}

void EventQueue::run(double t_end, bool exclusive) {
  const auto runnable = [&](double at) {
    return exclusive ? at < t_end : at <= t_end;
  };
  for (;;) {
    const double horizon = static_cast<double>(collected_tick_) * tick_ms_;
    while (!ready_.empty()) {
      const Ref top = ready_.top();
      if (!runnable(top.at) || top.at >= horizon) break;
      ready_.pop();
      Event& e = slab_[top.idx];
      if (e.gen != top.gen) continue;  // slot already reused: stale ref
      if (!e.armed) {
        release(top.idx);  // canceled while queued
        continue;
      }
      InlineTask task = std::move(e.task);
      release(top.idx);
      --size_;
      now_ = top.at;
      ++executed_;
      {
        obs::ScopedPhase phase(profiler_, obs::Phase::kDispatch);
        task();  // may schedule more events, including at now()
      }
    }
    if (wheel_count_ == 0) {
      if (ready_.empty() || !runnable(ready_.top().at)) break;
      // Nothing between the horizon and the next heap event: jump the
      // horizon straight past it instead of walking empty slots.
      collected_tick_ =
          std::max(collected_tick_, tick_for(ready_.top().at) + 1);
      continue;
    }
    // Inclusive runs must collect the slot containing t_end itself;
    // exclusive runs only need events strictly below it (everything with
    // at < horizon is already in the ready heap).
    if (exclusive ? horizon >= t_end : horizon > t_end) break;
    collect_slot();
  }
  now_ = t_end;
}

double EventQueue::next_event_at_bound() {
  // Skim canceled/stale refs off the heap so the top is a live event.
  while (!ready_.empty()) {
    const Ref top = ready_.top();
    Event& e = slab_[top.idx];
    if (e.gen == top.gen && e.armed) break;
    ready_.pop();
    if (e.gen == top.gen) release(top.idx);
  }
  double bound = std::numeric_limits<double>::infinity();
  if (!ready_.empty()) bound = ready_.top().at;
  if (wheel_count_ > 0) {
    // Every level can hold the global minimum (coarser levels keep
    // events until their slot boundary cascades), so take the min of
    // each level's first occupied slot-start. Slot starts only ever
    // under-estimate an occupant's time, which keeps the bound
    // conservative; canceled occupants likewise only lower it.
    for (int level = 0; level < kWheelLevels; ++level) {
      const int shift = level * kWheelBits;
      const std::int64_t level_tick = collected_tick_ >> shift;
      for (int j = 0; j < kWheelSlots; ++j) {
        const std::int64_t t = level_tick + j;
        if (wheel_[level][t & (kWheelSlots - 1)] == kNullIndex) continue;
        const std::int64_t first = std::max(collected_tick_, t << shift);
        bound = std::min(bound, static_cast<double>(first) * tick_ms_);
        break;
      }
    }
  }
  return std::max(bound, now_);
}

}  // namespace rfd::rt
