#include "runtime/detectors.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace rfd::rt {
namespace {

/// Solves erfc(x) = y for x by bisection (erfc is strictly decreasing).
/// Returns the lower bracket end, so the caller's derived deadline errs
/// early - a deadline that fires a hair before the true crossing costs
/// one spurious suspects() query; one that fires after misses it.
double inverse_erfc(double y) {
  double lo = -6.0;   // erfc(-6) ~ 2
  double hi = 28.0;   // erfc(28) underflows to 0
  for (int i = 0; i < 120; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (std::erfc(mid) >= y) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

FixedTimeoutDetector::FixedTimeoutDetector(FixedTimeoutParams params)
    : params_(params) {
  RFD_REQUIRE(params.timeout_ms > 0.0);
}

void FixedTimeoutDetector::on_heartbeat(double now) { last_heartbeat_ = now; }

bool FixedTimeoutDetector::suspects(double now) const {
  if (last_heartbeat_ < 0.0) {
    // Grace period measured from time 0 until the first heartbeat.
    return now > params_.timeout_ms;
  }
  return now - last_heartbeat_ > params_.timeout_ms;
}

double FixedTimeoutDetector::suspect_deadline() const {
  if (last_heartbeat_ < 0.0) return params_.timeout_ms;
  return last_heartbeat_ + params_.timeout_ms;
}

void FixedTimeoutDetector::save_state(std::vector<double>& out) const {
  out.push_back(last_heartbeat_);
}

bool FixedTimeoutDetector::restore_state(const double*& cursor,
                                         const double* end) {
  if (end - cursor < 1) return false;
  last_heartbeat_ = *cursor++;
  return true;
}

ChenAdaptiveDetector::ChenAdaptiveDetector(ChenAdaptiveParams params)
    : params_(params) {
  RFD_REQUIRE(params.window >= 2);
  RFD_REQUIRE(params.alpha_ms > 0.0);
}

void ChenAdaptiveDetector::on_heartbeat(double now) {
  arrivals_.push_back(now);
  while (static_cast<int>(arrivals_.size()) > params_.window) {
    arrivals_.pop_front();
  }
  if (arrivals_.size() >= 2) {
    // Chen-Toueg NFD-E: EA = mean inter-arrival extrapolated from the
    // window's first arrival, advanced one period past the latest.
    const double span = arrivals_.back() - arrivals_.front();
    const double period =
        span / static_cast<double>(arrivals_.size() - 1);
    expected_arrival_ = arrivals_.back() + period;
  } else {
    expected_arrival_ = -1.0;
  }
}

bool ChenAdaptiveDetector::suspects(double now) const {
  if (arrivals_.empty()) {
    return now > params_.fallback_timeout_ms;
  }
  if (expected_arrival_ < 0.0) {
    return now - arrivals_.back() > params_.fallback_timeout_ms;
  }
  return now > expected_arrival_ + params_.alpha_ms;
}

double ChenAdaptiveDetector::suspect_deadline() const {
  if (arrivals_.empty()) return params_.fallback_timeout_ms;
  if (expected_arrival_ < 0.0) {
    return arrivals_.back() + params_.fallback_timeout_ms;
  }
  return expected_arrival_ + params_.alpha_ms;
}

void ChenAdaptiveDetector::save_state(std::vector<double>& out) const {
  out.push_back(expected_arrival_);
  out.push_back(static_cast<double>(arrivals_.size()));
  out.insert(out.end(), arrivals_.begin(), arrivals_.end());
}

bool ChenAdaptiveDetector::restore_state(const double*& cursor,
                                         const double* end) {
  if (end - cursor < 2) return false;
  const double expected = cursor[0];
  const double count_d = cursor[1];
  cursor += 2;
  if (!(count_d >= 0.0) || count_d > static_cast<double>(params_.window)) {
    return false;
  }
  const std::size_t count = static_cast<std::size_t>(count_d);
  if (static_cast<std::size_t>(end - cursor) < count) return false;
  expected_arrival_ = expected;
  arrivals_.assign(cursor, cursor + count);
  cursor += count;
  return true;
}

PhiAccrualDetector::PhiAccrualDetector(PhiAccrualParams params)
    : params_(params) {
  RFD_REQUIRE(params.window >= 2);
  RFD_REQUIRE(params.threshold > 0.0);
  // suspects() fires when phi > threshold, i.e. when the normal tail
  // 0.5*erfc(z/sqrt(2)) drops below 10^-threshold; invert once here.
  const double tail = std::pow(10.0, -params.threshold);
  z_threshold_ = std::sqrt(2.0) * inverse_erfc(2.0 * tail);
}

void PhiAccrualDetector::on_heartbeat(double now) {
  if (last_heartbeat_ >= 0.0) {
    intervals_.push_back(now - last_heartbeat_);
    while (static_cast<int>(intervals_.size()) > params_.window) {
      intervals_.pop_front();
    }
    double sum = 0.0;
    for (double x : intervals_) sum += x;
    mean_ = sum / static_cast<double>(intervals_.size());
    double sq = 0.0;
    for (double x : intervals_) sq += (x - mean_) * (x - mean_);
    var_ = intervals_.size() > 1
               ? sq / static_cast<double>(intervals_.size() - 1)
               : 0.0;
  }
  last_heartbeat_ = now;
}

double PhiAccrualDetector::phi(double now) const {
  if (last_heartbeat_ < 0.0 || intervals_.empty()) {
    return 0.0;
  }
  const double elapsed = now - last_heartbeat_;
  const double stddev =
      std::max(std::sqrt(var_), params_.min_stddev_ms);
  // P(inter-arrival > elapsed) under a normal fit; phi = -log10 of it.
  const double z = (elapsed - mean_) / stddev;
  // Complementary CDF via erfc; clamp to avoid -log10(0).
  double tail = 0.5 * std::erfc(z / std::sqrt(2.0));
  tail = std::max(tail, 1e-300);
  return -std::log10(tail);
}

bool PhiAccrualDetector::suspects(double now) const {
  if (last_heartbeat_ < 0.0) {
    // Grace period measured from time 0 until the first heartbeat.
    return now > params_.fallback_timeout_ms;
  }
  if (intervals_.empty()) {
    // One heartbeat seen, no interval yet: fall back to a fixed window
    // from that arrival (mirrors ChenAdaptiveDetector's warm-up).
    return now - last_heartbeat_ > params_.fallback_timeout_ms;
  }
  return phi(now) > params_.threshold;
}

double PhiAccrualDetector::suspect_deadline() const {
  if (last_heartbeat_ < 0.0) return params_.fallback_timeout_ms;
  if (intervals_.empty()) {
    return last_heartbeat_ + params_.fallback_timeout_ms;
  }
  const double stddev = std::max(std::sqrt(var_), params_.min_stddev_ms);
  return last_heartbeat_ + mean_ + stddev * z_threshold_;
}

void PhiAccrualDetector::save_state(std::vector<double>& out) const {
  // z_threshold_ is derived from the params at construction; only the
  // observed-timing state travels.
  out.push_back(last_heartbeat_);
  out.push_back(mean_);
  out.push_back(var_);
  out.push_back(static_cast<double>(intervals_.size()));
  out.insert(out.end(), intervals_.begin(), intervals_.end());
}

bool PhiAccrualDetector::restore_state(const double*& cursor,
                                       const double* end) {
  if (end - cursor < 4) return false;
  const double last = cursor[0];
  const double mean = cursor[1];
  const double var = cursor[2];
  const double count_d = cursor[3];
  cursor += 4;
  if (!(count_d >= 0.0) || count_d > static_cast<double>(params_.window)) {
    return false;
  }
  const std::size_t count = static_cast<std::size_t>(count_d);
  if (static_cast<std::size_t>(end - cursor) < count) return false;
  last_heartbeat_ = last;
  mean_ = mean;
  var_ = var;
  intervals_.assign(cursor, cursor + count);
  cursor += count;
  return true;
}

std::unique_ptr<PeerDetector> make_detector(const DetectorParams& params) {
  switch (params.kind) {
    case DetectorKind::kFixed:
      return std::make_unique<FixedTimeoutDetector>(params.fixed);
    case DetectorKind::kChen:
      return std::make_unique<ChenAdaptiveDetector>(params.chen);
    case DetectorKind::kPhi:
      return std::make_unique<PhiAccrualDetector>(params.phi);
  }
  RFD_UNREACHABLE("unknown detector kind");
}

std::string detector_kind_name(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kFixed:
      return "fixed";
    case DetectorKind::kChen:
      return "chen";
    case DetectorKind::kPhi:
      return "phi";
  }
  return "?";
}

}  // namespace rfd::rt
