// Chen-Toueg style QoS evaluation of timeout-based detectors (experiment
// E9).
//
// One monitored peer sends heartbeats every interval_ms through the
// simulated network; one monitor runs a detector instance and is polled on
// a fine grid. Ground truth (the peer's crash time) yields:
//   detection_time_ms      - crash -> first suspicion that never retracts;
//   mistake_rate_per_s     - false S-transitions per second of pre-crash
//                            runtime (lambda_M);
//   avg_mistake_duration_ms- mean length of false-suspicion periods (T_M);
//   query_accuracy         - fraction of pre-crash poll instants with the
//                            correct "trust" output (P_A).
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "obs/trace_writer.hpp"
#include "runtime/detectors.hpp"
#include "runtime/network.hpp"

namespace rfd::rt {

struct QosConfig {
  DetectorParams detector;
  NetworkParams network;
  double heartbeat_interval_ms = 100.0;
  double duration_ms = 60'000.0;
  /// Peer crash time; <= 0 or >= duration means the peer never crashes.
  double crash_at_ms = 40'000.0;
  double poll_interval_ms = 5.0;
  /// Optional trace sink (not owned). When set, the experiment emits one
  /// "arrival" record per delivered heartbeat (with the inter-arrival
  /// gap) and one "verdict" record per polled suspicion flip, tagged with
  /// trace_run_id so sweep runs can share a stream.
  obs::TraceWriter* trace = nullptr;
  std::int64_t trace_run_id = 0;
};

struct QosResult {
  bool crashed = false;
  double detection_time_ms = -1.0;  // -1: crash never detected in window
  std::int64_t false_transitions = 0;
  double mistake_rate_per_s = 0.0;
  double avg_mistake_duration_ms = 0.0;
  double query_accuracy = 1.0;
  std::int64_t heartbeats_sent = 0;
  std::int64_t heartbeats_lost = 0;
};

/// Runs one monitor/peer QoS experiment.
QosResult run_qos_experiment(const QosConfig& config, std::uint64_t seed);

/// Averages `runs` seeded experiments (seed, seed+1, ...).
struct QosAggregate {
  Summary detection_time_ms;
  Summary mistake_rate_per_s;
  Summary avg_mistake_duration_ms;
  Summary query_accuracy;
  std::int64_t undetected_crashes = 0;
};

QosAggregate run_qos_sweep(const QosConfig& config, std::uint64_t seed,
                           int runs);

}  // namespace rfd::rt
