#include "runtime/qos.hpp"

#include <functional>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace rfd::rt {

QosResult run_qos_experiment(const QosConfig& config, std::uint64_t seed) {
  EventQueue queue;
  Network network(queue, mix_seed(seed, 0x9051), config.network);
  auto detector = make_detector(config.detector);

  const bool peer_crashes =
      config.crash_at_ms > 0.0 && config.crash_at_ms < config.duration_ms;

  QosResult result;
  result.crashed = peer_crashes;

  // Heartbeat pump: the peer (node 1) sends to the monitor (node 0) until
  // it crashes.
  double last_arrival = -1.0;
  std::function<void()> pump = [&] {
    const double now = queue.now();
    if (peer_crashes && now >= config.crash_at_ms) return;
    network.send(1, 0, [&] {
      const double at = queue.now();
      detector->on_heartbeat(at);
      if (config.trace != nullptr) {
        obs::Record r;
        r.type = obs::RecordType::kArrival;
        r.t = at;
        r.a = static_cast<std::int32_t>(config.trace_run_id);
        r.x = last_arrival >= 0.0 ? at - last_arrival : 0.0;
        config.trace->emit(r);
      }
      last_arrival = at;
    });
    queue.schedule_in(config.heartbeat_interval_ms, pump);
  };
  queue.schedule(0.0, pump);

  // Polling loop: observe the detector on a fine grid.
  bool prev_suspect = false;
  double mistake_started = -1.0;
  double mistake_total = 0.0;
  std::int64_t polls_pre_crash = 0;
  std::int64_t correct_pre_crash = 0;
  double first_stable_suspicion = -1.0;

  std::function<void()> poll = [&] {
    const double now = queue.now();
    const bool suspect = detector->suspects(now);
    const bool peer_alive = !peer_crashes || now < config.crash_at_ms;

    if (config.trace != nullptr && suspect != prev_suspect) {
      obs::Record r;
      r.type = obs::RecordType::kVerdict;
      r.t = now;
      r.a = static_cast<std::int32_t>(config.trace_run_id);
      r.c = suspect ? 1 : 0;
      config.trace->emit(r);
    }

    if (peer_alive) {
      ++polls_pre_crash;
      if (!suspect) ++correct_pre_crash;
      if (suspect && !prev_suspect) {
        ++result.false_transitions;
        mistake_started = now;
      }
      if (!suspect && prev_suspect && mistake_started >= 0.0) {
        mistake_total += now - mistake_started;
        mistake_started = -1.0;
      }
    } else {
      if (suspect && first_stable_suspicion < 0.0) {
        first_stable_suspicion = now;
      }
      if (!suspect) {
        first_stable_suspicion = -1.0;  // retracted: not stable yet
      }
    }
    prev_suspect = suspect;
    if (now + config.poll_interval_ms <= config.duration_ms) {
      queue.schedule_in(config.poll_interval_ms, poll);
    }
  };
  queue.schedule(0.0, poll);

  queue.run_until(config.duration_ms);

  // Close an open mistake period at the crash boundary.
  if (mistake_started >= 0.0 && peer_crashes) {
    mistake_total += config.crash_at_ms - mistake_started;
  }

  const double pre_crash_span =
      peer_crashes ? config.crash_at_ms : config.duration_ms;
  result.mistake_rate_per_s =
      pre_crash_span > 0.0
          ? static_cast<double>(result.false_transitions) /
                (pre_crash_span / 1000.0)
          : 0.0;
  result.avg_mistake_duration_ms =
      result.false_transitions > 0
          ? mistake_total / static_cast<double>(result.false_transitions)
          : 0.0;
  result.query_accuracy =
      polls_pre_crash > 0 ? static_cast<double>(correct_pre_crash) /
                                static_cast<double>(polls_pre_crash)
                          : 1.0;
  if (peer_crashes && first_stable_suspicion >= 0.0) {
    result.detection_time_ms = first_stable_suspicion - config.crash_at_ms;
  }
  result.heartbeats_sent = network.sent();
  result.heartbeats_lost = network.dropped();
  return result;
}

QosAggregate run_qos_sweep(const QosConfig& config, std::uint64_t seed,
                           int runs) {
  RFD_REQUIRE(runs > 0);
  QosAggregate agg;
  for (int i = 0; i < runs; ++i) {
    QosConfig run_config = config;
    // Each seeded run gets its own id so sweeps can share one stream.
    run_config.trace_run_id = config.trace_run_id + i;
    const QosResult r = run_qos_experiment(
        run_config, mix_seed(seed, static_cast<std::uint64_t>(i)));
    if (r.crashed) {
      if (r.detection_time_ms >= 0.0) {
        agg.detection_time_ms.add(r.detection_time_ms);
      } else {
        ++agg.undetected_crashes;
      }
    }
    agg.mistake_rate_per_s.add(r.mistake_rate_per_s);
    agg.avg_mistake_duration_ms.add(r.avg_mistake_duration_ms);
    agg.query_accuracy.add(r.query_accuracy);
  }
  return agg;
}

}  // namespace rfd::rt
