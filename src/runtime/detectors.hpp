// Timeout-based failure detector implementations over heartbeats.
//
// These are the "realistic failure detectors" as deployed systems build
// them - <>P-grade at best: they can always be wrong before the network
// stabilizes. Three classics are provided:
//
//   FixedTimeoutDetector  - suspect after a constant silence window;
//   ChenAdaptiveDetector  - Chen-Toueg NFD-E style: estimate the next
//                           heartbeat arrival from a sliding window of
//                           past arrivals and add a safety margin alpha;
//   PhiAccrualDetector    - Hayashibara-style accrual detector: suspicion
//                           level phi = -log10 P(heartbeat still pending),
//                           with inter-arrival times fitted by a normal
//                           distribution; suspect when phi exceeds a
//                           threshold.
//
// Each detector instance monitors ONE peer. A node composes one instance
// per peer (see qos.cpp / membership.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace rfd::rt {

class PeerDetector {
 public:
  virtual ~PeerDetector() = default;

  /// Records a heartbeat from the monitored peer at time `now` (ms).
  virtual void on_heartbeat(double now) = 0;

  /// Whether the peer is suspected at time `now`.
  virtual bool suspects(double now) const = 0;

  /// The expiry deadline D (absolute ms): absent further heartbeats,
  /// suspects(t) holds exactly for t > D. Suspicion is monotone between
  /// heartbeats, so a scheduler can register one cancelable deadline per
  /// peer instead of polling suspects() on a grid; a heartbeat may move D
  /// in either direction (an adaptive window can tighten), so re-query
  /// after every on_heartbeat.
  virtual double suspect_deadline() const = 0;

  virtual std::string name() const = 0;

  /// Checkpoint hooks: append the detector's *mutable* timing state to
  /// `out` (parameters come back from config at reconstruction, derived
  /// constants are recomputed by the constructor). Variable-length
  /// windows encode a leading element count, so states concatenate into
  /// one flat stream. restore_state() consumes from `cursor`, advancing
  /// it past this detector's slice; it returns false (leaving the
  /// detector unchanged or partially restored - callers discard it on
  /// failure) when the stream is truncated or violates the window bound.
  virtual void save_state(std::vector<double>& out) const = 0;
  virtual bool restore_state(const double*& cursor, const double* end) = 0;
};

struct FixedTimeoutParams {
  double timeout_ms = 500.0;
};

class FixedTimeoutDetector final : public PeerDetector {
 public:
  explicit FixedTimeoutDetector(FixedTimeoutParams params);

  void on_heartbeat(double now) override;
  bool suspects(double now) const override;
  double suspect_deadline() const override;
  std::string name() const override { return "fixed"; }
  void save_state(std::vector<double>& out) const override;
  bool restore_state(const double*& cursor, const double* end) override;

 private:
  FixedTimeoutParams params_;
  double last_heartbeat_ = -1.0;  // -1 = none yet (grace until first)
};

struct ChenAdaptiveParams {
  int window = 16;           // arrivals remembered
  double alpha_ms = 100.0;   // safety margin added to the estimated arrival
  double fallback_timeout_ms = 1000.0;  // before the first heartbeat
};

class ChenAdaptiveDetector final : public PeerDetector {
 public:
  explicit ChenAdaptiveDetector(ChenAdaptiveParams params);

  void on_heartbeat(double now) override;
  bool suspects(double now) const override;
  double suspect_deadline() const override;
  std::string name() const override { return "chen"; }
  void save_state(std::vector<double>& out) const override;
  bool restore_state(const double*& cursor, const double* end) override;

  /// Expected arrival time of the next heartbeat (for diagnostics).
  double expected_arrival() const { return expected_arrival_; }

 private:
  ChenAdaptiveParams params_;
  std::deque<double> arrivals_;
  double expected_arrival_ = -1.0;
};

struct PhiAccrualParams {
  int window = 32;
  double threshold = 8.0;          // suspect when phi exceeds this
  double min_stddev_ms = 10.0;     // variance floor for early samples
  double fallback_timeout_ms = 1000.0;
};

class PhiAccrualDetector final : public PeerDetector {
 public:
  explicit PhiAccrualDetector(PhiAccrualParams params);

  void on_heartbeat(double now) override;
  bool suspects(double now) const override;
  double suspect_deadline() const override;
  std::string name() const override { return "phi"; }
  void save_state(std::vector<double>& out) const override;
  bool restore_state(const double*& cursor, const double* end) override;

  /// Current suspicion level phi at time `now`.
  double phi(double now) const;

 private:
  PhiAccrualParams params_;
  std::deque<double> intervals_;
  double last_heartbeat_ = -1.0;
  double mean_ = 0.0;
  double var_ = 0.0;
  /// z-score at which phi crosses the threshold under the normal fit,
  /// solved once at construction: the deadline is then
  /// last_heartbeat + mean + stddev * z in O(1) per query.
  double z_threshold_ = 0.0;
};

enum class DetectorKind { kFixed, kChen, kPhi };

struct DetectorParams {
  DetectorKind kind = DetectorKind::kChen;
  FixedTimeoutParams fixed;
  ChenAdaptiveParams chen;
  PhiAccrualParams phi;
};

std::unique_ptr<PeerDetector> make_detector(const DetectorParams& params);
std::string detector_kind_name(DetectorKind kind);

}  // namespace rfd::rt
