// A group membership service that emulates a Perfect failure detector by
// exclusion - the paper's explanation (Section 1.3) for why reliable
// systems get away with unreliable timeouts:
//
//   "when a process is suspected, i.e., timed-out, it is excluded from the
//    group: every suspicion hence turns out to be accurate."
//
// Nodes heartbeat the members of their current view. The acting
// coordinator (the smallest view member it does not suspect... itself)
// turns detector suspicions into view changes; a node that learns it was
// excluded halts (process-controlled crash). Within the group abstraction
// the suspicion list - the complement of the view - is therefore Perfect:
// complete (crashed members stop heartbeating and get excluded) and
// accurate *by construction* (excluded members are dead or about to be).
// The honest cost shows up as false exclusions: live nodes sacrificed to
// keep the abstraction's accuracy, measured here against the detector
// tuning (experiment E8).
//
// The view-adoption rule (highest (view id, -proposer) wins) is the
// primary-partition simplification of consensus-based view agreement; the
// abstract layer (src/algo) carries the full consensus-based construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "runtime/detectors.hpp"
#include "runtime/network.hpp"

namespace rfd::rt {

struct MembershipConfig {
  NodeId n = 6;
  DetectorParams detector;
  NetworkParams network;
  double heartbeat_interval_ms = 100.0;
  double check_interval_ms = 50.0;
  double duration_ms = 60'000.0;
  /// Per-node crash time; <= 0 means the node never crashes. Empty means
  /// nobody crashes.
  std::vector<double> crash_at_ms;
};

struct MembershipResult {
  std::int64_t exclusions = 0;
  /// Exclusions whose target was actually alive when proposed (detector
  /// mistakes turned into sacrifices).
  std::int64_t false_exclusions = 0;
  /// Excluded nodes that learned of it and halted.
  std::int64_t self_terminations = 0;
  /// Crash -> first view installed (at the proposer) without the victim.
  Summary exclusion_latency_ms;
  /// All active (alive, not halted) nodes ended with identical views that
  /// contain exactly the active nodes.
  bool converged = false;
  /// Every exclusion is accurate by the end of the run: the excluded node
  /// crashed or halted (the paper's emulation claim).
  bool suspicions_accurate = false;
  std::string final_view;
};

MembershipResult run_membership_experiment(const MembershipConfig& config,
                                           std::uint64_t seed);

}  // namespace rfd::rt
