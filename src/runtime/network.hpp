// The simulated partially synchronous network for the runtime layer.
//
// Delays are min_delay + lognormal jitter; messages are lost independently
// with loss_prob. Before `gst_ms` (the Global Stabilization Time of the
// partial-synchrony literature) an extra delay penalty applies with
// probability chaos_prob, modelling the unstable period during which even
// well-tuned timeouts misfire - precisely the regime that produces the
// false suspicions the paper's group-membership discussion is about.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "obs/trace_writer.hpp"
#include "runtime/event_queue.hpp"

namespace rfd::rt {

using NodeId = std::int32_t;

struct NetworkParams {
  double min_delay_ms = 0.5;
  double jitter_mu = 0.0;      // lognormal mu of the jitter component (ms)
  double jitter_sigma = 0.6;   // lognormal sigma
  double loss_prob = 0.0;
  double gst_ms = 0.0;         // 0 = stable from the start
  double pre_gst_extra_ms = 0.0;
  double pre_gst_chaos_prob = 0.3;
};

class Network {
 public:
  Network(EventQueue& queue, std::uint64_t seed, NetworkParams params);

  /// Draws the fate of one message from `from` to `to`: the delivery
  /// delay in ms, or nullopt when the message is dropped (partition cut,
  /// random loss). Updates sent/dropped accounting either way. Callers on
  /// hot paths use this *before* materializing any delivery record, so a
  /// dropped message costs no allocation; the partition/loss/storm
  /// verdicts and the delay are drawn in a fixed RNG order, so runs are
  /// reproducible regardless of which entry point is used.
  ///
  /// Randomness is drawn from a per-source stream (derived from the
  /// network seed and `from`), so the verdict/delay sequence each sender
  /// sees depends only on its own send history - the property that lets
  /// the sharded cluster engine replicate one logical network across
  /// shard-local instances and stay bit-for-bit identical for any shard
  /// count. A negative `from` falls back to the shared legacy stream.
  std::optional<double> route(NodeId from, NodeId to);

  /// Sends a message; `deliver` runs at the arrival time unless the
  /// message is dropped. Delivery respects per-message independent delay
  /// (no FIFO guarantee, like UDP heartbeats). While a partition is
  /// installed, messages crossing component boundaries are dropped.
  /// Convenience wrapper over route() for callers whose closures are
  /// cheap to build.
  void send(NodeId from, NodeId to, EventQueue::Action deliver);

  /// One sample of the current delay distribution (for analysis).
  double sample_delay();

  /// Installs a partition: nodes in different `groups` entries cannot
  /// exchange messages until heal. Nodes absent from every group behave
  /// as members of groups[0]. Replaces any previous partition.
  void set_partition(const std::vector<std::vector<NodeId>>& groups);

  /// Removes the partition; all links work again.
  void clear_partition();

  /// Whether a message from `a` to `b` currently crosses a partition cut.
  bool partitioned(NodeId a, NodeId b) const;

  /// Installs a *directed* block: messages from any node in `from` to any
  /// node in `to` are dropped until the matching remove. Rules stack (and
  /// compose with the component partition), which is what asymmetric
  /// partitions and flapping links are made of: a one-way cut is a single
  /// rule, a symmetric flap is a rule pair toggled on a schedule.
  void add_link_block(const std::vector<NodeId>& from,
                      const std::vector<NodeId>& to);

  /// Removes the first installed rule with exactly these endpoint sets;
  /// returns false when no such rule is installed.
  bool remove_link_block(const std::vector<NodeId>& from,
                         const std::vector<NodeId>& to);

  /// Whether a message from `a` to `b` currently hits a directed block.
  bool link_blocked(NodeId a, NodeId b) const;

  /// Slow-but-alive ("performance failure"): every delay drawn for a
  /// message *sent by* `node` is multiplied by `factor` (1.0 = normal).
  /// The factor scales the sampled delay after all RNG draws, so toggling
  /// slowness never perturbs any random stream - runs with and without a
  /// slow node stay draw-for-draw aligned.
  void set_delay_factor(NodeId node, double factor);
  double delay_factor(NodeId node) const;

  /// Starts a delay storm: until cleared, each message independently
  /// suffers `extra_ms` additional delay with probability `prob`. Models
  /// transient congestion episodes (the pre-GST penalty is the permanent
  /// variant; this one is scriptable mid-run).
  void set_storm(double extra_ms, double prob);
  void clear_storm();

  std::int64_t sent() const { return sent_; }
  std::int64_t dropped() const { return dropped_; }
  /// Drops attributable to the installed partition (subset of dropped()).
  std::int64_t partition_dropped() const { return partition_dropped_; }
  /// Drops attributable to directed link blocks (subset of dropped()).
  std::int64_t link_dropped() const { return link_dropped_; }

  /// Checkpoint hooks: the verdict/delay RNG streams (the shared legacy
  /// stream first, then every lazily created per-source stream) plus the
  /// sent/dropped accounting. Fault state (partitions, link rules, slow
  /// factors, storm) is intentionally NOT saved - it is a pure function
  /// of the scenario timeline, which a resuming driver replays up to the
  /// checkpoint time. Restoring makes this network draw the exact
  /// verdict/delay sequence the saved one would have drawn next.
  void save_rng_state(std::vector<std::array<std::uint64_t, 5>>& out) const;
  void restore_rng_state(
      const std::vector<std::array<std::uint64_t, 5>>& streams);
  void save_accounting(std::int64_t& sent, std::int64_t& dropped,
                       std::int64_t& partition_dropped,
                       std::int64_t& link_dropped) const;
  void restore_accounting(std::int64_t sent, std::int64_t dropped,
                          std::int64_t partition_dropped,
                          std::int64_t link_dropped);

  /// Attaches the trace sink: when non-null, every drop verdict emits a
  /// "drop" record naming the reason (partition vs loss). Null (the
  /// default) costs one predictable branch per drop.
  void set_trace(obs::RecordSink* trace) { trace_ = trace; }
  /// Attaches the profiler: route() is timed as obs::Phase::kRoute.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }

 private:
  int component_of(NodeId node) const;
  void trace_drop(NodeId from, NodeId to, const char* why);
  /// Per-source RNG stream (lazily created, deterministically seeded from
  /// the network seed and `from`); the shared legacy stream for from < 0.
  Rng& src_rng(NodeId from);
  double sample_delay(Rng& rng);

  EventQueue* queue_;
  std::uint64_t seed_;
  Rng rng_;
  std::vector<Rng> src_rngs_;
  NetworkParams params_;
  obs::RecordSink* trace_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  std::int64_t sent_ = 0;
  std::int64_t dropped_ = 0;
  std::int64_t partition_dropped_ = 0;
  /// Empty: no partition. Otherwise component id per node; nodes beyond
  /// the vector (or unlisted, marked -1) belong to component 0.
  std::vector<int> component_;
  /// Directed block rule: membership masks over node ids (nodes beyond a
  /// mask are not members). Kept as the installed endpoint sets too so
  /// remove_link_block can match rules structurally.
  struct LinkRule {
    std::vector<NodeId> from_ids;  // sorted, deduplicated
    std::vector<NodeId> to_ids;
    std::vector<char> from_mask;
    std::vector<char> to_mask;
  };
  std::vector<LinkRule> link_rules_;
  /// Empty = every node at 1.0; nodes beyond the vector are at 1.0.
  std::vector<double> delay_factor_;
  double storm_extra_ms_ = 0.0;
  double storm_prob_ = 0.0;
  std::int64_t link_dropped_ = 0;
};

}  // namespace rfd::rt
