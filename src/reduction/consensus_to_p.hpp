// T(D->P): emulating a Perfect failure detector from any total consensus
// algorithm (Section 4.3, Lemma 4.2).
//
// The transformation runs an infinite sequence of consensus instances
// (bounded here by max_instances) with three additions:
//   1. whenever p_i sends a message it attaches [p_i is alive];
//   2. a receiver extracts the tags and attaches them to every event it
//      executes as a consequence (we accumulate them per instance);
//   3. whenever p_j executes a decision event, it adds to output(P)_j
//      every process whose tag is NOT attached to the decision.
//
// Because the underlying algorithm is total (Lemma 4.1), a missing tag
// means the process had crashed by decision time - strong accuracy - and
// a crashed process stops tagging, so later instances decide without it -
// strong completeness. The emulated variable output(P)_j is exposed both
// as a live suspect set (usable as a detector by stacked algorithms, see
// EmulatedFdStack) and as a timeline for offline QoS analysis.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/automaton.hpp"
#include "sim/composition.hpp"

namespace rfd::red {

class ConsensusToP final : public sim::Automaton {
 public:
  /// Builds the consensus automaton for instance k; the default runs the
  /// S-based Chandra-Toueg algorithm with a per-process proposal.
  using ConsensusFactory = std::function<std::unique_ptr<sim::Automaton>(
      InstanceId k, ProcessId self)>;

  /// `min_instance_gap` throttles the instance sequence: instance k+1 is
  /// not driven locally before `min_instance_gap` ticks have passed since
  /// instance k was started. The paper's sequence is infinite; a bounded
  /// experiment needs the instances to *span* the window in which crashes
  /// happen, otherwise completeness has no instance left to witness it.
  ConsensusToP(ProcessId n, ConsensusFactory factory, InstanceId max_instances,
               Tick min_instance_gap = 0);

  /// Convenience: T(D->P) over the S-based consensus algorithm for a
  /// system of n processes.
  static ConsensusFactory ct_strong_factory(ProcessId n);

  void on_start(sim::Context& ctx) override;
  void on_step(sim::Context& ctx, const sim::Incoming* m) override;

  /// The emulated output(P) at this process, as of now.
  const ProcessSet& output() const { return output_; }

  /// (tick, process) pairs, in suspicion order.
  const std::vector<std::pair<Tick, ProcessId>>& suspicion_timeline() const {
    return timeline_;
  }

  /// Instances this process has seen decided (locally driven or joined).
  InstanceId instances_decided() const {
    InstanceId count = 0;
    for (const auto& [k, child] : children_) {
      if (child.decided) ++count;
    }
    return count;
  }

  /// Ticks at which instances decided at this process, in decision order.
  const std::vector<Tick>& decision_ticks() const { return decision_ticks_; }

 private:
  struct Child {
    std::unique_ptr<sim::Automaton> automaton;
    ProcessSet known_alive;  // accumulated [p is alive] tags, self included
    bool decided = false;
  };

  /// The context a child instance runs under: frames sends with the
  /// instance tag, attaches the accumulated alive tags, reports decisions
  /// back to the wrapper.
  class ChildContext;

  Child& ensure_child(sim::Context& ctx, InstanceId k);
  void on_child_decides(sim::Context& ctx, InstanceId k, Value v);
  void maybe_advance(sim::Context& ctx);

  ProcessId n_;
  ConsensusFactory factory_;
  InstanceId max_instances_;
  Tick min_instance_gap_;

  std::map<InstanceId, Child> children_;
  InstanceId local_k_ = 0;  // instance this process currently drives
  Tick last_instance_start_ = 0;
  ProcessSet output_;
  std::vector<std::pair<Tick, ProcessId>> timeline_;
  std::vector<Tick> decision_ticks_;
};

}  // namespace rfd::red
