#include "reduction/trb_to_p.hpp"

#include "common/assert.hpp"

namespace rfd::red {

/// Frames one TRB instance's traffic and reports its delivery back.
class TrbToP::ChildContext final : public sim::ForwardingContext {
 public:
  ChildContext(sim::Context& parent, TrbToP& owner, InstanceId tag)
      : ForwardingContext(parent), owner_(&owner), tag_(tag) {}

  void send_tagged(ProcessId dst, Bytes payload,
                   const ProcessSet& tags) override {
    parent_->send_tagged(dst, sim::frame(tag_, std::move(payload)), tags);
  }

  void deliver(InstanceId /*inner*/, Value v) override {
    owner_->on_child_delivers(*parent_, tag_, v);
  }

 private:
  TrbToP* owner_;
  InstanceId tag_;
};

TrbToP::TrbToP(ProcessId n, InstanceId max_rounds, Tick min_round_gap)
    : n_(n), max_rounds_(max_rounds), min_round_gap_(min_round_gap),
      output_(n) {
  RFD_REQUIRE(n >= 2);
  RFD_REQUIRE(max_rounds >= 1);
  RFD_REQUIRE(min_round_gap >= 0);
}

TrbToP::Child& TrbToP::ensure_child(sim::Context& ctx, InstanceId tag) {
  auto it = children_.find(tag);
  if (it != children_.end()) return it->second;

  const InstanceId round = tag / n_;
  const auto sender = static_cast<ProcessId>(tag % n_);
  const Value value = static_cast<Value>(sender) + 1 +
                      static_cast<Value>(round) * 1000;
  Child child;
  child.automaton =
      std::make_unique<algo::TrbAutomaton>(n_, sender, value, /*instance=*/0);
  auto [pos, inserted] = children_.emplace(tag, std::move(child));
  RFD_REQUIRE(inserted);

  ChildContext sub(ctx, *this, tag);
  pos->second.automaton->on_start(sub);
  return pos->second;
}

void TrbToP::on_child_delivers(sim::Context& ctx, InstanceId tag, Value v) {
  Child& child = children_.at(tag);
  if (child.delivered) return;
  child.delivered = true;

  const auto sender = static_cast<ProcessId>(tag % n_);
  // The paper's rule: a nil delivery for instance (i, *) puts p_i into
  // output(P).
  if (v == kNilValue && !output_.contains(sender)) {
    output_.insert(sender);
    timeline_.emplace_back(ctx.now(), sender);
  }

  if (tag / n_ == completed_rounds_) {
    ++delivered_in_current_round_;
    maybe_advance_round(ctx);
  }
}

void TrbToP::maybe_advance_round(sim::Context& ctx) {
  while (delivered_in_current_round_ == static_cast<std::int64_t>(n_) &&
         completed_rounds_ + 1 < max_rounds_ &&
         ctx.now() >= last_round_start_ + min_round_gap_) {
    ++completed_rounds_;
    delivered_in_current_round_ = 0;
    last_round_start_ = ctx.now();
    // Start the whole next round; count instances that already delivered
    // through early message arrivals.
    for (ProcessId i = 0; i < n_; ++i) {
      Child& child = ensure_child(ctx, tag_of(completed_rounds_, i));
      if (child.delivered) ++delivered_in_current_round_;
    }
  }
}

void TrbToP::on_start(sim::Context& ctx) {
  last_round_start_ = ctx.now();
  for (ProcessId i = 0; i < n_; ++i) {
    ensure_child(ctx, tag_of(0, i));
  }
}

void TrbToP::on_step(sim::Context& ctx, const sim::Incoming* m) {
  if (m != nullptr) {
    auto [tag, inner] = sim::unframe(m->payload);
    if (tag < 0 || tag >= max_rounds_ * n_) return;
    Child& child = ensure_child(ctx, tag);
    ChildContext sub(ctx, *this, tag);
    const sim::Incoming inner_msg{m->src, inner, m->alive_tags, m->id};
    child.automaton->on_step(sub, &inner_msg);
  } else {
    for (auto& [tag, child] : children_) {
      if (child.delivered) continue;
      ChildContext sub(ctx, *this, tag);
      child.automaton->on_step(sub, nullptr);
    }
  }
  // The round throttle is time-based; re-check it on every step.
  maybe_advance_round(ctx);
}

}  // namespace rfd::red
