#include "reduction/consensus_to_p.hpp"

#include "algo/consensus/ct_strong.hpp"
#include "common/assert.hpp"

namespace rfd::red {

/// Wires one child instance into the wrapper: outgoing payloads are framed
/// with the instance tag and tagged with the accumulated alive set;
/// decisions flow back to the wrapper instead of the trace.
class ConsensusToP::ChildContext final : public sim::ForwardingContext {
 public:
  ChildContext(sim::Context& parent, ConsensusToP& owner, InstanceId k)
      : ForwardingContext(parent), owner_(&owner), k_(k) {}

  void send_tagged(ProcessId dst, Bytes payload,
                   const ProcessSet& tags) override {
    // Addition 1 of T(D->P): every message carries the alive information
    // accumulated by its sender (which always includes the sender itself).
    ProcessSet combined = owner_->children_.at(k_).known_alive;
    if (tags.universe_size() == combined.universe_size()) {
      combined |= tags;
    }
    parent_->send_tagged(dst, sim::frame(k_, std::move(payload)), combined);
  }

  void decide(InstanceId /*inner*/, Value v) override {
    owner_->on_child_decides(*parent_, k_, v);
  }

 private:
  ConsensusToP* owner_;
  InstanceId k_;
};

ConsensusToP::ConsensusToP(ProcessId n, ConsensusFactory factory,
                           InstanceId max_instances, Tick min_instance_gap)
    : n_(n),
      factory_(std::move(factory)),
      max_instances_(max_instances),
      min_instance_gap_(min_instance_gap),
      output_(n) {
  RFD_REQUIRE(n >= 2);
  RFD_REQUIRE(max_instances >= 1);
  RFD_REQUIRE(min_instance_gap >= 0);
  RFD_REQUIRE(factory_ != nullptr);
}

ConsensusToP::ConsensusFactory ConsensusToP::ct_strong_factory(ProcessId n) {
  return [n](InstanceId k, ProcessId self) -> std::unique_ptr<sim::Automaton> {
    // Distinct proposals per process and instance keep the decision values
    // informative in traces; the reduction itself never looks at them.
    const Value proposal = static_cast<Value>(self) + 1 +
                           static_cast<Value>(k) * 1000;
    return std::make_unique<algo::CtStrongConsensus>(n, proposal);
  };
}

ConsensusToP::Child& ConsensusToP::ensure_child(sim::Context& ctx,
                                                InstanceId k) {
  auto it = children_.find(k);
  if (it != children_.end()) return it->second;

  Child child;
  child.automaton = factory_(k, ctx.self());
  RFD_REQUIRE(child.automaton != nullptr);
  child.known_alive = ProcessSet(n_);
  child.known_alive.insert(ctx.self());
  auto [pos, inserted] = children_.emplace(k, std::move(child));
  RFD_REQUIRE(inserted);

  ChildContext sub(ctx, *this, k);
  pos->second.automaton->on_start(sub);
  return pos->second;
}

void ConsensusToP::on_child_decides(sim::Context& ctx, InstanceId k,
                                    Value /*v*/) {
  Child& child = children_.at(k);
  if (child.decided) return;
  child.decided = true;
  decision_ticks_.push_back(ctx.now());

  // Addition 3 of T(D->P): suspect exactly the processes whose alive tag
  // is missing from this decision event.
  const ProcessSet missing = child.known_alive.complement();
  missing.for_each([&](ProcessId q) {
    if (!output_.contains(q)) {
      output_.insert(q);
      timeline_.emplace_back(ctx.now(), q);
    }
  });

  maybe_advance(ctx);
}

void ConsensusToP::maybe_advance(sim::Context& ctx) {
  while (local_k_ + 1 < max_instances_) {
    const auto it = children_.find(local_k_);
    if (it == children_.end() || !it->second.decided) return;
    if (ctx.now() < last_instance_start_ + min_instance_gap_) return;
    ++local_k_;
    last_instance_start_ = ctx.now();
    ensure_child(ctx, local_k_);
  }
}

void ConsensusToP::on_start(sim::Context& ctx) {
  last_instance_start_ = ctx.now();
  ensure_child(ctx, 0);
}

void ConsensusToP::on_step(sim::Context& ctx, const sim::Incoming* m) {
  if (m != nullptr) {
    auto [k, inner] = sim::unframe(m->payload);
    if (k < 0 || k >= max_instances_) return;
    Child& child = ensure_child(ctx, k);
    // Addition 2 of T(D->P): extract the alive tags and attach them to
    // everything this reception causes.
    if (m->alive_tags.universe_size() == n_) {
      child.known_alive |= m->alive_tags;
    }
    // Decided children keep participating: stragglers in instance k may
    // still need this process's phase messages.
    ChildContext sub(ctx, *this, k);
    const sim::Incoming inner_msg{m->src, inner, m->alive_tags, m->id};
    child.automaton->on_step(sub, &inner_msg);
  } else {
    // Lambda step: let undecided children re-check their suspicion-based
    // waits.
    for (auto& [k, child] : children_) {
      if (child.decided) continue;
      ChildContext sub(ctx, *this, k);
      child.automaton->on_step(sub, nullptr);
    }
  }
  // The instance throttle is time-based; re-check it on every step.
  maybe_advance(ctx);
}

}  // namespace rfd::red
