#include "reduction/collapse.hpp"

#include "common/assert.hpp"
#include "fd/properties.hpp"

namespace rfd::red {

FalseSuspicion find_false_suspicion(const model::FailurePattern& f,
                                    const fd::History& h) {
  for (Tick t = 0; t < h.horizon(); ++t) {
    const ProcessSet alive = f.alive_at(t);
    for (ProcessId obs = 0; obs < h.n(); ++obs) {
      const ProcessSet hit = h.at(obs, t).suspects & alive;
      if (!hit.empty()) {
        return {true, obs, hit.min(), t};
      }
    }
  }
  return {};
}

CollapseWitness collapse_witness(const fd::OracleFactory& factory,
                                 const model::FailurePattern& f,
                                 std::uint64_t seed, Tick horizon,
                                 const std::vector<std::uint64_t>& seeds) {
  CollapseWitness witness;
  const auto oracle = factory(f, seed);
  const fd::History h = fd::sample_history(*oracle, horizon);
  witness.suspicion = find_false_suspicion(f, h);
  witness.has_false_suspicion = witness.suspicion.found;
  if (!witness.has_false_suspicion) return witness;

  const Tick t = witness.suspicion.at;
  const ProcessId victim = witness.suspicion.victim;

  // F': same crashes up to t; everyone except the victim crashes at t+1;
  // the victim is correct.
  model::FailurePattern f_prime(f.n());
  for (ProcessId p = 0; p < f.n(); ++p) {
    if (p == victim) continue;  // correct in F'
    const Tick crash = f.crash_tick(p);
    f_prime.crash_at(p, crash <= t ? crash : t + 1);
  }
  RFD_REQUIRE(f.agrees_up_to(f_prime, t));
  witness.f_prime = f_prime.to_string();

  // Does D (sampled over `seeds`) admit the same prefix in F'?
  const Tick prefix_horizon = t + 1;
  for (std::uint64_t s : seeds) {
    const auto oracle_prime = factory(f_prime, s);
    const fd::History h_prime = fd::sample_history(*oracle_prime,
                                                   prefix_horizon);
    bool equal = true;
    for (ProcessId p = 0; p < f.n() && equal; ++p) {
      for (Tick t1 = 0; t1 <= t && equal; ++t1) {
        equal = h.at(p, t1) == h_prime.at(p, t1);
      }
    }
    if (equal) {
      witness.prefix_transfers = true;
      // In F' the victim is the only correct process, and this very prefix
      // shows it suspected at time t: weak accuracy cannot hold for any
      // continuation of this history.
      RFD_REQUIRE(f_prime.correct() ==
                  ProcessSet::of(f.n(), {victim}));
      witness.weak_accuracy_broken_in_f_prime =
          h_prime.at(witness.suspicion.observer, t).suspects.contains(victim);
      break;
    }
  }
  return witness;
}

CollapseAudit audit_strong_realistic(
    const fd::OracleFactory& factory,
    const std::vector<model::FailurePattern>& patterns,
    const std::vector<std::uint64_t>& seeds, Tick horizon) {
  CollapseAudit audit;
  for (const auto& f : patterns) {
    for (std::uint64_t seed : seeds) {
      ++audit.histories;
      const CollapseWitness w =
          collapse_witness(factory, f, seed, horizon, seeds);
      if (!w.has_false_suspicion) continue;
      ++audit.with_false_suspicion;
      if (w.prefix_transfers) ++audit.transfers;
      if (w.weak_accuracy_broken_in_f_prime) ++audit.weak_accuracy_broken;
    }
  }
  return audit;
}

}  // namespace rfd::red
