// Emulating P from terminating reliable broadcast (Proposition 5.1,
// necessary condition).
//
// Runs rounds of TRB instances - in round k every process is the sender of
// instance (i, k) - and applies the paper's rule: whenever p_j delivers
// nil for an instance whose sender is p_i, it adds p_i to output(P)_j.
// With a realistic detector a nil delivery certifies that the sender had
// crashed (strong accuracy); a crashed sender yields nil in every later
// round at every correct process (strong completeness).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "algo/trb/trb.hpp"
#include "sim/automaton.hpp"
#include "sim/composition.hpp"

namespace rfd::red {

class TrbToP final : public sim::Automaton {
 public:
  /// Runs `max_rounds` rounds of n TRB instances each. `min_round_gap`
  /// paces the rounds so the bounded sequence spans the crash window (the
  /// paper's sequence is infinite).
  TrbToP(ProcessId n, InstanceId max_rounds, Tick min_round_gap = 0);

  void on_start(sim::Context& ctx) override;
  void on_step(sim::Context& ctx, const sim::Incoming* m) override;

  const ProcessSet& output() const { return output_; }
  const std::vector<std::pair<Tick, ProcessId>>& suspicion_timeline() const {
    return timeline_;
  }
  /// Rounds whose n instances have all delivered locally.
  InstanceId rounds_completed() const { return completed_rounds_; }

 private:
  struct Child {
    std::unique_ptr<algo::TrbAutomaton> automaton;
    bool delivered = false;
  };

  class ChildContext;

  InstanceId tag_of(InstanceId round, ProcessId sender) const {
    return round * n_ + static_cast<InstanceId>(sender);
  }

  Child& ensure_child(sim::Context& ctx, InstanceId tag);
  void on_child_delivers(sim::Context& ctx, InstanceId tag, Value v);
  void maybe_advance_round(sim::Context& ctx);

  ProcessId n_;
  InstanceId max_rounds_;
  Tick min_round_gap_;

  std::map<InstanceId, Child> children_;
  InstanceId completed_rounds_ = 0;
  Tick last_round_start_ = 0;
  std::int64_t delivered_in_current_round_ = 0;
  ProcessSet output_;
  std::vector<std::pair<Tick, ProcessId>> timeline_;
};

}  // namespace rfd::red
