// Totality of consensus algorithms (Section 4.2, Lemma 4.1).
//
// An algorithm is total when every decision event's causal chain contains
// a message from every process that has not crashed by the decision time:
// nobody decides without having consulted (directly or transitively)
// everyone still alive. Lemma 4.1 proves every consensus algorithm using a
// realistic detector in the unbounded-crash environment is total; the
// checker below audits recorded traces for exactly that property, and the
// consulted-fraction statistics quantify how close non-total baselines
// (the <>S majority algorithm, the P< chain) come.
#pragma once

#include <string>

#include "common/stats.hpp"
#include "sim/trace.hpp"

namespace rfd::red {

struct TotalityReport {
  std::int64_t decisions = 0;
  std::int64_t total_decisions = 0;
  std::int64_t non_total_decisions = 0;
  /// |consulted ∩ alive| / |alive| per decision (1.0 for total decisions).
  Summary consulted_fraction;
  /// One human-readable example of a non-total decision, if any.
  std::string example;

  bool all_total() const { return non_total_decisions == 0 && decisions > 0; }
};

/// Audits every decision event of `instance` in the trace. The deciding
/// process counts as consulted trivially.
TotalityReport check_totality(const sim::Trace& trace, InstanceId instance);

/// Audits every decision event regardless of instance.
TotalityReport check_totality_all(const sim::Trace& trace);

}  // namespace rfd::red
