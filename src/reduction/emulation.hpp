// Bridging emulated detectors back into the failure detector formalism.
//
// The reductions produce, per process, a timeline of (tick, suspect)
// additions to output(P). Assembling those timelines into an fd::History
// lets the standard class-property checkers (fd/properties.hpp) certify
// Lemma 4.2 / Proposition 5.1 with the very same code that certifies the
// native oracles - the emulated detector is judged by the rules of the
// formalism, not by bespoke assertions.
//
// EmulatedFdStack closes the loop at runtime: it runs a reduction and a
// consumer algorithm side by side in one automaton, feeding the consumer
// the *emulated* suspect set as its detector module. This is the paper's
// collapse made executable: D solves consensus => T(D->P) => P => TRB.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fd/history.hpp"
#include "reduction/consensus_to_p.hpp"
#include "sim/automaton.hpp"
#include "sim/composition.hpp"

namespace rfd::red {

/// Monotone suspicion timelines (one per process) -> a sampled history
/// over [0, horizon).
fd::History history_from_timelines(
    ProcessId n, Tick horizon,
    const std::vector<std::vector<std::pair<Tick, ProcessId>>>& timelines);

/// Runs a ConsensusToP reduction and a consumer automaton in one process.
/// The consumer's ctx.fd() is overridden with the reduction's output(P);
/// the real oracle remains visible only to the reduction's consensus
/// instances. Consumer traffic is framed under a separate tag space.
class EmulatedFdStack final : public sim::Automaton {
 public:
  using ConsumerFactory =
      std::function<std::unique_ptr<sim::Automaton>(ProcessId self)>;

  EmulatedFdStack(ProcessId n, ConsensusToP::ConsensusFactory reduction_base,
                  InstanceId reduction_instances, ConsumerFactory consumer,
                  Tick reduction_gap = 0);

  void on_start(sim::Context& ctx) override;
  void on_step(sim::Context& ctx, const sim::Incoming* m) override;

  const ConsensusToP& reduction() const { return *reduction_; }
  sim::Automaton& consumer() { return *consumer_; }

 private:
  static constexpr InstanceId kReductionTag = 0;
  static constexpr InstanceId kConsumerTag = 1;

  class ConsumerContext;

  ProcessId n_;
  std::unique_ptr<ConsensusToP> reduction_;
  std::unique_ptr<sim::Automaton> consumer_;
  ConsumerFactory consumer_factory_;
  bool consumer_started_ = false;
};

}  // namespace rfd::red
