#include "reduction/emulation.hpp"

#include "common/assert.hpp"

namespace rfd::red {

fd::History history_from_timelines(
    ProcessId n, Tick horizon,
    const std::vector<std::vector<std::pair<Tick, ProcessId>>>& timelines) {
  RFD_REQUIRE(static_cast<ProcessId>(timelines.size()) == n);
  fd::History h(n, horizon);
  for (ProcessId p = 0; p < n; ++p) {
    ProcessSet suspects(n);
    std::size_t next = 0;
    const auto& timeline = timelines[static_cast<std::size_t>(p)];
    for (Tick t = 0; t < horizon; ++t) {
      while (next < timeline.size() && timeline[next].first <= t) {
        suspects.insert(timeline[next].second);
        ++next;
      }
      fd::FdValue v;
      v.suspects = suspects;
      h.record(p, t, std::move(v));
    }
  }
  return h;
}

/// The consumer's view of the world: its failure detector module is the
/// reduction's emulated output(P); its messages travel under the consumer
/// tag.
class EmulatedFdStack::ConsumerContext final : public sim::ForwardingContext {
 public:
  ConsumerContext(sim::Context& parent, const ConsensusToP& reduction,
                  ProcessId n)
      : ForwardingContext(parent), emulated_() {
    emulated_.suspects = reduction.output();
    (void)n;
  }

  const fd::FdValue& fd() const override { return emulated_; }

  void send_tagged(ProcessId dst, Bytes payload,
                   const ProcessSet& tags) override {
    parent_->send_tagged(dst, sim::frame(kConsumerTag, std::move(payload)),
                         tags);
  }

 private:
  fd::FdValue emulated_;
};

EmulatedFdStack::EmulatedFdStack(ProcessId n,
                                 ConsensusToP::ConsensusFactory reduction_base,
                                 InstanceId reduction_instances,
                                 ConsumerFactory consumer, Tick reduction_gap)
    : n_(n), consumer_factory_(std::move(consumer)) {
  reduction_ = std::make_unique<ConsensusToP>(n, std::move(reduction_base),
                                              reduction_instances,
                                              reduction_gap);
  RFD_REQUIRE(consumer_factory_ != nullptr);
}

void EmulatedFdStack::on_start(sim::Context& ctx) {
  {
    sim::SubInstanceContext sub(ctx, kReductionTag);
    reduction_->on_start(sub);
  }
  consumer_ = consumer_factory_(ctx.self());
  RFD_REQUIRE(consumer_ != nullptr);
  consumer_started_ = true;
  ConsumerContext sub(ctx, *reduction_, n_);
  consumer_->on_start(sub);
}

void EmulatedFdStack::on_step(sim::Context& ctx, const sim::Incoming* m) {
  if (m != nullptr) {
    auto [tag, inner] = sim::unframe(m->payload);
    const sim::Incoming inner_msg{m->src, inner, m->alive_tags, m->id};
    if (tag == kReductionTag) {
      sim::SubInstanceContext sub(ctx, kReductionTag);
      reduction_->on_step(sub, &inner_msg);
    } else if (tag == kConsumerTag && consumer_started_) {
      ConsumerContext sub(ctx, *reduction_, n_);
      consumer_->on_step(sub, &inner_msg);
    }
  } else {
    {
      sim::SubInstanceContext sub(ctx, kReductionTag);
      reduction_->on_step(sub, nullptr);
    }
    if (consumer_started_) {
      ConsumerContext sub(ctx, *reduction_, n_);
      consumer_->on_step(sub, nullptr);
    }
  }
}

}  // namespace rfd::red
