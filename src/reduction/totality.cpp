#include "reduction/totality.hpp"

namespace rfd::red {
namespace {

void audit_decision(const sim::Trace& trace, const sim::DecisionRef& d,
                    TotalityReport& report) {
  ++report.decisions;
  ProcessSet consulted = trace.causal_message_senders(d.event);
  consulted.insert(d.process);
  const ProcessSet alive = trace.pattern().alive_at(d.time);
  const ProcessSet missing = alive - consulted;

  const double fraction =
      alive.count() == 0
          ? 1.0
          : static_cast<double>((alive & consulted).count()) /
                static_cast<double>(alive.count());
  report.consulted_fraction.add(fraction);

  if (missing.empty()) {
    ++report.total_decisions;
  } else {
    ++report.non_total_decisions;
    if (report.example.empty()) {
      report.example = "p" + std::to_string(d.process) + " decided " +
                       std::to_string(d.value) + " at t=" +
                       std::to_string(d.time) + " without consulting " +
                       missing.to_string();
    }
  }
}

}  // namespace

TotalityReport check_totality(const sim::Trace& trace, InstanceId instance) {
  TotalityReport report;
  for (const auto& d : trace.decisions_of_instance(instance)) {
    audit_decision(trace, d, report);
  }
  return report;
}

TotalityReport check_totality_all(const sim::Trace& trace) {
  TotalityReport report;
  for (const auto& d : trace.decisions()) {
    audit_decision(trace, d, report);
  }
  return report;
}

}  // namespace rfd::red
