// The Strong/Perfect collapse within the realistic space (Section 6.3):
// S ∩ R ⊂ P.
//
// The paper's argument, executable: suppose a realistic detector D falsely
// suspects p_i at time t in pattern F. Build F' - identical to F up to t,
// but every process except p_i crashes at t+1. Realism forces D to be able
// to output the same prefix in F'; there the only correct process is p_i,
// and it was suspected, so weak accuracy fails and D is not Strong. Hence
// a realistic Strong detector can have no false suspicion: it is Perfect.
//
// collapse_witness() performs that construction on a sampled history;
// audit_strong_realistic() sweeps it across patterns and seeds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fd/history.hpp"
#include "fd/oracle.hpp"
#include "fd/realism.hpp"
#include "model/failure_pattern.hpp"

namespace rfd::red {

struct FalseSuspicion {
  bool found = false;
  ProcessId observer = -1;
  ProcessId victim = -1;
  Tick at = -1;
};

/// First (in time) suspicion of a process that was alive at that tick.
FalseSuspicion find_false_suspicion(const model::FailurePattern& f,
                                    const fd::History& h);

struct CollapseWitness {
  /// Whether the sampled history had a false suspicion to work with.
  bool has_false_suspicion = false;
  FalseSuspicion suspicion;
  /// The constructed F' in which everyone but the victim crashes at t+1.
  std::string f_prime;
  /// Realism: could D have produced the same prefix in F'? (Checked over
  /// the provided seeds.) True for realistic detectors - which is what
  /// dooms them; clairvoyant detectors escape here and only here.
  bool prefix_transfers = false;
  /// In the transferred history, weak accuracy fails in F' (the lone
  /// correct process is suspected), i.e. D is not Strong.
  bool weak_accuracy_broken_in_f_prime = false;
};

/// Runs the Section 6.3 construction for one (pattern, seed).
CollapseWitness collapse_witness(const fd::OracleFactory& factory,
                                 const model::FailurePattern& f,
                                 std::uint64_t seed, Tick horizon,
                                 const std::vector<std::uint64_t>& seeds);

struct CollapseAudit {
  std::int64_t histories = 0;
  std::int64_t with_false_suspicion = 0;
  /// Among histories with a false suspicion: how many transfer to F' (and
  /// thereby break weak accuracy there).
  std::int64_t transfers = 0;
  std::int64_t weak_accuracy_broken = 0;

  /// The collapse statement for this detector: every realistic history
  /// that looks Strong is in fact Perfect on the window (no false
  /// suspicions at all), or its false suspicions transfer and break S.
  bool consistent_with_collapse() const {
    return with_false_suspicion == transfers &&
           transfers == weak_accuracy_broken;
  }
};

/// Sweeps collapse_witness over patterns x seeds.
CollapseAudit audit_strong_realistic(
    const fd::OracleFactory& factory,
    const std::vector<model::FailurePattern>& patterns,
    const std::vector<std::uint64_t>& seeds, Tick horizon);

}  // namespace rfd::red
