// The Scribe C (Section 3.2.1): sees what happens at all processes in real
// time and takes notes. At tick t it outputs F[t], the entire failure
// pattern up to time t. The suspect-list projection is F(t) itself, so the
// Scribe is a zero-delay member of P; the full past is carried in the
// FdValue::extra payload (ticks of every crash that already happened).
#pragma once

#include "fd/oracle.hpp"

namespace rfd::fd {

class ScribeOracle final : public RealisticOracle {
 public:
  ScribeOracle(const model::FailurePattern& pattern, std::uint64_t seed);

  std::string name() const override { return "Scribe"; }

  /// Decodes the F[t] payload of a Scribe output back into per-process
  /// crash ticks (kNever when not crashed by the query tick).
  static std::vector<Tick> decode_past(const FdValue& value);

 protected:
  FdValue query_past(ProcessId observer, Tick t,
                     const model::PastView& past) const override;
};

OracleFactory make_scribe_factory();

}  // namespace rfd::fd
