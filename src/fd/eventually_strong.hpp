// The class <>S of Eventually Strong failure detectors:
//   strong completeness, plus *eventual weak* accuracy - there is a time
//   after which SOME correct process is never suspected by anyone.
//
// The immune process at tick t is the smallest-id process not crashed by t
// (a function of the past, so realistic); once crashes stop it stabilizes
// to the smallest correct process. Non-immune alive processes keep being
// falsely suspected forever (churn noise), which keeps this detector
// genuinely weaker than <>P: eventual *strong* accuracy fails.
// Pre-convergence even the immune process may be suspected, which keeps it
// weaker than S: plain weak accuracy fails.
#pragma once

#include "fd/oracle.hpp"

namespace rfd::fd {

struct EventuallyStrongParams {
  Tick convergence_tick = 60;
  /// False-suspicion probability; applies to everyone before convergence
  /// and to non-immune alive processes forever after.
  double churn_prob = 0.25;
  Tick churn_period = 5;
  Tick min_detection_delay = 1;
  Tick max_detection_delay = 5;
};

class EventuallyStrongOracle final : public RealisticOracle {
 public:
  EventuallyStrongOracle(const model::FailurePattern& pattern,
                         std::uint64_t seed,
                         EventuallyStrongParams params = {});

  std::string name() const override { return "<>S"; }

  Tick detection_delay(ProcessId observer, ProcessId target) const;
  Tick convergence_tick() const { return params_.convergence_tick; }

 protected:
  FdValue query_past(ProcessId observer, Tick t,
                     const model::PastView& past) const override;

 private:
  bool churn_suspects(ProcessId observer, ProcessId target, Tick t) const;

  EventuallyStrongParams params_;
};

OracleFactory make_eventually_strong_factory(
    EventuallyStrongParams params = {});

}  // namespace rfd::fd
