#include "fd/history.hpp"

#include "common/assert.hpp"

namespace rfd::fd {

History::History(ProcessId n, Tick horizon) : n_(n), horizon_(horizon) {
  RFD_REQUIRE(n > 0 && horizon > 0);
  cells_.resize(static_cast<std::size_t>(n));
  for (auto& row : cells_) {
    row.resize(static_cast<std::size_t>(horizon));
  }
}

void History::record(ProcessId p, Tick t, FdValue v) {
  RFD_REQUIRE(p >= 0 && p < n_ && t >= 0 && t < horizon_);
  cells_[static_cast<std::size_t>(p)][static_cast<std::size_t>(t)] =
      std::move(v);
}

const FdValue& History::at(ProcessId p, Tick t) const {
  RFD_REQUIRE(p >= 0 && p < n_ && t >= 0 && t < horizon_);
  return cells_[static_cast<std::size_t>(p)][static_cast<std::size_t>(t)];
}

Tick History::stable_suspicion_from(ProcessId p, ProcessId q) const {
  Tick from = kNever;
  for (Tick t = horizon_ - 1; t >= 0; --t) {
    if (suspects(p, q, t)) {
      from = t;
    } else {
      break;
    }
  }
  return from;
}

bool History::prefix_equal(const History& other, Tick t) const {
  if (n_ != other.n_) return false;
  RFD_REQUIRE(t < horizon_ && t < other.horizon_);
  for (ProcessId p = 0; p < n_; ++p) {
    for (Tick s = 0; s <= t; ++s) {
      if (at(p, s) != other.at(p, s)) return false;
    }
  }
  return true;
}

History sample_history(const Oracle& oracle, Tick horizon) {
  History h(oracle.n(), horizon);
  for (ProcessId p = 0; p < oracle.n(); ++p) {
    for (Tick t = 0; t < horizon; ++t) {
      h.record(p, t, oracle.query(p, t));
    }
  }
  return h;
}

}  // namespace rfd::fd
