// A Strong-but-not-Perfect failure detector, necessarily clairvoyant.
//
// Class S demands strong completeness plus *weak* accuracy: some correct
// process is never suspected. This oracle picks its immune process as the
// smallest-id *correct* process - information about the future - and
// freely (falsely) suspects everyone else while they are alive. It is in
// S, it violates strong accuracy (so it is not in P), and it is not
// realistic.
//
// Its purpose is Section 6.3: within the realistic space no such detector
// can exist - a realistic detector that falsely suspects p at time t must
// also be a history of the pattern where everyone but p crashes at t+1,
// where that suspicion breaks weak accuracy. Hence S ∩ R ⊂ P, and this
// class is the counterexample showing the intersection with R is what does
// the collapsing.
#pragma once

#include "fd/oracle.hpp"

namespace rfd::fd {

struct CheatingStrongParams {
  double churn_prob = 0.3;
  Tick churn_period = 5;
  Tick min_detection_delay = 1;
  Tick max_detection_delay = 5;
};

class CheatingStrongOracle final : public ClairvoyantOracle {
 public:
  CheatingStrongOracle(const model::FailurePattern& pattern,
                       std::uint64_t seed, CheatingStrongParams params = {});

  std::string name() const override { return "S(cheat)"; }

  Tick detection_delay(ProcessId observer, ProcessId target) const;

 protected:
  FdValue query_full(ProcessId observer, Tick t,
                     const model::FullView& full) const override;

 private:
  bool churn_suspects(ProcessId observer, ProcessId target, Tick t) const;

  CheatingStrongParams params_;
};

OracleFactory make_cheating_strong_factory(CheatingStrongParams params = {});

}  // namespace rfd::fd
