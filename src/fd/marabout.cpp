#include "fd/marabout.hpp"

namespace rfd::fd {

MaraboutOracle::MaraboutOracle(const model::FailurePattern& pattern,
                               std::uint64_t seed)
    : ClairvoyantOracle(pattern, seed) {}

FdValue MaraboutOracle::query_full(ProcessId /*observer*/, Tick /*t*/,
                                   const model::FullView& full) const {
  FdValue out;
  out.suspects = full.faulty();
  return out;
}

OracleFactory make_marabout_factory() {
  return [](const model::FailurePattern& pattern, std::uint64_t seed) {
    return std::make_unique<MaraboutOracle>(pattern, seed);
  };
}

}  // namespace rfd::fd
