#include "fd/partially_perfect.hpp"

#include "common/assert.hpp"

namespace rfd::fd {

PartiallyPerfectOracle::PartiallyPerfectOracle(
    const model::FailurePattern& pattern, std::uint64_t seed,
    PartiallyPerfectParams params)
    : RealisticOracle(pattern, seed), params_(params) {
  RFD_REQUIRE(params.min_detection_delay >= 0 &&
              params.min_detection_delay <= params.max_detection_delay);
}

Tick PartiallyPerfectOracle::detection_delay(ProcessId observer,
                                             ProcessId target) const {
  const Tick span = params_.max_detection_delay - params_.min_detection_delay;
  if (span == 0) return params_.min_detection_delay;
  const auto jitter = static_cast<Tick>(
      noise(static_cast<std::uint64_t>(observer),
            static_cast<std::uint64_t>(target), /*c=*/0x91eu) %
      static_cast<std::uint64_t>(span + 1));
  return params_.min_detection_delay + jitter;
}

FdValue PartiallyPerfectOracle::query_past(ProcessId observer, Tick t,
                                           const model::PastView& past) const {
  FdValue out;
  out.suspects = ProcessSet(n());
  // Only processes with a *smaller* id are ever suspected: p_j gets
  // completeness information about p_i exactly when j > i.
  for (ProcessId q = 0; q < observer; ++q) {
    const Tick crash = past.crash_tick_if_past(q);
    if (crash != kNever && crash + detection_delay(observer, q) <= t) {
      out.suspects.insert(q);
    }
  }
  return out;
}

OracleFactory make_partially_perfect_factory(PartiallyPerfectParams params) {
  return [params](const model::FailurePattern& pattern, std::uint64_t seed) {
    return std::make_unique<PartiallyPerfectOracle>(pattern, seed, params);
  };
}

}  // namespace rfd::fd
