// The value output by a failure detector module at one query (Section 2.2).
//
// All detectors in the paper output suspect lists (range 2^Omega); the
// Scribe (Section 3.2.1) additionally outputs the whole past failure
// pattern F[t], which we carry as an opaque payload so the range R stays
// open-ended without templating every consumer.
#pragma once

#include <string>

#include "common/process_set.hpp"
#include "common/serialization.hpp"

namespace rfd::fd {

struct FdValue {
  /// The suspect list H(p_i, t).
  ProcessSet suspects;

  /// Range extension beyond 2^Omega (empty for classic detectors). The
  /// Scribe encodes F[t] here; consumers that only understand suspect
  /// lists simply ignore it.
  Bytes extra;

  bool operator==(const FdValue& other) const {
    return suspects == other.suspects && extra == other.extra;
  }
  bool operator!=(const FdValue& other) const { return !(*this == other); }

  std::string to_string() const {
    std::string out = suspects.to_string();
    if (!extra.empty()) {
      out += "+" + std::to_string(extra.size()) + "B";
    }
    return out;
  }
};

}  // namespace rfd::fd
