#include "fd/eventually_strong.hpp"

#include "common/assert.hpp"

namespace rfd::fd {

EventuallyStrongOracle::EventuallyStrongOracle(
    const model::FailurePattern& pattern, std::uint64_t seed,
    EventuallyStrongParams params)
    : RealisticOracle(pattern, seed), params_(params) {
  RFD_REQUIRE(params.convergence_tick >= 0);
  RFD_REQUIRE(params.churn_period > 0);
  RFD_REQUIRE(params.min_detection_delay >= 0 &&
              params.min_detection_delay <= params.max_detection_delay);
}

Tick EventuallyStrongOracle::detection_delay(ProcessId observer,
                                             ProcessId target) const {
  const Tick span = params_.max_detection_delay - params_.min_detection_delay;
  if (span == 0) return params_.min_detection_delay;
  const auto jitter = static_cast<Tick>(
      noise(static_cast<std::uint64_t>(observer),
            static_cast<std::uint64_t>(target), /*c=*/0xe51u) %
      static_cast<std::uint64_t>(span + 1));
  return params_.min_detection_delay + jitter;
}

bool EventuallyStrongOracle::churn_suspects(ProcessId observer,
                                            ProcessId target, Tick t) const {
  const auto epoch = static_cast<std::uint64_t>(t / params_.churn_period);
  const std::uint64_t h = noise(static_cast<std::uint64_t>(observer) | 1u << 20,
                                static_cast<std::uint64_t>(target), epoch);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < params_.churn_prob;
}

FdValue EventuallyStrongOracle::query_past(ProcessId observer, Tick t,
                                           const model::PastView& past) const {
  // The candidate immune process: smallest id not crashed by t. This is a
  // function of the past only; it stabilizes to the smallest correct
  // process once crashes stop.
  const ProcessSet alive = past.crashed_by(t).complement();
  const ProcessId immune = alive.min();

  FdValue out;
  out.suspects = ProcessSet(n());
  for (ProcessId q = 0; q < n(); ++q) {
    const Tick crash = past.crash_tick_if_past(q);
    if (crash != kNever && crash + detection_delay(observer, q) <= t) {
      out.suspects.insert(q);
      continue;
    }
    if (q == observer) continue;
    const bool immune_now = (q == immune) && (t >= params_.convergence_tick);
    if (!immune_now && churn_suspects(observer, q, t)) {
      out.suspects.insert(q);
    }
  }
  return out;
}

OracleFactory make_eventually_strong_factory(EventuallyStrongParams params) {
  return [params](const model::FailurePattern& pattern, std::uint64_t seed) {
    return std::make_unique<EventuallyStrongOracle>(pattern, seed, params);
  };
}

}  // namespace rfd::fd
