// The leader oracle Omega, embedded as a suspect-list detector.
//
// Omega eventually makes every correct process trust the same correct
// process. It is the weakest detector for consensus with a correct
// majority and is equivalent to <>S under the classic embedding used
// here: the module output suspects EVERYONE except the current leader
// (so weak completeness is immediate and eventual weak accuracy is the
// leader's stability). The trusted leader also rides in FdValue::extra
// for algorithms that want Omega's native interface.
//
// Realistic by construction: the pre-convergence leader guess is noise
// over the processes not crashed *yet*; the converged leader is the
// smallest process not crashed yet, which stabilizes to the smallest
// correct process once crashes stop. This is an extension beyond the
// paper's zoo (Section 1.2 background), useful for contrasting the
// majority-world against the unbounded-crash world the paper collapses.
#pragma once

#include "fd/oracle.hpp"

namespace rfd::fd {

struct OmegaParams {
  Tick convergence_tick = 60;
  Tick churn_period = 5;
};

class OmegaOracle final : public RealisticOracle {
 public:
  OmegaOracle(const model::FailurePattern& pattern, std::uint64_t seed,
              OmegaParams params = {});

  std::string name() const override { return "Omega"; }

  /// The leader trusted by `observer` at `t` (-1 when every process has
  /// crashed).
  ProcessId leader(ProcessId observer, Tick t) const;

  /// Decodes the trusted leader from an Omega output.
  static ProcessId decode_leader(const FdValue& value);

 protected:
  FdValue query_past(ProcessId observer, Tick t,
                     const model::PastView& past) const override;

 private:
  OmegaParams params_;
};

OracleFactory make_omega_factory(OmegaParams params = {});

}  // namespace rfd::fd
