#include "fd/realism.hpp"

#include "common/rng.hpp"
#include "model/environment.hpp"

namespace rfd::fd {

RealismReport check_realism_pair(const OracleFactory& factory,
                                 const model::FailurePattern& f1,
                                 const model::FailurePattern& f2,
                                 Tick agree_until,
                                 const std::vector<std::uint64_t>& seeds) {
  RFD_REQUIRE(f1.agrees_up_to(f2, agree_until));
  const Tick horizon = agree_until + 1;

  // Pre-sample all D(F2) histories once.
  std::vector<History> d_of_f2;
  d_of_f2.reserve(seeds.size());
  for (auto s : seeds) {
    d_of_f2.push_back(sample_history(*factory(f2, s), horizon));
  }

  for (auto s : seeds) {
    const History h1 = sample_history(*factory(f1, s), horizon);
    bool matched = false;
    for (const auto& h2 : d_of_f2) {
      if (h1.prefix_equal(h2, agree_until)) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      RealismReport report;
      report.realistic = false;
      report.counterexample =
          "history of D(" + f1.to_string() + ") with seed " +
          std::to_string(s) + " has no matching prefix in D(" +
          f2.to_string() + ") up to t=" + std::to_string(agree_until);
      return report;
    }
  }
  return {};
}

RealismReport check_realism_suite(const OracleFactory& factory, ProcessId n,
                                  const std::vector<std::uint64_t>& seeds,
                                  std::uint64_t pattern_seed,
                                  int random_pairs) {
  // The paper's own counterexample pair (Section 3.2.2).
  {
    const auto f1 = model::single_crash(n, /*p=*/0, /*t=*/10);
    const auto f2 = model::all_correct(n);
    const auto report = check_realism_pair(factory, f1, f2, /*agree_until=*/9,
                                           seeds);
    if (!report.realistic) return report;
  }

  // Random pairs: a shared prefix of crashes, then divergent futures.
  Rng rng(pattern_seed);
  for (int i = 0; i < random_pairs; ++i) {
    const Tick agree_until = rng.range(5, 40);
    Rng pattern_rng = rng.split(static_cast<std::uint64_t>(i));
    auto shared = model::random_crashes(
        n, static_cast<ProcessId>(rng.range(0, n / 2)), agree_until + 1,
        pattern_rng);
    model::FailurePattern f1 = shared;
    model::FailurePattern f2 = shared;
    // Diverge strictly after the agreement point.
    const auto future1 = static_cast<ProcessId>(rng.below(n));
    const auto future2 = static_cast<ProcessId>(rng.below(n));
    if (f1.crash_tick(future1) > agree_until + 1) {
      f1.crash_at(future1, agree_until + 1 + rng.range(1, 20));
    }
    if (f2.crash_tick(future2) > agree_until + 1 &&
        f2.crash_tick(future2) == kNever) {
      f2.crash_at(future2, agree_until + 1 + rng.range(21, 40));
    }
    if (!f1.agrees_up_to(f2, agree_until)) continue;
    const auto report =
        check_realism_pair(factory, f1, f2, agree_until, seeds);
    if (!report.realistic) return report;
  }
  return {};
}

}  // namespace rfd::fd
