// The class <>P of Eventually Perfect failure detectors:
//   strong completeness, plus *eventual* strong accuracy - there is a time
//   after which no alive process is suspected.
//
// Before `convergence_tick` the oracle injects false suspicions (churn
// noise re-drawn every churn_period ticks, mimicking aggressive timeouts
// during an unstable period); from convergence_tick on it behaves exactly
// like the PerfectOracle. Realistic by construction.
#pragma once

#include "fd/oracle.hpp"

namespace rfd::fd {

struct EventuallyPerfectParams {
  Tick convergence_tick = 60;
  double churn_prob = 0.3;
  Tick churn_period = 5;
  Tick min_detection_delay = 1;
  Tick max_detection_delay = 5;
};

class EventuallyPerfectOracle final : public RealisticOracle {
 public:
  EventuallyPerfectOracle(const model::FailurePattern& pattern,
                          std::uint64_t seed,
                          EventuallyPerfectParams params = {});

  std::string name() const override { return "<>P"; }

  Tick detection_delay(ProcessId observer, ProcessId target) const;
  Tick convergence_tick() const { return params_.convergence_tick; }

 protected:
  FdValue query_past(ProcessId observer, Tick t,
                     const model::PastView& past) const override;

 private:
  bool churn_suspects(ProcessId observer, ProcessId target, Tick t) const;

  EventuallyPerfectParams params_;
};

OracleFactory make_eventually_perfect_factory(
    EventuallyPerfectParams params = {});

}  // namespace rfd::fd
