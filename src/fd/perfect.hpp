// The class P of Perfect failure detectors (Chandra-Toueg):
//   strong completeness - every crashed process is eventually permanently
//     suspected by every correct process;
//   strong accuracy - no process is suspected before it crashes.
//
// This oracle suspects q at observer o exactly when q crashed at least
// delay(o, q) ticks ago, with a per-(observer, target) detection delay
// drawn deterministically from [min_detection_delay, max_detection_delay].
// Accuracy holds because delays are non-negative; realism holds
// structurally (only PastView is consulted).
#pragma once

#include "fd/oracle.hpp"

namespace rfd::fd {

struct PerfectParams {
  Tick min_detection_delay = 0;
  Tick max_detection_delay = 4;
};

class PerfectOracle final : public RealisticOracle {
 public:
  PerfectOracle(const model::FailurePattern& pattern, std::uint64_t seed,
                PerfectParams params = {});

  std::string name() const override { return "P"; }

  /// The deterministic detection delay for the (observer, target) pair.
  Tick detection_delay(ProcessId observer, ProcessId target) const;

 protected:
  FdValue query_past(ProcessId observer, Tick t,
                     const model::PastView& past) const override;

 private:
  PerfectParams params_;
};

OracleFactory make_perfect_factory(PerfectParams params = {});

}  // namespace rfd::fd
