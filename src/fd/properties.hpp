// Checkers for the completeness / accuracy axioms defining the
// Chandra-Toueg failure detector classes, evaluated on a sampled history
// over a bounded window.
//
// Eventual ("there is a time after which ...") properties are checked as
// suffix stability: the property must hold continuously from some tick
// t* <= horizon - min_suffix through the end of the window. The suffix
// floor guards against a noisy detector looking converged merely because
// the window ended; callers pick it from the detector's churn parameters.
#pragma once

#include <string>

#include "fd/history.hpp"
#include "model/failure_pattern.hpp"

namespace rfd::fd {

struct CheckResult {
  bool ok = true;
  std::string detail;  // human-readable witness when ok == false

  static CheckResult pass() { return {}; }
  static CheckResult fail(std::string why) { return {false, std::move(why)}; }
  explicit operator bool() const { return ok; }
};

/// Every crashed process is eventually permanently suspected by every
/// correct process (within the window).
CheckResult strong_completeness(const model::FailurePattern& f,
                                const History& h);

/// Every crashed process is eventually permanently suspected by SOME
/// correct process.
CheckResult weak_completeness(const model::FailurePattern& f,
                              const History& h);

/// P< completeness: a crashed p_i is eventually permanently suspected by
/// every correct p_j with j > i (Section 6.2).
CheckResult partial_completeness(const model::FailurePattern& f,
                                 const History& h);

/// No process is suspected before it crashes: for all q, t the suspect set
/// contains no process alive at t.
CheckResult strong_accuracy(const model::FailurePattern& f, const History& h);

/// Some correct process is never suspected by anyone. Vacuously true when
/// the pattern has no correct process (class definitions assume at least
/// one).
CheckResult weak_accuracy(const model::FailurePattern& f, const History& h);

/// There is a tick t* <= horizon - min_suffix from which no alive process
/// is ever suspected.
CheckResult eventual_strong_accuracy(const model::FailurePattern& f,
                                     const History& h, Tick min_suffix);

/// There is a tick t* <= horizon - min_suffix and a correct process never
/// suspected from t* on.
CheckResult eventual_weak_accuracy(const model::FailurePattern& f,
                                   const History& h, Tick min_suffix);

/// Which classes' axioms the sampled history satisfies on this window.
struct Classification {
  bool perfect = false;            // P : strong completeness + strong accuracy
  bool strong = false;             // S : strong completeness + weak accuracy
  bool eventually_perfect = false; // <>P
  bool eventually_strong = false;  // <>S
  bool partially_perfect = false;  // P< : partial completeness + strong acc.

  std::string to_string() const;
};

Classification classify(const model::FailurePattern& f, const History& h,
                        Tick min_suffix);

}  // namespace rfd::fd
