#include "fd/scribe.hpp"

namespace rfd::fd {

ScribeOracle::ScribeOracle(const model::FailurePattern& pattern,
                           std::uint64_t seed)
    : RealisticOracle(pattern, seed) {}

FdValue ScribeOracle::query_past(ProcessId /*observer*/, Tick t,
                                 const model::PastView& past) const {
  FdValue out;
  out.suspects = past.crashed_by(t);
  Writer w;
  w.varint(n());
  for (ProcessId q = 0; q < n(); ++q) {
    const Tick crash = past.crash_tick_if_past(q);
    w.varint(crash == kNever ? -1 : crash);
  }
  out.extra = std::move(w).take();
  return out;
}

std::vector<Tick> ScribeOracle::decode_past(const FdValue& value) {
  Reader r(value.extra);
  const auto n = r.varint();
  std::vector<Tick> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const Tick t = r.varint();
    out.push_back(t < 0 ? kNever : t);
  }
  return out;
}

OracleFactory make_scribe_factory() {
  return [](const model::FailurePattern& pattern, std::uint64_t seed) {
    return std::make_unique<ScribeOracle>(pattern, seed);
  };
}

}  // namespace rfd::fd
