#include "fd/perfect.hpp"

#include "common/assert.hpp"

namespace rfd::fd {

PerfectOracle::PerfectOracle(const model::FailurePattern& pattern,
                             std::uint64_t seed, PerfectParams params)
    : RealisticOracle(pattern, seed), params_(params) {
  RFD_REQUIRE(params.min_detection_delay >= 0 &&
              params.min_detection_delay <= params.max_detection_delay);
}

Tick PerfectOracle::detection_delay(ProcessId observer,
                                    ProcessId target) const {
  const Tick span = params_.max_detection_delay - params_.min_detection_delay;
  if (span == 0) return params_.min_detection_delay;
  const auto jitter = static_cast<Tick>(
      noise(static_cast<std::uint64_t>(observer),
            static_cast<std::uint64_t>(target), /*c=*/0x9e1ec7) %
      static_cast<std::uint64_t>(span + 1));
  return params_.min_detection_delay + jitter;
}

FdValue PerfectOracle::query_past(ProcessId observer, Tick t,
                                  const model::PastView& past) const {
  FdValue out;
  out.suspects = ProcessSet(n());
  for (ProcessId q = 0; q < n(); ++q) {
    const Tick crash = past.crash_tick_if_past(q);
    if (crash != kNever && crash + detection_delay(observer, q) <= t) {
      out.suspects.insert(q);
    }
  }
  return out;
}

OracleFactory make_perfect_factory(PerfectParams params) {
  return [params](const model::FailurePattern& pattern, std::uint64_t seed) {
    return std::make_unique<PerfectOracle>(pattern, seed, params);
  };
}

}  // namespace rfd::fd
