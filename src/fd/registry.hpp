// Name -> factory registry for the detector zoo, used by benches, examples
// and parameterized tests.
#pragma once

#include <string>
#include <vector>

#include "fd/oracle.hpp"

namespace rfd::fd {

struct DetectorSpec {
  std::string name;        // registry key, e.g. "P", "<>S", "Marabout"
  OracleFactory factory;   // with the library's default parameters
  bool realistic;          // realistic by construction?
  std::string description;
};

/// The standard detector zoo: P, Scribe, <>P, <>S, P<, Marabout, S(cheat).
const std::vector<DetectorSpec>& standard_detectors();

/// Lookup by name; aborts on unknown names (registry keys are code, not
/// user input).
const DetectorSpec& find_detector(const std::string& name);

}  // namespace rfd::fd
