// Recorded failure detector histories H: Omega x Phi -> R (Section 2.2).
//
// Property checking (completeness/accuracy axioms, realism) needs the whole
// history on a bounded window, so we sample oracles densely over
// [0, horizon) and analyse the resulting table.
#pragma once

#include <vector>

#include "fd/fd_value.hpp"
#include "fd/oracle.hpp"

namespace rfd::fd {

class History {
 public:
  History(ProcessId n, Tick horizon);

  ProcessId n() const { return n_; }
  Tick horizon() const { return horizon_; }

  void record(ProcessId p, Tick t, FdValue v);
  const FdValue& at(ProcessId p, Tick t) const;

  /// Whether p suspects q at tick t.
  bool suspects(ProcessId p, ProcessId q, Tick t) const {
    return at(p, t).suspects.contains(q);
  }

  /// First tick from which `p` suspects `q` continuously through the end of
  /// the window, or kNever if the suspicion is not stable by the horizon.
  Tick stable_suspicion_from(ProcessId p, ProcessId q) const;

  /// True when the two histories agree at every process for every tick <= t
  /// (the comparison used by the realism definition, Section 3.1).
  bool prefix_equal(const History& other, Tick t) const;

 private:
  ProcessId n_;
  Tick horizon_;
  std::vector<std::vector<FdValue>> cells_;  // [process][tick]
};

/// Samples H(p, t) for all p and all t in [0, horizon).
History sample_history(const Oracle& oracle, Tick horizon);

}  // namespace rfd::fd
