// The Marabout M (Section 3.2.2, after [Guerraoui 2001]): at every process
// and every time, M outputs the constant list of processes that have
// crashed *or will crash* in the failure pattern. M belongs to <>P and to
// S, yet it is accurate about the future rather than the past, so it is
// incomparable with P and it is NOT realistic: two patterns that agree up
// to t but diverge later already produce different outputs at time 0.
//
// M is the paper's witness that the lower bounds of Sections 4 and 5 need
// the realism restriction: consensus and TRB are solvable with M under
// unbounded crashes (see algo/consensus/marabout_consensus) even though M
// cannot be transformed into P.
#pragma once

#include "fd/oracle.hpp"

namespace rfd::fd {

class MaraboutOracle final : public ClairvoyantOracle {
 public:
  MaraboutOracle(const model::FailurePattern& pattern, std::uint64_t seed);

  std::string name() const override { return "Marabout"; }

 protected:
  FdValue query_full(ProcessId observer, Tick t,
                     const model::FullView& full) const override;
};

OracleFactory make_marabout_factory();

}  // namespace rfd::fd
