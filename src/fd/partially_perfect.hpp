// The class P< of Partially Perfect failure detectors (Section 6.2):
//   strong accuracy - no process suspected before it crashes;
//   partial completeness - if p_i crashes then eventually every correct
//     p_j with j > i permanently suspects p_i.
//
// Observer p_j only ever suspects processes with smaller ids; in
// particular p_0's module is forever silent. P< is strictly weaker than P
// when crashes are unbounded (p_i learns nothing about p_j for j > i), yet
// it solves *correct-restricted* consensus (see algo/consensus/cr_chain),
// which is the paper's separation between uniform and non-uniform
// consensus. Realistic by construction.
#pragma once

#include "fd/oracle.hpp"

namespace rfd::fd {

struct PartiallyPerfectParams {
  Tick min_detection_delay = 0;
  Tick max_detection_delay = 4;
};

class PartiallyPerfectOracle final : public RealisticOracle {
 public:
  PartiallyPerfectOracle(const model::FailurePattern& pattern,
                         std::uint64_t seed,
                         PartiallyPerfectParams params = {});

  std::string name() const override { return "P<"; }

  Tick detection_delay(ProcessId observer, ProcessId target) const;

 protected:
  FdValue query_past(ProcessId observer, Tick t,
                     const model::PastView& past) const override;

 private:
  PartiallyPerfectParams params_;
};

OracleFactory make_partially_perfect_factory(
    PartiallyPerfectParams params = {});

}  // namespace rfd::fd
