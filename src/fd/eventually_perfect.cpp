#include "fd/eventually_perfect.hpp"

#include "common/assert.hpp"

namespace rfd::fd {

EventuallyPerfectOracle::EventuallyPerfectOracle(
    const model::FailurePattern& pattern, std::uint64_t seed,
    EventuallyPerfectParams params)
    : RealisticOracle(pattern, seed), params_(params) {
  RFD_REQUIRE(params.convergence_tick >= 0);
  RFD_REQUIRE(params.churn_period > 0);
  RFD_REQUIRE(params.min_detection_delay >= 0 &&
              params.min_detection_delay <= params.max_detection_delay);
}

Tick EventuallyPerfectOracle::detection_delay(ProcessId observer,
                                              ProcessId target) const {
  const Tick span = params_.max_detection_delay - params_.min_detection_delay;
  if (span == 0) return params_.min_detection_delay;
  const auto jitter = static_cast<Tick>(
      noise(static_cast<std::uint64_t>(observer),
            static_cast<std::uint64_t>(target), /*c=*/0xd1ffu) %
      static_cast<std::uint64_t>(span + 1));
  return params_.min_detection_delay + jitter;
}

bool EventuallyPerfectOracle::churn_suspects(ProcessId observer,
                                             ProcessId target, Tick t) const {
  const auto epoch = static_cast<std::uint64_t>(t / params_.churn_period);
  const std::uint64_t h = noise(static_cast<std::uint64_t>(observer),
                                static_cast<std::uint64_t>(target), epoch);
  // Map hash to [0,1) and compare with churn probability.
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < params_.churn_prob;
}

FdValue EventuallyPerfectOracle::query_past(ProcessId observer, Tick t,
                                            const model::PastView& past) const {
  FdValue out;
  out.suspects = ProcessSet(n());
  for (ProcessId q = 0; q < n(); ++q) {
    const Tick crash = past.crash_tick_if_past(q);
    if (crash != kNever && crash + detection_delay(observer, q) <= t) {
      out.suspects.insert(q);
      continue;
    }
    // Pre-convergence churn: falsely suspect alive processes (never self).
    if (t < params_.convergence_tick && q != observer &&
        churn_suspects(observer, q, t)) {
      out.suspects.insert(q);
    }
  }
  return out;
}

OracleFactory make_eventually_perfect_factory(EventuallyPerfectParams params) {
  return [params](const model::FailurePattern& pattern, std::uint64_t seed) {
    return std::make_unique<EventuallyPerfectOracle>(pattern, seed, params);
  };
}

}  // namespace rfd::fd
