#include "fd/properties.hpp"

namespace rfd::fd {
namespace {

std::string pid(ProcessId p) { return "p" + std::to_string(p); }

/// True when observer suspects target continuously from some tick
/// <= horizon-1 through the end of the window.
bool permanently_suspects(const History& h, ProcessId observer,
                          ProcessId target) {
  return h.stable_suspicion_from(observer, target) != kNever;
}

}  // namespace

CheckResult strong_completeness(const model::FailurePattern& f,
                                const History& h) {
  const ProcessSet crashed = f.faulty();
  const ProcessSet correct = f.correct();
  CheckResult out = CheckResult::pass();
  crashed.for_each([&](ProcessId dead) {
    correct.for_each([&](ProcessId obs) {
      if (!out.ok) return;
      if (!permanently_suspects(h, obs, dead)) {
        out = CheckResult::fail("crashed " + pid(dead) +
                                " not permanently suspected by correct " +
                                pid(obs));
      }
    });
  });
  return out;
}

CheckResult weak_completeness(const model::FailurePattern& f,
                              const History& h) {
  const ProcessSet crashed = f.faulty();
  const ProcessSet correct = f.correct();
  CheckResult out = CheckResult::pass();
  crashed.for_each([&](ProcessId dead) {
    if (!out.ok) return;
    bool anyone = false;
    correct.for_each([&](ProcessId obs) {
      anyone = anyone || permanently_suspects(h, obs, dead);
    });
    if (!anyone && correct.count() > 0) {
      out = CheckResult::fail("crashed " + pid(dead) +
                              " not permanently suspected by any correct "
                              "process");
    }
  });
  return out;
}

CheckResult partial_completeness(const model::FailurePattern& f,
                                 const History& h) {
  const ProcessSet crashed = f.faulty();
  const ProcessSet correct = f.correct();
  CheckResult out = CheckResult::pass();
  crashed.for_each([&](ProcessId dead) {
    correct.for_each([&](ProcessId obs) {
      if (!out.ok || obs <= dead) return;
      if (!permanently_suspects(h, obs, dead)) {
        out = CheckResult::fail("crashed " + pid(dead) +
                                " not permanently suspected by correct " +
                                pid(obs) + " (which has a larger id)");
      }
    });
  });
  return out;
}

CheckResult strong_accuracy(const model::FailurePattern& f, const History& h) {
  for (Tick t = 0; t < h.horizon(); ++t) {
    const ProcessSet alive = f.alive_at(t);
    for (ProcessId obs = 0; obs < h.n(); ++obs) {
      const ProcessSet& suspects = h.at(obs, t).suspects;
      if (suspects.intersects(alive)) {
        const ProcessId victim = (suspects & alive).min();
        return CheckResult::fail(pid(obs) + " suspects alive " + pid(victim) +
                                 " at t=" + std::to_string(t));
      }
    }
  }
  return CheckResult::pass();
}

CheckResult weak_accuracy(const model::FailurePattern& f, const History& h) {
  const ProcessSet correct = f.correct();
  if (correct.empty()) return CheckResult::pass();  // vacuous
  bool found = false;
  correct.for_each([&](ProcessId candidate) {
    if (found) return;
    bool ever_suspected = false;
    for (Tick t = 0; t < h.horizon() && !ever_suspected; ++t) {
      for (ProcessId obs = 0; obs < h.n(); ++obs) {
        if (h.suspects(obs, candidate, t)) {
          ever_suspected = true;
          break;
        }
      }
    }
    found = found || !ever_suspected;
  });
  return found ? CheckResult::pass()
               : CheckResult::fail(
                     "every correct process is suspected at some point");
}

CheckResult eventual_strong_accuracy(const model::FailurePattern& f,
                                     const History& h, Tick min_suffix) {
  // Find the last tick at which an alive process is suspected; the property
  // holds when a clean suffix of at least min_suffix ticks remains.
  Tick last_violation = -1;
  for (Tick t = 0; t < h.horizon(); ++t) {
    const ProcessSet alive = f.alive_at(t);
    for (ProcessId obs = 0; obs < h.n(); ++obs) {
      if (h.at(obs, t).suspects.intersects(alive)) {
        last_violation = t;
      }
    }
  }
  if (last_violation + 1 + min_suffix <= h.horizon()) {
    return CheckResult::pass();
  }
  return CheckResult::fail("alive process still suspected at t=" +
                           std::to_string(last_violation) +
                           " (insufficient clean suffix)");
}

CheckResult eventual_weak_accuracy(const model::FailurePattern& f,
                                   const History& h, Tick min_suffix) {
  const ProcessSet correct = f.correct();
  if (correct.empty()) return CheckResult::pass();  // vacuous
  bool found = false;
  correct.for_each([&](ProcessId candidate) {
    if (found) return;
    Tick last_suspected = -1;
    for (Tick t = 0; t < h.horizon(); ++t) {
      for (ProcessId obs = 0; obs < h.n(); ++obs) {
        if (h.suspects(obs, candidate, t)) last_suspected = t;
      }
    }
    found = found || (last_suspected + 1 + min_suffix <= h.horizon());
  });
  return found ? CheckResult::pass()
               : CheckResult::fail(
                     "no correct process has a clean suspicion-free suffix");
}

std::string Classification::to_string() const {
  std::string out;
  auto add = [&out](bool flag, const char* name) {
    if (!flag) return;
    if (!out.empty()) out += ",";
    out += name;
  };
  add(perfect, "P");
  add(strong, "S");
  add(eventually_perfect, "<>P");
  add(eventually_strong, "<>S");
  add(partially_perfect, "P<");
  return out.empty() ? "-" : out;
}

Classification classify(const model::FailurePattern& f, const History& h,
                        Tick min_suffix) {
  Classification c;
  const bool sc = strong_completeness(f, h).ok;
  const bool pc = partial_completeness(f, h).ok;
  const bool sa = strong_accuracy(f, h).ok;
  const bool wa = weak_accuracy(f, h).ok;
  const bool esa = eventual_strong_accuracy(f, h, min_suffix).ok;
  const bool ewa = eventual_weak_accuracy(f, h, min_suffix).ok;
  c.perfect = sc && sa;
  c.strong = sc && wa;
  c.eventually_perfect = sc && esa;
  c.eventually_strong = sc && ewa;
  c.partially_perfect = pc && sa;
  return c;
}

}  // namespace rfd::fd
