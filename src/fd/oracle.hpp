// Failure detector oracles.
//
// A failure detector D maps each failure pattern F to a set of histories
// D(F) (Section 2.2). An Oracle is one sampled history: constructed from a
// pattern and a seed, it answers H(p, t) queries. Oracles are pure
// functions of (observer, tick, seed, pattern) so the same object can be
// queried in any order and always describes one well-defined history.
//
// Realism (Section 3.1) is enforced structurally: subclasses of
// RealisticOracle only ever see the pattern through a PastView clipped at
// the query tick, so they *cannot* read the future. Subclasses of
// ClairvoyantOracle receive the FullView and are thereby declared
// non-realistic (the Marabout of Section 3.2.2 lives there).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "fd/fd_value.hpp"
#include "model/failure_pattern.hpp"

namespace rfd::fd {

class Oracle {
 public:
  virtual ~Oracle() = default;

  /// H(observer, t): the detector module output of `observer` at tick t.
  virtual FdValue query(ProcessId observer, Tick t) const = 0;

  /// Whether the construction guarantees the realism property of §3.1.
  virtual bool realistic_by_construction() const = 0;

  /// Human-readable detector name (e.g. "P", "S*", "<>S", "Marabout").
  virtual std::string name() const = 0;

  ProcessId n() const { return pattern_->n(); }
  const model::FailurePattern& pattern() const { return *pattern_; }
  std::uint64_t seed() const { return seed_; }

 protected:
  Oracle(const model::FailurePattern& pattern, std::uint64_t seed)
      : pattern_(&pattern), seed_(seed) {}

  /// Stateless pseudo-random suspicion noise: a pure hash of the oracle
  /// seed and the query coordinates, so histories are well-defined.
  std::uint64_t noise(std::uint64_t a, std::uint64_t b, std::uint64_t c) const {
    return mix_seed(mix_seed(seed_, a), mix_seed(b, c));
  }

 private:
  const model::FailurePattern* pattern_;
  std::uint64_t seed_;
};

/// Base for oracles that cannot guess the future: the pattern is only ever
/// exposed through PastView(pattern, t) during a query at tick t.
class RealisticOracle : public Oracle {
 public:
  FdValue query(ProcessId observer, Tick t) const final {
    return query_past(observer, t, model::PastView(pattern(), t));
  }
  bool realistic_by_construction() const final { return true; }

 protected:
  using Oracle::Oracle;
  virtual FdValue query_past(ProcessId observer, Tick t,
                             const model::PastView& past) const = 0;
};

/// Base for oracles that may consult the future (non-realistic).
class ClairvoyantOracle : public Oracle {
 public:
  FdValue query(ProcessId observer, Tick t) const final {
    return query_full(observer, t, model::FullView(pattern()));
  }
  bool realistic_by_construction() const final { return false; }

 protected:
  using Oracle::Oracle;
  virtual FdValue query_full(ProcessId observer, Tick t,
                             const model::FullView& full) const = 0;
};

/// Builds one sampled history of a detector for a given pattern and seed.
using OracleFactory = std::function<std::unique_ptr<Oracle>(
    const model::FailurePattern& pattern, std::uint64_t seed)>;

}  // namespace rfd::fd
