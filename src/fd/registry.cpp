#include "fd/registry.hpp"

#include "common/assert.hpp"
#include "fd/cheating_strong.hpp"
#include "fd/eventually_perfect.hpp"
#include "fd/eventually_strong.hpp"
#include "fd/marabout.hpp"
#include "fd/omega.hpp"
#include "fd/partially_perfect.hpp"
#include "fd/perfect.hpp"
#include "fd/scribe.hpp"

namespace rfd::fd {

const std::vector<DetectorSpec>& standard_detectors() {
  static const std::vector<DetectorSpec> specs = [] {
    std::vector<DetectorSpec> out;
    out.push_back({"P", make_perfect_factory(), true,
                   "Perfect: strong completeness + strong accuracy"});
    out.push_back({"Scribe", make_scribe_factory(), true,
                   "Outputs the whole past pattern F[t]; member of P"});
    out.push_back({"<>P", make_eventually_perfect_factory(), true,
                   "Eventually Perfect: churns before convergence"});
    out.push_back({"<>S", make_eventually_strong_factory(), true,
                   "Eventually Strong: only one immune process after "
                   "convergence"});
    out.push_back({"P<", make_partially_perfect_factory(), true,
                   "Partially Perfect: completeness only toward larger ids"});
    out.push_back({"Omega", make_omega_factory(), true,
                   "Leader oracle embedded as suspect-all-but-leader; "
                   "equivalent to <>S"});
    out.push_back({"Marabout", make_marabout_factory(), false,
                   "Constantly outputs the faulty set of the whole run"});
    out.push_back({"S(cheat)", make_cheating_strong_factory(), false,
                   "Strong but not Perfect; immune process chosen from the "
                   "future"});
    return out;
  }();
  return specs;
}

const DetectorSpec& find_detector(const std::string& name) {
  for (const auto& spec : standard_detectors()) {
    if (spec.name == name) return spec;
  }
  RFD_UNREACHABLE(("unknown detector: " + name).c_str());
}

}  // namespace rfd::fd
