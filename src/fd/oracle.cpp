#include "fd/oracle.hpp"

// The oracle hierarchy is header-only today; this translation unit anchors
// the vtables so the library has a home for them.

namespace rfd::fd {}  // namespace rfd::fd
