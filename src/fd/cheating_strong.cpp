#include "fd/cheating_strong.hpp"

#include "common/assert.hpp"

namespace rfd::fd {

CheatingStrongOracle::CheatingStrongOracle(const model::FailurePattern& pattern,
                                           std::uint64_t seed,
                                           CheatingStrongParams params)
    : ClairvoyantOracle(pattern, seed), params_(params) {
  RFD_REQUIRE(params.churn_period > 0);
  RFD_REQUIRE(params.min_detection_delay >= 0 &&
              params.min_detection_delay <= params.max_detection_delay);
}

Tick CheatingStrongOracle::detection_delay(ProcessId observer,
                                           ProcessId target) const {
  const Tick span = params_.max_detection_delay - params_.min_detection_delay;
  if (span == 0) return params_.min_detection_delay;
  const auto jitter = static_cast<Tick>(
      noise(static_cast<std::uint64_t>(observer),
            static_cast<std::uint64_t>(target), /*c=*/0x5caffu) %
      static_cast<std::uint64_t>(span + 1));
  return params_.min_detection_delay + jitter;
}

bool CheatingStrongOracle::churn_suspects(ProcessId observer, ProcessId target,
                                          Tick t) const {
  const auto epoch = static_cast<std::uint64_t>(t / params_.churn_period);
  const std::uint64_t h =
      noise(static_cast<std::uint64_t>(observer) | 1u << 21,
            static_cast<std::uint64_t>(target), epoch);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < params_.churn_prob;
}

FdValue CheatingStrongOracle::query_full(ProcessId observer, Tick t,
                                         const model::FullView& full) const {
  // Future knowledge: the immune process is the smallest-id process that
  // will never crash in this pattern.
  const ProcessId immune = full.correct().min();

  FdValue out;
  out.suspects = ProcessSet(n());
  for (ProcessId q = 0; q < n(); ++q) {
    const Tick crash = full.pattern().crash_tick(q);
    if (crash != kNever && crash + detection_delay(observer, q) <= t) {
      out.suspects.insert(q);
      continue;
    }
    if (q == observer || q == immune) continue;
    if (churn_suspects(observer, q, t)) {
      out.suspects.insert(q);
    }
  }
  return out;
}

OracleFactory make_cheating_strong_factory(CheatingStrongParams params) {
  return [params](const model::FailurePattern& pattern, std::uint64_t seed) {
    return std::make_unique<CheatingStrongOracle>(pattern, seed, params);
  };
}

}  // namespace rfd::fd
