// The realism property of Section 3.1, as an executable check.
//
// D is realistic iff for every pair of failure patterns (F, F') that agree
// up to time t, every history H in D(F) has a counterpart H' in D(F') with
// H(p, t1) = H'(p, t1) for all p and all t1 <= t: the detector cannot
// distinguish two patterns by what happens after t.
//
// The check is necessarily existential over D(F'): we sample D(F') over a
// set of seeds and search for a matching prefix. For the library's
// realistic oracles the *same* seed reproduces the prefix (they are pure
// functions of the pattern prefix and the seed), so the check is exact.
// For clairvoyant oracles no seed can match once the patterns' futures
// diverge - which is precisely the paper's Marabout argument.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fd/history.hpp"
#include "fd/oracle.hpp"
#include "model/failure_pattern.hpp"

namespace rfd::fd {

struct RealismReport {
  bool realistic = true;
  /// When !realistic: which pattern pair / seed exhibited the violation.
  std::string counterexample;
};

/// Checks the realism property for one pattern pair that agrees up to
/// `agree_until`, sampling D(F1) with each seed and searching all seeds of
/// D(F2) for a matching prefix.
RealismReport check_realism_pair(const OracleFactory& factory,
                                 const model::FailurePattern& f1,
                                 const model::FailurePattern& f2,
                                 Tick agree_until,
                                 const std::vector<std::uint64_t>& seeds);

/// Runs the paper's Marabout scenario (Section 3.2.2: F1 = "p0 crashes at
/// 10", F2 = all correct, compared up to t = 9) plus a family of random
/// divergent-future pairs over n processes.
RealismReport check_realism_suite(const OracleFactory& factory, ProcessId n,
                                  const std::vector<std::uint64_t>& seeds,
                                  std::uint64_t pattern_seed = 0x0fd0,
                                  int random_pairs = 16);

}  // namespace rfd::fd
