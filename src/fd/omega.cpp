#include "fd/omega.hpp"

#include "common/assert.hpp"

namespace rfd::fd {

OmegaOracle::OmegaOracle(const model::FailurePattern& pattern,
                         std::uint64_t seed, OmegaParams params)
    : RealisticOracle(pattern, seed), params_(params) {
  RFD_REQUIRE(params.convergence_tick >= 0);
  RFD_REQUIRE(params.churn_period > 0);
}

FdValue OmegaOracle::query_past(ProcessId observer, Tick t,
                                const model::PastView& past) const {
  const ProcessSet alive = past.crashed_by(t).complement();
  ProcessId chosen = -1;
  if (!alive.empty()) {
    if (t < params_.convergence_tick) {
      // Pre-convergence: a noisy (but past-only) guess among the living.
      const auto members = alive.members();
      const auto epoch = static_cast<std::uint64_t>(t / params_.churn_period);
      const auto idx = noise(static_cast<std::uint64_t>(observer), epoch,
                             0x03e6a) %
                       members.size();
      chosen = members[idx];
    } else {
      // Converged: the smallest process not crashed yet; stabilizes to the
      // smallest correct process.
      chosen = alive.min();
    }
  }

  FdValue out;
  out.suspects = ProcessSet::full(n());
  if (chosen >= 0) out.suspects.erase(chosen);
  Writer w;
  w.process(chosen);
  out.extra = std::move(w).take();
  return out;
}

ProcessId OmegaOracle::leader(ProcessId observer, Tick t) const {
  return decode_leader(query(observer, t));
}

ProcessId OmegaOracle::decode_leader(const FdValue& value) {
  Reader r(value.extra);
  return r.process();
}

OracleFactory make_omega_factory(OmegaParams params) {
  return [params](const model::FailurePattern& pattern, std::uint64_t seed) {
    return std::make_unique<OmegaOracle>(pattern, seed, params);
  };
}

}  // namespace rfd::fd
