#include "common/process_set.hpp"

#include <bit>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace rfd {
namespace {

std::size_t word_count(ProcessId universe_size) {
  return static_cast<std::size_t>((universe_size + 63) / 64);
}

}  // namespace

ProcessSet::ProcessSet(ProcessId universe_size)
    : universe_size_(universe_size), words_(word_count(universe_size), 0) {
  RFD_REQUIRE(universe_size >= 0);
}

ProcessSet ProcessSet::full(ProcessId universe_size) {
  ProcessSet s(universe_size);
  for (ProcessId p = 0; p < universe_size; ++p) {
    s.insert(p);
  }
  return s;
}

ProcessSet ProcessSet::of(ProcessId universe_size,
                          std::initializer_list<ProcessId> members) {
  ProcessSet s(universe_size);
  for (ProcessId p : members) {
    s.insert(p);
  }
  return s;
}

bool ProcessSet::contains(ProcessId p) const {
  if (p < 0 || p >= universe_size_) return false;
  const auto idx = static_cast<std::size_t>(p);
  return (words_[idx / 64] >> (idx % 64)) & 1u;
}

void ProcessSet::insert(ProcessId p) {
  RFD_REQUIRE_MSG(p >= 0 && p < universe_size_,
                  "process id outside the universe");
  const auto idx = static_cast<std::size_t>(p);
  words_[idx / 64] |= std::uint64_t{1} << (idx % 64);
}

void ProcessSet::erase(ProcessId p) {
  if (p < 0 || p >= universe_size_) return;
  const auto idx = static_cast<std::size_t>(p);
  words_[idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
}

void ProcessSet::clear() {
  for (auto& w : words_) w = 0;
}

ProcessId ProcessSet::count() const {
  int total = 0;
  for (auto w : words_) {
    total += std::popcount(w);
  }
  return total;
}

ProcessId ProcessSet::min() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<ProcessId>(w * 64 +
                                    static_cast<std::size_t>(
                                        std::countr_zero(words_[w])));
    }
  }
  return -1;
}

ProcessId ProcessSet::max() const {
  for (std::size_t w = words_.size(); w-- > 0;) {
    if (words_[w] != 0) {
      return static_cast<ProcessId>(w * 64 + 63 -
                                    static_cast<std::size_t>(
                                        std::countl_zero(words_[w])));
    }
  }
  return -1;
}

std::vector<ProcessId> ProcessSet::members() const {
  std::vector<ProcessId> out;
  out.reserve(static_cast<std::size_t>(count()));
  for_each([&out](ProcessId p) { out.push_back(p); });
  return out;
}

void ProcessSet::check_universe(const ProcessSet& other) const {
  RFD_REQUIRE_MSG(universe_size_ == other.universe_size_,
                  "set algebra across different universes");
}

ProcessSet& ProcessSet::operator|=(const ProcessSet& other) {
  check_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

ProcessSet& ProcessSet::operator&=(const ProcessSet& other) {
  check_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

ProcessSet& ProcessSet::operator-=(const ProcessSet& other) {
  check_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~other.words_[i];
  }
  return *this;
}

ProcessSet ProcessSet::complement() const {
  ProcessSet out(universe_size_);
  for (ProcessId p = 0; p < universe_size_; ++p) {
    if (!contains(p)) out.insert(p);
  }
  return out;
}

bool ProcessSet::is_subset_of(const ProcessSet& other) const {
  check_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool ProcessSet::intersects(const ProcessSet& other) const {
  check_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

bool ProcessSet::operator==(const ProcessSet& other) const {
  return universe_size_ == other.universe_size_ && words_ == other.words_;
}

std::uint64_t ProcessSet::hash() const {
  std::uint64_t h = static_cast<std::uint64_t>(universe_size_);
  for (auto w : words_) {
    h = mix_seed(h, w);
  }
  return h;
}

std::string ProcessSet::to_string() const {
  std::string out = "{";
  bool first = true;
  for_each([&](ProcessId p) {
    if (!first) out += ",";
    first = false;
    out += "p" + std::to_string(p);
  });
  out += "}";
  return out;
}

}  // namespace rfd
