#include "common/shutdown.hpp"

#include <atomic>
#include <csignal>

namespace rfd {
namespace {

// sig_atomic_t writes are async-signal-safe; volatile keeps the polling
// loop honest. The std::atomic mirror exists for code that wants a
// pointer to poll (ClusterConfig::stop); lock-free atomic stores are
// also signal-safe, so the handler sets both.
volatile std::sig_atomic_t g_shutdown = 0;
volatile std::sig_atomic_t g_signal = 0;
std::atomic<bool> g_shutdown_atomic{false};

extern "C" void rfd_shutdown_handler(int signum) {
  if (g_shutdown != 0) {
    // Second signal: the wind-down is taking too long for the operator's
    // taste. Restore default dispositions so the next one terminates.
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
  }
  g_shutdown = 1;
  g_signal = signum;
  g_shutdown_atomic.store(true, std::memory_order_relaxed);
}

}  // namespace

void install_shutdown_handlers() {
  std::signal(SIGINT, &rfd_shutdown_handler);
  std::signal(SIGTERM, &rfd_shutdown_handler);
}

bool shutdown_requested() { return g_shutdown != 0; }

void request_shutdown() {
  g_shutdown = 1;
  g_shutdown_atomic.store(true, std::memory_order_relaxed);
}

void reset_shutdown() {
  g_shutdown = 0;
  g_signal = 0;
  g_shutdown_atomic.store(false, std::memory_order_relaxed);
}

int shutdown_signal() { return static_cast<int>(g_signal); }

const std::atomic<bool>& shutdown_flag() { return g_shutdown_atomic; }

}  // namespace rfd
