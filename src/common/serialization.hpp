// Byte-level serialization for algorithm message payloads.
//
// Automata exchange opaque byte payloads through the simulated message
// buffer; each algorithm defines its own wire format on top of Writer /
// Reader. Keeping payloads as bytes (rather than a shared variant) keeps
// the simulator agnostic of the algorithms layered on it, exactly as a real
// transport would be.
//
// Encoding: little-endian zig-zag varints for integers, length-prefixed
// byte strings, one byte per bool. Readers perform full bounds checking and
// report malformed input through RFD_REQUIRE (a malformed payload inside
// the deterministic simulator is a programming error, not an I/O error).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/process_set.hpp"
#include "common/types.hpp"

namespace rfd {

using Bytes = std::vector<std::byte>;

class Writer {
 public:
  void u8(std::uint8_t v);
  void boolean(bool v);
  /// Zig-zag varint; encodes any int64 including negatives compactly.
  void varint(std::int64_t v);
  void value(Value v) { varint(v); }
  void process(ProcessId p) { varint(p); }
  void tick(Tick t) { varint(t); }
  void str(const std::string& s);
  void bytes(const Bytes& b);
  void process_set(const ProcessSet& s);
  /// Vector of int64 values.
  void values(const std::vector<Value>& vs);

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}

  std::uint8_t u8();
  bool boolean();
  std::int64_t varint();
  Value value() { return varint(); }
  ProcessId process() { return static_cast<ProcessId>(varint()); }
  Tick tick() { return varint(); }
  std::string str();
  Bytes bytes();
  ProcessSet process_set();
  std::vector<Value> values();

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  const Bytes& data_;
  std::size_t pos_ = 0;
};

}  // namespace rfd
