// Tiny command-line flag parser for the example binaries and bench tables.
// Supports --name=value and --name value, with typed accessors and defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rfd {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace rfd
