#include "common/table.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/assert.hpp"

namespace rfd {
namespace {

bool is_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  RFD_REQUIRE(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  RFD_REQUIRE_MSG(cells.size() == header_.size(),
                  "row width differs from header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string Table::pct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string Table::yes_no(bool v) { return v ? "yes" : "no"; }

std::string Table::render(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      const std::size_t pad = widths[c] - cell.size();
      line += ' ';
      if (is_numeric(cell)) {
        line.append(pad, ' ');
        line += cell;
      } else {
        line += cell;
        line.append(pad, ' ');
      }
      line += " |";
    }
    return line + "\n";
  };

  std::string sep = "+";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += '+';
  }
  sep += '\n';

  std::string out;
  if (!title.empty()) {
    out += "\n== " + title + " ==\n";
  }
  out += sep;
  out += render_row(header_);
  out += sep;
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  out += sep;
  return out;
}

void Table::print(const std::string& title) const {
  std::fputs(render(title).c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace rfd
