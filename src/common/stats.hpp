// Running statistics and histograms for the QoS evaluation (experiment E9)
// and the cost benchmarks (E10).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rfd {

/// Streaming summary: count / mean / variance via Welford, min/max, and
/// exact percentiles from retained samples. Retention is fine at our
/// experiment scales (tens of thousands of samples).
class Summary {
 public:
  void add(double x);

  std::int64_t count() const { return count_; }
  double mean() const;
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// Exact percentile (q in [0,1]) by sorting retained samples; 0 samples
  /// yields NaN. Sorting is deferred and cached.
  double percentile(double q) const;
  double median() const { return percentile(0.5); }

  /// Merges another summary (concatenates retained samples).
  void merge(const Summary& other);

  std::string to_string() const;

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void add(double x);
  std::int64_t total() const { return total_; }
  std::int64_t bucket_count(int i) const;
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return overflow_; }
  int buckets() const { return static_cast<int>(counts_.size()); }
  double bucket_lo(int i) const;
  double bucket_hi(int i) const;

  /// Multi-line ASCII rendering (one row per bucket with a bar).
  std::string render(int bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace rfd
