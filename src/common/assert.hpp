// Assertion machinery.
//
// RFD_REQUIRE is for preconditions and invariants that hold regardless of
// build type: simulators silently producing garbage are worse than aborting.
// The macro stays active in release builds; the simulator's inner loop is
// dominated by map lookups, not by these checks.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rfd::detail {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const char* msg) {
  std::fprintf(stderr, "RFD_REQUIRE failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace rfd::detail

#define RFD_REQUIRE(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::rfd::detail::require_failed(#expr, __FILE__, __LINE__, nullptr); \
    }                                                                  \
  } while (false)

#define RFD_REQUIRE_MSG(expr, msg)                                   \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::rfd::detail::require_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                                \
  } while (false)

/// Marks a code path that is unreachable if the module invariants hold.
#define RFD_UNREACHABLE(msg) \
  ::rfd::detail::require_failed("unreachable", __FILE__, __LINE__, msg)
