// ProcessSet: a set over Omega = {p_0 .. p_{n-1}}.
//
// Failure detector outputs (suspect lists), alive-tags on messages, and the
// correct/crashed partitions of failure patterns are all subsets of Omega.
// The paper's n is small but unbounded, so the set is a dynamic bitset
// (vector of 64-bit words) with value semantics and set-algebra operators.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rfd {

class ProcessSet {
 public:
  /// Empty set over a universe of `universe_size` processes.
  explicit ProcessSet(ProcessId universe_size = 0);

  /// Full set {0 .. universe_size-1}.
  static ProcessSet full(ProcessId universe_size);

  /// Set containing exactly the given members.
  static ProcessSet of(ProcessId universe_size,
                       std::initializer_list<ProcessId> members);

  ProcessId universe_size() const { return universe_size_; }

  bool contains(ProcessId p) const;
  void insert(ProcessId p);
  void erase(ProcessId p);
  void clear();

  /// Number of members.
  ProcessId count() const;
  bool empty() const { return count() == 0; }

  /// Lowest-id member, or -1 when empty. Used for deterministic choice
  /// rules ("first non-bottom component", "smallest non-suspected process").
  ProcessId min() const;
  /// Highest-id member, or -1 when empty.
  ProcessId max() const;

  /// Members in increasing id order.
  std::vector<ProcessId> members() const;

  /// Set algebra. Operands must share the same universe size.
  ProcessSet& operator|=(const ProcessSet& other);
  ProcessSet& operator&=(const ProcessSet& other);
  ProcessSet& operator-=(const ProcessSet& other);
  friend ProcessSet operator|(ProcessSet a, const ProcessSet& b) {
    a |= b;
    return a;
  }
  friend ProcessSet operator&(ProcessSet a, const ProcessSet& b) {
    a &= b;
    return a;
  }
  friend ProcessSet operator-(ProcessSet a, const ProcessSet& b) {
    a -= b;
    return a;
  }

  /// Complement within the universe.
  ProcessSet complement() const;

  bool is_subset_of(const ProcessSet& other) const;
  bool intersects(const ProcessSet& other) const;

  bool operator==(const ProcessSet& other) const;
  bool operator!=(const ProcessSet& other) const { return !(*this == other); }

  /// Stable 64-bit hash (for dedup in history audits).
  std::uint64_t hash() const;

  /// "{p0,p3,p5}" rendering for logs and tables.
  std::string to_string() const;

  /// Iterates members in increasing order without materializing a vector.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(static_cast<ProcessId>(w * 64 + static_cast<std::size_t>(bit)));
        word &= word - 1;
      }
    }
  }

 private:
  void check_universe(const ProcessSet& other) const;

  ProcessId universe_size_;
  std::vector<std::uint64_t> words_;
};

}  // namespace rfd
