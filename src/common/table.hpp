// ASCII table rendering for the experiment harness.
//
// Every bench binary prints its results as a paper-style table; this class
// handles column sizing, alignment and separators so the bench code reads
// like the table it produces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rfd {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; the row must have as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string num(std::int64_t v);
  static std::string fixed(double v, int decimals);
  static std::string pct(double fraction, int decimals = 1);
  static std::string yes_no(bool v);

  /// Renders with a title line, header separator, and right-aligned numeric
  /// cells (a cell is numeric if it parses as a double).
  std::string render(const std::string& title) const;

  /// Renders and writes to stdout.
  void print(const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rfd
