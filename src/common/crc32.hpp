// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
//
// Used as the integrity trailer of checkpoint files: cheap enough to run
// over multi-megabyte snapshots on every periodic save, strong enough to
// catch the torn/truncated/bit-rotted writes a crash-resume loop must
// refuse to load. Not a cryptographic MAC and not meant to be one.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace rfd {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// One-shot CRC-32 of a byte span (init/final XOR handled internally).
inline std::uint32_t crc32(const void* data, std::size_t size) {
  const auto& table = detail::crc32_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace rfd
