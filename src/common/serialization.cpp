#include "common/serialization.hpp"

#include "common/assert.hpp"

namespace rfd {

void Writer::u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }

void Writer::boolean(bool v) { u8(v ? 1 : 0); }

void Writer::varint(std::int64_t v) {
  // Zig-zag then LEB128.
  auto zz = static_cast<std::uint64_t>((v << 1) ^ (v >> 63));
  while (zz >= 0x80) {
    u8(static_cast<std::uint8_t>(zz | 0x80));
    zz >>= 7;
  }
  u8(static_cast<std::uint8_t>(zz));
}

void Writer::str(const std::string& s) {
  varint(static_cast<std::int64_t>(s.size()));
  for (char c : s) {
    buf_.push_back(static_cast<std::byte>(c));
  }
}

void Writer::bytes(const Bytes& b) {
  varint(static_cast<std::int64_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Writer::process_set(const ProcessSet& s) {
  varint(s.universe_size());
  varint(s.count());
  s.for_each([this](ProcessId p) { varint(p); });
}

void Writer::values(const std::vector<Value>& vs) {
  varint(static_cast<std::int64_t>(vs.size()));
  for (Value v : vs) {
    varint(v);
  }
}

std::uint8_t Reader::u8() {
  RFD_REQUIRE_MSG(pos_ < data_.size(), "reader past end of payload");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

bool Reader::boolean() {
  const auto v = u8();
  RFD_REQUIRE_MSG(v <= 1, "malformed bool");
  return v == 1;
}

std::int64_t Reader::varint() {
  std::uint64_t zz = 0;
  int shift = 0;
  while (true) {
    RFD_REQUIRE_MSG(shift < 64, "varint too long");
    const std::uint8_t b = u8();
    zz |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return static_cast<std::int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
}

std::string Reader::str() {
  const auto size = varint();
  RFD_REQUIRE(size >= 0);
  std::string out;
  out.reserve(static_cast<std::size_t>(size));
  for (std::int64_t i = 0; i < size; ++i) {
    out.push_back(static_cast<char>(u8()));
  }
  return out;
}

Bytes Reader::bytes() {
  const auto size = varint();
  RFD_REQUIRE(size >= 0);
  Bytes out;
  out.reserve(static_cast<std::size_t>(size));
  for (std::int64_t i = 0; i < size; ++i) {
    out.push_back(static_cast<std::byte>(u8()));
  }
  return out;
}

ProcessSet Reader::process_set() {
  const auto universe = static_cast<ProcessId>(varint());
  const auto count = varint();
  ProcessSet s(universe);
  for (std::int64_t i = 0; i < count; ++i) {
    s.insert(static_cast<ProcessId>(varint()));
  }
  return s;
}

std::vector<Value> Reader::values() {
  const auto size = varint();
  RFD_REQUIRE(size >= 0);
  std::vector<Value> out;
  out.reserve(static_cast<std::size_t>(size));
  for (std::int64_t i = 0; i < size; ++i) {
    out.push_back(varint());
  }
  return out;
}

}  // namespace rfd
