// Cooperative SIGINT/SIGTERM shutdown for the long-running binaries.
//
// The soak runner and the demos want Ctrl-C to mean "finish the current
// round, flush the trace ring, write the final checkpoint, emit the run
// footer" - not "die mid-write and leave a torn trace". The handler
// therefore only sets an async-signal-safe flag; every driver loop polls
// shutdown_requested() at its round boundary and winds down normally.
// A second signal while winding down restores the default disposition,
// so a third Ctrl-C always kills a wedged process.
#pragma once

#include <atomic>

namespace rfd {

/// Installs SIGINT/SIGTERM handlers that set the shutdown flag. Safe to
/// call more than once. The first signal sets the flag; the second
/// restores the default handlers (so the next one terminates).
void install_shutdown_handlers();

/// Whether a shutdown signal has arrived since the handlers were
/// installed (or request_shutdown() was called).
bool shutdown_requested();

/// Sets the flag programmatically - lets tests and drivers exercise the
/// graceful-wind-down path without raising a real signal.
void request_shutdown();

/// Clears the flag (test isolation; does not reinstall handlers).
void reset_shutdown();

/// The signal number that triggered the shutdown (0 if none / manual).
int shutdown_signal();

/// The flag as a std::atomic - what ClusterConfig::stop wants to point
/// at. Mirrors shutdown_requested() exactly (the handler sets both).
const std::atomic<bool>& shutdown_flag();

}  // namespace rfd
