// Little-endian POD byte codec for checkpoint payloads.
//
// The checkpoint format (transport/checkpoint.hpp) needs exact,
// platform-independent bytes: every field is written explicitly in
// little-endian order rather than memcpy'ing structs, so a snapshot
// taken on one build loads on another and the CRC in the trailer is
// meaningful. The reader is bounds-checked and never throws: a
// truncated or corrupt payload turns into `ok() == false`, which the
// loader reports as a rejected checkpoint instead of UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace rfd {

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_->insert(out_->end(), p, p + size);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }

 private:
  std::vector<std::uint8_t>* out_;
};

/// Bounds-checked reader over a byte span. After any failed read, ok()
/// is false and every subsequent read returns a zero value - callers
/// check ok() once at the end of a decode instead of after every field.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : cur_(data), end_(data + size) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - cur_);
  }

  std::uint8_t u8() {
    if (!take(1)) return 0;
    return cur_[-1];
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(cur_[i - 4]) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(cur_[i - 8]) << (8 * i);
    }
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool bytes(void* out, std::size_t size) {
    if (!take(size)) return false;
    std::memcpy(out, cur_ - size, size);
    return true;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!take(n)) return {};
    return std::string(reinterpret_cast<const char*>(cur_ - n), n);
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    cur_ += n;
    return true;
  }

  const std::uint8_t* cur_;
  const std::uint8_t* end_;
  bool ok_ = true;
};

}  // namespace rfd
