// Deterministic random number generation.
//
// Every run of the simulator is a pure function of its seeds, so all
// randomness flows through these generators. We implement xoshiro256**
// (public-domain algorithm by Blackman & Vigna) seeded via splitmix64,
// rather than std::mt19937, because (a) its stream is identical across
// standard library implementations, which makes recorded experiment tables
// reproducible anywhere, and (b) it is cheap to split into independent
// child generators, one per process / channel / detector module.
#pragma once

#include <array>
#include <cstdint>

#include "common/assert.hpp"

namespace rfd {

/// splitmix64 step; used for seeding and for hashing seeds into streams.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless mixing of several seed components into one 64-bit seed.
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b);
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b, std::uint64_t c);

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()();

  /// Uniform integer in [0, bound). `bound` must be positive. Uses
  /// rejection sampling (Lemire-style) so the distribution is exact.
  std::int64_t below(std::int64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed double with the given mean (> 0).
  double exponential(double mean);

  /// Normally distributed double (Box-Muller; consumes two uniforms).
  double normal(double mean, double stddev);

  /// Log-normally distributed double parameterized by the underlying
  /// normal's mu and sigma.
  double lognormal(double mu, double sigma);

  /// A child generator whose stream is independent of this one and of any
  /// sibling split with a different tag. Does not advance this generator:
  /// splitting is by tag, so call sites remain order-independent.
  Rng split(std::uint64_t tag) const;

  /// Checkpoint hooks: the complete generator state - the four xoshiro
  /// words plus the retained split seed. restore_state() makes this
  /// generator continue the saved stream exactly (including future
  /// split() children), which is what lets a resumed soak run replay the
  /// same draws an uninterrupted run would have made.
  std::array<std::uint64_t, 5> save_state() const {
    return {state_[0], state_[1], state_[2], state_[3], seed_};
  }
  void restore_state(const std::array<std::uint64_t, 5>& s) {
    state_ = {s[0], s[1], s[2], s[3]};
    seed_ = s[4];
  }

  /// Fisher-Yates shuffle of a contiguous range.
  template <typename T>
  void shuffle(T* data, std::int64_t size) {
    for (std::int64_t i = size - 1; i > 0; --i) {
      const std::int64_t j = below(i + 1);
      if (i != j) {
        T tmp = static_cast<T&&>(data[i]);
        data[i] = static_cast<T&&>(data[j]);
        data[j] = static_cast<T&&>(tmp);
      }
    }
  }

 private:
  std::array<std::uint64_t, 4> state_;
  std::uint64_t seed_;  // retained so split() can derive child seeds
};

}  // namespace rfd
