// Minimal leveled logger.
//
// The simulator is deterministic and fully traced, so logging is a
// debugging aid rather than an observability system; it is off by default
// and routed to stderr. No global mutable state other than the level
// (which tests may set), per Core Guidelines I.2 the level is accessed
// through functions.
#pragma once

#include <sstream>
#include <string>

namespace rfd {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

const char* log_level_name(LogLevel level);

/// Pluggable log sink: when installed, enabled log lines are routed to it
/// instead of stderr. The observability layer's TraceWriter installs
/// itself here so human-readable logs and structured trace records share
/// one writer (and therefore never interleave mid-line).
using LogSinkFn = void (*)(void* ctx, LogLevel level, const std::string& line);
void set_log_sink(LogSinkFn fn, void* ctx);
/// Removes the sink only if `ctx` is the currently installed one (a later
/// sink is never clobbered by an earlier owner's teardown).
void clear_log_sink(void* ctx);

namespace detail {
void log_line(LogLevel level, const std::string& line);
}

/// Stream-style log statement: RFD_LOG(kInfo) << "consensus decided " << v;
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement();
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& v) {
    if (enabled()) stream_ << v;
    return *this;
  }

  bool enabled() const { return level_ >= log_level(); }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace rfd

#define RFD_LOG(level) ::rfd::LogStatement(::rfd::LogLevel::level)
