// Minimal leveled logger.
//
// The simulator is deterministic and fully traced, so logging is a
// debugging aid rather than an observability system; it is off by default
// and routed to stderr. No global mutable state other than the level
// (which tests may set), per Core Guidelines I.2 the level is accessed
// through functions.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace rfd {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

const char* log_level_name(LogLevel level);

/// Pluggable log sink: when installed, enabled log lines are routed to it
/// instead of stderr. The observability layer's TraceWriter installs
/// itself here so human-readable logs and structured trace records share
/// one writer (and therefore never interleave mid-line).
///
/// Thread safety: install/clear/dispatch are serialized on one internal
/// mutex, so a sink is installed atomically and is never invoked
/// concurrently - a log line is always delivered whole. Worker threads of
/// the sharded engine never reach the sink directly at all: they register
/// a per-shard line buffer (below) and the coordinator forwards the
/// buffered lines between parallel phases, in shard order.
using LogSinkFn = void (*)(void* ctx, LogLevel level, const std::string& line);
void set_log_sink(LogSinkFn fn, void* ctx);
/// Removes the sink only if `ctx` is the currently installed one (a later
/// sink is never clobbered by an earlier owner's teardown).
void clear_log_sink(void* ctx);

/// One complete buffered log line.
struct BufferedLogLine {
  LogLevel level;
  std::string line;
};

/// Redirects the *calling thread's* log lines into `buffer` (whole lines,
/// appended in emission order) instead of the process-wide sink; nullptr
/// restores direct dispatch. The sharded cluster engine installs one
/// buffer per worker shard for the duration of each parallel phase and
/// flushes them at the barrier, so worker-thread log lines can neither
/// interleave mid-line nor race the trace stream.
void set_thread_log_buffer(std::vector<BufferedLogLine>* buffer);
std::vector<BufferedLogLine>* thread_log_buffer();

/// RAII installer for set_thread_log_buffer (restores the previous
/// binding, so scopes nest).
class ScopedThreadLogBuffer {
 public:
  explicit ScopedThreadLogBuffer(std::vector<BufferedLogLine>* buffer)
      : previous_(thread_log_buffer()) {
    set_thread_log_buffer(buffer);
  }
  ~ScopedThreadLogBuffer() { set_thread_log_buffer(previous_); }
  ScopedThreadLogBuffer(const ScopedThreadLogBuffer&) = delete;
  ScopedThreadLogBuffer& operator=(const ScopedThreadLogBuffer&) = delete;

 private:
  std::vector<BufferedLogLine>* previous_;
};

namespace detail {
void log_line(LogLevel level, const std::string& line);
}

/// Stream-style log statement: RFD_LOG(kInfo) << "consensus decided " << v;
class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement();
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& v) {
    if (enabled()) stream_ << v;
    return *this;
  }

  bool enabled() const { return level_ >= log_level(); }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace rfd

#define RFD_LOG(level) ::rfd::LogStatement(::rfd::LogLevel::level)
