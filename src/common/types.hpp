// Core vocabulary types shared by every rfd module.
//
// The paper's model (Section 2) uses a discrete global clock whose range of
// ticks is the natural numbers, a finite process set Omega = {p_1..p_n}, and
// proposal values. We keep all of these as signed integral types per the
// C++ Core Guidelines (ES.102: use signed types for arithmetic).
#pragma once

#include <cstdint>
#include <limits>

namespace rfd {

/// Index of a process in Omega. Processes are numbered 0..n-1 internally;
/// the paper's p_i corresponds to ProcessId{i - 1}. Ordering of ids matters
/// for the partially-perfect detector class P< (Section 6.2).
using ProcessId = std::int32_t;

/// A tick of the discrete global clock Phi (Section 2). The clock is a
/// presentation device of the model: it is never visible to automata.
using Tick = std::int64_t;

/// A consensus proposal / decision value. Using a plain integer keeps
/// schedules and traces compact; richer payloads travel as serialized bytes.
using Value = std::int64_t;

/// Sentinel for "no value yet" (the bottom element in vector-consensus).
inline constexpr Value kNoValue = std::numeric_limits<Value>::min();

/// Sentinel for the TRB "nil" delivery (Section 5): delivered when the
/// broadcaster is detected faulty.
inline constexpr Value kNilValue = std::numeric_limits<Value>::min() + 1;

/// Sentinel tick meaning "never happens" (e.g. a process that never crashes).
inline constexpr Tick kNever = std::numeric_limits<Tick>::max();

/// Identifier of a simulation event within a trace (dense, 0-based).
using EventId = std::int64_t;
inline constexpr EventId kNoEvent = -1;

/// Identifier of a message within a trace (dense, 0-based).
using MessageId = std::int64_t;
inline constexpr MessageId kNoMessage = -1;

/// Identifier of a protocol instance when multiplexing several algorithm
/// instances over one simulation (e.g. the repeated consensus instances of
/// the T(D->P) reduction, or TRB instance (i, k)).
using InstanceId = std::int32_t;

}  // namespace rfd
