#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/assert.hpp"

namespace rfd {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  samples_.push_back(x);
  sorted_ = false;
}

double Summary::mean() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : mean_;
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double Summary::max() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

double Summary::percentile(double q) const {
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  RFD_REQUIRE(q >= 0.0 && q <= 1.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void Summary::merge(const Summary& other) {
  for (double x : other.samples_) {
    add(x);
  }
}

std::string Summary::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%lld mean=%.4g sd=%.4g min=%.4g p50=%.4g p99=%.4g max=%.4g",
                static_cast<long long>(count_), mean(), stddev(), min(),
                percentile(0.5), percentile(0.99), max());
  return buf;
}

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), counts_(static_cast<std::size_t>(buckets), 0) {
  RFD_REQUIRE(buckets > 0 && hi > lo);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / width);
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

std::int64_t Histogram::bucket_count(int i) const {
  RFD_REQUIRE(i >= 0 && i < buckets());
  return counts_[static_cast<std::size_t>(i)];
}

double Histogram::bucket_lo(int i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * i;
}

double Histogram::bucket_hi(int i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * (i + 1);
}

std::string Histogram::render(int bar_width) const {
  std::int64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[96];
  for (int i = 0; i < buckets(); ++i) {
    const auto c = bucket_count(i);
    const int bar =
        static_cast<int>(static_cast<double>(c) / static_cast<double>(peak) *
                         bar_width);
    std::snprintf(buf, sizeof(buf), "[%10.3f, %10.3f) %8lld |", bucket_lo(i),
                  bucket_hi(i), static_cast<long long>(c));
    out += buf;
    out.append(static_cast<std::size_t>(bar), '#');
    out += '\n';
  }
  if (underflow_ != 0 || overflow_ != 0) {
    std::snprintf(buf, sizeof(buf), "underflow=%lld overflow=%lld\n",
                  static_cast<long long>(underflow_),
                  static_cast<long long>(overflow_));
    out += buf;
  }
  return out;
}

}  // namespace rfd
