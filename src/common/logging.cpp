#include "common/logging.hpp"

#include <cstdio>

namespace rfd {
namespace {

LogLevel& level_storage() {
  static LogLevel level = LogLevel::kOff;
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_storage(); }

void set_log_level(LogLevel level) { level_storage() = level; }

namespace detail {
void log_line(LogLevel level, const std::string& line) {
  std::fprintf(stderr, "[rfd %-5s] %s\n", level_name(level), line.c_str());
}
}  // namespace detail

LogStatement::~LogStatement() {
  if (enabled()) {
    detail::log_line(level_, stream_.str());
  }
}

}  // namespace rfd
