#include "common/logging.hpp"

#include <cstdio>

namespace rfd {
namespace {

LogLevel& level_storage() {
  static LogLevel level = LogLevel::kOff;
  return level;
}

struct SinkStorage {
  LogSinkFn fn = nullptr;
  void* ctx = nullptr;
};

SinkStorage& sink_storage() {
  static SinkStorage sink;
  return sink;
}

}  // namespace

LogLevel log_level() { return level_storage(); }

void set_log_level(LogLevel level) { level_storage() = level; }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void set_log_sink(LogSinkFn fn, void* ctx) {
  sink_storage().fn = fn;
  sink_storage().ctx = ctx;
}

void clear_log_sink(void* ctx) {
  if (sink_storage().ctx == ctx) {
    sink_storage().fn = nullptr;
    sink_storage().ctx = nullptr;
  }
}

namespace detail {
void log_line(LogLevel level, const std::string& line) {
  const SinkStorage& sink = sink_storage();
  if (sink.fn != nullptr) {
    sink.fn(sink.ctx, level, line);
    return;
  }
  std::fprintf(stderr, "[rfd %-5s] %s\n", log_level_name(level),
               line.c_str());
}
}  // namespace detail

LogStatement::~LogStatement() {
  if (enabled()) {
    detail::log_line(level_, stream_.str());
  }
}

}  // namespace rfd
