#include "common/logging.hpp"

#include <cstdio>
#include <mutex>

namespace rfd {
namespace {

LogLevel& level_storage() {
  static LogLevel level = LogLevel::kOff;
  return level;
}

struct SinkStorage {
  LogSinkFn fn = nullptr;
  void* ctx = nullptr;
};

/// Guards both installation and dispatch: a sink is installed as one
/// atomic (fn, ctx) pair and never invoked concurrently, so every line it
/// receives arrives whole even when multiple threads log at once.
std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

SinkStorage& sink_storage() {
  static SinkStorage sink;
  return sink;
}

thread_local std::vector<BufferedLogLine>* t_log_buffer = nullptr;

}  // namespace

LogLevel log_level() { return level_storage(); }

void set_log_level(LogLevel level) { level_storage() = level; }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void set_log_sink(LogSinkFn fn, void* ctx) {
  const std::lock_guard<std::mutex> lock(sink_mutex());
  sink_storage().fn = fn;
  sink_storage().ctx = ctx;
}

void clear_log_sink(void* ctx) {
  const std::lock_guard<std::mutex> lock(sink_mutex());
  if (sink_storage().ctx == ctx) {
    sink_storage().fn = nullptr;
    sink_storage().ctx = nullptr;
  }
}

void set_thread_log_buffer(std::vector<BufferedLogLine>* buffer) {
  t_log_buffer = buffer;
}

std::vector<BufferedLogLine>* thread_log_buffer() { return t_log_buffer; }

namespace detail {
void log_line(LogLevel level, const std::string& line) {
  if (t_log_buffer != nullptr) {
    t_log_buffer->push_back({level, line});
    return;
  }
  const std::lock_guard<std::mutex> lock(sink_mutex());
  const SinkStorage& sink = sink_storage();
  if (sink.fn != nullptr) {
    sink.fn(sink.ctx, level, line);
    return;
  }
  std::fprintf(stderr, "[rfd %-5s] %s\n", log_level_name(level),
               line.c_str());
}
}  // namespace detail

LogStatement::~LogStatement() {
  if (enabled()) {
    detail::log_line(level_, stream_.str());
  }
}

}  // namespace rfd
