#include "common/rng.hpp"

#include <cmath>

namespace rfd {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a;
  (void)splitmix64(s);
  s ^= b + 0x9e3779b97f4a7c15ULL + (s << 6) + (s >> 2);
  return splitmix64(s);
}

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return mix_seed(mix_seed(a, b), c);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::below(std::int64_t bound) {
  RFD_REQUIRE_MSG(bound > 0, "Rng::below requires a positive bound");
  const auto ubound = static_cast<std::uint64_t>(bound);
  // Rejection sampling: draw until the value falls inside the largest
  // multiple of `ubound` representable in 64 bits.
  const std::uint64_t limit = max() - max() % ubound;
  std::uint64_t draw = (*this)();
  while (draw >= limit) {
    draw = (*this)();
  }
  return static_cast<std::int64_t>(draw % ubound);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  RFD_REQUIRE(lo <= hi);
  return lo + below(hi - lo + 1);
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  RFD_REQUIRE(mean > 0.0);
  double u = uniform01();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller transform.
  double u1 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.141592653589793238462643 * u2;
  return mean + stddev * radius * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

Rng Rng::split(std::uint64_t tag) const {
  return Rng(mix_seed(seed_, tag));
}

}  // namespace rfd
