#include "core/solvability.hpp"

#include <memory>

#include "algo/consensus/cr_chain.hpp"
#include "algo/consensus/ct_rotating.hpp"
#include "algo/consensus/ct_strong.hpp"
#include "algo/consensus/marabout_consensus.hpp"
#include "algo/specs.hpp"
#include "algo/trb/trb.hpp"
#include "common/assert.hpp"
#include "sim/simulator.hpp"

namespace rfd::core {
namespace {

constexpr Value kTrbValue = 7777;

Value proposal_of(ProcessId p) { return 100 + static_cast<Value>(p); }

std::unique_ptr<sim::Automaton> make_automaton(AlgoKind kind, ProcessId n,
                                               ProcessId self,
                                               ProcessId trb_sender) {
  switch (kind) {
    case AlgoKind::kCtStrong:
      return std::make_unique<algo::CtStrongConsensus>(n, proposal_of(self));
    case AlgoKind::kCtRotating:
      return std::make_unique<algo::CtRotatingConsensus>(n, proposal_of(self));
    case AlgoKind::kMarabout:
      return std::make_unique<algo::MaraboutConsensus>(n, proposal_of(self));
    case AlgoKind::kCrChain:
      return std::make_unique<algo::CrChainConsensus>(n, proposal_of(self));
    case AlgoKind::kTrb:
      return std::make_unique<algo::TrbAutomaton>(n, trb_sender, kTrbValue);
  }
  RFD_UNREACHABLE("unknown algorithm kind");
}

struct RunOutcome {
  bool safety_ok = true;
  bool live = true;
  std::string detail;
};

RunOutcome judge(const sim::Trace& trace, SpecKind spec, ProcessId n,
                 ProcessId trb_sender) {
  std::vector<Value> proposals;
  for (ProcessId p = 0; p < n; ++p) proposals.push_back(proposal_of(p));

  RunOutcome outcome;
  switch (spec) {
    case SpecKind::kUniformConsensus: {
      const auto check = algo::check_consensus(trace, 0, proposals);
      outcome.safety_ok = check.uniform_agreement && check.validity &&
                          check.integrity;
      outcome.live = check.termination;
      if (!check.ok_uniform()) outcome.detail = check.to_string();
      break;
    }
    case SpecKind::kCorrectRestrictedConsensus: {
      const auto check = algo::check_consensus(trace, 0, proposals);
      outcome.safety_ok = check.agreement && check.validity && check.integrity;
      outcome.live = check.termination;
      if (!check.ok_correct_restricted()) outcome.detail = check.to_string();
      break;
    }
    case SpecKind::kTrb: {
      const auto check = algo::check_trb(trace, 0, trb_sender, kTrbValue);
      outcome.safety_ok = check.agreement && check.validity && check.integrity;
      outcome.live = check.termination;
      if (!check.ok()) outcome.detail = check.to_string();
      break;
    }
  }
  return outcome;
}

}  // namespace

std::string algo_name(AlgoKind kind) {
  switch (kind) {
    case AlgoKind::kCtStrong:
      return "CT-S";
    case AlgoKind::kCtRotating:
      return "CT-<>S";
    case AlgoKind::kMarabout:
      return "leader(M)";
    case AlgoKind::kCrChain:
      return "chain(P<)";
    case AlgoKind::kTrb:
      return "TRB";
  }
  return "?";
}

std::string spec_name(SpecKind kind) {
  switch (kind) {
    case SpecKind::kUniformConsensus:
      return "uniform consensus";
    case SpecKind::kCorrectRestrictedConsensus:
      return "consensus (correct-restricted)";
    case SpecKind::kTrb:
      return "TRB";
  }
  return "?";
}

std::string Verdict::to_string() const {
  std::string out = std::to_string(ok) + "/" + std::to_string(runs) + " ok";
  if (safety_violations > 0) {
    out += ", " + std::to_string(safety_violations) + " unsafe";
  }
  if (liveness_failures > 0) {
    out += ", " + std::to_string(liveness_failures) + " stuck";
  }
  return out;
}

Verdict evaluate_algorithm(const fd::DetectorSpec& detector, AlgoKind algo,
                           SpecKind spec,
                           const std::vector<model::FailurePattern>& patterns,
                           const EvalConfig& config) {
  Verdict verdict;
  for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
    const model::FailurePattern& pattern = patterns[pi];
    const ProcessId n = pattern.n();
    for (int s = 0; s < config.schedule_seeds; ++s) {
      const std::uint64_t run_seed =
          mix_seed(config.base_seed, static_cast<std::uint64_t>(pi),
                   static_cast<std::uint64_t>(s));
      const auto oracle = detector.factory(pattern, mix_seed(run_seed, 1));

      std::vector<std::unique_ptr<sim::Automaton>> automata;
      automata.reserve(static_cast<std::size_t>(n));
      for (ProcessId p = 0; p < n; ++p) {
        automata.push_back(make_automaton(algo, n, p, config.trb_sender));
      }
      sim::SimConfig sim_config;
      sim_config.limits = config.limits;
      sim::Simulator simulator(
          pattern, *oracle, std::move(automata),
          std::make_unique<sim::RandomAdversary>(mix_seed(run_seed, 2)),
          sim_config);
      simulator.run_for(config.horizon);

      const RunOutcome outcome =
          judge(simulator.trace(), spec, n, config.trb_sender);
      ++verdict.runs;
      if (outcome.safety_ok && outcome.live) {
        ++verdict.ok;
      } else if (!outcome.safety_ok) {
        ++verdict.safety_violations;
        if (verdict.first_failure.empty()) {
          verdict.first_failure = pattern.to_string() + ": " + outcome.detail;
        }
      } else {
        ++verdict.liveness_failures;
        if (verdict.first_failure.empty()) {
          verdict.first_failure = pattern.to_string() + ": " + outcome.detail;
        }
      }
    }
  }
  return verdict;
}

std::vector<model::FailurePattern> standard_patterns(ProcessId n,
                                                     ProcessId max_crashes,
                                                     std::uint64_t seed,
                                                     Tick crash_horizon,
                                                     int random_count) {
  model::PatternSweep sweep(n, seed);
  sweep.with_all_correct();
  sweep.with_single_crashes({0, crash_horizon / 4, crash_horizon / 2});
  if (max_crashes >= 2) {
    sweep.with_cascades(std::min<ProcessId>(max_crashes, n - 1),
                        crash_horizon / 8, crash_horizon / 16);
  }
  if (max_crashes >= n - 1) {
    sweep.with_all_but_one(crash_horizon / 3);
  }
  sweep.with_random(random_count, 0, max_crashes, crash_horizon);
  return sweep.patterns();
}

}  // namespace rfd::core
