// The solvability driver behind experiment E1 (the hierarchy-collapse
// table) and the parameterized algorithm tests.
//
// "Class X solves problem B" is existential over algorithms, so the driver
// evaluates concrete (algorithm, detector, problem) triples over pattern
// and schedule sweeps, splitting failures into safety violations (the run
// decided/delivered inconsistently - the algorithm+detector pair is
// *wrong*) and liveness failures (no violation, but not everyone finished
// within the horizon - the pair is *stuck*, e.g. the rotating coordinator
// without a majority).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fd/registry.hpp"
#include "model/environment.hpp"
#include "sim/adversary.hpp"

namespace rfd::core {

enum class AlgoKind {
  kCtStrong,    // S-based consensus: works with P under unbounded crashes
  kCtRotating,  // <>S rotating coordinator: needs a majority
  kMarabout,    // Section 6.1 leader rule: needs the Marabout
  kCrChain,     // Section 6.2 chain: correct-restricted consensus from P<
  kTrb,         // Section 5 TRB over embedded consensus: needs P
};

enum class SpecKind {
  kUniformConsensus,
  kCorrectRestrictedConsensus,
  kTrb,
};

std::string algo_name(AlgoKind kind);
std::string spec_name(SpecKind kind);

struct EvalConfig {
  Tick horizon = 6000;
  int schedule_seeds = 3;
  std::uint64_t base_seed = 0x5eed;
  sim::AdversaryLimits limits{};
  /// Sender of the TRB instance under test. Note: the smallest-id process
  /// is the one process a (cheating) Strong detector never falsely
  /// suspects, so TRB stress tests should pick a sender with a larger id.
  ProcessId trb_sender = 0;
};

struct Verdict {
  std::int64_t runs = 0;
  std::int64_t ok = 0;
  std::int64_t safety_violations = 0;
  std::int64_t liveness_failures = 0;
  std::string first_failure;

  bool solved() const { return runs > 0 && ok == runs; }
  /// Safe but not live: the signature of "blocks without a majority".
  bool safe() const { return safety_violations == 0; }
  std::string to_string() const;
};

/// Runs `algo` with `detector` on every (pattern x schedule seed) and
/// checks `spec`.
Verdict evaluate_algorithm(const fd::DetectorSpec& detector, AlgoKind algo,
                           SpecKind spec,
                           const std::vector<model::FailurePattern>& patterns,
                           const EvalConfig& config);

/// The default pattern family for solvability sweeps over n processes:
/// all-correct, early/late single crashes, cascades, all-but-one-crash
/// (the unbounded-failure stressor), and seeded random patterns.
/// `max_crashes` caps crash counts (pass n-1 for the unbounded-crash
/// environment, n/2-1 to model a majority assumption).
std::vector<model::FailurePattern> standard_patterns(ProcessId n,
                                                     ProcessId max_crashes,
                                                     std::uint64_t seed,
                                                     Tick crash_horizon,
                                                     int random_count = 6);

}  // namespace rfd::core
