// Umbrella header: the public API of the rfd library.
//
// A downstream user who wants "the paper as a library" includes this and
// gets:
//   - the formal model (failure patterns, environments, pattern views);
//   - the detector zoo and its property/realism checkers;
//   - the step-level simulator with causal traces;
//   - the agreement algorithms and their spec checkers;
//   - the reductions (T(D->P), TRB->P, totality, the S/P collapse);
//   - the runtime layer (timeout detectors, QoS, group membership).
#pragma once

#include "common/cli.hpp"
#include "common/process_set.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

#include "model/environment.hpp"
#include "model/failure_pattern.hpp"

#include "fd/cheating_strong.hpp"
#include "fd/eventually_perfect.hpp"
#include "fd/eventually_strong.hpp"
#include "fd/history.hpp"
#include "fd/marabout.hpp"
#include "fd/omega.hpp"
#include "fd/oracle.hpp"
#include "fd/partially_perfect.hpp"
#include "fd/perfect.hpp"
#include "fd/properties.hpp"
#include "fd/realism.hpp"
#include "fd/registry.hpp"
#include "fd/scribe.hpp"

#include "sim/adversary.hpp"
#include "sim/automaton.hpp"
#include "sim/composition.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

#include "algo/broadcast/atomic_broadcast.hpp"
#include "algo/broadcast/reliable_broadcast.hpp"
#include "algo/consensus/cr_chain.hpp"
#include "algo/consensus/ct_rotating.hpp"
#include "algo/consensus/ct_strong.hpp"
#include "algo/consensus/marabout_consensus.hpp"
#include "algo/specs.hpp"
#include "algo/trb/trb.hpp"

#include "reduction/collapse.hpp"
#include "reduction/consensus_to_p.hpp"
#include "reduction/emulation.hpp"
#include "reduction/totality.hpp"
#include "reduction/trb_to_p.hpp"

#include "runtime/detectors.hpp"
#include "runtime/membership.hpp"
#include "runtime/network.hpp"
#include "runtime/qos.hpp"

#include "core/solvability.hpp"
