// Configuration for the streaming observability layer.
//
// Observability is compile-time-defaulted and runtime-toggleable: the
// library always compiles the instrumentation points (RFD_OBS_ENABLED can
// strip them entirely for exotic builds), but every hot-path emit site is
// guarded by a single pointer test against a null sink, so a trace-off run
// pays one predictable branch per site and nothing else - no formatting,
// no I/O, no allocation.
#pragma once

#include <cstdint>
#include <string>

// Compile-time default: 1 = instrumentation compiled in (runtime decides
// whether it fires), 0 = emit sites compile to nothing.
#ifndef RFD_OBS_ENABLED
#define RFD_OBS_ENABLED 1
#endif

namespace rfd::obs {

inline constexpr bool kEnabled = RFD_OBS_ENABLED != 0;

struct Config {
  /// JSONL trace output path; empty disables the trace sink entirely.
  std::string trace_path;
  /// Emit a metrics-registry snapshot record every this many check ticks;
  /// 0 disables snapshots.
  int snapshot_every_ticks = 0;
  /// Enable the scoped phase timers around the hot spots. Their rollups
  /// carry wall-clock times, so profile records are the one part of a
  /// trace that is *not* byte-identical across runs; keep this off when
  /// diffing traces.
  bool profile = false;
  /// Staging ring capacity in records (rounded up to a power of two).
  /// The default (4096 records, ~200 KiB) keeps the ring cache-resident:
  /// a much larger ring makes every drain stream megabytes through the
  /// cache and evicts the simulation's working set, which costs more than
  /// the extra drains save.
  int ring_capacity = 1 << 12;
  /// When the staging ring fills: false (default) drains it synchronously
  /// to the file - lossless, but the unlucky emit pays the flush; true
  /// drops the record and counts it in the exact dropped-record counter
  /// (bounded hot-path cost, lossy trace - the loss is itself recorded).
  bool drop_on_full = false;
  /// Sample 1 of every 2^profile_sample_shift timed sections; counts are
  /// always exact, durations are scaled estimates.
  int profile_sample_shift = 4;

  bool trace_enabled() const { return kEnabled && !trace_path.empty(); }
};

}  // namespace rfd::obs
