#include "obs/registry.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace rfd::obs {

const Registry::Entry* Registry::find(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

Counter& Registry::counter(const std::string& name) {
  if (const Entry* entry = find(name)) {
    RFD_REQUIRE_MSG(entry->kind == Kind::kCounter,
                    "metric registered with a different kind");
    return counters_[entry->index];
  }
  counters_.emplace_back();
  entries_.push_back({name, Kind::kCounter, counters_.size() - 1});
  return counters_.back();
}

Gauge& Registry::gauge(const std::string& name) {
  if (const Entry* entry = find(name)) {
    RFD_REQUIRE_MSG(entry->kind == Kind::kGauge,
                    "metric registered with a different kind");
    return gauges_[entry->index];
  }
  gauges_.emplace_back();
  entries_.push_back({name, Kind::kGauge, gauges_.size() - 1});
  return gauges_.back();
}

Histo& Registry::histogram(const std::string& name) {
  if (const Entry* entry = find(name)) {
    RFD_REQUIRE_MSG(entry->kind == Kind::kHisto,
                    "metric registered with a different kind");
    return histos_[entry->index];
  }
  histos_.emplace_back();
  entries_.push_back({name, Kind::kHisto, histos_.size() - 1});
  return histos_.back();
}

const Counter* Registry::find_counter(const std::string& name) const {
  const Entry* entry = find(name);
  return entry != nullptr && entry->kind == Kind::kCounter
             ? &counters_[entry->index]
             : nullptr;
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  const Entry* entry = find(name);
  return entry != nullptr && entry->kind == Kind::kGauge
             ? &gauges_[entry->index]
             : nullptr;
}

const Histo* Registry::find_histogram(const std::string& name) const {
  const Entry* entry = find(name);
  return entry != nullptr && entry->kind == Kind::kHisto
             ? &histos_[entry->index]
             : nullptr;
}

void Registry::snapshot(TraceWriter& out, double t, std::int64_t tick) const {
  if (!out.ok()) return;
  JsonLine line;
  line.str("type", "snap").num("t", t).integer("tick", tick);
  std::string metrics = "{";
  bool first = true;
  for (const Entry& entry : entries_) {
    if (!first) metrics += ',';
    first = false;
    metrics += '"';
    metrics += json_escape(entry.name);
    metrics += "\":";
    switch (entry.kind) {
      case Kind::kCounter:
        metrics += std::to_string(counters_[entry.index].value());
        break;
      case Kind::kGauge: {
        char buf[64];
        const double v = gauges_[entry.index].value();
        if (std::isfinite(v)) {
          std::snprintf(buf, sizeof(buf), "%.10g", v);
        } else {
          std::snprintf(buf, sizeof(buf), "null");
        }
        metrics += buf;
        break;
      }
      case Kind::kHisto: {
        const Summary& s = histos_[entry.index].summary();
        metrics += JsonLine{}
                       .integer("count", s.count())
                       .num("mean", s.count() > 0 ? s.mean() : 0.0)
                       .num("p50", s.count() > 0 ? s.percentile(0.5) : 0.0)
                       .num("p99", s.count() > 0 ? s.percentile(0.99) : 0.0)
                       .num("max", s.count() > 0 ? s.max() : 0.0)
                       .finish();
        break;
      }
    }
  }
  metrics += '}';
  line.raw("m", metrics);
  out.write_line(line.finish());
}

}  // namespace rfd::obs
