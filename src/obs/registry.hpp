// Named metrics registry: counters, gauges and histograms with periodic
// snapshot records interleaved into the trace stream.
//
// The registry is the *backing store* for the engine's aggregation (the
// ClusterReport is filled from it at the end of the run - see
// cluster/metrics.cpp), so the live report and the streamed snapshots can
// never disagree. Handles returned by counter()/gauge()/histogram() are
// stable for the registry's lifetime; hot paths cache the pointer once
// and pay one add per update. Snapshot field order is registration order,
// which keeps snapshot lines byte-identical across fixed-seed runs.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/trace_writer.hpp"

namespace rfd::obs {

class Counter {
 public:
  void add(std::int64_t delta = 1) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Histogram metric backed by the repo's Summary (exact percentiles from
/// retained samples - fine at experiment scales).
class Histo {
 public:
  void add(double x) { summary_.add(x); }
  const Summary& summary() const { return summary_; }

 private:
  Summary summary_;
};

class Registry {
 public:
  /// Returns (creating on first use) the metric with `name`. A name keeps
  /// its kind: asking for an existing name with a different kind is a
  /// programming error and asserts.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histo& histogram(const std::string& name);

  /// Lookup without creation; nullptr when absent or of another kind.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histo* find_histogram(const std::string& name) const;

  /// Emits one snapshot record into `out`:
  ///   {"type":"snap","t":...,"tick":...,"m":{name:value,...}}
  /// Counters and gauges are plain numbers; histograms are
  /// {"count":..,"mean":..,"p50":..,"p99":..,"max":..}. Field order is
  /// registration order.
  void snapshot(TraceWriter& out, double t, std::int64_t tick) const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHisto };
  struct Entry {
    std::string name;
    Kind kind;
    std::size_t index;  // into the kind's deque
  };
  const Entry* find(const std::string& name) const;

  std::vector<Entry> entries_;  // registration order
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histo> histos_;
};

}  // namespace rfd::obs
