#include "obs/trace_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstring>

namespace rfd::obs {
namespace {

/// Fixed number formatting shared by every record field: the %.10g shape
/// matches the BENCH json emitter and is deterministic for a given value,
/// which is what makes fixed-seed traces byte-identical. std::to_chars
/// with general/10 is specified to produce printf's %.10g output and is
/// several times cheaper than snprintf - formatting is the bulk of the
/// trace-on overhead the E12c bench gates.
void append_num(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[64];
  const auto r =
      std::to_chars(buf, buf + sizeof(buf), value,
                    std::chars_format::general, 10);
  out.append(buf, r.ptr);
}

void append_int(std::string& out, std::int64_t value) {
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, r.ptr);
}

void field_num(std::string& out, const char* key, double value) {
  out += ",\"";
  out += key;
  out += "\":";
  append_num(out, value);
}

void field_int(std::string& out, const char* key, std::int64_t value) {
  out += ",\"";
  out += key;
  out += "\":";
  append_int(out, value);
}

void field_str(std::string& out, const char* key, const char* value) {
  out += ",\"";
  out += key;
  out += "\":\"";
  out += json_escape(value != nullptr ? value : "?");
  out += '"';
}

// Raw-cursor helpers for the hot record types: each line is written
// straight into the drain buffer with memcpy'd literal chunks, avoiding
// per-chunk std::string bookkeeping. Every field is bounded (ints <= 20
// chars, %.10g doubles <= 17, string payloads are short static literals),
// so the worst line stays far below kLineMax.
constexpr std::size_t kLineMax = 320;
// Flush threshold for the drain buffer; lines never split across writes.
constexpr std::size_t kDrainFlush = std::size_t{1} << 16;

template <std::size_t N>
inline char* put(char* p, const char (&lit)[N]) {
  std::memcpy(p, lit, N - 1);
  return p + (N - 1);
}

inline char* put_num(char* p, double value) {
  if (!std::isfinite(value)) return put(p, "null");
  return std::to_chars(p, p + 32, value, std::chars_format::general, 10).ptr;
}

inline char* put_int(char* p, std::int64_t value) {
  return std::to_chars(p, p + 24, value).ptr;
}

// Sim-time formatter: fixed-point milliseconds with nanosecond resolution
// and trailing zeros trimmed ("2500", "11999.99557"). Integer formatting
// is ~4x cheaper than %.10g doubles - "t" appears in every record, so
// this is the single hottest field - and on the check/heartbeat grid it
// produces the same bytes %.10g would. Deterministic for a given value,
// which is all byte-identical traces need.
inline char* put_ms(char* p, double value) {
  if (!(value >= 0.0) || value >= 9.0e12) return put_num(p, value);
  const std::uint64_t scaled =
      static_cast<std::uint64_t>(value * 1e6 + 0.5);
  p = put_int(p, static_cast<std::int64_t>(scaled / 1000000));
  std::uint32_t frac = static_cast<std::uint32_t>(scaled % 1000000);
  if (frac != 0) {
    char digits[6];
    for (int i = 5; i >= 0; --i) {
      digits[i] = static_cast<char>('0' + frac % 10);
      frac /= 10;
    }
    int n = 6;
    while (digits[n - 1] == '0') --n;
    *p++ = '.';
    std::memcpy(p, digits, static_cast<std::size_t>(n));
    p += n;
  }
  return p;
}

void append_ms(std::string& out, double value) {
  char buf[32];
  out.append(buf, put_ms(buf, value));
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --------------------------------------------------------------- JsonLine

void JsonLine::comma() {
  if (!first_) out_ += ',';
  first_ = false;
}

JsonLine& JsonLine::str(std::string_view key, std::string_view value) {
  comma();
  out_ += '"';
  out_ += json_escape(key);
  out_ += "\":\"";
  out_ += json_escape(value);
  out_ += '"';
  return *this;
}

JsonLine& JsonLine::num(std::string_view key, double value) {
  comma();
  out_ += '"';
  out_ += json_escape(key);
  out_ += "\":";
  append_num(out_, value);
  return *this;
}

JsonLine& JsonLine::integer(std::string_view key, std::int64_t value) {
  comma();
  out_ += '"';
  out_ += json_escape(key);
  out_ += "\":";
  append_int(out_, value);
  return *this;
}

JsonLine& JsonLine::boolean(std::string_view key, bool value) {
  comma();
  out_ += '"';
  out_ += json_escape(key);
  out_ += value ? "\":true" : "\":false";
  return *this;
}

JsonLine& JsonLine::raw(std::string_view key, std::string_view json_value) {
  comma();
  out_ += '"';
  out_ += json_escape(key);
  out_ += "\":";
  out_ += json_value;
  return *this;
}

std::string JsonLine::finish() {
  out_ += '}';
  return std::move(out_);
}

// ------------------------------------------------------------ TraceWriter

TraceWriter::TraceWriter(const Config& config)
    : ring_(config.ring_capacity), drop_on_full_(config.drop_on_full) {
  if (config.trace_path.empty()) return;
  if (config.trace_path == "-") {
    file_ = stdout;
    owns_file_ = false;
  } else {
    file_ = std::fopen(config.trace_path.c_str(), "w");
    owns_file_ = file_ != nullptr;
    if (file_ == nullptr) {
      std::fprintf(stderr, "warning: cannot open trace %s\n",
                   config.trace_path.c_str());
    }
  }
}

TraceWriter::~TraceWriter() {
  close();
  release_logs();
}

// Memoized "t" formatting: the engine emits hot records in bursts that
// share one sim-time stamp, so the common case is a memcpy of the digits
// formatted for the previous record.
char* TraceWriter::put_t(char* p, double value) {
  if (memo_t_len_ != 0 && value == memo_t_val_) {
    std::memcpy(p, memo_t_, static_cast<std::size_t>(memo_t_len_));
    return p + memo_t_len_;
  }
  char* end = put_ms(p, value);
  memo_t_val_ = value;
  memo_t_len_ = static_cast<int>(end - p);
  std::memcpy(memo_t_, p, static_cast<std::size_t>(memo_t_len_));
  return end;
}

// Field order is fixed per type; the common prefix is always
// {"type":...,"t":...}. The hot record types (hb_send / hb_recv are
// ~97% of a cluster trace, plus the suspicion flips) are written with a
// raw cursor; the rare types keep the simpler string path and are copied
// in (bounded by construction: record string payloads are short static
// literals). This is what keeps the E12c trace-on/off throughput ratio
// inside its 5% budget.
char* TraceWriter::format(const Record& r, char* p) {
  switch (r.type) {
    case RecordType::kHbSend:
      p = put(p, "{\"type\":\"hb_send\",\"t\":");
      p = put_t(p, r.t);
      p = put(p, ",\"node\":");
      p = put_int(p, r.a);
      p = put(p, ",\"peer\":");
      p = put_int(p, r.b);
      p = put(p, ",\"entries\":");
      p = put_int(p, r.c);
      break;
    case RecordType::kHbRecv:
      p = put(p, "{\"type\":\"hb_recv\",\"t\":");
      p = put_t(p, r.t);
      p = put(p, ",\"node\":");
      p = put_int(p, r.a);
      p = put(p, ",\"from\":");
      p = put_int(p, r.b);
      p = put(p, ",\"entries\":");
      p = put_int(p, r.c);
      // Integral by construction; integer formatting is cheaper and
      // produces the same bytes %.10g would.
      p = put(p, ",\"advanced\":");
      p = put_int(p, static_cast<std::int64_t>(r.x));
      break;
    case RecordType::kSuspect:
      p = put(p, "{\"type\":\"suspect\",\"t\":");
      p = put_t(p, r.t);
      p = put(p, ",\"observer\":");
      p = put_int(p, r.a);
      p = put(p, ",\"victim\":");
      p = put_int(p, r.b);
      p = put(p, ",\"down\":");
      p = put_int(p, r.c);
      break;
    case RecordType::kClear:
      p = put(p, "{\"type\":\"clear\",\"t\":");
      p = put_t(p, r.t);
      p = put(p, ",\"observer\":");
      p = put_int(p, r.a);
      p = put(p, ",\"victim\":");
      p = put_int(p, r.b);
      break;
    case RecordType::kLeader:
      p = put(p, "{\"type\":\"leader\",\"t\":");
      p = put_t(p, r.t);
      p = put(p, ",\"node\":");
      p = put_int(p, r.a);
      p = put(p, ",\"cluster\":");
      p = put_int(p, r.b);
      p = put(p, ",\"acting\":");
      p = put_int(p, r.c);
      break;
    default: {
      scratch_.clear();
      format_cold(r, scratch_);
      const std::size_t n = scratch_.size() < kLineMax ? scratch_.size()
                                                       : kLineMax;
      std::memcpy(p, scratch_.data(), n);
      return p + n;
    }
  }
  return put(p, "}\n");
}

void TraceWriter::format_cold(const Record& r, std::string& out) {
  switch (r.type) {
    case RecordType::kDrop:
      out += "{\"type\":\"drop\",\"t\":";
      append_ms(out, r.t);
      out += ",\"from\":";
      append_int(out, r.a);
      out += ",\"to\":";
      append_int(out, r.b);
      field_str(out, "why", r.s);
      break;
    case RecordType::kFault: {
      out += "{\"type\":\"fault\",\"t\":";
      append_ms(out, r.t);
      field_str(out, "kind", r.s);
      // Link faults carry two endpoints and a blocked-pair count; slow
      // faults carry a delay *factor*, not an extra delay. The kind name
      // is static (scenario.cpp), so dispatching on it is reliable.
      const bool link =
          r.s != nullptr && std::strncmp(r.s, "link", 4) == 0;
      const bool slow =
          r.s != nullptr && std::strncmp(r.s, "slow", 4) == 0;
      if (r.a >= 0) field_int(out, "node", r.a);
      if (link && r.b >= 0) field_int(out, "peer", r.b);
      if (r.c > 0) field_int(out, link ? "pairs" : "groups", r.c);
      if (r.x > 0.0) field_num(out, slow ? "factor" : "extra_ms", r.x);
      if (!slow && r.y > 0.0) field_num(out, "prob", r.y);
      break;
    }
    case RecordType::kArrival:
      out += "{\"type\":\"arrival\",\"t\":";
      append_ms(out, r.t);
      out += ",\"run\":";
      append_int(out, r.a);
      field_num(out, "gap_ms", r.x);
      break;
    case RecordType::kVerdict:
      out += "{\"type\":\"verdict\",\"t\":";
      append_ms(out, r.t);
      out += ",\"run\":";
      append_int(out, r.a);
      out += ",\"suspect\":";
      append_int(out, r.c);
      break;
    case RecordType::kSockErr:
      out += "{\"type\":\"sock_err\",\"t\":";
      append_ms(out, r.t);
      out += ",\"node\":";
      append_int(out, r.a);
      field_str(out, "op", r.s);
      field_int(out, "errno", r.c);
      if (r.x > 1.0) field_num(out, "count", r.x);
      break;
    default:
      // Hot types are handled by format(); never reaches here.
      return;
  }
  out += "}\n";
}

void TraceWriter::drain() {
  if (file_ == nullptr) {
    // No file: the ring is a null sink; discard so emit() stays bounded.
    Record r;
    while (ring_.pop(r)) {
    }
    return;
  }
  if (drain_buf_.empty()) drain_buf_.resize(kDrainFlush + kLineMax);
  char* const base = drain_buf_.data();
  std::size_t len = 0;
  while (const Record* r = ring_.peek()) {
    len = static_cast<std::size_t>(format(*r, base + len) - base);
    ring_.advance();
    ++written_records_;
    // Write in bounded chunks so the buffer stays cache-resident instead
    // of ballooning to the whole ring's formatted size.
    if (len >= kDrainFlush) {
      std::fwrite(base, 1, len, file_);
      len = 0;
    }
  }
  if (len != 0) std::fwrite(base, 1, len, file_);
}

void TraceWriter::flush() {
  drain();
  if (file_ != nullptr) std::fflush(file_);
}

void TraceWriter::write_line(const std::string& line) {
  if (file_ == nullptr) return;
  drain();
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  ++written_records_;
}

void TraceWriter::log_line(LogLevel level, const std::string& message) {
  write_line(JsonLine{}
                 .str("type", "log")
                 .str("level", log_level_name(level))
                 .str("msg", message)
                 .finish());
}

namespace {
void log_trampoline(void* ctx, LogLevel level, const std::string& line) {
  static_cast<TraceWriter*>(ctx)->log_line(level, line);
}
}  // namespace

void TraceWriter::capture_logs() {
  set_log_sink(&log_trampoline, this);
  logs_captured_ = true;
}

void TraceWriter::release_logs() {
  if (logs_captured_) {
    clear_log_sink(this);
    logs_captured_ = false;
  }
}

void TraceWriter::close() {
  if (file_ == nullptr) return;
  drain();
  if (dropped_ > 0) {
    // The exact loss accounting: a lossy trace always says how lossy.
    write_line(
        JsonLine{}.str("type", "lost").integer("dropped", dropped_).finish());
  }
  std::fflush(file_);
  if (owns_file_) std::fclose(file_);
  file_ = nullptr;
}

}  // namespace rfd::obs
