// Fixed-capacity staging ring between the simulation hot path and the
// trace file writer.
//
// The simulator is single-threaded, so this is a ring in the
// lock-free-in-spirit sense: push() is a bounded handful of instructions
// (one store, one index increment, one wrap mask) with no formatting, no
// I/O and no allocation, and the expensive work happens only when the
// writer drains at controlled points (check ticks, snapshots, flush).
// When the ring fills, the caller decides between draining synchronously
// (lossless) and dropping; drops are counted exactly so a lossy trace
// always says how lossy it was.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/record.hpp"

namespace rfd::obs {

class RecordRing {
 public:
  explicit RecordRing(int capacity) {
    std::size_t cap = 1;
    while (cap < static_cast<std::size_t>(capacity < 2 ? 2 : capacity)) {
      cap <<= 1;
    }
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return buffer_.size(); }
  std::size_t size() const { return head_ - tail_; }
  bool empty() const { return head_ == tail_; }
  bool full() const { return size() == buffer_.size(); }

  /// Appends `r`; the caller must have checked full() (or accept that a
  /// full ring overwrites nothing - push on full is a checked error in
  /// debug, a silent no-op otherwise, so callers route overflow through
  /// their drop/drain policy instead).
  bool push(const Record& r) {
    if (full()) return false;
    buffer_[head_ & mask_] = r;
    ++head_;
    return true;
  }

  /// Pops the oldest record into `out`; false when empty.
  bool pop(Record& out) {
    if (empty()) return false;
    out = buffer_[tail_ & mask_];
    ++tail_;
    return true;
  }

  /// Zero-copy drain: oldest record in place, or nullptr when empty.
  /// The slot stays valid until the next push; pair with advance().
  const Record* peek() const {
    return empty() ? nullptr : &buffer_[tail_ & mask_];
  }
  void advance() { ++tail_; }

 private:
  std::vector<Record> buffer_;
  std::size_t mask_ = 0;
  /// Monotonic positions; the index is position & mask_. uint64 wraps
  /// after ~10^19 records - beyond any run.
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
};

}  // namespace rfd::obs
