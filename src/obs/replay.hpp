// Offline QoS re-derivation from a JSONL cluster trace.
//
// Replays the fault / suspect / clear records of a trace through the same
// ground-truth machine the cluster engine runs live, and recomputes the
// detection-latency samples and false-suspicion count exactly as
// ClusterEngine::finalize does. On a fixed seed the re-derived numbers
// must match the live ClusterReport bit-for-bit - the proof that the
// trace is a complete record of the run (the completeness the ML arrival
// predictor and run-diffing tooling depend on).
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.hpp"

namespace rfd::obs {

struct ReplayQos {
  bool ok = false;
  std::string error;

  // From the run header.
  int n = 0;
  int max_nodes = 0;
  double duration_ms = 0.0;

  // Re-derived, same semantics as the ClusterReport fields.
  Summary detection_latency_ms;
  std::int64_t false_suspicions = 0;
  std::int64_t suspicion_raises = 0;
  std::int64_t suspicion_clears = 0;
  std::int64_t records_read = 0;
  /// Count from a "lost" accounting record, if present (a lossy trace
  /// cannot re-derive exactly; callers should check this is zero).
  std::int64_t lost_records = 0;
};

/// Parses the trace at `path` and re-derives cluster QoS. Only the fixed
/// record grammar produced by TraceWriter is understood.
ReplayQos replay_qos(const std::string& path);

}  // namespace rfd::obs
