// Streaming JSONL trace sink.
//
// One TraceWriter owns one output file and the staging ring in front of
// it. The simulation hot path calls emit() - a POD store into the ring -
// and all formatting and I/O happens on the writer side: flush() drains
// the ring into JSONL lines, write-side records (run headers, metric
// snapshots, log lines) drain the ring first and then append their own
// complete line, so the stream is totally ordered and no line ever
// interleaves with another.
//
// Records are formatted with a fixed field order per type and fixed
// number formatting ("t" as fixed-point ms with ns resolution, other
// numbers as %.10g), so a fixed-seed run produces a byte-identical trace
// - the property the diffing and replay tooling relies on.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.hpp"
#include "obs/config.hpp"
#include "obs/record.hpp"
#include "obs/ring.hpp"

namespace rfd::obs {

/// Escapes `s` for embedding in a JSON string literal.
std::string json_escape(std::string_view s);

/// Builds one JSONL object line with insertion-ordered fields. Non-finite
/// numbers become null so downstream tooling never sees bare nan tokens.
class JsonLine {
 public:
  JsonLine& str(std::string_view key, std::string_view value);
  JsonLine& num(std::string_view key, double value);
  JsonLine& integer(std::string_view key, std::int64_t value);
  JsonLine& boolean(std::string_view key, bool value);
  /// Appends `"key":` followed by the raw (pre-formatted JSON) value.
  JsonLine& raw(std::string_view key, std::string_view json_value);
  /// Closes the object and returns the line (no trailing newline).
  std::string finish();

 private:
  void comma();
  std::string out_ = "{";
  bool first_ = true;
};

class TraceWriter final : public RecordSink {
 public:
  /// Opens config.trace_path ("-" = stdout). ok() reports success; all
  /// operations on a failed writer are no-ops.
  explicit TraceWriter(const Config& config);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  /// Hot path: stages one record. On a full ring, either drains
  /// synchronously (lossless, default) or drops and counts exactly
  /// (config.drop_on_full).
  void emit(const Record& r) override {
    ++emitted_;
    if (ring_.push(r)) return;
    if (drop_on_full_) {
      ++dropped_;
      return;
    }
    drain();
    ring_.push(r);
  }

  /// Drains the ring into the file and flushes stdio buffers.
  void flush();

  /// Writer-side: drains the ring, then appends one complete line.
  void write_line(const std::string& line);

  /// Writer-side: emits a structured log record (shares the stream with
  /// the event records; a whole line at a time, never interleaved).
  void log_line(LogLevel level, const std::string& message);

  /// Installs this writer as the process-wide log sink / removes it.
  void capture_logs();
  void release_logs();

  /// Finalizes the stream: drains, emits the exact drop-accounting record
  /// when any record was lost, and closes the file. Idempotent; the
  /// destructor calls it.
  void close();

  std::int64_t emitted() const { return emitted_; }
  std::int64_t dropped() const { return dropped_; }
  std::int64_t written_records() const { return written_records_; }

 private:
  void drain();
  /// Formats one record as a complete "{...}\n" line at `p` (the caller
  /// guarantees kLineMax bytes of room) and returns the end cursor.
  char* format(const Record& r, char* p);
  void format_cold(const Record& r, std::string& out);
  char* put_t(char* p, double value);

  RecordRing ring_;
  std::FILE* file_ = nullptr;
  bool owns_file_ = false;
  bool drop_on_full_ = false;
  bool logs_captured_ = false;
  std::int64_t emitted_ = 0;
  std::int64_t dropped_ = 0;
  std::int64_t written_records_ = 0;
  std::string scratch_;
  std::vector<char> drain_buf_;
  // Memo for the last formatted "t" value: hot records come in bursts that
  // share a sim-time stamp (all sends of one pump tick, drops alongside
  // them), so re-emitting the cached digits skips most double formatting.
  double memo_t_val_ = 0.0;
  int memo_t_len_ = 0;
  char memo_t_[32];
};

}  // namespace rfd::obs
