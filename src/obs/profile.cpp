#include "obs/profile.hpp"

namespace rfd::obs {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kObserve:
      return "observe";
    case Phase::kDigest:
      return "digest";
    case Phase::kDispatch:
      return "dispatch";
    case Phase::kRoute:
      return "route";
    case Phase::kSync:
      return "sync";
  }
  return "?";
}

std::vector<PhaseStat> Profiler::stats() const {
  std::vector<PhaseStat> out;
  for (int i = 0; i < kNumPhases; ++i) {
    const Acc& acc = acc_[i];
    if (acc.calls == 0) continue;
    PhaseStat stat;
    stat.phase = phase_name(static_cast<Phase>(i));
    stat.calls = acc.calls;
    stat.sampled = acc.sampled;
    stat.est_ms = acc.sampled > 0
                      ? static_cast<double>(acc.ns) / 1e6 *
                            (static_cast<double>(acc.calls) /
                             static_cast<double>(acc.sampled))
                      : 0.0;
    out.push_back(std::move(stat));
  }
  return out;
}

}  // namespace rfd::obs
