#include "obs/replay.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rfd::obs {
namespace {

// Minimal field extraction for the flat, fixed-order record grammar
// TraceWriter produces (string values in the records we replay never
// contain escaped quotes, and the replayed types have no nested objects).
bool find_value(std::string_view line, std::string_view key,
                std::string_view& value) {
  std::string pattern = "\"";
  pattern.append(key);
  pattern += "\":";
  const std::size_t pos = line.find(pattern);
  if (pos == std::string_view::npos) return false;
  value = line.substr(pos + pattern.size());
  return true;
}

bool field_num(std::string_view line, std::string_view key, double& out) {
  std::string_view value;
  if (!find_value(line, key, value)) return false;
  char buf[64];
  const std::size_t len = std::min(value.size(), sizeof(buf) - 1);
  std::memcpy(buf, value.data(), len);
  buf[len] = '\0';
  char* end = nullptr;
  out = std::strtod(buf, &end);
  return end != buf;
}

bool field_str(std::string_view line, std::string_view key,
               std::string& out) {
  std::string_view value;
  if (!find_value(line, key, value)) return false;
  if (value.empty() || value.front() != '"') return false;
  value.remove_prefix(1);
  const std::size_t quote = value.find('"');
  if (quote == std::string_view::npos) return false;
  out.assign(value.substr(0, quote));
  return true;
}

}  // namespace

ReplayQos replay_qos(const std::string& path) {
  ReplayQos result;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    result.error = "cannot open " + path;
    return result;
  }

  // Ground truth, mirrored from ClusterEngine's scenario interpreter.
  std::vector<char> ever_active;
  std::vector<char> truth_active;
  std::vector<double> down_since;
  // Standing suspicions: (observer, victim) -> raise time, mirrored from
  // the engine's cached per-pair verdicts.
  std::unordered_map<std::int64_t, double> suspicion;
  auto pair_key = [&](std::int64_t i, std::int64_t j) {
    return i * static_cast<std::int64_t>(result.max_nodes) + j;
  };

  std::string line;
  std::string kind;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    line.assign(buf);
    // Reassemble lines longer than the read buffer (log records can be).
    while (!line.empty() && line.back() != '\n' &&
           std::fgets(buf, sizeof(buf), f) != nullptr) {
      line.append(buf);
    }
    if (line.empty() || line.front() != '{') continue;
    ++result.records_read;

    std::string type;
    if (!field_str(line, "type", type)) continue;
    double t = 0.0;
    field_num(line, "t", t);

    if (type == "run") {
      double n = 0.0;
      double max_nodes = 0.0;
      double duration = 0.0;
      field_num(line, "n", n);
      field_num(line, "max_nodes", max_nodes);
      field_num(line, "duration_ms", duration);
      result.n = static_cast<int>(n);
      result.max_nodes = static_cast<int>(max_nodes);
      result.duration_ms = duration;
      const std::size_t cap = static_cast<std::size_t>(result.max_nodes);
      ever_active.assign(cap, 0);
      truth_active.assign(cap, 0);
      down_since.assign(cap, -1.0);
      for (int i = 0; i < result.n; ++i) {
        ever_active[static_cast<std::size_t>(i)] = 1;
        truth_active[static_cast<std::size_t>(i)] = 1;
      }
    } else if (type == "fault") {
      // The engine emits fault records only when they take effect, so the
      // replayed transition is unconditional.
      if (!field_str(line, "kind", kind)) continue;
      double node = -1.0;
      field_num(line, "node", node);
      const auto j = static_cast<std::int64_t>(node);
      if (j < 0 || j >= result.max_nodes) continue;
      if (kind == "crash" || kind == "leave") {
        truth_active[static_cast<std::size_t>(j)] = 0;
        down_since[static_cast<std::size_t>(j)] = t;
      } else if (kind == "recover" || kind == "join") {
        ever_active[static_cast<std::size_t>(j)] = 1;
        truth_active[static_cast<std::size_t>(j)] = 1;
        down_since[static_cast<std::size_t>(j)] = -1.0;
        // A restarted/joined process has no peer memory: its row of
        // standing suspicions is wiped (ClusterNode::reset_peers).
        for (std::int64_t v = 0; v < result.max_nodes; ++v) {
          suspicion.erase(pair_key(j, v));
        }
      }
      // partition / heal / storm records do not change the crashed set.
    } else if (type == "suspect") {
      double observer = -1.0;
      double victim = -1.0;
      double down = 0.0;
      field_num(line, "observer", observer);
      field_num(line, "victim", victim);
      field_num(line, "down", down);
      suspicion[pair_key(static_cast<std::int64_t>(observer),
                         static_cast<std::int64_t>(victim))] = t;
      ++result.suspicion_raises;
      if (down == 0.0) ++result.false_suspicions;
    } else if (type == "clear") {
      double observer = -1.0;
      double victim = -1.0;
      field_num(line, "observer", observer);
      field_num(line, "victim", victim);
      suspicion.erase(pair_key(static_cast<std::int64_t>(observer),
                               static_cast<std::int64_t>(victim)));
      ++result.suspicion_clears;
    } else if (type == "lost") {
      double dropped = 0.0;
      field_num(line, "dropped", dropped);
      result.lost_records += static_cast<std::int64_t>(dropped);
    }
  }
  std::fclose(f);

  if (result.max_nodes <= 0) {
    result.error = "no run header record in " + path;
    return result;
  }

  // Finalize, in the same (victim outer, observer inner) order as
  // ClusterEngine::finalize so the Welford mean accumulates identically.
  for (std::int64_t j = 0; j < result.max_nodes; ++j) {
    const std::size_t js = static_cast<std::size_t>(j);
    if (!ever_active[js] || truth_active[js] || down_since[js] < 0.0) {
      continue;
    }
    const double down_at = down_since[js];
    for (std::int64_t i = 0; i < result.max_nodes; ++i) {
      if (i == j || !truth_active[static_cast<std::size_t>(i)]) continue;
      const auto it = suspicion.find(pair_key(i, j));
      if (it == suspicion.end()) continue;  // not suspected (or never met)
      result.detection_latency_ms.add(std::max(0.0, it->second - down_at));
    }
  }
  result.ok = true;
  return result;
}

}  // namespace rfd::obs
