// Typed trace records for the streaming observability layer.
//
// The hot path never formats: it stores one fixed-size POD Record into the
// staging ring and returns. The writer side formats records into JSONL
// with a fixed field order per type (see trace_writer.cpp), so a fixed
// seed produces a byte-identical trace. Variable-length payloads are
// restricted to pointers to *static* strings (fault kind names, metric
// names), which stay valid across the deferred formatting.
#pragma once

#include <cstdint>

namespace rfd::obs {

enum class RecordType : std::uint8_t {
  kHbSend,    // node a sent a heartbeat message to peer b carrying c entries
  kHbRecv,    // node a received from peer b: c entries, x of them advances
  kDrop,      // message a -> b dropped; s = verdict ("partition" | "loss")
  kSuspect,   // observer a raised suspicion of victim b (c = truth: 1 down)
  kClear,     // observer a cleared its suspicion of victim b
  kFault,     // scenario fault applied; s = kind, a = node, x/y = extras
  kLeader,    // node a flipped acting-leader status (c) for cluster b
  kArrival,   // QoS monitor a: heartbeat arrival, x = inter-arrival gap ms
  kVerdict,   // QoS monitor a: suspicion verdict flipped to c at poll time
  kSockErr,   // transport socket error on node a: s = op ("sendmmsg"...),
              // c = errno, x = consecutive occurrences folded into this
              // record (error storms are rate-limited at the source)
};

/// Fixed-size hot-path record. Field meanings depend on `type` (above);
/// `t` is always the simulation clock in ms.
struct Record {
  double t = 0.0;
  RecordType type = RecordType::kHbSend;
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::int64_t c = 0;
  double x = 0.0;
  double y = 0.0;
  /// Static-lifetime string payload (never owned), or nullptr.
  const char* s = nullptr;
};

/// Destination for hot-path records. TraceWriter is the terminal sink
/// (stages into its ring and writes JSONL); the sharded cluster engine
/// interposes per-shard staging buffers that are merged into one writer
/// in a deterministic order at each barrier. Emitters (network, topology,
/// engine) hold a RecordSink* so they work identically under both.
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void emit(const Record& r) = 0;
};

}  // namespace rfd::obs
