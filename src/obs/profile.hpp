// Cheap scoped phase timers for the simulation hot spots.
//
// A disabled profiler (null pointer) costs one predictable branch per
// scope. An enabled one counts every entry exactly but reads the clock
// only on 1 of every 2^sample_shift entries, so the per-call overhead
// stays far below the sections under measurement; durations are scaled
// estimates (sampled time * calls / sampled), counts are exact. The
// phases are the known hot spots from the PR-5 profiling work:
// ClusterNode::observe (the engine's receive loop), GossipTopology::digest
// (per-message digest selection), EventQueue dispatch, and
// Network::route.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace rfd::obs {

enum class Phase : std::uint8_t {
  kObserve = 0,  // engine receive loop (ClusterNode::observe per entry)
  kDigest,       // topology digest selection per outgoing message
  kDispatch,     // EventQueue task dispatch
  kRoute,        // Network::route verdict + delay draw
  kSync,         // sharded-core barrier/merge waits (per-shard idle time)
};
inline constexpr int kNumPhases = 5;

const char* phase_name(Phase phase);

/// Rollup of one phase, as it lands in the trace and the BENCH json.
struct PhaseStat {
  std::string phase;
  std::int64_t calls = 0;
  std::int64_t sampled = 0;
  /// Scaled wall-clock estimate: sampled nanoseconds * calls / sampled.
  double est_ms = 0.0;
};

class Profiler {
 public:
  explicit Profiler(int sample_shift = 4)
      : mask_((std::uint64_t{1} << (sample_shift < 0 ? 0 : sample_shift)) -
              1) {}

  /// Rollups for every phase that was entered at least once.
  std::vector<PhaseStat> stats() const;

 private:
  friend class ScopedPhase;
  struct Acc {
    std::int64_t calls = 0;
    std::int64_t sampled = 0;
    std::int64_t ns = 0;
  };
  Acc acc_[kNumPhases];
  std::uint64_t mask_;
};

/// RAII phase scope. `profiler == nullptr` disables it entirely.
/// `always = true` bypasses sampling and times every entry — used for
/// rare-but-variable scopes (barrier waits: a handful per check tick,
/// with durations too skewed for 1-in-2^shift sampling to estimate).
class ScopedPhase {
 public:
  ScopedPhase(Profiler* profiler, Phase phase, bool always = false) {
    if (profiler == nullptr) return;
    Profiler::Acc& acc =
        profiler->acc_[static_cast<std::size_t>(phase)];
    const bool sample =
        always ||
        (static_cast<std::uint64_t>(acc.calls) & profiler->mask_) == 0;
    ++acc.calls;
    if (!sample) return;
    acc_ = &acc;
    start_ = std::chrono::steady_clock::now();
  }

  ~ScopedPhase() {
    if (acc_ == nullptr) return;
    acc_->ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
    ++acc_->sampled;
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Profiler::Acc* acc_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rfd::obs
