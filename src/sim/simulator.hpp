// The deterministic step-level simulator of the FLP + failure detector
// model (Sections 2.3-2.4).
//
// One step happens per global tick: the adversary picks a live process and
// a buffered message (or the null message) for it, the simulator queries
// the process's failure detector module, and the automaton performs its
// state transition, possibly sending messages and deciding/delivering
// values. The whole run is a pure function of (pattern, oracle seed,
// adversary, config), and everything that happened is recorded in a Trace.
//
// The model's run conditions are enforced here:
//   (4) fairness - a live process that has not stepped for
//       `limits.starvation_bound` ticks is scheduled by force;
//   (5) reliable channels - a buffered unblocked message older than
//       `limits.delivery_bound` ticks is delivered by force.
// Crafted scenarios postpone (but never cancel) steps and deliveries
// through StepPause / ChannelBlock windows, mirroring how the paper's
// proofs "delay all messages from p_j until after time t".
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fd/oracle.hpp"
#include "model/failure_pattern.hpp"
#include "sim/adversary.hpp"
#include "sim/automaton.hpp"
#include "sim/trace.hpp"

namespace rfd::sim {

struct SimConfig {
  AdversaryLimits limits;
  std::vector<ChannelBlock> blocks;
  std::vector<StepPause> pauses;
};

class Simulator final : public SchedView {
 public:
  /// `automata` must contain exactly pattern.n() entries (one per process).
  /// The oracle must have been built for the same pattern.
  Simulator(const model::FailurePattern& pattern, const fd::Oracle& oracle,
            std::vector<std::unique_ptr<Automaton>> automata,
            std::unique_ptr<Adversary> adversary, SimConfig config = {});

  /// Advances the clock by `ticks` (one step - or one idle tick when every
  /// live process is paused - per tick).
  void run_for(Tick ticks);

  /// Steps until `pred(trace())` holds or the global clock reaches
  /// `deadline`. Returns whether the predicate held.
  bool run_until(const std::function<bool(const Trace&)>& pred,
                 Tick deadline);

  const Trace& trace() const { return trace_; }
  Automaton& automaton(ProcessId p);

  // --- SchedView -----------------------------------------------------------
  Tick now() const override { return now_; }
  ProcessId n() const override { return pattern_->n(); }
  const ProcessSet& alive() const override { return alive_; }
  Tick last_step_tick(ProcessId p) const override;
  std::vector<MessageId> pending(ProcessId p) const override;
  Tick message_sent_at(MessageId m) const override;
  ProcessId message_src(MessageId m) const override;

  // Internal plumbing for SimContext (not part of the public API).
  void enqueue_message(MessageId m, ProcessId dst);

 private:
  void step_once();
  bool is_paused(ProcessId p, Tick t) const;
  /// First tick at which m may be received (send tick + 1, pushed back by
  /// matching channel blocks).
  Tick available_at(const Message& m) const;

  const model::FailurePattern* pattern_;
  const fd::Oracle* oracle_;
  std::vector<std::unique_ptr<Automaton>> automata_;
  std::unique_ptr<Adversary> adversary_;
  SimConfig config_;

  Trace trace_;
  Tick now_ = 0;
  ProcessSet alive_;
  std::vector<std::vector<MessageId>> pending_;  // per destination, FIFO
  std::vector<EventId> last_event_of_;
  std::vector<Tick> last_step_;      // -1 before the first step
  std::vector<Tick> last_progress_;  // for starvation accounting
  std::vector<bool> started_;
};

}  // namespace rfd::sim
