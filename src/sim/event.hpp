// Events: the steps of a schedule (Section 2.3), as recorded in a trace.
//
// A step e = (p_i, m, d, A) is uniquely defined by the process, the message
// received (or the null message), and the failure detector value seen. The
// trace additionally records the causal parents - the previous step of the
// same process and, through the received message, the step that sent it -
// so the "causal chain of a decision event" used by Lemma 4.1 is a
// queryable DAG rather than a proof device.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "fd/fd_value.hpp"

namespace rfd::sim {

struct Decision {
  InstanceId instance;
  Value value;
};

struct Delivery {
  InstanceId instance;
  Value value;
};

struct Event {
  EventId id = kNoEvent;
  ProcessId process = -1;
  Tick time = 0;                      // T[k]
  MessageId received = kNoMessage;    // kNoMessage encodes the null message
  fd::FdValue fd_value;               // d seen by the process in this step
  EventId prev_same_process = kNoEvent;
  std::vector<MessageId> sent;        // messages sent during this step
  std::vector<Decision> decisions;    // decide() calls made in this step
  std::vector<Delivery> deliveries;   // deliver() calls made in this step
  bool is_start = false;              // first step of the process
};

}  // namespace rfd::sim
