#include "sim/trace.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rfd::sim {

Trace::Trace(model::FailurePattern pattern, AdversaryLimits limits)
    : pattern_(std::move(pattern)),
      limits_(limits),
      steps_of_(static_cast<std::size_t>(pattern_.n()), 0) {}

Event& Trace::append_event(ProcessId process, Tick time, MessageId received,
                           fd::FdValue fd_value, EventId prev_same_process,
                           bool is_start) {
  Event e;
  e.id = static_cast<EventId>(events_.size());
  e.process = process;
  e.time = time;
  e.received = received;
  e.fd_value = std::move(fd_value);
  e.prev_same_process = prev_same_process;
  e.is_start = is_start;
  events_.push_back(std::move(e));
  ++steps_of_[static_cast<std::size_t>(process)];
  return events_.back();
}

Message& Trace::append_message(ProcessId src, ProcessId dst, Bytes payload,
                               ProcessSet alive_tags, EventId send_event,
                               Tick sent_at) {
  Message m;
  m.id = static_cast<MessageId>(messages_.size());
  m.src = src;
  m.dst = dst;
  m.payload = std::move(payload);
  m.alive_tags = std::move(alive_tags);
  m.send_event = send_event;
  m.sent_at = sent_at;
  messages_.push_back(std::move(m));
  received_by_.push_back(kNoEvent);
  return messages_.back();
}

void Trace::mark_received(MessageId m, EventId by) {
  RFD_REQUIRE(m >= 0 && m < num_messages());
  RFD_REQUIRE_MSG(received_by_[static_cast<std::size_t>(m)] == kNoEvent,
                  "message received twice");
  received_by_[static_cast<std::size_t>(m)] = by;
}

const Event& Trace::event(EventId e) const {
  RFD_REQUIRE(e >= 0 && e < num_events());
  return events_[static_cast<std::size_t>(e)];
}

const Message& Trace::message(MessageId m) const {
  RFD_REQUIRE(m >= 0 && m < num_messages());
  return messages_[static_cast<std::size_t>(m)];
}

EventId Trace::received_by(MessageId m) const {
  RFD_REQUIRE(m >= 0 && m < num_messages());
  return received_by_[static_cast<std::size_t>(m)];
}

std::int64_t Trace::steps_of(ProcessId p) const {
  RFD_REQUIRE(p >= 0 && p < n());
  return steps_of_[static_cast<std::size_t>(p)];
}

Tick Trace::last_event_tick() const {
  return events_.empty() ? -1 : events_.back().time;
}

std::vector<DecisionRef> Trace::decisions_of_instance(
    InstanceId instance) const {
  std::vector<DecisionRef> out;
  for (const auto& d : decisions_) {
    if (d.instance == instance) out.push_back(d);
  }
  return out;
}

std::vector<DeliveryRef> Trace::deliveries_of_instance(
    InstanceId instance) const {
  std::vector<DeliveryRef> out;
  for (const auto& d : deliveries_) {
    if (d.instance == instance) out.push_back(d);
  }
  return out;
}

std::optional<DecisionRef> Trace::decision_of(ProcessId p,
                                              InstanceId instance) const {
  for (const auto& d : decisions_) {
    if (d.process == p && d.instance == instance) return d;
  }
  return std::nullopt;
}

std::optional<DeliveryRef> Trace::delivery_of(ProcessId p,
                                              InstanceId instance) const {
  for (const auto& d : deliveries_) {
    if (d.process == p && d.instance == instance) return d;
  }
  return std::nullopt;
}

std::vector<EventId> Trace::causal_past(EventId e) const {
  RFD_REQUIRE(e >= 0 && e < num_events());
  std::vector<bool> seen(events_.size(), false);
  std::vector<EventId> stack{e};
  std::vector<EventId> out;
  seen[static_cast<std::size_t>(e)] = true;
  while (!stack.empty()) {
    const EventId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const Event& ev = events_[static_cast<std::size_t>(cur)];
    auto push = [&](EventId parent) {
      if (parent == kNoEvent) return;
      if (!seen[static_cast<std::size_t>(parent)]) {
        seen[static_cast<std::size_t>(parent)] = true;
        stack.push_back(parent);
      }
    };
    push(ev.prev_same_process);
    if (ev.received != kNoMessage) {
      push(message(ev.received).send_event);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

ProcessSet Trace::causal_message_senders(EventId e) const {
  ProcessSet senders(n());
  for (EventId id : causal_past(e)) {
    const Event& ev = events_[static_cast<std::size_t>(id)];
    if (ev.received != kNoMessage) {
      senders.insert(message(ev.received).src);
    }
    // Sent messages whose send event lies in the causal past only matter if
    // they were *received* inside the chain, which the branch above already
    // covers; receiving is what injects information into the chain.
  }
  return senders;
}

void Trace::record_decision(EventId e, InstanceId instance, Value v) {
  Event& ev = events_[static_cast<std::size_t>(e)];
  ev.decisions.push_back({instance, v});
  decisions_.push_back({e, ev.process, ev.time, instance, v});
}

void Trace::record_delivery(EventId e, InstanceId instance, Value v) {
  Event& ev = events_[static_cast<std::size_t>(e)];
  ev.deliveries.push_back({instance, v});
  deliveries_.push_back({e, ev.process, ev.time, instance, v});
}

fd::CheckResult Trace::validate(const fd::Oracle& oracle) const {
  Tick prev_time = -1;
  std::vector<EventId> last_event_of(static_cast<std::size_t>(n()), kNoEvent);
  for (const Event& e : events_) {
    // (T) strictly increasing times.
    if (e.time <= prev_time) {
      return fd::CheckResult::fail("times not strictly increasing at event " +
                                   std::to_string(e.id));
    }
    prev_time = e.time;
    // (3a) steps only by live processes: p not in F(T[k]).
    if (!pattern_.is_alive_at(e.process, e.time)) {
      return fd::CheckResult::fail("crashed process p" +
                                   std::to_string(e.process) + " stepped at " +
                                   std::to_string(e.time));
    }
    // (3b) d = H(p, T[k]).
    if (oracle.query(e.process, e.time) != e.fd_value) {
      return fd::CheckResult::fail("event " + std::to_string(e.id) +
                                   " saw a detector value outside H");
    }
    // (2) applicability: the received message was buffered for e.process.
    if (e.received != kNoMessage) {
      const Message& m = message(e.received);
      if (m.dst != e.process) {
        return fd::CheckResult::fail("message delivered to wrong process");
      }
      if (m.sent_at >= e.time) {
        return fd::CheckResult::fail("message received before it was sent");
      }
      if (received_by(e.received) != e.id) {
        return fd::CheckResult::fail("receive bookkeeping corrupt");
      }
    }
    if (e.prev_same_process !=
        last_event_of[static_cast<std::size_t>(e.process)]) {
      return fd::CheckResult::fail("process-order chain corrupt");
    }
    last_event_of[static_cast<std::size_t>(e.process)] = e.id;
  }

  // (4) bounded starvation: gaps between consecutive steps of a correct
  // process never exceed the recorded bound. Pauses show up as configured
  // exceptions, so traces produced with pauses are validated by their
  // effective bound (callers pass the right limits when pausing).
  const Tick horizon = last_event_tick();
  const ProcessSet correct = pattern_.correct();
  std::vector<Tick> last_step(static_cast<std::size_t>(n()), -1);
  for (const Event& e : events_) {
    last_step[static_cast<std::size_t>(e.process)] = e.time;
  }
  bool starved = false;
  correct.for_each([&](ProcessId p) {
    if (horizon - last_step[static_cast<std::size_t>(p)] >
        limits_.starvation_bound * 2) {
      starved = true;
    }
  });
  if (starved) {
    return fd::CheckResult::fail("a correct process stopped stepping");
  }

  // (5) bounded delivery: messages to correct processes are received within
  // the bound (messages sent near the window's end are exempt).
  for (const Message& m : messages_) {
    if (!correct.contains(m.dst)) continue;
    if (received_by(m.id) != kNoEvent) continue;
    if (horizon - m.sent_at > limits_.delivery_bound * 2) {
      return fd::CheckResult::fail(
          "message " + std::to_string(m.id) + " to correct p" +
          std::to_string(m.dst) + " still undelivered after the bound");
    }
  }
  return fd::CheckResult::pass();
}

std::string Trace::summary() const {
  std::string out = "trace{events=" + std::to_string(num_events()) +
                    " messages=" + std::to_string(num_messages()) +
                    " decisions=" + std::to_string(decisions_.size()) +
                    " deliveries=" + std::to_string(deliveries_.size()) + "}";
  return out;
}

}  // namespace rfd::sim
