// Traces: recorded runs R = <F, H, C, S, T> (Section 2.4).
//
// The trace stores the schedule S (events), the time list T (event times),
// the sampled portion of the detector history H (one FdValue per step), and
// the messages exchanged, with enough structure to answer the two questions
// the paper's proofs revolve around:
//   - causal chains: which events are in the causal past of a decision
//     event, and which processes contributed messages to it (Lemma 4.1);
//   - run validity: do the recorded steps satisfy conditions (1)-(5) of the
//     run definition on this bounded window.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fd/oracle.hpp"
#include "fd/properties.hpp"
#include "model/failure_pattern.hpp"
#include "sim/adversary.hpp"
#include "sim/event.hpp"
#include "sim/message.hpp"

namespace rfd::sim {

struct DecisionRef {
  EventId event;
  ProcessId process;
  Tick time;
  InstanceId instance;
  Value value;
};

struct DeliveryRef {
  EventId event;
  ProcessId process;
  Tick time;
  InstanceId instance;
  Value value;
};

class Trace {
 public:
  Trace(model::FailurePattern pattern, AdversaryLimits limits);

  const model::FailurePattern& pattern() const { return pattern_; }
  const AdversaryLimits& limits() const { return limits_; }
  ProcessId n() const { return pattern_.n(); }

  // --- population (used by the Simulator) ---------------------------------
  Event& append_event(ProcessId process, Tick time, MessageId received,
                      fd::FdValue fd_value, EventId prev_same_process,
                      bool is_start);
  Message& append_message(ProcessId src, ProcessId dst, Bytes payload,
                          ProcessSet alive_tags, EventId send_event,
                          Tick sent_at);
  void mark_received(MessageId m, EventId by);

  // --- plain access --------------------------------------------------------
  std::int64_t num_events() const {
    return static_cast<std::int64_t>(events_.size());
  }
  std::int64_t num_messages() const {
    return static_cast<std::int64_t>(messages_.size());
  }
  const Event& event(EventId e) const;
  const Message& message(MessageId m) const;
  /// Event that received message m, or kNoEvent while it is buffered.
  EventId received_by(MessageId m) const;
  /// Number of steps process p has taken.
  std::int64_t steps_of(ProcessId p) const;
  /// The last tick at which any event happened (or -1 for empty traces).
  Tick last_event_tick() const;

  // --- decisions & deliveries ----------------------------------------------
  const std::vector<DecisionRef>& decisions() const { return decisions_; }
  const std::vector<DeliveryRef>& deliveries() const { return deliveries_; }
  std::vector<DecisionRef> decisions_of_instance(InstanceId instance) const;
  std::vector<DeliveryRef> deliveries_of_instance(InstanceId instance) const;
  /// First decision of p in `instance`, if any.
  std::optional<DecisionRef> decision_of(ProcessId p,
                                         InstanceId instance) const;
  std::optional<DeliveryRef> delivery_of(ProcessId p,
                                         InstanceId instance) const;

  // --- causality (Lemma 4.1 machinery) -------------------------------------
  /// All events in the causal past of e (inclusive), via process order and
  /// message edges.
  std::vector<EventId> causal_past(EventId e) const;
  /// Processes that sent a message lying in the causal past of e. The
  /// paper's totality notion asks whether this covers every process alive
  /// at e's time (the deciding process itself counts trivially).
  ProcessSet causal_message_senders(EventId e) const;

  // --- run validity (Section 2.4, bounded window) --------------------------
  /// Checks conditions (1)-(3): strictly increasing times, steps only by
  /// processes not crashed at their step time, received messages genuinely
  /// buffered for the receiver, and d = H(p, T[k]) for the given oracle.
  /// Also checks the bounded-window forms of (4) starvation and (5)
  /// delivery using the recorded adversary limits.
  fd::CheckResult validate(const fd::Oracle& oracle) const;

  std::string summary() const;

  // Internal plumbing for the simulator's context (not part of the public
  // API): records a decide()/deliver() made by event e.
  void record_decision(EventId e, InstanceId instance, Value v);
  void record_delivery(EventId e, InstanceId instance, Value v);

 private:
  model::FailurePattern pattern_;
  AdversaryLimits limits_;
  std::vector<Event> events_;
  std::vector<Message> messages_;
  std::vector<EventId> received_by_;
  std::vector<std::int64_t> steps_of_;
  std::vector<DecisionRef> decisions_;
  std::vector<DeliveryRef> deliveries_;
};

}  // namespace rfd::sim
