#include "sim/composition.hpp"

#include "common/assert.hpp"

namespace rfd::sim {

Bytes frame(InstanceId instance, const Bytes& inner) {
  Writer w;
  w.varint(instance);
  w.bytes(inner);
  return std::move(w).take();
}

std::pair<InstanceId, Bytes> unframe(const Bytes& outer) {
  Reader r(outer);
  const auto instance = static_cast<InstanceId>(r.varint());
  Bytes inner = r.bytes();
  return {instance, std::move(inner)};
}

InstanceRouter::InstanceRouter(ChildFactory factory)
    : factory_(std::move(factory)) {
  RFD_REQUIRE(factory_ != nullptr);
}

SubInstanceContext InstanceRouter::child_context(Context& parent,
                                                 InstanceId tag) {
  auto decide_hook = [this, tag](Value v) {
    if (on_decide_) on_decide_(tag, v);
  };
  auto deliver_hook = [this, tag](Value v) {
    if (on_deliver_) on_deliver_(tag, v);
  };
  return SubInstanceContext(parent, tag, decide_hook, deliver_hook, record_);
}

void InstanceRouter::start(InstanceId tag, Context& parent) {
  if (children_.count(tag) > 0) return;
  auto child = factory_(tag);
  RFD_REQUIRE(child != nullptr);
  Automaton* raw = child.get();
  children_.emplace(tag, std::move(child));
  SubInstanceContext ctx = child_context(parent, tag);
  raw->on_start(ctx);
}

void InstanceRouter::route(Context& parent, const Incoming& m,
                           InstanceId min_tag) {
  auto [tag, inner] = unframe(m.payload);
  if (tag < min_tag) return;  // retired instance
  start(tag, parent);
  SubInstanceContext ctx = child_context(parent, tag);
  const Incoming inner_msg{m.src, inner, m.alive_tags, m.id};
  children_.at(tag)->on_step(ctx, &inner_msg);
}

void InstanceRouter::retire_below(InstanceId min_tag) {
  for (auto it = children_.begin(); it != children_.end();) {
    if (it->first < min_tag) {
      it = children_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace rfd::sim
