// Automaton composition: running several protocol instances over one
// simulated process.
//
// The paper's reduction T(D->P) runs "an infinite sequence of executions"
// of a consensus algorithm (Section 4.3), and TRB instances (i, k) each
// embed a consensus instance (Section 5). Composition is done by framing:
// a parent automaton prefixes child payloads with an instance tag and
// routes incoming framed messages to the right child, handing the child a
// SubInstanceContext that re-frames its sends and intercepts its
// decisions.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "sim/automaton.hpp"

namespace rfd::sim {

/// Frames a child payload under an instance tag.
Bytes frame(InstanceId instance, const Bytes& inner);

/// Splits a framed payload into (instance, inner payload).
std::pair<InstanceId, Bytes> unframe(const Bytes& outer);

/// Context decorator that forwards everything to a parent context.
/// Subclasses override the aspects they interpose on.
class ForwardingContext : public Context {
 public:
  explicit ForwardingContext(Context& parent) : parent_(&parent) {}

  ProcessId self() const override { return parent_->self(); }
  ProcessId n() const override { return parent_->n(); }
  Tick now() const override { return parent_->now(); }
  const fd::FdValue& fd() const override { return parent_->fd(); }
  void send_tagged(ProcessId dst, Bytes payload,
                   const ProcessSet& alive_tags) override {
    parent_->send_tagged(dst, std::move(payload), alive_tags);
  }
  void decide(InstanceId instance, Value v) override {
    parent_->decide(instance, v);
  }
  void deliver(InstanceId instance, Value v) override {
    parent_->deliver(instance, v);
  }

 protected:
  Context* parent_;
};

/// The context a child instance runs under: its sends are framed with the
/// instance tag; its decide()/deliver() calls are recorded under the tag
/// and optionally reported to the parent through hooks.
class SubInstanceContext final : public ForwardingContext {
 public:
  using ValueHook = std::function<void(Value)>;

  SubInstanceContext(Context& parent, InstanceId tag,
                     ValueHook on_decide = nullptr,
                     ValueHook on_deliver = nullptr, bool record = true)
      : ForwardingContext(parent),
        tag_(tag),
        on_decide_(std::move(on_decide)),
        on_deliver_(std::move(on_deliver)),
        record_(record) {}

  void send_tagged(ProcessId dst, Bytes payload,
                   const ProcessSet& alive_tags) override {
    parent_->send_tagged(dst, frame(tag_, payload), alive_tags);
  }

  void decide(InstanceId /*inner*/, Value v) override {
    if (record_) parent_->decide(tag_, v);
    if (on_decide_) on_decide_(v);
  }

  void deliver(InstanceId /*inner*/, Value v) override {
    if (record_) parent_->deliver(tag_, v);
    if (on_deliver_) on_deliver_(v);
  }

 private:
  InstanceId tag_;
  ValueHook on_decide_;
  ValueHook on_deliver_;
  bool record_;
};

/// Owns child automata keyed by instance tag, creating them on demand and
/// routing framed messages. The parent remains in charge of *when*
/// children start and which hooks observe their decisions.
class InstanceRouter {
 public:
  using ChildFactory = std::function<std::unique_ptr<Automaton>(InstanceId)>;
  using ValueHook = std::function<void(InstanceId, Value)>;

  explicit InstanceRouter(ChildFactory factory);

  /// Hook invoked whenever any child decides / delivers.
  void set_decision_hook(ValueHook hook) { on_decide_ = std::move(hook); }
  void set_delivery_hook(ValueHook hook) { on_deliver_ = std::move(hook); }

  /// Whether child decisions are recorded in the trace under their tag.
  void set_record(bool record) { record_ = record; }

  /// Creates (if needed) and starts the child for `tag`.
  void start(InstanceId tag, Context& parent);

  bool started(InstanceId tag) const { return children_.count(tag) > 0; }

  /// Routes a framed incoming message to its child; starts the child first
  /// if the tag is new. Messages for tags below `min_tag` are dropped
  /// (instances already garbage-collected).
  void route(Context& parent, const Incoming& m, InstanceId min_tag = 0);

  /// Number of live children.
  std::int64_t size() const {
    return static_cast<std::int64_t>(children_.size());
  }

  /// Drops children with tags strictly below `min_tag`.
  void retire_below(InstanceId min_tag);

 private:
  SubInstanceContext child_context(Context& parent, InstanceId tag);

  ChildFactory factory_;
  ValueHook on_decide_;
  ValueHook on_deliver_;
  bool record_ = true;
  std::map<InstanceId, std::unique_ptr<Automaton>> children_;
};

}  // namespace rfd::sim
