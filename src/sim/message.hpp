// Messages in the simulated message buffer (Section 2.3).
//
// The payload is opaque bytes (each algorithm defines its own wire format).
// `alive_tags` carries the "[p_k is alive]" annotations of the T(D->P)
// reduction (Section 4.3): the simulator transports them untouched; only
// the reduction wrapper reads or writes them. `send_event` makes the
// causal-chain structure of a run (Section 4.2) explicit in the trace.
#pragma once

#include "common/process_set.hpp"
#include "common/serialization.hpp"
#include "common/types.hpp"

namespace rfd::sim {

struct Message {
  MessageId id = kNoMessage;
  ProcessId src = -1;
  ProcessId dst = -1;
  Bytes payload;
  ProcessSet alive_tags;     // empty universe when unused
  EventId send_event = kNoEvent;
  Tick sent_at = 0;
};

/// What an automaton sees when it receives a (non-null) message.
struct Incoming {
  ProcessId src;
  const Bytes& payload;
  const ProcessSet& alive_tags;
  MessageId id;
};

}  // namespace rfd::sim
