#include "sim/adversary.hpp"

#include "common/assert.hpp"

namespace rfd::sim {

RandomAdversary::RandomAdversary(std::uint64_t seed, double lambda_prob)
    : rng_(seed), lambda_prob_(lambda_prob) {
  RFD_REQUIRE(lambda_prob >= 0.0 && lambda_prob < 1.0);
}

ProcessId RandomAdversary::pick_process(const SchedView& /*view*/,
                                        const ProcessSet& candidates) {
  const auto members = candidates.members();
  RFD_REQUIRE(!members.empty());
  return members[static_cast<std::size_t>(
      rng_.below(static_cast<std::int64_t>(members.size())))];
}

MessageId RandomAdversary::pick_message(
    const SchedView& /*view*/, ProcessId /*p*/,
    const std::vector<MessageId>& deliverable) {
  if (deliverable.empty() || rng_.chance(lambda_prob_)) {
    return kNoMessage;
  }
  return deliverable[static_cast<std::size_t>(
      rng_.below(static_cast<std::int64_t>(deliverable.size())))];
}

ProcessId RoundRobinAdversary::pick_process(const SchedView& view,
                                            const ProcessSet& candidates) {
  RFD_REQUIRE(!candidates.empty());
  for (ProcessId offset = 0; offset < view.n(); ++offset) {
    const ProcessId p = static_cast<ProcessId>((next_ + offset) % view.n());
    if (candidates.contains(p)) {
      next_ = static_cast<ProcessId>((p + 1) % view.n());
      return p;
    }
  }
  RFD_UNREACHABLE("no candidate process");
}

MessageId RoundRobinAdversary::pick_message(
    const SchedView& /*view*/, ProcessId /*p*/,
    const std::vector<MessageId>& deliverable) {
  return deliverable.empty() ? kNoMessage : deliverable.front();
}

}  // namespace rfd::sim
