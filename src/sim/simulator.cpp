#include "sim/simulator.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rfd::sim {

namespace {

/// Context implementation writing straight into the trace.
class SimContext final : public Context {
 public:
  SimContext(Simulator& sim, Trace& trace, ProcessId self, Tick now,
             const fd::FdValue& fd, EventId event)
      : sim_(&sim),
        trace_(&trace),
        self_(self),
        now_(now),
        fd_(&fd),
        event_(event) {}

  ProcessId self() const override { return self_; }
  ProcessId n() const override { return trace_->n(); }
  Tick now() const override { return now_; }
  const fd::FdValue& fd() const override { return *fd_; }

  void send_tagged(ProcessId dst, Bytes payload,
                   const ProcessSet& alive_tags) override {
    RFD_REQUIRE_MSG(dst >= 0 && dst < n(), "send to unknown process");
    Message& m = trace_->append_message(self_, dst, std::move(payload),
                                        alive_tags, event_, now_);
    const MessageId id = m.id;
    sim_->enqueue_message(id, dst);
  }

  void decide(InstanceId instance, Value v) override {
    trace_->record_decision(event_, instance, v);
  }

  void deliver(InstanceId instance, Value v) override {
    trace_->record_delivery(event_, instance, v);
  }

 private:
  Simulator* sim_;
  Trace* trace_;
  ProcessId self_;
  Tick now_;
  const fd::FdValue* fd_;
  EventId event_;
};

}  // namespace

Simulator::Simulator(const model::FailurePattern& pattern,
                     const fd::Oracle& oracle,
                     std::vector<std::unique_ptr<Automaton>> automata,
                     std::unique_ptr<Adversary> adversary, SimConfig config)
    : pattern_(&pattern),
      oracle_(&oracle),
      automata_(std::move(automata)),
      adversary_(std::move(adversary)),
      config_(std::move(config)),
      trace_(pattern, config_.limits),
      alive_(pattern.alive_at(0)),
      pending_(static_cast<std::size_t>(pattern.n())),
      last_event_of_(static_cast<std::size_t>(pattern.n()), kNoEvent),
      last_step_(static_cast<std::size_t>(pattern.n()), -1),
      last_progress_(static_cast<std::size_t>(pattern.n()), -1),
      started_(static_cast<std::size_t>(pattern.n()), false) {
  RFD_REQUIRE(static_cast<ProcessId>(automata_.size()) == pattern.n());
  RFD_REQUIRE(adversary_ != nullptr);
  RFD_REQUIRE(oracle.n() == pattern.n());
  for (const auto& a : automata_) {
    RFD_REQUIRE(a != nullptr);
  }
  RFD_REQUIRE(config_.limits.starvation_bound > 0);
  RFD_REQUIRE(config_.limits.delivery_bound > 0);
}

Automaton& Simulator::automaton(ProcessId p) {
  RFD_REQUIRE(p >= 0 && p < n());
  return *automata_[static_cast<std::size_t>(p)];
}

Tick Simulator::last_step_tick(ProcessId p) const {
  RFD_REQUIRE(p >= 0 && p < n());
  return last_step_[static_cast<std::size_t>(p)];
}

std::vector<MessageId> Simulator::pending(ProcessId p) const {
  RFD_REQUIRE(p >= 0 && p < n());
  return pending_[static_cast<std::size_t>(p)];
}

Tick Simulator::message_sent_at(MessageId m) const {
  return trace_.message(m).sent_at;
}

ProcessId Simulator::message_src(MessageId m) const {
  return trace_.message(m).src;
}

void Simulator::enqueue_message(MessageId m, ProcessId dst) {
  pending_[static_cast<std::size_t>(dst)].push_back(m);
}

bool Simulator::is_paused(ProcessId p, Tick t) const {
  for (const auto& pause : config_.pauses) {
    if (pause.p == p && t >= pause.from && t < pause.until) return true;
  }
  return false;
}

Tick Simulator::available_at(const Message& m) const {
  Tick at = m.sent_at + 1;
  for (const auto& block : config_.blocks) {
    const bool src_match = block.src == -1 || block.src == m.src;
    const bool dst_match = block.dst == -1 || block.dst == m.dst;
    if (src_match && dst_match) {
      at = std::max(at, block.until);
    }
  }
  return at;
}

void Simulator::step_once() {
  alive_ = pattern_->alive_at(now_);
  if (alive_.empty()) {
    ++now_;
    return;
  }

  // Candidate processes: alive and not paused. Paused / dead processes do
  // not accumulate starvation.
  ProcessSet candidates(n());
  alive_.for_each([&](ProcessId p) {
    if (!is_paused(p, now_)) {
      candidates.insert(p);
    } else {
      last_progress_[static_cast<std::size_t>(p)] = now_;
    }
  });
  if (candidates.empty()) {
    ++now_;
    return;
  }

  // Fairness forcing (run condition (4)): schedule the most starved process
  // once anyone exceeds the bound.
  ProcessId forced = -1;
  Tick worst = -1;
  candidates.for_each([&](ProcessId p) {
    const Tick starvation =
        now_ - std::max<Tick>(last_progress_[static_cast<std::size_t>(p)], 0);
    if (starvation >= config_.limits.starvation_bound && starvation > worst) {
      worst = starvation;
      forced = p;
    }
  });

  const ProcessId p =
      forced >= 0
          ? forced
          : adversary_->pick_process(*this, candidates);
  RFD_REQUIRE_MSG(candidates.contains(p), "adversary picked a bad process");

  // Deliverable messages and delivery forcing (run condition (5)).
  std::vector<MessageId> deliverable;
  MessageId forced_msg = kNoMessage;
  Tick oldest_avail = kNever;
  for (MessageId m : pending_[static_cast<std::size_t>(p)]) {
    const Tick avail = available_at(trace_.message(m));
    if (avail > now_) continue;
    deliverable.push_back(m);
    if (avail < oldest_avail) {
      oldest_avail = avail;
      forced_msg = m;
    }
  }
  MessageId chosen = kNoMessage;
  if (forced_msg != kNoMessage &&
      now_ - oldest_avail >= config_.limits.delivery_bound) {
    chosen = forced_msg;
  } else {
    chosen = adversary_->pick_message(*this, p, deliverable);
    if (chosen != kNoMessage) {
      RFD_REQUIRE_MSG(std::find(deliverable.begin(), deliverable.end(),
                                chosen) != deliverable.end(),
                      "adversary picked an undeliverable message");
    }
  }

  // Query the detector module (action 2 of a step).
  fd::FdValue d = oracle_->query(p, now_);

  const bool first = !started_[static_cast<std::size_t>(p)];
  Event& event =
      trace_.append_event(p, now_, chosen, std::move(d),
                          last_event_of_[static_cast<std::size_t>(p)], first);
  const EventId event_id = event.id;

  // Copy the incoming payload before running the automaton: sends during
  // the step may grow the message table and invalidate references.
  Bytes payload;
  ProcessSet tags(0);
  ProcessId src = -1;
  if (chosen != kNoMessage) {
    auto it = std::find(pending_[static_cast<std::size_t>(p)].begin(),
                        pending_[static_cast<std::size_t>(p)].end(), chosen);
    RFD_REQUIRE(it != pending_[static_cast<std::size_t>(p)].end());
    pending_[static_cast<std::size_t>(p)].erase(it);
    trace_.mark_received(chosen, event_id);
    const Message& m = trace_.message(chosen);
    payload = m.payload;
    tags = m.alive_tags;
    src = m.src;
  }

  SimContext ctx(*this, trace_, p, now_, trace_.event(event_id).fd_value,
                 event_id);
  if (first) {
    started_[static_cast<std::size_t>(p)] = true;
    automata_[static_cast<std::size_t>(p)]->on_start(ctx);
    // A message picked for the very first step is still consumed: treat it
    // as received by the start step, consistent with the one-step model.
    if (chosen != kNoMessage) {
      const Incoming incoming{src, payload, tags, chosen};
      automata_[static_cast<std::size_t>(p)]->on_step(ctx, &incoming);
    }
  } else if (chosen != kNoMessage) {
    const Incoming incoming{src, payload, tags, chosen};
    automata_[static_cast<std::size_t>(p)]->on_step(ctx, &incoming);
  } else {
    automata_[static_cast<std::size_t>(p)]->on_step(ctx, nullptr);
  }

  last_event_of_[static_cast<std::size_t>(p)] = event_id;
  last_step_[static_cast<std::size_t>(p)] = now_;
  last_progress_[static_cast<std::size_t>(p)] = now_;
  ++now_;
}

void Simulator::run_for(Tick ticks) {
  RFD_REQUIRE(ticks >= 0);
  const Tick deadline = now_ + ticks;
  while (now_ < deadline) {
    step_once();
  }
}

bool Simulator::run_until(const std::function<bool(const Trace&)>& pred,
                          Tick deadline) {
  while (now_ < deadline) {
    if (pred(trace_)) return true;
    step_once();
  }
  return pred(trace_);
}

}  // namespace rfd::sim
