// Adversaries: everything in a run that the model leaves unspecified.
//
// A run of an algorithm (Section 2.4) fixes a failure pattern and a
// detector history, but the schedule - which process steps when, and which
// buffered message (or the null message) it receives - is chosen
// nondeterministically subject to two run conditions:
//   (4) every correct process takes an infinite number of steps;
//   (5) every message sent to a correct process is eventually received.
//
// The Adversary makes those choices. The simulator enforces (4) and (5) on
// bounded windows through the starvation and delivery bounds below: when a
// live process or an old message exceeds its bound the adversary's hand is
// forced. Everything inside the bounds is genuinely adversarial.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/process_set.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace rfd::sim {

/// Temporarily forbids delivering messages src -> dst before tick `until`
/// (crafted runs: "delay all messages from p_j past the decision").
struct ChannelBlock {
  ProcessId src = -1;  // -1 matches any source
  ProcessId dst = -1;  // -1 matches any destination
  Tick until = 0;
};

/// Forbids scheduling process `p` during [from, until) (crafted runs:
/// "p takes no step until time t"). Fairness forcing skips paused
/// processes.
struct StepPause {
  ProcessId p = -1;
  Tick from = 0;
  Tick until = 0;
};

struct AdversaryLimits {
  /// A live, unpaused process never goes more than this many ticks without
  /// a step (bounded-window form of run condition (4)).
  Tick starvation_bound = 64;
  /// An unblocked message to a live process is received at most this many
  /// ticks after it was sent (bounded-window form of run condition (5)).
  Tick delivery_bound = 64;
};

/// What the adversary is allowed to observe when making choices.
class SchedView {
 public:
  virtual ~SchedView() = default;
  virtual Tick now() const = 0;
  virtual ProcessId n() const = 0;
  /// Processes that have not crashed by now().
  virtual const ProcessSet& alive() const = 0;
  virtual Tick last_step_tick(ProcessId p) const = 0;  // -1 if never stepped
  /// Ids of buffered messages destined to p, oldest first.
  virtual std::vector<MessageId> pending(ProcessId p) const = 0;
  virtual Tick message_sent_at(MessageId m) const = 0;
  virtual ProcessId message_src(MessageId m) const = 0;
};

class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Chooses which of the candidate processes steps at this tick.
  /// `candidates` is never empty; the simulator has already removed crashed
  /// and paused processes and applied the starvation bound.
  virtual ProcessId pick_process(const SchedView& view,
                                 const ProcessSet& candidates) = 0;

  /// Chooses the message `p` receives: one of `deliverable` (ids of
  /// unblocked buffered messages) or kNoMessage for the null message. The
  /// simulator overrides the choice when the delivery bound forces the
  /// oldest message.
  virtual MessageId pick_message(const SchedView& view, ProcessId p,
                                 const std::vector<MessageId>& deliverable) = 0;
};

/// Seeded adversary: uniform process choice, and for messages either the
/// null message (with probability lambda_prob) or a uniformly chosen
/// deliverable message.
class RandomAdversary final : public Adversary {
 public:
  explicit RandomAdversary(std::uint64_t seed, double lambda_prob = 0.15);

  ProcessId pick_process(const SchedView& view,
                         const ProcessSet& candidates) override;
  MessageId pick_message(const SchedView& view, ProcessId p,
                         const std::vector<MessageId>& deliverable) override;

 private:
  Rng rng_;
  double lambda_prob_;
};

/// Deterministic baseline: processes step in id order; the oldest
/// deliverable message is always received. Useful for readable example
/// traces and exact-replay tests.
class RoundRobinAdversary final : public Adversary {
 public:
  RoundRobinAdversary() = default;

  ProcessId pick_process(const SchedView& view,
                         const ProcessSet& candidates) override;
  MessageId pick_message(const SchedView& view, ProcessId p,
                         const std::vector<MessageId>& deliverable) override;

 private:
  ProcessId next_ = 0;
};

}  // namespace rfd::sim
