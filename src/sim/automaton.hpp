// Deterministic process automata (Section 2.3).
//
// In each step the simulator (1) picks a message m from the buffer or the
// null message, (2) queries the failure detector module, then (3) lets the
// automaton change state and send messages. The automaton sees (1) and (2)
// through the Context and the Incoming pointer; everything it does in (3)
// goes back through the Context, which records it in the trace.
//
// Automata must be deterministic: all nondeterminism in a run comes from
// the adversary (scheduling) and the oracle (detector history), never from
// the automaton itself.
#pragma once

#include "common/serialization.hpp"
#include "common/types.hpp"
#include "fd/fd_value.hpp"
#include "sim/message.hpp"

namespace rfd::sim {

class Context {
 public:
  virtual ~Context() = default;

  virtual ProcessId self() const = 0;
  virtual ProcessId n() const = 0;
  virtual Tick now() const = 0;

  /// The failure detector value d seen by this step (queried once by the
  /// simulator before the automaton runs).
  virtual const fd::FdValue& fd() const = 0;

  /// Sends `payload` to `dst` with explicit "[p is alive]" tags (Section
  /// 4.3). Ordinary algorithms use send(); only the reduction wrappers
  /// attach tags.
  virtual void send_tagged(ProcessId dst, Bytes payload,
                           const ProcessSet& alive_tags) = 0;

  /// Sends `payload` to `dst` (appears in the buffer immediately; the
  /// adversary decides when - and for crashed destinations whether - it is
  /// received).
  void send(ProcessId dst, Bytes payload) {
    send_tagged(dst, std::move(payload), ProcessSet(n()));
  }

  /// Records a decision event for `instance` (consensus-style problems).
  virtual void decide(InstanceId instance, Value v) = 0;

  /// Records a delivery event for `instance` (broadcast-style problems).
  virtual void deliver(InstanceId instance, Value v) = 0;

  /// Sends the same payload to every process except (optionally) self.
  void broadcast(const Bytes& payload, bool include_self = false) {
    for (ProcessId q = 0; q < n(); ++q) {
      if (q == self() && !include_self) continue;
      send(q, payload);
    }
  }
};

class Automaton {
 public:
  virtual ~Automaton() = default;

  /// The first step of the process (its initial state coming alive). No
  /// message can be pending yet; the step receives the null message.
  virtual void on_start(Context& ctx) = 0;

  /// Every subsequent step. `m` is nullptr for the null message lambda.
  virtual void on_step(Context& ctx, const Incoming* m) = 0;
};

}  // namespace rfd::sim
