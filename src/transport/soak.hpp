// Checkpointed soak runner: the cluster protocol driven over a real or
// simulated Transport for long wall-clock runs.
//
// The sharded engine (cluster/engine.*) is the scale instrument - it
// owns time and runs as fast as the CPU allows. The soak runner is the
// robustness instrument: one single-threaded driver loop that advances
// a unified tick grid (heartbeat and suspicion checks share the grid),
// pushes digests through a Transport - SimTransport for deterministic
// runs, UdpTransport for real kernel sockets, FlakyTransport layered on
// either for socket-boundary fault injection - and replays the same
// scenario DSL fault timelines the simulator uses.
//
// What makes it a *soak* runner:
//   - periodic versioned, CRC-checked checkpoints of the full mutable
//     state (nodes, detectors, RNG streams, fault cursor, metrics, and
//     the transport when it can serialize itself), written atomically;
//   - crash-resume: a run started with resume=true picks up from the
//     last checkpoint and - on the sim backend - produces the exact
//     counters and detection samples an uninterrupted run would have;
//   - graceful SIGINT/SIGTERM shutdown: the loop notices the flag at
//     the next tick, writes a final checkpoint, flushes the trace ring
//     and emits the end-of-run footer before exiting.
//
// All of the real-time machinery (pacing, epoll parking) engages only
// on the UDP backend; the sim backend runs the grid as fast as it can,
// which is what the resume-equivalence tests rely on.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/scenario.hpp"
#include "cluster/topology.hpp"
#include "common/stats.hpp"
#include "obs/config.hpp"
#include "runtime/detectors.hpp"
#include "runtime/network.hpp"
#include "transport/flaky.hpp"
#include "transport/transport.hpp"
#include "transport/udp.hpp"

namespace rfd::transport {

enum class SoakBackend { kSim, kUdp };

const char* soak_backend_name(SoakBackend backend);

struct SoakConfig {
  /// Initially active nodes (ids 0..n-1).
  int n = 16;
  /// Id-space bound; 0 derives max(n, highest scenario node id + 1).
  int max_nodes = 0;

  cluster::TopologyParams topology;
  rt::DetectorParams detector;
  /// Unified driver grid: heartbeats advance and suspicion verdicts are
  /// re-evaluated once per tick. (The sharded engine separates the two
  /// cadences; the soak driver trades that for a loop whose state is
  /// trivially checkpointable at tick boundaries.)
  double tick_ms = 100.0;
  double bootstrap_grace_ms = 1500.0;
  int hot_transmissions = 4;

  /// Simulated duration to cover (the resume path continues toward the
  /// same horizon; a longer horizon on resume extends the run).
  double duration_ms = 60'000.0;
  cluster::Scenario scenario;
  std::uint64_t seed = 1;

  SoakBackend backend = SoakBackend::kSim;
  /// Sim backend: the verdict/delay model of the simulated transport.
  rt::NetworkParams network;
  /// Wrap the backend in FlakyTransport (socket-boundary injection).
  /// This is how scenario network faults reach the UDP backend, which
  /// has no verdict network of its own.
  bool flaky = false;
  FlakyParams flaky_params;
  UdpParams udp;

  /// Checkpointing: empty path or cadence 0 disables. A final
  /// checkpoint is always written on exit when enabled.
  std::string checkpoint_path;
  double checkpoint_every_ms = 0.0;
  /// Resume from checkpoint_path instead of starting fresh.
  bool resume = false;

  /// UDP pacing: wall-clock ms per simulated ms (1.0 = real time,
  /// 0.1 = 10x faster). Ignored by the sim backend.
  double time_scale = 1.0;

  obs::Config obs;
};

struct SoakReport {
  std::string backend;
  int n = 0;
  int max_nodes = 0;
  /// Simulated time covered by the end of the run (cumulative across
  /// resumes) and ticks executed by *this* process.
  double sim_ms = 0.0;
  std::int64_t ticks_run = 0;
  double wall_ms = 0.0;

  TransportCounters transport;

  /// Suspicion churn over the whole (resumed) run.
  std::int64_t raises = 0;
  std::int64_t clears = 0;
  std::int64_t false_suspicions = 0;
  /// Crash-to-first-raise latencies (ms), cumulative across resumes.
  Summary detection;
  /// (live observer, truly down peer) pairs still unsuspected at exit.
  std::int64_t missed = 0;
  /// Every live node's suspected set matches the true crashed set.
  bool final_agreement = false;

  int checkpoints_written = 0;
  bool resumed = false;
  bool stopped_by_signal = false;

  std::int64_t trace_records = 0;
  std::int64_t trace_dropped = 0;

  /// FNV-1a over the deterministic outcome (counters, samples, final
  /// tick): two sim-backend runs that covered the same timeline - with
  /// or without a kill/resume in the middle - hash identically.
  std::uint64_t outcome_fingerprint = 0;
};

/// Hash of the run-defining configuration (everything except duration,
/// checkpoint bookkeeping, pacing and observability). Stamped into
/// checkpoints so a resume under a different config is refused.
std::uint64_t soak_config_fingerprint(const SoakConfig& config);

/// Executes the soak run. On resume failure (missing/corrupt/foreign
/// checkpoint) returns false and fills `error` without running.
bool run_soak(const SoakConfig& config, SoakReport& report,
              std::string& error);

}  // namespace rfd::transport
