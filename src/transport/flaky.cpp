#include "transport/flaky.hpp"

#include "common/bytes.hpp"

namespace rfd::transport {

namespace {
constexpr std::uint32_t kFlakyStateMagic = 0x464c4b59u;  // "FLKY"
}  // namespace

FlakyTransport::FlakyTransport(std::unique_ptr<Transport> inner,
                               int max_nodes, std::uint64_t seed,
                               FlakyParams params)
    : inner_(std::move(inner)),
      max_nodes_(max_nodes),
      net_(std::make_unique<rt::Network>(clock_, seed, params.network)),
      dup_rng_(mix_seed(seed, 0xd0bb1edull)),
      params_(params) {
  RFD_REQUIRE(inner_ != nullptr);
  RFD_REQUIRE(max_nodes > 0);
  RFD_REQUIRE(params.dup_prob >= 0.0 && params.dup_prob <= 1.0);
}

void FlakyTransport::advance_clock(double now_ms) {
  if (now_ms > clock_.now()) clock_.run_until(now_ms);
}

void FlakyTransport::hold(NodeId from, NodeId to, const std::uint8_t* data,
                          std::size_t size, double release_at_ms) {
  Held h;
  h.release_at_ms = release_at_ms;
  h.seq = seq_++;
  h.from = from;
  h.to = to;
  h.payload.assign(data, data + size);
  held_.insert(std::move(h));
}

void FlakyTransport::send(NodeId from, NodeId to, const std::uint8_t* data,
                          std::size_t size, double now_ms) {
  advance_clock(now_ms);
  ++offered_;
  const std::optional<double> delay = net_->route(from, to);
  if (delay.has_value()) {
    hold(from, to, data, size, now_ms + *delay);
    if (params_.dup_prob > 0.0 && dup_rng_.chance(params_.dup_prob)) {
      // The duplicate runs the full gauntlet again: its own loss
      // verdict, its own delay - so a dup can die, or overtake the
      // original (reordering).
      const std::optional<double> dup_delay = net_->route(from, to);
      if (dup_delay.has_value()) {
        hold(from, to, data, size, now_ms + *dup_delay);
        ++duplicated_;
      }
    }
  }
}

void FlakyTransport::poll(double now_ms, std::vector<Delivery>& out) {
  advance_clock(now_ms);
  while (!held_.empty() && held_.begin()->release_at_ms <= now_ms) {
    auto node = held_.extract(held_.begin());
    const Held& h = node.value();
    inner_->send(h.from, h.to, h.payload.data(), h.payload.size(),
                 h.release_at_ms);
  }
  inner_->poll(now_ms, out);
}

TransportCounters FlakyTransport::counters() const {
  TransportCounters c = inner_->counters();
  // sent = what the application offered at this boundary (the verdict
  // network's own sent() also counts duplicate copies' verdicts, so it
  // is not usable here); dropped adds what the injector ate, including
  // dup copies that died. delivered + dropped therefore exceeds sent by
  // the number of duplicate verdicts drawn.
  c.sent = offered_;
  c.dropped += net_->dropped();
  c.duplicated += duplicated_;
  return c;
}

bool FlakyTransport::save_state(std::vector<std::uint8_t>& out) const {
  ByteWriter w(out);
  w.u32(kFlakyStateMagic);
  w.i32(max_nodes_);
  w.f64(clock_.now());
  w.u64(seq_);
  w.i64(duplicated_);
  w.i64(offered_);
  for (std::uint64_t word : dup_rng_.save_state()) w.u64(word);
  std::int64_t sent = 0, dropped = 0, part = 0, link = 0;
  net_->save_accounting(sent, dropped, part, link);
  w.i64(sent);
  w.i64(dropped);
  w.i64(part);
  w.i64(link);
  std::vector<std::array<std::uint64_t, 5>> streams;
  net_->save_rng_state(streams);
  w.u32(static_cast<std::uint32_t>(streams.size()));
  for (const auto& s : streams) {
    for (std::uint64_t word : s) w.u64(word);
  }
  w.u32(static_cast<std::uint32_t>(held_.size()));
  for (const Held& h : held_) {
    w.f64(h.release_at_ms);
    w.u64(h.seq);
    w.i32(h.from);
    w.i32(h.to);
    w.u32(static_cast<std::uint32_t>(h.payload.size()));
    w.bytes(h.payload.data(), h.payload.size());
  }
  // The inner transport's state, length-prefixed; an inner that cannot
  // checkpoint (udp) contributes an empty slice and restores fresh.
  std::vector<std::uint8_t> inner_state;
  const bool inner_saved = inner_->save_state(inner_state);
  w.u8(inner_saved ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(inner_state.size()));
  w.bytes(inner_state.data(), inner_state.size());
  return true;
}

bool FlakyTransport::restore_state(const std::uint8_t* data,
                                   std::size_t size) {
  ByteReader r(data, size);
  if (r.u32() != kFlakyStateMagic) return false;
  if (r.i32() != max_nodes_) return false;
  const double clock_now = r.f64();
  const std::uint64_t seq = r.u64();
  const std::int64_t duplicated = r.i64();
  const std::int64_t offered = r.i64();
  std::array<std::uint64_t, 5> dup_state{};
  for (std::uint64_t& word : dup_state) word = r.u64();
  const std::int64_t sent = r.i64();
  const std::int64_t dropped = r.i64();
  const std::int64_t part = r.i64();
  const std::int64_t link = r.i64();
  const std::uint32_t stream_count = r.u32();
  if (!r.ok() || stream_count == 0 ||
      stream_count > static_cast<std::uint32_t>(max_nodes_) + 1) {
    return false;
  }
  std::vector<std::array<std::uint64_t, 5>> streams(stream_count);
  for (auto& s : streams) {
    for (std::uint64_t& word : s) word = r.u64();
  }
  const std::uint32_t held_count = r.u32();
  if (!r.ok()) return false;
  std::set<Held> held;
  for (std::uint32_t i = 0; i < held_count; ++i) {
    Held h;
    h.release_at_ms = r.f64();
    h.seq = r.u64();
    h.from = r.i32();
    h.to = r.i32();
    const std::uint32_t payload_size = r.u32();
    if (!r.ok() || payload_size > (1u << 24)) return false;
    h.payload.resize(payload_size);
    if (payload_size != 0 && !r.bytes(h.payload.data(), payload_size)) {
      return false;
    }
    held.insert(std::move(h));
  }
  const bool inner_saved = r.u8() != 0;
  const std::uint32_t inner_size = r.u32();
  if (!r.ok() || inner_size > (1u << 28)) return false;
  std::vector<std::uint8_t> inner_state(inner_size);
  if (inner_size != 0 && !r.bytes(inner_state.data(), inner_size)) {
    return false;
  }
  if (!r.ok()) return false;
  if (inner_saved &&
      !inner_->restore_state(inner_state.data(), inner_state.size())) {
    return false;
  }
  if (clock_now > clock_.now()) clock_.run_until(clock_now);
  seq_ = seq;
  duplicated_ = duplicated;
  offered_ = offered;
  dup_rng_.restore_state(dup_state);
  net_->restore_accounting(sent, dropped, part, link);
  net_->restore_rng_state(streams);
  held_ = std::move(held);
  return true;
}

}  // namespace rfd::transport
