#include "transport/checkpoint.hpp"

#include <cstdio>

#include "common/bytes.hpp"
#include "common/crc32.hpp"

namespace rfd::transport {

namespace {
constexpr std::uint32_t kMagic = 0x43444652u;  // "RFDC"
constexpr std::uint32_t kVersion = 1;
}  // namespace

bool write_checkpoint(const std::string& path, const CheckpointData& data,
                      std::string& error) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(data.payload.size() + 64);
  ByteWriter w(bytes);
  w.u32(kMagic);
  w.u32(kVersion);
  w.u64(data.config_fingerprint);
  w.i64(data.tick);
  w.f64(data.now_ms);
  w.u64(data.payload.size());
  w.bytes(data.payload.data(), data.payload.size());
  w.u32(crc32(bytes.data(), bytes.size()));

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    error = "cannot open " + tmp + " for writing";
    return false;
  }
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || !flushed) {
    error = "short write to " + tmp;
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    error = "rename " + tmp + " -> " + path + " failed";
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool read_checkpoint(const std::string& path,
                     std::uint64_t expected_fingerprint, CheckpointData& out,
                     std::string& error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    error = "cannot open " + path;
    return false;
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    bytes.insert(bytes.end(), buf, buf + n);
    if (n < sizeof(buf)) break;
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    error = "read error on " + path;
    return false;
  }
  // Trailer first: the CRC covers everything before it, so any
  // truncation or corruption anywhere in the file fails here.
  if (bytes.size() < 44) {  // header (40) + crc (4)
    error = "checkpoint truncated (header incomplete)";
    return false;
  }
  ByteReader trailer(bytes.data() + bytes.size() - 4, 4);
  const std::uint32_t stored_crc = trailer.u32();
  const std::uint32_t actual_crc = crc32(bytes.data(), bytes.size() - 4);
  if (stored_crc != actual_crc) {
    error = "checkpoint CRC mismatch (corrupted or torn write)";
    return false;
  }
  ByteReader r(bytes.data(), bytes.size() - 4);
  if (r.u32() != kMagic) {
    error = "bad checkpoint magic";
    return false;
  }
  const std::uint32_t version = r.u32();
  if (version != kVersion) {
    error = "unsupported checkpoint version " + std::to_string(version);
    return false;
  }
  out.config_fingerprint = r.u64();
  out.tick = r.i64();
  out.now_ms = r.f64();
  const std::uint64_t payload_size = r.u64();
  if (!r.ok() || payload_size != r.remaining()) {
    error = "checkpoint payload size mismatch";
    return false;
  }
  if (expected_fingerprint != 0 &&
      out.config_fingerprint != expected_fingerprint) {
    error = "checkpoint was produced by a different configuration";
    return false;
  }
  out.payload.resize(payload_size);
  if (payload_size != 0 && !r.bytes(out.payload.data(), payload_size)) {
    error = "checkpoint payload truncated";
    return false;
  }
  return true;
}

}  // namespace rfd::transport
