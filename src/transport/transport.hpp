// Transport abstraction for the heartbeat send/receive path.
//
// The cluster engine simulates its network inline (conservative parallel
// DES - see cluster/engine.cpp); the soak driver instead pushes opaque
// datagrams through this interface, which has three implementations:
//
//   SimTransport   (transport/sim.hpp)   - the simulated partially
//     synchronous network behind a datagram API: deterministic, owns a
//     logical clock, fully checkpointable (in-flight buffer + RNG
//     streams round-trip byte-exactly).
//   UdpTransport   (transport/udp.hpp)   - real non-blocking UDP sockets
//     on epoll, batched recvmmsg/sendmmsg, bounded send queue with drop
//     accounting and EAGAIN/ENOBUFS retry-with-backoff.
//   FlakyTransport (transport/flaky.hpp) - composable wrapper injecting
//     loss / duplication / reordering / extra delay at the socket
//     boundary, driven by the same scenario fault surface the simulator
//     uses - so one .scn file exercises both backends.
//
// The driver owns the clock: `now_ms` on send()/poll() is driver time
// (simulation ms for the sim backend, wall-clock ms since run start for
// UDP). A transport never calls back into the driver; deliveries are
// pulled with poll(), which keeps the soak loop single-threaded and the
// sim backend deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/network.hpp"

namespace rfd::transport {

using NodeId = rt::NodeId;

/// Uniform counters every backend maintains; the soak runner snapshots
/// them into its obs::Registry (transport.* metric names) and the final
/// report.
struct TransportCounters {
  std::int64_t sent = 0;         // datagrams accepted by send()
  std::int64_t delivered = 0;    // datagrams surfaced by poll()
  std::int64_t dropped = 0;      // injected verdict drops (loss/partition)
  std::int64_t duplicated = 0;   // flaky duplicates created
  std::int64_t queue_drops = 0;  // bounded send-queue overflow drops
  std::int64_t retries = 0;      // EAGAIN/ENOBUFS retry attempts
  std::int64_t sock_errors = 0;  // socket-level errors observed
};

/// One received datagram: who sent it, when it surfaced on the driver's
/// clock, and the opaque payload bytes.
struct Delivery {
  double at_ms = 0.0;
  NodeId from = -1;
  NodeId to = -1;
  std::vector<std::uint8_t> payload;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual const char* name() const = 0;

  /// Hands one datagram to the transport at driver time `now_ms`.
  /// Delivery (or loss) is decided by the backend; send() never blocks.
  virtual void send(NodeId from, NodeId to, const std::uint8_t* data,
                    std::size_t size, double now_ms) = 0;

  /// Appends every datagram due by `now_ms` to `out`, in a deterministic
  /// order for the sim backend (arrival time, then send sequence).
  virtual void poll(double now_ms, std::vector<Delivery>& out) = 0;

  virtual TransportCounters counters() const = 0;

  /// The scenario fault surface: backends carrying a simulated verdict
  /// network (sim, flaky) expose it so partitions / loss / slow factors /
  /// storms from a .scn timeline apply at this boundary. Raw transports
  /// (udp) return nullptr - wrap them in FlakyTransport for faults.
  virtual rt::Network* fault_network() { return nullptr; }

  /// Checkpoint hooks. Sim-backed transports serialize their in-flight
  /// buffer, send sequence and RNG streams and return true; wall-clock
  /// transports return false (in-flight UDP datagrams die with the
  /// process - a resumed run simply re-heartbeats, which the protocol
  /// tolerates by design). restore_state() returns false on a payload
  /// that is truncated or from a different configuration.
  virtual bool save_state(std::vector<std::uint8_t>& out) const {
    (void)out;
    return false;
  }
  virtual bool restore_state(const std::uint8_t* data, std::size_t size) {
    (void)data;
    (void)size;
    return false;
  }
};

}  // namespace rfd::transport
