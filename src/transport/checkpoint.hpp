// Versioned, CRC-checked checkpoint files for the soak runner.
//
// File layout (all little-endian; see common/bytes.hpp):
//
//   u32  magic            "RFDC" (0x43444652)
//   u32  version          format version (currently 1)
//   u64  config_fingerprint  hash of the producing configuration; a
//                            loader refuses a snapshot from a different
//                            config instead of resuming into nonsense
//   i64  tick             driver tick the snapshot was taken at
//   f64  now_ms           driver clock at the snapshot
//   u64  payload_size
//   ...  payload          runner-defined bytes (nodes, RNGs, transport,
//                         metrics - see transport/soak.cpp)
//   u32  crc32            over every preceding byte
//
// Writes are atomic: the file is written to `<path>.tmp` and renamed
// over the destination, so a crash mid-checkpoint leaves the previous
// snapshot intact - the resume path always finds either the old or the
// new checkpoint, never a torn one. A corrupted or truncated file (bad
// magic, unknown version, wrong fingerprint, CRC mismatch, short read)
// is rejected with a reason string.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rfd::transport {

struct CheckpointData {
  std::uint64_t config_fingerprint = 0;
  std::int64_t tick = 0;
  double now_ms = 0.0;
  std::vector<std::uint8_t> payload;
};

/// Serializes `data` to `path` (tmp + rename). Returns false and fills
/// `error` on I/O failure.
bool write_checkpoint(const std::string& path, const CheckpointData& data,
                      std::string& error);

/// Loads and verifies `path`. Returns false and fills `error` when the
/// file is missing, torn, corrupt, from an unknown format version, or
/// (when `expected_fingerprint` is nonzero) from a different config.
bool read_checkpoint(const std::string& path,
                     std::uint64_t expected_fingerprint, CheckpointData& out,
                     std::string& error);

}  // namespace rfd::transport
