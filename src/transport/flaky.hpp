// FlakyTransport: socket-boundary fault injection over any Transport.
//
// Wraps an inner transport (typically UdpTransport - SimTransport
// already has a verdict network of its own) and subjects every datagram
// to the simulated network's fate machinery *before* it reaches the
// inner send: random loss, partitions, directed link blocks, slow
// factors and delay storms all apply, driven by the same scenario DSL
// fault timeline the simulator runs - so a .scn file written against
// the sim backend injects the identical fault schedule into real
// sockets. On top of the Network verdicts it adds duplication (a second
// copy with an independently drawn delay) - and because held copies are
// released in delay order rather than send order, jittered delays
// reorder datagrams exactly the way a congested real path does.
#pragma once

#include <memory>
#include <set>

#include "runtime/event_queue.hpp"
#include "transport/transport.hpp"

namespace rfd::transport {

struct FlakyParams {
  /// Verdict/delay model applied at the boundary (loss_prob, delay
  /// distribution, GST chaos - see rt::NetworkParams).
  rt::NetworkParams network;
  /// Probability that a surviving datagram is duplicated; the copy draws
  /// its own delay (and its own loss verdict), so duplicates reorder.
  double dup_prob = 0.0;
};

class FlakyTransport final : public Transport {
 public:
  FlakyTransport(std::unique_ptr<Transport> inner, int max_nodes,
                 std::uint64_t seed, FlakyParams params);

  const char* name() const override { return "flaky"; }
  void send(NodeId from, NodeId to, const std::uint8_t* data,
            std::size_t size, double now_ms) override;
  void poll(double now_ms, std::vector<Delivery>& out) override;
  TransportCounters counters() const override;
  rt::Network* fault_network() override { return net_.get(); }

  bool save_state(std::vector<std::uint8_t>& out) const override;
  bool restore_state(const std::uint8_t* data, std::size_t size) override;

  Transport* inner() { return inner_.get(); }

  /// Forward the trace sink to the injection network (drop records).
  void set_trace(obs::RecordSink* trace) { net_->set_trace(trace); }

 private:
  struct Held {
    double release_at_ms;
    std::uint64_t seq;
    NodeId from;
    NodeId to;
    std::vector<std::uint8_t> payload;
    bool operator<(const Held& o) const {
      if (release_at_ms != o.release_at_ms) {
        return release_at_ms < o.release_at_ms;
      }
      return seq < o.seq;
    }
  };

  void advance_clock(double now_ms);
  void hold(NodeId from, NodeId to, const std::uint8_t* data,
            std::size_t size, double release_at_ms);

  std::unique_ptr<Transport> inner_;
  int max_nodes_;
  rt::EventQueue clock_;  // pure clock for the verdict network
  std::unique_ptr<rt::Network> net_;
  Rng dup_rng_;
  FlakyParams params_;
  std::set<Held> held_;
  std::uint64_t seq_ = 0;
  std::int64_t duplicated_ = 0;
  // Datagrams accepted by send() - the injection verdicts (and the dup
  // copies' own verdicts) run through net_, whose sent() therefore
  // overcounts; counters().sent reports this instead.
  std::int64_t offered_ = 0;
};

}  // namespace rfd::transport
