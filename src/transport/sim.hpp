// SimTransport: the simulated partially synchronous network behind the
// datagram Transport interface.
//
// Wraps an rt::Network (the same verdict/delay machinery the cluster
// engine replicates per shard) plus a private rt::EventQueue that serves
// purely as the logical clock the network's GST/storm checks read - the
// queue never holds closures. In-flight datagrams live in an explicit
// ordered buffer keyed (arrival time, send sequence) instead of queue
// closures, which is what makes the whole transport checkpointable: the
// buffer, the send sequence and the network's RNG streams serialize to
// bytes and restore to a transport that behaves draw-for-draw like the
// saved one.
#pragma once

#include <memory>
#include <set>

#include "runtime/event_queue.hpp"
#include "transport/transport.hpp"

namespace rfd::transport {

class SimTransport final : public Transport {
 public:
  SimTransport(int max_nodes, std::uint64_t seed, rt::NetworkParams params);

  const char* name() const override { return "sim"; }
  void send(NodeId from, NodeId to, const std::uint8_t* data,
            std::size_t size, double now_ms) override;
  void poll(double now_ms, std::vector<Delivery>& out) override;
  TransportCounters counters() const override;
  rt::Network* fault_network() override { return net_.get(); }

  bool save_state(std::vector<std::uint8_t>& out) const override;
  bool restore_state(const std::uint8_t* data, std::size_t size) override;

  /// Earliest buffered arrival (+infinity when empty) - lets a driver
  /// skip idle polls.
  double next_delivery_at() const;

  /// Forward the trace sink to the verdict network (drop records).
  void set_trace(obs::RecordSink* trace) { net_->set_trace(trace); }

 private:
  struct InFlight {
    double at_ms;
    std::uint64_t seq;
    NodeId from;
    NodeId to;
    std::vector<std::uint8_t> payload;
    bool operator<(const InFlight& o) const {
      if (at_ms != o.at_ms) return at_ms < o.at_ms;
      return seq < o.seq;
    }
  };

  void advance_clock(double now_ms);

  int max_nodes_;
  rt::EventQueue clock_;  // pure clock: run_until() only moves now()
  std::unique_ptr<rt::Network> net_;
  std::set<InFlight> in_flight_;
  std::uint64_t seq_ = 0;
  std::int64_t delivered_ = 0;
};

}  // namespace rfd::transport
