#include "transport/soak.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "cluster/digest_codec.hpp"
#include "cluster/node.hpp"
#include "common/assert.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/shutdown.hpp"
#include "obs/registry.hpp"
#include "obs/trace_writer.hpp"
#include "transport/checkpoint.hpp"
#include "transport/sim.hpp"

namespace rfd::transport {

namespace {

constexpr std::uint32_t kPayloadMagic = 0x4b414f53u;  // "SOAK"

std::uint64_t fnv1a_init() { return 0xcbf29ce484222325ull; }

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size,
                    std::uint64_t h) {
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

double wall_elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Bounds-checked varint read for received payloads. Unlike the engine's
/// DigestReader (which asserts - its payloads are trusted local memory),
/// a soak receiver sees bytes that crossed a real socket; a malformed
/// payload is dropped, never fatal.
bool safe_varint(const std::uint8_t*& p, const std::uint8_t* end,
                 std::uint32_t& out) {
  std::uint32_t value = 0;
  int shift = 0;
  while (p != end && shift < 35) {
    const std::uint8_t byte = *p++;
    value |= static_cast<std::uint32_t>(byte & 0x7fu)
             << static_cast<unsigned>(shift);
    if ((byte & 0x80u) == 0) {
      out = value;
      return true;
    }
    shift += 7;
  }
  return false;
}

class SoakRunner {
 public:
  explicit SoakRunner(const SoakConfig& config)
      : config_(config),
        max_nodes_(effective_max_nodes(config)),
        fingerprint_(soak_config_fingerprint(config)),
        faults_(config.scenario.sorted()) {
    build_transport();
    cluster::NodeParams node_params;
    node_params.detector = config_.detector;
    node_params.bootstrap_grace_ms = config_.bootstrap_grace_ms;
    node_params.hot_transmissions = config_.hot_transmissions;
    nodes_.reserve(static_cast<std::size_t>(max_nodes_));
    Rng base(mix_seed(config_.seed, 0x50a4d00ull));
    for (rt::NodeId i = 0; i < max_nodes_; ++i) {
      nodes_.emplace_back(i, max_nodes_, node_params);
      rngs_.push_back(base.split(static_cast<std::uint64_t>(i)));
    }
    topology_ = cluster::make_topology(config_.topology, max_nodes_);
    ever_active_.assign(static_cast<std::size_t>(max_nodes_), 0);
    truth_active_.assign(static_cast<std::size_t>(max_nodes_), 0);
    down_since_.assign(static_cast<std::size_t>(max_nodes_), -1.0);
    lying_.assign(static_cast<std::size_t>(max_nodes_), 0);
    lie_delta_.assign(static_cast<std::size_t>(max_nodes_), 0.0);
    lie_value_.assign(static_cast<std::size_t>(max_nodes_), 0.0);
  }

  static int effective_max_nodes(const SoakConfig& config) {
    int bound = std::max(config.max_nodes, config.n);
    for (const cluster::FaultEvent& e : config.scenario.events) {
      if (e.node >= 0) bound = std::max(bound, e.node + 1);
      for (const auto& group : e.groups) {
        for (rt::NodeId id : group) bound = std::max(bound, id + 1);
      }
    }
    return bound;
  }

  bool run(SoakReport& report, std::string& error) {
    const auto wall_start = std::chrono::steady_clock::now();
    RFD_REQUIRE_MSG(config_.n > 0 && config_.n <= max_nodes_,
                    "soak: n must be in [1, max_nodes]");
    RFD_REQUIRE_MSG(config_.tick_ms > 0.0, "soak: tick_ms must be > 0");
    RFD_REQUIRE_MSG(config_.scenario.validate().empty(),
                    "soak: malformed scenario timeline");
    if (config_.resume) {
      if (!restore(error)) return false;
      resumed_ = true;
    } else {
      seed_initial_membership();
    }
    open_trace();

    const std::int64_t total_ticks = static_cast<std::int64_t>(
        std::ceil(config_.duration_ms / config_.tick_ms));
    const std::int64_t start_tick = tick_;
    const bool checkpointing =
        !config_.checkpoint_path.empty() && config_.checkpoint_every_ms > 0.0;
    double next_checkpoint_ms =
        checkpointing
            ? static_cast<double>(start_tick) * config_.tick_ms +
                  config_.checkpoint_every_ms
            : std::numeric_limits<double>::infinity();

    std::int64_t ticks_run = 0;
    for (std::int64_t k = start_tick + 1; k <= total_ticks; ++k) {
      if (shutdown_requested()) {
        stopped_ = true;
        break;
      }
      const double now = static_cast<double>(k) * config_.tick_ms;
      if (!pace(k, start_tick, wall_start, now)) {
        stopped_ = true;
        break;
      }
      apply_due_faults(now);
      heartbeats(now);
      deliver(now);
      check(now, k);
      tick_ = k;
      ++ticks_run;
      if (trace_ != nullptr && config_.obs.snapshot_every_ticks > 0 &&
          k % config_.obs.snapshot_every_ticks == 0) {
        snapshot(now, k);
      }
      if (checkpointing && now >= next_checkpoint_ms) {
        if (!write_checkpoint_now(error)) return false;
        next_checkpoint_ms = now + config_.checkpoint_every_ms;
      }
    }

    if (!config_.checkpoint_path.empty() && ticks_run > 0) {
      // Final snapshot even without a cadence: a soak that exits
      // cleanly (or on a signal) always leaves a resumable state.
      if (!write_checkpoint_now(error)) return false;
    }
    finalize(report, ticks_run, wall_start);
    return true;
  }

 private:
  void build_transport() {
    std::unique_ptr<Transport> base;
    if (config_.backend == SoakBackend::kSim) {
      auto sim = std::make_unique<SimTransport>(
          max_nodes_, mix_seed(config_.seed, 0x7e7a115ull),
          config_.network);
      sim_ = sim.get();
      base = std::move(sim);
    } else {
      auto udp = std::make_unique<UdpTransport>(max_nodes_, config_.udp);
      udp_ = udp.get();
      base = std::move(udp);
    }
    if (config_.flaky) {
      auto flaky = std::make_unique<FlakyTransport>(
          std::move(base), max_nodes_, mix_seed(config_.seed, 0xf1a4bull),
          config_.flaky_params);
      flaky_ = flaky.get();
      base = std::move(flaky);
    }
    transport_ = std::move(base);
  }

  void seed_initial_membership() {
    for (rt::NodeId i = 0; i < max_nodes_; ++i) {
      nodes_[static_cast<std::size_t>(i)].set_active(i < config_.n);
    }
    for (rt::NodeId i = 0; i < config_.n; ++i) {
      ever_active_[static_cast<std::size_t>(i)] = 1;
      truth_active_[static_cast<std::size_t>(i)] = 1;
      for (rt::NodeId j = 0; j < config_.n; ++j) {
        nodes_[static_cast<std::size_t>(i)].learn_peer(j, 0.0);
      }
    }
  }

  void open_trace() {
    if (!config_.obs.trace_enabled()) return;
    trace_ = std::make_unique<obs::TraceWriter>(config_.obs);
    if (!trace_->ok()) {
      trace_.reset();
      return;
    }
    if (sim_ != nullptr) sim_->set_trace(trace_.get());
    if (udp_ != nullptr) udp_->set_trace(trace_.get());
    if (flaky_ != nullptr) flaky_->set_trace(trace_.get());
    topology_->set_trace(trace_.get(), nullptr);
    obs::JsonLine header;
    header.str("type", "run")
        .str("mode", "soak")
        .str("backend", transport_->name())
        .integer("n", config_.n)
        .integer("max_nodes", max_nodes_)
        .num("tick_ms", config_.tick_ms)
        .num("duration_ms", config_.duration_ms)
        .integer("seed", static_cast<std::int64_t>(config_.seed))
        .str("topology", topology_->name())
        .str("detector", rt::detector_kind_name(config_.detector.kind))
        .boolean("resume", resumed_)
        .integer("start_tick", tick_);
    trace_->write_line(header.finish());
  }

  /// UDP pacing: park in epoll (draining arrivals as they land) until
  /// this tick's wall deadline. Returns false when a shutdown signal
  /// arrived mid-wait. The sim backend runs the grid unpaced.
  bool pace(std::int64_t k, std::int64_t start_tick,
            std::chrono::steady_clock::time_point wall_start, double now) {
    if (udp_ == nullptr) return true;
    const double target = static_cast<double>(k - start_tick) *
                          config_.tick_ms * config_.time_scale;
    for (;;) {
      if (shutdown_requested()) return false;
      const double wall = wall_elapsed_ms(wall_start);
      if (wall >= target) return true;
      // Bounded slices keep signal response prompt on slow grids.
      udp_->wait_readable(std::min(target - wall, 50.0));
      transport_->poll(now, pending_);
    }
  }

  void apply_due_faults(double now) {
    while (fault_cursor_ < faults_.size() &&
           faults_[fault_cursor_].at_ms <= now) {
      apply_fault(faults_[fault_cursor_], now);
      ++fault_cursor_;
    }
  }

  std::vector<rt::NodeId> active_contacts() const {
    std::vector<rt::NodeId> contacts;
    for (rt::NodeId i = 0; i < max_nodes_; ++i) {
      if (truth_active_[static_cast<std::size_t>(i)] != 0) {
        contacts.push_back(i);
      }
    }
    return contacts;
  }

  void note_fault(const cluster::FaultEvent& event, double now) {
    if (trace_ != nullptr) trace_->emit(cluster::fault_record(event, now));
  }

  // Mirrors the engine's fault semantics (cluster/engine.cpp) so a .scn
  // timeline means the same thing under both drivers; network-shaped
  // faults go to the transport's verdict network when it has one.
  void apply_fault(const cluster::FaultEvent& event, double now) {
    using cluster::FaultKind;
    const std::size_t j = static_cast<std::size_t>(std::max<rt::NodeId>(
        0, event.node));
    switch (event.kind) {
      case FaultKind::kCrash:
      case FaultKind::kLeave:
        if (truth_active_[j] == 0) return;
        note_fault(event, now);
        truth_active_[j] = 0;
        down_since_[j] = now;
        nodes_[j].set_active(false);
        return;
      case FaultKind::kRecover:
        if (ever_active_[j] == 0 || truth_active_[j] != 0) return;
        note_fault(event, now);
        truth_active_[j] = 1;
        down_since_[j] = -1.0;
        // A restarted process lost its peer memory; reseed from the
        // currently live membership like a provisioning system would.
        nodes_[j].reset_peers(now, active_contacts());
        nodes_[j].set_active(true);
        return;
      case FaultKind::kJoin:
        if (ever_active_[j] != 0) return;
        note_fault(event, now);
        ever_active_[j] = 1;
        truth_active_[j] = 1;
        nodes_[j].reset_peers(now, active_contacts());
        nodes_[j].set_active(true);
        return;
      case FaultKind::kLieStart:
        note_fault(event, now);
        lying_[j] = 1;
        lie_delta_[j] = event.factor;
        lie_value_[j] = static_cast<double>(nodes_[j].own_counter());
        return;
      case FaultKind::kLieEnd:
        note_fault(event, now);
        lying_[j] = 0;
        return;
      case FaultKind::kPartition:
      case FaultKind::kHeal:
      case FaultKind::kStormStart:
      case FaultKind::kStormEnd:
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
      case FaultKind::kSlowStart:
      case FaultKind::kSlowEnd:
        break;
    }
    rt::Network* net = transport_->fault_network();
    if (net == nullptr) {
      if (!warned_no_fault_network_ && trace_ != nullptr) {
        trace_->log_line(LogLevel::kWarn,
                         "scenario has network faults but the transport "
                         "has no injection layer (run with --flaky); "
                         "skipping them");
      }
      warned_no_fault_network_ = true;
      return;
    }
    note_fault(event, now);
    switch (event.kind) {
      case FaultKind::kPartition:
        net->set_partition(event.groups);
        break;
      case FaultKind::kHeal:
        net->clear_partition();
        break;
      case FaultKind::kStormStart:
        net->set_storm(event.extra_delay_ms, event.delay_prob);
        break;
      case FaultKind::kStormEnd:
        net->clear_storm();
        break;
      case FaultKind::kLinkDown:
        net->add_link_block(event.groups[0], event.groups[1]);
        break;
      case FaultKind::kLinkUp:
        net->remove_link_block(event.groups[0], event.groups[1]);
        break;
      case FaultKind::kSlowStart:
        net->set_delay_factor(event.node, event.factor);
        break;
      case FaultKind::kSlowEnd:
        net->set_delay_factor(event.node, 1.0);
        break;
      default:
        break;
    }
  }

  void heartbeats(double now) {
    for (rt::NodeId i = 0; i < max_nodes_; ++i) {
      cluster::ClusterNode& node = nodes_[static_cast<std::size_t>(i)];
      if (!node.active()) continue;
      node.advance_own_counter();
      std::uint32_t advertised =
          static_cast<std::uint32_t>(node.own_counter());
      if (lying_[static_cast<std::size_t>(i)] != 0) {
        double& v = lie_value_[static_cast<std::size_t>(i)];
        v = std::clamp(
            v + lie_delta_[static_cast<std::size_t>(i)], 1.0,
            static_cast<double>(std::numeric_limits<std::int32_t>::max()));
        advertised = static_cast<std::uint32_t>(v);
      }
      targets_scratch_.clear();
      topology_->targets(node, rngs_[static_cast<std::size_t>(i)],
                         targets_scratch_);
      for (rt::NodeId target : targets_scratch_) {
        digest_scratch_.clear();
        topology_->digest(node, target, digest_scratch_);
        std::sort(digest_scratch_.begin(), digest_scratch_.end());
        payload_scratch_.clear();
        cluster::encode_digest(
            advertised, digest_scratch_,
            [&node](rt::NodeId id) {
              return static_cast<std::uint32_t>(node.counter(id));
            },
            payload_scratch_);
        transport_->send(i, target, payload_scratch_.data(),
                         payload_scratch_.size(), now);
        if (trace_ != nullptr) {
          obs::Record r;
          r.type = obs::RecordType::kHbSend;
          r.t = now;
          r.a = i;
          r.b = target;
          r.c = static_cast<std::int64_t>(digest_scratch_.size()) + 1;
          trace_->emit(r);
        }
      }
    }
  }

  void deliver(double now) {
    transport_->poll(now, pending_);
    for (const Delivery& d : pending_) {
      if (d.to < 0 || d.to >= max_nodes_) continue;
      cluster::ClusterNode& node = nodes_[static_cast<std::size_t>(d.to)];
      if (!node.active()) continue;  // crashed sockets still receive; drop
      const std::uint8_t* p = d.payload.data();
      const std::uint8_t* end = p + d.payload.size();
      std::uint32_t own = 0;
      std::uint32_t count = 0;
      if (!safe_varint(p, end, own) || !safe_varint(p, end, count) ||
          count > static_cast<std::uint32_t>(max_nodes_) * 2u) {
        continue;  // corrupt payload off the wire: drop, never crash
      }
      std::int64_t advances = 0;
      if (node.observe(d.from, own, d.at_ms).advanced) ++advances;
      rt::NodeId id = 0;
      bool ok = true;
      for (std::uint32_t e = 0; e < count; ++e) {
        std::uint32_t gap = 0;
        std::uint32_t counter = 0;
        if (!safe_varint(p, end, gap) || !safe_varint(p, end, counter)) {
          ok = false;
          break;
        }
        id += static_cast<rt::NodeId>(gap);
        if (id < 0 || id >= max_nodes_) {
          ok = false;
          break;
        }
        if (node.observe(id, counter, d.at_ms).advanced) ++advances;
      }
      if (!ok) continue;
      if (trace_ != nullptr) {
        obs::Record r;
        r.type = obs::RecordType::kHbRecv;
        r.t = d.at_ms;
        r.a = d.to;
        r.b = d.from;
        r.c = static_cast<std::int64_t>(count) + 1;
        r.x = static_cast<double>(advances);
        trace_->emit(r);
      }
    }
    pending_.clear();
  }

  void check(double now, std::int64_t tick) {
    (void)tick;
    for (rt::NodeId i = 0; i < max_nodes_; ++i) {
      cluster::ClusterNode& node = nodes_[static_cast<std::size_t>(i)];
      if (!node.active()) continue;
      for (rt::NodeId j = 0; j < max_nodes_; ++j) {
        if (j == i || !node.knows(j)) continue;
        const bool verdict = node.suspects(j, now);
        if (verdict == node.is_suspected(j)) continue;
        node.set_suspected(j, verdict, verdict ? now : -1.0);
        const std::size_t pj = static_cast<std::size_t>(j);
        if (verdict) {
          ++raises_;
          if (truth_active_[pj] != 0) {
            ++false_suspicions_;
          } else if (down_since_[pj] >= 0.0) {
            detection_samples_.push_back(now - down_since_[pj]);
          }
          if (trace_ != nullptr) {
            obs::Record r;
            r.type = obs::RecordType::kSuspect;
            r.t = now;
            r.a = i;
            r.b = j;
            r.c = truth_active_[pj] != 0 ? 0 : 1;
            trace_->emit(r);
          }
        } else {
          ++clears_;
          if (trace_ != nullptr) {
            obs::Record r;
            r.type = obs::RecordType::kClear;
            r.t = now;
            r.a = i;
            r.b = j;
            trace_->emit(r);
          }
        }
      }
    }
  }

  void snapshot(double now, std::int64_t tick) {
    const TransportCounters c = transport_->counters();
    registry_.gauge("transport.sent").set(static_cast<double>(c.sent));
    registry_.gauge("transport.delivered")
        .set(static_cast<double>(c.delivered));
    registry_.gauge("transport.dropped").set(static_cast<double>(c.dropped));
    registry_.gauge("transport.duplicated")
        .set(static_cast<double>(c.duplicated));
    registry_.gauge("transport.queue_drops")
        .set(static_cast<double>(c.queue_drops));
    registry_.gauge("transport.retries").set(static_cast<double>(c.retries));
    registry_.gauge("transport.sock_errors")
        .set(static_cast<double>(c.sock_errors));
    registry_.gauge("soak.raises").set(static_cast<double>(raises_));
    registry_.gauge("soak.clears").set(static_cast<double>(clears_));
    registry_.gauge("soak.false_suspicions")
        .set(static_cast<double>(false_suspicions_));
    registry_.gauge("soak.checkpoints")
        .set(static_cast<double>(checkpoints_written_));
    registry_.snapshot(*trace_, now, tick);
  }

  void serialize(std::vector<std::uint8_t>& out) const {
    ByteWriter w(out);
    w.u32(kPayloadMagic);
    w.i32(config_.n);
    w.i32(max_nodes_);
    std::vector<std::uint8_t> node_bytes;
    for (const cluster::ClusterNode& node : nodes_) {
      node_bytes.clear();
      node.save_state(node_bytes);
      w.u32(static_cast<std::uint32_t>(node_bytes.size()));
      w.bytes(node_bytes.data(), node_bytes.size());
    }
    for (const Rng& rng : rngs_) {
      for (std::uint64_t word : rng.save_state()) w.u64(word);
    }
    for (int i = 0; i < max_nodes_; ++i) {
      const std::size_t p = static_cast<std::size_t>(i);
      w.u8(static_cast<std::uint8_t>(ever_active_[p]));
      w.u8(static_cast<std::uint8_t>(truth_active_[p]));
      w.f64(down_since_[p]);
      w.u8(static_cast<std::uint8_t>(lying_[p]));
      w.f64(lie_delta_[p]);
      w.f64(lie_value_[p]);
    }
    w.u32(static_cast<std::uint32_t>(fault_cursor_));
    w.i64(raises_);
    w.i64(clears_);
    w.i64(false_suspicions_);
    w.u32(static_cast<std::uint32_t>(detection_samples_.size()));
    for (double s : detection_samples_) w.f64(s);
    std::vector<std::uint8_t> transport_bytes;
    const bool saved = transport_->save_state(transport_bytes);
    w.u8(saved ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(transport_bytes.size()));
    w.bytes(transport_bytes.data(), transport_bytes.size());
  }

  bool write_checkpoint_now(std::string& error) {
    if (config_.checkpoint_path.empty()) return true;
    CheckpointData data;
    data.config_fingerprint = fingerprint_;
    data.tick = tick_;
    data.now_ms = static_cast<double>(tick_) * config_.tick_ms;
    serialize(data.payload);
    if (!write_checkpoint(config_.checkpoint_path, data, error)) {
      return false;
    }
    ++checkpoints_written_;
    return true;
  }

  bool restore(std::string& error) {
    CheckpointData data;
    if (!read_checkpoint(config_.checkpoint_path, fingerprint_, data,
                         error)) {
      return false;
    }
    ByteReader r(data.payload.data(), data.payload.size());
    if (r.u32() != kPayloadMagic) {
      error = "checkpoint payload is not a soak snapshot";
      return false;
    }
    if (r.i32() != config_.n || r.i32() != max_nodes_) {
      error = "checkpoint node counts do not match this configuration";
      return false;
    }
    for (cluster::ClusterNode& node : nodes_) {
      const std::uint32_t len = r.u32();
      if (!r.ok() || len > r.remaining()) {
        error = "checkpoint truncated in node state";
        return false;
      }
      std::vector<std::uint8_t> node_bytes(len);
      if (len != 0 && !r.bytes(node_bytes.data(), len)) {
        error = "checkpoint truncated in node state";
        return false;
      }
      std::size_t consumed = 0;
      if (!node.restore_state(node_bytes.data(), node_bytes.size(),
                              consumed) ||
          consumed != node_bytes.size()) {
        error = "checkpoint node state is inconsistent";
        return false;
      }
    }
    for (Rng& rng : rngs_) {
      std::array<std::uint64_t, 5> state{};
      for (std::uint64_t& word : state) word = r.u64();
      rng.restore_state(state);
    }
    for (int i = 0; i < max_nodes_; ++i) {
      const std::size_t p = static_cast<std::size_t>(i);
      ever_active_[p] = static_cast<char>(r.u8());
      truth_active_[p] = static_cast<char>(r.u8());
      down_since_[p] = r.f64();
      lying_[p] = static_cast<char>(r.u8());
      lie_delta_[p] = r.f64();
      lie_value_[p] = r.f64();
    }
    const std::uint32_t cursor = r.u32();
    raises_ = r.i64();
    clears_ = r.i64();
    false_suspicions_ = r.i64();
    const std::uint32_t sample_count = r.u32();
    if (!r.ok() || cursor > faults_.size() ||
        sample_count > (1u << 24)) {
      error = "checkpoint bookkeeping is inconsistent";
      return false;
    }
    fault_cursor_ = cursor;
    detection_samples_.resize(sample_count);
    for (double& s : detection_samples_) s = r.f64();
    const bool transport_saved = r.u8() != 0;
    const std::uint32_t transport_len = r.u32();
    if (!r.ok() || transport_len > r.remaining()) {
      error = "checkpoint truncated in transport state";
      return false;
    }
    std::vector<std::uint8_t> transport_bytes(transport_len);
    if (transport_len != 0 &&
        !r.bytes(transport_bytes.data(), transport_len)) {
      error = "checkpoint truncated in transport state";
      return false;
    }
    if (!r.ok()) {
      error = "checkpoint payload truncated";
      return false;
    }
    if (transport_saved &&
        !transport_->restore_state(transport_bytes.data(),
                                   transport_bytes.size())) {
      error = "checkpoint transport state is inconsistent";
      return false;
    }
    // Re-apply the faults the saved run had already consumed that live
    // outside the checkpoint: network fault state (partitions, storms,
    // blocks, slow factors) is deliberately not serialized - replaying
    // the timeline prefix against the fresh verdict network rebuilds it.
    replay_network_faults(fault_cursor_);
    tick_ = data.tick;
    return true;
  }

  void replay_network_faults(std::size_t upto) {
    using cluster::FaultKind;
    rt::Network* net = transport_->fault_network();
    if (net == nullptr) return;
    for (std::size_t i = 0; i < upto; ++i) {
      const cluster::FaultEvent& event = faults_[i];
      switch (event.kind) {
        case FaultKind::kPartition:
          net->set_partition(event.groups);
          break;
        case FaultKind::kHeal:
          net->clear_partition();
          break;
        case FaultKind::kStormStart:
          net->set_storm(event.extra_delay_ms, event.delay_prob);
          break;
        case FaultKind::kStormEnd:
          net->clear_storm();
          break;
        case FaultKind::kLinkDown:
          net->add_link_block(event.groups[0], event.groups[1]);
          break;
        case FaultKind::kLinkUp:
          net->remove_link_block(event.groups[0], event.groups[1]);
          break;
        case FaultKind::kSlowStart:
          net->set_delay_factor(event.node, event.factor);
          break;
        case FaultKind::kSlowEnd:
          net->set_delay_factor(event.node, 1.0);
          break;
        default:
          break;
      }
    }
  }

  void finalize(SoakReport& report, std::int64_t ticks_run,
                std::chrono::steady_clock::time_point wall_start) {
    report.backend = soak_backend_name(config_.backend);
    if (config_.flaky) report.backend += "+flaky";
    report.n = config_.n;
    report.max_nodes = max_nodes_;
    report.sim_ms = static_cast<double>(tick_) * config_.tick_ms;
    report.ticks_run = ticks_run;
    report.transport = transport_->counters();
    report.raises = raises_;
    report.clears = clears_;
    report.false_suspicions = false_suspicions_;
    for (double s : detection_samples_) report.detection.add(s);
    report.missed = 0;
    report.final_agreement = true;
    for (rt::NodeId i = 0; i < max_nodes_; ++i) {
      if (truth_active_[static_cast<std::size_t>(i)] == 0) continue;
      const cluster::ClusterNode& node =
          nodes_[static_cast<std::size_t>(i)];
      for (rt::NodeId j = 0; j < max_nodes_; ++j) {
        if (j == i || ever_active_[static_cast<std::size_t>(j)] == 0) {
          continue;
        }
        const bool down = truth_active_[static_cast<std::size_t>(j)] == 0;
        const bool flagged = node.knows(j) && node.is_suspected(j);
        if (down && !flagged) {
          ++report.missed;
          report.final_agreement = false;
        } else if (!down && flagged) {
          report.final_agreement = false;
        }
      }
    }
    report.checkpoints_written = checkpoints_written_;
    report.resumed = resumed_;
    report.stopped_by_signal = stopped_;
    report.wall_ms = wall_elapsed_ms(wall_start);
    report.outcome_fingerprint = outcome_fingerprint(report);
    if (trace_ != nullptr) {
      obs::JsonLine footer;
      footer.str("type", "end")
          .num("t", report.sim_ms)
          .integer("ticks", tick_)
          .integer("raises", raises_)
          .integer("clears", clears_)
          .integer("false", false_suspicions_)
          .integer("missed", report.missed)
          .boolean("agreement", report.final_agreement)
          .boolean("signal", stopped_)
          .integer("checkpoints", checkpoints_written_);
      trace_->write_line(footer.finish());
      trace_->flush();
      report.trace_records = trace_->written_records();
      report.trace_dropped = trace_->dropped();
      trace_->close();
    }
  }

  std::uint64_t outcome_fingerprint(const SoakReport& report) const {
    std::vector<std::uint8_t> blob;
    ByteWriter w(blob);
    w.i64(tick_);
    w.i64(raises_);
    w.i64(clears_);
    w.i64(false_suspicions_);
    w.i64(report.missed);
    w.u8(report.final_agreement ? 1 : 0);
    w.i64(report.transport.sent);
    w.i64(report.transport.delivered);
    w.i64(report.transport.dropped);
    w.i64(report.transport.duplicated);
    for (double s : detection_samples_) w.f64(s);
    return fnv1a(blob.data(), blob.size(), fnv1a_init());
  }

  SoakConfig config_;
  int max_nodes_;
  std::uint64_t fingerprint_;
  std::vector<cluster::FaultEvent> faults_;
  std::size_t fault_cursor_ = 0;

  std::unique_ptr<Transport> transport_;
  SimTransport* sim_ = nullptr;
  UdpTransport* udp_ = nullptr;
  FlakyTransport* flaky_ = nullptr;

  std::vector<cluster::ClusterNode> nodes_;
  std::vector<Rng> rngs_;
  std::unique_ptr<cluster::Topology> topology_;
  std::vector<char> ever_active_;
  std::vector<char> truth_active_;
  std::vector<double> down_since_;
  std::vector<char> lying_;
  std::vector<double> lie_delta_;
  std::vector<double> lie_value_;

  std::int64_t tick_ = 0;  // last completed tick
  std::int64_t raises_ = 0;
  std::int64_t clears_ = 0;
  std::int64_t false_suspicions_ = 0;
  std::vector<double> detection_samples_;
  int checkpoints_written_ = 0;
  bool resumed_ = false;
  bool stopped_ = false;
  bool warned_no_fault_network_ = false;

  std::unique_ptr<obs::TraceWriter> trace_;
  obs::Registry registry_;

  std::vector<rt::NodeId> targets_scratch_;
  std::vector<rt::NodeId> digest_scratch_;
  std::vector<std::uint8_t> payload_scratch_;
  std::vector<Delivery> pending_;
};

}  // namespace

const char* soak_backend_name(SoakBackend backend) {
  return backend == SoakBackend::kSim ? "sim" : "udp";
}

std::uint64_t soak_config_fingerprint(const SoakConfig& config) {
  std::vector<std::uint8_t> blob;
  ByteWriter w(blob);
  w.u32(kPayloadMagic);
  w.u8(config.backend == SoakBackend::kSim ? 0 : 1);
  w.u8(config.flaky ? 1 : 0);
  w.i32(config.n);
  w.i32(SoakRunner::effective_max_nodes(config));
  w.f64(config.tick_ms);
  w.f64(config.bootstrap_grace_ms);
  w.i32(config.hot_transmissions);
  w.u64(config.seed);
  w.u8(static_cast<std::uint8_t>(config.topology.kind));
  w.i32(config.topology.ring_successors);
  w.i32(config.topology.gossip_fanout);
  w.f64(config.topology.gossip_resurrect_prob);
  w.i32(config.topology.digest_size);
  w.i32(config.topology.cluster_size);
  w.u8(static_cast<std::uint8_t>(config.detector.kind));
  w.f64(config.detector.fixed.timeout_ms);
  w.i32(config.detector.chen.window);
  w.f64(config.detector.chen.alpha_ms);
  w.f64(config.detector.chen.fallback_timeout_ms);
  w.i32(config.detector.phi.window);
  w.f64(config.detector.phi.threshold);
  w.f64(config.detector.phi.min_stddev_ms);
  w.f64(config.detector.phi.fallback_timeout_ms);
  auto put_network = [&w](const rt::NetworkParams& net) {
    w.f64(net.min_delay_ms);
    w.f64(net.jitter_mu);
    w.f64(net.jitter_sigma);
    w.f64(net.loss_prob);
    w.f64(net.gst_ms);
    w.f64(net.pre_gst_extra_ms);
    w.f64(net.pre_gst_chaos_prob);
  };
  put_network(config.network);
  put_network(config.flaky_params.network);
  w.f64(config.flaky_params.dup_prob);
  const std::vector<cluster::FaultEvent> sorted = config.scenario.sorted();
  w.u32(static_cast<std::uint32_t>(sorted.size()));
  for (const cluster::FaultEvent& e : sorted) {
    w.f64(e.at_ms);
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.i32(e.node);
    w.u32(static_cast<std::uint32_t>(e.groups.size()));
    for (const auto& group : e.groups) {
      w.u32(static_cast<std::uint32_t>(group.size()));
      for (rt::NodeId id : group) w.i32(id);
    }
    w.f64(e.extra_delay_ms);
    w.f64(e.delay_prob);
    w.f64(e.factor);
  }
  return fnv1a(blob.data(), blob.size(), fnv1a_init());
}

bool run_soak(const SoakConfig& config, SoakReport& report,
              std::string& error) {
  SoakRunner runner(config);
  return runner.run(report, error);
}

}  // namespace rfd::transport
