// UdpTransport: real non-blocking UDP sockets behind the Transport
// interface (Linux-only; epoll + recvmmsg/sendmmsg).
//
// Loopback deployment model: one process hosts all `max_nodes` node
// identities, each bound to 127.0.0.1:(base_port + id). Datagrams are
// framed with a 12-byte header (magic, from, to) so a receiver never
// trusts source ports, and ride a real kernel socket path - real
// syscalls, real buffer pressure, real drops - which is what the soak
// runs exercise that the simulator cannot.
//
// Mechanics:
//   - every socket is O_NONBLOCK and registered with one epoll instance;
//     poll() does a zero-timeout epoll_wait and drains ready sockets
//     with recvmmsg in batches;
//   - send() never blocks: frames enter a bounded queue; flushes go out
//     with sendmmsg grouped by source socket. EAGAIN/ENOBUFS arms an
//     exponential backoff (retry at a later poll, counted in
//     counters().retries); a full queue drops the oldest frame and
//     counts it in queue_drops - bounded memory beats unbounded latency;
//   - every socket-level error emits a reason-tagged "sock_err" trace
//     record (rate-limited by folding repeats) and bumps sock_errors.
//
// The epoll file descriptor doubles as the wall-clock timer driver: a
// driver that wants to sleep until the next heartbeat tick calls
// wait_readable(timeout), which parks in epoll_wait - waking early when
// datagrams arrive - instead of busy-spinning the poll loop.
#pragma once

#include <deque>

#include "obs/record.hpp"
#include "transport/transport.hpp"

namespace rfd::transport {

struct UdpParams {
  std::uint16_t base_port = 39000;
  /// Bounded send-queue capacity (frames); overflow drops the oldest.
  int send_queue_cap = 4096;
  /// recvmmsg/sendmmsg batch size.
  int batch = 64;
  /// Exponential backoff after EAGAIN/ENOBUFS: first retry after
  /// `backoff_ms`, doubling up to `backoff_max_ms`.
  double backoff_ms = 0.5;
  double backoff_max_ms = 32.0;
  /// SO_RCVBUF/SO_SNDBUF request per socket (0 = kernel default).
  int socket_buffer_bytes = 1 << 20;
};

class UdpTransport final : public Transport {
 public:
  /// Binds all sockets eagerly; aborts (RFD_REQUIRE) when a bind or the
  /// epoll setup fails - a soak run with half its sockets is not a run.
  UdpTransport(int max_nodes, UdpParams params);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  const char* name() const override { return "udp"; }
  void send(NodeId from, NodeId to, const std::uint8_t* data,
            std::size_t size, double now_ms) override;
  void poll(double now_ms, std::vector<Delivery>& out) override;
  TransportCounters counters() const override;

  /// Parks in epoll_wait for up to `timeout_ms` (clamped to >= 0) or
  /// until any socket becomes readable; returns true when it woke for
  /// readability. The wall-clock pacing loop uses this as its timer.
  bool wait_readable(double timeout_ms);

  /// Attaches the trace sink for "sock_err" records.
  void set_trace(obs::RecordSink* trace) { trace_ = trace; }

 private:
  struct PendingFrame {
    NodeId from;
    NodeId to;
    std::vector<std::uint8_t> frame;  // header + payload, wire-ready
  };

  void flush_sends(double now_ms);
  void drain_socket(int index, double now_ms, std::vector<Delivery>& out);
  void note_sock_error(NodeId node, const char* op, int err, double now_ms);

  UdpParams params_;
  int max_nodes_;
  int epoll_fd_ = -1;
  std::vector<int> fds_;  // fds_[i] = node i's socket
  std::deque<PendingFrame> send_queue_;
  double backoff_until_ms_ = -1.0;
  double backoff_cur_ms_ = 0.0;
  obs::RecordSink* trace_ = nullptr;
  TransportCounters counters_;
  // Folding rate limit for sock_err records: repeats of the same
  // (op, errno) accumulate and flush as one record with a count.
  const char* last_err_op_ = nullptr;
  int last_err_errno_ = 0;
  NodeId last_err_node_ = -1;
  std::int64_t folded_errors_ = 0;

  // recvmmsg scratch (sized once): batch headers, iovecs, buffers.
  std::vector<std::vector<std::uint8_t>> recv_bufs_;
};

}  // namespace rfd::transport
