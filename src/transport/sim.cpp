#include "transport/sim.hpp"

#include <limits>

#include "common/bytes.hpp"

namespace rfd::transport {

namespace {
// Checkpoint sub-payload tag: catches feeding another transport's bytes
// (or garbage) into restore_state before any field is interpreted.
constexpr std::uint32_t kSimStateMagic = 0x53494d54u;  // "SIMT"
}  // namespace

SimTransport::SimTransport(int max_nodes, std::uint64_t seed,
                           rt::NetworkParams params)
    : max_nodes_(max_nodes),
      net_(std::make_unique<rt::Network>(clock_, seed, params)) {
  RFD_REQUIRE(max_nodes > 0);
}

void SimTransport::advance_clock(double now_ms) {
  // run_until() on an empty queue just advances now() - the network's
  // GST/storm checks read it; nothing executes.
  if (now_ms > clock_.now()) clock_.run_until(now_ms);
}

void SimTransport::send(NodeId from, NodeId to, const std::uint8_t* data,
                        std::size_t size, double now_ms) {
  advance_clock(now_ms);
  const std::optional<double> delay = net_->route(from, to);
  if (!delay.has_value()) return;  // dropped; Network already accounted
  InFlight msg;
  msg.at_ms = now_ms + *delay;
  msg.seq = seq_++;
  msg.from = from;
  msg.to = to;
  msg.payload.assign(data, data + size);
  in_flight_.insert(std::move(msg));
}

void SimTransport::poll(double now_ms, std::vector<Delivery>& out) {
  advance_clock(now_ms);
  while (!in_flight_.empty() && in_flight_.begin()->at_ms <= now_ms) {
    // std::set nodes are immutable in place; extract to move the payload.
    auto node = in_flight_.extract(in_flight_.begin());
    InFlight& msg = node.value();
    Delivery d;
    d.at_ms = msg.at_ms;
    d.from = msg.from;
    d.to = msg.to;
    d.payload = std::move(msg.payload);
    out.push_back(std::move(d));
    ++delivered_;
  }
}

double SimTransport::next_delivery_at() const {
  if (in_flight_.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  return in_flight_.begin()->at_ms;
}

TransportCounters SimTransport::counters() const {
  TransportCounters c;
  c.sent = net_->sent();
  c.dropped = net_->dropped();
  c.delivered = delivered_;
  return c;
}

bool SimTransport::save_state(std::vector<std::uint8_t>& out) const {
  ByteWriter w(out);
  w.u32(kSimStateMagic);
  w.i32(max_nodes_);
  w.f64(clock_.now());
  w.u64(seq_);
  w.i64(delivered_);
  std::int64_t sent = 0, dropped = 0, part = 0, link = 0;
  net_->save_accounting(sent, dropped, part, link);
  w.i64(sent);
  w.i64(dropped);
  w.i64(part);
  w.i64(link);
  std::vector<std::array<std::uint64_t, 5>> streams;
  net_->save_rng_state(streams);
  w.u32(static_cast<std::uint32_t>(streams.size()));
  for (const auto& s : streams) {
    for (std::uint64_t word : s) w.u64(word);
  }
  w.u32(static_cast<std::uint32_t>(in_flight_.size()));
  for (const InFlight& msg : in_flight_) {
    w.f64(msg.at_ms);
    w.u64(msg.seq);
    w.i32(msg.from);
    w.i32(msg.to);
    w.u32(static_cast<std::uint32_t>(msg.payload.size()));
    w.bytes(msg.payload.data(), msg.payload.size());
  }
  return true;
}

bool SimTransport::restore_state(const std::uint8_t* data,
                                 std::size_t size) {
  ByteReader r(data, size);
  if (r.u32() != kSimStateMagic) return false;
  if (r.i32() != max_nodes_) return false;
  const double clock_now = r.f64();
  const std::uint64_t seq = r.u64();
  const std::int64_t delivered = r.i64();
  const std::int64_t sent = r.i64();
  const std::int64_t dropped = r.i64();
  const std::int64_t part = r.i64();
  const std::int64_t link = r.i64();
  const std::uint32_t stream_count = r.u32();
  if (!r.ok() || stream_count == 0 ||
      stream_count > static_cast<std::uint32_t>(max_nodes_) + 1) {
    return false;
  }
  std::vector<std::array<std::uint64_t, 5>> streams(stream_count);
  for (auto& s : streams) {
    for (std::uint64_t& word : s) word = r.u64();
  }
  const std::uint32_t flight_count = r.u32();
  if (!r.ok()) return false;
  std::set<InFlight> in_flight;
  for (std::uint32_t i = 0; i < flight_count; ++i) {
    InFlight msg;
    msg.at_ms = r.f64();
    msg.seq = r.u64();
    msg.from = r.i32();
    msg.to = r.i32();
    const std::uint32_t payload_size = r.u32();
    if (!r.ok() || payload_size > (1u << 24)) return false;
    msg.payload.resize(payload_size);
    if (payload_size != 0 &&
        !r.bytes(msg.payload.data(), payload_size)) {
      return false;
    }
    in_flight.insert(std::move(msg));
  }
  if (!r.ok()) return false;
  // All fields decoded; commit.
  if (clock_now > clock_.now()) clock_.run_until(clock_now);
  seq_ = seq;
  delivered_ = delivered;
  net_->restore_accounting(sent, dropped, part, link);
  net_->restore_rng_state(streams);
  in_flight_ = std::move(in_flight);
  return true;
}

}  // namespace rfd::transport
