#include "transport/udp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/assert.hpp"

namespace rfd::transport {

namespace {

constexpr std::uint32_t kFrameMagic = 0x52464448u;  // "RFDH"
constexpr std::size_t kHeaderBytes = 12;            // magic + from + to
constexpr std::size_t kMaxDatagram = 2048;          // digests are small

void put_header(std::uint8_t* p, NodeId from, NodeId to) {
  const std::uint32_t fields[3] = {kFrameMagic,
                                   static_cast<std::uint32_t>(from),
                                   static_cast<std::uint32_t>(to)};
  std::memcpy(p, fields, kHeaderBytes);
}

bool read_header(const std::uint8_t* p, std::size_t size, NodeId& from,
                 NodeId& to) {
  if (size < kHeaderBytes) return false;
  std::uint32_t fields[3];
  std::memcpy(fields, p, kHeaderBytes);
  if (fields[0] != kFrameMagic) return false;
  from = static_cast<NodeId>(fields[1]);
  to = static_cast<NodeId>(fields[2]);
  return true;
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

UdpTransport::UdpTransport(int max_nodes, UdpParams params)
    : params_(params), max_nodes_(max_nodes) {
  RFD_REQUIRE(max_nodes > 0 && max_nodes < 4096);
  RFD_REQUIRE(params.send_queue_cap > 0);
  RFD_REQUIRE(params.batch > 0 && params.batch <= 1024);
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  RFD_REQUIRE_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  fds_.resize(static_cast<std::size_t>(max_nodes), -1);
  for (int i = 0; i < max_nodes; ++i) {
    const int fd = socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
    RFD_REQUIRE_MSG(fd >= 0, "socket() failed");
    if (params_.socket_buffer_bytes > 0) {
      // Best effort; the kernel clamps to its limits.
      setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &params_.socket_buffer_bytes,
                 sizeof(int));
      setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &params_.socket_buffer_bytes,
                 sizeof(int));
    }
    sockaddr_in addr = loopback_addr(
        static_cast<std::uint16_t>(params_.base_port + i));
    RFD_REQUIRE_MSG(
        bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
        "bind() failed - is the base port range free?");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = static_cast<std::uint32_t>(i);
    RFD_REQUIRE_MSG(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                    "epoll_ctl(ADD) failed");
    fds_[static_cast<std::size_t>(i)] = fd;
  }
  recv_bufs_.resize(static_cast<std::size_t>(params_.batch));
  for (auto& buf : recv_bufs_) buf.resize(kMaxDatagram);
}

UdpTransport::~UdpTransport() {
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

void UdpTransport::note_sock_error(NodeId node, const char* op, int err,
                                   double now_ms) {
  ++counters_.sock_errors;
  if (trace_ == nullptr) return;
  if (op == last_err_op_ && err == last_err_errno_ &&
      node == last_err_node_) {
    // Fold the repeat; it flushes with a count when the error changes.
    ++folded_errors_;
    return;
  }
  if (folded_errors_ > 0) {
    obs::Record flush;
    flush.t = now_ms;
    flush.type = obs::RecordType::kSockErr;
    flush.a = last_err_node_;
    flush.c = last_err_errno_;
    flush.s = last_err_op_;
    flush.x = static_cast<double>(folded_errors_);
    trace_->emit(flush);
  }
  last_err_op_ = op;
  last_err_errno_ = err;
  last_err_node_ = node;
  folded_errors_ = 1;
  obs::Record r;
  r.t = now_ms;
  r.type = obs::RecordType::kSockErr;
  r.a = node;
  r.c = err;
  r.s = op;
  r.x = 1.0;
  trace_->emit(r);
  folded_errors_ = 0;
}

void UdpTransport::send(NodeId from, NodeId to, const std::uint8_t* data,
                        std::size_t size, double now_ms) {
  if (from < 0 || from >= max_nodes_ || to < 0 || to >= max_nodes_) return;
  RFD_REQUIRE_MSG(size + kHeaderBytes <= kMaxDatagram,
                  "payload exceeds the transport's datagram bound");
  if (static_cast<int>(send_queue_.size()) >= params_.send_queue_cap) {
    // Bounded queue: shed the oldest frame (it is the stalest heartbeat
    // - the protocol tolerates loss, not unbounded queueing delay).
    send_queue_.pop_front();
    ++counters_.queue_drops;
  }
  PendingFrame f;
  f.from = from;
  f.to = to;
  f.frame.resize(kHeaderBytes + size);
  put_header(f.frame.data(), from, to);
  if (size != 0) std::memcpy(f.frame.data() + kHeaderBytes, data, size);
  send_queue_.push_back(std::move(f));
  ++counters_.sent;
  flush_sends(now_ms);
}

void UdpTransport::flush_sends(double now_ms) {
  if (send_queue_.empty()) return;
  if (backoff_until_ms_ >= 0.0 && now_ms < backoff_until_ms_) return;
  while (!send_queue_.empty()) {
    // Group a sendmmsg batch by source socket: frames from one sender
    // go out in one syscall. The queue is FIFO per sender, preserving
    // the kernel-visible send order.
    const NodeId from = send_queue_.front().from;
    const int fd = fds_[static_cast<std::size_t>(from)];
    const std::size_t batch =
        std::min<std::size_t>(send_queue_.size(),
                              static_cast<std::size_t>(params_.batch));
    std::vector<mmsghdr> msgs;
    std::vector<iovec> iovs;
    std::vector<sockaddr_in> addrs;
    msgs.reserve(batch);
    iovs.reserve(batch);
    addrs.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      PendingFrame& f = send_queue_[i];
      if (f.from != from) break;
      addrs.push_back(loopback_addr(
          static_cast<std::uint16_t>(params_.base_port + f.to)));
      iovec iov{};
      iov.iov_base = f.frame.data();
      iov.iov_len = f.frame.size();
      iovs.push_back(iov);
      mmsghdr m{};
      m.msg_hdr.msg_name = &addrs.back();
      m.msg_hdr.msg_namelen = sizeof(sockaddr_in);
      m.msg_hdr.msg_iov = &iovs.back();
      m.msg_hdr.msg_iovlen = 1;
      msgs.push_back(m);
    }
    const int n = static_cast<int>(
        sendmmsg(fd, msgs.data(), static_cast<unsigned>(msgs.size()), 0));
    if (n < 0) {
      const int err = errno;
      if (err == EAGAIN || err == EWOULDBLOCK || err == ENOBUFS) {
        // Kernel buffer pressure: arm/extend the exponential backoff
        // and retry at a later poll - never busy-loop on a full buffer.
        ++counters_.retries;
        backoff_cur_ms_ = backoff_cur_ms_ <= 0.0
                              ? params_.backoff_ms
                              : std::min(backoff_cur_ms_ * 2.0,
                                         params_.backoff_max_ms);
        backoff_until_ms_ = now_ms + backoff_cur_ms_;
        note_sock_error(from, "sendmmsg", err, now_ms);
        return;
      }
      // Hard error (e.g. EPERM from a firewall): drop this sender's
      // head frame so the queue keeps moving, and record why.
      note_sock_error(from, "sendmmsg", err, now_ms);
      send_queue_.pop_front();
      ++counters_.queue_drops;
      continue;
    }
    send_queue_.erase(send_queue_.begin(), send_queue_.begin() + n);
    backoff_until_ms_ = -1.0;
    backoff_cur_ms_ = 0.0;
    if (static_cast<std::size_t>(n) < msgs.size()) {
      // Partial batch: the kernel accepted a prefix; try again next
      // poll rather than spinning.
      return;
    }
  }
}

void UdpTransport::drain_socket(int index, double now_ms,
                                std::vector<Delivery>& out) {
  const int fd = fds_[static_cast<std::size_t>(index)];
  const std::size_t batch = recv_bufs_.size();
  std::vector<mmsghdr> msgs(batch);
  std::vector<iovec> iovs(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    iovs[i].iov_base = recv_bufs_[i].data();
    iovs[i].iov_len = recv_bufs_[i].size();
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
  }
  for (;;) {
    const int n = static_cast<int>(
        recvmmsg(fd, msgs.data(), static_cast<unsigned>(batch), 0, nullptr));
    if (n < 0) {
      const int err = errno;
      if (err != EAGAIN && err != EWOULDBLOCK) {
        note_sock_error(static_cast<NodeId>(index), "recvmmsg", err, now_ms);
      }
      return;
    }
    for (int i = 0; i < n; ++i) {
      const std::size_t len = msgs[static_cast<std::size_t>(i)].msg_len;
      const std::uint8_t* frame = recv_bufs_[static_cast<std::size_t>(i)]
                                      .data();
      NodeId from = -1;
      NodeId to = -1;
      if (!read_header(frame, len, from, to) || from < 0 ||
          from >= max_nodes_ || to != static_cast<NodeId>(index)) {
        // Stray or corrupt datagram on our port range; count and drop.
        note_sock_error(static_cast<NodeId>(index), "frame", EBADMSG,
                        now_ms);
        continue;
      }
      Delivery d;
      d.at_ms = now_ms;
      d.from = from;
      d.to = to;
      d.payload.assign(frame + kHeaderBytes, frame + len);
      out.push_back(std::move(d));
      ++counters_.delivered;
    }
    if (static_cast<std::size_t>(n) < batch) return;  // drained
  }
}

void UdpTransport::poll(double now_ms, std::vector<Delivery>& out) {
  flush_sends(now_ms);
  epoll_event events[64];
  for (;;) {
    const int n = epoll_wait(epoll_fd_, events, 64, 0);
    if (n < 0) {
      if (errno != EINTR) {
        note_sock_error(-1, "epoll_wait", errno, now_ms);
      }
      return;
    }
    for (int i = 0; i < n; ++i) {
      drain_socket(static_cast<int>(events[i].data.u32), now_ms, out);
    }
    if (n < 64) return;
  }
}

bool UdpTransport::wait_readable(double timeout_ms) {
  epoll_event ev;
  const int timeout =
      timeout_ms <= 0.0 ? 0 : static_cast<int>(timeout_ms + 0.999);
  const int n = epoll_wait(epoll_fd_, &ev, 1, timeout);
  return n > 0;
}

TransportCounters UdpTransport::counters() const { return counters_; }

}  // namespace rfd::transport
