// Byzantine-ish wrong heartbeats (kLieStart/kLieEnd): a lying-but-alive
// node may be *accused* while its advertised counter regresses or its
// peers' high-water marks overshoot, but it must never end the run
// suspected - the honest counter keeps advancing underneath and has to
// refute the suspicion once the lie stops. Also pins the shard
// determinism of the lie path (advertised-counter state is owner-shard
// only) and the self-healing timing argument for both lie polarities.
#include <gtest/gtest.h>

#include "cluster/engine.hpp"
#include "cluster/scenario_dsl.hpp"
#include "scenario_test_util.hpp"

namespace rfd::cluster {
namespace {

using testutil::load_doc;
using testutil::report_fingerprint;
using testutil::scenario_cluster_config;

TEST(Byzantine, LyingButAliveNodesAreAccusedButNeverConvicted) {
  const ScenarioDoc doc = load_doc("byzantine_counters.scn");
  ASSERT_FALSE(doc.scenario.events.empty());
  // A tuned fabric (the E11 gossip scaling cell's shape): the reference
  // golden config deliberately runs Chen too tight so its traces are
  // rich in flaps, which would drown the conviction assertion here.
  ClusterConfig config;
  config.n = doc.n;
  config.max_nodes = doc.max_nodes;
  config.topology.kind = TopologyKind::kGossip;
  config.topology.digest_size = 32;
  config.detector.kind = rt::DetectorKind::kFixed;
  config.detector.fixed.timeout_ms = 1'500.0;
  config.bootstrap_grace_ms = 1'500.0;
  config.heartbeat_interval_ms = 100.0;
  config.check_interval_ms = 100.0;
  config.duration_ms = doc.duration_ms;
  config.scenario = doc.scenario;
  const ClusterReport r = run_cluster(config, 20020623u);
  // The lies must be noticed (a regressing advertisement looks exactly
  // like a stall, so suspicions are raised)...
  EXPECT_GT(r.false_suspicions, 0) << "the lie was never even suspected";
  EXPECT_GT(r.suspicion_clears, 0);
  // ...but every live node - including both liars - must be unsuspected
  // by the end: final agreement means the live membership's suspect sets
  // equal the true crashed set ({19} here), so a permanently-suspected
  // liar would fail this.
  EXPECT_TRUE(r.final_agreement)
      << "a lying-but-alive node stayed suspected";
  // The genuine crash is still detected by everyone.
  EXPECT_EQ(r.missed_detections, 0);
  EXPECT_GT(r.detection_latency_ms.count(), 0);
}

TEST(Byzantine, LieTimelineIsShardCountInvariant) {
  const ScenarioDoc doc = load_doc("byzantine_counters.scn");
  ClusterConfig config = scenario_cluster_config(doc);
  config.shards = 1;
  const std::string base = report_fingerprint(run_cluster(config, 7u));
  for (const int shards : {2, 4}) {
    config.shards = shards;
    EXPECT_EQ(report_fingerprint(run_cluster(config, 7u)), base)
        << "shards=" << shards;
  }
}

TEST(Byzantine, JumpAheadLieHealsAfterCatchUp) {
  // A pure jump-ahead lie: peers' high-water marks run ~ delta x
  // intervals ahead, so after lie_end the liar looks stalled until its
  // true counter catches up - a bounded window, after which the cluster
  // must re-converge on an empty suspect set.
  ClusterConfig config;
  config.n = 16;
  config.max_nodes = 16;
  config.topology.kind = TopologyKind::kGossip;
  config.topology.digest_size = 8;
  config.detector.kind = rt::DetectorKind::kChen;
  config.detector.chen.alpha_ms = 400.0;
  config.heartbeat_interval_ms = 100.0;
  config.check_interval_ms = 100.0;
  config.duration_ms = 20'000.0;
  config.scenario.lie(4'000.0, 3, 5.0).lie_end(6'000.0, 3);
  const ClusterReport r = run_cluster(config, 99u);
  EXPECT_TRUE(r.final_agreement) << "jump-ahead liar never healed";
  EXPECT_EQ(r.missed_detections, 0);
}

TEST(Byzantine, RegressLieIsRefutedImmediatelyAfterLieEnd) {
  ClusterConfig config;
  config.n = 16;
  config.max_nodes = 16;
  config.topology.kind = TopologyKind::kGossip;
  config.topology.digest_size = 8;
  config.detector.kind = rt::DetectorKind::kChen;
  config.detector.chen.alpha_ms = 400.0;
  config.heartbeat_interval_ms = 100.0;
  config.check_interval_ms = 100.0;
  config.duration_ms = 16'000.0;
  config.scenario.lie(4'000.0, 3, -3.0).lie_end(10'000.0, 3);
  const ClusterReport r = run_cluster(config, 99u);
  // Six seconds of regressing advertisement is far beyond the Chen
  // timeout, so the liar is suspected while lying...
  EXPECT_GT(r.false_suspicions, 0);
  // ...and the first honest gossip after lie_end carries a counter far
  // above every high-water mark, clearing it well before the run ends.
  EXPECT_TRUE(r.final_agreement) << "regressing liar never refuted";
}

}  // namespace
}  // namespace rfd::cluster
