// Golden-trace conformance: every file in the checked-in scenarios/
// library runs under a fixed reference configuration and seed, and the
// resulting JSONL trace must hash to the digest pinned in
// scenarios/GOLDEN.txt. This freezes the full observable behavior of the
// engine - event order, fault application, trace formatting - per
// scenario; any engine change that moves a single trace byte fails here
// and must consciously re-pin (the test prints a fresh table to paste).
//
// The digests also gate the scenario corpus itself: a .scn file that is
// added without a GOLDEN.txt row, or a row whose file is gone, fails.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "scenario_test_util.hpp"

namespace rfd::cluster {
namespace {

using testutil::fnv1a_hex;
using testutil::load_doc;
using testutil::read_file;
using testutil::scenario_cluster_config;
using testutil::scenario_dir;

constexpr std::uint64_t kGoldenSeed = 20020623;  // DSN 2002

/// GOLDEN.txt rows: `<digest-hex> <file>` per line, `#` comments.
std::map<std::string, std::string> load_golden() {
  std::map<std::string, std::string> pinned;
  std::istringstream in(read_file(scenario_dir() + "/GOLDEN.txt"));
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string digest, file;
    if (fields >> digest >> file) pinned[file] = digest;
  }
  return pinned;
}

std::string run_digest(const std::string& file) {
  const ScenarioDoc doc = load_doc(file);
  ClusterConfig config = scenario_cluster_config(doc);
  const std::string path =
      ::testing::TempDir() + "/rfd_golden_" + file + ".jsonl";
  config.obs.trace_path = path;
  config.obs.snapshot_every_ticks = 10;
  const ClusterReport report = run_cluster(config, kGoldenSeed);
  EXPECT_EQ(report.trace_dropped, 0) << file;
  const std::string trace = read_file(path);
  std::remove(path.c_str());
  EXPECT_FALSE(trace.empty()) << file;
  return fnv1a_hex(trace);
}

TEST(ScenarioGolden, EveryScenarioFileMatchesItsPinnedTraceDigest) {
  const std::map<std::string, std::string> pinned = load_golden();
  ASSERT_GE(pinned.size(), 8u)
      << "scenarios/GOLDEN.txt is missing or nearly empty";

  std::map<std::string, std::string> fresh;
  for (const auto& entry :
       std::filesystem::directory_iterator(scenario_dir())) {
    const std::filesystem::path& p = entry.path();
    if (p.extension() != ".scn") continue;
    fresh[p.filename().string()] = run_digest(p.filename().string());
  }
  ASSERT_GE(fresh.size(), 8u);

  bool match = fresh.size() == pinned.size();
  for (const auto& [file, digest] : fresh) {
    const auto it = pinned.find(file);
    if (it == pinned.end()) {
      ADD_FAILURE() << file << " has no pinned digest in GOLDEN.txt";
      match = false;
    } else if (it->second != digest) {
      ADD_FAILURE() << file << ": trace digest " << digest
                    << " != pinned " << it->second;
      match = false;
    }
  }
  for (const auto& [file, digest] : pinned) {
    if (fresh.find(file) == fresh.end()) {
      ADD_FAILURE() << "GOLDEN.txt pins " << file
                    << " but scenarios/ has no such file";
      match = false;
    }
  }
  if (!match) {
    // Paste-ready re-pin table - only after verifying the behavior
    // change behind the new digests is intentional.
    std::ostringstream table;
    for (const auto& [file, digest] : fresh) {
      table << digest << " " << file << "\n";
    }
    ADD_FAILURE() << "fresh digest table for scenarios/GOLDEN.txt:\n"
                  << table.str();
  }
}

}  // namespace
}  // namespace rfd::cluster
