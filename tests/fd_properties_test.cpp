// Class-property tests for the detector zoo: each oracle must satisfy the
// axioms of its class (and *fail* the axioms of the stronger classes that
// separate it) across a parameterized sweep of failure patterns and seeds.
#include <gtest/gtest.h>

#include "fd/eventually_perfect.hpp"
#include "fd/eventually_strong.hpp"
#include "fd/history.hpp"
#include "fd/marabout.hpp"
#include "fd/partially_perfect.hpp"
#include "fd/perfect.hpp"
#include "fd/properties.hpp"
#include "fd/registry.hpp"
#include "fd/scribe.hpp"
#include "model/environment.hpp"

namespace rfd::fd {
namespace {

constexpr Tick kHorizon = 240;
constexpr Tick kSuffix = 40;

std::vector<model::FailurePattern> test_patterns(ProcessId n) {
  model::PatternSweep sweep(n, 0xabc);
  sweep.with_all_correct()
      .with_single_crashes({0, 30, 90})
      .with_cascades(n - 1, 20, 15)
      .with_all_but_one(60)
      .with_random(8, 0, n - 1, 150);
  return sweep.patterns();
}

struct Case {
  std::string detector;
  std::size_t pattern_index;
  std::uint64_t seed;
};

class DetectorAxioms : public ::testing::TestWithParam<Case> {};

TEST_P(DetectorAxioms, SatisfiesItsClass) {
  const Case c = GetParam();
  const ProcessId n = 5;
  const auto patterns = test_patterns(n);
  ASSERT_LT(c.pattern_index, patterns.size());
  const auto& pattern = patterns[c.pattern_index];
  const DetectorSpec& spec = find_detector(c.detector);
  const auto oracle = spec.factory(pattern, c.seed);
  const History h = sample_history(*oracle, kHorizon);
  const Classification cls = classify(pattern, h, kSuffix);

  if (c.detector == "P" || c.detector == "Scribe") {
    EXPECT_TRUE(cls.perfect) << strong_completeness(pattern, h).detail
                             << strong_accuracy(pattern, h).detail;
    EXPECT_TRUE(cls.strong);
    EXPECT_TRUE(cls.eventually_perfect);
    EXPECT_TRUE(cls.eventually_strong);
  } else if (c.detector == "<>P") {
    EXPECT_TRUE(cls.eventually_perfect)
        << eventual_strong_accuracy(pattern, h, kSuffix).detail;
    EXPECT_TRUE(cls.eventually_strong);
  } else if (c.detector == "<>S") {
    EXPECT_TRUE(cls.eventually_strong)
        << eventual_weak_accuracy(pattern, h, kSuffix).detail;
  } else if (c.detector == "P<") {
    EXPECT_TRUE(cls.partially_perfect)
        << partial_completeness(pattern, h).detail
        << strong_accuracy(pattern, h).detail;
  } else if (c.detector == "Omega") {
    // The suspect-all-but-leader embedding of the leader oracle is <>S.
    EXPECT_TRUE(cls.eventually_strong)
        << eventual_weak_accuracy(pattern, h, kSuffix).detail;
    EXPECT_FALSE(cls.perfect);
  } else if (c.detector == "Marabout") {
    // M is Strong and Eventually Perfect (it suspects exactly the faulty
    // set from time zero).
    EXPECT_TRUE(cls.strong) << weak_accuracy(pattern, h).detail;
    EXPECT_TRUE(cls.eventually_perfect);
  } else if (c.detector == "S(cheat)") {
    EXPECT_TRUE(cls.strong) << strong_completeness(pattern, h).detail
                            << weak_accuracy(pattern, h).detail;
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const std::size_t pattern_count = test_patterns(5).size();
  for (const auto& spec : standard_detectors()) {
    for (std::size_t pi = 0; pi < pattern_count; ++pi) {
      for (std::uint64_t seed : {11u, 12u}) {
        cases.push_back({spec.name, pi, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Zoo, DetectorAxioms, ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           std::string name = info.param.detector + "_f" +
                                              std::to_string(
                                                  info.param.pattern_index) +
                                              "_s" +
                                              std::to_string(info.param.seed);
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) {
                               ch = '_';
                             }
                           }
                           return name;
                         });

// --- separations: the weaker classes genuinely are weaker -----------------

TEST(DetectorSeparations, EventuallyPerfectIsNotPerfect) {
  // Pre-convergence churn must produce at least one false suspicion on an
  // all-correct pattern for *some* seed.
  const auto pattern = model::all_correct(5);
  bool ever_false = false;
  for (std::uint64_t seed = 0; seed < 8 && !ever_false; ++seed) {
    EventuallyPerfectOracle oracle(pattern, seed);
    const History h = sample_history(oracle, kHorizon);
    ever_false = !strong_accuracy(pattern, h).ok;
  }
  EXPECT_TRUE(ever_false);
}

TEST(DetectorSeparations, EventuallyStrongIsNotEventuallyPerfect) {
  // <>S keeps falsely suspecting non-immune alive processes forever, so
  // eventual strong accuracy must fail for some seed even on long windows.
  const auto pattern = model::all_correct(5);
  bool esa_fails = false;
  for (std::uint64_t seed = 0; seed < 8 && !esa_fails; ++seed) {
    EventuallyStrongOracle oracle(pattern, seed);
    const History h = sample_history(oracle, 600);
    esa_fails = !eventual_strong_accuracy(pattern, h, kSuffix).ok;
  }
  EXPECT_TRUE(esa_fails);
}

TEST(DetectorSeparations, PartiallyPerfectIsNotComplete) {
  // If the largest-id process crashes, nobody ever suspects it: P< lacks
  // even weak completeness in general.
  const auto pattern = model::single_crash(5, 4, 30);
  PartiallyPerfectOracle oracle(pattern, 3);
  const History h = sample_history(oracle, kHorizon);
  EXPECT_FALSE(weak_completeness(pattern, h).ok);
  EXPECT_TRUE(strong_accuracy(pattern, h).ok);
}

TEST(DetectorSeparations, MaraboutViolatesStrongAccuracy) {
  // M suspects the faulty process long before it crashes: accurate about
  // the future, wrong about the past.
  const auto pattern = model::single_crash(5, 2, 100);
  MaraboutOracle oracle(pattern, 0);
  const History h = sample_history(oracle, kHorizon);
  EXPECT_FALSE(strong_accuracy(pattern, h).ok);
  EXPECT_TRUE(h.suspects(0, 2, 0));  // suspected at time zero
}

TEST(DetectorSeparations, CheatingStrongViolatesStrongAccuracy) {
  const auto pattern = model::all_correct(5);
  bool violates = false;
  for (std::uint64_t seed = 0; seed < 8 && !violates; ++seed) {
    const auto& spec = find_detector("S(cheat)");
    const auto oracle = spec.factory(pattern, seed);
    const History h = sample_history(*oracle, kHorizon);
    violates = !strong_accuracy(pattern, h).ok;
  }
  EXPECT_TRUE(violates);
}

TEST(PerfectOracle, DetectionDelayIsBounded) {
  const auto pattern = model::single_crash(4, 1, 50);
  PerfectParams params;
  params.min_detection_delay = 2;
  params.max_detection_delay = 6;
  PerfectOracle oracle(pattern, 7, params);
  const History h = sample_history(oracle, 120);
  for (ProcessId obs = 0; obs < 4; ++obs) {
    EXPECT_FALSE(h.suspects(obs, 1, 50 + 1));  // before min delay possible? min=2
    EXPECT_TRUE(h.suspects(obs, 1, 56));       // after max delay
    const Tick delay = oracle.detection_delay(obs, 1);
    EXPECT_GE(delay, 2);
    EXPECT_LE(delay, 6);
    EXPECT_EQ(h.suspects(obs, 1, 50 + delay), true);
    if (delay > 2) {
      EXPECT_FALSE(h.suspects(obs, 1, 50 + delay - 1));
    }
  }
}

TEST(ScribeOracle, OutputsThePastPattern) {
  const auto pattern = model::single_crash(4, 2, 40);
  ScribeOracle oracle(pattern, 0);
  const FdValue before = oracle.query(0, 39);
  const FdValue after = oracle.query(0, 41);
  EXPECT_FALSE(before.suspects.contains(2));
  EXPECT_TRUE(after.suspects.contains(2));
  const auto past_before = ScribeOracle::decode_past(before);
  const auto past_after = ScribeOracle::decode_past(after);
  EXPECT_EQ(past_before[2], kNever);
  EXPECT_EQ(past_after[2], 40);
}

TEST(HistoryBasics, StableSuspicionFrom) {
  const auto pattern = model::single_crash(3, 0, 10);
  PerfectParams params;
  params.min_detection_delay = 0;
  params.max_detection_delay = 0;
  PerfectOracle oracle(pattern, 1, params);
  const History h = sample_history(oracle, 50);
  EXPECT_EQ(h.stable_suspicion_from(1, 0), 10);
  EXPECT_EQ(h.stable_suspicion_from(1, 2), kNever);
}

TEST(Classification, ToStringListsClasses) {
  Classification c;
  c.perfect = true;
  c.strong = true;
  EXPECT_EQ(c.to_string(), "P,S");
  EXPECT_EQ(Classification{}.to_string(), "-");
}

}  // namespace
}  // namespace rfd::fd
