// Scenario DSL: parse/serialize round-trips, compound expansion, and
// the error paths - every diagnostic must carry the exact line/column
// of the offending token, including cross-statement discipline failures
// (unmatched link_up/storm_off/slow_end) attributed through
// Scenario::check()'s event index. Also the timeline-ordering
// regression: builders may append events in any time order, the engine
// consumes the stable-sorted timeline, and a genuinely malformed
// timeline is rejected before the run starts instead of silently
// corrupting network state.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/engine.hpp"
#include "cluster/scenario_dsl.hpp"
#include "scenario_test_util.hpp"

namespace rfd::cluster {
namespace {

ScenarioDoc parse_ok(const std::string& text, DslContext ctx = {}) {
  ScenarioDoc doc;
  DslError err;
  EXPECT_TRUE(parse_scenario(text, ctx, doc, err)) << err.to_string();
  return doc;
}

DslError parse_fail(const std::string& text, DslContext ctx = {}) {
  ScenarioDoc doc;
  DslError err;
  EXPECT_FALSE(parse_scenario(text, ctx, doc, err)) << "expected failure";
  return err;
}

TEST(ScenarioDsl, ParsesHeadersAndEveryPrimitive) {
  const ScenarioDoc doc = parse_ok(
      "# comment line\n"
      "name \"every primitive\"\n"
      "config n=16 max_nodes=20 duration=30000 cluster=4\n"
      "\n"
      "join      at=1000 node=16\n"
      "leave     at=2000 node=3\n"
      "crash     at=3000 node=0-1,7\n"
      "recover   at=4000 node=0-1,7\n"
      "partition at=5000 groups=0-7|8-15\n"
      "heal      at=6000\n"
      "link_down at=7000 from=0-3 to=4-7\n"
      "link_up   at=8000 from=0-3 to=4-7\n"
      "slow      at=9000 node=5 factor=4.5\n"
      "slow_end  at=9500 node=5\n"
      "storm_on  at=10000 extra=500 prob=0.5\n"
      "storm_off at=11000\n");
  EXPECT_EQ(doc.name, "every primitive");
  EXPECT_EQ(doc.n, 16);
  EXPECT_EQ(doc.max_nodes, 20);
  EXPECT_EQ(doc.cluster_size, 4);
  EXPECT_DOUBLE_EQ(doc.duration_ms, 30'000.0);
  EXPECT_EQ(doc.max_node_ref, 16);
  // crash/recover over the 3-id set expand to 3 events each.
  EXPECT_EQ(doc.scenario.events.size(), 2u + 3u + 3u + 2u + 2u + 2u + 2u);
  EXPECT_TRUE(doc.scenario.validate().empty());
  const FaultEvent& slow = doc.scenario.events[12];
  EXPECT_EQ(slow.kind, FaultKind::kSlowStart);
  EXPECT_EQ(slow.node, 5);
  EXPECT_DOUBLE_EQ(slow.factor, 4.5);
}

TEST(ScenarioDsl, CompoundsExpandToPrimitives) {
  // flap: 3 full periods, each up-then-down = 4 directed events per
  // down window, plus the final link_up pair at the window end.
  const ScenarioDoc flap = parse_ok(
      "flap from=0 to=3000 period=1000 duty=0.5 a=0 b=1\n");
  int downs = 0, ups = 0;
  for (const FaultEvent& e : flap.scenario.events) {
    downs += e.kind == FaultKind::kLinkDown;
    ups += e.kind == FaultKind::kLinkUp;
  }
  EXPECT_EQ(downs, ups) << "every block must be lifted";
  EXPECT_EQ(downs, 6);  // 3 windows x 2 directions
  EXPECT_TRUE(flap.scenario.validate().empty());

  const ScenarioDoc ramp = parse_ok(
      "overload from=0 to=5000 steps=4 extra=2000 prob=0.8\n");
  ASSERT_EQ(ramp.scenario.events.size(), 5u);  // 4 escalations + off
  EXPECT_EQ(ramp.scenario.events[0].kind, FaultKind::kStormStart);
  EXPECT_DOUBLE_EQ(ramp.scenario.events[0].extra_delay_ms, 500.0);
  EXPECT_DOUBLE_EQ(ramp.scenario.events[3].extra_delay_ms, 2000.0);
  EXPECT_EQ(ramp.scenario.events[4].kind, FaultKind::kStormEnd);

  // rack with explicit size; all crashes land on the same instant.
  const ScenarioDoc rack = parse_ok("rack at=4000 group=1 size=4\n");
  ASSERT_EQ(rack.scenario.events.size(), 4u);
  for (const FaultEvent& e : rack.scenario.events) {
    EXPECT_EQ(e.kind, FaultKind::kCrash);
    EXPECT_DOUBLE_EQ(e.at_ms, 4'000.0);
  }
  EXPECT_EQ(rack.scenario.events[0].node, 4);
  EXPECT_EQ(rack.scenario.events[3].node, 7);

  // rack without size falls back to the config cluster, then context.
  const ScenarioDoc rack2 =
      parse_ok("config n=9 max_nodes=9 cluster=3\nrack at=1000 group=2\n");
  ASSERT_EQ(rack2.scenario.events.size(), 3u);
  EXPECT_EQ(rack2.scenario.events[0].node, 6);

  const ScenarioDoc churn =
      parse_ok("churn from=0 to=4000 join=8-9 leave=0-1\n");
  ASSERT_EQ(churn.scenario.events.size(), 4u);
  EXPECT_EQ(churn.scenario.events[0].kind, FaultKind::kJoin);
  EXPECT_EQ(churn.scenario.events[2].kind, FaultKind::kLeave);
  // Leaves sit on the half-step offset so the streams interleave.
  EXPECT_DOUBLE_EQ(churn.scenario.events[2].at_ms, 1'000.0);
}

TEST(ScenarioDsl, LiePrimitiveParsesAndRoundTrips) {
  const ScenarioDoc doc = parse_ok(
      "lie at=2000 node=3,5 delta=-2\n"
      "lie_end at=6000 node=3,5\n");
  ASSERT_EQ(doc.scenario.events.size(), 4u);
  EXPECT_EQ(doc.scenario.events[0].kind, FaultKind::kLieStart);
  EXPECT_EQ(doc.scenario.events[0].node, 3);
  EXPECT_DOUBLE_EQ(doc.scenario.events[0].factor, -2.0);
  EXPECT_EQ(doc.scenario.events[3].kind, FaultKind::kLieEnd);
  EXPECT_EQ(doc.scenario.events[3].node, 5);
  EXPECT_TRUE(doc.scenario.validate().empty());
  const std::string text = serialize_scenario(doc);
  const ScenarioDoc again = parse_ok(text);
  EXPECT_EQ(doc.scenario.events, again.scenario.events);
  EXPECT_EQ(serialize_scenario(again), text) << "not a fixed point";
}

TEST(ScenarioDsl, LieDisciplineRequiresAnOpenLie) {
  const DslError err = parse_fail(
      "lie at=2000 node=3 delta=4\n"
      "lie_end at=6000 node=5\n");
  EXPECT_EQ(err.line, 2);
  EXPECT_NE(err.message.find("not lying"), std::string::npos)
      << err.to_string();
  EXPECT_TRUE(parse_fail("lie at=2000 node=3 delta=nope\n").line == 1);
}

TEST(ScenarioDsl, BudgetHeaderParsesAndRoundTrips) {
  const ScenarioDoc doc = parse_ok(
      "budget max_false_per_node_min=0.5 max_detect_p99=2500\n"
      "crash at=3000 node=7\n");
  EXPECT_TRUE(doc.has_budget());
  EXPECT_DOUBLE_EQ(doc.budget_max_false_per_node_min, 0.5);
  EXPECT_DOUBLE_EQ(doc.budget_max_detect_p99_ms, 2'500.0);
  const ScenarioDoc again = parse_ok(serialize_scenario(doc));
  EXPECT_DOUBLE_EQ(again.budget_max_false_per_node_min, 0.5);
  EXPECT_DOUBLE_EQ(again.budget_max_detect_p99_ms, 2'500.0);

  const ScenarioDoc partial = parse_ok("budget max_detect_p99=1000\n");
  EXPECT_TRUE(partial.has_budget());
  EXPECT_LT(partial.budget_max_false_per_node_min, 0.0);

  const ScenarioDoc none = parse_ok("crash at=1000 node=0\n");
  EXPECT_FALSE(none.has_budget());
}

TEST(ScenarioDsl, BudgetHeaderRejectsMisuse) {
  // Empty budget, budget after a fault, and negative bounds all fail
  // with the line of the offending statement.
  EXPECT_EQ(parse_fail("budget\n").line, 1);
  EXPECT_EQ(parse_fail("crash at=1000 node=0\nbudget max_detect_p99=1\n")
                .line,
            2);
  EXPECT_EQ(parse_fail("budget max_false_per_node_min=-1\n").line, 1);
  EXPECT_EQ(parse_fail("budget max_detect_p99=0\n").line, 1);
  EXPECT_EQ(parse_fail("budget nope=1\n").line, 1);
}

TEST(ScenarioDsl, RoundTripIsAFixedPoint) {
  const std::string source =
      "name \"round trip\"\n"
      "config n=16 max_nodes=20 duration=30000\n"
      "crash at=3000 node=7,2,2\n"
      "partition at=5000 groups=0-7|8-15\n"
      "heal at=6000\n"
      "flap from=8000 to=11000 period=1000 duty=0.25 a=0-2 b=8-10\n"
      "slow at=12000 node=5 factor=3.25\n"
      "slow_end at=13000 node=5\n"
      "overload from=14000 to=20000 steps=3 extra=1500 prob=0.9\n"
      "churn from=21000 to=25000 join=16-17 leave=4\n";
  const ScenarioDoc first = parse_ok(source);
  const std::string text = serialize_scenario(first);
  const ScenarioDoc second = parse_ok(text);
  EXPECT_EQ(first.name, second.name);
  EXPECT_EQ(first.n, second.n);
  EXPECT_EQ(first.max_nodes, second.max_nodes);
  EXPECT_DOUBLE_EQ(first.duration_ms, second.duration_ms);
  EXPECT_EQ(first.scenario.events, second.scenario.events);
  EXPECT_EQ(serialize_scenario(second), text) << "not a fixed point";
}

TEST(ScenarioDsl, EveryLibraryScenarioRoundTrips) {
  for (const char* file :
       {"asymmetric_partition.scn", "byzantine_counters.scn",
        "cascading_overload.scn", "churn_storm.scn",
        "crash_recovery_wave.scn", "flapping_links.scn", "gray_failure.scn",
        "partition_cascade.scn", "rack_failure.scn", "slow_nodes.scn"}) {
    const ScenarioDoc doc = testutil::load_doc(file);
    EXPECT_FALSE(doc.scenario.events.empty()) << file;
    EXPECT_TRUE(doc.scenario.validate().empty()) << file;
    const ScenarioDoc again = parse_ok(serialize_scenario(doc));
    EXPECT_EQ(doc.scenario.events, again.scenario.events) << file;
  }
}

TEST(ScenarioDsl, DiagnosticsCarryExactLineAndColumn) {
  struct Case {
    const char* text;
    int line;
    int col;
    const char* needle;
  };
  const Case cases[] = {
      {"crash at=1000 node=0\nboom at=2000\n", 2, 1, "unknown statement"},
      {"crash at=1000 mode=3\n", 1, 15, "unknown key 'mode'"},
      {"crash node=1\n", 1, 1, "needs at="},
      {"crash at=abc node=1\n", 1, 10, "not a number"},
      {"crash at=-5 node=1\n", 1, 10, "at must be >= 0"},
      {"crash at=1000 node=1x\n", 1, 20, "not a node id"},
      {"crash at=1000 node=9-4\n", 1, 20, "descending range"},
      {"partition at=1000 groups=0-3\n", 1, 26, ">= 2 |-separated"},
      {"partition at=1000 groups=0-3|3-6\n", 1, 26, "groups overlap"},
      {"slow at=1000 node=1 factor=0\n", 1, 28, "factor must be > 0"},
      {"storm_on at=1000 extra=500 prob=1.5\n", 1, 33, "in [0, 1]"},
      {"flap from=0 to=5000 period=0 duty=0.5 a=0 b=1\n", 1, 28,
       "period must be > 0"},
      {"delay_storm from=2000 to=1000 extra=5\n", 1, 26,
       "greater than from"},
      {"crash at=1000 node=0\nconfig n=8\n", 2, 1, "must precede"},
      {"name unquoted\n", 1, 6, "expected key=value"},
      {"name \"open\n", 1, 6, "unterminated string"},
      {"churn from=0 to=1000\n", 1, 1, "join= and/or leave="},
      {"rack at=1000 group=1\n", 1, 1, "needs size="},
  };
  for (const Case& c : cases) {
    const DslError err = parse_fail(c.text);
    EXPECT_EQ(err.line, c.line) << c.text << err.to_string();
    EXPECT_EQ(err.col, c.col) << c.text << err.to_string();
    EXPECT_NE(err.message.find(c.needle), std::string::npos)
        << c.text << err.to_string();
  }
}

TEST(ScenarioDsl, NodeBoundsCheckedAgainstConfigOrContext) {
  DslError err = parse_fail("config n=8 max_nodes=8\ncrash at=1000 node=8\n");
  EXPECT_EQ(err.line, 2);
  EXPECT_NE(err.message.find("out of range"), std::string::npos);

  DslContext ctx;
  ctx.max_nodes = 4;
  err = parse_fail("link_down at=1000 from=0 to=5\n", ctx);
  EXPECT_NE(err.message.find("out of range"), std::string::npos);

  // Unbounded context: references are recorded, not rejected.
  const ScenarioDoc doc = parse_ok("crash at=1000 node=100\n");
  EXPECT_EQ(doc.max_node_ref, 100);
}

TEST(ScenarioDsl, CrossStatementDisciplineAttributedToOffendingLine) {
  // link_up with no matching installed block: check() flags the event,
  // the parser maps it back to line 2.
  DslError err = parse_fail(
      "link_down at=1000 from=0-3 to=4-7\n"
      "link_up   at=2000 from=0-2 to=4-7\n");
  EXPECT_EQ(err.line, 2);
  EXPECT_NE(err.message.find("link_up"), std::string::npos);

  err = parse_fail("storm_off at=5000\n");
  EXPECT_EQ(err.line, 1);

  err = parse_fail("slow at=1000 node=3 factor=2\nslow_end at=2000 node=4\n");
  EXPECT_EQ(err.line, 2);
}

TEST(ScenarioDsl, MissingFileReportsPathWithoutLine) {
  ScenarioDoc doc;
  DslError err;
  EXPECT_FALSE(load_scenario_file("/nonexistent/nope.scn", DslContext{},
                                  doc, err));
  EXPECT_EQ(err.line, 0);
  EXPECT_NE(err.message.find("nope.scn"), std::string::npos);
}

// ---------------------------------------------------------------------
// The timeline-ordering regression (builders used to be silently
// order-sensitive): appending events out of time order must produce the
// same run as the sorted script, and malformed timelines must be
// rejected by the engine up front.

ClusterConfig tiny_config() {
  ClusterConfig config;
  config.n = 8;
  config.topology.kind = TopologyKind::kGossip;
  config.topology.digest_size = 8;
  config.detector.kind = rt::DetectorKind::kChen;
  config.detector.chen.alpha_ms = 400.0;
  config.duration_ms = 6'000.0;
  return config;
}

TEST(ScenarioOrdering, OutOfOrderAppendsRunIdenticallyToSortedScript) {
  ClusterConfig in_order = tiny_config();
  in_order.scenario.crash(1'000.0, 1)
      .delay_storm(2'000.0, 3'000.0, 300.0, 0.5)
      .crash(4'000.0, 2);

  // Same events, appended backwards.
  ClusterConfig reversed = tiny_config();
  reversed.scenario.crash(4'000.0, 2)
      .storm_off(3'000.0)
      .storm_on(2'000.0, 300.0, 0.5)
      .crash(1'000.0, 1);

  EXPECT_TRUE(reversed.scenario.validate().empty());
  EXPECT_EQ(in_order.scenario.sorted(), reversed.scenario.sorted());
  const ClusterReport a = run_cluster(in_order, 7);
  const ClusterReport b = run_cluster(reversed, 7);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.false_suspicions, b.false_suspicions);
  EXPECT_EQ(a.detection_latency_ms.count(), b.detection_latency_ms.count());
  EXPECT_DOUBLE_EQ(a.detection_latency_ms.mean(),
                   b.detection_latency_ms.mean());
}

TEST(ScenarioOrderingDeathTest, EngineRejectsMalformedTimelineUpFront) {
  // storm_off before any storm_on is malformed no matter how the events
  // were appended; the engine must refuse to run it.
  ClusterConfig config = tiny_config();
  config.scenario.storm_off(2'000.0);
  EXPECT_NE(config.scenario.validate().find("storm"), std::string::npos);
  EXPECT_DEATH(run_cluster(config, 7), "storm");

  ClusterConfig overlap = tiny_config();
  overlap.scenario.partition(1'000.0, {{0, 1, 2}, {2, 3, 4}});
  EXPECT_DEATH(run_cluster(overlap, 7), "partition");
}

TEST(ScenarioOrdering, CheckReportsOffendingEventIndex) {
  Scenario s;
  s.link_down(1'000.0, {0}, {1});
  s.link_up(2'000.0, {0}, {2});  // no matching block
  const std::optional<ScenarioIssue> issue = s.check();
  ASSERT_TRUE(issue.has_value());
  EXPECT_EQ(issue->event_index, 1u);
}

}  // namespace
}  // namespace rfd::cluster
