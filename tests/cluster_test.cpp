// Cluster-layer tests: partition/storm support in the network, crash
// detection under every dissemination topology, the scripted
// partition/heal scenario (all live nodes converge on the true crashed
// set after heal), churn, delay storms, determinism under a fixed seed,
// and the message-complexity separation (gossip sublinear vs all-to-all
// quadratic) that the E11 bench measures at scale.
#include <gtest/gtest.h>

#include "cluster/digest_codec.hpp"
#include "cluster/engine.hpp"
#include "cluster/node.hpp"
#include "cluster/scenario.hpp"
#include "cluster/topology.hpp"
#include "runtime/event_queue.hpp"
#include "runtime/network.hpp"

namespace rfd::cluster {
namespace {

ClusterConfig base_config(TopologyKind kind, int n) {
  ClusterConfig config;
  config.n = n;
  config.topology.kind = kind;
  config.topology.digest_size = 16;
  config.detector.kind = rt::DetectorKind::kChen;
  // Indirect dissemination (gossip hops, digest rotation) adds jitter a
  // direct-heartbeat margin would not tolerate, and the sharded core's
  // barrier delivery adds up to half a check interval more per hop (a
  // message is observed at the next check-grid boundary after arrival).
  // Slack of ~4 heartbeat periods keeps every topology honest on a calm
  // network - exactly the tuning a real operator does.
  config.detector.chen.alpha_ms = 400.0;
  config.heartbeat_interval_ms = 100.0;
  config.check_interval_ms = 100.0;
  config.duration_ms = 20'000.0;
  return config;
}

TEST(Network, PartitionBlocksCrossTraffic) {
  rt::EventQueue queue;
  rt::Network net(queue, 1, rt::NetworkParams{});
  net.set_partition({{0, 1}, {2, 3}});
  EXPECT_FALSE(net.partitioned(0, 1));
  EXPECT_FALSE(net.partitioned(2, 3));
  EXPECT_TRUE(net.partitioned(0, 2));
  EXPECT_TRUE(net.partitioned(3, 1));
  int delivered = 0;
  net.send(0, 2, [&] { ++delivered; });
  net.send(0, 1, [&] { ++delivered; });
  queue.run_until(1e6);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.partition_dropped(), 1);

  net.clear_partition();
  EXPECT_FALSE(net.partitioned(0, 2));
  net.send(0, 2, [&] { ++delivered; });
  queue.run_until(2e6);
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.partition_dropped(), 1);
}

TEST(Network, UnlistedNodesJoinFirstGroup) {
  rt::EventQueue queue;
  rt::Network net(queue, 1, rt::NetworkParams{});
  net.set_partition({{0, 1}, {2}});
  // Node 7 is listed nowhere: it behaves as a member of groups[0].
  EXPECT_FALSE(net.partitioned(7, 0));
  EXPECT_TRUE(net.partitioned(7, 2));
}

TEST(Network, DelayStormRaisesDelays) {
  rt::EventQueue queue;
  rt::NetworkParams params;
  rt::Network net(queue, 4, params);
  double calm_sum = 0.0;
  for (int i = 0; i < 300; ++i) calm_sum += net.sample_delay();
  net.set_storm(500.0, 1.0);
  double storm_sum = 0.0;
  for (int i = 0; i < 300; ++i) storm_sum += net.sample_delay();
  net.clear_storm();
  double after_sum = 0.0;
  for (int i = 0; i < 300; ++i) after_sum += net.sample_delay();
  EXPECT_GT(storm_sum / 300.0, calm_sum / 300.0 + 400.0);
  EXPECT_LT(after_sum / 300.0, calm_sum / 300.0 + 50.0);
}

TEST(ClusterNode, GraceThenDetectorTakesOver) {
  NodeParams params;
  params.bootstrap_grace_ms = 1000.0;
  ClusterNode node(0, 4, params);
  node.learn_peer(1, 0.0);
  EXPECT_TRUE(node.knows(1));
  EXPECT_FALSE(node.suspects(1, 500.0));   // inside the grace window
  EXPECT_TRUE(node.suspects(1, 1500.0));   // never heard: grace expired
  // The first-ever counter is a membership high-water mark, not a
  // heartbeat: a gossiped value can be arbitrarily stale (it could be a
  // dead node's final counter still circulating), so it must not buy
  // trust. Only an advance beyond it does.
  EXPECT_FALSE(node.observe(1, 5, 1600.0).advanced);
  EXPECT_TRUE(node.suspects(1, 1700.0));   // still only grace-covered
  EXPECT_TRUE(node.observe(1, 6, 1750.0).advanced);
  EXPECT_FALSE(node.suspects(1, 1800.0));  // detector trusts the advance
  // Stale and zero counters are not liveness evidence.
  EXPECT_FALSE(node.observe(1, 5, 1850.0).advanced);
  EXPECT_FALSE(node.observe(1, 3, 1900.0).advanced);
  EXPECT_FALSE(node.observe(2, 0, 2000.0).advanced);
  EXPECT_TRUE(node.knows(2));  // ...but they do carry membership
  EXPECT_FALSE(node.suspects(0, 5000.0));  // never self-suspects
}

class EveryTopology : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(EveryTopology, EveryLiveNodeDetectsTheCrash) {
  ClusterConfig config = base_config(GetParam(), 16);
  config.topology.cluster_size = 4;
  config.scenario.crash(5'000.0, 3);
  const ClusterReport report = run_cluster(config, 7);

  EXPECT_EQ(report.detection_latency_ms.count(), 15) << report.summary();
  EXPECT_EQ(report.missed_detections, 0) << report.summary();
  // Multi-hop dissemination has gap tails even on a calm network; a
  // couple of self-healing flaps over 20s is within spec, sustained
  // flapping is not.
  EXPECT_LE(report.false_suspicions, 2) << report.summary();
  EXPECT_TRUE(report.final_agreement) << report.summary();
  EXPECT_EQ(report.convergence_ms.count(), 1) << report.summary();
  EXPECT_GT(report.detection_latency_ms.max(), 0.0);
  EXPECT_LT(report.detection_latency_ms.max(), 10'000.0);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EveryTopology,
                         ::testing::Values(TopologyKind::kAllToAll,
                                           TopologyKind::kRing,
                                           TopologyKind::kGossip,
                                           TopologyKind::kHierarchical));

TEST(Cluster, PartitionHealConvergesOnTrueCrashedSet) {
  // The acceptance scenario: split 16 nodes down the middle, crash one
  // node inside the partition, heal, and require every live node to end
  // agreeing on exactly {3} as the crashed set.
  ClusterConfig config = base_config(TopologyKind::kGossip, 16);
  config.duration_ms = 30'000.0;
  config.scenario
      .partition(4'000.0, {{0, 1, 2, 3, 4, 5, 6, 7},
                           {8, 9, 10, 11, 12, 13, 14, 15}})
      .crash(8'000.0, 3)
      .heal(14'000.0);
  const ClusterReport report = run_cluster(config, 11);

  // Both sides falsely suspected the other during the cut...
  EXPECT_GT(report.false_suspicions, 0) << report.summary();
  EXPECT_GT(report.partition_dropped, 0);
  // ...yet after heal everyone converges on the truth.
  EXPECT_TRUE(report.final_agreement) << report.summary();
  EXPECT_EQ(report.detection_latency_ms.count(), 15) << report.summary();
  EXPECT_EQ(report.missed_detections, 0) << report.summary();
  EXPECT_GE(report.convergence_ms.count(), 1) << report.summary();
}

TEST(Cluster, PartitionHealIsDeterministicUnderFixedSeed) {
  ClusterConfig config = base_config(TopologyKind::kGossip, 16);
  config.duration_ms = 30'000.0;
  config.scenario
      .partition(4'000.0, {{0, 1, 2, 3, 4, 5, 6, 7},
                           {8, 9, 10, 11, 12, 13, 14, 15}})
      .crash(8'000.0, 3)
      .heal(14'000.0);
  const ClusterReport a = run_cluster(config, 11);
  const ClusterReport b = run_cluster(config, 11);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.false_suspicions, b.false_suspicions);
  EXPECT_EQ(a.detection_latency_ms.count(), b.detection_latency_ms.count());
  EXPECT_DOUBLE_EQ(a.detection_latency_ms.mean(),
                   b.detection_latency_ms.mean());
  EXPECT_DOUBLE_EQ(a.convergence_ms.mean(), b.convergence_ms.mean());
}

TEST(Cluster, ChurnJoinAndSilentLeave) {
  ClusterConfig config = base_config(TopologyKind::kGossip, 8);
  config.max_nodes = 9;
  config.duration_ms = 25'000.0;
  config.scenario.join(3'000.0, 8).leave(10'000.0, 2);
  const ClusterReport report = run_cluster(config, 5);

  // The silent leave is indistinguishable from a crash: all 8 remaining
  // live nodes (7 originals + the joiner) must detect it.
  EXPECT_EQ(report.detection_latency_ms.count(), 8) << report.summary();
  EXPECT_EQ(report.missed_detections, 0) << report.summary();
  EXPECT_TRUE(report.final_agreement) << report.summary();
}

TEST(Cluster, CrashRecoveryIsForgiven) {
  ClusterConfig config = base_config(TopologyKind::kGossip, 8);
  config.duration_ms = 25'000.0;
  config.scenario.crash(5'000.0, 2).recover(12'000.0, 2);
  const ClusterReport report = run_cluster(config, 3);

  // The node was down, so suspicions of it were accurate; after recovery
  // everyone (including the restarted node, which lost its peer memory)
  // must settle back into full agreement with nobody suspected.
  EXPECT_TRUE(report.final_agreement) << report.summary();
  EXPECT_EQ(report.detection_latency_ms.count(), 0) << report.summary();
  EXPECT_EQ(report.missed_detections, 0) << report.summary();
  EXPECT_GE(report.disruptions, 2);
}

TEST(Cluster, RecoveredNodeRelearnsTheDead) {
  // A restarted node rejoins with empty peer memory while another node
  // is already dead. The dead node's final counter still circulates in
  // digests; it must read as membership, not as a heartbeat, so the
  // restarted node ends up suspecting the dead peer like everyone else
  // instead of trusting a ghost.
  ClusterConfig config = base_config(TopologyKind::kGossip, 8);
  config.duration_ms = 30'000.0;
  config.scenario.crash(5'000.0, 2).crash(8'000.0, 3).recover(14'000.0, 3);
  const ClusterReport report = run_cluster(config, 9);

  // 7 live nodes at the end, every one of them - including restarted
  // node 3 - must have victim 2 in its crashed set.
  EXPECT_EQ(report.detection_latency_ms.count(), 7) << report.summary();
  EXPECT_EQ(report.missed_detections, 0) << report.summary();
  EXPECT_TRUE(report.final_agreement) << report.summary();
}

TEST(Cluster, DelayStormCausesFalseSuspicionsThatHeal) {
  ClusterConfig config = base_config(TopologyKind::kAllToAll, 8);
  config.detector.kind = rt::DetectorKind::kFixed;
  config.detector.fixed.timeout_ms = 250.0;
  config.duration_ms = 20'000.0;
  config.scenario.delay_storm(4'000.0, 9'000.0, 1'000.0, 0.8);
  const ClusterReport report = run_cluster(config, 2);

  EXPECT_GT(report.false_suspicions, 0) << report.summary();
  EXPECT_TRUE(report.final_agreement) << report.summary();
  EXPECT_EQ(report.missed_detections, 0);
}

TEST(Cluster, GossipMessageLoadIsSublinear) {
  // The reason gossip architectures exist: per-node message load is flat
  // in n, where all-to-all grows linearly (O(n^2) cluster-wide).
  ClusterConfig g16 = base_config(TopologyKind::kGossip, 16);
  ClusterConfig g64 = base_config(TopologyKind::kGossip, 64);
  ClusterConfig a64 = base_config(TopologyKind::kAllToAll, 64);
  for (ClusterConfig* config : {&g16, &g64, &a64}) {
    config->duration_ms = 6'000.0;
  }
  const ClusterReport rg16 = run_cluster(g16, 1);
  const ClusterReport rg64 = run_cluster(g64, 1);
  const ClusterReport ra64 = run_cluster(a64, 1);

  EXPECT_LT(rg64.messages_per_node_per_s,
            ra64.messages_per_node_per_s / 5.0);
  EXPECT_LT(rg64.messages_per_node_per_s,
            rg16.messages_per_node_per_s * 1.5);
  EXPECT_GT(ra64.messages_per_node_per_s,
            rg64.messages_per_node_per_s);
}

TEST(DigestCodec, RoundTripsWorstCaseVarints) {
  // Covers the raw-cursor encode fast path at the varint extremes that a
  // short simulation never reaches: multi-byte gaps, 32-bit maxima, and
  // duplicate ids (zero gaps), appended after pre-existing payload bytes
  // the way the engine reuses pooled buffers.
  const std::vector<std::int32_t> ids = {0,       5,          5,
                                         127,     128,        16'384,
                                         1 << 21, 2'000'000'000};
  const auto counter_of = [](std::int32_t id) {
    return static_cast<std::uint32_t>(id) * 2654435761u;
  };
  std::vector<std::uint8_t> out = {0xab, 0xcd};  // pre-existing bytes
  encode_digest(0xdeadbeefu, ids, counter_of, out);
  ASSERT_GT(out.size(), 2u);
  EXPECT_EQ(out[0], 0xab);
  EXPECT_EQ(out[1], 0xcd);

  DigestReader reader(out.data() + 2, out.size() - 2);
  EXPECT_EQ(reader.varint(), 0xdeadbeefu);
  ASSERT_EQ(reader.varint(), ids.size());
  std::int32_t id = 0;
  for (const std::int32_t expected : ids) {
    id += static_cast<std::int32_t>(reader.varint());
    EXPECT_EQ(id, expected);
    EXPECT_EQ(reader.varint(), counter_of(expected));
  }
  EXPECT_TRUE(reader.done());
}

TEST(Cluster, HierarchicalLoadSitsBetweenGossipAndAllToAll) {
  ClusterConfig h = base_config(TopologyKind::kHierarchical, 64);
  ClusterConfig g = base_config(TopologyKind::kGossip, 64);
  ClusterConfig a = base_config(TopologyKind::kAllToAll, 64);
  for (ClusterConfig* config : {&h, &g, &a}) {
    config->duration_ms = 6'000.0;
  }
  const ClusterReport rh = run_cluster(h, 1);
  const ClusterReport rg = run_cluster(g, 1);
  const ClusterReport ra = run_cluster(a, 1);
  EXPECT_GT(rh.messages_per_node_per_s, rg.messages_per_node_per_s);
  EXPECT_LT(rh.messages_per_node_per_s, ra.messages_per_node_per_s);
}

}  // namespace
}  // namespace rfd::cluster
