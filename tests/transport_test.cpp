// Transport backend tests: SimTransport determinism and checkpointing,
// FlakyTransport injection accounting, and a real-socket UdpTransport
// loopback smoke (frames cross the kernel, garbage is rejected).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "transport/flaky.hpp"
#include "transport/sim.hpp"
#include "transport/transport.hpp"
#include "transport/udp.hpp"

namespace rfd::transport {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> list) {
  std::vector<std::uint8_t> out;
  for (int v : list) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

rt::NetworkParams lossless() {
  rt::NetworkParams params;
  params.loss_prob = 0.0;
  params.pre_gst_chaos_prob = 0.0;
  params.pre_gst_extra_ms = 0.0;
  params.gst_ms = 0.0;
  return params;
}

std::vector<Delivery> drain(Transport& t, double now_ms) {
  std::vector<Delivery> out;
  t.poll(now_ms, out);
  return out;
}

TEST(SimTransport, DeliversAfterModelDelay) {
  SimTransport sim(4, 99, lossless());
  const auto payload = bytes({1, 2, 3, 250});
  sim.send(0, 2, payload.data(), payload.size(), 0.0);

  // Nothing surfaces before the minimum network delay has elapsed.
  EXPECT_TRUE(drain(sim, 0.0).empty());

  const auto got = drain(sim, 10'000.0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].from, 0);
  EXPECT_EQ(got[0].to, 2);
  EXPECT_EQ(got[0].payload, payload);
  EXPECT_GT(got[0].at_ms, 0.0);
  EXPECT_EQ(sim.counters().sent, 1);
  EXPECT_EQ(sim.counters().delivered, 1);
  EXPECT_EQ(sim.counters().dropped, 0);
}

TEST(SimTransport, IdenticalSeedsProduceIdenticalStreams) {
  SimTransport a(8, 1234, lossless());
  SimTransport b(8, 1234, lossless());
  const auto payload = bytes({7});
  for (int k = 0; k < 200; ++k) {
    const NodeId from = k % 8;
    const NodeId to = (k + 3) % 8;
    const double t = k * 10.0;
    a.send(from, to, payload.data(), payload.size(), t);
    b.send(from, to, payload.data(), payload.size(), t);
  }
  const auto ga = drain(a, 1e9);
  const auto gb = drain(b, 1e9);
  ASSERT_EQ(ga.size(), gb.size());
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_DOUBLE_EQ(ga[i].at_ms, gb[i].at_ms);
    EXPECT_EQ(ga[i].from, gb[i].from);
    EXPECT_EQ(ga[i].to, gb[i].to);
  }
  // poll() order is (arrival time, send sequence): non-decreasing time.
  for (std::size_t i = 1; i < ga.size(); ++i) {
    EXPECT_GE(ga[i].at_ms, ga[i - 1].at_ms);
  }
}

TEST(SimTransport, SaveRestoreContinuesDrawForDraw) {
  rt::NetworkParams params = lossless();
  params.loss_prob = 0.2;  // make the RNG stream position matter
  SimTransport live(6, 777, params);
  const auto payload = bytes({42, 43});
  for (int k = 0; k < 50; ++k) {
    live.send(k % 6, (k + 1) % 6, payload.data(), payload.size(), k * 5.0);
  }
  (void)drain(live, 120.0);  // consume a prefix, leave some in flight

  std::vector<std::uint8_t> snapshot;
  ASSERT_TRUE(live.save_state(snapshot));
  // Same params (config travels via the constructor, guarded by the
  // soak config fingerprint), wrong seed on purpose: restore overwrites
  // every RNG stream position.
  SimTransport restored(6, 1, params);
  ASSERT_TRUE(restored.restore_state(snapshot.data(), snapshot.size()));

  // From here both must behave identically: same verdicts, same delays.
  for (int k = 0; k < 50; ++k) {
    const double t = 200.0 + k * 5.0;
    live.send(k % 6, (k + 2) % 6, payload.data(), payload.size(), t);
    restored.send(k % 6, (k + 2) % 6, payload.data(), payload.size(), t);
  }
  const auto ga = drain(live, 1e9);
  const auto gb = drain(restored, 1e9);
  ASSERT_EQ(ga.size(), gb.size());
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_DOUBLE_EQ(ga[i].at_ms, gb[i].at_ms);
    EXPECT_EQ(ga[i].from, gb[i].from);
    EXPECT_EQ(ga[i].to, gb[i].to);
    EXPECT_EQ(ga[i].payload, gb[i].payload);
  }
  EXPECT_EQ(live.counters().sent, restored.counters().sent);
  EXPECT_EQ(live.counters().dropped, restored.counters().dropped);

  // A truncated snapshot must be refused, not half-applied.
  SimTransport victim(6, 777, params);
  EXPECT_FALSE(victim.restore_state(snapshot.data(), snapshot.size() / 2));
}

TEST(SimTransport, LossIsAccounted) {
  rt::NetworkParams params = lossless();
  params.loss_prob = 0.4;
  SimTransport sim(4, 5, params);
  const auto payload = bytes({9});
  const int total = 500;
  for (int k = 0; k < total; ++k) {
    sim.send(0, 1, payload.data(), payload.size(), k * 1.0);
  }
  const auto got = drain(sim, 1e9);
  const TransportCounters c = sim.counters();
  EXPECT_EQ(c.sent, total);
  EXPECT_GT(c.dropped, 0);
  EXPECT_GT(c.delivered, 0);
  EXPECT_EQ(c.delivered + c.dropped, total);
  EXPECT_EQ(static_cast<std::int64_t>(got.size()), c.delivered);
}

TEST(FlakyTransport, InjectsLossDuplicationAndPartitions) {
  FlakyParams flaky;
  flaky.network = lossless();
  flaky.network.loss_prob = 0.2;
  flaky.dup_prob = 0.3;
  FlakyTransport t(std::make_unique<SimTransport>(4, 11, lossless()), 4, 12,
                   flaky);
  const auto payload = bytes({5, 6});
  const int total = 400;
  for (int k = 0; k < total; ++k) {
    t.send(0, 1, payload.data(), payload.size(), k * 1.0);
  }
  const auto got = drain(t, 1e9);
  const TransportCounters c = t.counters();
  EXPECT_EQ(c.sent, total);
  EXPECT_GT(c.dropped, 0);
  EXPECT_GT(c.duplicated, 0);
  EXPECT_GT(c.delivered, 0);
  EXPECT_EQ(static_cast<std::int64_t>(got.size()), c.delivered);
  // Every offered datagram plus every surviving duplicate either landed
  // or was eaten by the injector; nothing vanishes unaccounted.
  EXPECT_GE(c.delivered + c.dropped, c.sent + c.duplicated);
  for (const auto& d : got) EXPECT_EQ(d.payload, payload);

  // The injection layer exposes the scenario fault surface: a partition
  // installed on it kills delivery even though the inner sim is clean.
  ASSERT_NE(t.fault_network(), nullptr);
  t.fault_network()->set_partition({{0, 1}, {2, 3}});
  const std::int64_t dropped_before = t.counters().dropped;
  for (int k = 0; k < 50; ++k) {
    t.send(0, 2, payload.data(), payload.size(), 1'000.0 + k);
  }
  EXPECT_TRUE(drain(t, 1e9).empty());
  EXPECT_EQ(t.counters().dropped, dropped_before + 50);
  t.fault_network()->clear_partition();
}

TEST(UdpTransport, LoopbackRoundTrip) {
  UdpParams params;
  params.base_port = 41000;  // away from the soak default
  UdpTransport udp(4, params);
  const auto ping = bytes({0xde, 0xad, 1, 2, 3});
  const auto pong = bytes({0xbe, 0xef});
  udp.send(0, 1, ping.data(), ping.size(), 0.0);
  udp.send(3, 2, pong.data(), pong.size(), 0.0);

  std::vector<Delivery> got;
  for (int spins = 0; spins < 200 && got.size() < 2; ++spins) {
    udp.wait_readable(10.0);
    udp.poll(spins * 10.0, got);
  }
  ASSERT_EQ(got.size(), 2u) << "loopback datagrams lost";
  // Kernel scheduling does not promise cross-socket order; match by to.
  const Delivery& to1 = got[0].to == 1 ? got[0] : got[1];
  const Delivery& to2 = got[0].to == 2 ? got[0] : got[1];
  EXPECT_EQ(to1.from, 0);
  EXPECT_EQ(to1.payload, ping);
  EXPECT_EQ(to2.from, 3);
  EXPECT_EQ(to2.payload, pong);
  EXPECT_EQ(udp.counters().sent, 2);
  EXPECT_EQ(udp.counters().delivered, 2);
  EXPECT_EQ(udp.counters().queue_drops, 0);
}

TEST(UdpTransport, RejectsGarbageFrames) {
  UdpParams params;
  params.base_port = 41100;
  UdpTransport udp(2, params);

  // A stray datagram with no valid frame header, as any port scanner
  // would produce, must be dropped and counted - never delivered.
  const int raw = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(params.base_port + 1));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const char junk[] = "not a heartbeat";
  ASSERT_GT(::sendto(raw, junk, sizeof junk, 0,
                     reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
            0);
  ::close(raw);

  std::vector<Delivery> got;
  for (int spins = 0; spins < 50 && udp.counters().sock_errors == 0;
       ++spins) {
    udp.wait_readable(10.0);
    udp.poll(spins * 10.0, got);
  }
  EXPECT_TRUE(got.empty());
  EXPECT_GE(udp.counters().sock_errors, 1);
  EXPECT_EQ(udp.counters().delivered, 0);
}

TEST(UdpTransport, IgnoresOutOfRangeNodeIds) {
  UdpParams params;
  params.base_port = 41200;
  UdpTransport udp(2, params);
  const auto payload = bytes({1});
  udp.send(-1, 1, payload.data(), payload.size(), 0.0);
  udp.send(0, 2, payload.data(), payload.size(), 0.0);
  udp.send(5, 0, payload.data(), payload.size(), 0.0);
  EXPECT_EQ(udp.counters().sent, 0);  // never accepted, never queued

  // An empty payload is a legal frame (header only) and round-trips.
  udp.send(1, 0, nullptr, 0, 0.0);
  std::vector<Delivery> got;
  for (int spins = 0; spins < 200 && got.empty(); ++spins) {
    udp.wait_readable(10.0);
    udp.poll(spins * 10.0, got);
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].from, 1);
  EXPECT_EQ(got[0].to, 0);
  EXPECT_TRUE(got[0].payload.empty());
}

}  // namespace
}  // namespace rfd::transport
