// Terminating reliable broadcast tests (Section 5): correct behaviour with
// P under crash sweeps, nil deliveries exactly for faulty senders, and the
// failure modes with detectors weaker than P (which is the "needs P" half
// of Proposition 5.1 made concrete).
#include <gtest/gtest.h>

#include "algo/specs.hpp"
#include "algo/trb/trb.hpp"
#include "fd/registry.hpp"
#include "model/environment.hpp"
#include "sim/simulator.hpp"

namespace rfd::algo {
namespace {

constexpr Value kMsg = 4242;
constexpr Tick kHorizon = 9000;

sim::Trace run_trb(const std::string& detector,
                   const model::FailurePattern& pattern, ProcessId sender,
                   std::uint64_t seed, Tick horizon = kHorizon) {
  const ProcessId n = pattern.n();
  const auto oracle = fd::find_detector(detector).factory(pattern, seed);
  std::vector<std::unique_ptr<sim::Automaton>> automata;
  for (ProcessId p = 0; p < n; ++p) {
    automata.push_back(std::make_unique<TrbAutomaton>(n, sender, kMsg));
  }
  sim::Simulator sim(pattern, *oracle, std::move(automata),
                     std::make_unique<sim::RandomAdversary>(mix_seed(seed, 3)));
  sim.run_for(horizon);
  return sim.trace();
}

struct TrbCase {
  std::size_t pattern_index;
  ProcessId sender;
};

std::vector<model::FailurePattern> trb_patterns(ProcessId n) {
  model::PatternSweep sweep(n, 0x77b);
  sweep.with_all_correct()
      .with_single_crashes({0, 100, 1200})
      .with_cascades(n - 1, 80, 100)
      .with_all_but_one(500)
      .with_random(5, 0, n - 1, 2000);
  return sweep.patterns();
}

class TrbWithPerfect : public ::testing::TestWithParam<TrbCase> {};

TEST_P(TrbWithPerfect, SpecificationHolds) {
  const auto& c = GetParam();
  const ProcessId n = 4;
  const auto patterns = trb_patterns(n);
  ASSERT_LT(c.pattern_index, patterns.size());
  const auto& pattern = patterns[c.pattern_index];
  const auto trace = run_trb("P", pattern, c.sender, 0xbead);
  const auto check = check_trb(trace, 0, c.sender, kMsg);
  EXPECT_TRUE(check.ok()) << "sender p" << c.sender << " on "
                          << pattern.to_string() << ": " << check.to_string();
}

std::vector<TrbCase> trb_cases() {
  std::vector<TrbCase> cases;
  const std::size_t count = trb_patterns(4).size();
  for (std::size_t pi = 0; pi < count; ++pi) {
    for (ProcessId sender : {0, 2}) {
      cases.push_back({pi, sender});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Patterns, TrbWithPerfect,
                         ::testing::ValuesIn(trb_cases()),
                         [](const ::testing::TestParamInfo<TrbCase>& info) {
                           return "f" + std::to_string(info.param.pattern_index) +
                                  "_s" + std::to_string(info.param.sender);
                         });

TEST(Trb, CorrectSenderValueIsDelivered) {
  const ProcessId n = 4;
  const auto pattern = model::single_crash(n, 2, 300);  // sender 0 correct
  const auto trace = run_trb("P", pattern, /*sender=*/0, 1);
  pattern.correct().for_each([&](ProcessId p) {
    const auto d = trace.delivery_of(p, 0);
    ASSERT_TRUE(d.has_value()) << "p" << p;
    EXPECT_EQ(d->value, kMsg);
  });
}

TEST(Trb, CrashedSenderYieldsNilEverywhere) {
  const ProcessId n = 4;
  const auto pattern = model::single_crash(n, 0, 0);  // sender dead at start
  const auto trace = run_trb("P", pattern, /*sender=*/0, 2);
  pattern.correct().for_each([&](ProcessId p) {
    const auto d = trace.delivery_of(p, 0);
    ASSERT_TRUE(d.has_value()) << "p" << p;
    EXPECT_EQ(d->value, kNilValue);
  });
}

TEST(Trb, MidFlightCrashIsConsistent) {
  // The sender crashes after reaching only some processes: consensus must
  // still make everyone deliver the SAME outcome (m or nil).
  const ProcessId n = 5;
  for (Tick crash = 1; crash <= 41; crash += 8) {
    const auto pattern = model::single_crash(n, 1, crash);
    const auto trace = run_trb("P", pattern, /*sender=*/1, 77 + crash);
    const auto check = check_trb(trace, 0, 1, kMsg);
    EXPECT_TRUE(check.ok()) << "crash at " << crash << ": "
                            << check.to_string();
  }
}

TEST(Trb, EventuallyPerfectDetectorBreaksIt) {
  // <>P falsely suspects the (correct) sender before convergence, so some
  // run delivers nil for a live sender: TRB genuinely needs P, not <>P.
  const ProcessId n = 4;
  bool validity_broken = false;
  for (std::uint64_t seed = 0; seed < 12 && !validity_broken; ++seed) {
    const auto pattern = model::all_correct(n);
    const auto trace = run_trb("<>P", pattern, /*sender=*/0, seed);
    const auto check = check_trb(trace, 0, 0, kMsg);
    validity_broken = !check.validity;
  }
  EXPECT_TRUE(validity_broken);
}

TEST(Trb, PartiallyPerfectCannotTerminateIt) {
  // Under P< the embedded consensus waits forever on crashed higher-id
  // processes that nobody can suspect: TRB loses termination.
  const ProcessId n = 4;
  const auto pattern = model::single_crash(n, 3, 50);
  const auto trace = run_trb("P<", pattern, /*sender=*/0, 5);
  const auto check = check_trb(trace, 0, 0, kMsg);
  EXPECT_FALSE(check.termination) << check.to_string();
  EXPECT_TRUE(check.agreement && check.integrity) << check.to_string();
}

TEST(Trb, ProposalsMatchSuspicionState) {
  // White-box: a process that saw the sender's value proposes it; one that
  // suspected first proposes nil.
  const ProcessId n = 4;
  const auto pattern = model::single_crash(n, 0, 1);
  const auto oracle = fd::find_detector("P").factory(pattern, 6);
  std::vector<std::unique_ptr<sim::Automaton>> automata;
  for (ProcessId p = 0; p < n; ++p) {
    automata.push_back(std::make_unique<TrbAutomaton>(n, 0, kMsg));
  }
  sim::Simulator sim(pattern, *oracle, std::move(automata),
                     std::make_unique<sim::RandomAdversary>(8));
  sim.run_for(kHorizon);
  for (ProcessId p = 1; p < n; ++p) {
    const auto& trb = dynamic_cast<TrbAutomaton&>(sim.automaton(p));
    EXPECT_TRUE(trb.proposal() == kMsg || trb.proposal() == kNilValue);
  }
}

}  // namespace
}  // namespace rfd::algo
