// Unit tests for the foundations: RNG determinism and distributions,
// process sets, streaming statistics, serialization round-trips, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/process_set.hpp"
#include "common/rng.hpp"
#include "common/serialization.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace rfd {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.below(13);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 13);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.below(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(3, 6);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 6);
    hit_lo = hit_lo || v == 3;
    hit_hi = hit_hi || v == 6;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximates) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 40'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  Summary s;
  for (int i = 0; i < 40'000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, SplitIndependence) {
  Rng base(23);
  Rng a = base.split(1);
  Rng b = base.split(2);
  Rng a2 = base.split(1);
  EXPECT_EQ(a(), a2());  // same tag, same stream
  int same = 0;
  Rng a3 = base.split(1);
  (void)a3();
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  rng.shuffle(v.data(), static_cast<std::int64_t>(v.size()));
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 8u);
}

TEST(ProcessSet, InsertEraseContains) {
  ProcessSet s(70);
  EXPECT_TRUE(s.empty());
  s.insert(0);
  s.insert(69);
  s.insert(64);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(69));
  EXPECT_FALSE(s.contains(1));
  EXPECT_EQ(s.count(), 3);
  s.erase(64);
  EXPECT_FALSE(s.contains(64));
  EXPECT_EQ(s.count(), 2);
}

TEST(ProcessSet, MinMaxMembers) {
  ProcessSet s = ProcessSet::of(100, {5, 77, 31});
  EXPECT_EQ(s.min(), 5);
  EXPECT_EQ(s.max(), 77);
  EXPECT_EQ(s.members(), (std::vector<ProcessId>{5, 31, 77}));
  EXPECT_EQ(ProcessSet(10).min(), -1);
  EXPECT_EQ(ProcessSet(10).max(), -1);
}

TEST(ProcessSet, Algebra) {
  const ProcessSet a = ProcessSet::of(10, {1, 2, 3});
  const ProcessSet b = ProcessSet::of(10, {3, 4});
  EXPECT_EQ((a | b), ProcessSet::of(10, {1, 2, 3, 4}));
  EXPECT_EQ((a & b), ProcessSet::of(10, {3}));
  EXPECT_EQ((a - b), ProcessSet::of(10, {1, 2}));
  EXPECT_TRUE(ProcessSet::of(10, {1, 2}).is_subset_of(a));
  EXPECT_FALSE(a.is_subset_of(b));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(ProcessSet::of(10, {7}).intersects(a));
}

TEST(ProcessSet, ComplementAndFull) {
  const ProcessSet s = ProcessSet::of(5, {0, 2});
  EXPECT_EQ(s.complement(), ProcessSet::of(5, {1, 3, 4}));
  EXPECT_EQ(ProcessSet::full(5).count(), 5);
  EXPECT_EQ(ProcessSet::full(5).complement().count(), 0);
}

TEST(ProcessSet, ForEachOrder) {
  const ProcessSet s = ProcessSet::of(130, {128, 3, 65});
  std::vector<ProcessId> seen;
  s.for_each([&](ProcessId p) { seen.push_back(p); });
  EXPECT_EQ(seen, (std::vector<ProcessId>{3, 65, 128}));
}

TEST(ProcessSet, HashDistinguishes) {
  EXPECT_NE(ProcessSet::of(10, {1}).hash(), ProcessSet::of(10, {2}).hash());
  EXPECT_EQ(ProcessSet::of(10, {1, 5}).hash(), ProcessSet::of(10, {5, 1}).hash());
}

TEST(Summary, MomentsAndPercentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.count(), 100);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.99), 99.01, 0.1);
}

TEST(Summary, EmptyIsNaN) {
  Summary s;
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.percentile(0.5)));
}

TEST(Summary, Merge) {
  Summary a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Histogram, Buckets) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.5);
  h.add(9.9);
  h.add(10.0);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(9), 1);
  EXPECT_EQ(h.total(), 4);
}

TEST(Serialization, RoundTripScalars) {
  Writer w;
  w.u8(200);
  w.boolean(true);
  w.varint(0);
  w.varint(-1);
  w.varint(123456789012345);
  w.varint(std::numeric_limits<std::int64_t>::min());
  w.varint(std::numeric_limits<std::int64_t>::max());
  w.str("hello");
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 200);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.varint(), 0);
  EXPECT_EQ(r.varint(), -1);
  EXPECT_EQ(r.varint(), 123456789012345);
  EXPECT_EQ(r.varint(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r.varint(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialization, RoundTripAggregates) {
  Writer w;
  w.process_set(ProcessSet::of(9, {0, 4, 8}));
  w.values({kNoValue, 7, -9});
  Bytes inner{std::byte{1}, std::byte{2}};
  w.bytes(inner);
  Reader r(w.data());
  EXPECT_EQ(r.process_set(), ProcessSet::of(9, {0, 4, 8}));
  EXPECT_EQ(r.values(), (std::vector<Value>{kNoValue, 7, -9}));
  EXPECT_EQ(r.bytes(), inner);
  EXPECT_TRUE(r.exhausted());
}

TEST(Table, RendersAndAligns) {
  Table t({"name", "count"});
  t.add_row({"alpha", "10"});
  t.add_row({"b", "2"});
  const std::string out = t.render("demo");
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find(" 10 |"), std::string::npos);  // numeric right-aligned
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(42), "42");
  EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.5), "50.0%");
  EXPECT_EQ(Table::yes_no(true), "yes");
}

}  // namespace
}  // namespace rfd
