// Tests for the paper's core results made executable:
//   Lemma 4.1 - totality of realistic-detector consensus;
//   Lemma 4.2 - T(D->P) emulates a Perfect detector;
//   Prop. 5.1 - TRB emulates a Perfect detector;
// and the negative space: the clairvoyant Strong detector produces
// non-total decisions and a non-Perfect emulation.
#include <gtest/gtest.h>

#include "algo/consensus/cr_chain.hpp"
#include "algo/consensus/ct_rotating.hpp"
#include "algo/consensus/ct_strong.hpp"
#include "fd/properties.hpp"
#include "fd/registry.hpp"
#include "model/environment.hpp"
#include "reduction/consensus_to_p.hpp"
#include "reduction/emulation.hpp"
#include "reduction/totality.hpp"
#include "reduction/trb_to_p.hpp"
#include "sim/simulator.hpp"

namespace rfd::red {
namespace {

constexpr Tick kHorizon = 10'000;

template <typename Algo>
sim::Trace run_consensus(const std::string& detector,
                         const model::FailurePattern& pattern,
                         std::uint64_t seed, sim::SimConfig config = {}) {
  const ProcessId n = pattern.n();
  const auto oracle = fd::find_detector(detector).factory(pattern, seed);
  std::vector<std::unique_ptr<sim::Automaton>> automata;
  for (ProcessId p = 0; p < n; ++p) {
    automata.push_back(std::make_unique<Algo>(n, 100 + p));
  }
  sim::Simulator sim(pattern, *oracle, std::move(automata),
                     std::make_unique<sim::RandomAdversary>(mix_seed(seed, 9)),
                     config);
  sim.run_for(kHorizon);
  return sim.trace();
}

// --- Lemma 4.1: totality ---------------------------------------------------

TEST(Totality, CtStrongWithPerfectIsTotal) {
  model::PatternSweep sweep(5, 0x41);
  sweep.with_all_correct()
      .with_single_crashes({0, 300})
      .with_cascades(4, 100, 150)
      .with_random(6, 0, 4, 2000);
  for (const auto& pattern : sweep.patterns()) {
    const auto trace = run_consensus<algo::CtStrongConsensus>("P", pattern, 7);
    const auto report = check_totality(trace, 0);
    EXPECT_TRUE(report.all_total())
        << pattern.to_string() << ": " << report.example;
  }
}

TEST(Totality, CtStrongWithScribeIsTotal) {
  const auto pattern = model::cascade(5, 2, 200, 100);
  const auto trace =
      run_consensus<algo::CtStrongConsensus>("Scribe", pattern, 8);
  const auto report = check_totality(trace, 0);
  EXPECT_TRUE(report.all_total()) << report.example;
}

TEST(Totality, CheatingStrongProducesNonTotalDecisions) {
  // The clairvoyant S detector falsely suspects live processes, letting
  // deciders skip them. To expose it, delay every message from the victim
  // p4 (alive, non-immune): under S(cheat) the others churn-suspect p4,
  // decide without ever hearing from it - a non-total decision. This is
  // exactly why Lemma 4.1 needs realism.
  sim::SimConfig config;
  config.blocks.push_back({/*src=*/4, /*dst=*/-1, /*until=*/6000});
  bool non_total_seen = false;
  for (std::uint64_t seed = 0; seed < 10 && !non_total_seen; ++seed) {
    const auto pattern = model::all_correct(5);
    const auto trace = run_consensus<algo::CtStrongConsensus>(
        "S(cheat)", pattern, seed, config);
    const auto report = check_totality(trace, 0);
    non_total_seen = report.non_total_decisions > 0;
  }
  EXPECT_TRUE(non_total_seen);
}

TEST(Totality, RealisticDetectorWaitsOutTheSameDelay) {
  // The same adversary against the realistic P detector: nobody may skip
  // the delayed (alive) p4, so every decision waits for its messages and
  // remains total - the two runs differ only in the detector's realism.
  sim::SimConfig config;
  config.blocks.push_back({/*src=*/4, /*dst=*/-1, /*until=*/6000});
  const auto pattern = model::all_correct(5);
  const auto trace =
      run_consensus<algo::CtStrongConsensus>("P", pattern, 1, config);
  const auto report = check_totality(trace, 0);
  EXPECT_GT(report.decisions, 0);
  EXPECT_TRUE(report.all_total()) << report.example;
  // And those decisions indeed happened only after the block lifted.
  for (const auto& d : trace.decisions_of_instance(0)) {
    EXPECT_GE(d.time, 6000);
  }
}

TEST(Totality, RotatingCoordinatorIsNotTotal) {
  // Footnote 4: the <>S algorithm consults only a majority. With everyone
  // alive, a decision that consulted all 5 processes would be total; runs
  // where the consulted fraction < 1 witness non-totality.
  bool non_total_seen = false;
  for (std::uint64_t seed = 0; seed < 10 && !non_total_seen; ++seed) {
    const auto pattern = model::all_correct(5);
    const auto trace =
        run_consensus<algo::CtRotatingConsensus>("<>S", pattern, seed);
    const auto report = check_totality(trace, 0);
    non_total_seen = report.non_total_decisions > 0;
  }
  EXPECT_TRUE(non_total_seen);
}

TEST(Totality, CrChainDecidesWithoutConsultingAnyone) {
  // p0's decision in the chain algorithm has an empty causal chain: the
  // most extreme non-totality, and the reason uniformity fails.
  const auto pattern = model::all_correct(4);
  const auto trace = run_consensus<algo::CrChainConsensus>("P<", pattern, 3);
  const auto report = check_totality(trace, 0);
  EXPECT_GT(report.non_total_decisions, 0);
  EXPECT_LT(report.consulted_fraction.min(), 0.5);
}

// --- Lemma 4.2: T(D->P) ----------------------------------------------------

struct ReductionRun {
  fd::History history;
  model::FailurePattern pattern;
  ProcessSet final_output_union;
};

ReductionRun run_reduction(const model::FailurePattern& pattern,
                           const std::string& detector, std::uint64_t seed,
                           InstanceId instances, Tick horizon,
                           Tick gap = 0) {
  const ProcessId n = pattern.n();
  const auto oracle = fd::find_detector(detector).factory(pattern, seed);
  std::vector<std::unique_ptr<sim::Automaton>> automata;
  for (ProcessId p = 0; p < n; ++p) {
    automata.push_back(std::make_unique<ConsensusToP>(
        n, ConsensusToP::ct_strong_factory(n), instances, gap));
  }
  sim::Simulator sim(pattern, *oracle, std::move(automata),
                     std::make_unique<sim::RandomAdversary>(mix_seed(seed, 1)));
  sim.run_for(horizon);

  std::vector<std::vector<std::pair<Tick, ProcessId>>> timelines;
  ProcessSet union_out(n);
  for (ProcessId p = 0; p < n; ++p) {
    const auto& reduction = dynamic_cast<ConsensusToP&>(sim.automaton(p));
    timelines.push_back(reduction.suspicion_timeline());
    union_out |= reduction.output();
  }
  return {history_from_timelines(n, horizon, timelines), pattern, union_out};
}

TEST(ConsensusToPReduction, EmulatesStrongAccuracy) {
  // No process is ever suspected by output(P) before it crashed: with a
  // realistic detector and a total algorithm, missing tags certify death.
  model::PatternSweep sweep(4, 0x42);
  sweep.with_all_correct()
      .with_single_crashes({0, 400})
      .with_cascades(3, 200, 300)
      .with_random(4, 0, 3, 3000);
  for (const auto& pattern : sweep.patterns()) {
    const auto run = run_reduction(pattern, "P", 5, 12, kHorizon, /*gap=*/400);
    const auto accuracy = fd::strong_accuracy(run.pattern, run.history);
    EXPECT_TRUE(accuracy.ok) << pattern.to_string() << ": " << accuracy.detail;
  }
}

TEST(ConsensusToPReduction, EmulatesStrongCompleteness) {
  // Crashed processes end up permanently suspected by every correct
  // process (they miss from all post-crash instances).
  model::PatternSweep sweep(4, 0x43);
  sweep.with_single_crashes({0, 200}).with_cascades(3, 150, 250);
  for (const auto& pattern : sweep.patterns()) {
    const auto run =
        run_reduction(pattern, "P", 6, 16, kHorizon, /*gap=*/400);
    const auto completeness =
        fd::strong_completeness(run.pattern, run.history);
    EXPECT_TRUE(completeness.ok)
        << pattern.to_string() << ": " << completeness.detail;
  }
}

TEST(ConsensusToPReduction, EmulationIsPerfect) {
  const auto pattern = model::cascade(4, 2, 300, 400);
  const auto run = run_reduction(pattern, "P", 9, 16, kHorizon, /*gap=*/400);
  const auto cls = fd::classify(run.pattern, run.history, /*min_suffix=*/200);
  EXPECT_TRUE(cls.perfect);
}

TEST(ConsensusToPReduction, NoFalseSuspicionsEverAllCorrect) {
  const auto pattern = model::all_correct(5);
  const auto run = run_reduction(pattern, "P", 11, 10, kHorizon);
  EXPECT_TRUE(run.final_output_union.empty())
      << run.final_output_union.to_string();
}

TEST(ConsensusToPReduction, CheatingDetectorBreaksTheEmulation) {
  // With the non-realistic Strong detector the algorithm is not total, so
  // the emulation falsely suspects live processes in some run - the lower
  // bound genuinely needs realism.
  bool false_suspicion = false;
  for (std::uint64_t seed = 0; seed < 8 && !false_suspicion; ++seed) {
    const auto pattern = model::all_correct(4);
    const auto run = run_reduction(pattern, "S(cheat)", seed, 10, kHorizon);
    false_suspicion = !run.final_output_union.empty();
  }
  EXPECT_TRUE(false_suspicion);
}

TEST(ConsensusToPReduction, ProgressesThroughInstances) {
  const auto pattern = model::all_correct(4);
  const auto oracle = fd::find_detector("P").factory(pattern, 3);
  std::vector<std::unique_ptr<sim::Automaton>> automata;
  for (ProcessId p = 0; p < 4; ++p) {
    automata.push_back(std::make_unique<ConsensusToP>(
        4, ConsensusToP::ct_strong_factory(4), 16));
  }
  sim::Simulator sim(pattern, *oracle, std::move(automata),
                     std::make_unique<sim::RandomAdversary>(13));
  sim.run_for(kHorizon);
  for (ProcessId p = 0; p < 4; ++p) {
    const auto& r = dynamic_cast<ConsensusToP&>(sim.automaton(p));
    EXPECT_GE(r.instances_decided(), 8) << "p" << p;
  }
}

// --- Proposition 5.1: TRB -> P ---------------------------------------------

TEST(TrbToPReduction, EmulatesPerfect) {
  model::PatternSweep sweep(4, 0x51);
  sweep.with_all_correct()
      .with_single_crashes({0, 500})
      .with_cascades(3, 300, 400);
  for (const auto& pattern : sweep.patterns()) {
    const ProcessId n = pattern.n();
    const auto oracle = fd::find_detector("P").factory(pattern, 21);
    std::vector<std::unique_ptr<sim::Automaton>> automata;
    for (ProcessId p = 0; p < n; ++p) {
      automata.push_back(
          std::make_unique<TrbToP>(n, /*max_rounds=*/6, /*gap=*/600));
    }
    sim::Simulator sim(pattern, *oracle, std::move(automata),
                       std::make_unique<sim::RandomAdversary>(23));
    sim.run_for(kHorizon);

    std::vector<std::vector<std::pair<Tick, ProcessId>>> timelines;
    for (ProcessId p = 0; p < n; ++p) {
      timelines.push_back(
          dynamic_cast<TrbToP&>(sim.automaton(p)).suspicion_timeline());
    }
    const auto history = history_from_timelines(n, kHorizon, timelines);
    EXPECT_TRUE(fd::strong_accuracy(pattern, history).ok)
        << pattern.to_string();
    EXPECT_TRUE(fd::strong_completeness(pattern, history).ok)
        << pattern.to_string();
  }
}

TEST(TrbToPReduction, RoundsProgress) {
  const auto pattern = model::all_correct(4);
  const auto oracle = fd::find_detector("P").factory(pattern, 31);
  std::vector<std::unique_ptr<sim::Automaton>> automata;
  for (ProcessId p = 0; p < 4; ++p) {
    automata.push_back(std::make_unique<TrbToP>(4, 8));
  }
  sim::Simulator sim(pattern, *oracle, std::move(automata),
                     std::make_unique<sim::RandomAdversary>(37));
  sim.run_for(kHorizon);
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_GE(dynamic_cast<TrbToP&>(sim.automaton(p)).rounds_completed(), 4);
  }
}

// --- timeline -> history helper -------------------------------------------

TEST(EmulationHistory, TimelinesBecomeMonotoneHistories) {
  std::vector<std::vector<std::pair<Tick, ProcessId>>> timelines(3);
  timelines[0] = {{5, 1}, {10, 2}};
  const auto h = history_from_timelines(3, 20, timelines);
  EXPECT_FALSE(h.suspects(0, 1, 4));
  EXPECT_TRUE(h.suspects(0, 1, 5));
  EXPECT_TRUE(h.suspects(0, 1, 19));
  EXPECT_TRUE(h.suspects(0, 2, 10));
  EXPECT_FALSE(h.suspects(1, 1, 19));
}

}  // namespace
}  // namespace rfd::red
