// Simulator tests: step semantics, determinism, fairness and delivery
// enforcement, crash handling, causal chains, trace validation, and the
// composition (framing) utilities.
#include <gtest/gtest.h>

#include "fd/perfect.hpp"
#include "model/environment.hpp"
#include "sim/composition.hpp"
#include "sim/simulator.hpp"

namespace rfd::sim {
namespace {

/// Test automaton: every process pings everyone once at start; each ping
/// is echoed back; processes count what they saw.
class PingPong final : public Automaton {
 public:
  explicit PingPong(ProcessId n) : n_(n) {}

  void on_start(Context& ctx) override {
    Writer w;
    w.u8(1);  // ping
    ctx.broadcast(w.data());
  }

  void on_step(Context& ctx, const Incoming* m) override {
    if (m == nullptr) return;
    Reader r(m->payload);
    const auto type = r.u8();
    if (type == 1) {
      ++pings_;
      Writer w;
      w.u8(2);  // pong
      ctx.send(m->src, std::move(w).take());
    } else {
      ++pongs_;
    }
  }

  int pings() const { return pings_; }
  int pongs() const { return pongs_; }

 private:
  ProcessId n_;
  int pings_ = 0;
  int pongs_ = 0;
};

std::vector<std::unique_ptr<Automaton>> ping_pong_fleet(ProcessId n) {
  std::vector<std::unique_ptr<Automaton>> out;
  for (ProcessId p = 0; p < n; ++p) {
    out.push_back(std::make_unique<PingPong>(n));
  }
  return out;
}

TEST(Simulator, AllMessagesDeliveredToCorrectProcesses) {
  const ProcessId n = 4;
  const auto pattern = model::all_correct(n);
  fd::PerfectOracle oracle(pattern, 1);
  Simulator sim(pattern, oracle, ping_pong_fleet(n),
                std::make_unique<RandomAdversary>(7));
  sim.run_for(2000);
  for (ProcessId p = 0; p < n; ++p) {
    const auto& a = dynamic_cast<PingPong&>(sim.automaton(p));
    EXPECT_EQ(a.pings(), n - 1) << "p" << p;
    EXPECT_EQ(a.pongs(), n - 1) << "p" << p;
  }
  // Every sent message was received (all destinations correct).
  const Trace& trace = sim.trace();
  for (MessageId m = 0; m < trace.num_messages(); ++m) {
    EXPECT_NE(trace.received_by(m), kNoEvent);
  }
}

TEST(Simulator, DeterministicReplay) {
  const ProcessId n = 4;
  const auto pattern = model::cascade(n, 2, 100, 50);
  auto run_once = [&]() {
    fd::PerfectOracle oracle(pattern, 5);
    Simulator sim(pattern, oracle, ping_pong_fleet(n),
                  std::make_unique<RandomAdversary>(99));
    sim.run_for(1500);
    std::string digest;
    for (EventId e = 0; e < sim.trace().num_events(); ++e) {
      const Event& ev = sim.trace().event(e);
      digest += std::to_string(ev.process) + ":" + std::to_string(ev.time) +
                ":" + std::to_string(ev.received) + ";";
    }
    return digest;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Simulator, CrashedProcessesNeverStep) {
  const ProcessId n = 3;
  const auto pattern = model::single_crash(n, 1, 40);
  fd::PerfectOracle oracle(pattern, 2);
  Simulator sim(pattern, oracle, ping_pong_fleet(n),
                std::make_unique<RandomAdversary>(3));
  sim.run_for(500);
  for (EventId e = 0; e < sim.trace().num_events(); ++e) {
    const Event& ev = sim.trace().event(e);
    if (ev.process == 1) {
      EXPECT_LT(ev.time, 40);
    }
  }
}

TEST(Simulator, FairnessBound) {
  const ProcessId n = 5;
  const auto pattern = model::all_correct(n);
  fd::PerfectOracle oracle(pattern, 2);
  AdversaryLimits limits;
  limits.starvation_bound = 32;
  SimConfig config;
  config.limits = limits;
  Simulator sim(pattern, oracle, ping_pong_fleet(n),
                std::make_unique<RandomAdversary>(12345), config);
  sim.run_for(3000);
  // Check gaps between consecutive steps of each process.
  std::vector<Tick> last(static_cast<std::size_t>(n), 0);
  for (EventId e = 0; e < sim.trace().num_events(); ++e) {
    const Event& ev = sim.trace().event(e);
    const auto idx = static_cast<std::size_t>(ev.process);
    EXPECT_LE(ev.time - last[idx], limits.starvation_bound + 1);
    last[idx] = ev.time;
  }
}

TEST(Simulator, DeliveryBound) {
  const ProcessId n = 3;
  const auto pattern = model::all_correct(n);
  fd::PerfectOracle oracle(pattern, 2);
  AdversaryLimits limits;
  limits.delivery_bound = 48;
  SimConfig config;
  config.limits = limits;
  Simulator sim(pattern, oracle, ping_pong_fleet(n),
                std::make_unique<RandomAdversary>(77, /*lambda_prob=*/0.9),
                config);
  sim.run_for(3000);
  const Trace& trace = sim.trace();
  for (MessageId m = 0; m < trace.num_messages(); ++m) {
    const EventId recv = trace.received_by(m);
    ASSERT_NE(recv, kNoEvent);
    const Tick latency = trace.event(recv).time - trace.message(m).sent_at;
    // The receiver steps at most starvation_bound after the message aged
    // out, so the bound is conservative.
    EXPECT_LE(latency, limits.delivery_bound + config.limits.starvation_bound +
                           2);
  }
}

TEST(Simulator, ChannelBlocksDelayDelivery) {
  const ProcessId n = 3;
  const auto pattern = model::all_correct(n);
  fd::PerfectOracle oracle(pattern, 2);
  SimConfig config;
  config.blocks.push_back({/*src=*/0, /*dst=*/1, /*until=*/500});
  Simulator sim(pattern, oracle, ping_pong_fleet(n),
                std::make_unique<RandomAdversary>(4), config);
  sim.run_for(1200);
  const Trace& trace = sim.trace();
  for (MessageId m = 0; m < trace.num_messages(); ++m) {
    const Message& msg = trace.message(m);
    if (msg.src == 0 && msg.dst == 1) {
      const EventId recv = trace.received_by(m);
      if (recv != kNoEvent) {
        EXPECT_GE(trace.event(recv).time, 500);
      }
    }
  }
}

TEST(Simulator, StepPausesHoldProcessesBack) {
  const ProcessId n = 3;
  const auto pattern = model::all_correct(n);
  fd::PerfectOracle oracle(pattern, 2);
  SimConfig config;
  config.pauses.push_back({/*p=*/2, /*from=*/0, /*until=*/300});
  Simulator sim(pattern, oracle, ping_pong_fleet(n),
                std::make_unique<RandomAdversary>(4), config);
  sim.run_for(900);
  bool p2_stepped_late = false;
  for (EventId e = 0; e < sim.trace().num_events(); ++e) {
    const Event& ev = sim.trace().event(e);
    if (ev.process == 2) {
      EXPECT_GE(ev.time, 300);
      p2_stepped_late = true;
    }
  }
  EXPECT_TRUE(p2_stepped_late);
}

TEST(Simulator, TraceValidatesAgainstModel) {
  const ProcessId n = 4;
  const auto pattern = model::cascade(n, 2, 60, 30);
  fd::PerfectOracle oracle(pattern, 9);
  Simulator sim(pattern, oracle, ping_pong_fleet(n),
                std::make_unique<RandomAdversary>(21));
  sim.run_for(2500);
  const auto result = sim.trace().validate(oracle);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Simulator, RunUntilPredicate) {
  const ProcessId n = 3;
  const auto pattern = model::all_correct(n);
  fd::PerfectOracle oracle(pattern, 1);
  Simulator sim(pattern, oracle, ping_pong_fleet(n),
                std::make_unique<RoundRobinAdversary>());
  const bool reached = sim.run_until(
      [](const Trace& t) { return t.num_messages() >= 6; }, 5000);
  EXPECT_TRUE(reached);
  EXPECT_GE(sim.trace().num_messages(), 6);
}

TEST(Trace, CausalChainCoversMessageSenders) {
  // p0 broadcasts at start; whoever receives it has p0 in its causal past.
  const ProcessId n = 3;
  const auto pattern = model::all_correct(n);
  fd::PerfectOracle oracle(pattern, 1);
  Simulator sim(pattern, oracle, ping_pong_fleet(n),
                std::make_unique<RoundRobinAdversary>());
  sim.run_for(400);
  const Trace& trace = sim.trace();
  bool checked = false;
  for (EventId e = 0; e < trace.num_events(); ++e) {
    const Event& ev = trace.event(e);
    if (ev.received != kNoMessage && trace.message(ev.received).src == 0) {
      EXPECT_TRUE(trace.causal_message_senders(e).contains(0));
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(Trace, CausalChainIsTransitive) {
  // A pong received by q from r, where r's pong was caused by q's ping...
  // any event receiving a message has the sender's *whole* prior causal
  // context, including messages the sender had received.
  const ProcessId n = 4;
  const auto pattern = model::all_correct(n);
  fd::PerfectOracle oracle(pattern, 1);
  Simulator sim(pattern, oracle, ping_pong_fleet(n),
                std::make_unique<RandomAdversary>(31));
  sim.run_for(2000);
  const Trace& trace = sim.trace();
  // Find an event late in the run that received a message; its causal past
  // should span several processes.
  for (EventId e = trace.num_events() - 1; e >= 0; --e) {
    const Event& ev = trace.event(e);
    if (ev.received != kNoMessage && ev.time > 500) {
      const auto senders = trace.causal_message_senders(e);
      EXPECT_GE(senders.count(), 2);
      break;
    }
  }
}

TEST(Composition, FrameRoundTrip) {
  Bytes inner{std::byte{0xAA}, std::byte{0xBB}};
  const Bytes outer = frame(42, inner);
  const auto [tag, recovered] = unframe(outer);
  EXPECT_EQ(tag, 42);
  EXPECT_EQ(recovered, inner);
}

TEST(Composition, NestedFrames) {
  Bytes inner{std::byte{1}};
  const Bytes outer = frame(1, frame(2, inner));
  auto [t1, mid] = unframe(outer);
  auto [t2, core] = unframe(mid);
  EXPECT_EQ(t1, 1);
  EXPECT_EQ(t2, 2);
  EXPECT_EQ(core, inner);
}

}  // namespace
}  // namespace rfd::sim
