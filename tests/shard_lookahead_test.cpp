// Delay-lookahead window coalescing must be invisible: for any
// (shards, lookahead_windows) pair the run is the same pure function of
// (config, seed) - field-identical reports and byte-identical JSONL
// traces. Local evaluation still happens at every check tick, so the
// plan only changes how often shards meet at the barrier, never what
// they compute (see cluster/engine.cpp for the safety argument). These
// tests pin that against the scenario library's fault timelines - slow
// factors shrink the usable delay floor, flapping links exercise the
// buffered-barrier bound - and then prove on a sparse configuration that
// coalescing actually engages (fewer barrier meets, same results).
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "cluster/engine.hpp"
#include "obs/profile.hpp"
#include "scenario_test_util.hpp"

namespace rfd::cluster {
namespace {

using testutil::report_fingerprint;

std::string temp_trace_path(const char* tag, int shards, int lookahead) {
  std::ostringstream ss;
  ss << ::testing::TempDir() << "/rfd_lookahead_" << tag << "_" << shards
     << "_" << lookahead << ".jsonl";
  return ss.str();
}

/// Runs the full (shards x lookahead) grid; every cell must reproduce
/// the shards=1, lookahead=1 baseline exactly.
void expect_lookahead_invariant(ClusterConfig config, std::uint64_t seed,
                                const char* tag) {
  std::string baseline_report;
  std::string baseline_trace;
  bool have_baseline = false;
  for (const int shards : {1, 2, 4}) {
    for (const int lookahead : {1, 32}) {
      config.shards = shards;
      config.lookahead_windows = lookahead;
      const std::string path = temp_trace_path(tag, shards, lookahead);
      config.obs.trace_path = path;
      config.obs.snapshot_every_ticks = 10;
      const ClusterReport report = run_cluster(config, seed);
      EXPECT_EQ(report.trace_dropped, 0);
      const std::string fingerprint = report_fingerprint(report);
      const std::string trace = testutil::read_file(path);
      std::remove(path.c_str());
      ASSERT_FALSE(trace.empty());
      if (!have_baseline) {
        baseline_report = fingerprint;
        baseline_trace = trace;
        have_baseline = true;
        continue;
      }
      EXPECT_EQ(fingerprint, baseline_report)
          << tag << ": report diverged at shards=" << shards
          << " lookahead=" << lookahead;
      EXPECT_EQ(trace, baseline_trace)
          << tag << ": trace bytes diverged at shards=" << shards
          << " lookahead=" << lookahead;
    }
  }
}

void expect_scenario_file_lookahead_invariant(const char* file,
                                              const char* tag) {
  const ScenarioDoc doc = testutil::load_doc(file);
  ASSERT_FALSE(doc.scenario.events.empty()) << file;
  const ClusterConfig config = testutil::scenario_cluster_config(doc);
  expect_lookahead_invariant(config, 20020623ull, tag);
}

TEST(ShardLookahead, SlowNodesScenarioIsLookaheadInvariant) {
  // Slow factors are the delay floor's hairiest input: the plan must use
  // the scenario-wide minimum factor, not the current one.
  expect_scenario_file_lookahead_invariant("slow_nodes.scn", "slow");
}

TEST(ShardLookahead, FlappingLinksScenarioIsLookaheadInvariant) {
  expect_scenario_file_lookahead_invariant("flapping_links.scn", "flap");
}

TEST(ShardLookahead, CrashChurnIsLookaheadInvariant) {
  ClusterConfig config;
  config.n = 16;
  config.max_nodes = 17;
  config.topology.kind = TopologyKind::kGossip;
  config.topology.digest_size = 16;
  config.detector.kind = rt::DetectorKind::kChen;
  config.detector.chen.alpha_ms = 400.0;
  config.duration_ms = 12'000.0;
  config.scenario.crash(3'000.0, 5).join(6'000.0, 16).leave(9'000.0, 2);
  expect_lookahead_invariant(config, 7ull, "churn");
}

std::int64_t sync_calls(const ClusterReport& report) {
  std::int64_t calls = 0;
  for (const obs::PhaseStat& stat : report.profile) {
    if (stat.phase == "sync") calls += stat.calls;
  }
  return calls;
}

TEST(ShardLookahead, SparseTrafficActuallyCoalesces) {
  // A heartbeat period many check windows long leaves most exchange
  // points with nothing in flight; the planner must stretch epochs to
  // the lookahead cap. The kSync phase times every barrier meet
  // exactly (always-sampled), so its call count is a direct epoch
  // counter: the capped run must meet far less often than lookahead=1,
  // while the report stays field-identical.
  ClusterConfig config;
  config.n = 8;
  config.topology.kind = TopologyKind::kGossip;
  config.topology.digest_size = 8;
  config.detector.kind = rt::DetectorKind::kChen;
  config.detector.chen.alpha_ms = 4'000.0;
  config.heartbeat_interval_ms = 2'000.0;
  config.check_interval_ms = 50.0;
  config.duration_ms = 10'000.0;
  config.shards = 2;
  config.obs.profile = true;

  config.lookahead_windows = 1;
  const ClusterReport dense = run_cluster(config, 11ull);
  config.lookahead_windows = 32;
  const ClusterReport sparse = run_cluster(config, 11ull);

  EXPECT_EQ(report_fingerprint(sparse), report_fingerprint(dense));
  const std::int64_t dense_calls = sync_calls(dense);
  const std::int64_t sparse_calls = sync_calls(sparse);
  ASSERT_GT(dense_calls, 0);
  ASSERT_GT(sparse_calls, 0);
  // 200 check windows; the dense run meets at every one, the coalesced
  // run should collapse the idle stretches by several-fold at least.
  EXPECT_LT(sparse_calls * 3, dense_calls)
      << "lookahead failed to coalesce: " << sparse_calls << " vs "
      << dense_calls << " sync scopes";
}

}  // namespace
}  // namespace rfd::cluster
