// Deterministic scenario fuzzer: 64 seed-derived fault timelines, each
// generated as scenario DSL text (the generator only emits well-formed
// phases, so parse failures are themselves bugs), run against a live
// cluster, and checked for engine invariants:
//
//   - counters never go negative and the trace sink never drops;
//   - the run's QoS re-derived offline from the trace (obs::replay_qos)
//     matches the live report bit-for-bit - detection latency count,
//     mean and percentiles, false suspicions, raises and clears.
//
// No libFuzzer, no corpus: the 64 inputs are a pure function of their
// seed, so a failure reproduces anywhere from the seed number alone.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/engine.hpp"
#include "cluster/scenario_dsl.hpp"
#include "common/rng.hpp"
#include "obs/replay.hpp"
#include "scenario_test_util.hpp"

namespace rfd::cluster {
namespace {

/// Generates one well-formed scenario script: a random number of
/// self-contained fault phases on non-overlapping time windows, over a
/// random cluster size. Every open state (partition, block, slowdown,
/// storm) is closed by the phase that opened it, so the text always
/// passes Scenario::check() - what is being fuzzed is the engine's
/// behavior under fault composition, not the parser's rejection paths
/// (those are scenario_dsl_test's job).
std::string generate_scenario(std::uint64_t seed) {
  Rng rng(mix_seed(0xf022, seed));
  const int n = static_cast<int>(rng.range(16, 32));
  const int spares = static_cast<int>(rng.range(0, 3));
  std::string text = "name \"fuzz " + std::to_string(seed) + "\"\n";
  text += "config n=" + std::to_string(n) +
          " max_nodes=" + std::to_string(n + spares) +
          " duration=10000\n";

  std::vector<bool> gone(static_cast<std::size_t>(n), false);
  auto pick_alive = [&]() -> int {
    for (int tries = 0; tries < 64; ++tries) {
      const int node = static_cast<int>(rng.below(n));
      if (!gone[static_cast<std::size_t>(node)]) return node;
    }
    return -1;
  };

  int joined = 0;
  double t = 800.0 + static_cast<double>(rng.range(0, 400));
  const int phases = static_cast<int>(rng.range(2, 5));
  for (int phase = 0; phase < phases && t < 8'000.0; ++phase) {
    const double span = static_cast<double>(rng.range(800, 2'000));
    const auto from = std::to_string(static_cast<std::int64_t>(t));
    const auto to = std::to_string(static_cast<std::int64_t>(t + span));
    const auto mid =
        std::to_string(static_cast<std::int64_t>(t + span / 2.0));
    switch (rng.below(8)) {
      case 0: {  // crash, sometimes with recovery
        const int node = pick_alive();
        if (node < 0) break;
        text += "crash at=" + from + " node=" + std::to_string(node) + "\n";
        if (rng.chance(0.5)) {
          text += "recover at=" + to + " node=" + std::to_string(node) + "\n";
        } else {
          gone[static_cast<std::size_t>(node)] = true;
        }
        break;
      }
      case 1: {  // split in half, heal
        const int cut = static_cast<int>(rng.range(1, n - 1));
        text += "partition at=" + from + " groups=0-" +
                std::to_string(cut - 1) + "|" + std::to_string(cut) + "-" +
                std::to_string(n - 1) + "\n";
        text += "heal at=" + to + "\n";
        break;
      }
      case 2: {  // one-way cut, lifted
        const int a = static_cast<int>(rng.below(n / 2));
        const int b = static_cast<int>(rng.range(n / 2, n - 1));
        const std::string sets =
            " from=" + std::to_string(a) + " to=" + std::to_string(b);
        text += "link_down at=" + from + sets + "\n";
        text += "link_up at=" + to + sets + "\n";
        break;
      }
      case 3: {  // slow-but-alive episode
        const int node = pick_alive();
        if (node < 0) break;
        text += "slow at=" + from + " node=" + std::to_string(node) +
                " factor=" + std::to_string(rng.range(2, 8)) + "\n";
        text += "slow_end at=" + to + " node=" + std::to_string(node) + "\n";
        break;
      }
      case 4:
        text += "delay_storm from=" + from + " to=" + to +
                " extra=" + std::to_string(rng.range(100, 800)) +
                " prob=0.5\n";
        break;
      case 5: {
        const int a = static_cast<int>(rng.below(n / 2));
        const int b = static_cast<int>(rng.range(n / 2, n - 1));
        text += "flap from=" + from + " to=" + to +
                " period=" + std::to_string(rng.range(300, 700)) +
                " duty=0.5 a=" + std::to_string(a) + " b=" +
                std::to_string(b) + "\n";
        break;
      }
      case 6:
        text += "overload from=" + from + " to=" + to +
                " steps=" + std::to_string(rng.range(2, 4)) +
                " extra=" + std::to_string(rng.range(500, 2'000)) +
                " prob=0.7\n";
        break;
      case 7: {  // churn: fresh id joins, an alive node leaves
        std::string stmt = "churn from=" + from + " to=" + to;
        bool any = false;
        if (joined < spares) {
          stmt += " join=" + std::to_string(n + joined);
          ++joined;
          any = true;
        }
        const int node = pick_alive();
        if (node >= 0 && rng.chance(0.7)) {
          stmt += " leave=" + std::to_string(node);
          gone[static_cast<std::size_t>(node)] = true;
          any = true;
        }
        if (any) text += stmt + "\n";
        break;
      }
    }
    (void)mid;
    t += span + static_cast<double>(rng.range(100, 500));
  }
  return text;
}

TEST(ScenarioFuzz, GeneratedTimelinesKeepEngineInvariants) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const std::string text = generate_scenario(seed);
    ScenarioDoc doc;
    DslError err;
    ASSERT_TRUE(parse_scenario(text, DslContext{}, doc, err))
        << "seed " << seed << ": " << err.to_string() << "\n" << text;
    ASSERT_TRUE(doc.scenario.validate().empty()) << "seed " << seed;

    ClusterConfig config = testutil::scenario_cluster_config(doc);
    const std::string path = ::testing::TempDir() + "/rfd_fuzz_" +
                             std::to_string(seed) + ".jsonl";
    config.obs.trace_path = path;
    const ClusterReport live = run_cluster(config, mix_seed(seed, 0xdef));

    // Counter invariants: nothing the engine tallies may go negative,
    // and the bounded trace queue must never have dropped a record
    // (a lossy trace would make the replay check below meaningless).
    EXPECT_GT(live.messages_sent, 0) << "seed " << seed;
    EXPECT_GE(live.messages_dropped, 0) << "seed " << seed;
    EXPECT_GE(live.partition_dropped, 0) << "seed " << seed;
    EXPECT_GE(live.false_suspicions, 0) << "seed " << seed;
    EXPECT_GE(live.suspicion_raises, 0) << "seed " << seed;
    EXPECT_GE(live.suspicion_clears, 0) << "seed " << seed;
    EXPECT_GE(live.suspicion_raises, live.suspicion_clears)
        << "seed " << seed << ": more clears than raises";
    EXPECT_GE(live.missed_detections, 0) << "seed " << seed;
    EXPECT_GE(live.disruptions, live.unconverged_disruptions)
        << "seed " << seed;
    ASSERT_EQ(live.trace_dropped, 0) << "seed " << seed;

    // Report totals must match an offline replay of the trace.
    const obs::ReplayQos replayed = obs::replay_qos(path);
    std::remove(path.c_str());
    ASSERT_TRUE(replayed.ok) << "seed " << seed << ": " << replayed.error;
    EXPECT_EQ(replayed.lost_records, 0) << "seed " << seed;
    EXPECT_EQ(replayed.detection_latency_ms.count(),
              live.detection_latency_ms.count())
        << "seed " << seed;
    if (live.detection_latency_ms.count() > 0) {  // mean of none is NaN
      EXPECT_EQ(replayed.detection_latency_ms.mean(),
                live.detection_latency_ms.mean())
          << "seed " << seed;
      EXPECT_EQ(replayed.detection_latency_ms.percentile(0.5),
                live.detection_latency_ms.percentile(0.5))
          << "seed " << seed;
      EXPECT_EQ(replayed.detection_latency_ms.percentile(0.99),
                live.detection_latency_ms.percentile(0.99))
          << "seed " << seed;
    }
    EXPECT_EQ(replayed.false_suspicions, live.false_suspicions)
        << "seed " << seed;
    EXPECT_EQ(replayed.suspicion_raises, live.suspicion_raises)
        << "seed " << seed;
    EXPECT_EQ(replayed.suspicion_clears, live.suspicion_clears)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace rfd::cluster
