// Checkpoint format and soak crash-resume tests: files round-trip,
// corruption in any byte is caught by the CRC trailer, foreign configs
// are refused, and a killed-and-resumed sim-backend soak produces the
// exact outcome an uninterrupted run does.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/scenario.hpp"
#include "common/shutdown.hpp"
#include "transport/checkpoint.hpp"
#include "transport/soak.hpp"

namespace rfd::transport {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "rfd_" + name + "_" +
         std::to_string(::getpid());
}

CheckpointData sample_data() {
  CheckpointData data;
  data.config_fingerprint = 0x1122334455667788ull;
  data.tick = 1234;
  data.now_ms = 123400.0;
  for (int i = 0; i < 257; ++i) {
    data.payload.push_back(static_cast<std::uint8_t>(i * 7));
  }
  return data;
}

TEST(CheckpointFile, RoundTripsAllFields) {
  const std::string path = temp_path("roundtrip");
  const CheckpointData in = sample_data();
  std::string error;
  ASSERT_TRUE(write_checkpoint(path, in, error)) << error;

  CheckpointData out;
  ASSERT_TRUE(read_checkpoint(path, in.config_fingerprint, out, error))
      << error;
  EXPECT_EQ(out.config_fingerprint, in.config_fingerprint);
  EXPECT_EQ(out.tick, in.tick);
  EXPECT_DOUBLE_EQ(out.now_ms, in.now_ms);
  EXPECT_EQ(out.payload, in.payload);
  std::remove(path.c_str());
}

TEST(CheckpointFile, RejectsCorruption) {
  const std::string path = temp_path("corrupt");
  const CheckpointData in = sample_data();
  std::string error;
  ASSERT_TRUE(write_checkpoint(path, in, error)) << error;

  // Flip one payload byte in place; the CRC trailer must catch it.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 60, SEEK_SET);
  const int byte = std::fgetc(f);
  std::fseek(f, 60, SEEK_SET);
  std::fputc(byte ^ 0xff, f);
  std::fclose(f);

  CheckpointData out;
  EXPECT_FALSE(read_checkpoint(path, in.config_fingerprint, out, error));
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(CheckpointFile, RejectsTruncation) {
  const std::string path = temp_path("truncate");
  const CheckpointData in = sample_data();
  std::string error;
  ASSERT_TRUE(write_checkpoint(path, in, error)) << error;

  // Drop the tail (as a torn write would); re-write the file shorter.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<std::uint8_t> bytes(4096);
  const std::size_t n = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  ASSERT_GT(n, 100u);
  f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, n - 40, f);
  std::fclose(f);

  CheckpointData out;
  EXPECT_FALSE(read_checkpoint(path, in.config_fingerprint, out, error));
  std::remove(path.c_str());
}

TEST(CheckpointFile, RejectsHeaderStub) {
  const std::string path = temp_path("stub");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("RFDC", 1, 4, f);
  std::fclose(f);
  CheckpointData out;
  std::string error;
  EXPECT_FALSE(read_checkpoint(path, 0, out, error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(CheckpointFile, RejectsForeignFingerprint) {
  const std::string path = temp_path("foreign");
  const CheckpointData in = sample_data();
  std::string error;
  ASSERT_TRUE(write_checkpoint(path, in, error)) << error;
  CheckpointData out;
  EXPECT_FALSE(read_checkpoint(path, in.config_fingerprint + 1, out, error));
  EXPECT_NE(error.find("different configuration"), std::string::npos)
      << error;
  // Fingerprint 0 = caller opts out of the check.
  EXPECT_TRUE(read_checkpoint(path, 0, out, error)) << error;
  std::remove(path.c_str());
}

TEST(CheckpointFile, MissingFileReportsError) {
  CheckpointData out;
  std::string error;
  EXPECT_FALSE(
      read_checkpoint(temp_path("never_written"), 0, out, error));
  EXPECT_FALSE(error.empty());
}

// --- soak resume -----------------------------------------------------

SoakConfig base_soak_config() {
  SoakConfig config;
  config.n = 10;
  config.seed = 20020623;
  config.tick_ms = 100.0;
  config.duration_ms = 24'000.0;
  config.network.loss_prob = 0.03;
  config.detector.kind = rt::DetectorKind::kFixed;
  config.detector.fixed.timeout_ms = 1'000.0;
  config.scenario.crash(4'000.0, 2)
      .partition(8'000.0, {{0, 1, 3, 4}, {5, 6, 7, 8, 9}})
      .heal(12'000.0)
      .recover(14'000.0, 2)
      .crash(18'000.0, 7);
  return config;
}

TEST(SoakResume, MatchesUninterruptedRun) {
  reset_shutdown();
  SoakConfig full = base_soak_config();
  SoakReport uninterrupted;
  std::string error;
  ASSERT_TRUE(run_soak(full, uninterrupted, error)) << error;
  // The timeline must actually exercise detection for this test to
  // mean anything.
  ASSERT_GT(uninterrupted.raises, 0);
  ASSERT_GT(uninterrupted.detection.count(), 0);

  const std::string ckpt = temp_path("resume");
  SoakConfig first_leg = base_soak_config();
  first_leg.duration_ms = 11'000.0;  // killed mid-partition
  first_leg.checkpoint_path = ckpt;
  first_leg.checkpoint_every_ms = 3'000.0;
  SoakReport half;
  ASSERT_TRUE(run_soak(first_leg, half, error)) << error;
  ASSERT_GT(half.checkpoints_written, 0);

  SoakConfig second_leg = base_soak_config();
  second_leg.checkpoint_path = ckpt;
  second_leg.resume = true;
  SoakReport resumed;
  ASSERT_TRUE(run_soak(second_leg, resumed, error)) << error;
  EXPECT_TRUE(resumed.resumed);

  EXPECT_EQ(resumed.outcome_fingerprint, uninterrupted.outcome_fingerprint);
  EXPECT_EQ(resumed.raises, uninterrupted.raises);
  EXPECT_EQ(resumed.clears, uninterrupted.clears);
  EXPECT_EQ(resumed.false_suspicions, uninterrupted.false_suspicions);
  EXPECT_EQ(resumed.missed, uninterrupted.missed);
  EXPECT_EQ(resumed.transport.sent, uninterrupted.transport.sent);
  EXPECT_EQ(resumed.transport.delivered, uninterrupted.transport.delivered);
  EXPECT_EQ(resumed.transport.dropped, uninterrupted.transport.dropped);
  EXPECT_EQ(resumed.detection.count(), uninterrupted.detection.count());
  EXPECT_EQ(resumed.final_agreement, uninterrupted.final_agreement);
  std::remove(ckpt.c_str());
}

TEST(SoakResume, RefusesForeignConfig) {
  reset_shutdown();
  const std::string ckpt = temp_path("foreign_cfg");
  SoakConfig config = base_soak_config();
  config.duration_ms = 3'000.0;
  config.checkpoint_path = ckpt;
  config.checkpoint_every_ms = 1'000.0;
  SoakReport report;
  std::string error;
  ASSERT_TRUE(run_soak(config, report, error)) << error;

  SoakConfig other = base_soak_config();
  other.seed = config.seed + 1;  // any run-defining change
  other.checkpoint_path = ckpt;
  other.resume = true;
  SoakReport resumed;
  EXPECT_FALSE(run_soak(other, resumed, error));
  EXPECT_NE(error.find("different configuration"), std::string::npos)
      << error;
  std::remove(ckpt.c_str());
}

TEST(SoakResume, ResumeWithoutCheckpointFails) {
  reset_shutdown();
  SoakConfig config = base_soak_config();
  config.checkpoint_path = temp_path("missing_ckpt");
  config.resume = true;
  SoakReport report;
  std::string error;
  EXPECT_FALSE(run_soak(config, report, error));
  EXPECT_FALSE(error.empty());
}

TEST(SoakShutdown, StopsAtNextTickAndStillCheckpoints) {
  reset_shutdown();
  const std::string ckpt = temp_path("sig_ckpt");
  SoakConfig config = base_soak_config();
  config.checkpoint_path = ckpt;
  config.checkpoint_every_ms = 5'000.0;
  request_shutdown();  // flag already set: the loop must exit on tick 1
  SoakReport report;
  std::string error;
  ASSERT_TRUE(run_soak(config, report, error)) << error;
  reset_shutdown();
  EXPECT_TRUE(report.stopped_by_signal);
  EXPECT_EQ(report.ticks_run, 0);
  EXPECT_EQ(report.checkpoints_written, 0);  // nothing ran, nothing saved

  // A shutdown arriving mid-run leaves a resumable final checkpoint.
  SoakReport fresh;
  SoakConfig first = base_soak_config();
  first.duration_ms = 6'000.0;
  first.checkpoint_path = ckpt;
  first.checkpoint_every_ms = 100'000.0;  // only the exit snapshot
  ASSERT_TRUE(run_soak(first, fresh, error)) << error;
  EXPECT_EQ(fresh.checkpoints_written, 1);
  SoakConfig second = base_soak_config();
  second.checkpoint_path = ckpt;
  second.resume = true;
  SoakReport resumed;
  ASSERT_TRUE(run_soak(second, resumed, error)) << error;
  EXPECT_TRUE(resumed.resumed);
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace rfd::transport
