// Tests for the formal model: failure patterns, pattern agreement (the
// similarity notion of the realism definition), views, and environments.
#include <gtest/gtest.h>

#include "model/environment.hpp"
#include "model/failure_pattern.hpp"

namespace rfd::model {
namespace {

TEST(FailurePattern, CrashSetsAreMonotone) {
  FailurePattern f(5);
  f.crash_at(1, 10);
  f.crash_at(3, 20);
  EXPECT_EQ(f.crashed_by(5), ProcessSet(5));
  EXPECT_EQ(f.crashed_by(10), ProcessSet::of(5, {1}));
  EXPECT_EQ(f.crashed_by(19), ProcessSet::of(5, {1}));
  EXPECT_EQ(f.crashed_by(20), ProcessSet::of(5, {1, 3}));
  EXPECT_EQ(f.crashed_by(1'000'000), ProcessSet::of(5, {1, 3}));
}

TEST(FailurePattern, CorrectAndFaulty) {
  FailurePattern f(4);
  f.crash_at(0, 3);
  EXPECT_EQ(f.correct(), ProcessSet::of(4, {1, 2, 3}));
  EXPECT_EQ(f.faulty(), ProcessSet::of(4, {0}));
  EXPECT_EQ(f.num_faulty(), 1);
}

TEST(FailurePattern, AliveAt) {
  FailurePattern f(3);
  f.crash_at(2, 7);
  EXPECT_TRUE(f.is_alive_at(2, 6));
  EXPECT_FALSE(f.is_alive_at(2, 7));  // no action at or after the crash tick
  EXPECT_EQ(f.alive_at(7), ProcessSet::of(3, {0, 1}));
}

TEST(FailurePattern, AgreementUpToTime) {
  // The paper's Section 3.2.2 example: F1 has p0 crash at 10, F2 is all
  // correct; they agree up to 9 and disagree from 10 on.
  const FailurePattern f1 = single_crash(4, 0, 10);
  const FailurePattern f2 = all_correct(4);
  EXPECT_TRUE(f1.agrees_up_to(f2, 9));
  EXPECT_FALSE(f1.agrees_up_to(f2, 10));
  EXPECT_EQ(f1.divergence_tick(f2), 10);
  EXPECT_EQ(f1.divergence_tick(f1), kNever);
}

TEST(FailurePattern, AgreementWithDifferentCrashTimes) {
  FailurePattern a(3), b(3);
  a.crash_at(1, 50);
  b.crash_at(1, 60);
  EXPECT_TRUE(a.agrees_up_to(b, 49));
  EXPECT_FALSE(a.agrees_up_to(b, 50));
}

TEST(PastView, RefusesTheFuture) {
  const FailurePattern f = single_crash(3, 0, 10);
  PastView view(f, 5);
  EXPECT_EQ(view.crashed_by(5).count(), 0);
  EXPECT_EQ(view.crash_tick_if_past(0), kNever);  // not crashed *yet*
  EXPECT_DEATH(view.crashed_by(6), "future");
}

TEST(PastView, SeesThePast) {
  const FailurePattern f = single_crash(3, 0, 10);
  PastView view(f, 20);
  EXPECT_TRUE(view.has_crashed_by(0, 15));
  EXPECT_EQ(view.crash_tick_if_past(0), 10);
  EXPECT_EQ(view.crashed_by(20), ProcessSet::of(3, {0}));
}

TEST(FullView, SeesTheFuture) {
  const FailurePattern f = single_crash(3, 0, 10);
  FullView view(f);
  EXPECT_EQ(view.faulty(), ProcessSet::of(3, {0}));
  EXPECT_EQ(view.correct(), ProcessSet::of(3, {1, 2}));
}

TEST(Environment, AllButOne) {
  const FailurePattern f = all_but_one_crash(5, 2, 30);
  EXPECT_EQ(f.correct(), ProcessSet::of(5, {2}));
  EXPECT_EQ(f.crashed_by(30).count(), 4);
  EXPECT_EQ(f.crashed_by(29).count(), 0);
}

TEST(Environment, Cascade) {
  const FailurePattern f = cascade(6, 3, 10, 5);
  EXPECT_EQ(f.crash_tick(0), 10);
  EXPECT_EQ(f.crash_tick(1), 15);
  EXPECT_EQ(f.crash_tick(2), 20);
  EXPECT_EQ(f.crash_tick(3), kNever);
}

TEST(Environment, RandomCrashesCount) {
  Rng rng(5);
  for (ProcessId k = 0; k <= 4; ++k) {
    const FailurePattern f = random_crashes(4, k, 100, rng);
    EXPECT_EQ(f.num_faulty(), k);
  }
}

TEST(Environment, SweepComposition) {
  PatternSweep sweep(4, 99);
  sweep.with_all_correct()
      .with_single_crashes({0, 10})
      .with_all_but_one(20)
      .with_random(5, 1, 3, 50);
  // 1 + 4*2 + 4 + 5
  EXPECT_EQ(sweep.patterns().size(), 18u);
  for (const auto& f : sweep.patterns()) {
    EXPECT_EQ(f.n(), 4);
  }
}

TEST(Environment, SweepIsDeterministic) {
  PatternSweep a(5, 123), b(5, 123);
  a.with_random(10, 0, 4, 100);
  b.with_random(10, 0, 4, 100);
  for (std::size_t i = 0; i < a.patterns().size(); ++i) {
    EXPECT_TRUE(a.patterns()[i] == b.patterns()[i]);
  }
}

}  // namespace
}  // namespace rfd::model
