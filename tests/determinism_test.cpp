// Determinism tests across every layer: identical seeds must reproduce
// identical histories, traces, QoS results and membership outcomes. The
// experiment tables in EXPERIMENTS.md are only citable because of this.
#include <gtest/gtest.h>

#include "core/api.hpp"

namespace rfd {
namespace {

TEST(Determinism, OracleHistoriesReplay) {
  const auto pattern = model::cascade(5, 2, 30, 40);
  for (const auto& spec : fd::standard_detectors()) {
    const auto a = fd::sample_history(*spec.factory(pattern, 42), 150);
    const auto b = fd::sample_history(*spec.factory(pattern, 42), 150);
    EXPECT_TRUE(a.prefix_equal(b, 149)) << spec.name;
  }
}

TEST(Determinism, OracleQueriesAreOrderIndependent) {
  // H(p, t) must not depend on which queries were issued before: query in
  // forward and backward tick order and compare.
  const auto pattern = model::single_crash(4, 2, 50);
  for (const auto& spec : fd::standard_detectors()) {
    const auto oracle = spec.factory(pattern, 7);
    std::vector<fd::FdValue> forward;
    for (Tick t = 0; t < 100; ++t) forward.push_back(oracle->query(1, t));
    for (Tick t = 99; t >= 0; --t) {
      EXPECT_EQ(oracle->query(1, t), forward[static_cast<std::size_t>(t)])
          << spec.name << " at t=" << t;
    }
  }
}

sim::Trace consensus_trace(std::uint64_t seed) {
  const auto pattern = model::cascade(5, 2, 100, 150);
  const auto oracle = fd::find_detector("P").factory(pattern, seed);
  std::vector<std::unique_ptr<sim::Automaton>> automata;
  for (ProcessId p = 0; p < 5; ++p) {
    automata.push_back(std::make_unique<algo::CtStrongConsensus>(5, 100 + p));
  }
  sim::Simulator sim(pattern, *oracle, std::move(automata),
                     std::make_unique<sim::RandomAdversary>(seed));
  sim.run_for(4000);
  // Digest: every event's identity plus every message's payload bytes.
  sim::Trace trace = sim.trace();
  return trace;
}

std::string trace_digest(const sim::Trace& trace) {
  std::string out;
  for (EventId e = 0; e < trace.num_events(); ++e) {
    const auto& ev = trace.event(e);
    out += std::to_string(ev.process) + "." + std::to_string(ev.time) + "." +
           std::to_string(ev.received) + ";";
  }
  for (MessageId m = 0; m < trace.num_messages(); ++m) {
    const auto& msg = trace.message(m);
    out += std::to_string(msg.src) + ">" + std::to_string(msg.dst) + ":" +
           std::to_string(msg.payload.size()) + ";";
  }
  for (const auto& d : trace.decisions()) {
    out += "d" + std::to_string(d.process) + "=" + std::to_string(d.value) +
           "@" + std::to_string(d.time) + ";";
  }
  return out;
}

TEST(Determinism, ConsensusTracesReplayExactly) {
  EXPECT_EQ(trace_digest(consensus_trace(9)), trace_digest(consensus_trace(9)));
}

TEST(Determinism, DifferentSeedsDiverge) {
  EXPECT_NE(trace_digest(consensus_trace(9)), trace_digest(consensus_trace(10)));
}

TEST(Determinism, QosResultsReplay) {
  rt::QosConfig config;
  config.crash_at_ms = 20'000.0;
  config.duration_ms = 30'000.0;
  const auto a = rt::run_qos_experiment(config, 5);
  const auto b = rt::run_qos_experiment(config, 5);
  EXPECT_EQ(a.detection_time_ms, b.detection_time_ms);
  EXPECT_EQ(a.false_transitions, b.false_transitions);
  EXPECT_EQ(a.query_accuracy, b.query_accuracy);
  EXPECT_EQ(a.heartbeats_sent, b.heartbeats_sent);
}

TEST(Determinism, MembershipReplay) {
  rt::MembershipConfig config;
  config.n = 5;
  config.crash_at_ms = std::vector<double>(5, -1.0);
  config.crash_at_ms[2] = 8'000.0;
  config.duration_ms = 20'000.0;
  const auto a = rt::run_membership_experiment(config, 3);
  const auto b = rt::run_membership_experiment(config, 3);
  EXPECT_EQ(a.exclusions, b.exclusions);
  EXPECT_EQ(a.false_exclusions, b.false_exclusions);
  EXPECT_EQ(a.final_view, b.final_view);
  EXPECT_EQ(a.converged, b.converged);
}

TEST(Determinism, SolvabilityVerdictsReplay) {
  const auto patterns = core::standard_patterns(4, 3, 1, 800, 2);
  core::EvalConfig config;
  config.horizon = 4000;
  config.schedule_seeds = 1;
  const auto a = core::evaluate_algorithm(
      fd::find_detector("P"), core::AlgoKind::kCtStrong,
      core::SpecKind::kUniformConsensus, patterns, config);
  const auto b = core::evaluate_algorithm(
      fd::find_detector("P"), core::AlgoKind::kCtStrong,
      core::SpecKind::kUniformConsensus, patterns, config);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.runs, b.runs);
}

TEST(Determinism, PatternSweepsReplay) {
  const auto a = core::standard_patterns(6, 5, 77, 1000, 8);
  const auto b = core::standard_patterns(6, 5, 77, 1000, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]);
  }
}

}  // namespace
}  // namespace rfd
