// Tests for the realism property (Section 3): the realistic zoo passes the
// behavioural check, the clairvoyant detectors fail it on the paper's own
// counterexample pair, and realism is visible structurally through the
// oracle hierarchy.
#include <gtest/gtest.h>

#include "fd/marabout.hpp"
#include "fd/realism.hpp"
#include "fd/registry.hpp"
#include "model/environment.hpp"

namespace rfd::fd {
namespace {

std::vector<std::uint64_t> seeds() { return {1, 2, 3, 4, 5, 6, 7, 8}; }

class RealismSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(RealismSuite, BehaviouralCheckMatchesConstruction) {
  const DetectorSpec& spec = find_detector(GetParam());
  const RealismReport report = check_realism_suite(spec.factory, 5, seeds());
  EXPECT_EQ(report.realistic, spec.realistic) << report.counterexample;
}

INSTANTIATE_TEST_SUITE_P(Zoo, RealismSuite,
                         ::testing::Values("P", "Scribe", "<>P", "<>S", "P<",
                                           "Omega", "Marabout", "S(cheat)"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) {
                               ch = '_';
                             }
                           }
                           return name;
                         });

TEST(Realism, MaraboutFailsThePaperPair) {
  // Section 3.2.2 verbatim: F1 = p0 crashes at 10, F2 = all correct. Up to
  // t=9 the patterns agree, but M(F1) says {p0} from time 0 while every
  // history of M(F2) says {} - no prefix can match.
  const auto f1 = model::single_crash(4, 0, 10);
  const auto f2 = model::all_correct(4);
  const auto report = check_realism_pair(make_marabout_factory(), f1, f2,
                                         /*agree_until=*/9, seeds());
  EXPECT_FALSE(report.realistic);
  EXPECT_FALSE(report.counterexample.empty());
}

TEST(Realism, PerfectPassesThePaperPair) {
  const auto f1 = model::single_crash(4, 0, 10);
  const auto f2 = model::all_correct(4);
  const auto report = check_realism_pair(find_detector("P").factory, f1, f2,
                                         /*agree_until=*/9, seeds());
  EXPECT_TRUE(report.realistic) << report.counterexample;
}

TEST(Realism, IdenticalPatternsAlwaysPass) {
  // F agrees with itself up to any time; every detector (even M) must pass.
  const auto f = model::single_crash(4, 1, 20);
  for (const auto& spec : standard_detectors()) {
    const auto report =
        check_realism_pair(spec.factory, f, f, /*agree_until=*/50, seeds());
    EXPECT_TRUE(report.realistic) << spec.name << ": "
                                  << report.counterexample;
  }
}

TEST(Realism, StructuralFlagMatchesRegistry) {
  const auto pattern = model::all_correct(4);
  for (const auto& spec : standard_detectors()) {
    const auto oracle = spec.factory(pattern, 1);
    EXPECT_EQ(oracle->realistic_by_construction(), spec.realistic)
        << spec.name;
  }
}

TEST(Realism, RealisticOutputsDependOnlyOnPrefix) {
  // Direct witness of the definition: with the same seed, a realistic
  // oracle produces identical outputs on two patterns while they agree.
  const auto f1 = model::single_crash(5, 2, 60);
  const auto f2 = model::all_correct(5);
  for (const auto& spec : standard_detectors()) {
    if (!spec.realistic) continue;
    const auto o1 = spec.factory(f1, 9);
    const auto o2 = spec.factory(f2, 9);
    for (ProcessId p = 0; p < 5; ++p) {
      for (Tick t = 0; t < 60; ++t) {
        ASSERT_EQ(o1->query(p, t), o2->query(p, t))
            << spec.name << " diverged before the patterns did";
      }
    }
  }
}

}  // namespace
}  // namespace rfd::fd
