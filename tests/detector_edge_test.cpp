// Edge-case coverage for the timeout detectors: behaviour before the
// first heartbeat, warm-up with partially filled windows, and the
// zero-variance clamp in the phi-accrual detector (min_stddev_ms) - the
// corners a long steady-state run never visits but every deployment hits
// at process start and on perfectly regular heartbeat sources.
#include <gtest/gtest.h>

#include <cmath>

#include "runtime/detectors.hpp"

namespace rfd::rt {
namespace {

// ---------------------------------------------------------------- phi

TEST(PhiEdge, BeforeFirstHeartbeatUsesFallbackWindow) {
  PhiAccrualParams params;
  params.fallback_timeout_ms = 800.0;
  PhiAccrualDetector d(params);
  EXPECT_DOUBLE_EQ(d.phi(500.0), 0.0);   // no evidence, no suspicion level
  EXPECT_FALSE(d.suspects(0.0));
  EXPECT_FALSE(d.suspects(799.0));
  EXPECT_TRUE(d.suspects(801.0));        // grace from time 0 expired
}

TEST(PhiEdge, SingleHeartbeatFallsBackFromThatArrival) {
  PhiAccrualParams params;
  params.fallback_timeout_ms = 800.0;
  PhiAccrualDetector d(params);
  d.on_heartbeat(700.0);
  // One arrival yields no interval sample; the fallback window restarts
  // at the arrival instead of accusing the peer of pre-start silence.
  EXPECT_DOUBLE_EQ(d.phi(900.0), 0.0);
  EXPECT_FALSE(d.suspects(900.0));
  EXPECT_FALSE(d.suspects(1'400.0));
  EXPECT_TRUE(d.suspects(1'501.0));
}

TEST(PhiEdge, ZeroVarianceClampKeepsPhiFinite) {
  // Perfectly periodic heartbeats drive the sample variance to exactly
  // zero; without the min_stddev_ms floor the z-score would blow up the
  // moment `elapsed` exceeds the mean. The clamp must keep phi finite,
  // monotone in silence, and eventually suspicious.
  PhiAccrualParams params;
  params.min_stddev_ms = 10.0;
  params.threshold = 8.0;
  PhiAccrualDetector d(params);
  for (int i = 0; i <= 20; ++i) {
    d.on_heartbeat(100.0 * i);  // constant 100ms intervals, variance 0
  }
  const double last = 2'000.0;
  EXPECT_FALSE(d.suspects(last + 100.0));  // on schedule: still trusted
  const double phi_short = d.phi(last + 120.0);
  const double phi_mid = d.phi(last + 150.0);
  const double phi_long = d.phi(last + 250.0);
  EXPECT_TRUE(std::isfinite(phi_short));
  EXPECT_TRUE(std::isfinite(phi_mid));
  EXPECT_TRUE(std::isfinite(phi_long));
  EXPECT_LT(phi_short, phi_mid);
  EXPECT_LT(phi_mid, phi_long);
  EXPECT_TRUE(d.suspects(last + 250.0));  // z = 15 sigmas: phi >> 8
}

TEST(PhiEdge, LargerStddevFloorIsMoreLenient) {
  PhiAccrualParams tight;
  tight.min_stddev_ms = 10.0;
  PhiAccrualParams loose = tight;
  loose.min_stddev_ms = 200.0;
  PhiAccrualDetector dt(tight);
  PhiAccrualDetector dl(loose);
  for (int i = 0; i <= 20; ++i) {
    dt.on_heartbeat(100.0 * i);
    dl.on_heartbeat(100.0 * i);
  }
  EXPECT_GT(dt.phi(2'250.0), dl.phi(2'250.0));
}

// --------------------------------------------------------------- chen

TEST(ChenEdge, NoHeartbeatsUsesFallbackFromStart) {
  ChenAdaptiveParams params;
  params.fallback_timeout_ms = 600.0;
  ChenAdaptiveDetector d(params);
  EXPECT_FALSE(d.suspects(599.0));
  EXPECT_TRUE(d.suspects(601.0));
  EXPECT_LT(d.expected_arrival(), 0.0);  // no estimate yet
}

TEST(ChenEdge, SingleArrivalFallsBackFromThatArrival) {
  ChenAdaptiveParams params;
  params.fallback_timeout_ms = 600.0;
  ChenAdaptiveDetector d(params);
  d.on_heartbeat(1'000.0);
  EXPECT_LT(d.expected_arrival(), 0.0);  // still no inter-arrival sample
  EXPECT_FALSE(d.suspects(1'500.0));
  EXPECT_TRUE(d.suspects(1'601.0));
}

TEST(ChenEdge, PartiallyFilledWindowEstimatesFromWhatItHas) {
  ChenAdaptiveParams params;
  params.window = 16;  // only 3 of 16 slots will be filled
  params.alpha_ms = 50.0;
  ChenAdaptiveDetector d(params);
  d.on_heartbeat(0.0);
  d.on_heartbeat(100.0);
  d.on_heartbeat(200.0);
  // EA extrapolates the mean inter-arrival of the partial window.
  EXPECT_DOUBLE_EQ(d.expected_arrival(), 300.0);
  EXPECT_FALSE(d.suspects(349.0));
  EXPECT_TRUE(d.suspects(351.0));
}

TEST(ChenEdge, WarmupTransitionsSmoothlyIntoAdaptiveMode) {
  // Two arrivals are enough to leave fallback mode; the estimate then
  // refines as the window fills instead of jumping.
  ChenAdaptiveParams params;
  params.window = 8;
  params.alpha_ms = 100.0;
  ChenAdaptiveDetector d(params);
  d.on_heartbeat(0.0);
  d.on_heartbeat(120.0);
  EXPECT_DOUBLE_EQ(d.expected_arrival(), 240.0);
  d.on_heartbeat(220.0);  // a faster arrival pulls the period estimate down
  EXPECT_DOUBLE_EQ(d.expected_arrival(), 330.0);
  EXPECT_FALSE(d.suspects(420.0));
  EXPECT_TRUE(d.suspects(440.0));
}

// -------------------------------------------------------------- fixed

TEST(FixedEdge, GraceWindowBeforeFirstHeartbeat) {
  FixedTimeoutDetector d(FixedTimeoutParams{300.0});
  EXPECT_FALSE(d.suspects(299.0));
  EXPECT_TRUE(d.suspects(301.0));
  d.on_heartbeat(400.0);  // late first heartbeat rescinds the suspicion
  EXPECT_FALSE(d.suspects(600.0));
  EXPECT_TRUE(d.suspects(701.0));
}

}  // namespace
}  // namespace rfd::rt
