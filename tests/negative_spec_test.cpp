// Negative-path tests for the specification checkers: deliberately broken
// automatons must be caught. The experiment verdicts in E1-E10 are only as
// trustworthy as these checkers, so each property gets a violating witness.
#include <gtest/gtest.h>

#include "algo/specs.hpp"
#include "fd/perfect.hpp"
#include "model/environment.hpp"
#include "sim/simulator.hpp"

namespace rfd::algo {
namespace {

/// Decides its own proposal immediately: violates uniform AND
/// correct-restricted agreement whenever proposals differ.
class Egoist final : public sim::Automaton {
 public:
  Egoist(ProcessId /*n*/, Value proposal) : proposal_(proposal) {}
  void on_start(sim::Context& ctx) override { ctx.decide(0, proposal_); }
  void on_step(sim::Context&, const sim::Incoming*) override {}

 private:
  Value proposal_;
};

/// Decides twice: violates integrity.
class DoubleDecider final : public sim::Automaton {
 public:
  DoubleDecider(ProcessId /*n*/, Value proposal) : proposal_(proposal) {}
  void on_start(sim::Context& ctx) override {
    ctx.decide(0, proposal_);
    ctx.decide(0, proposal_);
  }
  void on_step(sim::Context&, const sim::Incoming*) override {}

 private:
  Value proposal_;
};

/// Never decides: violates termination.
class Mute final : public sim::Automaton {
 public:
  Mute(ProcessId, Value) {}
  void on_start(sim::Context&) override {}
  void on_step(sim::Context&, const sim::Incoming*) override {}
};

/// Decides a value nobody proposed: violates validity.
class Inventor final : public sim::Automaton {
 public:
  Inventor(ProcessId, Value) {}
  void on_start(sim::Context& ctx) override { ctx.decide(0, 999'999); }
  void on_step(sim::Context&, const sim::Incoming*) override {}
};

/// TRB automaton that delivers its own id: breaks agreement and integrity.
class RogueTrb final : public sim::Automaton {
 public:
  RogueTrb(ProcessId, Value) {}
  void on_start(sim::Context& ctx) override {
    ctx.deliver(0, 5000 + ctx.self());
  }
  void on_step(sim::Context&, const sim::Incoming*) override {}
};

/// Abcast automaton delivering in id-flipped order: breaks total order.
class Disorderly final : public sim::Automaton {
 public:
  Disorderly(ProcessId, Value) {}
  void on_start(sim::Context& ctx) override {
    if (ctx.self() % 2 == 0) {
      ctx.deliver(0, 1);
      ctx.deliver(0, 2);
    } else {
      ctx.deliver(0, 2);
      ctx.deliver(0, 1);
    }
  }
  void on_step(sim::Context&, const sim::Incoming*) override {}
};

template <typename Algo>
sim::Trace run_broken(const model::FailurePattern& pattern) {
  const ProcessId n = pattern.n();
  fd::PerfectOracle oracle(pattern, 1);
  std::vector<std::unique_ptr<sim::Automaton>> automata;
  for (ProcessId p = 0; p < n; ++p) {
    automata.push_back(std::make_unique<Algo>(n, 100 + p));
  }
  sim::Simulator sim(pattern, oracle, std::move(automata),
                     std::make_unique<sim::RandomAdversary>(2));
  sim.run_for(500);
  return sim.trace();
}

const std::vector<Value> kProposals{100, 101, 102, 103};

TEST(NegativeSpecs, EgoistBreaksAgreement) {
  const auto trace = run_broken<Egoist>(model::all_correct(4));
  const auto check = check_consensus(trace, 0, kProposals);
  EXPECT_FALSE(check.uniform_agreement);
  EXPECT_FALSE(check.agreement);
  EXPECT_TRUE(check.termination);
  EXPECT_TRUE(check.validity);
  EXPECT_TRUE(check.integrity);
  EXPECT_FALSE(check.ok_uniform());
  EXPECT_FALSE(check.ok_correct_restricted());
}

TEST(NegativeSpecs, EgoistAgreementIsCorrectRestricted) {
  // When all but one process crash before stepping, the lone Egoist's
  // decision cannot disagree with anyone: the checker must pass agreement.
  const auto trace = run_broken<Egoist>(model::all_but_one_crash(4, 2, 0));
  const auto check = check_consensus(trace, 0, kProposals);
  EXPECT_TRUE(check.agreement) << check.to_string();
  EXPECT_TRUE(check.uniform_agreement) << check.to_string();
}

TEST(NegativeSpecs, DoubleDeciderBreaksIntegrity) {
  const auto trace = run_broken<DoubleDecider>(model::all_correct(4));
  const auto check = check_consensus(trace, 0, kProposals);
  EXPECT_FALSE(check.integrity);
}

TEST(NegativeSpecs, MuteBreaksTermination) {
  const auto trace = run_broken<Mute>(model::all_correct(4));
  const auto check = check_consensus(trace, 0, kProposals);
  EXPECT_FALSE(check.termination);
  EXPECT_TRUE(check.uniform_agreement);  // vacuously
  EXPECT_TRUE(check.integrity);
}

TEST(NegativeSpecs, InventorBreaksValidity) {
  const auto trace = run_broken<Inventor>(model::all_correct(4));
  const auto check = check_consensus(trace, 0, kProposals);
  EXPECT_FALSE(check.validity);
}

TEST(NegativeSpecs, RogueTrbBreaksAgreementAndIntegrity) {
  const auto trace = run_broken<RogueTrb>(model::all_correct(4));
  const auto check = check_trb(trace, 0, /*sender=*/0, /*value=*/5000);
  EXPECT_FALSE(check.agreement);
  EXPECT_FALSE(check.integrity);  // delivered values nobody broadcast
}

TEST(NegativeSpecs, TrbNilForCorrectSenderBreaksValidity) {
  // A fleet that always delivers nil while the sender is correct.
  class NilDeliverer final : public sim::Automaton {
   public:
    NilDeliverer(ProcessId, Value) {}
    void on_start(sim::Context& ctx) override { ctx.deliver(0, kNilValue); }
    void on_step(sim::Context&, const sim::Incoming*) override {}
  };
  const auto trace = run_broken<NilDeliverer>(model::all_correct(4));
  const auto check = check_trb(trace, 0, /*sender=*/0, /*value=*/42);
  EXPECT_FALSE(check.validity);
  EXPECT_TRUE(check.agreement);  // everyone delivered the same nil
}

TEST(NegativeSpecs, DisorderlyBreaksTotalOrder) {
  const auto trace = run_broken<Disorderly>(model::all_correct(4));
  const auto check = check_abcast(trace, 0, /*by_correct=*/{1, 2},
                                  /*all=*/{1, 2});
  EXPECT_FALSE(check.total_order);
  EXPECT_FALSE(check.agreement);
  EXPECT_TRUE(check.integrity);
}

TEST(NegativeSpecs, AbcastMissingValueBreaksValidity) {
  class Partial final : public sim::Automaton {
   public:
    Partial(ProcessId, Value) {}
    void on_start(sim::Context& ctx) override {
      if (ctx.self() == 0) ctx.deliver(0, 1);  // only p0 delivers
    }
    void on_step(sim::Context&, const sim::Incoming*) override {}
  };
  const auto trace = run_broken<Partial>(model::all_correct(3));
  const auto check = check_abcast(trace, 0, {1}, {1});
  EXPECT_FALSE(check.validity);
  EXPECT_FALSE(check.agreement);
}

TEST(NegativeSpecs, DuplicateDeliveryBreaksAbcastIntegrity) {
  class Duplicator final : public sim::Automaton {
   public:
    Duplicator(ProcessId, Value) {}
    void on_start(sim::Context& ctx) override {
      ctx.deliver(0, 1);
      ctx.deliver(0, 1);
    }
    void on_step(sim::Context&, const sim::Incoming*) override {}
  };
  const auto trace = run_broken<Duplicator>(model::all_correct(3));
  const auto check = check_abcast(trace, 0, {1}, {1});
  EXPECT_FALSE(check.integrity);
}

TEST(NegativeSpecs, ValidatorCatchesForeignDetectorValues) {
  // A trace recorded under one oracle must fail validation against an
  // oracle with a different seed (condition (3): d = H(p, T[k])).
  const auto pattern = model::single_crash(4, 1, 30);
  fd::PerfectParams params;
  params.min_detection_delay = 0;
  params.max_detection_delay = 9;
  fd::PerfectOracle recording(pattern, 1, params);
  fd::PerfectOracle other(pattern, 2, params);
  std::vector<std::unique_ptr<sim::Automaton>> automata;
  for (ProcessId p = 0; p < 4; ++p) {
    automata.push_back(std::make_unique<Mute>(4, 0));
  }
  sim::Simulator sim(pattern, recording, std::move(automata),
                     std::make_unique<sim::RandomAdversary>(3));
  sim.run_for(400);
  EXPECT_TRUE(sim.trace().validate(recording).ok);
  EXPECT_FALSE(sim.trace().validate(other).ok);
}

}  // namespace
}  // namespace rfd::algo
