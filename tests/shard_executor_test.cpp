#include <atomic>
#include <chrono>
#include <random>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "runtime/shard_executor.hpp"

namespace rfd::rt {
namespace {

TEST(ShardExecutor, RunsEveryShardOncePerInvocation) {
  ShardExecutor executor(4);
  ASSERT_EQ(executor.shards(), 4);
  std::vector<std::atomic<int>> hits(4);
  for (int round = 1; round <= 3; ++round) {
    executor.parallel([&](int s) { ++hits[static_cast<std::size_t>(s)]; });
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(hits[static_cast<std::size_t>(s)].load(), round);
    }
  }
}

TEST(ShardExecutor, SingleShardRunsOnCallingThread) {
  ShardExecutor executor(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  executor.parallel([&](int s) {
    EXPECT_EQ(s, 0);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ShardExecutor, BarrierSequencesPhasesAcrossShards) {
  // The engine's correctness hinges on this: values shard A writes in
  // phase N are visible to shard B in phase N+1 with no synchronization
  // beyond the parallel() barrier. Each shard writes its slot in phase
  // one; every shard sums all slots in phase two.
  constexpr int kShards = 4;
  constexpr int kRounds = 200;
  ShardExecutor executor(kShards);
  std::vector<int> slots(kShards, 0);       // plain ints on purpose
  std::vector<long long> sums(kShards, 0);  // one writer each
  for (int round = 1; round <= kRounds; ++round) {
    executor.parallel(
        [&](int s) { slots[static_cast<std::size_t>(s)] = round * (s + 1); });
    executor.parallel([&](int s) {
      long long sum = 0;
      for (const int v : slots) sum += v;
      sums[static_cast<std::size_t>(s)] = sum;
    });
    const long long expected =
        static_cast<long long>(round) * kShards * (kShards + 1) / 2;
    for (int s = 0; s < kShards; ++s) {
      ASSERT_EQ(sums[static_cast<std::size_t>(s)], expected)
          << "round " << round << " shard " << s;
    }
  }
}

TEST(ShardExecutor, LowestShardExceptionPropagates) {
  ShardExecutor executor(3);
  try {
    executor.parallel([](int s) {
      if (s >= 1) throw std::runtime_error("shard " + std::to_string(s));
    });
    FAIL() << "expected the shard exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard 1");
  }
  // The pool survives a throwing invocation.
  std::atomic<int> hits{0};
  executor.parallel([&](int) { ++hits; });
  EXPECT_EQ(hits.load(), 3);
}

TEST(ShardExecutor, WorkerResidentLoopStressSpinThenPark) {
  // The engine's worker-resident shape: one run() dispatch, shards
  // looping rounds against the executor's SpinBarrier. A deliberately
  // tiny spin budget plus randomized per-shard stalls forces every
  // combination of fast-path spin release and futex park/wake, while
  // the phase-data check proves each release is a full memory barrier
  // (writes before arrival visible to every shard after it).
  constexpr int kShards = 4;
  constexpr int kRounds = 150;
  ShardExecutor executor(kShards);
  executor.set_spin_iterations(64);
  SpinBarrier& barrier = executor.barrier();
  std::vector<int> slots(kShards, 0);  // plain ints on purpose
  std::atomic<int> mismatches{0};
  executor.run([&](int s) {
    std::mt19937 rng(static_cast<unsigned>(7919 * (s + 1)));
    for (int round = 1; round <= kRounds; ++round) {
      if ((rng() & 3u) == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(rng() % 300));
      }
      slots[static_cast<std::size_t>(s)] = round * (s + 1);
      if (!barrier.arrive_and_wait()) return;
      long long sum = 0;
      for (const int v : slots) sum += v;
      if (sum != static_cast<long long>(round) * kShards * (kShards + 1) / 2) {
        ++mismatches;
      }
      // Second barrier: next round's writes must not race this read.
      if (!barrier.arrive_and_wait()) return;
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ShardExecutor, SimultaneousExceptionsPickLowestShard) {
  // Three shards throw at once while shard 0 sits parked (spin budget
  // 0) in the barrier: the abort must futex-wake it with a false
  // return, and the join must rethrow the lowest-shard exception no
  // matter which throw won the race. Repeated to exercise the barrier
  // reset/reuse path after each abort.
  constexpr int kShards = 4;
  ShardExecutor executor(kShards);
  executor.set_spin_iterations(0);
  for (int trial = 0; trial < 5; ++trial) {
    try {
      executor.run([&](int s) {
        if (s == 0) {
          while (executor.barrier().arrive_and_wait()) {
          }
          return;  // released by the abort, never a normal release
        }
        throw std::runtime_error("shard " + std::to_string(s));
      });
      FAIL() << "expected the shard exception to be rethrown";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "shard 1");
    }
  }
  // The pool and barrier survive every aborted invocation.
  std::atomic<int> hits{0};
  executor.run([&](int) { ++hits; });
  EXPECT_EQ(hits.load(), kShards);
}

TEST(ShardExecutor, ThreadLogBuffersCaptureWorkerLines) {
  // Worker-thread log lines must not race the process-wide sink; the
  // engine parks them in per-shard buffers and flushes at the barrier.
  constexpr int kShards = 4;
  ShardExecutor executor(kShards);
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);
  std::vector<std::vector<BufferedLogLine>> buffers(kShards);
  executor.parallel([&](int s) {
    const ScopedThreadLogBuffer scope(&buffers[static_cast<std::size_t>(s)]);
    RFD_LOG(kInfo) << "hello from shard " << s;
    RFD_LOG(kDebug) << "suppressed";  // below the level: not buffered
  });
  set_log_level(saved);
  for (int s = 0; s < kShards; ++s) {
    const auto& lines = buffers[static_cast<std::size_t>(s)];
    ASSERT_EQ(lines.size(), 1u) << "shard " << s;
    EXPECT_EQ(lines[0].level, LogLevel::kInfo);
    EXPECT_NE(lines[0].line.find("hello from shard"), std::string::npos);
  }
}

}  // namespace
}  // namespace rfd::rt
