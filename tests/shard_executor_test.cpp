#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "runtime/shard_executor.hpp"

namespace rfd::rt {
namespace {

TEST(ShardExecutor, RunsEveryShardOncePerInvocation) {
  ShardExecutor executor(4);
  ASSERT_EQ(executor.shards(), 4);
  std::vector<std::atomic<int>> hits(4);
  for (int round = 1; round <= 3; ++round) {
    executor.parallel([&](int s) { ++hits[static_cast<std::size_t>(s)]; });
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(hits[static_cast<std::size_t>(s)].load(), round);
    }
  }
}

TEST(ShardExecutor, SingleShardRunsOnCallingThread) {
  ShardExecutor executor(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  executor.parallel([&](int s) {
    EXPECT_EQ(s, 0);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ShardExecutor, BarrierSequencesPhasesAcrossShards) {
  // The engine's correctness hinges on this: values shard A writes in
  // phase N are visible to shard B in phase N+1 with no synchronization
  // beyond the parallel() barrier. Each shard writes its slot in phase
  // one; every shard sums all slots in phase two.
  constexpr int kShards = 4;
  constexpr int kRounds = 200;
  ShardExecutor executor(kShards);
  std::vector<int> slots(kShards, 0);       // plain ints on purpose
  std::vector<long long> sums(kShards, 0);  // one writer each
  for (int round = 1; round <= kRounds; ++round) {
    executor.parallel(
        [&](int s) { slots[static_cast<std::size_t>(s)] = round * (s + 1); });
    executor.parallel([&](int s) {
      long long sum = 0;
      for (const int v : slots) sum += v;
      sums[static_cast<std::size_t>(s)] = sum;
    });
    const long long expected =
        static_cast<long long>(round) * kShards * (kShards + 1) / 2;
    for (int s = 0; s < kShards; ++s) {
      ASSERT_EQ(sums[static_cast<std::size_t>(s)], expected)
          << "round " << round << " shard " << s;
    }
  }
}

TEST(ShardExecutor, LowestShardExceptionPropagates) {
  ShardExecutor executor(3);
  try {
    executor.parallel([](int s) {
      if (s >= 1) throw std::runtime_error("shard " + std::to_string(s));
    });
    FAIL() << "expected the shard exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard 1");
  }
  // The pool survives a throwing invocation.
  std::atomic<int> hits{0};
  executor.parallel([&](int) { ++hits; });
  EXPECT_EQ(hits.load(), 3);
}

TEST(ShardExecutor, ThreadLogBuffersCaptureWorkerLines) {
  // Worker-thread log lines must not race the process-wide sink; the
  // engine parks them in per-shard buffers and flushes at the barrier.
  constexpr int kShards = 4;
  ShardExecutor executor(kShards);
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);
  std::vector<std::vector<BufferedLogLine>> buffers(kShards);
  executor.parallel([&](int s) {
    const ScopedThreadLogBuffer scope(&buffers[static_cast<std::size_t>(s)]);
    RFD_LOG(kInfo) << "hello from shard " << s;
    RFD_LOG(kDebug) << "suppressed";  // below the level: not buffered
  });
  set_log_level(saved);
  for (int s = 0; s < kShards; ++s) {
    const auto& lines = buffers[static_cast<std::size_t>(s)];
    ASSERT_EQ(lines.size(), 1u) << "shard " << s;
    EXPECT_EQ(lines[0].level, LogLevel::kInfo);
    EXPECT_NE(lines[0].line.find("hello from shard"), std::string::npos);
  }
}

}  // namespace
}  // namespace rfd::rt
