// Tests for the Omega leader-oracle extension: leader stability, the <>S
// embedding, and consensus through the rotating coordinator under a
// majority - the classical world the paper's unbounded-crash environment
// is contrasted against.
#include <gtest/gtest.h>

#include "algo/consensus/ct_rotating.hpp"
#include "algo/specs.hpp"
#include "fd/omega.hpp"
#include "fd/properties.hpp"
#include "fd/realism.hpp"
#include "fd/registry.hpp"
#include "model/environment.hpp"
#include "sim/simulator.hpp"

namespace rfd::fd {
namespace {

TEST(Omega, LeaderStabilizesToSmallestCorrect) {
  const auto pattern = model::cascade(5, 2, 20, 30);  // p0, p1 crash
  OmegaOracle oracle(pattern, 3);
  // Long after convergence and the last crash, every observer trusts p2.
  for (ProcessId obs = 0; obs < 5; ++obs) {
    for (Tick t = 200; t < 220; ++t) {
      EXPECT_EQ(oracle.leader(obs, t), 2);
    }
  }
}

TEST(Omega, LeaderNeverADeadProcess) {
  const auto pattern = model::cascade(5, 3, 10, 10);
  OmegaOracle oracle(pattern, 7);
  for (ProcessId obs = 0; obs < 5; ++obs) {
    for (Tick t = 0; t < 150; ++t) {
      const ProcessId leader = oracle.leader(obs, t);
      ASSERT_GE(leader, 0);
      // The leader guess is always among processes not crashed by t.
      EXPECT_TRUE(pattern.is_alive_at(leader, t))
          << "observer " << obs << " trusts dead p" << leader << " at " << t;
    }
  }
}

TEST(Omega, AllCrashedYieldsNoLeader) {
  model::FailurePattern pattern(3);
  for (ProcessId p = 0; p < 3; ++p) pattern.crash_at(p, 5);
  OmegaOracle oracle(pattern, 1);
  EXPECT_EQ(oracle.leader(0, 50), -1);
  EXPECT_EQ(oracle.query(0, 50).suspects.count(), 3);
}

TEST(Omega, EmbeddingSuspectsEveryoneButLeader) {
  const auto pattern = model::all_correct(4);
  OmegaOracle oracle(pattern, 5);
  for (Tick t = 100; t < 110; ++t) {
    const FdValue v = oracle.query(1, t);
    const ProcessId leader = OmegaOracle::decode_leader(v);
    EXPECT_EQ(v.suspects.count(), 3);
    EXPECT_FALSE(v.suspects.contains(leader));
  }
}

TEST(Omega, ClassifiesAsEventuallyStrong) {
  const auto pattern = model::single_crash(5, 1, 40);
  OmegaOracle oracle(pattern, 9);
  const History h = sample_history(oracle, 300);
  const Classification cls = classify(pattern, h, /*min_suffix=*/40);
  EXPECT_TRUE(cls.eventually_strong)
      << eventual_weak_accuracy(pattern, h, 40).detail;
  EXPECT_FALSE(cls.perfect);     // it suspects live processes forever
  EXPECT_FALSE(cls.eventually_perfect);
}

TEST(Omega, PreConvergenceLeadersDisagree) {
  // The noise is the point: before convergence different observers may
  // trust different processes (otherwise Omega would be born stable).
  const auto pattern = model::all_correct(6);
  bool disagreement = false;
  for (std::uint64_t seed = 0; seed < 6 && !disagreement; ++seed) {
    OmegaOracle oracle(pattern, seed);
    for (Tick t = 0; t < 40 && !disagreement; ++t) {
      const ProcessId a = oracle.leader(0, t);
      const ProcessId b = oracle.leader(3, t);
      disagreement = a != b;
    }
  }
  EXPECT_TRUE(disagreement);
}

TEST(Omega, RotatingConsensusSolvesWithMajority) {
  const ProcessId n = 5;
  model::PatternSweep sweep(n, 0x09e6);
  sweep.with_all_correct()
      .with_single_crashes({0, 400})
      .with_random(4, 0, (n - 1) / 2, 1200);
  for (const auto& pattern : sweep.patterns()) {
    const auto oracle = find_detector("Omega").factory(pattern, 11);
    std::vector<std::unique_ptr<sim::Automaton>> automata;
    std::vector<Value> proposals;
    for (ProcessId p = 0; p < n; ++p) {
      proposals.push_back(100 + p);
      automata.push_back(
          std::make_unique<algo::CtRotatingConsensus>(n, 100 + p));
    }
    sim::Simulator sim(pattern, *oracle, std::move(automata),
                       std::make_unique<sim::RandomAdversary>(13));
    sim.run_for(20'000);
    const auto check = algo::check_consensus(sim.trace(), 0, proposals);
    EXPECT_TRUE(check.ok_uniform())
        << pattern.to_string() << ": " << check.to_string();
  }
}

TEST(Omega, IsRealistic) {
  const auto& spec = find_detector("Omega");
  EXPECT_TRUE(spec.realistic);
  const auto report = check_realism_suite(
      spec.factory, 5, {1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_TRUE(report.realistic) << report.counterexample;
}

}  // namespace
}  // namespace rfd::fd
