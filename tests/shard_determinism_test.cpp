// The sharded core's contract: a fixed-seed cluster run is a pure
// function of (config, seed) and nothing else - the shard count changes
// wall-clock, never a single metric or trace byte. These tests run the
// same scenarios at shards = 1, 2 and 4 and require field-identical
// reports and byte-identical JSONL traces (see cluster/engine.cpp for
// the barrier protocol and the determinism argument being verified).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/engine.hpp"
#include "scenario_test_util.hpp"

namespace rfd::cluster {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_trace_path(const char* tag, int shards) {
  std::ostringstream ss;
  ss << ::testing::TempDir() << "/rfd_shard_" << tag << "_" << shards
     << ".jsonl";
  return ss.str();
}

ClusterConfig shard_config(int n) {
  ClusterConfig config;
  config.n = n;
  config.topology.kind = TopologyKind::kGossip;
  config.topology.digest_size = 16;
  config.detector.kind = rt::DetectorKind::kChen;
  config.detector.chen.alpha_ms = 400.0;
  config.heartbeat_interval_ms = 100.0;
  config.check_interval_ms = 100.0;
  config.duration_ms = 12'000.0;
  return config;
}

using testutil::report_fingerprint;

void expect_shard_invariant(ClusterConfig config, std::uint64_t seed,
                            const char* tag) {
  std::string baseline_report;
  std::string baseline_trace;
  for (const int shards : {1, 2, 4}) {
    config.shards = shards;
    const std::string path = temp_trace_path(tag, shards);
    config.obs.trace_path = path;
    config.obs.snapshot_every_ticks = 10;
    const ClusterReport report = run_cluster(config, seed);
    EXPECT_EQ(report.trace_dropped, 0);
    const std::string fingerprint = report_fingerprint(report);
    const std::string trace = read_file(path);
    std::remove(path.c_str());
    ASSERT_FALSE(trace.empty());
    if (shards == 1) {
      baseline_report = fingerprint;
      baseline_trace = trace;
      continue;
    }
    EXPECT_EQ(fingerprint, baseline_report)
        << tag << ": report diverged at shards=" << shards;
    // Byte-identical, not merely equivalent: the merged trace is the
    // replay/analysis input, so even reordering within a timestamp
    // would be a regression.
    EXPECT_EQ(trace, baseline_trace)
        << tag << ": trace bytes diverged at shards=" << shards;
  }
}

TEST(ShardDeterminism, CalmRunIsShardCountInvariant) {
  for (const std::uint64_t seed : {7ull, 11ull, 20260808ull}) {
    expect_shard_invariant(shard_config(24), seed, "calm");
  }
}

TEST(ShardDeterminism, CrashScenarioIsShardCountInvariant) {
  for (const std::uint64_t seed : {7ull, 11ull, 20260808ull}) {
    ClusterConfig config = shard_config(24);
    config.scenario.crash(4'000.0, 3).crash(4'000.0, 17);
    expect_shard_invariant(config, seed, "crash");
  }
}

TEST(ShardDeterminism, PartitionHealAndChurnIsShardCountInvariant) {
  // The full scenario surface in one run: a partition (per-shard network
  // replicas must agree), a crash inside it, a heal (coordinator-side
  // disruption bookkeeping), plus a join and a silent leave (ids beyond
  // n, reseeded membership).
  for (const std::uint64_t seed : {7ull, 11ull, 20260808ull}) {
    ClusterConfig config = shard_config(16);
    config.max_nodes = 17;
    config.duration_ms = 20'000.0;
    config.scenario
        .partition(3'000.0, {{0, 1, 2, 3, 4, 5, 6, 7},
                             {8, 9, 10, 11, 12, 13, 14, 15}})
        .crash(5'000.0, 3)
        .heal(8'000.0)
        .join(10'000.0, 16)
        .leave(13'000.0, 11);
    expect_shard_invariant(config, seed, "scenario");
  }
}

// The new fault primitives with shard-local state - directed link
// blocks, per-node delay factors - must behave identically no matter
// which shard's network replica applies them. Each scenario file from
// the checked-in library runs at shards 1/2/4 expecting byte-identical
// traces, under the same reference configuration the golden digests pin.
void expect_scenario_file_shard_invariant(const char* file,
                                          const char* tag) {
  const ScenarioDoc doc = testutil::load_doc(file);
  ASSERT_FALSE(doc.scenario.events.empty()) << file;
  const ClusterConfig config = testutil::scenario_cluster_config(doc);
  for (const std::uint64_t seed : {7ull, 20020623ull}) {
    expect_shard_invariant(config, seed, tag);
  }
}

TEST(ShardDeterminism, FlappingLinksScenarioIsShardCountInvariant) {
  expect_scenario_file_shard_invariant("flapping_links.scn", "flap");
}

TEST(ShardDeterminism, SlowNodesScenarioIsShardCountInvariant) {
  expect_scenario_file_shard_invariant("slow_nodes.scn", "slow");
}

TEST(ShardDeterminism, AsymmetricPartitionScenarioIsShardCountInvariant) {
  expect_scenario_file_shard_invariant("asymmetric_partition.scn", "oneway");
}

TEST(ShardDeterminism, ShardCountBeyondNodesClamps) {
  ClusterConfig config = shard_config(4);
  config.duration_ms = 3'000.0;
  config.shards = 64;  // clamped to the node count internally
  const ClusterReport report = run_cluster(config, 7);
  EXPECT_GT(report.messages_sent, 0);
}

}  // namespace
}  // namespace rfd::cluster
