// Section 6.3 tests: within the realistic space, Strong collapses into
// Perfect. The executable form: realistic detectors' false suspicions
// always transfer to the everybody-else-crashes continuation (where they
// break weak accuracy), so a realistic detector that IS Strong can have no
// false suspicion at all; the clairvoyant Strong detector escapes only by
// failing realism.
#include <gtest/gtest.h>

#include "fd/registry.hpp"
#include "model/environment.hpp"
#include "reduction/collapse.hpp"

namespace rfd::red {
namespace {

constexpr Tick kHorizon = 200;

std::vector<std::uint64_t> seeds() { return {1, 2, 3, 4, 5, 6}; }

std::vector<model::FailurePattern> patterns() {
  model::PatternSweep sweep(5, 0x63);
  sweep.with_all_correct()
      .with_single_crashes({20, 80})
      .with_random(6, 0, 3, 150);
  return sweep.patterns();
}

TEST(FalseSuspicionFinder, FindsAndLocates) {
  const auto pattern = model::all_correct(4);
  const auto oracle = fd::find_detector("<>P").factory(pattern, 2);
  const auto h = fd::sample_history(*oracle, kHorizon);
  const auto fs = find_false_suspicion(pattern, h);
  ASSERT_TRUE(fs.found);
  EXPECT_TRUE(h.suspects(fs.observer, fs.victim, fs.at));
  EXPECT_TRUE(pattern.is_alive_at(fs.victim, fs.at));
}

TEST(FalseSuspicionFinder, PerfectHasNone) {
  for (const auto& pattern : patterns()) {
    const auto oracle = fd::find_detector("P").factory(pattern, 3);
    const auto h = fd::sample_history(*oracle, kHorizon);
    EXPECT_FALSE(find_false_suspicion(pattern, h).found)
        << pattern.to_string();
  }
}

TEST(Collapse, RealisticFalseSuspicionsTransferAndBreakS) {
  // <>P and <>S are realistic and falsely suspect before convergence; the
  // Section 6.3 construction must go through every single time: the prefix
  // transfers to F' and weak accuracy is broken there.
  for (const std::string detector : {"<>P", "<>S"}) {
    const auto audit = audit_strong_realistic(
        fd::find_detector(detector).factory, patterns(), seeds(), kHorizon);
    EXPECT_GT(audit.with_false_suspicion, 0) << detector;
    EXPECT_EQ(audit.with_false_suspicion, audit.transfers) << detector;
    EXPECT_EQ(audit.transfers, audit.weak_accuracy_broken) << detector;
    EXPECT_TRUE(audit.consistent_with_collapse()) << detector;
  }
}

TEST(Collapse, RealisticPerfectDetectorsHaveNothingToTransfer) {
  for (const std::string detector : {"P", "Scribe", "P<"}) {
    const auto audit = audit_strong_realistic(
        fd::find_detector(detector).factory, patterns(), seeds(), kHorizon);
    EXPECT_GT(audit.histories, 0);
    EXPECT_EQ(audit.with_false_suspicion, 0) << detector;
    EXPECT_TRUE(audit.consistent_with_collapse()) << detector;
  }
}

TEST(Collapse, CheatingStrongEscapesOnlyByNonRealism) {
  // S(cheat) falsely suspects, but its prefix does NOT transfer to F' (its
  // output depends on the future, and the futures differ): it stays Strong
  // while being unimplementable - the paper's point in reverse.
  const auto factory = fd::find_detector("S(cheat)").factory;
  std::int64_t with_false = 0;
  std::int64_t transfers = 0;
  for (const auto& pattern : patterns()) {
    for (std::uint64_t seed : seeds()) {
      const auto w = collapse_witness(factory, pattern, seed, kHorizon,
                                      seeds());
      if (w.has_false_suspicion) ++with_false;
      if (w.prefix_transfers) ++transfers;
    }
  }
  EXPECT_GT(with_false, 0);
  EXPECT_LT(transfers, with_false);
}

TEST(Collapse, WitnessConstructsTheRightPattern) {
  const auto pattern = model::all_correct(4);
  const auto w = collapse_witness(fd::find_detector("<>P").factory, pattern,
                                  2, kHorizon, seeds());
  ASSERT_TRUE(w.has_false_suspicion);
  EXPECT_TRUE(w.prefix_transfers);
  EXPECT_TRUE(w.weak_accuracy_broken_in_f_prime);
  // F' must mention crashes at t+1.
  EXPECT_NE(w.f_prime.find("t" + std::to_string(w.suspicion.at + 1)),
            std::string::npos)
      << w.f_prime;
}

}  // namespace
}  // namespace rfd::red
