// Reliable and atomic broadcast tests: diffusion guarantees, uniform total
// order via the consensus reduction, and crash robustness.
#include <gtest/gtest.h>

#include <algorithm>

#include "algo/broadcast/atomic_broadcast.hpp"
#include "algo/broadcast/reliable_broadcast.hpp"
#include "algo/specs.hpp"
#include "fd/registry.hpp"
#include "model/environment.hpp"
#include "sim/simulator.hpp"

namespace rfd::algo {
namespace {

template <typename Algo>
sim::Trace run_broadcast(const model::FailurePattern& pattern,
                         const std::vector<std::vector<ScriptedBroadcast>>&
                             scripts,
                         std::uint64_t seed, Tick horizon) {
  const ProcessId n = pattern.n();
  const auto oracle = fd::find_detector("P").factory(pattern, seed);
  std::vector<std::unique_ptr<sim::Automaton>> automata;
  for (ProcessId p = 0; p < n; ++p) {
    automata.push_back(
        std::make_unique<Algo>(n, scripts[static_cast<std::size_t>(p)]));
  }
  sim::Simulator sim(pattern, *oracle, std::move(automata),
                     std::make_unique<sim::RandomAdversary>(mix_seed(seed, 4)));
  sim.run_for(horizon);
  return sim.trace();
}

std::vector<std::vector<ScriptedBroadcast>> one_message_each(ProcessId n) {
  std::vector<std::vector<ScriptedBroadcast>> scripts(
      static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p) {
    scripts[static_cast<std::size_t>(p)].push_back({0, 500 + p});
  }
  return scripts;
}

TEST(ReliableBroadcast, AllCorrectDeliverEverything) {
  const ProcessId n = 4;
  const auto pattern = model::all_correct(n);
  const auto trace =
      run_broadcast<ReliableBroadcast>(pattern, one_message_each(n), 1, 3000);
  for (ProcessId p = 0; p < n; ++p) {
    auto values = std::vector<Value>{};
    for (const auto& d : trace.deliveries_of_instance(0)) {
      if (d.process == p) values.push_back(d.value);
    }
    std::sort(values.begin(), values.end());
    EXPECT_EQ(values, (std::vector<Value>{500, 501, 502, 503})) << "p" << p;
  }
}

TEST(ReliableBroadcast, RelayCoversCrashedOrigin) {
  // The origin crashes right after its broadcast step; whoever received it
  // relays, so every correct process still delivers.
  const ProcessId n = 4;
  const auto pattern = model::single_crash(n, 0, 2);
  const auto trace =
      run_broadcast<ReliableBroadcast>(pattern, one_message_each(n), 2, 4000);
  const auto correct = pattern.correct();
  // Either nobody delivered p0's message (it died before broadcasting) or
  // all correct processes did - never a partial outcome among correct.
  int correct_with_500 = 0;
  correct.for_each([&](ProcessId p) {
    for (const auto& d : trace.deliveries_of_instance(0)) {
      if (d.process == p && d.value == 500) {
        ++correct_with_500;
        break;
      }
    }
  });
  EXPECT_TRUE(correct_with_500 == 0 || correct_with_500 == correct.count())
      << correct_with_500;
}

TEST(ReliableBroadcast, NoDuplicatesNoInventions) {
  const ProcessId n = 4;
  const auto pattern = model::cascade(n, 2, 50, 40);
  const auto trace =
      run_broadcast<ReliableBroadcast>(pattern, one_message_each(n), 3, 4000);
  for (ProcessId p = 0; p < n; ++p) {
    std::vector<Value> values;
    for (const auto& d : trace.deliveries_of_instance(0)) {
      if (d.process == p) values.push_back(d.value);
    }
    std::sort(values.begin(), values.end());
    EXPECT_TRUE(std::adjacent_find(values.begin(), values.end()) ==
                values.end());
    for (Value v : values) {
      EXPECT_GE(v, 500);
      EXPECT_LT(v, 500 + n);
    }
  }
}

TEST(AtomicBroadcast, UniformTotalOrderAllCorrect) {
  const ProcessId n = 4;
  const auto pattern = model::all_correct(n);
  const auto trace =
      run_broadcast<AtomicBroadcast>(pattern, one_message_each(n), 4, 20'000);
  std::vector<Value> all{500, 501, 502, 503};
  const auto check = check_abcast(trace, 0, all, all);
  EXPECT_TRUE(check.ok()) << check.to_string();
  // Everyone delivered everything, in the same order.
  for (ProcessId p = 0; p < n; ++p) {
    std::vector<Value> seq;
    for (const auto& d : trace.deliveries_of_instance(0)) {
      if (d.process == p) seq.push_back(d.value);
    }
    EXPECT_EQ(seq.size(), 4u) << "p" << p;
  }
}

TEST(AtomicBroadcast, OrderSurvivesCrashes) {
  const ProcessId n = 4;
  const auto pattern = model::single_crash(n, 3, 600);
  auto scripts = one_message_each(n);
  const auto trace =
      run_broadcast<AtomicBroadcast>(pattern, scripts, 5, 24'000);
  std::vector<Value> all{500, 501, 502, 503};
  std::vector<Value> by_correct{500, 501, 502};
  // p3 may or may not have flooded its message before dying; accept both.
  std::vector<Value> actually_flooded;
  for (const auto& d : trace.deliveries_of_instance(0)) {
    if (std::find(actually_flooded.begin(), actually_flooded.end(), d.value) ==
        actually_flooded.end()) {
      actually_flooded.push_back(d.value);
    }
  }
  const auto check = check_abcast(trace, 0, by_correct, all);
  EXPECT_TRUE(check.ok()) << check.to_string();
}

TEST(AtomicBroadcast, StaggeredBroadcastsKeepOrder) {
  const ProcessId n = 3;
  const auto pattern = model::all_correct(n);
  std::vector<std::vector<ScriptedBroadcast>> scripts(3);
  scripts[0] = {{0, 900}, {40, 901}, {80, 902}};
  scripts[1] = {{20, 910}};
  scripts[2] = {{60, 920}};
  const auto trace = run_broadcast<AtomicBroadcast>(pattern, scripts, 6,
                                                    40'000);
  std::vector<Value> all{900, 901, 902, 910, 920};
  const auto check = check_abcast(trace, 0, all, all);
  EXPECT_TRUE(check.ok()) << check.to_string();
}

TEST(AtomicBroadcast, DeliveryNeedsConsensusRounds) {
  const ProcessId n = 3;
  const auto pattern = model::all_correct(n);
  const auto oracle = fd::find_detector("P").factory(pattern, 7);
  std::vector<std::unique_ptr<sim::Automaton>> automata;
  auto scripts = one_message_each(n);
  for (ProcessId p = 0; p < n; ++p) {
    automata.push_back(std::make_unique<AtomicBroadcast>(
        n, scripts[static_cast<std::size_t>(p)]));
  }
  sim::Simulator sim(pattern, *oracle, std::move(automata),
                     std::make_unique<sim::RandomAdversary>(11));
  sim.run_for(20'000);
  const auto& ab = dynamic_cast<AtomicBroadcast&>(sim.automaton(0));
  EXPECT_GE(ab.consensus_rounds(), 3);
  EXPECT_EQ(ab.delivered().size(), 3u);
}

}  // namespace
}  // namespace rfd::algo
