// Observability-layer tests: JSON escaping, staging-ring wraparound and
// exact overflow accounting, log-sink capture, registry snapshots,
// byte-identical traces across fixed-seed runs, and the offline QoS
// re-derivation check - detection percentiles recomputed from the trace
// must match the engine's live ClusterReport exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/engine.hpp"
#include "cluster/scenario.hpp"
#include "common/logging.hpp"
#include "obs/config.hpp"
#include "obs/record.hpp"
#include "obs/registry.hpp"
#include "obs/replay.hpp"
#include "obs/ring.hpp"
#include "obs/trace_writer.hpp"

namespace rfd::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int count_lines_containing(const std::string& text, const std::string& what) {
  int count = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(what) != std::string::npos) ++count;
  }
  return count;
}

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("gossip(f=3)"), "gossip(f=3)");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonLine, FixedFieldOrderAndNullForNonFinite) {
  const std::string line = JsonLine{}
                               .str("type", "x")
                               .integer("k", 42)
                               .num("v", 1.5)
                               .num("bad", std::nan(""))
                               .boolean("on", true)
                               .finish();
  EXPECT_EQ(line, "{\"type\":\"x\",\"k\":42,\"v\":1.5,\"bad\":null,"
                  "\"on\":true}");
}

TEST(RecordRing, RoundsCapacityUpToPowerOfTwo) {
  RecordRing ring(10);
  EXPECT_EQ(ring.capacity(), 16u);
}

TEST(RecordRing, PreservesOrderAcrossWraparound) {
  RecordRing ring(4);  // capacity 4 exactly
  Record r;
  r.type = RecordType::kHbSend;
  std::int64_t next_value = 0;
  std::int64_t next_expected = 0;
  // Fill and drain repeatedly so head/tail cross the wrap boundary.
  for (int round = 0; round < 5; ++round) {
    while (!ring.full()) {
      r.c = next_value++;
      ASSERT_TRUE(ring.push(r));
    }
    EXPECT_FALSE(ring.push(r));  // full ring refuses
    Record out;
    while (!ring.empty()) {
      ASSERT_TRUE(ring.pop(out));
      EXPECT_EQ(out.c, next_expected++);
    }
  }
  EXPECT_EQ(next_value, next_expected);
}

TEST(TraceWriter, DropOnFullCountsExactlyAndRecordsLoss) {
  const std::string path = "obs_test_drop.jsonl";
  Config config;
  config.trace_path = path;
  config.ring_capacity = 8;
  config.drop_on_full = true;
  {
    TraceWriter writer(config);
    ASSERT_TRUE(writer.ok());
    Record r;
    r.type = RecordType::kHbSend;
    for (int i = 0; i < 20; ++i) {
      r.c = i;
      writer.emit(r);
    }
    EXPECT_EQ(writer.emitted(), 20);
    EXPECT_EQ(writer.dropped(), 12);  // ring holds 8, 12 overflowed
    writer.close();
    // 8 staged records survived, plus the terminal loss-accounting line.
    EXPECT_EQ(writer.written_records(), 9);
  }
  const std::string text = read_file(path);
  EXPECT_EQ(count_lines_containing(text, "\"type\":\"hb_send\""), 8);
  EXPECT_EQ(count_lines_containing(text, "{\"type\":\"lost\",\"dropped\":12}"),
            1);
  std::remove(path.c_str());
}

TEST(TraceWriter, LosslessModeDrainsInsteadOfDropping) {
  const std::string path = "obs_test_lossless.jsonl";
  Config config;
  config.trace_path = path;
  config.ring_capacity = 8;
  {
    TraceWriter writer(config);
    ASSERT_TRUE(writer.ok());
    Record r;
    r.type = RecordType::kHbSend;
    for (int i = 0; i < 1000; ++i) writer.emit(r);
    writer.close();
    EXPECT_EQ(writer.dropped(), 0);
    EXPECT_EQ(writer.written_records(), 1000);
  }
  const std::string text = read_file(path);
  EXPECT_EQ(count_lines_containing(text, "\"type\":\"hb_send\""), 1000);
  EXPECT_EQ(count_lines_containing(text, "\"type\":\"lost\""), 0);
  std::remove(path.c_str());
}

TEST(TraceWriter, CapturesLogLinesIntoTheStream) {
  const std::string path = "obs_test_log.jsonl";
  Config config;
  config.trace_path = path;
  const LogLevel old_level = log_level();
  {
    TraceWriter writer(config);
    ASSERT_TRUE(writer.ok());
    writer.capture_logs();
    set_log_level(LogLevel::kInfo);
    RFD_LOG(kInfo) << "hello \"trace\"";
    set_log_level(old_level);
    writer.release_logs();
    writer.close();
  }
  const std::string text = read_file(path);
  EXPECT_EQ(count_lines_containing(
                text, "{\"type\":\"log\",\"level\":\"INFO\",\"msg\":"),
            1);
  EXPECT_EQ(count_lines_containing(text, "hello \\\"trace\\\""), 1);
  std::remove(path.c_str());
}

TEST(Registry, HandlesAreStableAndSnapshotKeepsRegistrationOrder) {
  const std::string path = "obs_test_snap.jsonl";
  Config config;
  config.trace_path = path;
  {
    TraceWriter writer(config);
    ASSERT_TRUE(writer.ok());
    Registry registry;
    Counter& c = registry.counter("c.total");
    Gauge& g = registry.gauge("g.level");
    Histo& h = registry.histogram("h.latency");
    c.add(2);
    g.set(1.5);
    h.add(10.0);
    h.add(20.0);
    // A second lookup returns the same metric.
    registry.counter("c.total").add(1);
    EXPECT_EQ(c.value(), 3);
    EXPECT_EQ(registry.find_counter("c.total"), &c);
    EXPECT_EQ(registry.find_counter("g.level"), nullptr);  // wrong kind
    EXPECT_EQ(registry.find_gauge("missing"), nullptr);
    registry.snapshot(writer, 123.0, 7);
    writer.close();
  }
  const std::string text = read_file(path);
  const std::string::size_type c_at = text.find("\"c.total\":3");
  const std::string::size_type g_at = text.find("\"g.level\":1.5");
  const std::string::size_type h_at = text.find("\"h.latency\":{\"count\":2");
  EXPECT_EQ(count_lines_containing(text, "{\"type\":\"snap\",\"t\":123,"
                                         "\"tick\":7,"),
            1);
  ASSERT_NE(c_at, std::string::npos);
  ASSERT_NE(g_at, std::string::npos);
  ASSERT_NE(h_at, std::string::npos);
  EXPECT_LT(c_at, g_at);
  EXPECT_LT(g_at, h_at);
  std::remove(path.c_str());
}

cluster::ClusterConfig traced_config(const std::string& trace_path) {
  cluster::ClusterConfig config;
  config.n = 12;
  config.max_nodes = 13;
  config.topology.kind = cluster::TopologyKind::kGossip;
  config.topology.digest_size = 12;
  config.detector.kind = rt::DetectorKind::kChen;
  config.detector.chen.alpha_ms = 300.0;
  config.heartbeat_interval_ms = 100.0;
  config.check_interval_ms = 100.0;
  config.duration_ms = 20'000.0;
  config.network.loss_prob = 0.02;
  std::vector<cluster::NodeId> left, right;
  for (int i = 0; i < 12; ++i) (i < 6 ? left : right).push_back(i);
  config.scenario.crash(3'000.0, 2)
      .partition(6'000.0, {left, right})
      .heal(8'000.0)
      .recover(10'000.0, 2)
      .delay_storm(11'000.0, 12'000.0, 600.0, 0.5)
      .join(13'000.0, 12)
      .crash(15'000.0, 7)
      .leave(16'000.0, 9);
  config.obs.trace_path = trace_path;
  config.obs.snapshot_every_ticks = 25;
  return config;
}

TEST(Trace, FixedSeedRunsProduceByteIdenticalTraces) {
  const std::string path_a = "obs_test_run_a.jsonl";
  const std::string path_b = "obs_test_run_b.jsonl";
  cluster::run_cluster(traced_config(path_a), 0x0b5);
  cluster::run_cluster(traced_config(path_b), 0x0b5);
  const std::string a = read_file(path_a);
  const std::string b = read_file(path_b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The stream has the expected structure: one header, one terminal end
  // record, and the scripted faults (all effective in this scenario).
  EXPECT_EQ(count_lines_containing(a, "{\"type\":\"run\","), 1);
  EXPECT_EQ(count_lines_containing(a, "{\"type\":\"end\","), 1);
  EXPECT_EQ(count_lines_containing(a, "{\"type\":\"fault\","), 9);
  EXPECT_GT(count_lines_containing(a, "{\"type\":\"snap\","), 0);
  EXPECT_GT(count_lines_containing(a, "{\"type\":\"hb_send\","), 0);
  EXPECT_GT(count_lines_containing(a, "{\"type\":\"hb_recv\","), 0);
  EXPECT_GT(count_lines_containing(a, "{\"type\":\"drop\","), 0);
  EXPECT_GT(count_lines_containing(a, "{\"type\":\"suspect\","), 0);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(Trace, OfflineReplayMatchesLiveClusterReport) {
  const std::string path = "obs_test_replay.jsonl";
  const cluster::ClusterReport live =
      cluster::run_cluster(traced_config(path), 0x0b5);
  ASSERT_EQ(live.trace_dropped, 0);

  const ReplayQos replayed = replay_qos(path);
  ASSERT_TRUE(replayed.ok) << replayed.error;
  EXPECT_EQ(replayed.lost_records, 0);
  EXPECT_EQ(replayed.n, live.n);
  EXPECT_EQ(replayed.max_nodes, live.max_nodes);

  // Bit-for-bit: the replay adds samples in the same (victim, observer)
  // order as the engine's finalize, so even the Welford mean matches.
  ASSERT_GT(live.detection_latency_ms.count(), 0);
  EXPECT_EQ(replayed.detection_latency_ms.count(),
            live.detection_latency_ms.count());
  EXPECT_EQ(replayed.detection_latency_ms.mean(),
            live.detection_latency_ms.mean());
  EXPECT_EQ(replayed.detection_latency_ms.percentile(0.5),
            live.detection_latency_ms.percentile(0.5));
  EXPECT_EQ(replayed.detection_latency_ms.percentile(0.99),
            live.detection_latency_ms.percentile(0.99));
  EXPECT_EQ(replayed.false_suspicions, live.false_suspicions);
  EXPECT_EQ(replayed.suspicion_raises, live.suspicion_raises);
  EXPECT_EQ(replayed.suspicion_clears, live.suspicion_clears);
  std::remove(path.c_str());
}

TEST(Trace, DisabledTraceLeavesReportEmpty) {
  cluster::ClusterConfig config = traced_config("");
  config.obs.trace_path.clear();
  const cluster::ClusterReport r = cluster::run_cluster(config, 0x0b5);
  EXPECT_EQ(r.trace_records, 0);
  EXPECT_TRUE(r.profile.empty());
  EXPECT_GT(r.detection_latency_ms.count(), 0);
}

TEST(Trace, ProfiledRunReportsPhaseRollups) {
  const std::string path = "obs_test_profile.jsonl";
  cluster::ClusterConfig config = traced_config(path);
  config.obs.profile = true;
  const cluster::ClusterReport r = cluster::run_cluster(config, 0x0b5);
  ASSERT_FALSE(r.profile.empty());
  bool saw_dispatch = false;
  for (const auto& stat : r.profile) {
    EXPECT_GT(stat.calls, 0);
    EXPECT_GE(stat.calls, stat.sampled);
    if (stat.phase == "dispatch") saw_dispatch = true;
  }
  EXPECT_TRUE(saw_dispatch);
  const std::string text = read_file(path);
  EXPECT_GT(count_lines_containing(text, "{\"type\":\"profile\","), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rfd::obs
