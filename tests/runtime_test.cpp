// Runtime-layer tests: the event queue, the network model, the three
// timeout detectors' core behaviours (completeness after a crash, eventual
// accuracy after stabilization, the accuracy/speed trade), QoS metrics,
// and the group membership emulation of P.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "runtime/detectors.hpp"
#include "runtime/event_queue.hpp"
#include "runtime/membership.hpp"
#include "runtime/network.hpp"
#include "runtime/qos.hpp"

namespace rfd::rt {
namespace {

/// Reference implementation of the pre-refactor core's semantics: a plain
/// binary heap ordered by (at, seq). The slab/wheel EventQueue must
/// produce exactly this firing order on any workload.
class ReferenceQueue {
 public:
  void schedule(double at, std::function<void()> action) {
    if (at < now_) at = now_;
    heap_.push({at, next_seq_++, std::move(action)});
  }
  void schedule_in(double delay, std::function<void()> action) {
    schedule(now_ + delay, std::move(action));
  }
  double now() const { return now_; }
  std::int64_t executed() const { return executed_; }
  void run_until(double t_end) {
    while (!heap_.empty() && heap_.top().at <= t_end) {
      Entry e{heap_.top().at, heap_.top().seq,
              std::move(const_cast<Entry&>(heap_.top()).action)};
      heap_.pop();
      now_ = e.at;
      ++executed_;
      e.action();
    }
    now_ = t_end;
  }

 private:
  struct Entry {
    double at;
    std::int64_t seq;
    std::function<void()> action;
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  double now_ = 0.0;
  std::int64_t next_seq_ = 0;
  std::int64_t executed_ = 0;
};

/// Seeded random workload: `timers` periodic timers with jittered periods,
/// each firing chains of short-delay one-shots - the heartbeat/delivery
/// mix of the cluster engine. Records (id, fire-time) per execution.
template <typename Queue>
std::vector<std::pair<int, double>> trace_workload(Queue& q,
                                                   std::uint64_t seed,
                                                   int timers,
                                                   double horizon) {
  std::vector<std::pair<int, double>> trace;
  std::vector<Rng> rngs;
  const Rng base(seed);
  rngs.reserve(static_cast<std::size_t>(timers));
  std::function<void(int)> tick = [&](int i) {
    trace.emplace_back(i, q.now());
    Rng& rng = rngs[static_cast<std::size_t>(i)];
    const double jitter = rng.uniform01() * 9.5;
    q.schedule_in(jitter, [&trace, &q, i] {
      trace.emplace_back(1000 + i, q.now());
    });
    q.schedule_in(40.0 + rng.uniform01() * 120.0, [&tick, i] { tick(i); });
  };
  for (int i = 0; i < timers; ++i) {
    rngs.push_back(base.split(static_cast<std::uint64_t>(i)));
    q.schedule(rngs.back().uniform01() * 100.0, [&tick, i] { tick(i); });
  }
  q.run_until(horizon);
  return trace;
}

TEST(EventQueue, DeterministicAgainstReferenceHeap) {
  // Same seed => identical event sequence and executed() count on the
  // slab/wheel core and on a plain (at, seq) binary heap (the
  // pre-refactor representation). This is the bit-for-bit guarantee the
  // cluster metrics rely on.
  EventQueue current;
  ReferenceQueue reference;
  const auto got = trace_workload(current, 0xd5, 64, 3'000.0);
  const auto want = trace_workload(reference, 0xd5, 64, 3'000.0);
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(got, want);
  EXPECT_EQ(current.executed(), reference.executed());
  EXPECT_DOUBLE_EQ(current.now(), reference.now());
}

TEST(EventQueue, SameSeedSameTraceAcrossRuns) {
  EventQueue a;
  EventQueue b;
  EXPECT_EQ(trace_workload(a, 7, 32, 2'000.0),
            trace_workload(b, 7, 32, 2'000.0));
  EXPECT_EQ(a.executed(), b.executed());
}

TEST(EventQueue, WheelCascadeAtBucketBoundaries) {
  // With tick_ms = 1 the level-0 wheel spans 256 ticks and level 1 spans
  // 65536; events straddling those boundaries (and one beyond the whole
  // wheel range, taking the far-future heap fallback) must still fire in
  // exact (at, seq) order regardless of insertion order.
  EventQueue q(1.0);
  std::vector<double> fired;
  const std::vector<double> times = {
      255.0, 256.0, 257.0,             // level-0 -> level-1 boundary
      65'535.0, 65'536.0, 65'537.0,    // level-1 -> level-2 boundary
      16'777'216.5,                    // past the wheel: heap fallback
      255.5, 0.25, 256.0,              // duplicates tiebreak by seq
  };
  std::vector<double> want = times;
  std::sort(want.begin(), want.end());
  // Adversarial insertion order: far-future first, then descending.
  std::vector<double> insert = times;
  std::sort(insert.begin(), insert.end(), std::greater<>());
  for (const double at : insert) {
    q.schedule(at, [&fired, &q] { fired.push_back(q.now()); });
  }
  q.run_until(17'000'000.0);
  EXPECT_EQ(fired, want);
  EXPECT_EQ(q.executed(), static_cast<std::int64_t>(times.size()));
}

TEST(EventQueue, CascadeRefilesIntoFinerLevels) {
  // An event deep in level 2 must survive two cascades (level 2 -> 1 -> 0)
  // and interleave correctly with events scheduled later but due sooner,
  // including ones created while the run is in flight.
  EventQueue q(1.0);
  std::vector<int> order;
  q.schedule(70'000.0, [&] { order.push_back(2); });
  q.schedule(100'000.0, [&] { order.push_back(3); });
  q.schedule(10.0, [&] {
    order.push_back(1);
    q.schedule_in(99'990.0 - 10.0, [&] { order.push_back(4); });  // ties 3? no: 99'990
  });
  q.run_until(200'000.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 4, 3}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventQueue::TimerId id =
      q.schedule_cancelable(100.0, [&] { ran = true; });
  EXPECT_TRUE(q.pending(id));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.pending(id));
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.cancel(id));  // second cancel: stale handle
  q.run_until(200.0);
  EXPECT_FALSE(ran);
  EXPECT_EQ(q.executed(), 0);
}

TEST(EventQueue, HandlesGoStaleAfterFiring) {
  EventQueue q;
  int runs = 0;
  EventQueue::TimerId id = q.schedule_cancelable(10.0, [&] { ++runs; });
  q.run_until(20.0);
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(q.pending(id));
  EXPECT_FALSE(q.cancel(id));
  EXPECT_FALSE(q.reschedule(id, 50.0).valid());
  // The slab slot is recycled for the next event; the old handle must not
  // alias it (generation check).
  bool second = false;
  EventQueue::TimerId fresh = q.schedule_cancelable(30.0, [&] { second = true; });
  EXPECT_FALSE(q.pending(id));
  EXPECT_FALSE(q.cancel(id));
  q.run_until(40.0);
  EXPECT_TRUE(second);
  EXPECT_FALSE(q.pending(fresh));
}

TEST(EventQueue, RescheduleMovesDeadlineBothWays) {
  EventQueue q;
  std::vector<int> order;
  EventQueue::TimerId push = q.schedule_cancelable(50.0, [&] { order.push_back(1); });
  EventQueue::TimerId pull = q.schedule_cancelable(60.0, [&] { order.push_back(2); });
  q.schedule(75.0, [&] { order.push_back(3); });
  push = q.reschedule(push, 100.0);  // pushed past everything
  ASSERT_TRUE(push.valid());
  pull = q.reschedule(pull, 10.0);  // pulled ahead of everything
  ASSERT_TRUE(pull.valid());
  EXPECT_EQ(q.size(), 3u);
  q.run_until(200.0);
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
  EXPECT_FALSE(q.pending(push));
  // Rescheduling a fired timer is a stale-handle no-op.
  EXPECT_FALSE(q.reschedule(push, 300.0).valid());
}

TEST(EventQueue, RescheduleChainsKeepOnlyTheLastDeadline) {
  // A detector deadline pushed forward on every heartbeat: many
  // superseded entries, exactly one execution at the final deadline.
  EventQueue q;
  int runs = 0;
  double fired_at = -1.0;
  EventQueue::TimerId id = q.schedule_cancelable(10.0, [&] {
    ++runs;
    fired_at = q.now();
  });
  for (int i = 1; i <= 100; ++i) {
    id = q.reschedule(id, 10.0 + i);
    ASSERT_TRUE(id.valid());
  }
  EXPECT_EQ(q.size(), 1u);
  q.run_until(1'000.0);
  EXPECT_EQ(runs, 1);
  EXPECT_DOUBLE_EQ(fired_at, 110.0);
}

TEST(EventQueue, SchedulingInThePastClampsToNow) {
  // Regression: the old core silently accepted at < now(), which let an
  // event run "before" the current clock (its timestamp lied). The clamp
  // runs it at now(), after events already pending at now(), preserving
  // (at, seq) order.
  EventQueue q;
  std::vector<int> order;
  double late_ran_at = -1.0;
  q.schedule(50.0, [&] {
    order.push_back(1);
    q.schedule(50.0, [&] { order.push_back(2); });  // pending at now()
    q.schedule(25.0, [&] {  // in the past: must clamp to t=50
      order.push_back(3);
      late_ran_at = q.now();
    });
  });
  q.run_until(100.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(late_ran_at, 50.0);
  EXPECT_DOUBLE_EQ(q.now(), 100.0);

  // schedule_in with a negative delay (float drift) takes the same clamp.
  EventQueue q2;
  bool ran = false;
  q2.run_until(10.0);
  q2.schedule_in(-5.0, [&] { ran = true; });
  q2.run_until(10.0);  // no-op: nothing pending before t=10... except the clamp
  EXPECT_TRUE(ran);
  EXPECT_EQ(q2.executed(), 1);
}

TEST(EventQueue, SizeTracksPendingAndPeak) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) {
    q.schedule(static_cast<double>(i + 1), [] {});
  }
  EventQueue::TimerId id = q.schedule_cancelable(20.0, [] {});
  EXPECT_EQ(q.size(), 11u);
  EXPECT_EQ(q.peak_size(), 11u);
  q.cancel(id);
  EXPECT_EQ(q.size(), 10u);
  q.run_until(100.0);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.peak_size(), 11u);
  EXPECT_EQ(q.executed(), 10);
}

TEST(EventQueue, OrdersByTimeThenSequence) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(10.0, [&] { order.push_back(2); });
  q.schedule(5.0, [&] { order.push_back(1); });
  q.schedule(10.0, [&] { order.push_back(3); });  // same time: FIFO by seq
  q.run_until(20.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 20.0);
}

TEST(EventQueue, ActionsCanSchedule) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 5) q.schedule_in(1.0, tick);
  };
  q.schedule(0.0, tick);
  q.run_until(100.0);
  EXPECT_EQ(count, 5);
}

TEST(EventQueue, StopsAtBoundary) {
  EventQueue q;
  bool late = false;
  q.schedule(50.0, [&] { late = true; });
  q.run_until(49.0);
  EXPECT_FALSE(late);
  q.run_until(51.0);
  EXPECT_TRUE(late);
}

TEST(Network, DelaysAreAtLeastMinimum) {
  EventQueue q;
  NetworkParams params;
  params.min_delay_ms = 2.0;
  Network net(q, 1, params);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(net.sample_delay(), 2.0);
  }
}

TEST(Network, LossRateApproximates) {
  EventQueue q;
  NetworkParams params;
  params.loss_prob = 0.25;
  Network net(q, 2, params);
  int delivered = 0;
  for (int i = 0; i < 4000; ++i) {
    net.send(0, 1, [&] { ++delivered; });
  }
  q.run_until(1e9);
  EXPECT_NEAR(static_cast<double>(net.dropped()) / net.sent(), 0.25, 0.03);
  EXPECT_EQ(delivered + net.dropped(), net.sent());
}

TEST(Network, PreGstPenaltyRaisesDelays) {
  EventQueue q;
  NetworkParams params;
  params.gst_ms = 1e9;  // permanently pre-GST
  params.pre_gst_extra_ms = 100.0;
  params.pre_gst_chaos_prob = 1.0;
  Network chaotic(q, 3, params);
  params.pre_gst_chaos_prob = 0.0;
  Network calm(q, 3, params);
  double chaotic_sum = 0, calm_sum = 0;
  for (int i = 0; i < 200; ++i) {
    chaotic_sum += chaotic.sample_delay();
    calm_sum += calm.sample_delay();
  }
  EXPECT_GT(chaotic_sum / 200.0, calm_sum / 200.0 + 90.0);
}

TEST(FixedTimeout, SuspectsAfterSilence) {
  FixedTimeoutDetector d(FixedTimeoutParams{200.0});
  d.on_heartbeat(1000.0);
  EXPECT_FALSE(d.suspects(1100.0));
  EXPECT_TRUE(d.suspects(1300.0));
  d.on_heartbeat(1350.0);  // trust restored
  EXPECT_FALSE(d.suspects(1400.0));
}

TEST(ChenAdaptive, LearnsThePeriod) {
  ChenAdaptiveParams params;
  params.alpha_ms = 50.0;
  ChenAdaptiveDetector d(params);
  for (int i = 0; i < 10; ++i) {
    d.on_heartbeat(100.0 * i);
  }
  // Expected arrival ~1000; margin 50.
  EXPECT_FALSE(d.suspects(1040.0));
  EXPECT_TRUE(d.suspects(1060.0));
}

TEST(ChenAdaptive, AdaptsToSlowerPeriod) {
  ChenAdaptiveParams params;
  params.alpha_ms = 30.0;
  params.window = 4;
  ChenAdaptiveDetector d(params);
  double t = 0.0;
  for (int i = 0; i < 6; ++i) {
    d.on_heartbeat(t);
    t += 100.0;
  }
  const double fast_ea = d.expected_arrival();
  for (int i = 0; i < 6; ++i) {
    d.on_heartbeat(t);
    t += 300.0;
  }
  EXPECT_GT(d.expected_arrival() - (t - 300.0), fast_ea - 500.0);
  EXPECT_FALSE(d.suspects(t - 300.0 + 310.0));
}

TEST(PhiAccrual, PhiGrowsWithSilence) {
  PhiAccrualDetector d(PhiAccrualParams{});
  for (int i = 0; i < 20; ++i) {
    d.on_heartbeat(100.0 * i);
  }
  const double now = 1900.0;
  EXPECT_LT(d.phi(now + 50.0), d.phi(now + 300.0));
  EXPECT_LT(d.phi(now + 300.0), d.phi(now + 800.0));
}

TEST(PhiAccrual, ThresholdGatesSuspicion) {
  PhiAccrualParams params;
  params.threshold = 3.0;
  PhiAccrualDetector d(params);
  for (int i = 0; i < 20; ++i) {
    d.on_heartbeat(100.0 * i);
  }
  EXPECT_FALSE(d.suspects(1950.0));
  EXPECT_TRUE(d.suspects(3000.0));
}

TEST(Qos, CrashIsDetected) {
  QosConfig config;
  config.detector.kind = DetectorKind::kChen;
  config.crash_at_ms = 20'000.0;
  config.duration_ms = 30'000.0;
  const QosResult r = run_qos_experiment(config, 1);
  ASSERT_TRUE(r.crashed);
  EXPECT_GE(r.detection_time_ms, 0.0);
  EXPECT_LT(r.detection_time_ms, 2000.0);
}

TEST(Qos, NoCrashNoDetection) {
  QosConfig config;
  config.crash_at_ms = -1.0;
  config.duration_ms = 15'000.0;
  const QosResult r = run_qos_experiment(config, 2);
  EXPECT_FALSE(r.crashed);
  EXPECT_LT(r.detection_time_ms, 0.0);
}

TEST(Qos, TightTimeoutTradesAccuracyForSpeed) {
  // The fundamental QoS trade: a short fixed timeout detects faster but
  // makes more mistakes on a jittery network than a long one.
  QosConfig tight;
  tight.detector.kind = DetectorKind::kFixed;
  tight.detector.fixed.timeout_ms = 120.0;
  tight.network.jitter_sigma = 1.2;
  tight.network.loss_prob = 0.05;
  QosConfig loose = tight;
  loose.detector.fixed.timeout_ms = 900.0;

  const QosAggregate a = run_qos_sweep(tight, 3, 10);
  const QosAggregate b = run_qos_sweep(loose, 3, 10);
  EXPECT_GT(a.mistake_rate_per_s.mean(), b.mistake_rate_per_s.mean());
  EXPECT_LT(a.detection_time_ms.mean(), b.detection_time_ms.mean());
}

TEST(Qos, LossyNetworkHurtsFixedTimeout) {
  QosConfig clean;
  clean.detector.kind = DetectorKind::kFixed;
  clean.detector.fixed.timeout_ms = 150.0;
  QosConfig lossy = clean;
  lossy.network.loss_prob = 0.3;
  const QosAggregate a = run_qos_sweep(clean, 5, 8);
  const QosAggregate b = run_qos_sweep(lossy, 5, 8);
  EXPECT_LE(a.mistake_rate_per_s.mean(), b.mistake_rate_per_s.mean());
}

TEST(Membership, CrashedNodeIsExcluded) {
  MembershipConfig config;
  config.n = 5;
  config.crash_at_ms = std::vector<double>(5, -1.0);
  config.crash_at_ms[3] = 10'000.0;
  config.duration_ms = 30'000.0;
  const MembershipResult r = run_membership_experiment(config, 1);
  EXPECT_GE(r.exclusions, 1);
  EXPECT_EQ(r.false_exclusions, 0);
  EXPECT_TRUE(r.converged) << r.final_view;
  EXPECT_TRUE(r.suspicions_accurate);
  EXPECT_GT(r.exclusion_latency_ms.count(), 0);
}

TEST(Membership, CoordinatorCrashTriggersFailover) {
  MembershipConfig config;
  config.n = 5;
  config.crash_at_ms = std::vector<double>(5, -1.0);
  config.crash_at_ms[0] = 8'000.0;  // the initial coordinator dies
  config.duration_ms = 30'000.0;
  const MembershipResult r = run_membership_experiment(config, 2);
  EXPECT_TRUE(r.converged) << r.final_view;
  EXPECT_NE(r.final_view.find("{1"), std::string::npos) << r.final_view;
}

TEST(Membership, AggressiveTimeoutsSacrificeLiveNodes) {
  // The cost of emulating P: with hair-trigger timeouts on a jittery
  // pre-GST network, live nodes get excluded - and then halt, making every
  // suspicion "accurate" exactly as the paper describes.
  MembershipConfig config;
  config.n = 6;
  config.detector.kind = DetectorKind::kFixed;
  config.detector.fixed.timeout_ms = 110.0;
  config.network.jitter_sigma = 1.0;
  config.network.gst_ms = 20'000.0;
  config.network.pre_gst_extra_ms = 400.0;
  config.network.pre_gst_chaos_prob = 0.5;
  config.duration_ms = 40'000.0;
  std::int64_t false_exclusions = 0;
  bool all_accurate = true;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const MembershipResult r = run_membership_experiment(config, seed);
    false_exclusions += r.false_exclusions;
    all_accurate = all_accurate && r.suspicions_accurate;
  }
  EXPECT_GT(false_exclusions, 0);
  EXPECT_TRUE(all_accurate);
}

TEST(Membership, StableNetworkKeepsEveryone) {
  MembershipConfig config;
  config.n = 5;
  config.detector.kind = DetectorKind::kChen;
  config.duration_ms = 20'000.0;
  const MembershipResult r = run_membership_experiment(config, 7);
  EXPECT_EQ(r.exclusions, 0);
  EXPECT_TRUE(r.converged) << r.final_view;
}

}  // namespace
}  // namespace rfd::rt
