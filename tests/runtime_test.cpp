// Runtime-layer tests: the event queue, the network model, the three
// timeout detectors' core behaviours (completeness after a crash, eventual
// accuracy after stabilization, the accuracy/speed trade), QoS metrics,
// and the group membership emulation of P.
#include <gtest/gtest.h>

#include "runtime/detectors.hpp"
#include "runtime/event_queue.hpp"
#include "runtime/membership.hpp"
#include "runtime/network.hpp"
#include "runtime/qos.hpp"

namespace rfd::rt {
namespace {

TEST(EventQueue, OrdersByTimeThenSequence) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(10.0, [&] { order.push_back(2); });
  q.schedule(5.0, [&] { order.push_back(1); });
  q.schedule(10.0, [&] { order.push_back(3); });  // same time: FIFO by seq
  q.run_until(20.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 20.0);
}

TEST(EventQueue, ActionsCanSchedule) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 5) q.schedule_in(1.0, tick);
  };
  q.schedule(0.0, tick);
  q.run_until(100.0);
  EXPECT_EQ(count, 5);
}

TEST(EventQueue, StopsAtBoundary) {
  EventQueue q;
  bool late = false;
  q.schedule(50.0, [&] { late = true; });
  q.run_until(49.0);
  EXPECT_FALSE(late);
  q.run_until(51.0);
  EXPECT_TRUE(late);
}

TEST(Network, DelaysAreAtLeastMinimum) {
  EventQueue q;
  NetworkParams params;
  params.min_delay_ms = 2.0;
  Network net(q, 1, params);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(net.sample_delay(), 2.0);
  }
}

TEST(Network, LossRateApproximates) {
  EventQueue q;
  NetworkParams params;
  params.loss_prob = 0.25;
  Network net(q, 2, params);
  int delivered = 0;
  for (int i = 0; i < 4000; ++i) {
    net.send(0, 1, [&] { ++delivered; });
  }
  q.run_until(1e9);
  EXPECT_NEAR(static_cast<double>(net.dropped()) / net.sent(), 0.25, 0.03);
  EXPECT_EQ(delivered + net.dropped(), net.sent());
}

TEST(Network, PreGstPenaltyRaisesDelays) {
  EventQueue q;
  NetworkParams params;
  params.gst_ms = 1e9;  // permanently pre-GST
  params.pre_gst_extra_ms = 100.0;
  params.pre_gst_chaos_prob = 1.0;
  Network chaotic(q, 3, params);
  params.pre_gst_chaos_prob = 0.0;
  Network calm(q, 3, params);
  double chaotic_sum = 0, calm_sum = 0;
  for (int i = 0; i < 200; ++i) {
    chaotic_sum += chaotic.sample_delay();
    calm_sum += calm.sample_delay();
  }
  EXPECT_GT(chaotic_sum / 200.0, calm_sum / 200.0 + 90.0);
}

TEST(FixedTimeout, SuspectsAfterSilence) {
  FixedTimeoutDetector d(FixedTimeoutParams{200.0});
  d.on_heartbeat(1000.0);
  EXPECT_FALSE(d.suspects(1100.0));
  EXPECT_TRUE(d.suspects(1300.0));
  d.on_heartbeat(1350.0);  // trust restored
  EXPECT_FALSE(d.suspects(1400.0));
}

TEST(ChenAdaptive, LearnsThePeriod) {
  ChenAdaptiveParams params;
  params.alpha_ms = 50.0;
  ChenAdaptiveDetector d(params);
  for (int i = 0; i < 10; ++i) {
    d.on_heartbeat(100.0 * i);
  }
  // Expected arrival ~1000; margin 50.
  EXPECT_FALSE(d.suspects(1040.0));
  EXPECT_TRUE(d.suspects(1060.0));
}

TEST(ChenAdaptive, AdaptsToSlowerPeriod) {
  ChenAdaptiveParams params;
  params.alpha_ms = 30.0;
  params.window = 4;
  ChenAdaptiveDetector d(params);
  double t = 0.0;
  for (int i = 0; i < 6; ++i) {
    d.on_heartbeat(t);
    t += 100.0;
  }
  const double fast_ea = d.expected_arrival();
  for (int i = 0; i < 6; ++i) {
    d.on_heartbeat(t);
    t += 300.0;
  }
  EXPECT_GT(d.expected_arrival() - (t - 300.0), fast_ea - 500.0);
  EXPECT_FALSE(d.suspects(t - 300.0 + 310.0));
}

TEST(PhiAccrual, PhiGrowsWithSilence) {
  PhiAccrualDetector d(PhiAccrualParams{});
  for (int i = 0; i < 20; ++i) {
    d.on_heartbeat(100.0 * i);
  }
  const double now = 1900.0;
  EXPECT_LT(d.phi(now + 50.0), d.phi(now + 300.0));
  EXPECT_LT(d.phi(now + 300.0), d.phi(now + 800.0));
}

TEST(PhiAccrual, ThresholdGatesSuspicion) {
  PhiAccrualParams params;
  params.threshold = 3.0;
  PhiAccrualDetector d(params);
  for (int i = 0; i < 20; ++i) {
    d.on_heartbeat(100.0 * i);
  }
  EXPECT_FALSE(d.suspects(1950.0));
  EXPECT_TRUE(d.suspects(3000.0));
}

TEST(Qos, CrashIsDetected) {
  QosConfig config;
  config.detector.kind = DetectorKind::kChen;
  config.crash_at_ms = 20'000.0;
  config.duration_ms = 30'000.0;
  const QosResult r = run_qos_experiment(config, 1);
  ASSERT_TRUE(r.crashed);
  EXPECT_GE(r.detection_time_ms, 0.0);
  EXPECT_LT(r.detection_time_ms, 2000.0);
}

TEST(Qos, NoCrashNoDetection) {
  QosConfig config;
  config.crash_at_ms = -1.0;
  config.duration_ms = 15'000.0;
  const QosResult r = run_qos_experiment(config, 2);
  EXPECT_FALSE(r.crashed);
  EXPECT_LT(r.detection_time_ms, 0.0);
}

TEST(Qos, TightTimeoutTradesAccuracyForSpeed) {
  // The fundamental QoS trade: a short fixed timeout detects faster but
  // makes more mistakes on a jittery network than a long one.
  QosConfig tight;
  tight.detector.kind = DetectorKind::kFixed;
  tight.detector.fixed.timeout_ms = 120.0;
  tight.network.jitter_sigma = 1.2;
  tight.network.loss_prob = 0.05;
  QosConfig loose = tight;
  loose.detector.fixed.timeout_ms = 900.0;

  const QosAggregate a = run_qos_sweep(tight, 3, 10);
  const QosAggregate b = run_qos_sweep(loose, 3, 10);
  EXPECT_GT(a.mistake_rate_per_s.mean(), b.mistake_rate_per_s.mean());
  EXPECT_LT(a.detection_time_ms.mean(), b.detection_time_ms.mean());
}

TEST(Qos, LossyNetworkHurtsFixedTimeout) {
  QosConfig clean;
  clean.detector.kind = DetectorKind::kFixed;
  clean.detector.fixed.timeout_ms = 150.0;
  QosConfig lossy = clean;
  lossy.network.loss_prob = 0.3;
  const QosAggregate a = run_qos_sweep(clean, 5, 8);
  const QosAggregate b = run_qos_sweep(lossy, 5, 8);
  EXPECT_LE(a.mistake_rate_per_s.mean(), b.mistake_rate_per_s.mean());
}

TEST(Membership, CrashedNodeIsExcluded) {
  MembershipConfig config;
  config.n = 5;
  config.crash_at_ms = std::vector<double>(5, -1.0);
  config.crash_at_ms[3] = 10'000.0;
  config.duration_ms = 30'000.0;
  const MembershipResult r = run_membership_experiment(config, 1);
  EXPECT_GE(r.exclusions, 1);
  EXPECT_EQ(r.false_exclusions, 0);
  EXPECT_TRUE(r.converged) << r.final_view;
  EXPECT_TRUE(r.suspicions_accurate);
  EXPECT_GT(r.exclusion_latency_ms.count(), 0);
}

TEST(Membership, CoordinatorCrashTriggersFailover) {
  MembershipConfig config;
  config.n = 5;
  config.crash_at_ms = std::vector<double>(5, -1.0);
  config.crash_at_ms[0] = 8'000.0;  // the initial coordinator dies
  config.duration_ms = 30'000.0;
  const MembershipResult r = run_membership_experiment(config, 2);
  EXPECT_TRUE(r.converged) << r.final_view;
  EXPECT_NE(r.final_view.find("{1"), std::string::npos) << r.final_view;
}

TEST(Membership, AggressiveTimeoutsSacrificeLiveNodes) {
  // The cost of emulating P: with hair-trigger timeouts on a jittery
  // pre-GST network, live nodes get excluded - and then halt, making every
  // suspicion "accurate" exactly as the paper describes.
  MembershipConfig config;
  config.n = 6;
  config.detector.kind = DetectorKind::kFixed;
  config.detector.fixed.timeout_ms = 110.0;
  config.network.jitter_sigma = 1.0;
  config.network.gst_ms = 20'000.0;
  config.network.pre_gst_extra_ms = 400.0;
  config.network.pre_gst_chaos_prob = 0.5;
  config.duration_ms = 40'000.0;
  std::int64_t false_exclusions = 0;
  bool all_accurate = true;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const MembershipResult r = run_membership_experiment(config, seed);
    false_exclusions += r.false_exclusions;
    all_accurate = all_accurate && r.suspicions_accurate;
  }
  EXPECT_GT(false_exclusions, 0);
  EXPECT_TRUE(all_accurate);
}

TEST(Membership, StableNetworkKeepsEveryone) {
  MembershipConfig config;
  config.n = 5;
  config.detector.kind = DetectorKind::kChen;
  config.duration_ms = 20'000.0;
  const MembershipResult r = run_membership_experiment(config, 7);
  EXPECT_EQ(r.exclusions, 0);
  EXPECT_TRUE(r.converged) << r.final_view;
}

}  // namespace
}  // namespace rfd::rt
