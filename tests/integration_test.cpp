// End-to-end integration: the collapse pipeline (a detector that solves
// consensus -> T(D->P) -> emulated P -> TRB on top of the emulation), and
// trace validation across the whole stack.
#include <gtest/gtest.h>

#include "algo/specs.hpp"
#include "algo/trb/trb.hpp"
#include "fd/registry.hpp"
#include "model/environment.hpp"
#include "reduction/emulation.hpp"
#include "sim/simulator.hpp"

namespace rfd {
namespace {

TEST(CollapsePipeline, TrbRunsOnEmulatedPerfectDetector) {
  // The paper's punchline as a program: the consumer TRB never sees the
  // real oracle - only output(P) from the reduction - and still satisfies
  // its spec. Realistic D solving consensus => P => TRB.
  const ProcessId n = 4;
  const Value msg = 31337;
  model::PatternSweep sweep(n, 0x17);
  sweep.with_all_correct().with_single_crashes({0, 2000});
  for (const auto& pattern : sweep.patterns()) {
    const auto oracle = fd::find_detector("P").factory(pattern, 3);
    std::vector<std::unique_ptr<sim::Automaton>> automata;
    for (ProcessId p = 0; p < n; ++p) {
      automata.push_back(std::make_unique<red::EmulatedFdStack>(
          n, red::ConsensusToP::ct_strong_factory(n), /*instances=*/40,
          [n, msg](ProcessId) {
            return std::make_unique<algo::TrbAutomaton>(n, /*sender=*/1, msg);
          },
          /*reduction_gap=*/200));
    }
    sim::Simulator sim(pattern, *oracle, std::move(automata),
                       std::make_unique<sim::RandomAdversary>(0x99));
    sim.run_for(30'000);

    const auto check = algo::check_trb(sim.trace(), 0, /*sender=*/1, msg);
    EXPECT_TRUE(check.ok()) << pattern.to_string() << ": "
                            << check.to_string();
  }
}

TEST(CollapsePipeline, EmulatedDetectorSeesTheCrash) {
  // Sender p1 crashes mid-run: the reduction must eventually feed the
  // suspicion to the TRB consumer, which then delivers nil everywhere.
  const ProcessId n = 4;
  const Value msg = 777;
  const auto pattern = model::single_crash(n, 1, 100);
  const auto oracle = fd::find_detector("P").factory(pattern, 5);
  std::vector<std::unique_ptr<sim::Automaton>> automata;
  for (ProcessId p = 0; p < n; ++p) {
    automata.push_back(std::make_unique<red::EmulatedFdStack>(
        n, red::ConsensusToP::ct_strong_factory(n), 40,
        [n, msg](ProcessId) {
          return std::make_unique<algo::TrbAutomaton>(n, /*sender=*/1, msg);
        },
        /*reduction_gap=*/200));
  }
  sim::Simulator sim(pattern, *oracle, std::move(automata),
                     std::make_unique<sim::RandomAdversary>(0x77));
  sim.run_for(30'000);

  const auto check = algo::check_trb(sim.trace(), 0, 1, msg);
  EXPECT_TRUE(check.agreement && check.integrity) << check.to_string();
  pattern.correct().for_each([&](ProcessId p) {
    const auto d = sim.trace().delivery_of(p, 0);
    ASSERT_TRUE(d.has_value()) << "p" << p;
  });
  // The emulation at some survivor must have suspected p1.
  bool suspected = false;
  for (ProcessId p = 0; p < n; ++p) {
    if (!pattern.correct().contains(p)) continue;
    const auto& stack = dynamic_cast<red::EmulatedFdStack&>(sim.automaton(p));
    suspected = suspected || stack.reduction().output().contains(1);
  }
  EXPECT_TRUE(suspected);
}

TEST(FullStack, TracesValidateAcrossAlgorithms) {
  // Every recorded run must satisfy the model's run conditions against the
  // oracle that produced it.
  const ProcessId n = 4;
  const auto pattern = model::cascade(n, 2, 150, 200);
  for (const std::string detector : {"P", "<>P", "<>S", "P<"}) {
    const auto oracle = fd::find_detector(detector).factory(pattern, 11);
    std::vector<std::unique_ptr<sim::Automaton>> automata;
    for (ProcessId p = 0; p < n; ++p) {
      automata.push_back(std::make_unique<red::ConsensusToP>(
          n, red::ConsensusToP::ct_strong_factory(n), 6));
    }
    sim::Simulator sim(pattern, *oracle, std::move(automata),
                       std::make_unique<sim::RandomAdversary>(0xabc));
    sim.run_for(6000);
    const auto result = sim.trace().validate(*oracle);
    EXPECT_TRUE(result.ok) << detector << ": " << result.detail;
  }
}

}  // namespace
}  // namespace rfd
