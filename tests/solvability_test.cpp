// The E1 hierarchy-collapse table, asserted: which (algorithm, detector,
// problem) triples are solvable when crashes are unbounded, and how the
// picture changes when a majority is guaranteed.
#include <gtest/gtest.h>

#include "core/solvability.hpp"

namespace rfd::core {
namespace {

EvalConfig fast_config() {
  EvalConfig config;
  config.horizon = 9000;
  config.schedule_seeds = 2;
  return config;
}

std::vector<model::FailurePattern> unbounded(ProcessId n) {
  return standard_patterns(n, n - 1, 0xe1, 1500, /*random_count=*/4);
}

std::vector<model::FailurePattern> minority_crashes(ProcessId n) {
  return standard_patterns(n, (n - 1) / 2, 0xe2, 1500, /*random_count=*/4);
}

TEST(Solvability, PerfectSolvesUniformConsensusUnbounded) {
  const auto verdict = evaluate_algorithm(
      fd::find_detector("P"), AlgoKind::kCtStrong, SpecKind::kUniformConsensus,
      unbounded(4), fast_config());
  EXPECT_TRUE(verdict.solved()) << verdict.to_string() << " "
                                << verdict.first_failure;
}

TEST(Solvability, PerfectSolvesTrbUnbounded) {
  const auto verdict =
      evaluate_algorithm(fd::find_detector("P"), AlgoKind::kTrb,
                         SpecKind::kTrb, unbounded(4), fast_config());
  EXPECT_TRUE(verdict.solved()) << verdict.to_string() << " "
                                << verdict.first_failure;
}

TEST(Solvability, StrongDetectorsSolveConsensusButNotTrb) {
  // The gap the paper closes: S-grade information reaches consensus with
  // unbounded crashes, yet TRB demands Perfect-grade accuracy. The TRB
  // sender must not be p0: the cheating detector's immune process is the
  // smallest correct one, which p0 always is when alive.
  const auto& cheat = fd::find_detector("S(cheat)");
  const auto consensus = evaluate_algorithm(cheat, AlgoKind::kCtStrong,
                                            SpecKind::kUniformConsensus,
                                            unbounded(4), fast_config());
  EXPECT_TRUE(consensus.solved()) << consensus.to_string() << " "
                                  << consensus.first_failure;
  EvalConfig trb_config = fast_config();
  trb_config.trb_sender = 2;
  trb_config.schedule_seeds = 3;
  const auto trb = evaluate_algorithm(cheat, AlgoKind::kTrb, SpecKind::kTrb,
                                      unbounded(4), trb_config);
  EXPECT_FALSE(trb.solved());
  EXPECT_GT(trb.safety_violations, 0) << trb.to_string();
}

TEST(Solvability, EventuallyStrongNeedsMajority) {
  const auto& es = fd::find_detector("<>S");
  EvalConfig config = fast_config();
  config.horizon = 20'000;
  const auto with_majority = evaluate_algorithm(
      es, AlgoKind::kCtRotating, SpecKind::kUniformConsensus,
      minority_crashes(5), config);
  EXPECT_TRUE(with_majority.solved())
      << with_majority.to_string() << " " << with_majority.first_failure;

  // Without a majority the algorithm must block - safely. The crashes
  // have to strike before the decision, so use immediate heavy crashes
  // (late crashes let the protocol finish first, which is not a
  // counterexample).
  std::vector<model::FailurePattern> early_heavy;
  early_heavy.push_back(model::cascade(5, 3, 0, 1));
  early_heavy.push_back(model::cascade(5, 4, 0, 1));
  for (ProcessId survivor = 0; survivor < 5; ++survivor) {
    early_heavy.push_back(model::all_but_one_crash(5, survivor, 0));
  }
  const auto without = evaluate_algorithm(es, AlgoKind::kCtRotating,
                                          SpecKind::kUniformConsensus,
                                          early_heavy, config);
  EXPECT_FALSE(without.solved());
  EXPECT_TRUE(without.safe()) << without.to_string() << " "
                              << without.first_failure;
  EXPECT_GT(without.liveness_failures, 0);
}

TEST(Solvability, EventuallyPerfectCannotRunTheStrongAlgorithm) {
  // <>P lacks (any-time) weak accuracy; CT-S under it loses uniform
  // consensus on some run - the algorithm really consumes S-ness.
  const auto verdict = evaluate_algorithm(
      fd::find_detector("<>P"), AlgoKind::kCtStrong,
      SpecKind::kUniformConsensus, unbounded(4), fast_config());
  EXPECT_FALSE(verdict.solved()) << verdict.to_string();
}

TEST(Solvability, PartiallyPerfectSplitsTheConsensusVariants) {
  const auto& pless = fd::find_detector("P<");
  const auto cr = evaluate_algorithm(pless, AlgoKind::kCrChain,
                                     SpecKind::kCorrectRestrictedConsensus,
                                     unbounded(4), fast_config());
  EXPECT_TRUE(cr.solved()) << cr.to_string() << " " << cr.first_failure;
  // Uniform consensus fails for the chain algorithm under SOME pattern /
  // schedule (p0 deciding before crashing); the sweep includes crash-at-0
  // patterns where the uniformity hole is reachable but not guaranteed, so
  // assert only the documented direction: it is not a uniform solution in
  // general. (The deterministic counterexample lives in consensus_test.)
  const auto uni = evaluate_algorithm(pless, AlgoKind::kCrChain,
                                      SpecKind::kUniformConsensus,
                                      unbounded(4), fast_config());
  EXPECT_GE(uni.runs, cr.runs);
}

TEST(Solvability, MaraboutSolvesBothUnbounded) {
  const auto& m = fd::find_detector("Marabout");
  const auto consensus = evaluate_algorithm(m, AlgoKind::kMarabout,
                                            SpecKind::kUniformConsensus,
                                            unbounded(4), fast_config());
  EXPECT_TRUE(consensus.solved())
      << consensus.to_string() << " " << consensus.first_failure;
  // And the CT-S algorithm also works since M is in S.
  const auto cts = evaluate_algorithm(m, AlgoKind::kCtStrong,
                                      SpecKind::kUniformConsensus,
                                      unbounded(4), fast_config());
  EXPECT_TRUE(cts.solved()) << cts.to_string() << " " << cts.first_failure;
}

TEST(Solvability, VerdictStringsAreInformative) {
  Verdict v;
  v.runs = 10;
  v.ok = 7;
  v.safety_violations = 1;
  v.liveness_failures = 2;
  const auto s = v.to_string();
  EXPECT_NE(s.find("7/10"), std::string::npos);
  EXPECT_NE(s.find("unsafe"), std::string::npos);
  EXPECT_NE(s.find("stuck"), std::string::npos);
  EXPECT_FALSE(v.solved());
  EXPECT_FALSE(v.safe());
}

TEST(Solvability, StandardPatternsRespectCrashCap) {
  for (const auto& f : standard_patterns(5, 2, 1, 1000)) {
    EXPECT_LE(f.num_faulty(), 2) << f.to_string();
  }
  bool has_heavy = false;
  for (const auto& f : standard_patterns(5, 4, 1, 1000)) {
    EXPECT_LE(f.num_faulty(), 4);
    has_heavy = has_heavy || f.num_faulty() == 4;
  }
  EXPECT_TRUE(has_heavy);
}

}  // namespace
}  // namespace rfd::core
