// Shared helpers for the scenario-file-driven tests: locating the
// checked-in scenarios/ library (via the RFD_SCENARIO_DIR compile
// definition), loading a file into the fixed reference cluster
// configuration the golden digests are pinned against, and the FNV-1a
// digest used to fingerprint trace bytes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "cluster/engine.hpp"
#include "cluster/scenario_dsl.hpp"

namespace rfd::cluster::testutil {

inline std::string scenario_dir() {
#ifdef RFD_SCENARIO_DIR
  return RFD_SCENARIO_DIR;
#else
  return "scenarios";
#endif
}

inline ScenarioDoc load_doc(const std::string& file) {
  ScenarioDoc doc;
  DslError err;
  const std::string path = scenario_dir() + "/" + file;
  if (!load_scenario_file(path, DslContext{}, doc, err)) {
    ADD_FAILURE() << path << ": " << err.to_string();
  }
  return doc;
}

/// The reference configuration golden digests are pinned against: the
/// scenario file supplies n/max_nodes/duration, everything else is
/// fixed. Changing any of these invalidates scenarios/GOLDEN.txt.
inline ClusterConfig scenario_cluster_config(const ScenarioDoc& doc) {
  ClusterConfig config;
  config.n = doc.n > 0 ? doc.n : 32;
  config.max_nodes = std::max({doc.max_nodes, config.n,
                               static_cast<int>(doc.max_node_ref) + 1});
  config.topology.kind = TopologyKind::kGossip;
  config.topology.digest_size = 16;
  config.detector.kind = rt::DetectorKind::kChen;
  config.detector.chen.alpha_ms = 400.0;
  config.heartbeat_interval_ms = 100.0;
  config.check_interval_ms = 100.0;
  config.duration_ms = doc.duration_ms > 0.0 ? doc.duration_ms : 12'000.0;
  config.scenario = doc.scenario;
  return config;
}

inline std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// FNV-1a 64-bit, printed as fixed-width hex.
inline std::string fnv1a_hex(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace rfd::cluster::testutil
