// Shared helpers for the scenario-file-driven tests: locating the
// checked-in scenarios/ library (via the RFD_SCENARIO_DIR compile
// definition), loading a file into the fixed reference cluster
// configuration the golden digests are pinned against, and the FNV-1a
// digest used to fingerprint trace bytes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "cluster/engine.hpp"
#include "cluster/scenario_dsl.hpp"

namespace rfd::cluster::testutil {

inline std::string scenario_dir() {
#ifdef RFD_SCENARIO_DIR
  return RFD_SCENARIO_DIR;
#else
  return "scenarios";
#endif
}

inline ScenarioDoc load_doc(const std::string& file) {
  ScenarioDoc doc;
  DslError err;
  const std::string path = scenario_dir() + "/" + file;
  if (!load_scenario_file(path, DslContext{}, doc, err)) {
    ADD_FAILURE() << path << ": " << err.to_string();
  }
  return doc;
}

/// The reference configuration golden digests are pinned against: the
/// scenario file supplies n/max_nodes/duration, everything else is
/// fixed. Changing any of these invalidates scenarios/GOLDEN.txt.
inline ClusterConfig scenario_cluster_config(const ScenarioDoc& doc) {
  ClusterConfig config;
  config.n = doc.n > 0 ? doc.n : 32;
  config.max_nodes = std::max({doc.max_nodes, config.n,
                               static_cast<int>(doc.max_node_ref) + 1});
  config.topology.kind = TopologyKind::kGossip;
  config.topology.digest_size = 16;
  config.detector.kind = rt::DetectorKind::kChen;
  config.detector.chen.alpha_ms = 400.0;
  config.heartbeat_interval_ms = 100.0;
  config.check_interval_ms = 100.0;
  config.duration_ms = doc.duration_ms > 0.0 ? doc.duration_ms : 12'000.0;
  config.scenario = doc.scenario;
  return config;
}

/// Every report field a run produces, serialized for one-shot equality.
/// Shared by the shard-count and lookahead invariance suites: both assert
/// field-identical reports against a baseline run.
inline std::string report_fingerprint(const ClusterReport& r) {
  std::ostringstream ss;
  ss.precision(17);
  ss << r.n << '|' << r.max_nodes << '|' << r.topology << '|' << r.detector
     << '|' << r.duration_ms << '|' << r.messages_sent << '|'
     << r.messages_dropped << '|' << r.partition_dropped << '|'
     << r.digest_entries_sent << '|' << r.digest_payload_bytes << '|'
     << r.messages_per_node_per_s << '|' << r.entries_per_node_per_s << '|'
     << r.payload_bytes_per_node_per_s << '|' << r.events_executed << '|'
     << r.peak_event_queue << '|' << r.detection_latency_ms.count() << '|'
     << r.detection_latency_ms.mean() << '|' << r.detection_latency_ms.max()
     << '|' << r.missed_detections << '|' << r.false_suspicions << '|'
     << r.false_suspicions_per_node_per_min << '|'
     << r.convergence_ms.count() << '|' << r.convergence_ms.mean() << '|'
     << r.disruptions << '|' << r.unconverged_disruptions << '|'
     << r.final_agreement << '|' << r.suspicion_raises << '|'
     << r.suspicion_clears << '|' << r.trace_records << '|'
     << r.trace_dropped;
  return ss.str();
}

inline std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// FNV-1a 64-bit, printed as fixed-width hex.
inline std::string fnv1a_hex(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace rfd::cluster::testutil
