// Consensus algorithm tests: the S-based algorithm against the realistic
// (and cheating) Strong detectors under heavy crash sweeps, the rotating
// coordinator's majority dependence, the Marabout leader rule, and the
// non-uniformity of the P< chain (Section 6.2).
#include <gtest/gtest.h>

#include "algo/consensus/cr_chain.hpp"
#include "algo/consensus/ct_rotating.hpp"
#include "algo/consensus/ct_strong.hpp"
#include "algo/consensus/marabout_consensus.hpp"
#include "algo/specs.hpp"
#include "fd/registry.hpp"
#include "model/environment.hpp"
#include "sim/simulator.hpp"

namespace rfd::algo {
namespace {

using sim::RandomAdversary;
using sim::SimConfig;
using sim::Simulator;

constexpr Tick kHorizon = 8000;

std::vector<Value> proposals(ProcessId n) {
  std::vector<Value> out;
  for (ProcessId p = 0; p < n; ++p) out.push_back(100 + p);
  return out;
}

template <typename Algo>
sim::Trace run_with(const std::string& detector,
                    const model::FailurePattern& pattern, std::uint64_t seed,
                    SimConfig config = {}, Tick horizon = kHorizon) {
  const ProcessId n = pattern.n();
  const auto oracle = fd::find_detector(detector).factory(pattern, seed);
  std::vector<std::unique_ptr<sim::Automaton>> automata;
  for (ProcessId p = 0; p < n; ++p) {
    automata.push_back(std::make_unique<Algo>(n, 100 + p));
  }
  Simulator sim(pattern, *oracle, std::move(automata),
                std::make_unique<RandomAdversary>(mix_seed(seed, 0xad)),
                config);
  sim.run_for(horizon);
  return sim.trace();
}

struct SweepCase {
  std::string detector;
  std::size_t pattern_index;
  std::uint64_t seed;
};

std::vector<model::FailurePattern> crash_sweep(ProcessId n) {
  model::PatternSweep sweep(n, 0x5117);
  sweep.with_all_correct()
      .with_single_crashes({0, 200, 1500})
      .with_cascades(n - 1, 100, 120)
      .with_all_but_one(800)
      .with_random(6, 0, n - 1, 2500);
  return sweep.patterns();
}

class CtStrongSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CtStrongSweep, UniformConsensusHolds) {
  const auto& c = GetParam();
  const ProcessId n = 5;
  const auto patterns = crash_sweep(n);
  ASSERT_LT(c.pattern_index, patterns.size());
  const auto& pattern = patterns[c.pattern_index];
  const auto trace = run_with<CtStrongConsensus>(c.detector, pattern, c.seed);
  const auto check = check_consensus(trace, 0, proposals(n));
  EXPECT_TRUE(check.ok_uniform())
      << c.detector << " on " << pattern.to_string() << ": "
      << check.to_string();
}

std::vector<SweepCase> ct_strong_cases() {
  std::vector<SweepCase> cases;
  const std::size_t count = crash_sweep(5).size();
  // Every detector here is in S (P and Scribe are in P ⊂ S; Marabout and
  // S(cheat) are Strong): the CT-S algorithm must solve *uniform*
  // consensus with all of them, under any number of crashes.
  for (const std::string detector : {"P", "Scribe", "Marabout", "S(cheat)"}) {
    for (std::size_t pi = 0; pi < count; ++pi) {
      cases.push_back({detector, pi, 0xc0ffee});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Detectors, CtStrongSweep,
                         ::testing::ValuesIn(ct_strong_cases()),
                         [](const ::testing::TestParamInfo<SweepCase>& info) {
                           std::string name =
                               info.param.detector + "_f" +
                               std::to_string(info.param.pattern_index);
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) {
                               ch = '_';
                             }
                           }
                           return name;
                         });

TEST(CtRotating, SolvesWithMajorityUnderEventuallyStrong) {
  const ProcessId n = 5;
  model::PatternSweep sweep(n, 0xbead);
  sweep.with_all_correct()
      .with_single_crashes({0, 500})
      .with_random(4, 0, (n - 1) / 2, 1500);  // minority crashes only
  for (const auto& pattern : sweep.patterns()) {
    const auto trace =
        run_with<CtRotatingConsensus>("<>S", pattern, 0xfeed, {}, 20'000);
    const auto check = check_consensus(trace, 0, proposals(n));
    EXPECT_TRUE(check.ok_uniform())
        << pattern.to_string() << ": " << check.to_string();
  }
}

TEST(CtRotating, BlocksWithoutMajority) {
  // Half the processes are dead from the start: the rotating coordinator
  // cannot gather majority estimates and must block - safely. (The crash
  // must precede the decision; late crashes let the protocol finish.)
  const ProcessId n = 4;
  const auto pattern = model::cascade(n, 2, 0, 1);  // 2 of 4 dead at start
  const auto trace = run_with<CtRotatingConsensus>("<>S", pattern, 0x1dea);
  const auto check = check_consensus(trace, 0, proposals(n));
  EXPECT_FALSE(check.termination);
  EXPECT_TRUE(check.uniform_agreement && check.validity && check.integrity)
      << check.to_string();
}

TEST(CtRotating, BlocksEvenWithPerfectDetectorWithoutMajority) {
  // The majority requirement is the algorithm's, not the detector's: even
  // P cannot save the rotating coordinator from an n/2 crash.
  const ProcessId n = 6;
  const auto pattern = model::cascade(n, 3, 0, 1);
  const auto trace = run_with<CtRotatingConsensus>("P", pattern, 0x2dea);
  const auto check = check_consensus(trace, 0, proposals(n));
  EXPECT_FALSE(check.termination);
  EXPECT_TRUE(check.uniform_agreement) << check.to_string();
}

TEST(MaraboutConsensus, SolvesUnderUnboundedCrashes) {
  // Section 6.1: with M, consensus is solvable even when all but one
  // process crash - no realistic detector could pull this off with an
  // algorithm that never exchanges failure information.
  const ProcessId n = 5;
  for (ProcessId survivor = 0; survivor < n; ++survivor) {
    const auto pattern = model::all_but_one_crash(n, survivor, 400);
    const auto trace =
        run_with<MaraboutConsensus>("Marabout", pattern, 0x3dea);
    const auto check = check_consensus(trace, 0, proposals(n));
    EXPECT_TRUE(check.ok_uniform())
        << "survivor p" << survivor << ": " << check.to_string();
    // The decision is the smallest correct process's value.
    const auto d = trace.decision_of(survivor, 0);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->value, 100 + survivor);
  }
}

TEST(MaraboutConsensus, FailsWithRealisticDetector) {
  // The same leader rule under P: the start-time leader may crash before
  // broadcasting, leaving the others waiting forever. This is why the
  // Marabout algorithm does not transfer to the realistic space.
  const ProcessId n = 4;
  const auto pattern = model::single_crash(n, 0, 3);  // leader dies early
  const auto trace = run_with<MaraboutConsensus>("P", pattern, 0x4dea);
  const auto check = check_consensus(trace, 0, proposals(n));
  EXPECT_FALSE(check.termination) << check.to_string();
}

TEST(CrChain, SolvesCorrectRestrictedConsensusUnderSweep) {
  const ProcessId n = 5;
  for (const auto& pattern : crash_sweep(n)) {
    const auto trace = run_with<CrChainConsensus>("P<", pattern, 0x5dea);
    const auto check = check_consensus(trace, 0, proposals(n));
    EXPECT_TRUE(check.ok_correct_restricted())
        << pattern.to_string() << ": " << check.to_string();
  }
}

TEST(CrChain, ViolatesUniformAgreementWhenP0DiesAfterDeciding) {
  // The Section 6.2 scenario: p0 decides its own value immediately (its
  // decision consults nobody), its round-0 broadcast is delayed past its
  // crash, and the survivors agree on p1's value instead.
  const ProcessId n = 4;
  auto pattern = model::single_crash(n, 0, 30);
  SimConfig config;
  config.blocks.push_back({/*src=*/0, /*dst=*/-1, /*until=*/4000});
  const auto trace =
      run_with<CrChainConsensus>("P<", pattern, 0x6dea, config);
  const auto check = check_consensus(trace, 0, proposals(n));
  EXPECT_TRUE(check.agreement) << check.to_string();    // correct-restricted OK
  EXPECT_FALSE(check.uniform_agreement) << check.to_string();
  // p0 decided its own proposal.
  const auto d0 = trace.decision_of(0, 0);
  ASSERT_TRUE(d0.has_value());
  EXPECT_EQ(d0->value, 100);
  // Survivors decided p1's proposal.
  const auto d1 = trace.decision_of(1, 0);
  ASSERT_TRUE(d1.has_value());
  EXPECT_EQ(d1->value, 101);
}

TEST(CrChain, CannotReplaceUniformConsensus) {
  // Sweeping the same scenario family: uniform agreement breaks for SOME
  // pattern, which is the Section 6.2 separation (P< solves consensus but
  // not uniform consensus).
  const ProcessId n = 4;
  bool uniform_broken = false;
  for (Tick crash = 10; crash <= 60 && !uniform_broken; crash += 10) {
    auto pattern = model::single_crash(n, 0, crash);
    SimConfig config;
    config.blocks.push_back({0, -1, 4000});
    const auto trace =
        run_with<CrChainConsensus>("P<", pattern, crash, config);
    const auto check = check_consensus(trace, 0, proposals(n));
    uniform_broken = !check.uniform_agreement;
  }
  EXPECT_TRUE(uniform_broken);
}

TEST(CtStrong, DecidesQuicklyAllCorrect) {
  const ProcessId n = 5;
  const auto pattern = model::all_correct(n);
  const auto trace = run_with<CtStrongConsensus>("P", pattern, 0x7dea);
  const auto check = check_consensus(trace, 0, proposals(n));
  ASSERT_TRUE(check.ok_uniform()) << check.to_string();
  // With nobody suspected, everyone decides the full vector's first
  // component: p0's proposal.
  for (ProcessId p = 0; p < n; ++p) {
    const auto d = trace.decision_of(p, 0);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->value, 100);
  }
}

TEST(CtStrong, SurvivorDecidesWhenAllOthersCrashAtStart) {
  const ProcessId n = 5;
  const auto pattern = model::all_but_one_crash(n, 3, 0);
  const auto trace = run_with<CtStrongConsensus>("P", pattern, 0x8dea);
  const auto check = check_consensus(trace, 0, proposals(n));
  EXPECT_TRUE(check.ok_uniform()) << check.to_string();
  const auto d = trace.decision_of(3, 0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->value, 103);  // only its own proposal survives
}

}  // namespace
}  // namespace rfd::algo
