// Experiment E11: cluster-scale monitoring - dissemination topologies
// compared at n = 16..1024.
//
// Three sweeps:
//   (a) scaling: topology x n, uniform fixed-timeout detectors tuned to
//       each topology's dissemination cadence. Shows the message-
//       complexity separation (all-to-all O(n) per node vs gossip O(f))
//       and what it costs in detection latency and false suspicions;
//   (b) detector kinds on a 64-node gossip fabric across network
//       regimes - the E9 QoS story at cluster scale;
//   (c) a scenario gallery (partition/heal, rack crash, churn, delay
//       storm, crash-recovery) measuring cluster-wide convergence;
//   (d) the checked-in scenario DSL library (scenarios/*.scn) - one QoS
//       row per file, so every corpus scenario's headline numbers land
//       in BENCH_e11_cluster.json and can be tracked run over run.
//
// Rows marked by RFD_E11_FULL=1 (all-to-all and ring at n=1024) are
// skipped by default: the point of the quadratic baseline at that scale
// is precisely that nobody can afford it.
//
// RFD_E11_TRACE=<prefix> writes one JSONL event trace per scenario-
// gallery case to <prefix>.scenario<i>.jsonl (with metric snapshots every
// 10 check ticks) - the inputs for the README's jq cookbook.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/engine.hpp"
#include "cluster/scenario_dsl.hpp"
#include "common/table.hpp"

namespace rfd {
namespace {

using cluster::ClusterConfig;
using cluster::ClusterReport;
using cluster::TopologyKind;

constexpr double kIntervalMs = 250.0;

// Tuning a cell means sizing three things to the topology and scale:
// how much piggyback bandwidth to spend (digest), how wide the ring
// fans out (k must grow with n or the forwarded-counter pipeline gets
// too deep), and how much silence the fixed timeout tolerates (a
// multiple of the expected freshness cadence - 12x covers the gap tail
// that multi-hop dissemination produces; hierarchical needs a little
// more because foreign counters cross two hops of rotation).
ClusterConfig scaling_config(TopologyKind kind, int n) {
  ClusterConfig config;
  config.n = n;
  config.topology.kind = kind;
  config.heartbeat_interval_ms = kIntervalMs;
  config.check_interval_ms = kIntervalMs;
  config.detector.kind = rt::DetectorKind::kFixed;

  double gap_ms = kIntervalMs;
  switch (kind) {
    case TopologyKind::kAllToAll:
      config.topology.digest_size = 0;  // direct monitoring only
      config.detector.fixed.timeout_ms = 1'000.0;
      break;
    case TopologyKind::kRing: {
      config.topology.ring_successors = std::max(3, n / 32);
      config.topology.digest_size = std::max(64, n / 2);
      const double per_round =
          static_cast<double>(config.topology.ring_successors) *
          config.topology.digest_size;
      gap_ms = kIntervalMs * std::max(1.0, n / per_round);
      config.detector.fixed.timeout_ms = std::max(1'000.0, 12.0 * gap_ms);
      break;
    }
    case TopologyKind::kGossip: {
      config.topology.digest_size = std::max(32, n / 8);
      const double per_round =
          static_cast<double>(config.topology.gossip_fanout) *
          config.topology.digest_size;
      gap_ms = kIntervalMs * std::max(1.0, n / per_round);
      config.detector.fixed.timeout_ms = std::max(1'000.0, 12.0 * gap_ms);
      break;
    }
    case TopologyKind::kHierarchical:
      config.topology.digest_size = 32;
      config.detector.fixed.timeout_ms = 16.0 * kIntervalMs;
      break;
  }
  config.bootstrap_grace_ms =
      std::max(1500.0, config.detector.fixed.timeout_ms);

  config.duration_ms = 30'000.0;
  if (kind == TopologyKind::kGossip && n >= 1024) {
    // Detection rides a ~10s timeout at this scale; leave room for the
    // p99 tail to land inside the window.
    config.duration_ms = 45'000.0;
  }
  if (kind == TopologyKind::kAllToAll && n >= 1024) {
    config.duration_ms = 12'000.0;  // 50M simulated messages is plenty
  }
  const int crashes = std::max(1, n / 64);
  config.scenario =
      cluster::multi_crash_scenario(n, crashes, config.duration_ms * 0.4);
  return config;
}

std::string fmt_pct_or_dash(const Summary& s, double q) {
  return s.count() > 0 ? Table::fixed(s.percentile(q), 0) : "-";
}

void add_report_row(Table& table, bench::JsonReport& json,
                    const std::string& section, const ClusterReport& r) {
  table.add_row({r.topology,
                 Table::num(r.n),
                 Table::fixed(r.messages_per_node_per_s, 1),
                 Table::fixed(r.entries_per_node_per_s, 0),
                 fmt_pct_or_dash(r.detection_latency_ms, 0.5),
                 fmt_pct_or_dash(r.detection_latency_ms, 0.95),
                 fmt_pct_or_dash(r.detection_latency_ms, 0.99),
                 Table::num(r.missed_detections),
                 Table::fixed(r.false_suspicions_per_node_per_min, 2),
                 Table::num(r.convergence_ms.count()) + "/" +
                     Table::num(r.disruptions),
                 Table::yes_no(r.final_agreement)});
  json.row(section)
      .str("topology", r.topology)
      .str("detector", r.detector)
      .num("n", r.n)
      .num("duration_ms", r.duration_ms)
      .num("messages_sent", static_cast<double>(r.messages_sent))
      .num("msgs_per_node_per_s", r.messages_per_node_per_s)
      .num("entries_per_node_per_s", r.entries_per_node_per_s)
      .num("detect_p50_ms", r.detection_latency_ms.count() > 0
                                ? r.detection_latency_ms.percentile(0.5)
                                : std::nan(""))
      .num("detect_p99_ms", r.detection_latency_ms.count() > 0
                                ? r.detection_latency_ms.percentile(0.99)
                                : std::nan(""))
      .num("missed", static_cast<double>(r.missed_detections))
      .num("false_per_node_per_min", r.false_suspicions_per_node_per_min)
      .num("convergence_mean_ms",
           r.convergence_ms.count() > 0 ? r.convergence_ms.mean() : std::nan(""))
      .boolean("final_agreement", r.final_agreement);
}

void BM_GossipCluster64(benchmark::State& state) {
  ClusterConfig config = scaling_config(TopologyKind::kGossip, 64);
  config.duration_ms = 10'000.0;
  config.scenario = cluster::Scenario{};
  config.scenario.crash(4'000.0, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::run_cluster(config, 42));
  }
}
BENCHMARK(BM_GossipCluster64)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace rfd

int main(int argc, char** argv) {
  using namespace rfd;
  using cluster::Scenario;
  const bool full = std::getenv("RFD_E11_FULL") != nullptr;
  bench::JsonReport json("e11_cluster");

  std::printf("E11: cluster-scale monitoring (heartbeat %.0fms, fixed\n"
              "timeouts tuned to each topology's dissemination cadence,\n"
              "crashing n/64 nodes at 40%% of the run)\n",
              kIntervalMs);

  {
    const std::vector<int> sizes = {16, 64, 256, 1024};
    Table table({"topology", "n", "msgs/node/s", "entries/node/s",
                 "T_D p50", "T_D p95", "T_D p99", "missed",
                 "false/node/min", "converged", "agree"});
    for (const auto kind :
         {TopologyKind::kAllToAll, TopologyKind::kRing, TopologyKind::kGossip,
          TopologyKind::kHierarchical}) {
      for (const int n : sizes) {
        const bool expensive = n >= 1024 && (kind == TopologyKind::kAllToAll ||
                                             kind == TopologyKind::kRing);
        if (expensive && !full) {
          table.add_row({cluster::topology_kind_name(kind), Table::num(n),
                         "(set RFD_E11_FULL=1)", "-", "-", "-", "-", "-", "-",
                         "-", "-"});
          continue;
        }
        const ClusterReport r =
            cluster::run_cluster(scaling_config(kind, n), 0xe11);
        add_report_row(table, json, "scaling", r);
      }
    }
    table.print("E11a: topology scaling (per-node message load vs detection)");
    std::printf(
        "\nReading: all-to-all load grows ~linearly per node (O(n^2)\n"
        "cluster-wide) while gossip stays flat - the sublinear\n"
        "architecture; the price is coarser freshness: higher detection\n"
        "percentiles and the occasional false suspicion at scale.\n\n");
  }

  {
    Table table({"detector", "network", "T_D p50", "T_D p99",
                 "false/node/min", "missed", "agree"});
    struct Net {
      std::string label;
      double sigma;
      double loss;
    };
    const std::vector<Net> nets = {{"calm", 0.4, 0.0},
                                   {"jittery", 1.1, 0.05},
                                   {"hostile", 1.5, 0.15}};
    for (const auto& net : nets) {
      for (const auto kind : {rt::DetectorKind::kFixed, rt::DetectorKind::kChen,
                              rt::DetectorKind::kPhi}) {
        ClusterConfig config = scaling_config(TopologyKind::kGossip, 64);
        config.topology.digest_size = 64;
        config.detector.kind = kind;
        config.detector.fixed.timeout_ms = 600.0;
        config.detector.chen.alpha_ms = 300.0;
        config.detector.phi.threshold = 8.0;
        config.network.jitter_sigma = net.sigma;
        config.network.loss_prob = net.loss;
        config.duration_ms = 30'000.0;
        config.scenario = Scenario{};
        config.scenario.crash(12'000.0, 31);
        const ClusterReport r = cluster::run_cluster(config, 0xb11);
        table.add_row({rt::detector_kind_name(kind), net.label,
                       fmt_pct_or_dash(r.detection_latency_ms, 0.5),
                       fmt_pct_or_dash(r.detection_latency_ms, 0.99),
                       Table::fixed(r.false_suspicions_per_node_per_min, 2),
                       Table::num(r.missed_detections),
                       Table::yes_no(r.final_agreement)});
        json.row("detectors")
            .str("detector", rt::detector_kind_name(kind))
            .str("network", net.label)
            .num("detect_p50_ms", r.detection_latency_ms.count() > 0
                                      ? r.detection_latency_ms.percentile(0.5)
                                      : std::nan(""))
            .num("false_per_node_per_min", r.false_suspicions_per_node_per_min)
            .num("missed", static_cast<double>(r.missed_detections))
            .boolean("final_agreement", r.final_agreement);
      }
    }
    table.print(
        "E11b: detector kinds on a 64-node gossip fabric (crash at 12s)");
    std::printf(
        "\nReading: gossip's freshness gaps are heavy-tailed, so linear\n"
        "safety margins sized for direct heartbeats (the 600ms fixed\n"
        "timeout, Chen's alpha) flap by the hundreds per minute, while\n"
        "the phi-accrual detector - which fits the gap *distribution* -\n"
        "stays an order of magnitude quieter at comparable latency. At\n"
        "cluster scale the detector must model dissemination, not just\n"
        "the network.\n\n");
  }

  {
    Table table({"scenario", "msgs/node/s", "false/node/min",
                 "convergence (ms)", "converged", "agree"});
    struct Case {
      std::string label;
      ClusterConfig config;
    };
    std::vector<Case> cases;
    {
      Case c{"partition/heal", scaling_config(TopologyKind::kGossip, 64)};
      c.config.duration_ms = 40'000.0;
      c.config.scenario = Scenario{};
      std::vector<cluster::NodeId> left, right;
      for (int i = 0; i < 64; ++i) (i < 32 ? left : right).push_back(i);
      c.config.scenario.partition(8'000.0, {left, right}).heal(20'000.0);
      cases.push_back(std::move(c));
    }
    {
      Case c{"rack crash (8 nodes)", scaling_config(TopologyKind::kGossip, 64)};
      c.config.duration_ms = 40'000.0;
      c.config.scenario = Scenario{};
      for (int i = 16; i < 24; ++i) c.config.scenario.crash(10'000.0, i);
      cases.push_back(std::move(c));
    }
    {
      Case c{"churn (4 join, 4 leave)",
             scaling_config(TopologyKind::kGossip, 64)};
      c.config.max_nodes = 68;
      c.config.duration_ms = 45'000.0;
      c.config.scenario = Scenario{};
      for (int i = 0; i < 4; ++i) {
        c.config.scenario.join(6'000.0 + 1'500.0 * i,
                               static_cast<cluster::NodeId>(64 + i));
        c.config.scenario.leave(16'000.0 + 5'000.0 * i,
                                static_cast<cluster::NodeId>(i));
      }
      cases.push_back(std::move(c));
    }
    {
      Case c{"delay storm (10s)", scaling_config(TopologyKind::kGossip, 64)};
      c.config.duration_ms = 40'000.0;
      c.config.scenario = Scenario{};
      // Spikes must clear the ~3s tuned timeout to hurt.
      c.config.scenario.delay_storm(10'000.0, 20'000.0, 4'000.0, 0.7);
      cases.push_back(std::move(c));
    }
    {
      Case c{"crash-recovery", scaling_config(TopologyKind::kGossip, 64)};
      c.config.duration_ms = 40'000.0;
      c.config.scenario = Scenario{};
      c.config.scenario.crash(8'000.0, 5).recover(20'000.0, 5);
      cases.push_back(std::move(c));
    }
    const char* trace_prefix = std::getenv("RFD_E11_TRACE");
    for (std::size_t i = 0; i < cases.size(); ++i) {
      auto& c = cases[i];
      if (trace_prefix != nullptr) {
        c.config.obs.trace_path =
            std::string(trace_prefix) + ".scenario" + std::to_string(i) +
            ".jsonl";
        c.config.obs.snapshot_every_ticks = 10;
      }
      const ClusterReport r = cluster::run_cluster(c.config, 0xc11);
      if (trace_prefix != nullptr) {
        std::printf("trace: %s (%lld records)\n",
                    c.config.obs.trace_path.c_str(),
                    static_cast<long long>(r.trace_records));
      }
      table.add_row({c.label, Table::fixed(r.messages_per_node_per_s, 1),
                     Table::fixed(r.false_suspicions_per_node_per_min, 2),
                     r.convergence_ms.count() > 0
                         ? Table::fixed(r.convergence_ms.mean(), 0)
                         : "-",
                     Table::num(r.convergence_ms.count()) + "/" +
                         Table::num(r.disruptions),
                     Table::yes_no(r.final_agreement)});
      json.row("scenarios")
          .str("scenario", c.label)
          .num("msgs_per_node_per_s", r.messages_per_node_per_s)
          .num("false_per_node_per_min", r.false_suspicions_per_node_per_min)
          .num("convergence_mean_ms",
               r.convergence_ms.count() > 0 ? r.convergence_ms.mean() : std::nan(""))
          .num("disruptions", static_cast<double>(r.disruptions))
          .boolean("final_agreement", r.final_agreement);
    }
    table.print("E11c: scenario gallery (64-node gossip, scripted faults)");
    std::printf(
        "\nReading: every scripted disruption - including a full partition\n"
        "with a crash hidden inside it - ends with the live membership\n"
        "agreeing on the true crashed set: the engine-level version of\n"
        "the paper's claim that systems engineer around unreliable\n"
        "detectors rather than waiting for a perfect one.\n\n");
  }

  {
#ifdef RFD_SCENARIO_DIR
    const std::string dir = RFD_SCENARIO_DIR;
#else
    const std::string dir = "scenarios";
#endif
    std::vector<std::filesystem::path> files;
    if (std::filesystem::is_directory(dir)) {
      for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() == ".scn") files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    Table table({"file", "scenario", "n", "msgs/node/s", "T_D p50",
                 "T_D p99", "false/node/min", "converged", "agree",
                 "budget"});
    for (const auto& path : files) {
      cluster::ScenarioDoc doc;
      cluster::DslError err;
      if (!cluster::load_scenario_file(path.string(), cluster::DslContext{},
                                       doc, err)) {
        std::fprintf(stderr, "E11d: %s: %s\n", path.string().c_str(),
                     err.to_string().c_str());
        continue;
      }
      // The file supplies n/max_nodes/duration and the timeline; the
      // fabric and detector tuning come from the gossip scaling cell so
      // the rows are comparable with E11a-c.
      ClusterConfig config =
          scaling_config(TopologyKind::kGossip, doc.n > 0 ? doc.n : 64);
      config.max_nodes =
          std::max({doc.max_nodes, config.n,
                    static_cast<int>(doc.max_node_ref) + 1});
      if (doc.duration_ms > 0.0) config.duration_ms = doc.duration_ms;
      config.scenario = doc.scenario;
      const ClusterReport r = cluster::run_cluster(config, 0xd11);
      // A scenario's optional `budget` header is its QoS contract: the
      // run must keep the false-suspicion rate and the detection p99
      // under the file's bounds. CI fails any budgeted row that leaks.
      const double detect_p99 = r.detection_latency_ms.count() > 0
                                    ? r.detection_latency_ms.percentile(0.99)
                                    : std::nan("");
      bool budget_ok = true;
      if (doc.budget_max_false_per_node_min >= 0.0 &&
          r.false_suspicions_per_node_per_min >
              doc.budget_max_false_per_node_min) {
        budget_ok = false;
      }
      if (doc.budget_max_detect_p99_ms >= 0.0 && std::isfinite(detect_p99) &&
          detect_p99 > doc.budget_max_detect_p99_ms) {
        budget_ok = false;
      }
      table.add_row({path.filename().string(), doc.name, Table::num(r.n),
                     Table::fixed(r.messages_per_node_per_s, 1),
                     fmt_pct_or_dash(r.detection_latency_ms, 0.5),
                     fmt_pct_or_dash(r.detection_latency_ms, 0.99),
                     Table::fixed(r.false_suspicions_per_node_per_min, 2),
                     Table::num(r.convergence_ms.count()) + "/" +
                         Table::num(r.disruptions),
                     Table::yes_no(r.final_agreement),
                     doc.has_budget() ? Table::yes_no(budget_ok) : "-"});
      json.row("scenario_files")
          .str("file", path.filename().string())
          .str("scenario", doc.name)
          .num("n", r.n)
          .num("duration_ms", r.duration_ms)
          .num("msgs_per_node_per_s", r.messages_per_node_per_s)
          .num("detect_p50_ms", r.detection_latency_ms.count() > 0
                                    ? r.detection_latency_ms.percentile(0.5)
                                    : std::nan(""))
          .num("detect_p99_ms", r.detection_latency_ms.count() > 0
                                    ? r.detection_latency_ms.percentile(0.99)
                                    : std::nan(""))
          .num("missed", static_cast<double>(r.missed_detections))
          .num("false_per_node_per_min", r.false_suspicions_per_node_per_min)
          .num("convergence_mean_ms", r.convergence_ms.count() > 0
                                          ? r.convergence_ms.mean()
                                          : std::nan(""))
          .num("disruptions", static_cast<double>(r.disruptions))
          .boolean("final_agreement", r.final_agreement)
          .boolean("has_budget", doc.has_budget())
          .boolean("budget_ok", budget_ok)
          .num("budget_max_false_per_node_min",
               doc.budget_max_false_per_node_min)
          .num("budget_max_detect_p99_ms", doc.budget_max_detect_p99_ms);
    }
    table.print("E11d: scenario DSL library (scenarios/*.scn, gossip fabric)");
    std::printf(
        "\nReading: the corpus rows pin the library's QoS headline per\n"
        "file; a scenario whose numbers move between runs of the same\n"
        "commit is a determinism bug, and one whose numbers move across\n"
        "commits is a behavior change the golden-trace suite will have\n"
        "flagged first.\n\n");
  }

  json.write();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
