// Experiment E12: simulation-core throughput - how many discrete events
// per wall-clock second the runtime layer sustains at cluster scale.
//
// Two sections:
//   (a) cluster: end-to-end events/sec, wall-clock ms and peak event-queue
//       size for the gossip fabric at n in {64, 256, 1024} (the e11
//       flagship workload, shortened). This is the number the tentpole
//       refactors move: slab events + timer wheel in the queue, verdict-
//       first Network::route, and incremental suspicion tracking in the
//       engine's check loop.
//   (b) core: a synthetic heartbeat-shaped workload (a large population of
//       periodic timers, each firing a short-delay jittered delivery) run
//       through the current EventQueue and through LegacyEventQueue - a
//       frozen copy of the pre-refactor std::function + binary-heap core -
//       so the core-level speedup stays measurable across future PRs.
//
// RFD_E12_SMOKE=1 restricts section (a) to n=64 for CI smoke runs.
//
// RFD_E12_TRACE=1 adds section (c): the observability overhead check.
// The same gossip workload runs trace-off and trace-on (JSONL event
// trace + snapshots + phase profiling, best of 2 each) at
// n=RFD_E12_TRACE_N (default 1024), the trace landing at
// RFD_E12_TRACE_PATH (default e12_trace.jsonl). CI gates on the
// events/sec ratio staying >= 0.95.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/engine.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "runtime/event_queue.hpp"

namespace rfd {
namespace {

using cluster::ClusterConfig;
using cluster::ClusterReport;
using cluster::TopologyKind;

// Pre-refactor events/sec on the section-(a) workload, measured with this
// bench's config on the PR-1 core (std::function heap events, O(n^2)
// per-tick suspicion scan, per-pair heap detector objects) on the
// development machine (median of 3 runs). Machine-relative: compare the
// current/baseline ratio, not absolute rates, across machines.
constexpr double kBaselineEventsPerS64 = 1.02e6;
constexpr double kBaselineEventsPerS256 = 2.00e5;
constexpr double kBaselineEventsPerS1024 = 4.67e4;

double wall_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

// Process CPU time: the right clock for the E12c instrumentation-overhead
// ratio. The sim is single-threaded, and on shared/virtualized runners
// wall clock includes steal and scheduling noise that swamps a 5% budget;
// CPU time measures only the cycles this process actually burned.
double cpu_ms(const std::function<void()>& fn) {
  timespec start{}, end{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &start);
  fn();
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &end);
  return (static_cast<double>(end.tv_sec - start.tv_sec)) * 1e3 +
         (static_cast<double>(end.tv_nsec - start.tv_nsec)) * 1e-6;
}

// The e11 gossip scaling cell, shortened to a throughput workload: the
// detector timeout tracks the dissemination cadence exactly as in e11 so
// the event mix (pumps, deliveries, checks) is representative.
ClusterConfig gossip_config(int n) {
  constexpr double kIntervalMs = 250.0;
  ClusterConfig config;
  config.n = n;
  config.topology.kind = TopologyKind::kGossip;
  config.topology.digest_size = std::max(32, n / 8);
  config.heartbeat_interval_ms = kIntervalMs;
  // The check grid runs finer than the heartbeat period: detection
  // latencies and convergence times are quantized to it, and a 250ms
  // quantum is coarse against the latencies under measurement. It is
  // also the knob the simulation core must sustain: every tick cost the
  // pre-refactor engine a full n*(n-1) suspicion scan, which is the
  // documented reason e11 runs were unaffordable past n=256.
  config.check_interval_ms = 50.0;
  config.detector.kind = rt::DetectorKind::kFixed;
  const double per_round =
      static_cast<double>(config.topology.gossip_fanout) *
      config.topology.digest_size;
  const double gap_ms = kIntervalMs * std::max(1.0, n / per_round);
  config.detector.fixed.timeout_ms = std::max(1'000.0, 12.0 * gap_ms);
  config.bootstrap_grace_ms =
      std::max(1500.0, config.detector.fixed.timeout_ms);
  config.duration_ms = 12'000.0;
  const int crashes = std::max(1, n / 64);
  config.scenario =
      cluster::multi_crash_scenario(n, crashes, config.duration_ms * 0.4);
  return config;
}

// ------------------------------------------------------------------ legacy
// Frozen copy of the pre-refactor event core (PR 1 state): one heap-
// allocated std::function per event, all events through a binary heap.
// Kept as the comparison baseline for section (b); do not "improve" it.
class LegacyEventQueue {
 public:
  using Action = std::function<void()>;

  void schedule(double at, Action action) {
    queue_.push({at, next_seq_++, std::move(action)});
  }
  void schedule_in(double delay, Action action) {
    schedule(now_ + delay, std::move(action));
  }
  double now() const { return now_; }
  std::int64_t executed() const { return executed_; }

  void run_until(double t_end) {
    while (!queue_.empty() && queue_.top().at <= t_end) {
      Entry entry{queue_.top().at, queue_.top().seq,
                  std::move(const_cast<Entry&>(queue_.top()).action)};
      queue_.pop();
      now_ = entry.at;
      ++executed_;
      entry.action();
    }
    now_ = t_end;
  }

 private:
  struct Entry {
    double at;
    std::int64_t seq;
    Action action;
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  double now_ = 0.0;
  std::int64_t next_seq_ = 0;
  std::int64_t executed_ = 0;
};

// Synthetic heartbeat-shaped workload: `timers` periodic 100ms timers,
// each firing a 0.5-8.5ms jittered one-shot delivery per period (the
// heartbeat + network-delivery mix that dominates the cluster engine).
template <typename Queue>
class CoreWorkload {
 public:
  explicit CoreWorkload(Queue& queue, int timers) : queue_(queue) {
    const Rng base(0xe12);
    Rng phases(0x9a5e);
    rngs_.reserve(static_cast<std::size_t>(timers));
    for (int i = 0; i < timers; ++i) {
      rngs_.push_back(base.split(static_cast<std::uint64_t>(i)));
      queue_.schedule(phases.uniform01() * 100.0, [this, i] { tick(i); });
    }
  }

  std::int64_t delivered() const { return delivered_; }

 private:
  void tick(int i) {
    const double jitter =
        0.5 + rngs_[static_cast<std::size_t>(i)].uniform01() * 8.0;
    queue_.schedule_in(jitter, [this] { ++delivered_; });
    queue_.schedule_in(100.0, [this, i] { tick(i); });
  }

  Queue& queue_;
  std::vector<Rng> rngs_;
  std::int64_t delivered_ = 0;
};

void BM_ClusterThroughput256(benchmark::State& state) {
  ClusterConfig config = gossip_config(256);
  config.duration_ms = 6'000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::run_cluster(config, 42));
  }
}
BENCHMARK(BM_ClusterThroughput256)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace rfd

int main(int argc, char** argv) {
  using namespace rfd;
  const bool smoke = std::getenv("RFD_E12_SMOKE") != nullptr;
  bench::JsonReport json("e12_throughput");

  std::printf("E12: simulation-core throughput (gossip fabric, %s)\n\n",
              smoke ? "smoke: n=64 only" : "n in {64, 256, 1024}");

  {
    Table table({"n", "sim events", "wall ms", "events/s", "peak queue",
                 "msgs sent", "vs PR-1"});
    const std::vector<int> sizes = smoke ? std::vector<int>{64}
                                         : std::vector<int>{64, 256, 1024};
    for (const int n : sizes) {
      const double baseline = n == 64    ? kBaselineEventsPerS64
                              : n == 256 ? kBaselineEventsPerS256
                                         : kBaselineEventsPerS1024;
      const ClusterConfig config = gossip_config(n);
      ClusterReport r;
      const double ms = wall_ms([&] { r = cluster::run_cluster(config, 0xe12); });
      const double events_per_s =
          ms > 0.0 ? static_cast<double>(r.events_executed) / (ms / 1000.0)
                   : 0.0;
      const double speedup = baseline > 0.0 ? events_per_s / baseline : 0.0;
      table.add_row({Table::num(n), Table::num(r.events_executed),
                     Table::fixed(ms, 1), Table::fixed(events_per_s, 0),
                     Table::num(r.peak_event_queue),
                     Table::num(r.messages_sent),
                     Table::fixed(speedup, 2) + "x"});
      json.row("cluster")
          .str("topology", "gossip")
          .num("n", n)
          .num("sim_duration_ms", config.duration_ms)
          .num("events_executed", static_cast<double>(r.events_executed))
          .num("wall_ms", ms)
          .num("events_per_s", events_per_s)
          .num("peak_event_queue", static_cast<double>(r.peak_event_queue))
          .num("messages_sent", static_cast<double>(r.messages_sent))
          .num("speedup_vs_prerefactor", speedup);
    }
    table.print("E12a: cluster engine throughput (12s simulated, gossip)");
  }

  if (std::getenv("RFD_E12_TRACE") != nullptr) {
    const char* n_env = std::getenv("RFD_E12_TRACE_N");
    const int n = n_env != nullptr ? std::atoi(n_env) : 1024;
    const char* path_env = std::getenv("RFD_E12_TRACE_PATH");
    const std::string trace_path =
        path_env != nullptr ? path_env : "e12_trace.jsonl";

    const ClusterConfig off_config = gossip_config(n);
    ClusterConfig on_config = off_config;
    on_config.obs.trace_path = trace_path;
    on_config.obs.snapshot_every_ticks = 20;
    // Profiling is its own opt-in toggle (it perturbs the stream with
    // wall-clock rollups), so the gated ratio measures pure trace +
    // snapshot cost; a separate profiled run below feeds the rollup rows.

    // Interleaved best-of-5 on process CPU time: off/on alternate so
    // frequency drift or a noisy neighbour biases neither side, and the
    // minimum discards runs that ate a page-cache miss or a steal spike.
    const auto run_one = [](const ClusterConfig& config, ClusterReport& out) {
      return cpu_ms([&] { out = cluster::run_cluster(config, 0xe12); });
    };
    ClusterReport off_report, on_report;
    double off_ms = 0.0, on_ms = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      ClusterReport off_r, on_r;
      const double o = run_one(off_config, off_r);
      const double t = run_one(on_config, on_r);
      if (rep == 0 || o < off_ms) {
        off_ms = o;
        off_report = std::move(off_r);
      }
      if (rep == 0 || t < on_ms) {
        on_ms = t;
        on_report = std::move(on_r);
      }
    }
    const auto rate = [](const ClusterReport& r, double ms) {
      return ms > 0.0 ? static_cast<double>(r.events_executed) / (ms / 1000.0)
                      : 0.0;
    };
    const double off_rate = rate(off_report, off_ms);
    const double on_rate = rate(on_report, on_ms);
    const double ratio = off_rate > 0.0 ? on_rate / off_rate : 0.0;

    Table table({"mode", "cpu ms", "events/s", "trace records", "ratio"});
    table.add_row({"trace-off", Table::fixed(off_ms, 1),
                   Table::fixed(off_rate, 0), "-", "1.00"});
    table.add_row({"trace-on", Table::fixed(on_ms, 1),
                   Table::fixed(on_rate, 0),
                   Table::num(on_report.trace_records),
                   Table::fixed(ratio, 3)});
    table.print("E12c: observability overhead (gossip n=" +
                std::to_string(n) + ", trace + snapshots)");
    json.row("trace_overhead")
        .str("topology", "gossip")
        .num("n", n)
        .num("off_events_per_s", off_rate)
        .num("on_events_per_s", on_rate)
        .num("ratio", ratio)
        .num("trace_records", static_cast<double>(on_report.trace_records))
        .num("trace_dropped", static_cast<double>(on_report.trace_dropped))
        .str("trace_path", trace_path);
    // Separate profiled run (profiling alone, no trace file) for the
    // per-phase rollup rows; not part of the gated overhead pair.
    ClusterConfig profile_config = off_config;
    profile_config.obs.profile = true;
    ClusterReport profile_report;
    run_one(profile_config, profile_report);
    for (const auto& stat : profile_report.profile) {
      json.row("profile")
          .str("phase", stat.phase)
          .num("calls", static_cast<double>(stat.calls))
          .num("sampled", static_cast<double>(stat.sampled))
          .num("est_ms", stat.est_ms);
      std::printf("profile: %-8s calls=%lld est=%.2fms\n", stat.phase.c_str(),
                  static_cast<long long>(stat.calls), stat.est_ms);
    }
    std::printf("\ntrace overhead: %.1f%% (events/s ratio %.3f)\n\n",
                (1.0 - ratio) * 100.0, ratio);
  }

  {
    struct Baseline {
      int n;
      double events_per_s;
    };
    const std::vector<Baseline> baselines = {
        {64, kBaselineEventsPerS64},
        {256, kBaselineEventsPerS256},
        {1024, kBaselineEventsPerS1024},
    };
    for (const auto& b : baselines) {
      json.row("prerefactor_baseline")
          .str("topology", "gossip")
          .num("n", b.n)
          .num("events_per_s", b.events_per_s);
    }
  }

  {
    Table table({"core", "timers", "sim events", "wall ms", "events/s"});
    const int timers = smoke ? 256 : 1024;
    const double horizon = smoke ? 5'000.0 : 20'000.0;

    rt::EventQueue current;
    const double cur_ms = wall_ms([&] {
      CoreWorkload workload(current, timers);
      current.run_until(horizon);
      benchmark::DoNotOptimize(workload.delivered());
    });
    LegacyEventQueue legacy;
    const double leg_ms = wall_ms([&] {
      CoreWorkload workload(legacy, timers);
      legacy.run_until(horizon);
      benchmark::DoNotOptimize(workload.delivered());
    });
    RFD_REQUIRE(current.executed() == legacy.executed());

    const auto rate = [](std::int64_t events, double ms) {
      return ms > 0.0 ? static_cast<double>(events) / (ms / 1000.0) : 0.0;
    };
    for (const auto& [label, ms, events] :
         {std::tuple<const char*, double, std::int64_t>{
              "current", cur_ms, current.executed()},
          {"legacy", leg_ms, legacy.executed()}}) {
      table.add_row({label, Table::num(timers), Table::num(events),
                     Table::fixed(ms, 1), Table::fixed(rate(events, ms), 0)});
      json.row("core")
          .str("impl", label)
          .num("timers", timers)
          .num("events_executed", static_cast<double>(events))
          .num("wall_ms", ms)
          .num("events_per_s", rate(events, ms));
    }
    json.row("core_speedup").num("current_over_legacy",
                                 leg_ms > 0.0 ? leg_ms / cur_ms : 0.0);
    table.print("E12b: event core, current vs frozen pre-refactor copy");
    std::printf("\ncore speedup (legacy wall / current wall): %.2fx\n\n",
                leg_ms > 0.0 ? leg_ms / cur_ms : 0.0);
  }

  json.write();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
