// Experiment E6: Section 6.2 - uniform vs correct-restricted consensus.
//
// The P< chain algorithm across a crash sweep: correct-restricted
// agreement never breaks, uniform agreement breaks whenever p0 decides and
// dies before its round-0 broadcast lands. The second table quantifies how
// early p0's crash must be for the violation to be reachable.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace rfd {
namespace {

struct SweepResult {
  std::int64_t runs = 0;
  std::int64_t cr_violations = 0;
  std::int64_t uniform_violations = 0;
  std::int64_t terminated = 0;
};

SweepResult sweep_chain(bool block_p0, std::uint64_t base_seed) {
  const ProcessId n = 4;
  SweepResult result;
  std::vector<Value> proposals;
  for (ProcessId p = 0; p < n; ++p) proposals.push_back(100 + p);

  model::PatternSweep patterns(n, mix_seed(base_seed, 0xe6));
  patterns.with_all_correct()
      .with_single_crashes({10, 30, 60, 200})
      .with_cascades(n - 1, 20, 40)
      .with_random(8, 0, n - 1, 400);
  for (const auto& pattern : patterns.patterns()) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      sim::SimConfig config;
      if (block_p0) config.blocks.push_back({0, -1, 5000});
      const auto trace = bench::run_fleet<algo::CrChainConsensus>(
          "P<", pattern, mix_seed(base_seed, seed), 9000, config);
      const auto check = algo::check_consensus(trace, 0, proposals);
      ++result.runs;
      if (!check.agreement) ++result.cr_violations;
      if (!check.uniform_agreement) ++result.uniform_violations;
      if (check.termination) ++result.terminated;
    }
  }
  return result;
}

void BM_ChainRun(benchmark::State& state) {
  const auto pattern = model::single_crash(4, 0, 30);
  for (auto _ : state) {
    const auto trace =
        bench::run_fleet<algo::CrChainConsensus>("P<", pattern, 3, 9000);
    benchmark::DoNotOptimize(trace.num_events());
  }
}
BENCHMARK(BM_ChainRun)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace rfd

int main(int argc, char** argv) {
  using namespace rfd;
  std::printf("E6: chain(P<) - consensus is strictly easier than uniform"
              "\nconsensus (Section 6.2), n=4\n");

  {
    Table table({"adversary", "runs", "terminated", "corr.-restricted broken",
                 "uniform broken"});
    const auto plain = sweep_chain(false, 0xaa);
    table.add_row({"random schedules", Table::num(plain.runs),
                   Table::num(plain.terminated),
                   Table::num(plain.cr_violations),
                   Table::num(plain.uniform_violations)});
    const auto hostile = sweep_chain(true, 0xbb);
    table.add_row({"p0's messages delayed", Table::num(hostile.runs),
                   Table::num(hostile.terminated),
                   Table::num(hostile.cr_violations),
                   Table::num(hostile.uniform_violations)});
    table.print("E6a: spec audit of chain(P<) under crash sweeps");
  }

  {
    // How the uniformity hole depends on p0's crash time, with its round-0
    // broadcast delayed past everything.
    Table table({"p0 crash tick", "p0 decided", "survivors' value",
                 "uniform agreement"});
    const ProcessId n = 4;
    std::vector<Value> proposals{100, 101, 102, 103};
    for (const Tick crash : {5, 15, 40, 100, 400}) {
      const auto pattern = model::single_crash(n, 0, crash);
      sim::SimConfig config;
      config.blocks.push_back({0, -1, 5000});
      const auto trace = bench::run_fleet<algo::CrChainConsensus>(
          "P<", pattern, 0xcc + crash, 9000, config);
      const auto d0 = trace.decision_of(0, 0);
      const auto d1 = trace.decision_of(1, 0);
      const auto check = algo::check_consensus(trace, 0, proposals);
      table.add_row({Table::num(crash),
                     d0 ? std::to_string(d0->value) : "(died first)",
                     d1 ? std::to_string(d1->value) : "-",
                     check.uniform_agreement ? "holds" : "BROKEN"});
    }
    table.print("E6b: the uniformity hole vs p0's crash time");
  }

  std::printf(
      "\nReading: correct-restricted agreement never breaks (0 violations);"
      "\nuniform agreement breaks exactly when p0 decides its own value and"
      "\ncrashes before anyone hears from it. Uniform consensus is strictly"
      "\nharder - and P is not the weakest class for the non-uniform"
      "\nvariant.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
