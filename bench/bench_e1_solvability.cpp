// Experiment E1: the hierarchy-collapse table.
//
// For every (detector, algorithm, problem) triple, sweep failure patterns
// and schedules in the UNBOUNDED-crash environment and report whether the
// problem is solved, safe-but-stuck, or unsafe. A second table restricts
// crashes to a minority, where the classic <>S result comes back to life -
// together they reproduce the paper's message: with unbounded crashes the
// only useful rung of the ladder is P (and the S rung secretly IS P once
// realism is imposed; see bench_e7).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace rfd {
namespace {

using core::AlgoKind;
using core::EvalConfig;
using core::SpecKind;

struct Row {
  std::string detector;
  AlgoKind algo;
  SpecKind spec;
};

std::string verdict_cell(const core::Verdict& v) {
  if (v.solved()) return "solvable";
  if (v.safe()) return "blocks (" + v.to_string() + ")";
  return "UNSAFE (" + v.to_string() + ")";
}

void print_table(const std::string& title,
                 const std::vector<model::FailurePattern>& patterns,
                 const EvalConfig& config) {
  const std::vector<Row> rows = {
      {"P", AlgoKind::kCtStrong, SpecKind::kUniformConsensus},
      {"P", AlgoKind::kTrb, SpecKind::kTrb},
      {"Scribe", AlgoKind::kCtStrong, SpecKind::kUniformConsensus},
      {"S(cheat)", AlgoKind::kCtStrong, SpecKind::kUniformConsensus},
      {"S(cheat)", AlgoKind::kTrb, SpecKind::kTrb},
      {"Marabout", AlgoKind::kMarabout, SpecKind::kUniformConsensus},
      {"Marabout", AlgoKind::kCtStrong, SpecKind::kUniformConsensus},
      {"<>S", AlgoKind::kCtRotating, SpecKind::kUniformConsensus},
      {"Omega", AlgoKind::kCtRotating, SpecKind::kUniformConsensus},
      {"<>P", AlgoKind::kCtRotating, SpecKind::kUniformConsensus},
      {"<>P", AlgoKind::kCtStrong, SpecKind::kUniformConsensus},
      {"P<", AlgoKind::kCrChain, SpecKind::kCorrectRestrictedConsensus},
      {"P<", AlgoKind::kCrChain, SpecKind::kUniformConsensus},
      {"P<", AlgoKind::kTrb, SpecKind::kTrb},
  };

  Table table({"detector", "algorithm", "problem", "verdict", "runs"});
  for (const Row& row : rows) {
    EvalConfig cfg = config;
    if (row.spec == SpecKind::kTrb) cfg.trb_sender = 2;
    const auto verdict = core::evaluate_algorithm(
        fd::find_detector(row.detector), row.algo, row.spec, patterns, cfg);
    table.add_row({row.detector, core::algo_name(row.algo),
                   core::spec_name(row.spec), verdict_cell(verdict),
                   Table::num(verdict.runs)});
  }
  table.print(title);
}

void BM_SolvabilitySweepOneCell(benchmark::State& state) {
  const auto patterns = core::standard_patterns(4, 3, 0xe1, 1500, 2);
  EvalConfig config;
  config.horizon = 6000;
  config.schedule_seeds = 1;
  for (auto _ : state) {
    const auto verdict = core::evaluate_algorithm(
        fd::find_detector("P"), AlgoKind::kCtStrong,
        SpecKind::kUniformConsensus, patterns, config);
    benchmark::DoNotOptimize(verdict.runs);
  }
}
BENCHMARK(BM_SolvabilitySweepOneCell)->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace rfd

int main(int argc, char** argv) {
  using namespace rfd;
  std::printf("E1: which (detector, algorithm) pairs solve which agreement "
              "problems (n=5)\n");

  core::EvalConfig config;
  config.horizon = 20'000;
  config.schedule_seeds = 2;

  // The unbounded environment must include crashes that strike BEFORE any
  // protocol can finish - late crashes lose the race against fast
  // decisions and prove nothing.
  auto unbounded = core::standard_patterns(5, 4, 0xe1a, 1500, 4);
  unbounded.push_back(model::cascade(5, 3, 0, 1));
  unbounded.push_back(model::cascade(5, 4, 0, 1));
  for (ProcessId survivor = 0; survivor < 5; ++survivor) {
    unbounded.push_back(model::all_but_one_crash(5, survivor, 0));
  }
  print_table("E1a: unbounded crashes (up to n-1)", unbounded, config);

  const auto majority = core::standard_patterns(5, 2, 0xe1b, 1500, 4);
  print_table("E1b: crashes restricted to a minority", majority, config);

  std::printf(
      "\nReading: with unbounded crashes, P-grade detectors solve everything;"
      "\nS-grade (only constructible by cheating) still solves consensus but"
      "\nnot TRB; <>S blocks; P< solves only the correct-restricted variant"
      "\n(its uniform row survives here only because the uniformity hole"
      "\nneeds a message-delaying adversary - see bench_e6). With a"
      "\nguaranteed majority, <>S recovers consensus [CT96].\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
