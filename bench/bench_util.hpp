// Shared helpers for the experiment benches: run an algorithm fleet over a
// pattern and hand back the trace, plus common measurement utilities.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/api.hpp"

namespace rfd::bench {

template <typename Algo>
sim::Trace run_fleet(const std::string& detector,
                     const model::FailurePattern& pattern, std::uint64_t seed,
                     Tick horizon, sim::SimConfig config = {}) {
  const ProcessId n = pattern.n();
  const auto oracle = fd::find_detector(detector).factory(pattern, seed);
  std::vector<std::unique_ptr<sim::Automaton>> automata;
  for (ProcessId p = 0; p < n; ++p) {
    automata.push_back(std::make_unique<Algo>(n, 100 + p));
  }
  sim::Simulator sim(pattern, *oracle, std::move(automata),
                     std::make_unique<sim::RandomAdversary>(mix_seed(seed, 2)),
                     config);
  sim.run_for(horizon);
  return sim.trace();
}

/// Tick of the last decision of `instance` (or -1).
inline Tick last_decision_tick(const sim::Trace& trace, InstanceId instance) {
  Tick last = -1;
  for (const auto& d : trace.decisions_of_instance(instance)) {
    last = std::max(last, d.time);
  }
  return last;
}

/// Tick of the first decision of `instance` (or -1).
inline Tick first_decision_tick(const sim::Trace& trace, InstanceId instance) {
  Tick first = -1;
  for (const auto& d : trace.decisions_of_instance(instance)) {
    if (first < 0 || d.time < first) first = d.time;
  }
  return first;
}

}  // namespace rfd::bench
